module rowsim

go 1.22
