// Fencecost: replay the Section II-A experiment that motivates the
// whole paper — on a modern core, the x86 lock prefix is nearly free,
// while explicit mfences destroy memory-level parallelism; on an old
// core, the lock prefix alone already behaves like a fence.
//
//	go run ./examples/fencecost
package main

import (
	"fmt"
	"log"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

func main() {
	const iterations = 3000

	table := &stats.Table{
		Title:   "Cycles per iteration: random FAA over a 64 MiB array (single thread)",
		Headers: []string{"variant", "modern core (unfenced atomics)", "2007-class core (fenced atomics)"},
	}
	for _, v := range []workload.MicrobenchVariant{
		{Op: trace.FAA},
		{Op: trace.FAA, Locked: true},
		{Op: trace.FAA, Fenced: true},
		{Op: trace.FAA, Locked: true, Fenced: true},
	} {
		prog := workload.GenerateMicrobench(v, iterations, 1)
		iters := workload.MicrobenchIterations(prog, v)
		row := []string{v.String()}
		for _, fenced := range []bool{false, true} {
			cfg := config.Default()
			cfg.NumCores = 1
			cfg.Policy = config.PolicyEager
			cfg.WarmCaches = false
			cfg.Core.FencedAtomics = fenced
			if fenced {
				// A narrow, shallow 2007-class machine.
				cfg.Core.FetchWidth, cfg.Core.IssueWidth, cfg.Core.CommitWidth = 4, 4, 4
				cfg.Core.ROBSize, cfg.Core.LQSize, cfg.Core.SBSize = 96, 32, 20
				cfg.Core.AQSize = 1
				cfg.Mem.MSHRs = 2
			}
			system, err := sim.New(cfg, []trace.Program{prog})
			if err != nil {
				log.Fatal(err)
			}
			res, err := system.Run()
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, stats.F1(float64(res.Cycles)/float64(iters)))
		}
		table.AddRow(row...)
	}
	fmt.Println(table)
	fmt.Println("Modern x86 parts keep TSO for atomics without paying for fences;")
	fmt.Println("that freedom is what makes the when-to-issue question matter.")
}
