// Contention: build a *custom* workload with the public workload
// parameters — a mix of contended shared-counter atomics and private
// atomics — and sweep the core count to show how the eager/lazy gap
// grows with contention, and that RoW tracks the better policy at
// every point.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

func main() {
	// A hand-rolled workload: half the atomic sites update two shared
	// counters (contended), the rest update private data.
	params := workload.Params{
		Name:          "custom-counters",
		Descr:         "shared counters + private bookkeeping",
		AtomicsPer10K: 80,
		SharedFrac:    0.5,
		HotLines:      2,
		WorkingSet:    1 << 20,
		SharedData:    256 << 10,
		SharedAccFrac: 0.05,
		LoadFrac:      0.3, StoreFrac: 0.12, BranchFrac: 0.1,
		DepMean: 8, AddrIndep: 0.6, BiasedBranches: 0.95,
		AtomicOp:      trace.FAA,
		DefaultInstrs: 6000,
	}

	table := &stats.Table{
		Title:   "Execution cycles by policy (custom contended workload)",
		Headers: []string{"cores", "eager", "lazy", "row", "row-vs-best-static"},
	}
	for _, cores := range []int{4, 8, 16, 32} {
		progs := workload.Generate(params, cores, 0, 7)
		cycles := map[config.AtomicPolicy]uint64{}
		for _, policy := range []config.AtomicPolicy{
			config.PolicyEager, config.PolicyLazy, config.PolicyRoW,
		} {
			cfg := config.Default()
			cfg.NumCores = cores
			cfg.Policy = policy
			cfg.EarlyAddrCalc = policy == config.PolicyRoW
			system, err := sim.New(cfg, progs)
			if err != nil {
				log.Fatal(err)
			}
			res, err := system.Run()
			if err != nil {
				log.Fatal(err)
			}
			cycles[policy] = res.Cycles
		}
		best := cycles[config.PolicyEager]
		if cycles[config.PolicyLazy] < best {
			best = cycles[config.PolicyLazy]
		}
		table.AddRow(
			fmt.Sprint(cores),
			fmt.Sprint(cycles[config.PolicyEager]),
			fmt.Sprint(cycles[config.PolicyLazy]),
			fmt.Sprint(cycles[config.PolicyRoW]),
			stats.F(float64(cycles[config.PolicyRoW])/float64(best)),
		)
	}
	fmt.Println(table)
	fmt.Println("Whichever static policy wins at a given scale, RoW stays within")
	fmt.Println("a few percent of it without being told: the per-PC predictor")
	fmt.Println("routes each atomic site to the policy that suits it.")
}
