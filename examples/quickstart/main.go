// Quickstart: simulate one workload on the 32-core system under the
// three atomic-execution policies the paper compares — eager, lazy,
// and Rush-or-Wait — and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

func main() {
	// sps: 32 threads hammering a couple of shared counters with
	// fetch-and-add — the paper's most contention-sensitive workload.
	params := workload.MustGet("sps")
	const cores, instrs, seed = 32, 8000, 1
	progs := workload.Generate(params, cores, instrs, seed)

	fmt.Printf("workload: %s — %s\n", params.Name, params.Descr)
	fmt.Printf("%d cores, %d instructions each\n\n", cores, instrs)

	var eagerCycles uint64
	for _, policy := range []config.AtomicPolicy{
		config.PolicyEager, config.PolicyLazy, config.PolicyRoW,
	} {
		cfg := config.Default()
		cfg.NumCores = cores
		cfg.Policy = policy
		// The plain baselines do not use RoW's early address pass.
		cfg.EarlyAddrCalc = policy == config.PolicyRoW

		system, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(params)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := system.Run()
		if err != nil {
			log.Fatal(err)
		}
		if policy == config.PolicyEager {
			eagerCycles = res.Cycles
		}
		fmt.Printf("%-6s  %9d cycles  (%.3fx vs eager)  IPC %.2f  %4.1f%% of atomics contended\n",
			policy, res.Cycles, float64(res.Cycles)/float64(eagerCycles), res.IPC, res.ContendedFrac*100)
	}

	fmt.Println("\nOn a contended workload, lazy execution beats eager by keeping")
	fmt.Println("cachelines locked only briefly; RoW predicts the contention per")
	fmt.Println("atomic PC and follows the better policy automatically.")
}
