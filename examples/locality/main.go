// Locality: reproduce the cq anomaly of Section VI — a workload whose
// atomics are contended yet favour eager execution, because each
// atomic follows a store to the same cacheline. Executing the atomic
// eagerly locks the line while the store still owns it; executing it
// lazily lets another core steal the line in between, exposing a full
// re-acquisition. The store-forwarding extension of RoW (Section IV-E)
// flips such predicted-contended atomics back to eager.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/workload"
)

func main() {
	params := workload.MustGet("cq")
	const cores, instrs, seed = 32, 10000, 3
	progs := workload.Generate(params, cores, instrs, seed)

	type variant struct {
		name string
		mut  func(*config.Config)
	}
	variants := []variant{
		{"eager", func(c *config.Config) { c.Policy = config.PolicyEager }},
		{"lazy", func(c *config.Config) { c.Policy = config.PolicyLazy }},
		{"row (no fwd)", func(c *config.Config) { c.Policy = config.PolicyRoW; c.ForwardAtomics = false }},
		{"row + fwd", func(c *config.Config) { c.Policy = config.PolicyRoW; c.ForwardAtomics = true }},
	}

	table := &stats.Table{
		Title:   fmt.Sprintf("%s — %s", params.Name, params.Descr),
		Headers: []string{"variant", "cycles", "vs-eager", "forwarded-atomics", "contended"},
	}
	var eager uint64
	for _, v := range variants {
		cfg := config.Default()
		cfg.NumCores = cores
		cfg.ForwardAtomics = false
		v.mut(cfg)
		cfg.EarlyAddrCalc = cfg.Policy == config.PolicyRoW
		system, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(params)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := system.Run()
		if err != nil {
			log.Fatal(err)
		}
		if v.name == "eager" {
			eager = res.Cycles
		}
		table.AddRow(v.name,
			fmt.Sprint(res.Cycles),
			stats.F(float64(res.Cycles)/float64(eager)),
			fmt.Sprint(res.ForwardedAtomics),
			stats.Pct(res.ContendedFrac))
	}
	fmt.Println(table)
	fmt.Println("The atomics are contended, yet lazy execution loses the line")
	fmt.Println("between the companion store's write and the atomic's issue.")
}
