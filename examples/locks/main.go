// Locks: the paper motivates atomics as the substrate of software
// synchronization. This example runs three classic algorithms —
// test-and-set spinlocks, ticket locks and sense-reversing barriers —
// under all four execution policies and shows how dramatic the
// when/where decision becomes once the atomic IS the lock.
//
//	go run ./examples/locks
package main

import (
	"fmt"
	"log"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/stats"
	"rowsim/internal/workload"
)

func main() {
	const cores, instrs, seed = 16, 8000, 1

	table := &stats.Table{
		Title:   "Synchronization kernels — cycles by policy (16 cores)",
		Headers: []string{"kernel", "eager", "lazy", "row", "far", "best"},
	}
	for _, name := range workload.SyncKernels {
		params := workload.MustGet(name)
		progs := workload.Generate(params, cores, instrs, seed)
		cycles := map[config.AtomicPolicy]uint64{}
		for _, policy := range []config.AtomicPolicy{
			config.PolicyEager, config.PolicyLazy, config.PolicyRoW, config.PolicyFar,
		} {
			cfg := config.Default()
			cfg.NumCores = cores
			cfg.Policy = policy
			cfg.RoW.Predictor = config.PredSaturate
			cfg.EarlyAddrCalc = policy == config.PolicyRoW
			system, err := sim.New(cfg, progs)
			if err != nil {
				log.Fatal(err)
			}
			res, err := system.Run()
			if err != nil {
				log.Fatal(err)
			}
			cycles[policy] = res.Cycles
		}
		best, bestN := "eager", cycles[config.PolicyEager]
		for _, p := range []struct {
			n string
			v config.AtomicPolicy
		}{{"lazy", config.PolicyLazy}, {"row", config.PolicyRoW}, {"far", config.PolicyFar}} {
			if cycles[p.v] < bestN {
				best, bestN = p.n, cycles[p.v]
			}
		}
		table.AddRow(name,
			fmt.Sprint(cycles[config.PolicyEager]),
			fmt.Sprint(cycles[config.PolicyLazy]),
			fmt.Sprint(cycles[config.PolicyRoW]),
			fmt.Sprint(cycles[config.PolicyFar]),
			best)
	}
	fmt.Println(table)
	fmt.Println("Eagerly locking a lock word while the winner's ROB drains starves")
	fmt.Println("every spinner; lazy (and RoW) recover it. Barrier arrivals invert:")
	fmt.Println("eager wins among near policies, and far — a fetch-and-add at the")
	fmt.Println("L3 bank — beats everything, since the counter line never migrates.")
}
