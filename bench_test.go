// Package rowsim_test holds the benchmark harness: one testing.B
// benchmark per paper table/figure, each running a scaled-down version
// of the corresponding experiment and reporting the figure's headline
// metric via b.ReportMetric, plus micro-benchmarks of the simulator's
// hot components. cmd/rowbench regenerates the full-scale tables.
package rowsim_test

import (
	"testing"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/experiments"
	"rowsim/internal/interconnect"
	"rowsim/internal/predictor"
	"rowsim/internal/sim"
	"rowsim/internal/sram"
	"rowsim/internal/workload"
	"rowsim/internal/xrand"
)

// coherenceMsg is reused by the mesh benchmark.
var coherenceMsg = coherence.Msg{Type: coherence.MsgGetS, Src: 0, Dst: 39}

// benchOptions keeps every figure benchmark at laptop scale: a few
// cores, short traces, one contended and one non-contended workload.
func benchOptions() experiments.Options {
	return experiments.Options{
		Cores:     8,
		Instrs:    3000,
		Seed:      1,
		Workloads: []string{"canneal", "sps"},
	}
}

func BenchmarkFig1EagerVsLazy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		e := r.MustRun("sps", experiments.VarEager)
		l := r.MustRun("sps", experiments.VarLazy)
		b.ReportMetric(experiments.Norm(l.Cycles, e.Cycles), "lazy/eager(sps)")
		e = r.MustRun("canneal", experiments.VarEager)
		l = r.MustRun("canneal", experiments.VarLazy)
		b.ReportMetric(experiments.Norm(l.Cycles, e.Cycles), "lazy/eager(canneal)")
	}
}

func BenchmarkFig2Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Cores: 1, Instrs: 2000, Seed: 1, Workloads: []string{"sps"}})
		tab := experiments.Fig2(r)
		if len(tab.Rows) != 12 {
			b.Fatal("fig2 incomplete")
		}
	}
}

func BenchmarkFig4IndependentInstrs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		e := r.MustRun("sps", experiments.VarEager)
		l := r.MustRun("sps", experiments.VarLazy)
		b.ReportMetric(e.OlderUnexecAtEager, "older-unexec@eager")
		b.ReportMetric(l.YoungerStartedAtLazy, "younger-started@lazy")
	}
}

func BenchmarkFig5AtomicIntensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		res := r.MustRun("sps", experiments.VarEager)
		b.ReportMetric(res.AtomicsPer10K, "atomics/10k")
		b.ReportMetric(res.ContendedFrac*100, "%contended")
	}
}

func BenchmarkFig6LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		e := r.MustRun("sps", experiments.VarEager)
		b.ReportMetric(e.DispatchToIssue, "disp->issue")
		b.ReportMetric(e.IssueToLock, "issue->lock")
		b.ReportMetric(e.LockToUnlock, "lock->unlock")
	}
}

func BenchmarkFig9RoWVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		e := r.MustRun("sps", experiments.VarEager)
		best := 2.0
		for _, v := range []experiments.Variant{experiments.VarDirUD, experiments.VarDirSat} {
			n := experiments.Norm(r.MustRun("sps", v).Cycles, e.Cycles)
			if n < best {
				best = n
			}
		}
		b.ReportMetric(best, "bestRoW/eager(sps)")
	}
}

func BenchmarkFig10ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		for _, th := range []int{0, 400, -2} {
			v := experiments.VarDirUD
			v.Threshold = th
			r.MustRun("sps", v)
		}
	}
}

func BenchmarkFig11MissLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		e := r.MustRun("sps", experiments.VarEager)
		l := r.MustRun("sps", experiments.VarLazy)
		b.ReportMetric(e.MissLatency, "missLat(eager)")
		b.ReportMetric(l.MissLatency, "missLat(lazy)")
	}
}

func BenchmarkFig12PredictorAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		res := r.MustRun("sps", experiments.VarDirUD)
		b.ReportMetric(res.PredAccuracy*100, "%accuracy(U/D)")
	}
}

func BenchmarkFig13Forwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{
			Cores: 8, Instrs: 3000, Seed: 1, Workloads: []string{"cq"},
		})
		e := r.MustRun("cq", experiments.VarEager)
		f := r.MustRun("cq", experiments.VarDirUDFwd)
		b.ReportMetric(experiments.Norm(f.Cycles, e.Cycles), "RoW+Fwd/eager(cq)")
		b.ReportMetric(float64(f.ForwardedAtomics), "forwarded")
	}
}

func BenchmarkSummaryHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		e := r.MustRun("sps", experiments.VarEager)
		w := r.MustRun("sps", experiments.VarDirSatFwd)
		b.ReportMetric(experiments.Norm(w.Cycles, e.Cycles), "RoW/eager(sps)")
	}
}

// --- component micro-benchmarks ---------------------------------

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Simulated instructions per second: the simulator's own speed.
	progs := workload.Generate(workload.MustGet("tpcc"), 8, 4000, 1)
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		cfg.NumCores = 8
		cfg.MaxCycles = 100_000_000
		s, err := sim.New(cfg, progs)
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		committed += r.Committed
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkSramLookup(b *testing.B) {
	a := sram.New(48<<10, 12, 64)
	rng := xrand.New(1)
	for i := 0; i < 512; i++ {
		a.Insert(uint64(rng.Intn(1<<20))&^63, 1)
	}
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<20)) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(addrs[i%len(addrs)], true)
	}
}

func BenchmarkMeshSendDeliver(b *testing.B) {
	// Throughput of the interconnect event queue.
	b.ReportAllocs()
	m := interconnect.NewMesh(40, 1, 2, 4)
	for i := 0; i < b.N; i++ {
		m.Tick(uint64(i))
		m.Send(&coherenceMsg)
		if i%64 == 0 {
			for n := 0; n < 40; n++ {
				m.Drain(n)
			}
		}
	}
}

func BenchmarkBranchPredictor(b *testing.B) {
	p := predictor.NewBranch(12)
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		p.PredictAndTrain(uint64(0x400000+(i%256)*4), rng.Bool(0.9))
	}
}

func BenchmarkContentionPredictor(b *testing.B) {
	p := predictor.NewContention(config.Default())
	for i := 0; i < b.N; i++ {
		pc := uint64(0x400000 + (i%64)*4)
		pred := p.Predict(pc)
		p.Train(pc, pred, i%3 == 0)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p := workload.MustGet("tpcc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Generate(p, 4, 4000, uint64(i))
	}
}

// nullNet drops every message (directory micro-benchmark harness).
type nullNet struct{}

func (nullNet) Send(*coherence.Msg)              {}
func (nullNet) SendAfter(*coherence.Msg, uint64) {}

func BenchmarkDirectoryTransaction(b *testing.B) {
	d := coherence.NewDirectory(32, 0, nullNet{}, 4<<20, 16, 64, 35, 160)
	for i := 0; i < b.N; i++ {
		line := uint64(i%4096) * 64
		d.Handle(&coherence.Msg{Type: coherence.MsgGetX, Line: line, Src: 0, Dst: 32, Requestor: 0})
		d.Handle(&coherence.Msg{Type: coherence.MsgUnblockX, Line: line, Src: 0, Dst: 32, Requestor: 0})
	}
}

func BenchmarkCacheHitPath(b *testing.B) {
	cfg := config.Default()
	pc := cacheUnderBench(cfg)
	pc.Warm(0x40000000, 3 /* StateM */)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Tick(uint64(i))
		pc.Access(benchClientTag, 0x40000000, false)
	}
}

const benchClientTag = 7

type benchClient struct{}

func (benchClient) MemResp(uint64, cache.RespInfo)    {}
func (benchClient) ExternalRequest(uint64, bool) bool { return false }
func (benchClient) LineInvalidated(uint64)            {}
func (benchClient) LineLocked(uint64) bool            { return false }
func (benchClient) ForceRelease(uint64) bool          { return false }

func cacheUnderBench(cfg *config.Config) *cache.Private {
	return cache.NewPrivate(0, cfg, nullNet{}, benchClient{}, func(uint64) int { return 32 })
}
