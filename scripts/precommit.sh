#!/bin/sh
# Fast pre-commit gate: build the module, then rowlint only the
# packages with files modified since the last commit (staged, unstaged
# and untracked). The full-module pass — all analyzers, the ownership
# report and the shard-plan drift check — stays in CI; this keeps the
# edit loop under a few seconds.
#
# Install:  ln -s ../../scripts/precommit.sh .git/hooks/pre-commit
# Run everything instead:  scripts/precommit.sh -all
set -eu

cd "$(dirname "$0")/.."

go build ./...

if [ "${1:-}" = "-all" ]; then
    exec go run ./cmd/rowlint ./...
fi

exec go run ./cmd/rowlint -changed ./...
