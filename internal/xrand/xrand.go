// Package xrand provides a small, fast, deterministic PRNG
// (SplitMix64) used by the workload generators. Determinism across
// runs and platforms matters more here than statistical strength: the
// same seed must always produce the same instruction trace so
// experiments are reproducible.
package xrand

// RNG is a SplitMix64 pseudo-random number generator. The zero value
// is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the generator's current internal state. Together with
// SetState it lets a checkpoint capture and later resume a stream
// mid-sequence: restoring the state replays exactly the numbers the
// original stream would have produced next.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state (checkpoint
// restore). SetState(New(seed).State()) is equivalent to New(seed).
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric-ish distribution with
// the given mean (minimum 1). Used for dependency distances and
// inter-arrival gaps.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for !r.Bool(p) && n < int(mean*8) {
		n++
	}
	return n
}
