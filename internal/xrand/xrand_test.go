package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := New(seed)
		bound := int(n%1000) + 1
		for i := 0; i < 100; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %.3f outside [0.28,0.32]", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(77)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		v := r.Geometric(6)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 4.5 || mean > 7.5 {
		t.Fatalf("Geometric(6) mean %.2f outside [4.5,7.5]", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(<=1) = %d, want 1", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-square-ish sanity: 16 buckets over Intn(16).
	r := New(123)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for i, c := range buckets {
		if c < n/16*9/10 || c > n/16*11/10 {
			t.Fatalf("bucket %d count %d deviates more than 10%% from %d", i, c, n/16)
		}
	}
}
