package viz

import (
	"strings"
	"testing"

	"rowsim/internal/stats"
)

func sample() *stats.Table {
	t := &stats.Table{Title: "T", Headers: []string{"wl", "ratio"}}
	t.AddRow("alpha", "0.500")
	t.AddRow("beta", "1.000")
	t.AddRow("gamma", "2.000")
	t.AddRow("junk", "n/a")
	return t
}

func TestBarChartProportions(t *testing.T) {
	out := BarChart(sample(), 1, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + three parsable rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	count := func(s string) int { return strings.Count(s, "#") }
	a, b, g := count(lines[1]), count(lines[2]), count(lines[3])
	if g != 40 {
		t.Fatalf("max bar = %d, want full width 40", g)
	}
	if b != 20 || a != 10 {
		t.Fatalf("bars not proportional: %d/%d/%d", a, b, g)
	}
}

func TestBarChartEmpty(t *testing.T) {
	empty := &stats.Table{Headers: []string{"a", "b"}}
	if BarChart(empty, 1, 10) != "" {
		t.Fatal("empty table must render nothing")
	}
}

func TestNormChartMarker(t *testing.T) {
	out := NormChart(sample(), 1, 40)
	if !strings.Contains(out, "|") {
		t.Fatalf("missing 1.0 marker:\n%s", out)
	}
	// The 0.5 bar ends before the marker; 2.0 covers it.
	lines := strings.Split(out, "\n")
	alpha := lines[1]
	if !strings.Contains(alpha, "#") || strings.Index(alpha, "|") < strings.LastIndex(alpha, "#") {
		t.Fatalf("0.5 bar should stop before the 1.0 marker:\n%s", alpha)
	}
}

func TestPercentCellsParse(t *testing.T) {
	tab := &stats.Table{Headers: []string{"wl", "pct"}}
	tab.AddRow("x", "42.0%")
	out := BarChart(tab, 1, 10)
	if !strings.Contains(out, "42.000") {
		t.Fatalf("percent cell not parsed:\n%s", out)
	}
}

func TestTinyValueGetsMinimumBar(t *testing.T) {
	tab := &stats.Table{Headers: []string{"wl", "v"}}
	tab.AddRow("big", "1000")
	tab.AddRow("tiny", "0.001")
	out := BarChart(tab, 1, 30)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "tiny") && !strings.Contains(line, "#") {
			t.Fatalf("tiny value rendered with no bar:\n%s", out)
		}
	}
}
