// Package viz renders experiment tables as horizontal ASCII bar
// charts, so rowbench output reads like the paper's figures rather
// than raw numbers.
package viz

import (
	"fmt"
	"strconv"
	"strings"

	"rowsim/internal/stats"
)

// BarChart renders one numeric column of a table as labeled bars.
// Non-numeric cells (and a trailing % sign) are tolerated; rows whose
// cell does not parse are skipped. width is the maximum bar length in
// characters.
func BarChart(t *stats.Table, column int, width int) string {
	if width <= 0 {
		width = 50
	}
	type row struct {
		label string
		value float64
	}
	var rows []row
	maxVal := 0.0
	labelW := 0
	for _, r := range t.Rows {
		if column >= len(r) {
			continue
		}
		v, err := parseCell(r[column])
		if err != nil {
			continue
		}
		rows = append(rows, row{label: r[0], value: v})
		if v > maxVal {
			maxVal = v
		}
		if len(r[0]) > labelW {
			labelW = len(r[0])
		}
	}
	if len(rows) == 0 || maxVal <= 0 {
		return ""
	}
	var b strings.Builder
	if t.Title != "" && column < len(t.Headers) {
		fmt.Fprintf(&b, "%s — %s\n", t.Title, t.Headers[column])
	}
	for _, r := range rows {
		n := int(r.value / maxVal * float64(width))
		if n < 1 && r.value > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s  %-*s %8.3f\n", labelW, r.label, width, strings.Repeat("#", n), r.value)
	}
	return b.String()
}

// NormChart renders a normalized-time column with a reference line at
// 1.0: bars shorter than the marker beat the baseline.
func NormChart(t *stats.Table, column int, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if t.Title != "" && column < len(t.Headers) {
		fmt.Fprintf(&b, "%s — %s (| marks 1.0)\n", t.Title, t.Headers[column])
	}
	labelW := 0
	maxVal := 1.0
	for _, r := range t.Rows {
		if column < len(r) {
			if v, err := parseCell(r[column]); err == nil && v > maxVal {
				maxVal = v
			}
			if len(r[0]) > labelW {
				labelW = len(r[0])
			}
		}
	}
	marker := int(1.0 / maxVal * float64(width))
	for _, r := range t.Rows {
		if column >= len(r) {
			continue
		}
		v, err := parseCell(r[column])
		if err != nil {
			continue
		}
		n := int(v / maxVal * float64(width))
		if n < 1 && v > 0 {
			n = 1
		}
		bar := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n+1))
		if marker >= 0 && marker < len(bar) {
			if bar[marker] == ' ' {
				bar[marker] = '|'
			}
		}
		fmt.Fprintf(&b, "%-*s  %s %8.3f\n", labelW, r[0], string(bar), v)
	}
	return b.String()
}

func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	return strconv.ParseFloat(s, 64)
}
