// Package profiling wires the standard runtime/pprof and runtime/trace
// collectors behind the -cpuprofile/-memprofile/-trace flags of the
// rowbench and rowsweep binaries, so perf work can profile real figure
// runs without patching the tools.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start enables the requested collectors (empty path = off) and
// returns a stop function that must run before process exit: it ends
// the CPU profile and trace, and writes the heap profile (after a GC,
// so it reflects live objects rather than garbage).
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if tracePath != "" {
		traceF, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}
