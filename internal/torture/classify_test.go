package torture

import (
	"testing"

	"rowsim/internal/sim"
)

// TestClassifyMsgLeak: pool-conservation failures get their own
// failure kind in sweep summaries.
func TestClassifyMsgLeak(t *testing.T) {
	err := &sim.MsgLeakError{Cycle: 42, Outstanding: 3, InFlight: 1, Retained: 1}
	if kind := Classify(err); kind != "msg-leak" {
		t.Fatalf("Classify(MsgLeakError) = %q, want \"msg-leak\"", kind)
	}
}
