package torture

import (
	"testing"

	"rowsim/internal/mcheck"
	"rowsim/internal/sim"
)

// TestClassifyMsgLeak: pool-conservation failures get their own
// failure kind in sweep summaries.
func TestClassifyMsgLeak(t *testing.T) {
	err := &sim.MsgLeakError{Cycle: 42, Outstanding: 3, InFlight: 1, Retained: 1}
	if kind := Classify(err); kind != "msg-leak" {
		t.Fatalf("Classify(MsgLeakError) = %q, want \"msg-leak\"", kind)
	}
}

// TestClassifyMcheckInvariant: model-checker counterexamples replayed
// through the torture CLI are classified distinctly.
func TestClassifyMcheckInvariant(t *testing.T) {
	err := &mcheck.InvariantError{Kind: "swmr", Detail: "two writers"}
	if kind := Classify(err); kind != "mcheck-invariant" {
		t.Fatalf("Classify(InvariantError) = %q, want \"mcheck-invariant\"", kind)
	}
}
