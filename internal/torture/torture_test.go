package torture

import (
	"errors"
	"strings"
	"testing"

	"rowsim/internal/coherence"
	"rowsim/internal/faults"
	"rowsim/internal/sim"
)

// TestSmallSweep runs a miniature torture sweep end to end; every run
// must pass and the replay sample must be deterministic.
func TestSmallSweep(t *testing.T) {
	sum := Torture(Options{
		Runs:        10,
		Seed:        21,
		Cores:       []int{4},
		Instrs:      []int{500},
		ReplayEvery: 3,
		MaxCycles:   5_000_000,
	})
	if !sum.OK() {
		t.Fatalf("sweep failed:\n%s", sum)
	}
	if sum.Runs != 10 || sum.Replayed == 0 {
		t.Fatalf("unexpected accounting: %s", sum)
	}
}

// TestSweepIsDeterministic: the same master seed derives the same specs.
func TestSweepIsDeterministic(t *testing.T) {
	opt := Options{Runs: 20, Seed: 9}.withDefaults()
	a, b := specs(opt), specs(opt)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestExecuteMatchesReproLine: executing the same spec twice gives the
// identical result — what makes a printed repro line trustworthy.
func TestExecuteMatchesReproLine(t *testing.T) {
	spec := RunSpec{
		Seed:      0x1235,
		Workload:  "cq",
		Variant:   "RW+Dir_Sat",
		Cores:     4,
		Instrs:    500,
		Faults:    faults.Config{Seed: 4, JitterProb: 0.5, JitterMax: 16},
		MaxCycles: 5_000_000,
	}
	line := spec.ReproLine()
	for _, want := range []string{"rowtorture", "-seed 0x1235", "-wl cq", `-variant "RW+Dir_Sat"`, "jitter=0.5:16"} {
		if !strings.Contains(line, want) {
			t.Fatalf("repro line %q missing %q", line, want)
		}
	}
	// The fault spec embedded in the line must parse back to the config.
	fc, err := faults.ParseSpec(spec.Faults.Spec())
	if err != nil || fc != spec.Faults {
		t.Fatalf("fault spec round trip: %+v, %v", fc, err)
	}
	a, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replay mismatch:\nfirst  %+v\nsecond %+v", a, b)
	}
}

// TestExecuteSchedulerEquivalence: one spec executed under both
// schedulers (faults on) must agree on everything but the
// visited-cycle bookkeeping, and the repro line must name the
// scheduler only when it is not the default.
func TestExecuteSchedulerEquivalence(t *testing.T) {
	spec := RunSpec{
		Seed:      0x9d1,
		Workload:  "sps",
		Variant:   "Lazy",
		Cores:     4,
		Instrs:    500,
		Faults:    faults.Config{Seed: 6, JitterProb: 0.25, JitterMax: 12, ReorderProb: 0.05, ReorderMax: 64},
		MaxCycles: 5_000_000,
	}
	spec.Sched = sim.SchedEvent
	ev, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Sched = sim.SchedCycle
	cy, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ev.SchedNormalized() != cy.SchedNormalized() {
		t.Fatalf("schedulers diverge:\nevent: %+v\ncycle: %+v", ev, cy)
	}
	if !strings.Contains(spec.ReproLine(), "-sched cycle") {
		t.Errorf("cycle-mode repro line omits the scheduler: %q", spec.ReproLine())
	}
	spec.Sched = sim.SchedEvent
	if strings.Contains(spec.ReproLine(), "-sched") {
		t.Errorf("default-mode repro line names the scheduler: %q", spec.ReproLine())
	}
}

// TestSweepCycleSchedulerPrimary runs a miniature sweep with the cycle
// scheduler as the primary mode, so the determinism replays execute
// under the event scheduler — the reverse direction of the default.
func TestSweepCycleSchedulerPrimary(t *testing.T) {
	sum := Torture(Options{
		Runs:        6,
		Seed:        33,
		Sched:       sim.SchedCycle,
		Cores:       []int{4},
		Instrs:      []int{500},
		ReplayEvery: 2,
		MaxCycles:   5_000_000,
	})
	if !sum.OK() {
		t.Fatalf("sweep failed:\n%s", sum)
	}
	if sum.Replayed == 0 {
		t.Fatalf("no runs replayed: %s", sum)
	}
}

// TestIllegalFaultsAreDetected: a drop-everything config must be caught
// by the failure machinery (watchdog), never pass silently.
func TestIllegalFaultsAreDetected(t *testing.T) {
	_, err := Execute(RunSpec{
		Seed:      0x77,
		Workload:  "pc",
		Variant:   "Eager",
		Cores:     4,
		Instrs:    500,
		Faults:    faults.Config{Seed: 1, DropProb: 1},
		MaxCycles: 3_000_000,
	})
	if err == nil {
		t.Fatal("dropped messages went undetected")
	}
	if kind := Classify(err); kind != "deadlock" && kind != "cycle-limit" {
		t.Fatalf("unexpected failure kind %q for: %v", kind, err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		kind string
	}{
		{&ReplayMismatchError{Detail: "x"}, "replay-mismatch"},
		{&coherence.ProtocolError{}, "protocol"},
		{&sim.DeadlockError{}, "deadlock"},
		{&sim.CycleLimitError{}, "cycle-limit"},
		{&sim.CoherenceViolationError{}, "coherence"},
		{errors.New("bad workload"), "setup"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.kind {
			t.Errorf("Classify(%T) = %q, want %q", c.err, got, c.kind)
		}
	}
}

func TestLookupVariant(t *testing.T) {
	for _, name := range VariantNames() {
		if _, err := LookupVariant(name); err != nil {
			t.Errorf("LookupVariant(%q): %v", name, err)
		}
	}
	if _, err := LookupVariant("NoSuchVariant"); err == nil {
		t.Error("unknown variant accepted")
	}
}
