// Package torture is the randomized protocol torture harness: it runs
// many (seed × workload × variant × fault-config) simulations across
// worker goroutines, checks the coherence invariants during each run,
// replays a sample of runs to verify deterministic reproduction, and
// reports every failure as a one-line re-runnable command. It is the
// regression safety net every perf or protocol change runs against.
package torture

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/experiments"
	"rowsim/internal/faults"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
	"rowsim/internal/xrand"
)

// Variants eligible for the sweep, by the names printed in repro
// lines. Kept in a fixed order so seed-driven choices are stable.
var variants = []experiments.Variant{
	experiments.VarEager,
	experiments.VarLazy,
	experiments.VarDirUD,
	experiments.VarDirSat,
	experiments.VarDirSatFwd,
	{Name: "Far", Policy: config.PolicyFar, Threshold: -1},
}

// VariantNames returns the sweep's variant names, in order.
func VariantNames() []string {
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.Name
	}
	return names
}

// LookupVariant resolves a repro line's variant name.
func LookupVariant(name string) (experiments.Variant, error) {
	for _, v := range variants {
		if v.Name == name {
			return v, nil
		}
	}
	return experiments.Variant{}, fmt.Errorf("torture: unknown variant %q (known: %v)", name, VariantNames())
}

// defaultWorkloads are the sweep's trace generators: the contended
// workloads that stress the protocol hardest, plus the lock/barrier
// kernels whose cache-locking traffic drives the Fig. 8 race.
var defaultWorkloads = []string{
	"cq", "sps", "pc", "tatp", "tpcc", "barnes",
	"raytrace", "streamcluster", "tas", "ticket", "barrier",
}

// faultLevels are the legal fault mixes the sweep draws from
// (weighted by repetition). Illegal modes (dup/drop) never enter the
// sweep: they exist to exercise failure detection, not to pass.
var faultLevels = []faults.Config{
	{}, // no faults: the pure-timing baseline must always pass
	{JitterProb: 0.1, JitterMax: 8},
	{JitterProb: 0.5, JitterMax: 16},
	{JitterProb: 0.25, JitterMax: 12, ReorderProb: 0.05, ReorderMax: 64},
	{ReorderProb: 0.15, ReorderMax: 128},
}

// Options scales a torture sweep. The zero value is a sensible default
// sweep of 100 runs.
type Options struct {
	Runs    int // number of randomized configs (default 100)
	Workers int // concurrent simulations (default GOMAXPROCS)
	Seed    uint64

	Cores     []int    // core-count choices (default {4, 8})
	Instrs    []int    // per-core instruction-count choices (default {1000, 2500})
	Workloads []string // default: the contended set above

	// ReplayEvery re-runs every Nth config and requires a byte-identical
	// sim.Result — the determinism that makes repro lines trustworthy.
	// 0 disables replay; default every 5th run.
	ReplayEvery int

	CheckEvery uint64 // coherence-invariant interval (default 4096)
	MaxCycles  uint64 // per-run cycle budget (default 20M)

	// Progress, when set, receives a line per completed run. Called
	// from worker goroutines; must be safe for concurrent use.
	Progress func(msg string)
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 100
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Cores) == 0 {
		o.Cores = []int{4, 8}
	}
	if len(o.Instrs) == 0 {
		o.Instrs = []int{1000, 2500}
	}
	if len(o.Workloads) == 0 {
		o.Workloads = defaultWorkloads
	}
	if o.ReplayEvery == 0 {
		o.ReplayEvery = 5
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 4096
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	return o
}

// RunSpec fully determines one torture run; its ReproLine re-runs it.
type RunSpec struct {
	Seed     uint64 // workload-trace seed
	Workload string
	Variant  string
	Cores    int
	Instrs   int
	Faults   faults.Config

	CheckEvery uint64
	MaxCycles  uint64
}

// ReproLine renders the one-line reproduction command.
func (s RunSpec) ReproLine() string {
	return fmt.Sprintf("rowtorture -seed %#x -wl %s -variant %q -cores %d -instrs %d -faults %q",
		s.Seed, s.Workload, s.Variant, s.Cores, s.Instrs, s.Faults.Spec())
}

// Execute performs one run of the spec and returns its result. All
// failure modes come back as errors: protocol violations
// (*coherence.ProtocolError), deadlocks (*sim.DeadlockError), budget
// exhaustion (*sim.CycleLimitError) and invariant breaks
// (*sim.CoherenceViolationError).
func Execute(spec RunSpec) (sim.Result, error) {
	v, err := LookupVariant(spec.Variant)
	if err != nil {
		return sim.Result{}, err
	}
	p, err := workload.Get(spec.Workload)
	if err != nil {
		return sim.Result{}, err
	}
	progs := workload.Generate(p, spec.Cores, spec.Instrs, spec.Seed)
	cfg := v.Config(spec.Cores)
	if spec.MaxCycles > 0 {
		cfg.MaxCycles = spec.MaxCycles
	}
	opts := []sim.Option{sim.WithWarmFilter(workload.WarmFilter(p))}
	if spec.CheckEvery > 0 {
		opts = append(opts, sim.WithInvariantChecks(spec.CheckEvery))
	}
	if spec.Faults.Enabled() {
		opts = append(opts, sim.WithFaults(spec.Faults))
	}
	s, err := sim.New(cfg, progs, opts...)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run()
}

// ReplayMismatchError reports nondeterminism: the same spec produced
// a different outcome when re-executed.
type ReplayMismatchError struct{ Detail string }

func (e *ReplayMismatchError) Error() string {
	return "replay mismatch (nondeterministic run): " + e.Detail
}

// Failure is one failed run, classified for the summary.
type Failure struct {
	Index int // run index within the sweep
	Spec  RunSpec
	Err   error
	Kind  string // protocol | deadlock | cycle-limit | coherence | replay-mismatch | setup
}

// Classify names the failure mode of a run error.
func Classify(err error) string {
	var pe *coherence.ProtocolError
	var de *sim.DeadlockError
	var ce *sim.CycleLimitError
	var ve *sim.CoherenceViolationError
	var re *ReplayMismatchError
	switch {
	case errors.As(err, &re):
		return "replay-mismatch"
	case errors.As(err, &pe):
		return "protocol"
	case errors.As(err, &de):
		return "deadlock"
	case errors.As(err, &ce):
		return "cycle-limit"
	case errors.As(err, &ve):
		return "coherence"
	default:
		return "setup"
	}
}

// Summary aggregates a sweep.
type Summary struct {
	Runs     int
	Replayed int
	Failures []Failure
	ByKind   map[string]int
}

// OK reports a clean sweep.
func (s Summary) OK() bool { return len(s.Failures) == 0 }

// String renders the human summary, failures first.
func (s Summary) String() string {
	out := ""
	for _, f := range s.Failures {
		out += fmt.Sprintf("FAIL [%s] %s\n  %v\n", f.Kind, f.Spec.ReproLine(), f.Err)
	}
	out += fmt.Sprintf("torture: %d runs, %d replayed, %d failures", s.Runs, s.Replayed, len(s.Failures))
	if len(s.ByKind) > 0 {
		kinds := make([]string, 0, len(s.ByKind))
		for k := range s.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			out += fmt.Sprintf(" %s=%d", k, s.ByKind[k])
		}
	}
	return out
}

// specs derives the sweep's run specs from the master seed. Purely
// sequential and deterministic: the same (seed, options) always
// produce the same sweep.
func specs(opt Options) []RunSpec {
	rng := xrand.New(opt.Seed)
	out := make([]RunSpec, opt.Runs)
	for i := range out {
		fl := faultLevels[rng.Intn(len(faultLevels))]
		fl.Seed = rng.Uint64()
		out[i] = RunSpec{
			Seed:       rng.Uint64() | 1, // workload.Generate treats seed 0 as unset in places
			Workload:   opt.Workloads[rng.Intn(len(opt.Workloads))],
			Variant:    variants[rng.Intn(len(variants))].Name,
			Cores:      opt.Cores[rng.Intn(len(opt.Cores))],
			Instrs:     opt.Instrs[rng.Intn(len(opt.Instrs))],
			Faults:     fl,
			CheckEvery: opt.CheckEvery,
			MaxCycles:  opt.MaxCycles,
		}
	}
	return out
}

// Torture runs the sweep and returns the summary.
func Torture(opt Options) Summary {
	opt = opt.withDefaults()
	all := specs(opt)

	type outcome struct {
		err      error
		replayed bool
	}
	outcomes := make([]outcome, len(all))

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				spec := all[i]
				res, err := Execute(spec)
				replayed := false
				if err == nil && opt.ReplayEvery > 0 && i%opt.ReplayEvery == 0 {
					replayed = true
					res2, err2 := Execute(spec)
					switch {
					case err2 != nil:
						err = &ReplayMismatchError{Detail: fmt.Sprintf("replay failed where the first run passed: %v", err2)}
					case res2 != res:
						err = &ReplayMismatchError{Detail: fmt.Sprintf("first run %d cycles / %d messages, replay %d cycles / %d messages",
							res.Cycles, res.NetworkMessages, res2.Cycles, res2.NetworkMessages)}
					}
				}
				outcomes[i] = outcome{err: err, replayed: replayed}
				if opt.Progress != nil {
					status := "ok"
					if err != nil {
						status = "FAIL"
					}
					opt.Progress(fmt.Sprintf("run %4d %-4s %-13s %-14s cores=%d faults=%s",
						i, status, spec.Workload, spec.Variant, spec.Cores, spec.Faults.Spec()))
				}
			}
		}()
	}
	for i := range all {
		work <- i
	}
	close(work)
	wg.Wait()

	sum := Summary{Runs: len(all), ByKind: make(map[string]int)}
	for i, o := range outcomes {
		if o.replayed {
			sum.Replayed++
		}
		if o.err == nil {
			continue
		}
		kind := Classify(o.err)
		sum.ByKind[kind]++
		sum.Failures = append(sum.Failures, Failure{Index: i, Spec: all[i], Err: o.err, Kind: kind})
	}
	sort.Slice(sum.Failures, func(a, b int) bool { return sum.Failures[a].Index < sum.Failures[b].Index })
	return sum
}
