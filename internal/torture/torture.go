// Package torture is the randomized protocol torture harness: it runs
// many (seed × workload × variant × fault-config) simulations across
// worker goroutines, checks the coherence invariants during each run,
// replays a sample of runs to verify deterministic reproduction, and
// reports every failure as a one-line re-runnable command. It is the
// regression safety net every perf or protocol change runs against.
package torture

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"rowsim/internal/checkpoint"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/experiments"
	"rowsim/internal/faults"
	"rowsim/internal/lifecycle"
	"rowsim/internal/mcheck"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
	"rowsim/internal/xrand"
)

// Variants eligible for the sweep, by the names printed in repro
// lines. Kept in a fixed order so seed-driven choices are stable.
var variants = []experiments.Variant{
	experiments.VarEager,
	experiments.VarLazy,
	experiments.VarDirUD,
	experiments.VarDirSat,
	experiments.VarDirSatFwd,
	{Name: "Far", Policy: config.PolicyFar, Threshold: -1},
}

// VariantNames returns the sweep's variant names, in order.
func VariantNames() []string {
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.Name
	}
	return names
}

// LookupVariant resolves a repro line's variant name.
func LookupVariant(name string) (experiments.Variant, error) {
	for _, v := range variants {
		if v.Name == name {
			return v, nil
		}
	}
	return experiments.Variant{}, fmt.Errorf("torture: unknown variant %q (known: %v)", name, VariantNames())
}

// defaultWorkloads are the sweep's trace generators: the contended
// workloads that stress the protocol hardest, plus the lock/barrier
// kernels whose cache-locking traffic drives the Fig. 8 race.
var defaultWorkloads = []string{
	"cq", "sps", "pc", "tatp", "tpcc", "barnes",
	"raytrace", "streamcluster", "tas", "ticket", "barrier",
}

// faultLevels are the legal fault mixes the sweep draws from
// (weighted by repetition). Illegal modes (dup/drop) never enter the
// sweep: they exist to exercise failure detection, not to pass.
var faultLevels = []faults.Config{
	{}, // no faults: the pure-timing baseline must always pass
	{JitterProb: 0.1, JitterMax: 8},
	{JitterProb: 0.5, JitterMax: 16},
	{JitterProb: 0.25, JitterMax: 12, ReorderProb: 0.05, ReorderMax: 64},
	{ReorderProb: 0.15, ReorderMax: 128},
}

// Options scales a torture sweep. The zero value is a sensible default
// sweep of 100 runs.
type Options struct {
	Runs    int // number of randomized configs (default 100)
	Workers int // concurrent simulations (default GOMAXPROCS)
	Seed    uint64
	// Sched is the scheduler every primary run executes under (zero =
	// sim.SchedEvent); replays run under the opposite one.
	Sched sim.Scheduler

	Cores     []int    // core-count choices (default {4, 8})
	Instrs    []int    // per-core instruction-count choices (default {1000, 2500})
	Workloads []string // default: the contended set above

	// ReplayEvery re-runs every Nth config under the opposite scheduler
	// and requires an identical (mode-normalized) sim.Result — both the
	// determinism that makes repro lines trustworthy and the proof that
	// the event and cycle schedulers agree across the whole sweep
	// matrix, fault injection included. 0 disables replay; default
	// every 5th run.
	ReplayEvery int

	CheckEvery uint64 // coherence-invariant interval (default 4096)
	MaxCycles  uint64 // per-run cycle budget (default 20M)

	// Ctx cancels the sweep (nil = context.Background()): no new runs
	// start once it is done, in-flight simulations stop at the next
	// 1024-cycle poll and are journaled canceled, so a SIGINT drains
	// into a resumable checkpoint. A deadline on the context bounds
	// the whole sweep's wall-clock time.
	Ctx context.Context
	// RunTimeout is the per-run wall-clock deadline, distinct from the
	// simulated MaxCycles budget (0 = none). A timed-out run counts as
	// transient and is retried.
	RunTimeout time.Duration
	// MaxAttempts is the per-run attempt budget for transient failures
	// (timeout, panic); deterministic failures never retry. Default 1:
	// a torture sweep reports what it saw unless retries are asked for.
	MaxAttempts int
	// Journal, when set, records every run outcome (crash-safe JSONL).
	Journal *lifecycle.Journal
	// Resume, when set, skips specs the journaled sweep already
	// completed successfully; failures and canceled runs re-execute.
	Resume *lifecycle.Snapshot

	// CheckpointDir, when set, gives every run a durable mid-run
	// checkpoint lineage under this directory (one file per spec,
	// named by its content key). Runs resume from an existing valid
	// checkpoint — whether left by a killed process or by a failed
	// attempt the supervisor is retrying — and checkpoints of runs
	// that reach a terminal state are removed. CheckpointEvery is the
	// simulated-cycle cadence (0 leaves checkpoint writing off while
	// still resuming from existing files).
	CheckpointDir   string
	CheckpointEvery uint64

	// Progress, when set, receives a line per completed run. Called
	// from worker goroutines; must be safe for concurrent use.
	Progress func(msg string)
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 100
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Cores) == 0 {
		o.Cores = []int{4, 8}
	}
	if len(o.Instrs) == 0 {
		o.Instrs = []int{1000, 2500}
	}
	if len(o.Workloads) == 0 {
		o.Workloads = defaultWorkloads
	}
	if o.ReplayEvery == 0 {
		o.ReplayEvery = 5
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 4096
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 1
	}
	return o
}

// RunSpec fully determines one torture run; its ReproLine re-runs it.
type RunSpec struct {
	Seed     uint64 // workload-trace seed
	Workload string
	Variant  string
	Cores    int
	Instrs   int
	Faults   faults.Config

	CheckEvery uint64
	MaxCycles  uint64

	// Sched is the scheduler the run executes under. Excluded from the
	// JSON encoding (and therefore from ContentKey) on purpose: both
	// schedulers produce the same run, so a checkpoint written under
	// one resumes under the other.
	Sched sim.Scheduler `json:"-"`
}

// ReproLine renders the one-line reproduction command.
func (s RunSpec) ReproLine() string {
	line := fmt.Sprintf("rowtorture -seed %#x -wl %s -variant %q -cores %d -instrs %d -faults %q",
		s.Seed, s.Workload, s.Variant, s.Cores, s.Instrs, s.Faults.Spec())
	if s.Sched != sim.SchedEvent {
		line += " -sched " + s.Sched.String()
	}
	return line
}

// ContentKey hashes everything that determines the run — the spec
// (workload, variant, shape, seed, fault mix, budgets) plus the code
// revision — for use as a checkpoint validity key.
func (s RunSpec) ContentKey() string {
	return experiments.ContentKey("torture-run", s)
}

// Execute performs one run of the spec and returns its result. All
// failure modes come back as errors: protocol violations
// (*coherence.ProtocolError), deadlocks (*sim.DeadlockError), budget
// exhaustion (*sim.CycleLimitError) and invariant breaks
// (*sim.CoherenceViolationError).
func Execute(spec RunSpec) (sim.Result, error) {
	return ExecuteCtx(context.Background(), spec)
}

// ExecuteCtx is Execute under cooperative cancellation: the run also
// aborts with *sim.RunCanceledError when ctx ends.
func ExecuteCtx(ctx context.Context, spec RunSpec) (sim.Result, error) {
	return ExecuteCheckpointed(ctx, spec, 0, "")
}

// ExecuteCheckpointed is ExecuteCtx with a durable checkpoint lineage
// at path: the run resumes from an existing valid checkpoint (fresh
// start when none, or when both slots are corrupt — bounded loss) and,
// when every > 0, persists a new checkpoint each cadence. A checkpoint
// whose content key does not match the spec fails the run with
// *checkpoint.MismatchError rather than resuming foreign state.
func ExecuteCheckpointed(ctx context.Context, spec RunSpec, every uint64, path string) (sim.Result, error) {
	v, err := LookupVariant(spec.Variant)
	if err != nil {
		return sim.Result{}, err
	}
	p, err := workload.Get(spec.Workload)
	if err != nil {
		return sim.Result{}, err
	}
	progs := workload.Generate(p, spec.Cores, spec.Instrs, spec.Seed)
	cfg := v.Config(spec.Cores)
	if spec.MaxCycles > 0 {
		cfg.MaxCycles = spec.MaxCycles
	}
	// Torture runs double as the idle-skip cross-checker: every skip
	// decision the scheduler makes is replayed and asserted a no-op.
	opts := []sim.Option{sim.WithWarmFilter(workload.WarmFilter(p)), sim.WithScheduler(spec.Sched), sim.WithCrossCheck()}
	if spec.CheckEvery > 0 {
		opts = append(opts, sim.WithInvariantChecks(spec.CheckEvery))
	}
	if spec.Faults.Enabled() {
		opts = append(opts, sim.WithFaults(spec.Faults))
	}
	var key string
	if path != "" {
		key = spec.ContentKey()
		if every > 0 {
			opts = append(opts, sim.WithCheckpoint(every, checkpoint.Saver(path, key)))
		}
	}
	s, err := sim.New(cfg, progs, opts...)
	if err != nil {
		return sim.Result{}, err
	}
	if path != "" {
		if _, _, warn, err := checkpoint.ResumeLenient(s, path, key); err != nil {
			return sim.Result{}, err
		} else if warn != nil {
			fmt.Fprintf(os.Stderr, "torture: %s: checkpoint unusable, starting fresh: %v\n", spec.ReproLine(), warn)
		}
	}
	return s.RunCtx(ctx)
}

// ReplayMismatchError reports nondeterminism: the same spec produced
// a different outcome when re-executed.
type ReplayMismatchError struct{ Detail string }

func (e *ReplayMismatchError) Error() string {
	return "replay mismatch (nondeterministic run): " + e.Detail
}

// Failure is one failed run, classified for the summary.
type Failure struct {
	Index int // run index within the sweep
	Spec  RunSpec
	Err   error
	Kind  string // protocol | deadlock | cycle-limit | coherence | msg-leak | replay-mismatch | mcheck-invariant | panic | timeout | setup
}

// Classify names the failure mode of a run error.
func Classify(err error) string {
	var pe *coherence.ProtocolError
	var de *sim.DeadlockError
	var ce *sim.CycleLimitError
	var ve *sim.CoherenceViolationError
	var le *sim.MsgLeakError
	var re *ReplayMismatchError
	var rp *lifecycle.RunPanicError
	var me *mcheck.InvariantError
	switch {
	case errors.As(err, &re):
		return "replay-mismatch"
	case errors.As(err, &me):
		return "mcheck-invariant"
	case errors.As(err, &pe):
		return "protocol"
	case errors.As(err, &de):
		return "deadlock"
	case errors.As(err, &ce):
		return "cycle-limit"
	case errors.As(err, &ve):
		return "coherence"
	case errors.As(err, &le):
		return "msg-leak"
	case errors.As(err, &rp):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "setup"
	}
}

// Summary aggregates a sweep.
type Summary struct {
	Runs     int
	Replayed int
	// Skipped counts specs served from a resumed journal (already
	// completed successfully in the interrupted sweep).
	Skipped int
	// Canceled counts specs the sweep did not finish before its
	// context ended; a resume re-runs exactly these.
	Canceled int
	Failures []Failure
	ByKind   map[string]int
}

// OK reports a clean sweep: no failures. An interrupted sweep can be
// OK so far — check Canceled to know whether it is also complete.
func (s Summary) OK() bool { return len(s.Failures) == 0 }

// String renders the human summary, failures first.
func (s Summary) String() string {
	out := ""
	for _, f := range s.Failures {
		out += fmt.Sprintf("FAIL [%s] %s\n  %v\n", f.Kind, f.Spec.ReproLine(), f.Err)
	}
	out += fmt.Sprintf("torture: %d runs, %d replayed, %d failures", s.Runs, s.Replayed, len(s.Failures))
	if s.Skipped > 0 {
		out += fmt.Sprintf(", %d resumed from journal", s.Skipped)
	}
	if s.Canceled > 0 {
		out += fmt.Sprintf(", %d canceled (resumable)", s.Canceled)
	}
	if len(s.ByKind) > 0 {
		kinds := make([]string, 0, len(s.ByKind))
		for k := range s.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			out += fmt.Sprintf(" %s=%d", k, s.ByKind[k])
		}
	}
	return out
}

// specs derives the sweep's run specs from the master seed. Purely
// sequential and deterministic: the same (seed, options) always
// produce the same sweep.
func specs(opt Options) []RunSpec {
	rng := xrand.New(opt.Seed)
	out := make([]RunSpec, opt.Runs)
	for i := range out {
		fl := faultLevels[rng.Intn(len(faultLevels))]
		fl.Seed = rng.Uint64()
		out[i] = RunSpec{
			Seed:       rng.Uint64() | 1, // workload.Generate treats seed 0 as unset in places
			Workload:   opt.Workloads[rng.Intn(len(opt.Workloads))],
			Variant:    variants[rng.Intn(len(variants))].Name,
			Cores:      opt.Cores[rng.Intn(len(opt.Cores))],
			Instrs:     opt.Instrs[rng.Intn(len(opt.Instrs))],
			Faults:     fl,
			CheckEvery: opt.CheckEvery,
			MaxCycles:  opt.MaxCycles,
			Sched:      opt.Sched,
		}
	}
	return out
}

// Torture runs the sweep under the lifecycle supervisor and returns
// the summary. Every run gets panic containment, the per-run timeout
// and classified retry from the options; outcomes stream to the
// journal when one is set, and a resume snapshot short-circuits specs
// the journaled sweep already completed.
func Torture(opt Options) Summary {
	opt = opt.withDefaults()
	all := specs(opt)
	ctx := opt.Ctx

	sup := lifecycle.New(lifecycle.Config{
		MaxAttempts: opt.MaxAttempts,
		RunTimeout:  opt.RunTimeout,
		JitterSeed:  opt.Seed,
		Journal:     opt.Journal,
	})

	type outcome struct {
		status   lifecycle.Status
		err      error
		replayed bool
		skipped  bool
	}
	outcomes := make([]outcome, len(all))

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				spec := all[i]
				key := spec.ReproLine()
				if _, ok := opt.Resume.Completed(key); ok {
					outcomes[i] = outcome{status: lifecycle.StatusOK, skipped: true}
					if opt.Progress != nil {
						opt.Progress(fmt.Sprintf("run %4d %-4s %-13s %-14s cores=%d (resumed from journal)",
							i, "skip", spec.Workload, spec.Variant, spec.Cores))
					}
					continue
				}
				var cpath string
				if opt.CheckpointDir != "" {
					cpath = filepath.Join(opt.CheckpointDir, spec.ContentKey()[:16]+".ckpt")
				}
				out := sup.Do(ctx, lifecycle.Job{Key: key, Seed: spec.Seed, Checkpoint: cpath}, func(c context.Context) (sim.Result, error) {
					return ExecuteCheckpointed(c, spec, opt.CheckpointEvery, cpath)
				})
				err := out.Err
				replayed := false
				if out.Status == lifecycle.StatusOK && opt.ReplayEvery > 0 && i%opt.ReplayEvery == 0 {
					// The replay runs under the opposite scheduler: a pass
					// proves both determinism and mode equivalence on this
					// spec (fault mix included). Results are compared
					// mode-normalized — the visited-cycle count is the one
					// field allowed to differ.
					replayed = true
					other := spec
					other.Sched = spec.Sched.Other()
					res2, err2 := ExecuteCtx(ctx, other)
					switch {
					case err2 != nil && lifecycle.Classify(err2) == lifecycle.ClassCanceled:
						// The sweep was interrupted mid-replay: the run is
						// fine, the determinism check just did not finish.
						replayed = false
					case err2 != nil:
						err = &ReplayMismatchError{Detail: fmt.Sprintf("%s-scheduler replay failed where the %s run passed: %v",
							other.Sched, spec.Sched, err2)}
					case res2.SchedNormalized() != out.Result.SchedNormalized():
						err = &ReplayMismatchError{Detail: fmt.Sprintf("%s run %d cycles / %d messages, %s replay %d cycles / %d messages",
							spec.Sched, out.Result.Cycles, out.Result.NetworkMessages, other.Sched, res2.Cycles, res2.NetworkMessages)}
					}
					if err != nil {
						// Override the journaled ok: the latest record per
						// key wins on resume, so the mismatch re-runs.
						out.Status = lifecycle.StatusFailed
						if opt.Journal != nil {
							opt.Journal.Append(lifecycle.Record{
								Kind: "run", Key: key, Seed: spec.Seed,
								Status: lifecycle.StatusFailed, Attempts: out.Attempts,
								Class: "replay-mismatch", Error: err.Error(),
							})
						}
					}
				}
				if cpath != "" && out.Status.Terminal() {
					// Done (ok or deterministically failed): the recovery
					// state has no future use. Canceled runs keep theirs
					// for the resumed sweep.
					checkpoint.Remove(cpath)
				}
				outcomes[i] = outcome{status: out.Status, err: err, replayed: replayed}
				if opt.Progress != nil {
					status := "ok"
					if out.Status != lifecycle.StatusOK {
						status = strings.ToUpper(string(out.Status))
					} else if err != nil {
						status = "FAIL"
					}
					opt.Progress(fmt.Sprintf("run %4d %-4s %-13s %-14s cores=%d faults=%s attempts=%d",
						i, status, spec.Workload, spec.Variant, spec.Cores, spec.Faults.Spec(), out.Attempts))
				}
			}
		}()
	}
feed:
	for i := range all {
		select {
		case work <- i:
		case <-ctx.Done():
			// SIGINT / sweep deadline: stop dispatching; in-flight runs
			// drain (their simulations stop at the next cancellation
			// poll and are journaled canceled).
			for j := i; j < len(all); j++ {
				outcomes[j].status = lifecycle.StatusCanceled
			}
			break feed
		}
	}
	close(work)
	wg.Wait()

	sum := Summary{Runs: len(all), ByKind: make(map[string]int)}
	for i, o := range outcomes {
		if o.replayed {
			sum.Replayed++
		}
		if o.skipped {
			sum.Skipped++
		}
		if o.status == lifecycle.StatusCanceled {
			sum.Canceled++
			continue
		}
		if o.err == nil {
			continue
		}
		kind := Classify(o.err)
		sum.ByKind[kind]++
		sum.Failures = append(sum.Failures, Failure{Index: i, Spec: all[i], Err: o.err, Kind: kind})
	}
	sort.Slice(sum.Failures, func(a, b int) bool { return sum.Failures[a].Index < sum.Failures[b].Index })
	return sum
}
