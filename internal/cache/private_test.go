package cache

import (
	"testing"

	"rowsim/internal/coherence"
	"rowsim/internal/config"
)

// fakeNet records messages; tests play the directory side by hand.
type fakeNet struct {
	sent  []*coherence.Msg
	extra []uint64
}

func (f *fakeNet) Send(m *coherence.Msg) { f.SendAfter(m, 0) }
func (f *fakeNet) SendAfter(m *coherence.Msg, extra uint64) {
	f.sent = append(f.sent, m)
	f.extra = append(f.extra, extra)
}
func (f *fakeNet) take() []*coherence.Msg {
	s := f.sent
	f.sent = nil
	f.extra = nil
	return s
}

// fakeClient records controller callbacks and provides lock state.
type fakeClient struct {
	resps       map[uint64]RespInfo
	locked      map[uint64]bool
	invalidated []uint64
	stallNext   bool
	released    map[uint64]bool
}

func newFakeClient() *fakeClient {
	return &fakeClient{
		resps:    make(map[uint64]RespInfo),
		locked:   make(map[uint64]bool),
		released: make(map[uint64]bool),
	}
}

func (c *fakeClient) MemResp(tag uint64, info RespInfo) { c.resps[tag] = info }
func (c *fakeClient) ExternalRequest(line uint64, write bool) bool {
	return c.stallNext || c.locked[line]
}
func (c *fakeClient) LineInvalidated(line uint64) { c.invalidated = append(c.invalidated, line) }
func (c *fakeClient) LineLocked(line uint64) bool { return c.locked[line] }
func (c *fakeClient) ForceRelease(line uint64) bool {
	if c.locked[line] {
		delete(c.locked, line)
		c.released[line] = true
		return true
	}
	return false
}

func newCacheUnderTest() (*Private, *fakeNet, *fakeClient) {
	net := &fakeNet{}
	client := newFakeClient()
	cfg := config.Default()
	p := NewPrivate(0, cfg, net, client, func(line uint64) int { return 32 })
	return p, net, client
}

func tick(p *Private, from, to uint64) {
	for c := from; c <= to; c++ {
		p.Tick(c)
	}
}

const lineB = uint64(0x4000)

func TestMissSendsGetS(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Tick(1)
	p.Access(77, lineB, false)
	tick(p, 2, 20) // past the L2 lookup time
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgGetS || sent[0].Line != lineB || sent[0].Dst != 32 {
		t.Fatalf("expected one GetS, got %v", sent)
	}
}

func TestWriteMissSendsGetX(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Tick(1)
	p.Access(77, lineB, true)
	tick(p, 2, 20)
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgGetX {
		t.Fatalf("expected one GetX, got %v", sent)
	}
}

func TestFillRespondsAndUnblocks(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.Access(77, lineB, false)
	tick(p, 2, 20)
	net.take()
	p.Deliver([]*coherence.Msg{{
		Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0, Requestor: 0,
		Grant: coherence.GrantE,
	}})
	p.Tick(21)
	info, ok := client.resps[77]
	if !ok {
		t.Fatal("no response delivered")
	}
	if info.Hit {
		t.Fatal("a coherence fill must not report Hit")
	}
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgUnblock || sent[0].Grant != coherence.GrantE {
		t.Fatalf("expected Unblock(GrantE), got %v", sent)
	}
	if p.State(lineB) != StateE {
		t.Fatalf("state = %d, want E", p.State(lineB))
	}
}

func TestHitAfterFill(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.Access(77, lineB, false)
	tick(p, 2, 20)
	net.take()
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0, Grant: coherence.GrantE}})
	tick(p, 21, 22)
	net.take() // drop the Unblock that closed the fill
	p.Access(78, lineB, false)
	tick(p, 23, 40)
	info, ok := client.resps[78]
	if !ok || !info.Hit {
		t.Fatalf("expected an L1 hit, got %+v (ok=%v)", info, ok)
	}
	if info.Latency != 5 {
		t.Fatalf("L1 hit latency = %d, want 5", info.Latency)
	}
	if len(net.take()) != 0 {
		t.Fatal("hit must not generate traffic")
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Warm(lineB, StateE)
	p.Tick(1)
	p.Access(9, lineB, true)
	tick(p, 2, 30)
	if _, ok := client.resps[9]; !ok {
		t.Fatal("write to E line did not respond")
	}
	if p.State(lineB) != StateM {
		t.Fatalf("state = %d, want M after silent upgrade", p.State(lineB))
	}
	if len(net.take()) != 0 {
		t.Fatal("silent upgrade must not generate traffic")
	}
}

func TestUpgradeFromSharedSendsGetX(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Warm(lineB, StateS)
	p.Tick(1)
	p.Access(9, lineB, true)
	tick(p, 2, 20)
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgGetX {
		t.Fatalf("expected an upgrade GetX, got %v", sent)
	}
}

func TestMSHRMergesSecondaryMisses(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.Access(1, lineB, false)
	p.Access(2, lineB+8, false) // same line, different offset
	tick(p, 2, 20)
	if sent := net.take(); len(sent) != 1 {
		t.Fatalf("secondary miss not merged: %d requests", len(sent))
	}
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0, Grant: coherence.GrantS}})
	p.Tick(21)
	if len(client.resps) != 2 {
		t.Fatalf("merged waiters responded %d, want 2", len(client.resps))
	}
}

func TestInvAcksCollectedBeforeCompleting(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.Access(1, lineB, true)
	tick(p, 2, 20)
	net.take()
	p.Deliver([]*coherence.Msg{{
		Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0,
		Grant: coherence.GrantM, AckCount: 2,
	}})
	p.Tick(21)
	if len(client.resps) != 0 {
		t.Fatal("completed before collecting invalidation acks")
	}
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgInvAck, Line: lineB, Src: 1, Dst: 0}})
	p.Tick(22)
	if len(client.resps) != 0 {
		t.Fatal("completed with one ack outstanding")
	}
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgInvAck, Line: lineB, Src: 2, Dst: 0}})
	p.Tick(23)
	if len(client.resps) != 1 {
		t.Fatal("did not complete after the final ack")
	}
}

func TestInvAckBeforeDataHandled(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.Access(1, lineB, true)
	tick(p, 2, 20)
	net.take()
	// The ack can outrun the data response.
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgInvAck, Line: lineB, Src: 1, Dst: 0}})
	p.Tick(21)
	p.Deliver([]*coherence.Msg{{
		Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0,
		Grant: coherence.GrantM, AckCount: 1,
	}})
	p.Tick(22)
	if len(client.resps) != 1 {
		t.Fatal("early InvAck was lost")
	}
}

func TestExternalInvInvalidatesAndAcks(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Warm(lineB, StateS)
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgInv, Line: lineB, Src: 32, Dst: 0, Requestor: 7}})
	if p.State(lineB) != StateI {
		t.Fatal("Inv did not invalidate")
	}
	if len(client.invalidated) != 1 || client.invalidated[0] != lineB {
		t.Fatal("LQ squash hook not called")
	}
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgInvAck || sent[0].Dst != 7 {
		t.Fatalf("expected InvAck to requestor 7, got %v", sent)
	}
}

func TestFwdGetXTransfersOwnership(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Warm(lineB, StateM)
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFwdGetX, Line: lineB, Src: 32, Dst: 0, Requestor: 5}})
	if p.State(lineB) != StateI {
		t.Fatal("owner kept the line after FwdGetX")
	}
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgData || sent[0].Dst != 5 || !sent[0].FromPrivate {
		t.Fatalf("expected cache-to-cache Data, got %v", sent)
	}
}

func TestFwdGetSDowngrades(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Warm(lineB, StateM)
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFwdGetS, Line: lineB, Src: 32, Dst: 0, Requestor: 5}})
	if p.State(lineB) != StateS {
		t.Fatalf("state = %d, want S after FwdGetS", p.State(lineB))
	}
	sent := net.take()
	if len(sent) != 1 || sent[0].Grant != coherence.GrantS || !sent[0].FromPrivate {
		t.Fatalf("bad forward response %v", sent)
	}
}

func TestLockedLineStallsExternalUntilRelease(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Warm(lineB, StateM)
	client.locked[lineB] = true
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFwdGetX, Line: lineB, Src: 32, Dst: 0, Requestor: 5}})
	if len(net.take()) != 0 {
		t.Fatal("locked line answered an external request")
	}
	if !p.HasStalledExternal(lineB) {
		t.Fatal("request not recorded as stalled")
	}
	if p.State(lineB) != StateM {
		t.Fatal("locked line was invalidated")
	}
	// Unlock: the stalled request is served.
	client.locked[lineB] = false
	p.LockReleased(lineB)
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgData || sent[0].Dst != 5 {
		t.Fatalf("stalled request not served on release, got %v", sent)
	}
	if p.State(lineB) != StateI {
		t.Fatal("line kept after serving the stalled FwdGetX")
	}
}

func TestForcedReleaseAfterLongStall(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Warm(lineB, StateM)
	client.locked[lineB] = true
	p.Tick(1)
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFwdGetX, Line: lineB, Src: 32, Dst: 0, Requestor: 5}})
	p.Tick(releaseAfter) // not yet over the threshold
	if client.released[lineB] {
		t.Fatal("released before the deadline")
	}
	p.Tick(releaseAfter + 2)
	if !client.released[lineB] {
		t.Fatal("progress guarantee never fired")
	}
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgData || sent[0].Dst != 5 {
		t.Fatalf("stalled request not served after forced release: %v", sent)
	}
	if p.Stats.ForcedRel.Value() != 1 {
		t.Fatalf("forced releases = %d, want 1", p.Stats.ForcedRel.Value())
	}
}

func TestStoreComplete(t *testing.T) {
	p, _, _ := newCacheUnderTest()
	if p.StoreComplete(lineB) {
		t.Fatal("store completed without the line")
	}
	p.Warm(lineB, StateE)
	if !p.StoreComplete(lineB) {
		t.Fatal("store to E line failed")
	}
	if p.State(lineB) != StateM {
		t.Fatal("store did not dirty the line")
	}
	p.Warm(lineB+64, StateS)
	if p.StoreComplete(lineB + 64) {
		t.Fatal("store to S line must need a GetX")
	}
}

func TestPrefetcherIssuesOnSteadyStride(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Tick(1)
	pc := uint64(0x400100)
	// Train: three accesses with stride 64 (beyond the confirm count).
	for i := uint64(0); i < 4; i++ {
		p.TrainPrefetch(pc, 0x80000+i*64)
	}
	tick(p, 2, 40)
	// At least one prefetch request must have gone out beyond the
	// demand stream.
	if p.Stats.Prefetches.Value() == 0 {
		t.Fatal("no prefetches after a steady stride")
	}
	reqs := net.take()
	if len(reqs) == 0 {
		t.Fatal("prefetch produced no traffic")
	}
}

func TestPrefetcherIgnoresRandomPattern(t *testing.T) {
	p, _, _ := newCacheUnderTest()
	p.Tick(1)
	pc := uint64(0x400200)
	addrs := []uint64{0x1000, 0x9000, 0x3000, 0xF000, 0x2000}
	for _, a := range addrs {
		p.TrainPrefetch(pc, a)
	}
	if p.Stats.Prefetches.Value() != 0 {
		t.Fatalf("prefetched %d times on a random pattern", p.Stats.Prefetches.Value())
	}
}

func TestEvictionWritesBack(t *testing.T) {
	p, net, client := newCacheUnderTest()
	// Fill one L2 set to capacity with warm M lines, then a demand
	// fill into the same set must evict one of them with a PutX.
	// L2: 1 MiB, 8 ways, 64B lines -> 2048 sets; set stride 2048*64.
	setStride := uint64(2048 * 64)
	for i := uint64(1); i <= 8; i++ {
		p.Warm(lineB+i*setStride, StateM)
	}
	p.Tick(1)
	p.Access(1, lineB, true)
	tick(p, 2, 20)
	net.take()
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0, Grant: coherence.GrantM}})
	p.Tick(21)
	var putx int
	for _, m := range net.take() {
		if m.Type == coherence.MsgPutX {
			putx++
		}
	}
	if putx != 1 {
		t.Fatalf("%d writebacks, want 1", putx)
	}
	if len(client.invalidated) != 1 {
		t.Fatalf("M eviction must trigger the squash hook once, got %d", len(client.invalidated))
	}
}

func TestPendingWrite(t *testing.T) {
	p, _, _ := newCacheUnderTest()
	p.Tick(1)
	if p.PendingWrite(lineB) {
		t.Fatal("no request outstanding yet")
	}
	p.Access(1, lineB, true)
	tick(p, 2, 20)
	if !p.PendingWrite(lineB) {
		t.Fatal("outstanding GetX not reported")
	}
	p.Access(2, lineB+64, false)
	tick(p, 21, 40)
	if p.PendingWrite(lineB + 64) {
		t.Fatal("read request reported as pending write")
	}
}

func TestLine(t *testing.T) {
	p, _, _ := newCacheUnderTest()
	if p.Line(0x12345) != 0x12340 {
		t.Fatalf("Line(0x12345) = %#x", p.Line(0x12345))
	}
}
