package cache

import (
	"testing"

	"rowsim/internal/coherence"
)

func TestFarRMWSendsGetFar(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Tick(1)
	p.FarRMW(9, lineB+8)
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgGetFar || sent[0].Line != lineB {
		t.Fatalf("expected GetFar for the line, got %v", sent)
	}
	if !p.PendingWork() {
		t.Fatal("outstanding far RMW not reported as pending")
	}
}

func TestFarRMWDropsOwnedCopyWithWriteback(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Warm(lineB, StateM)
	p.Tick(1)
	p.FarRMW(9, lineB)
	if p.State(lineB) != StateI {
		t.Fatal("local copy survived a far RMW")
	}
	sent := net.take()
	if len(sent) != 2 || sent[0].Type != coherence.MsgPutX || sent[1].Type != coherence.MsgGetFar {
		t.Fatalf("expected PutX then GetFar, got %v", sent)
	}
}

func TestFarDoneRespondsFIFO(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.FarRMW(1, lineB)
	p.Tick(5)
	p.FarRMW(2, lineB)
	net.take()
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	if _, ok := client.resps[1]; !ok {
		t.Fatal("first far RMW not answered first")
	}
	if _, ok := client.resps[2]; ok {
		t.Fatal("second far RMW answered early")
	}
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	if _, ok := client.resps[2]; !ok {
		t.Fatal("second far RMW never answered")
	}
	if p.PendingWork() {
		t.Fatal("completed far RMWs still pending")
	}
}

func TestFarDoneLatencyMeasured(t *testing.T) {
	p, _, client := newCacheUnderTest()
	p.Tick(10)
	p.FarRMW(3, lineB)
	p.Tick(110)
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	info := client.resps[3]
	if info.Latency != 100 {
		t.Fatalf("far latency = %d, want 100", info.Latency)
	}
}

func TestStrayFarDonePanics(t *testing.T) {
	p, _, _ := newCacheUnderTest()
	defer func() {
		if recover() == nil {
			t.Fatal("stray FarDone accepted silently")
		}
	}()
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
}
