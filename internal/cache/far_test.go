package cache

import (
	"testing"

	"rowsim/internal/coherence"
)

func TestFarRMWSendsGetFar(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Tick(1)
	p.FarRMW(9, lineB+8)
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgGetFar || sent[0].Line != lineB {
		t.Fatalf("expected GetFar for the line, got %v", sent)
	}
	if !p.PendingWork() {
		t.Fatal("outstanding far RMW not reported as pending")
	}
}

func TestFarRMWDropsOwnedCopyWithWriteback(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Warm(lineB, StateM)
	p.Tick(1)
	p.FarRMW(9, lineB)
	if p.State(lineB) != StateI {
		t.Fatal("local copy survived a far RMW")
	}
	sent := net.take()
	if len(sent) != 2 || sent[0].Type != coherence.MsgPutX || sent[1].Type != coherence.MsgGetFar {
		t.Fatalf("expected PutX then GetFar, got %v", sent)
	}
}

func TestFarDoneRespondsFIFO(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Tick(1)
	p.FarRMW(1, lineB)
	p.Tick(5)
	p.FarRMW(2, lineB)
	net.take()
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	if _, ok := client.resps[1]; !ok {
		t.Fatal("first far RMW not answered first")
	}
	if _, ok := client.resps[2]; ok {
		t.Fatal("second far RMW answered early")
	}
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	if _, ok := client.resps[2]; !ok {
		t.Fatal("second far RMW never answered")
	}
	if p.PendingWork() {
		t.Fatal("completed far RMWs still pending")
	}
}

func TestFarDoneLatencyMeasured(t *testing.T) {
	p, _, client := newCacheUnderTest()
	p.Tick(10)
	p.FarRMW(3, lineB)
	p.Tick(110)
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	info := client.resps[3]
	if info.Latency != 100 {
		t.Fatalf("far latency = %d, want 100", info.Latency)
	}
}

func TestStrayFarDonePanics(t *testing.T) {
	p, _, _ := newCacheUnderTest()
	defer func() {
		if recover() == nil {
			t.Fatal("stray FarDone accepted silently")
		}
	}()
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
}

// TestFarRMWDeferredBehindOutstandingMiss is the regression test for a
// protocol bug the model checker (internal/mcheck) found: a far RMW
// issued while a same-line miss was in flight invalidated the local
// copy and queued a PutX that was stale at send time — but the upgrade
// fill then re-installed the line in M, and the once-stale PutX from
// the now-legitimate owner later wiped the directory entry, leaving the
// directory in I while the core held M. Far RMWs must park behind the
// in-flight miss and issue only once it retires.
func TestFarRMWDeferredBehindOutstandingMiss(t *testing.T) {
	p, net, client := newCacheUnderTest()
	p.Warm(lineB, StateS)
	p.Tick(1)
	p.Access(1, lineB, true) // upgrade miss: GetX goes out
	tick(p, 2, 20)
	if sent := net.take(); len(sent) != 1 || sent[0].Type != coherence.MsgGetX {
		t.Fatalf("expected the upgrade GetX, got %v", sent)
	}

	p.FarRMW(2, lineB)
	if sent := net.take(); len(sent) != 0 {
		t.Fatalf("far RMW issued traffic while a same-line miss is outstanding: %v", sent)
	}
	if p.State(lineB) == StateI {
		t.Fatal("deferred far RMW invalidated the local copy early")
	}
	if !p.PendingWork() {
		t.Fatal("deferred far RMW not reported as pending work")
	}

	// The upgrade fill retires the MSHR; the deferred far RMW must now
	// issue: invalidate the copy, write back the M line, send GetFar.
	p.Deliver([]*coherence.Msg{{
		Type: coherence.MsgData, Line: lineB, Src: 32, Dst: 0, Requestor: 0,
		Grant: coherence.GrantM,
	}})
	p.Tick(21)
	if _, ok := client.resps[1]; !ok {
		t.Fatal("upgrade miss never completed")
	}
	var types []coherence.MsgType
	for _, m := range net.take() {
		types = append(types, m.Type)
	}
	want := []coherence.MsgType{coherence.MsgUnblockX, coherence.MsgPutX, coherence.MsgGetFar}
	if len(types) != len(want) {
		t.Fatalf("after fill: sent %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("after fill: sent %v, want %v", types, want)
		}
	}
	if p.State(lineB) != StateI {
		t.Fatal("drained far RMW did not relinquish the copy")
	}

	// And the far completion still answers the deferred waiter.
	p.Deliver([]*coherence.Msg{{Type: coherence.MsgFarDone, Line: lineB, Src: 32, Dst: 0}})
	if _, ok := client.resps[2]; !ok {
		t.Fatal("deferred far RMW never completed")
	}
	if p.PendingWork() {
		t.Fatal("completed far RMW still pending")
	}
}

// TestFarRMWIssuesImmediatelyWithoutMiss pins the fast path: with no
// same-line MSHR the far RMW must not be deferred.
func TestFarRMWIssuesImmediatelyWithoutMiss(t *testing.T) {
	p, net, _ := newCacheUnderTest()
	p.Tick(1)
	p.Access(1, lineB+512, true) // different line: no interference
	tick(p, 2, 20)
	net.take()
	p.FarRMW(2, lineB)
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != coherence.MsgGetFar {
		t.Fatalf("far RMW on an idle line must issue at once, got %v", sent)
	}
}
