package cache

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the private cache controller and its inner tables.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Private{}, []string{
		"l1", "l2",
		"mshrs", "stalled", "pendingFar", "farDeferred",
		"events", "seq", "now",
		"strides",
		"work",
		"Stats",
	}, map[string]string{
		"coreID":          "construction-time identity",
		"net":             "wiring; the mesh is snapshotted separately",
		"client":          "wiring; the core is snapshotted separately",
		"bankOf":          "pure function of the configuration",
		"lineMask":        "derived from the line size at construction",
		"l1Hit":           "construction-time latency constant",
		"l2Hit":           "construction-time latency constant",
		"mshrLimit":       "construction-time capacity constant",
		"waiterFree":      "allocation recycling free list; contents are by definition unreferenced",
		"pool":            "wiring; pool counters are snapshotted separately as PoolSnap",
		"pfDegree":        "construction-time prefetcher constant",
		"pfConfMin":       "construction-time prefetcher constant",
		"noForcedRelease": "model-checker mode flag, never set in checkpointed runs",
		"sink":            "wiring; provably empty at checkpoint instants",
	})

	snapcheck.Assert(t, mshr{}, []string{
		"line", "write", "waiters", "dataArrived", "grant",
		"fromPrivate", "pendingAcks", "sentAt",
	}, nil)

	snapcheck.Assert(t, waiter{}, []string{"tag", "at", "write"}, nil)

	snapcheck.Assert(t, event{}, []string{
		"at", "seq", "kind", "tag", "line", "wr", "lat",
	}, nil)

	snapcheck.Assert(t, strideEntry{}, []string{
		"pc", "lastAddr", "stride", "conf",
	}, nil)

	snapcheck.Assert(t, stalledExt{}, []string{"msg", "stallAt"}, nil)
}
