package cache

import (
	"sort"

	"rowsim/internal/coherence"
	"rowsim/internal/sram"
)

// This file is the private cache's half of the snapshot/restore and
// choice-point interface the model checker (internal/mcheck) drives.
// Snapshots deep-copy every retained message by value; the MsgPool
// ownership discipline guarantees a retained *Msg has exactly one
// owner, so restoring fresh copies can never alias a live message.

// WaiterSnap is the exported view of one access waiting on a fill or
// a far RMW completion.
type WaiterSnap struct {
	Tag   uint64
	At    uint64
	Write bool
}

// MSHRSnap is the exported view of one outstanding miss.
type MSHRSnap struct {
	Line        uint64
	Write       bool
	DataArrived bool
	Grant       coherence.GrantState
	FromPrivate bool
	PendingAcks int
	SentAt      uint64
	Waiters     []WaiterSnap
}

// StalledSnap is the exported view of one external request parked
// behind a locked line.
type StalledSnap struct {
	Line    uint64
	StallAt uint64
	Msg     coherence.Msg
}

// FarSnap is the exported view of one line's outstanding far RMWs.
type FarSnap struct {
	Line    uint64
	Waiters []WaiterSnap
}

// EventSnap is the exported view of one pending pipeline event
// (lookup completion or deferred miss).
type EventSnap struct {
	At   uint64 `json:"at"`
	Seq  uint64 `json:"seq"`
	Kind uint8  `json:"kind"`
	Tag  uint64 `json:"tag"`
	Line uint64 `json:"line"`
	Wr   bool   `json:"wr"`
	Lat  uint64 `json:"lat"`
}

// StrideSnap is the exported view of one stride-prefetcher table entry.
type StrideSnap struct {
	PC       uint64 `json:"pc"`
	LastAddr uint64 `json:"last_addr"`
	Stride   int64  `json:"stride"`
	Conf     int    `json:"conf"`
}

// CacheSnap is a deep copy of the controller's mutable state. The
// MSHR, stalled and far tables are key-sorted so two snapshots of
// equal logical state compare equal regardless of internal table
// order (the flat tables use swap-removal, which permutes entries
// without changing behaviour). Stats ride along so a restored run
// reports byte-identical counters; every field is exported because
// checkpoints serialize the whole snapshot to disk.
type CacheSnap struct {
	Now, Seq uint64
	Work     uint64

	MSHRs   []MSHRSnap
	Stalled []StalledSnap
	Far     []FarSnap
	FarDef  []FarSnap // far RMWs deferred behind an in-flight miss

	L1, L2  sram.Snap
	Events  []EventSnap
	Strides []StrideSnap
	Stats   Stats
}

func snapWaiters(ws []waiter) []WaiterSnap {
	out := make([]WaiterSnap, 0, len(ws))
	for _, w := range ws {
		out = append(out, WaiterSnap{Tag: w.tag, At: w.at, Write: w.write})
	}
	return out
}

func restoreWaiters(ws []WaiterSnap) []waiter {
	var out []waiter
	for _, w := range ws {
		out = append(out, waiter{tag: w.Tag, at: w.At, write: w.Write})
	}
	return out
}

// Snapshot captures the controller's protocol and pipeline state. It
// returns a pointer so the snapshot is built once and handed around by
// reference rather than bulk-copied.
func (p *Private) Snapshot() *CacheSnap {
	s := &CacheSnap{
		Now: p.now, Seq: p.seq, Work: p.work,
		L1:    p.l1.Snapshot(),
		L2:    p.l2.Snapshot(),
		Stats: p.Stats,
	}
	s.Stats.MissHist = p.Stats.MissHist.Clone()
	for _, e := range p.events {
		s.Events = append(s.Events, EventSnap{
			At: e.at, Seq: e.seq, Kind: e.kind, Tag: e.tag, Line: e.line, Wr: e.wr, Lat: e.lat,
		})
	}
	for _, t := range p.strides {
		s.Strides = append(s.Strides, StrideSnap{PC: t.pc, LastAddr: t.lastAddr, Stride: t.stride, Conf: t.conf})
	}
	for i := range p.mshrs.ms {
		m := &p.mshrs.ms[i]
		s.MSHRs = append(s.MSHRs, MSHRSnap{
			Line: p.mshrs.lines[i], Write: m.write, DataArrived: m.dataArrived,
			Grant: m.grant, FromPrivate: m.fromPrivate, PendingAcks: m.pendingAcks,
			SentAt: m.sentAt, Waiters: snapWaiters(m.waiters),
		})
	}
	sort.Slice(s.MSHRs, func(i, j int) bool { return s.MSHRs[i].Line < s.MSHRs[j].Line })
	for i := range p.stalled.exts {
		s.Stalled = append(s.Stalled, StalledSnap{
			Line: p.stalled.lines[i], StallAt: p.stalled.exts[i].stallAt, Msg: *p.stalled.exts[i].msg,
		})
	}
	sort.Slice(s.Stalled, func(i, j int) bool { return s.Stalled[i].Line < s.Stalled[j].Line })
	//rowlint:ignore maporder entries are key-sorted immediately below
	for line, ws := range p.pendingFar {
		s.Far = append(s.Far, FarSnap{Line: line, Waiters: snapWaiters(ws)})
	}
	sort.Slice(s.Far, func(i, j int) bool { return s.Far[i].Line < s.Far[j].Line })
	//rowlint:ignore maporder entries are key-sorted immediately below
	for line, ws := range p.farDeferred {
		s.FarDef = append(s.FarDef, FarSnap{Line: line, Waiters: snapWaiters(ws)})
	}
	sort.Slice(s.FarDef, func(i, j int) bool { return s.FarDef[i].Line < s.FarDef[j].Line })
	return s
}

// Restore rewinds the controller to a previously captured CacheSnap.
// Stalled messages are reconstituted as fresh allocations, never drawn
// from the pool (the pool counters are restored separately; a Get here
// would double-count the retained population).
func (p *Private) Restore(s *CacheSnap) {
	p.now, p.seq, p.work = s.Now, s.Seq, s.Work
	p.l1.Restore(s.L1)
	p.l2.Restore(s.L2)
	p.Stats = s.Stats
	p.Stats.MissHist = s.Stats.MissHist.Clone()
	p.events = p.events[:0]
	for _, e := range s.Events {
		p.events = append(p.events, event{
			at: e.At, seq: e.Seq, kind: e.Kind, tag: e.Tag, line: e.Line, wr: e.Wr, lat: e.Lat,
		})
	}
	for i := range p.strides {
		p.strides[i] = strideEntry{}
	}
	for i, t := range s.Strides {
		p.strides[i] = strideEntry{pc: t.PC, lastAddr: t.LastAddr, stride: t.Stride, conf: t.Conf}
	}

	p.mshrs.lines = p.mshrs.lines[:0]
	p.mshrs.ms = p.mshrs.ms[:0]
	for _, ms := range s.MSHRs {
		p.mshrs.add(ms.Line, mshr{
			line: ms.Line, write: ms.Write, dataArrived: ms.DataArrived,
			grant: ms.Grant, fromPrivate: ms.FromPrivate, pendingAcks: ms.PendingAcks,
			sentAt: ms.SentAt, waiters: restoreWaiters(ms.Waiters),
		})
	}
	p.stalled.lines = p.stalled.lines[:0]
	p.stalled.exts = p.stalled.exts[:0]
	for _, st := range s.Stalled {
		msg := new(coherence.Msg)
		*msg = st.Msg
		p.stalled.add(st.Line, stalledExt{msg: msg, stallAt: st.StallAt})
	}
	p.pendingFar = make(map[uint64][]waiter, len(s.Far))
	for _, f := range s.Far {
		p.pendingFar[f.Line] = restoreWaiters(f.Waiters)
	}
	p.farDeferred = make(map[uint64][]waiter, len(s.FarDef))
	for _, f := range s.FarDef {
		p.farDeferred[f.Line] = restoreWaiters(f.Waiters)
	}
}

// MSHRView returns the exported view of the line's outstanding miss;
// ok is false when none is in flight.
func (p *Private) MSHRView(line uint64) (MSHRSnap, bool) {
	m := p.mshrs.get(line)
	if m == nil {
		return MSHRSnap{}, false
	}
	return MSHRSnap{
		Line: line, Write: m.write, DataArrived: m.dataArrived,
		Grant: m.grant, FromPrivate: m.fromPrivate, PendingAcks: m.pendingAcks,
		SentAt: m.sentAt, Waiters: snapWaiters(m.waiters),
	}, true
}

// StalledView returns a copy of the external request stalled on the
// line; ok is false when none is parked.
func (p *Private) StalledView(line uint64) (coherence.Msg, bool) {
	s := p.stalled.get(line)
	if s == nil {
		return coherence.Msg{}, false
	}
	return *s.msg, true
}

// FarView returns the line's outstanding far RMW waiters, in issue
// order (nil when none).
func (p *Private) FarView(line uint64) []WaiterSnap {
	ws := p.pendingFar[line]
	if len(ws) == 0 {
		return nil
	}
	return snapWaiters(ws)
}

// FarDeferredView returns the line's far RMWs parked behind an
// in-flight miss, in issue order (nil when none).
func (p *Private) FarDeferredView(line uint64) []WaiterSnap {
	ws := p.farDeferred[line]
	if len(ws) == 0 {
		return nil
	}
	return snapWaiters(ws)
}

// LevelStates returns the coherence state of the line's L1 and L2
// copies separately (StateI when absent), without touching LRU state.
// The model checker's canonical encoding distinguishes placement
// because install and commit take different paths for L1- and
// L2-resident lines.
func (p *Private) LevelStates(line uint64) (l1, l2 uint8) {
	l1, l2 = StateI, StateI
	if l := p.l1.Peek(line); l != nil {
		l1 = l.Meta
	}
	if l := p.l2.Peek(line); l != nil {
		l2 = l.Meta
	}
	return l1, l2
}

// EarliestPipelineEvent reports the cycle of the earliest pending
// pipeline event (lookup completion or deferred miss); ok is false
// when the pipeline is empty. The model checker advances its clock to
// exactly this point between choice-point transitions. (The event
// scheduler's contract, which also folds in the forced-release sweep,
// is NextEventAt in private.go.)
func (p *Private) EarliestPipelineEvent() (uint64, bool) {
	if len(p.events) == 0 {
		return 0, false
	}
	return p.events[0].at, true
}

// DeliverOne processes a single protocol message (choice-mode
// delivery: the checker extracts one message from the network and
// hands it over directly).
func (p *Private) DeliverOne(m *coherence.Msg) {
	if p.handle(m) {
		p.pool.Put(m)
	}
}

// DisableForcedRelease turns off the time-based forced-release sweep
// in Tick. The model checker abstracts the release timeout into an
// explicit last-resort transition (BreakStall): firing it on a wall of
// simulated time would make reachability depend on an arbitrary
// constant, while enabling it only when nothing else can run models
// exactly the progress guarantee the timeout provides.
func (p *Private) DisableForcedRelease() { p.noForcedRelease = true }

// BreakStall forcibly releases the lock stalling an external request
// on the line and serves that request, exactly like the forced-release
// sweep in Tick but without the age threshold. It reports false when
// no external request is stalled on the line or the client declined
// the release.
func (p *Private) BreakStall(line uint64) bool {
	s := p.stalled.get(line)
	if s == nil {
		return false
	}
	if !p.client.ForceRelease(line) {
		return false
	}
	p.Stats.ForcedRel.Inc()
	p.work++
	m := s.msg
	p.stalled.remove(line)
	p.serveExternal(m)
	p.pool.Put(m)
	return true
}
