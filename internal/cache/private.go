// Package cache implements the per-core private cache hierarchy: an
// L1D backed by an inclusive private L2, with MSHRs, an IP-stride
// prefetcher and the coherence-protocol endpoint (the "private cache"
// the directory sees). Cache locking for atomics is implemented here:
// external requests for a line locked in the core's Atomic Queue are
// stalled until the atomic unlocks.
package cache

import (
	"fmt"
	"sort"

	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/sram"
	"rowsim/internal/stats"
)

// Coherence states stored in the sram line metadata.
const (
	StateI uint8 = iota
	StateS
	StateE
	StateM
)

// RespInfo describes a completed memory access back to the core.
type RespInfo struct {
	Line uint64
	// Latency is cycles from the Access call to the response.
	Latency uint64
	// MissLatency is cycles from the coherence request leaving the
	// core to the fill completing (0 for hits). This is what the
	// RW+Dir detector compares against its threshold.
	MissLatency uint64
	// FromPrivate marks fills served cache-to-cache by a remote
	// private cache.
	FromPrivate bool
	// Hit reports an L1 or L2 hit (no coherence transaction).
	Hit bool
}

// Client is the core-side interface the controller calls into. It is
// implemented by the owning core, so every method is a declared
// cache→core seam: cache[i] and core[i] are distinct shard domains,
// but the crossing stays within one index i (a core talks only to its
// own private cache and vice versa), which is exactly the pairing the
// epoch/barrier parallelism plan co-locates on one shard.
//
//rowlint:owner core[i]
type Client interface {
	// MemResp delivers the completion of an Access with the given tag.
	//
	//rowlint:seam same-index cache→core upcall; cache[i] and core[i] share a shard
	MemResp(tag uint64, info RespInfo)
	// ExternalRequest is invoked when an external coherence request
	// (Inv or Fwd) arrives for a line. The client returns true to
	// stall the request because the line is locked by an in-flight
	// atomic; it also uses this hook for ready-window contention
	// tracking.
	//
	//rowlint:seam same-index cache→core upcall; cache[i] and core[i] share a shard
	ExternalRequest(line uint64, write bool) (stall bool)
	// LineInvalidated reports that the line left the private cache
	// (external invalidation, forward, or eviction); the core uses it
	// to squash speculatively executed loads (TSO).
	//
	//rowlint:seam same-index cache→core upcall; cache[i] and core[i] share a shard
	LineInvalidated(line uint64)
	// LineLocked reports whether the line is locked by the core's AQ;
	// used to veto evictions.
	//
	//rowlint:seam same-index cache→core upcall; cache[i] and core[i] share a shard
	LineLocked(line uint64) bool
	// ForceRelease asks the core to break an overlong lock stall on
	// the line (deadlock avoidance); it returns true when the lock was
	// released (the core squashes and replays that atomic's lock
	// acquisition).
	//
	//rowlint:seam same-index cache→core upcall; cache[i] and core[i] share a shard
	ForceRelease(line uint64) bool
}

// Tags for internal (non-core) waiters.
const (
	// TagPrefetch marks prefetch fills; no response is delivered.
	TagPrefetch uint64 = 1<<64 - 1
)

// releaseAfter is the stall age (cycles) after which a locked line is
// forcibly released to guarantee forward progress. Real hardware
// bounds cache-locking time similarly; the value is above ordinary
// lock hold times (even heavily contended holds stay in the hundreds
// of cycles) so it only breaks genuine cross-core waiting cycles.
const releaseAfter = 2048

type mshr struct {
	line        uint64
	write       bool
	waiters     []waiter
	dataArrived bool
	grant       coherence.GrantState
	fromPrivate bool
	pendingAcks int
	sentAt      uint64
}

type waiter struct {
	tag   uint64
	at    uint64 // Access call cycle
	write bool
}

type event struct {
	at   uint64
	seq  uint64
	kind uint8 // evRespond | evMiss
	tag  uint64
	line uint64
	wr   bool
	lat  uint64 // for evRespond: latency to report
}

const (
	evRespond uint8 = iota
	evMiss
)

// eventHeap is a typed binary min-heap ordered by (at, seq) —
// hand-rolled for the same reason as the mesh's: container/heap boxes
// every event through interface{}, one allocation per scheduled lookup.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) pushEvent(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) popEvent() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
}

type stalledExt struct {
	msg     *coherence.Msg
	stallAt uint64
}

// mshrSet is a dense table of outstanding misses keyed by line. The
// miss count is bounded by the MSHR limit (16 by default), so a linear
// scan over a flat array beats a map on every hot-path lookup and,
// unlike a map of pointers, allocates nothing in steady state.
type mshrSet struct {
	lines []uint64
	ms    []mshr
}

func (s *mshrSet) get(line uint64) *mshr {
	for i, l := range s.lines {
		if l == line {
			return &s.ms[i]
		}
	}
	return nil
}

// add inserts and returns the slot; the pointer is valid only until
// the next add or remove.
func (s *mshrSet) add(line uint64, m mshr) *mshr {
	s.lines = append(s.lines, line)
	s.ms = append(s.ms, m)
	return &s.ms[len(s.ms)-1]
}

func (s *mshrSet) remove(line uint64) {
	for i, l := range s.lines {
		if l == line {
			n := len(s.lines) - 1
			s.lines[i] = s.lines[n]
			s.ms[i] = s.ms[n]
			s.lines = s.lines[:n]
			s.ms[n] = mshr{} // drop the tail's waiter-slice reference
			s.ms = s.ms[:n]
			return
		}
	}
}

func (s *mshrSet) len() int { return len(s.lines) }

// stalledSet is the same flat-table idea for stalled external
// requests; the directory serializes transactions per line, so the
// set holds at most one entry per locked line and is almost always
// empty or length one.
type stalledSet struct {
	lines []uint64
	exts  []stalledExt
}

func (s *stalledSet) get(line uint64) *stalledExt {
	for i, l := range s.lines {
		if l == line {
			return &s.exts[i]
		}
	}
	return nil
}

func (s *stalledSet) add(line uint64, e stalledExt) {
	s.lines = append(s.lines, line)
	s.exts = append(s.exts, e)
}

func (s *stalledSet) removeAt(i int) {
	n := len(s.lines) - 1
	s.lines[i] = s.lines[n]
	s.exts[i] = s.exts[n]
	s.lines = s.lines[:n]
	s.exts[n] = stalledExt{}
	s.exts = s.exts[:n]
}

func (s *stalledSet) remove(line uint64) (stalledExt, bool) {
	for i, l := range s.lines {
		if l == line {
			e := s.exts[i]
			s.removeAt(i)
			return e, true
		}
	}
	return stalledExt{}, false
}

func (s *stalledSet) len() int { return len(s.lines) }

// Stats aggregates controller behaviour.
type Stats struct {
	Accesses      stats.Counter
	L1Hits        stats.Counter
	L2Hits        stats.Counter
	Misses        stats.Counter
	MissLatency   stats.Mean       // fill latency of demand misses (Fig. 11)
	MissHist      *stats.Histogram // distribution of the same
	Prefetches    stats.Counter
	Writebacks    stats.Counter
	MSHRFull      stats.Counter // demand misses delayed by full fill buffers
	ExtStalls     stats.Counter // external requests stalled on a locked line
	ForcedRel     stats.Counter // locks broken by the progress guarantee
	Invalidations stats.Counter
	Forwarded     stats.Counter // fills served to other cores cache-to-cache
}

// Private is one core's private cache hierarchy and protocol endpoint.
type Private struct {
	coreID int
	net    coherence.Network
	client Client
	bankOf func(line uint64) int

	l1 *sram.Array
	l2 *sram.Array

	lineMask uint64

	l1Hit int
	l2Hit int

	mshrs      mshrSet
	mshrLimit  int
	stalled    stalledSet
	pendingFar map[uint64][]waiter // outstanding far RMWs by line, FIFO
	// farDeferred holds far RMWs waiting for an in-flight miss on the
	// same line to retire before they may drop the copy and issue.
	farDeferred map[uint64][]waiter

	// waiterFree recycles the waiter slices of retired MSHRs so the
	// steady state allocates none.
	waiterFree [][]waiter

	pool *coherence.MsgPool

	// work counts observable actions taken by Tick (event completions,
	// forced releases). The system's idle-skip cross-check asserts it
	// stays unchanged when a skipped Tick is replayed.
	work uint64

	events eventHeap
	seq    uint64
	now    uint64

	strides   []strideEntry
	pfDegree  int
	pfConfMin int

	// noForcedRelease suppresses the time-based forced-release sweep;
	// the model checker fires BreakStall explicitly instead.
	noForcedRelease bool

	sink *coherence.ErrorSink

	Stats Stats
}

// NewPrivate builds the hierarchy from the memory configuration.
func NewPrivate(coreID int, cfg *config.Config, net coherence.Network, client Client, bankOf func(uint64) int) *Private {
	m := cfg.Mem //rowlint:ignore bigcopy construction-time copy of the memory config; NewPrivate runs once per core per run
	p := &Private{
		coreID:      coreID,
		net:         net,
		client:      client,
		bankOf:      bankOf,
		l1:          sram.New(m.L1D.SizeBytes, m.L1D.Ways, m.LineBytes),
		l2:          sram.New(m.L2.SizeBytes, m.L2.Ways, m.LineBytes),
		lineMask:    ^uint64(m.LineBytes - 1),
		l1Hit:       m.L1D.HitCycles,
		l2Hit:       m.L2.HitCycles,
		mshrLimit:   m.MSHRs,
		pendingFar:  make(map[uint64][]waiter),
		farDeferred: make(map[uint64][]waiter),
		strides:     make([]strideEntry, 64),
		pfDegree:    m.PrefetcherDegree,
		pfConfMin:   m.PrefetcherDistance,
	}
	p.Stats.MissHist = stats.NewHistogram(1 << 16)
	return p
}

// SetErrorSink wires the system-wide protocol-error sink. Without one,
// violations panic (fail-fast for components driven directly by tests).
func (p *Private) SetErrorSink(s *coherence.ErrorSink) { p.sink = s }

// SetMsgPool installs the system-shared message free list. A nil pool
// (component tests) falls back to the allocator.
func (p *Private) SetMsgPool(mp *coherence.MsgPool) { p.pool = mp }

// SetNow advances the controller clock without running Tick. The
// system calls it when NeedsTick is false: the core may still issue
// Accesses this cycle, and those schedule events relative to now.
func (p *Private) SetNow(cycle uint64) { p.now = cycle }

// NeedsTick reports whether Tick would do anything beyond advancing
// the clock: pending pipeline events or stalled external requests.
func (p *Private) NeedsTick() bool {
	return len(p.events) > 0 || p.stalled.len() > 0
}

// WorkDone counts observable Tick actions; the idle-skip cross-check
// replays a skipped Tick and asserts this does not move.
func (p *Private) WorkDone() uint64 { return p.work }

// NextEventAt returns the earliest cycle strictly after now at which
// Tick would do observable work without further input: the earliest
// pending pipeline event, or the expiry of the oldest stalled external
// request's forced-release window. ^uint64(0) means the controller is
// quiescent until mail arrives or its core issues an access (both of
// which force a visit on their own).
//
//rowlint:noalloc
func (p *Private) NextEventAt(now uint64) uint64 {
	at := ^uint64(0)
	if len(p.events) > 0 {
		at = p.events[0].at
	}
	if !p.noForcedRelease {
		// Tick releases a stalled entry once cycle-stallAt exceeds
		// releaseAfter, i.e. from stallAt+releaseAfter+1 on.
		for i := range p.stalled.exts {
			if t := p.stalled.exts[i].stallAt + releaseAfter + 1; t < at {
				at = t
			}
		}
	}
	if at <= now {
		at = now + 1
	}
	return at
}

// fail raises a structured protocol error for this endpoint.
func (p *Private) fail(m *coherence.Msg, reason string) {
	pe := &coherence.ProtocolError{
		Cycle:     p.now,
		Component: fmt.Sprintf("cache %d", p.coreID),
		Reason:    reason,
	}
	if m != nil {
		pe.Op = m.String()
		pe.Line = m.Line
		if ms := p.mshrs.get(m.Line); ms != nil {
			pe.State = fmt.Sprintf("mshr{write=%v dataArrived=%v grant=%d acks=%d waiters=%d sentAt=%d}",
				ms.write, ms.dataArrived, ms.grant, ms.pendingAcks, len(ms.waiters), ms.sentAt)
		}
	}
	coherence.Raise(p.sink, pe)
}

// Line masks an address to its cacheline address.
func (p *Private) Line(addr uint64) uint64 { return addr & p.lineMask }

// State returns the coherence state the private hierarchy holds for
// the line (L1 takes precedence; both are kept consistent).
func (p *Private) State(line uint64) uint8 {
	if l := p.l1.Peek(line); l != nil {
		return l.Meta
	}
	if l := p.l2.Peek(line); l != nil {
		return l.Meta
	}
	return StateI
}

func (p *Private) setState(line uint64, st uint8) {
	if l := p.l1.Peek(line); l != nil {
		l.Meta = st
	}
	if l := p.l2.Peek(line); l != nil {
		l.Meta = st
	}
}

func (p *Private) push(e event) {
	p.seq++
	e.seq = p.seq
	p.events.pushEvent(e)
}

// Access requests the line for the core. write asks for exclusive
// permission. The response arrives via Client.MemResp(tag) unless tag
// is TagPrefetch. The call itself is instantaneous; lookup latency is
// modeled inside the controller.
//
//rowlint:seam same-index core→cache entry point; core[i] and cache[i] share a shard
func (p *Private) Access(tag uint64, addr uint64, write bool) {
	line := p.Line(addr)
	p.Stats.Accesses.Inc()
	if l := p.l1.Lookup(line, true); l != nil && p.permOK(l.Meta, write) {
		if write {
			l.Meta = StateM
			if l2 := p.l2.Peek(line); l2 != nil {
				l2.Meta = StateM
			}
		}
		p.Stats.L1Hits.Inc()
		if tag != TagPrefetch {
			p.push(event{at: p.now + uint64(p.l1Hit), kind: evRespond, tag: tag, line: line, lat: uint64(p.l1Hit)})
		}
		return
	}
	if l := p.l2.Lookup(line, true); l != nil && p.permOK(l.Meta, write) {
		// Fill L1 from L2.
		st := l.Meta
		if write {
			st = StateM
			l.Meta = StateM
		}
		p.installL1(line, st)
		p.Stats.L2Hits.Inc()
		if tag != TagPrefetch {
			p.push(event{at: p.now + uint64(p.l2Hit), kind: evRespond, tag: tag, line: line, lat: uint64(p.l2Hit)})
		}
		return
	}
	// Miss (or upgrade): goes through the MSHR after the lookup time.
	p.push(event{at: p.now + uint64(p.l2Hit), kind: evMiss, tag: tag, line: line, wr: write, lat: uint64(p.l2Hit)})
}

func (p *Private) permOK(state uint8, write bool) bool {
	if state == StateI {
		return false
	}
	if write {
		return state == StateM || state == StateE
	}
	return true
}

// startMiss allocates or merges into an MSHR once the lookup pipeline
// determined the access misses.
func (p *Private) startMiss(tag uint64, line uint64, write bool, at uint64) {
	// The line may have arrived while the lookup was in flight.
	if st := p.State(line); p.permOK(st, write) {
		if write {
			p.setState(line, StateM)
		}
		if tag != TagPrefetch {
			p.client.MemResp(tag, RespInfo{Line: line, Latency: p.now - at, Hit: true})
		}
		return
	}
	if m := p.mshrs.get(line); m != nil {
		// Secondary miss: merge. A write waiter merged onto an
		// in-flight GetS is re-issued as an upgrade when the read
		// fill completes (see maybeComplete).
		if tag != TagPrefetch {
			m.waiters = append(m.waiters, waiter{tag: tag, at: at, write: write})
		}
		return
	}
	if p.mshrLimit > 0 && p.mshrs.len() >= p.mshrLimit {
		// All fill buffers busy: prefetches drop, demand misses retry.
		if tag == TagPrefetch {
			return
		}
		p.Stats.MSHRFull.Inc()
		// Preserve the original access time for latency accounting.
		p.push(event{at: p.now + 4, kind: evMiss, tag: tag, line: line, wr: write, lat: p.now + 4 - at})
		return
	}
	m := mshr{line: line, write: write, sentAt: p.now, waiters: p.getWaiters()}
	if tag != TagPrefetch {
		m.waiters = append(m.waiters, waiter{tag: tag, at: at, write: write})
	}
	p.mshrs.add(line, m)
	p.Stats.Misses.Inc()
	t := coherence.MsgGetS
	if write {
		t = coherence.MsgGetX
	}
	p.net.Send(p.pool.New(coherence.Msg{
		Type: t, Line: line, Src: p.coreID, Dst: p.bankOf(line), Requestor: p.coreID,
	}))
}

// PendingWrite reports whether an exclusive request for the line is
// already in flight (e.g. a store's exclusive prefetch).
func (p *Private) PendingWrite(line uint64) bool {
	m := p.mshrs.get(line)
	return m != nil && m.write
}

// StoreComplete performs a store-buffer drain write when the line is
// held with write permission; it returns false when a GetX is needed
// first (the caller then issues an Access with write=true).
//
//rowlint:seam same-index core→cache entry point; core[i] and cache[i] share a shard
func (p *Private) StoreComplete(line uint64) bool {
	if l := p.l1.Lookup(line, true); l != nil && (l.Meta == StateM || l.Meta == StateE) {
		l.Meta = StateM
		if l2 := p.l2.Peek(line); l2 != nil {
			l2.Meta = StateM
		}
		return true
	}
	if l2 := p.l2.Lookup(line, true); l2 != nil && (l2.Meta == StateM || l2.Meta == StateE) {
		l2.Meta = StateM
		p.installL1(line, StateM)
		return true
	}
	return false
}

// FarRMW sends the atomic to the line's home L3 bank to be performed
// there (far atomics). The response arrives via Client.MemResp. Any
// local copy is dropped first: the bank's recall would invalidate it
// anyway, and the RMW result never migrates back.
//
// A far RMW issued while a miss on the same line is still in flight is
// deferred until that miss retires. Issuing it immediately is a
// protocol violation found by exhaustive search (rowcheck): the drop-
// and-PutX below would relinquish a copy the outstanding GetX is about
// to re-install, and the stale PutX then erases the directory's record
// of the new owner — the directory ends up in dirI while this core
// holds M.
//
//rowlint:seam same-index core→cache entry point; core[i] and cache[i] share a shard
func (p *Private) FarRMW(tag uint64, addr uint64) {
	line := p.Line(addr)
	p.Stats.Accesses.Inc()
	if p.mshrs.get(line) != nil {
		p.farDeferred[line] = append(p.farDeferred[line], waiter{tag: tag, at: p.now})
		return
	}
	p.issueFar(line, waiter{tag: tag, at: p.now})
}

func (p *Private) issueFar(line uint64, w waiter) {
	p.l1.Invalidate(line)
	if _, present := p.l2.Invalidate(line); present {
		// Relinquish ownership silently; the directory treats the
		// subsequent recall-miss as a stale forward.
		p.net.Send(p.pool.New(coherence.Msg{
			Type: coherence.MsgPutX, Line: line, Src: p.coreID, Dst: p.bankOf(line),
			Requestor: p.coreID,
		}))
	}
	p.pendingFar[line] = append(p.pendingFar[line], w)
	p.net.Send(p.pool.New(coherence.Msg{
		Type: coherence.MsgGetFar, Line: line, Src: p.coreID, Dst: p.bankOf(line),
		Requestor: p.coreID,
	}))
}

// TrainPrefetch feeds the IP-stride prefetcher with a demand load.
//
//rowlint:seam same-index core→cache entry point; core[i] and cache[i] share a shard
func (p *Private) TrainPrefetch(pc, addr uint64) {
	if p.pfDegree <= 0 {
		return
	}
	e := &p.strides[(pc>>2)&63]
	if e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < 8 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return
	}
	if e.conf < p.pfConfMin {
		return
	}
	for d := 1; d <= p.pfDegree; d++ {
		target := uint64(int64(addr) + e.stride*int64(d))
		line := p.Line(target)
		if line == p.Line(addr) || p.State(line) != StateI {
			continue
		}
		if p.mshrs.get(line) != nil {
			continue
		}
		p.Stats.Prefetches.Inc()
		p.Access(TagPrefetch, target, false)
	}
}

// Deliver processes protocol messages drained from the network. A
// fully consumed message is released to the pool here — the single
// consumption point on the cache side; a message parked in the stalled
// table is released when the stall resolves.
func (p *Private) Deliver(msgs []*coherence.Msg) {
	for _, m := range msgs {
		if p.handle(m) {
			p.pool.Put(m)
		}
	}
}

// handle dispatches one message and reports whether it was fully
// consumed (false: retained in the stalled-external table).
func (p *Private) handle(m *coherence.Msg) bool {
	switch m.Type {
	case coherence.MsgData:
		p.handleData(m)
	case coherence.MsgInvAck:
		if ms := p.mshrs.get(m.Line); ms != nil {
			ms.pendingAcks--
			p.maybeComplete(m.Line, ms)
		}
	case coherence.MsgInv:
		return p.handleExternal(m, true)
	case coherence.MsgFwdGetX:
		return p.handleExternal(m, true)
	case coherence.MsgFwdGetS:
		return p.handleExternal(m, false)
	case coherence.MsgFarDone:
		ws := p.pendingFar[m.Line]
		if len(ws) == 0 {
			p.fail(m, "FarDone without a pending far RMW")
			return true
		}
		w := ws[0]
		if len(ws) == 1 {
			delete(p.pendingFar, m.Line)
		} else {
			p.pendingFar[m.Line] = ws[1:]
		}
		p.client.MemResp(w.tag, RespInfo{Line: m.Line, Latency: p.now - w.at})
	default:
		p.fail(m, "unexpected message type")
	}
	return true
}

func (p *Private) handleData(m *coherence.Msg) {
	ms := p.mshrs.get(m.Line)
	if ms == nil {
		// Response for a line whose MSHR disappeared cannot happen:
		// MSHRs only retire on completion.
		p.fail(m, "Data response without a matching MSHR")
		return
	}
	ms.dataArrived = true
	ms.grant = m.Grant
	ms.fromPrivate = m.FromPrivate
	ms.pendingAcks += m.AckCount
	p.maybeComplete(m.Line, ms)
}

func (p *Private) maybeComplete(line uint64, msp *mshr) {
	if !msp.dataArrived || msp.pendingAcks != 0 {
		return
	}
	// Copy the entry out and free the slot first: re-issued upgrade
	// misses below allocate a fresh MSHR for the same line, and the
	// table remove invalidates pointers into it.
	ms := *msp
	p.mshrs.remove(line)

	st := StateS
	switch ms.grant {
	case coherence.GrantE:
		st = StateE
	case coherence.GrantM:
		st = StateM
	}
	if ms.write {
		st = StateM
	}
	p.install(line, st)

	// Close the transaction at the directory.
	ut := coherence.MsgUnblock
	grant := ms.grant
	if ms.grant == coherence.GrantM || ms.write {
		ut = coherence.MsgUnblockX
	}
	p.net.Send(p.pool.New(coherence.Msg{
		Type: ut, Line: line, Src: p.coreID, Dst: p.bankOf(line),
		Requestor: p.coreID, Grant: grant,
	}))

	fillLat := p.now - ms.sentAt
	if len(ms.waiters) > 0 {
		p.Stats.MissLatency.Observe(float64(fillLat))
		p.Stats.MissHist.Observe(float64(fillLat))
	}

	// Serve read-satisfiable waiters, then re-issue writers that a
	// shared grant cannot satisfy (upgrade). Two passes over the same
	// slice preserve the historical serve-then-reissue order without a
	// scratch buffer; the backing array is recycled only after both.
	for _, w := range ms.waiters {
		if w.write && st != StateM && st != StateE {
			continue
		}
		if w.write {
			p.setState(line, StateM)
		}
		p.client.MemResp(w.tag, RespInfo{
			Line:        line,
			Latency:     p.now - w.at,
			MissLatency: fillLat,
			FromPrivate: ms.fromPrivate,
		})
	}
	for _, w := range ms.waiters {
		if w.write && st != StateM && st != StateE {
			// GrantS cannot satisfy writers: upgrade.
			p.startMiss(w.tag, line, true, w.at)
		}
	}
	p.putWaiters(ms.waiters)

	// Release far RMWs deferred behind this miss — unless a writer
	// just re-issued an upgrade above, in which case they stay parked
	// behind the new MSHR.
	if dws, ok := p.farDeferred[line]; ok && p.mshrs.get(line) == nil {
		delete(p.farDeferred, line)
		for _, w := range dws {
			p.issueFar(line, w)
		}
	}
}

// getWaiters hands out a recycled zero-length waiter slice (nil when
// the free list is empty: append then allocates once and the array
// returns here on retire).
func (p *Private) getWaiters() []waiter {
	if n := len(p.waiterFree); n > 0 {
		w := p.waiterFree[n-1]
		p.waiterFree = p.waiterFree[:n-1]
		return w
	}
	return nil
}

func (p *Private) putWaiters(w []waiter) {
	if cap(w) == 0 {
		return
	}
	p.waiterFree = append(p.waiterFree, w[:0])
}

// handleExternal processes Inv/FwdGetS/FwdGetX, stalling when the
// line is locked by the core's atomic queue.
// handleExternal reports whether the message was consumed (false: it
// is retained in the stalled table until the lock releases).
//
//rowlint:noalloc
func (p *Private) handleExternal(m *coherence.Msg, write bool) bool {
	if stall := p.client.ExternalRequest(m.Line, write); stall {
		p.Stats.ExtStalls.Inc()
		if prev := p.stalled.get(m.Line); prev != nil {
			// The directory serializes transactions per line, so at
			// most one external request can be outstanding.
			//rowlint:ignore noalloc fatal protocol-error path; the run is already over
			p.fail(m, fmt.Sprintf("second stalled external request (already have %s)", prev.msg))
			return true
		}
		p.stalled.add(m.Line, stalledExt{msg: m, stallAt: p.now})
		return false
	}
	p.serveExternal(m)
	return true
}

//rowlint:noalloc
func (p *Private) serveExternal(m *coherence.Msg) {
	line := m.Line
	switch m.Type {
	case coherence.MsgInv:
		p.Stats.Invalidations.Inc()
		p.l1.Invalidate(line)
		p.l2.Invalidate(line)
		p.client.LineInvalidated(line)
		p.net.SendAfter(p.pool.New(coherence.Msg{
			Type: coherence.MsgInvAck, Line: line, Src: p.coreID, Dst: m.Requestor,
			Requestor: m.Requestor,
		}), uint64(p.l1Hit))
	case coherence.MsgFwdGetX:
		p.Stats.Forwarded.Inc()
		p.l1.Invalidate(line)
		p.l2.Invalidate(line)
		p.client.LineInvalidated(line)
		p.net.SendAfter(p.pool.New(coherence.Msg{
			Type: coherence.MsgData, Line: line, Src: p.coreID, Dst: m.Requestor,
			Requestor: m.Requestor, Grant: coherence.GrantM, FromPrivate: true,
		}), uint64(p.l1Hit))
	case coherence.MsgFwdGetS:
		p.Stats.Forwarded.Inc()
		p.setState(line, StateS)
		p.net.SendAfter(p.pool.New(coherence.Msg{
			Type: coherence.MsgData, Line: line, Src: p.coreID, Dst: m.Requestor,
			Requestor: m.Requestor, Grant: coherence.GrantS, FromPrivate: true,
		}), uint64(p.l1Hit))
	default:
		p.fail(m, "cannot serve external request type") //rowlint:ignore noalloc fatal protocol-error path; the run is already over
	}
}

// LockReleased must be called by the core when an atomic unlocks a
// line; any stalled external request for it is then served.
//
//rowlint:seam same-index core→cache entry point; core[i] and cache[i] share a shard
//rowlint:noalloc
func (p *Private) LockReleased(line uint64) {
	if s, ok := p.stalled.remove(line); ok {
		p.serveExternal(s.msg)
		p.pool.Put(s.msg)
	}
}

// install places a fill into both levels (L2 inclusive of L1),
// handling evictions and writebacks. Locked lines are never evicted.
//
//rowlint:noalloc
func (p *Private) install(line uint64, st uint8) {
	p.installL2(line, st)
	p.installL1(line, st)
}

//rowlint:noalloc
func (p *Private) installL1(line uint64, st uint8) {
	_, _, _, ok := p.l1.InsertVeto(line, st, p.client.LineLocked)
	_ = ok // if every way is locked the fill stays L2-only
}

//rowlint:noalloc
func (p *Private) installL2(line uint64, st uint8) {
	evTag, evMeta, evicted, ok := p.l2.InsertVeto(line, st, p.client.LineLocked)
	if !ok {
		return // uncacheable fill: extraordinarily rare
	}
	if !evicted {
		return
	}
	// Inclusive: the L1 copy must go too.
	p.l1.Invalidate(evTag)
	if evMeta == StateM || evMeta == StateE {
		// Writing the line back surrenders snoop coverage, so
		// speculative loads of it must be squashed (the directory
		// stops forwarding invalidations once ownership is released).
		// Silent S evictions keep coverage: the directory still lists
		// this core as a sharer and will send the invalidation.
		p.client.LineInvalidated(evTag)
		p.Stats.Writebacks.Inc()
		p.net.Send(p.pool.New(coherence.Msg{
			Type: coherence.MsgPutX, Line: evTag, Src: p.coreID, Dst: p.bankOf(evTag),
			Requestor: p.coreID,
		}))
	}
}

// Warm pre-installs a line in the L2 (warm start). The directory must
// be warmed to a matching state by the caller.
func (p *Private) Warm(line uint64, state uint8) {
	p.l2.Insert(line, state)
}

// Tick advances internal pipelines: lookup completions and the
// forced-release progress guarantee.
//
//rowlint:noalloc
func (p *Private) Tick(cycle uint64) {
	p.now = cycle
	for len(p.events) > 0 && p.events[0].at <= cycle {
		e := p.events.popEvent()
		p.work++
		switch e.kind {
		case evRespond:
			p.client.MemResp(e.tag, RespInfo{Line: e.line, Latency: e.lat, Hit: true})
		case evMiss:
			p.startMiss(e.tag, e.line, e.wr, e.at-e.lat)
		}
	}
	for i := 0; !p.noForcedRelease && i < p.stalled.len(); {
		s := &p.stalled.exts[i]
		if cycle-s.stallAt <= releaseAfter {
			i++
			continue
		}
		line := p.stalled.lines[i]
		if p.client.ForceRelease(line) {
			p.Stats.ForcedRel.Inc()
			p.work++
			m := s.msg
			p.stalled.removeAt(i)
			p.serveExternal(m)
			p.pool.Put(m)
			// removeAt swapped the tail into slot i: revisit it.
		} else {
			s.stallAt = cycle // imminent unlock: re-arm
			i++
		}
	}
}

// PendingWork reports in-flight misses, queued events or stalled
// external requests (quiescence check).
func (p *Private) PendingWork() bool {
	return p.mshrs.len() > 0 || len(p.events) > 0 || p.stalled.len() > 0 ||
		len(p.pendingFar) > 0 || len(p.farDeferred) > 0
}

// RetainedMsgs counts the external requests parked in the stalled
// table — the cache's share of the pool's outstanding population (the
// end-of-run conservation check sums this across components).
func (p *Private) RetainedMsgs() int {
	return p.stalled.len()
}

// OldestMiss returns the line of the oldest outstanding demand miss or
// far RMW, with a short description (deadlock diagnostics). ok is false
// when nothing is outstanding.
func (p *Private) OldestMiss() (line uint64, desc string, ok bool) {
	best := ^uint64(0)
	for i := range p.mshrs.ms {
		l, m := p.mshrs.lines[i], &p.mshrs.ms[i]
		if m.sentAt < best || (m.sentAt == best && l < line) {
			best = m.sentAt
			line = l
			op := "GetS"
			if m.write {
				op = "GetX"
			}
			desc = fmt.Sprintf("%s sent at cycle %d (dataArrived=%v acks=%d)", op, m.sentAt, m.dataArrived, m.pendingAcks)
			ok = true
		}
	}
	//rowlint:ignore maporder minimum over (sentAt, line) with a total-order tie-break; visit order cannot change the result
	for l, ws := range p.pendingFar {
		if len(ws) == 0 {
			continue
		}
		if ws[0].at < best || (ws[0].at == best && l < line) {
			best = ws[0].at
			line = l
			desc = fmt.Sprintf("GetFar sent at cycle %d (%d queued)", ws[0].at, len(ws))
			ok = true
		}
	}
	return line, desc, ok
}

// HasStalledExternal reports whether an external request is stalled on
// this line (used by tests).
func (p *Private) HasStalledExternal(line uint64) bool {
	return p.stalled.get(line) != nil
}

// DebugMSHRs describes every outstanding miss (deadlock diagnostics).
func (p *Private) DebugMSHRs() []string {
	var out []string
	for i := range p.mshrs.ms {
		line, m := p.mshrs.lines[i], &p.mshrs.ms[i]
		out = append(out, fmt.Sprintf(
			"cache%d mshr line=%#x write=%v dataArrived=%v grant=%d acks=%d waiters=%d sentAt=%d",
			p.coreID, line, m.write, m.dataArrived, m.grant, m.pendingAcks, len(m.waiters), m.sentAt))
	}
	for _, line := range p.stalled.lines {
		out = append(out, fmt.Sprintf("cache%d stalledExt line=%#x", p.coreID, line))
	}
	// Sorted so the deadlock report is identical run to run.
	far := make([]uint64, 0, len(p.pendingFar))
	for line := range p.pendingFar {
		far = append(far, line)
	}
	sort.Slice(far, func(i, j int) bool { return far[i] < far[j] })
	for _, line := range far {
		out = append(out, fmt.Sprintf("cache%d pendingFar line=%#x n=%d", p.coreID, line, len(p.pendingFar[line])))
	}
	return out
}

// ForEachLine reports every line the private hierarchy holds with its
// effective coherence state (invariant checking).
func (p *Private) ForEachLine(fn func(line uint64, state uint8)) {
	seen := make(map[uint64]bool)
	p.l1.ForEach(func(tag uint64, meta uint8) {
		seen[tag] = true
		fn(tag, meta)
	})
	p.l2.ForEach(func(tag uint64, meta uint8) {
		if !seen[tag] {
			fn(tag, meta)
		}
	})
}
