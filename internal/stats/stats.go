// Package stats provides the counters, means and histograms the
// simulator components use to record behaviour, plus helpers to format
// experiment tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Mean accumulates samples and reports their arithmetic mean.
type Mean struct {
	sum float64
	n   uint64
}

// Observe records one sample.
func (m *Mean) Observe(v float64) {
	m.sum += v
	m.n++
}

// ObserveN records a pre-aggregated sum of n samples.
func (m *Mean) ObserveN(sum float64, n uint64) {
	m.sum += sum
	m.n += n
}

// Count returns the number of samples observed.
func (m *Mean) Count() uint64 { return m.n }

// Sum returns the running total.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the mean, or 0 when no samples were observed.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Reset discards all samples.
func (m *Mean) Reset() { m.sum, m.n = 0, 0 }

// Histogram records samples into exponentially sized latency buckets:
// [0,1), [1,2), [2,4), [4,8), ... Values below zero clamp to bucket 0.
type Histogram struct {
	buckets []uint64
	sum     float64
	n       uint64
	max     float64
}

// NewHistogram returns a histogram with enough buckets to separate
// values up to maxValue.
func NewHistogram(maxValue float64) *Histogram {
	b := 2
	for v := 1.0; v < maxValue; v *= 2 {
		b++
	}
	return &Histogram{buckets: make([]uint64, b)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	idx := 0
	if v >= 1 {
		idx = 1 + int(math.Log2(v))
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	if idx < 0 {
		idx = 0
	}
	h.buckets[idx]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the sample mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest sample observed.
func (h *Histogram) Max() float64 { return h.max }

// Merge folds other's samples into h (bucket-wise; both histograms
// must have been created with compatible ranges — extra buckets in
// other clamp into h's last bucket).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.buckets {
		idx := i
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
		h.buckets[idx] += c
	}
	h.sum += other.sum
	h.n += other.n
	if other.max > h.max {
		h.max = other.max
	}
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// bucket upper edges. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 1
			}
			return math.Pow(2, float64(i))
		}
	}
	return h.max
}

// Set is a named collection of counters and means, used by components
// that want extensible stats without hard-coded fields.
type Set struct {
	counters map[string]*Counter
	means    map[string]*Mean
}

// NewSet returns an empty stats set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		means:    make(map[string]*Mean),
	}
}

// Counter returns (allocating if needed) the counter with this name.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Mean returns (allocating if needed) the mean with this name.
func (s *Set) Mean(name string) *Mean {
	m, ok := s.means[name]
	if !ok {
		m = &Mean{}
		s.means[name] = m
	}
	return m
}

// Names returns the sorted names of all counters and means.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters)+len(s.means))
	for n := range s.counters {
		names = append(names, n)
	}
	for n := range s.means {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders rows of experiment results with aligned columns, in
// the spirit of the paper's figures rendered as text.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first,
// cells quoted only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 3 decimal places for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F1 formats a float with 1 decimal place for table cells.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct formats a ratio as a percentage with 1 decimal place.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// GeoMean returns the geometric mean of vs, ignoring non-positive
// entries; it returns 0 when no positive entries exist.
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ArithMean returns the arithmetic mean of vs, or 0 when empty.
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
