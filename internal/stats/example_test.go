package stats_test

import (
	"fmt"

	"rowsim/internal/stats"
)

func ExampleTable() {
	t := &stats.Table{
		Title:   "Normalized execution time",
		Headers: []string{"workload", "lazy/eager"},
	}
	t.AddRow("canneal", stats.F(1.315))
	t.AddRow("pc", stats.F(0.794))
	fmt.Print(t)
	// Output:
	// Normalized execution time
	// workload  lazy/eager
	// --------  ----------
	// canneal   1.315
	// pc        0.794
}

func ExampleGeoMean() {
	fmt.Printf("%.2f\n", stats.GeoMean([]float64{0.5, 2.0}))
	// Output: 1.00
}

func ExampleHistogram() {
	h := stats.NewHistogram(1024)
	for _, lat := range []float64{5, 5, 12, 200, 700} {
		h.Observe(lat)
	}
	fmt.Printf("mean=%.1f p99<=%.0f\n", h.Mean(), h.Quantile(0.99))
	// Output: mean=184.4 p99<=1024
}
