package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean must be 0")
	}
	m.Observe(2)
	m.Observe(4)
	if m.Value() != 3 {
		t.Fatalf("mean = %v, want 3", m.Value())
	}
	m.ObserveN(14, 2) // samples 7,7
	if m.Value() != 5 || m.Count() != 4 {
		t.Fatalf("mean/count = %v/%d, want 5/4", m.Value(), m.Count())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1024)
	for _, v := range []float64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %v", h.Max())
	}
	if got, want := h.Mean(), (0.0+1+2+3+100+1000)/6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		h := NewHistogram(4096)
		x := uint64(seed)
		for i := 0; i < 200; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Observe(float64(x % 4096))
		}
		q50 := h.Quantile(0.5)
		q90 := h.Quantile(0.9)
		q99 := h.Quantile(0.99)
		return q50 <= q90 && q90 <= q99 && q99 <= math.Max(h.Max(), q99)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1024)
	b := NewHistogram(1024)
	for _, v := range []float64{1, 2, 3} {
		a.Observe(v)
	}
	for _, v := range []float64{100, 200} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 5 {
		t.Fatalf("merged count = %d, want 5", a.Count())
	}
	if a.Max() != 200 {
		t.Fatalf("merged max = %v, want 200", a.Max())
	}
	if got, want := a.Mean(), 306.0/5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged mean = %v, want %v", got, want)
	}
	a.Merge(nil) // no-op
	if a.Count() != 5 {
		t.Fatal("nil merge changed the histogram")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("a").Inc()
	s.Counter("a").Inc()
	s.Mean("b").Observe(3)
	if s.Counter("a").Value() != 2 {
		t.Fatal("counter identity not preserved")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"x", "yy"}}
	tb.AddRow("long-cell", "1")
	out := tb.String()
	if !strings.Contains(out, "T\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "long-cell") {
		t.Fatal("missing cell")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, row
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the column-2 offset.
	hIdx := strings.Index(lines[1], "yy")
	rIdx := strings.Index(lines[3], "1")
	if hIdx != rIdx {
		t.Fatalf("column 2 misaligned: header@%d row@%d", hIdx, rIdx)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("geomean(nil) = %v, want 0", got)
	}
	// Non-positive entries ignored.
	if got := GeoMean([]float64{0, -1, 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean with junk = %v, want 4", got)
	}
}

func TestArithMean(t *testing.T) {
	if got := ArithMean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
	if got := ArithMean(nil); got != 0 {
		t.Fatalf("mean(nil) = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if F1(1.26) != "1.3" {
		t.Fatalf("F1 = %q", F1(1.26))
	}
	if Pct(0.125) != "12.5%" {
		t.Fatalf("Pct = %q", Pct(0.125))
	}
}
