package stats

import (
	"encoding/json"
	"fmt"
)

// JSON round-tripping for the three sample accumulators, so component
// Stats structs that embed them serialize transparently inside a
// checkpoint. encoding/json renders float64 with the shortest
// representation that parses back to the identical bits, so a
// marshal/unmarshal cycle is exact: a restored histogram or mean
// reports byte-identical values. All fields are encoded — including
// zero ones — because a checkpoint is a faithful state copy, not a
// compact wire format.

type counterJSON struct {
	N uint64 `json:"n"`
}

// MarshalJSON encodes the counter's full state.
func (c Counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(counterJSON{N: c.n})
}

// UnmarshalJSON restores the counter's full state.
func (c *Counter) UnmarshalJSON(b []byte) error {
	var v counterJSON
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	c.n = v.N
	return nil
}

type meanJSON struct {
	Sum float64 `json:"sum"`
	N   uint64  `json:"n"`
}

// MarshalJSON encodes the mean's full state.
func (m Mean) MarshalJSON() ([]byte, error) {
	return json.Marshal(meanJSON{Sum: m.sum, N: m.n})
}

// UnmarshalJSON restores the mean's full state.
func (m *Mean) UnmarshalJSON(b []byte) error {
	var v meanJSON
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	m.sum, m.n = v.Sum, v.N
	return nil
}

type histogramJSON struct {
	Buckets []uint64 `json:"buckets"`
	Sum     float64  `json:"sum"`
	N       uint64   `json:"n"`
	Max     float64  `json:"max"`
}

// MarshalJSON encodes the histogram's full state, bucket layout
// included.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Buckets: h.buckets, Sum: h.sum, N: h.n, Max: h.max})
}

// UnmarshalJSON restores the histogram's full state. The bucket count
// comes from the encoded form, so the restored histogram clamps
// out-of-range samples exactly as the original did.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var v histogramJSON
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	if v.Buckets == nil {
		return fmt.Errorf("stats: histogram with no buckets")
	}
	h.buckets = v.Buckets
	h.sum, h.n, h.max = v.Sum, v.N, v.Max
	return nil
}

// Clone returns an independent deep copy of the histogram (nil in,
// nil out). Snapshots clone so later Observe calls on the live
// histogram cannot mutate checkpointed state.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	c.buckets = append([]uint64(nil), h.buckets...)
	return &c
}
