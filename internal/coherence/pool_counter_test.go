package coherence

import "testing"

// TestPoolOutstandingCounts pins the gets/puts accounting Outstanding
// is built from: every hand-out increments, every release decrements,
// pool-backed or freshly allocated alike.
func TestPoolOutstandingCounts(t *testing.T) {
	p := &MsgPool{}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("fresh pool Outstanding = %d, want 0", got)
	}
	a := p.Get()
	b := p.New(Msg{Type: MsgGetS})
	if got := p.Outstanding(); got != 2 {
		t.Fatalf("after 2 gets Outstanding = %d, want 2", got)
	}
	p.Put(a)
	if got := p.Outstanding(); got != 1 {
		t.Fatalf("after 1 put Outstanding = %d, want 1", got)
	}
	p.Put(b)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("after both puts Outstanding = %d, want 0", got)
	}
	// Recycled messages count the same as fresh ones.
	c := p.Get()
	if got := p.Outstanding(); got != 1 {
		t.Fatalf("after recycled get Outstanding = %d, want 1", got)
	}
	p.Put(c)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("final Outstanding = %d, want 0", got)
	}
}

// TestPoolOutstandingNilTolerance: the nil pool and nil message are
// no-ops everywhere else and must be for the accounting too.
func TestPoolOutstandingNilTolerance(t *testing.T) {
	var p *MsgPool
	m := p.Get()
	p.Put(m)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("nil pool Outstanding = %d, want 0", got)
	}
	q := &MsgPool{}
	q.Put(nil) // dropped, not counted
	if got := q.Outstanding(); got != 0 {
		t.Fatalf("after Put(nil) Outstanding = %d, want 0", got)
	}
}

// TestHookSwallowReleasesMessage pins the Handle hook path: a test
// hook that swallows a message (returns nil) must not leak the pool
// slot — the message is released, so the end-of-run conservation check
// stays balanced even for hook-heavy torture runs.
func TestHookSwallowReleasesMessage(t *testing.T) {
	d, _ := newDirUnderTest()
	pool := &MsgPool{}
	d.SetMsgPool(pool)
	d.SetTestHook(func(m *Msg) *Msg { return nil }) // swallow everything

	m := pool.New(Msg{Type: MsgGetS, Line: lineA, Src: 1, Dst: 32, Requestor: 1})
	d.Handle(m)
	if got := pool.Outstanding(); got != 0 {
		t.Fatalf("swallowed message leaked: Outstanding = %d, want 0", got)
	}
	if d.RetainedMsgs() != 0 {
		t.Fatalf("swallowed message retained: RetainedMsgs = %d, want 0", d.RetainedMsgs())
	}
}

// TestDirectoryRetainedMsgsCountsWaiting: requests queued behind a
// blocked line are the directory's retained population.
func TestDirectoryRetainedMsgsCountsWaiting(t *testing.T) {
	d, _ := newDirUnderTest()
	pool := &MsgPool{}
	d.SetMsgPool(pool)

	d.Handle(pool.New(Msg{Type: MsgGetS, Line: lineA, Src: 1, Dst: 32, Requestor: 1}))
	// The line is now blocked awaiting core 1's Unblock; a second
	// request stalls in the waiting queue.
	d.Handle(pool.New(Msg{Type: MsgGetX, Line: lineA, Src: 2, Dst: 32, Requestor: 2}))
	if got := d.RetainedMsgs(); got != 1 {
		t.Fatalf("RetainedMsgs = %d, want 1 (stalled GetX)", got)
	}
	// Conservation at this intermediate point: the stalled GetX is the
	// only message still owned (responses went to the fake network,
	// which is outside the pool accounting here — they were drawn from
	// the pool though, so subtract what the net holds).
	if out := pool.Outstanding(); out < 1 {
		t.Fatalf("Outstanding = %d, want >= 1 while a message is retained", out)
	}

	// Close the transaction; the queued GetX is served and released.
	d.Handle(pool.New(Msg{Type: MsgUnblock, Line: lineA, Src: 1, Dst: 32, Requestor: 1, Grant: GrantE}))
	if got := d.RetainedMsgs(); got != 0 {
		t.Fatalf("after unblock RetainedMsgs = %d, want 0", got)
	}
}
