// Package coherence implements a blocking, directory-based MESI
// protocol in the style of the GEMS protocols used by the paper.
//
// The directory lives at the shared L3 banks. Requests for a line are
// serialized by transient Blocked states: while a transaction is in
// flight the directory queues younger requests for the same line, and
// the requestor closes the transaction with an Unblock message. Owners
// answer forwarded requests cache-to-cache; an owner whose line is
// locked by an in-flight atomic (cache locking, Section II of the
// paper) stalls the forwarded request until the atomic unlocks.
//
// This blocking behaviour is what produces the two phenomena the paper
// builds on: (1) contended lines acquired from remote private caches
// exhibit much higher fill latency than any non-contended access, and
// (2) the invalidation for a contended line can reach a core after its
// atomic has already unlocked (Fig. 8), which motivates the
// directory-latency contention detector.
package coherence

import "fmt"

// MsgType enumerates protocol messages.
type MsgType uint8

const (
	// MsgGetS requests read permission (core -> directory).
	MsgGetS MsgType = iota
	// MsgGetX requests write permission (core -> directory).
	MsgGetX
	// MsgPutX writes back and relinquishes an M/E line (core -> directory).
	MsgPutX
	// MsgData carries the line to the requestor (directory or remote
	// cache -> core).
	MsgData
	// MsgFwdGetS asks the owner to send the line to a reader
	// (directory -> owner core).
	MsgFwdGetS
	// MsgFwdGetX asks the owner to send the line to a writer and
	// invalidate itself (directory -> owner core).
	MsgFwdGetX
	// MsgInv asks a sharer to invalidate (directory -> core).
	MsgInv
	// MsgInvAck acknowledges an invalidation (sharer -> requestor core).
	MsgInvAck
	// MsgUnblock closes a read transaction (requestor -> directory).
	MsgUnblock
	// MsgUnblockX closes a write transaction (requestor -> directory).
	MsgUnblockX
	// MsgGetFar asks the directory to perform the RMW at the L3 bank
	// ("far atomics", the near/far axis of the paper's Section VII):
	// the line is recalled from any private holder and updated in
	// place, and no copy migrates to the requestor.
	MsgGetFar
	// MsgFarDone returns the far RMW's result to the requestor.
	MsgFarDone
)

// String returns the protocol mnemonic.
func (t MsgType) String() string {
	switch t {
	case MsgGetS:
		return "GetS"
	case MsgGetX:
		return "GetX"
	case MsgPutX:
		return "PutX"
	case MsgData:
		return "Data"
	case MsgFwdGetS:
		return "FwdGetS"
	case MsgFwdGetX:
		return "FwdGetX"
	case MsgInv:
		return "Inv"
	case MsgInvAck:
		return "InvAck"
	case MsgUnblock:
		return "Unblock"
	case MsgUnblockX:
		return "UnblockX"
	case MsgGetFar:
		return "GetFar"
	case MsgFarDone:
		return "FarDone"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// GrantState is the coherence state granted with a Data response.
type GrantState uint8

const (
	// GrantS grants shared (read-only) permission.
	GrantS GrantState = iota
	// GrantE grants exclusive clean permission.
	GrantE
	// GrantM grants modified permission.
	GrantM
)

// Msg is one protocol message. Node IDs: cores are 0..NumCores-1,
// directory banks are NumCores..NumCores+Banks-1.
//
// Ownership of a message travels with the value (sender builds it,
// network carries it, consumer releases it — see MsgPool), so the
// current holder may read and write it freely regardless of domain.
//
//rowlint:owner message
type Msg struct {
	Type MsgType
	Line uint64 // line address (low bits cleared)
	Src  int    // sending node
	Dst  int    // receiving node

	// Requestor is the core that started the transaction. On
	// forwarded requests it tells the owner where to send Data; on
	// invalidations it tells sharers where to send InvAck.
	Requestor int

	// Grant is the state conveyed by a Data response.
	Grant GrantState
	// AckCount is the number of InvAcks the requestor must collect
	// before using a Data response.
	AckCount int
	// FromPrivate marks a Data response served cache-to-cache from a
	// remote private cache (the signal used by the RW+Dir contention
	// detector).
	FromPrivate bool
}

// String renders the message for debugging.
func (m *Msg) String() string {
	return fmt.Sprintf("%s line=%#x %d->%d req=%d acks=%d", m.Type, m.Line, m.Src, m.Dst, m.Requestor, m.AckCount)
}

// Network abstracts message transport so the protocol agents do not
// depend on the interconnect implementation. It is the one legal
// cross-shard channel: calls into it classify as mesh-mediated in the
// shard-ownership analysis.
//
//rowlint:owner mesh
type Network interface {
	// Send enqueues m for delivery; latency is derived from the
	// src/dst placement.
	Send(m *Msg)
	// SendAfter enqueues m with extra cycles of source-side delay
	// (e.g. L3 or DRAM access time before the response leaves).
	SendAfter(m *Msg, extra uint64)
}
