package coherence

import (
	"fmt"
	"sort"

	"rowsim/internal/sram"
	"rowsim/internal/stats"
)

// dirState is the stable directory state of a line.
type dirState uint8

const (
	dirI dirState = iota // not cached privately
	dirS                 // one or more read-only sharers
	dirM                 // exactly one owner, possibly dirty
)

// pending records the transaction context the directory is blocked on.
type pending struct {
	requestor int
	isWrite   bool

	// Far-RMW recall context: whether a far RMW is in flight and the
	// number of invalidation acks / the data return still expected
	// before the bank can perform the operation.
	far     bool
	farAcks int
	farData bool // waiting for the owner's data return
}

// dirEntry is the directory's view of one line.
type dirEntry struct {
	state   dirState
	owner   int
	sharers uint64 // bitmask over cores (NumCores <= 64)

	blocked bool
	pend    pending
	waiting []*Msg // requests stalled while blocked, FIFO
}

// DirStats aggregates directory behaviour for the experiment tables.
type DirStats struct {
	GetS        stats.Counter
	GetX        stats.Counter
	PutX        stats.Counter
	Forwards    stats.Counter // requests answered cache-to-cache
	Stalled     stats.Counter // requests queued behind a blocked line
	FarOps      stats.Counter // RMWs performed at the bank (far atomics)
	L3Hits      stats.Counter
	L3Misses    stats.Counter
	Invalidates stats.Counter
	StallDepth  stats.Mean // queue length observed by each stalled request
}

// Directory is one L3 bank with its slice of the directory. Lines are
// address-interleaved across banks by the system.
type Directory struct {
	nodeID int
	bank   int

	net Network
	l3  *sram.Array

	l3HitCycles int
	dramCycles  int

	lines map[uint64]*dirEntry

	pool *MsgPool
	sink *ErrorSink
	now  uint64
	hook func(*Msg) *Msg

	Stats DirStats
}

// NewDirectory builds one directory bank. l3SizeBytes/l3Ways give the
// bank's data-array geometry.
func NewDirectory(nodeID, bank int, net Network, l3SizeBytes, l3Ways, lineBytes, l3HitCycles, dramCycles int) *Directory {
	return &Directory{
		nodeID:      nodeID,
		bank:        bank,
		net:         net,
		l3:          sram.New(l3SizeBytes, l3Ways, lineBytes),
		l3HitCycles: l3HitCycles,
		dramCycles:  dramCycles,
		lines:       make(map[uint64]*dirEntry),
	}
}

// NodeID returns the bank's network node id.
func (d *Directory) NodeID() int { return d.nodeID }

// SetErrorSink wires the system-wide protocol-error sink. Without one,
// violations panic (fail-fast for components driven directly by tests).
func (d *Directory) SetErrorSink(s *ErrorSink) { d.sink = s }

// SetMsgPool wires the system-owned message free list. Every message
// the bank sends is drawn from it, and every message the bank fully
// consumes is released back; messages parked in a blocked line's
// waiting queue are released when they are eventually served. A nil
// pool (component tests) falls back to the allocator.
func (d *Directory) SetMsgPool(p *MsgPool) { d.pool = p }

// SetCycle stamps the bank's local clock; the system calls it before
// handling the cycle's drained messages so errors carry the cycle.
func (d *Directory) SetCycle(c uint64) { d.now = c }

// SetTestHook installs a message filter applied before Handle processes
// each message. Tests use it to seed protocol bugs (mutate or swallow a
// message) and verify they surface as structured ProtocolErrors. A nil
// return swallows the message.
func (d *Directory) SetTestHook(f func(*Msg) *Msg) { d.hook = f }

// fail raises a structured protocol error for this bank.
func (d *Directory) fail(m *Msg, e *dirEntry, reason string) {
	pe := &ProtocolError{
		Cycle:     d.now,
		Component: fmt.Sprintf("directory bank %d", d.bank),
		Reason:    reason,
	}
	if m != nil {
		pe.Op = m.String()
		pe.Line = m.Line
	}
	if e != nil {
		pe.State = e.describe()
	}
	Raise(d.sink, pe)
}

// describe renders the entry's transaction state for error reports.
func (e *dirEntry) describe() string {
	return fmt.Sprintf("state=%d owner=%d sharers=%#x blocked=%v pend={req=%d write=%v far=%v acks=%d data=%v} waiting=%d",
		e.state, e.owner, e.sharers, e.blocked,
		e.pend.requestor, e.pend.isWrite, e.pend.far, e.pend.farAcks, e.pend.farData,
		len(e.waiting))
}

func (d *Directory) entry(line uint64) *dirEntry {
	e, ok := d.lines[line]
	if !ok {
		e = &dirEntry{owner: -1}
		d.lines[line] = e
	}
	return e
}

// Handle processes one incoming message. The system calls it for every
// message drained from this bank's network inbox. A fully consumed
// message is released to the pool here — the single consumption point
// on the bank side; messages parked in a blocked line's waiting queue
// are released when the queue is later served.
//
//rowlint:noalloc
func (d *Directory) Handle(m *Msg) {
	if d.hook != nil {
		orig := m
		if m = d.hook(m); m == nil {
			// A swallowed message still came from the pool: release it,
			// or every hook-dropped message leaks a pool slot (caught by
			// the end-of-run conservation check).
			d.pool.Put(orig)
			return
		}
	}
	if d.handle(m) {
		d.pool.Put(m)
	}
}

// handle dispatches one message and reports whether it was fully
// consumed (false: retained in a blocked line's waiting queue).
//
//rowlint:noalloc
func (d *Directory) handle(m *Msg) bool {
	switch m.Type {
	case MsgGetS, MsgGetX:
		e := d.entry(m.Line)
		if e.blocked {
			d.Stats.Stalled.Inc()
			d.Stats.StallDepth.Observe(float64(len(e.waiting)))
			e.waiting = append(e.waiting, m)
			return false
		}
		d.serve(m, e)
	case MsgPutX:
		e := d.entry(m.Line)
		if e.blocked {
			// The owner is concurrently being forwarded-to; queue the
			// writeback and drop it as stale once the transaction
			// closes (the owner answers forwards even after evicting).
			e.waiting = append(e.waiting, m)
			return false
		}
		d.handlePutX(m, e)
	case MsgUnblock, MsgUnblockX:
		d.handleUnblock(m)
	case MsgGetFar:
		e := d.entry(m.Line)
		if e.blocked {
			d.Stats.Stalled.Inc()
			d.Stats.StallDepth.Observe(float64(len(e.waiting)))
			e.waiting = append(e.waiting, m)
			return false
		}
		d.serveGetFar(m, e)
	case MsgInvAck:
		d.farAck(m)
	case MsgData:
		d.farData(m)
	default:
		d.fail(m, d.lines[m.Line], "unexpected message type") //rowlint:ignore noalloc fatal protocol-error path; the run is already over
	}
	return true
}

// serve starts a transaction for a GetS/GetX on an unblocked entry.
//
//rowlint:noalloc
func (d *Directory) serve(m *Msg, e *dirEntry) {
	switch m.Type {
	case MsgGetS:
		d.Stats.GetS.Inc()
		d.serveGetS(m, e)
	case MsgGetX:
		d.Stats.GetX.Inc()
		d.serveGetX(m, e)
	case MsgPutX:
		d.handlePutX(m, e)
	case MsgGetFar:
		d.serveGetFar(m, e)
	default:
		d.fail(m, e, "cannot serve queued message type") //rowlint:ignore noalloc fatal protocol-error path; the run is already over
	}
}

// serveGetFar performs an RMW at the bank: any private copies are
// recalled first (sharers invalidated, an owner's dirty data pulled
// back), then the L3 updates the line in place and answers the
// requestor. The line stays at the L3 — far atomics never bounce it.
//
//rowlint:noalloc
func (d *Directory) serveGetFar(m *Msg, e *dirEntry) {
	d.Stats.FarOps.Inc()
	switch e.state {
	case dirI:
		// Uncontested: L3 (or DRAM) access plus the ALU operation.
		d.net.SendAfter(d.pool.New(Msg{
			Type: MsgFarDone, Line: m.Line, Src: d.nodeID, Dst: m.Requestor,
			Requestor: m.Requestor,
		}), d.dataDelay(m.Line)+1)
	case dirS:
		acks := 0
		for c := 0; c < 64; c++ {
			if e.sharers&(1<<uint(c)) == 0 {
				continue
			}
			acks++
			d.Stats.Invalidates.Inc()
			d.net.Send(d.pool.New(Msg{
				Type: MsgInv, Line: m.Line, Src: d.nodeID, Dst: c,
				Requestor: d.nodeID, // acks return to the bank
			}))
		}
		e.blocked = true
		e.pend = pending{requestor: m.Requestor, far: true, farAcks: acks}
		if acks == 0 {
			d.finishFar(m.Line, e)
		}
	case dirM:
		// Recall the owner's copy; its Data returns to the bank. A
		// locked line stalls the recall at the owner, exactly like a
		// core-to-core forward.
		d.Stats.Forwards.Inc()
		d.net.Send(d.pool.New(Msg{
			Type: MsgFwdGetX, Line: m.Line, Src: d.nodeID, Dst: e.owner,
			Requestor: d.nodeID,
		}))
		e.blocked = true
		e.pend = pending{requestor: m.Requestor, far: true, farData: true}
	}
}

//rowlint:noalloc
func (d *Directory) farAck(m *Msg) {
	e, ok := d.lines[m.Line]
	if !ok || !e.blocked || !e.pend.far {
		d.fail(m, e, "stray InvAck: no far recall in flight") //rowlint:ignore noalloc fatal protocol-error path; the run is already over
		return
	}
	e.pend.farAcks--
	if e.pend.farAcks == 0 && !e.pend.farData {
		d.finishFar(m.Line, e)
	}
}

//rowlint:noalloc
func (d *Directory) farData(m *Msg) {
	e, ok := d.lines[m.Line]
	if !ok || !e.blocked || !e.pend.far || !e.pend.farData {
		d.fail(m, e, "stray Data: no far recall awaiting owner data") //rowlint:ignore noalloc fatal protocol-error path; the run is already over
		return
	}
	e.pend.farData = false
	d.l3.Insert(m.Line, 0) // the recalled dirty line lands in the L3
	if e.pend.farAcks == 0 {
		d.finishFar(m.Line, e)
	}
}

// finishFar applies the RMW at the bank and releases the line.
//
//rowlint:noalloc
func (d *Directory) finishFar(line uint64, e *dirEntry) {
	req := e.pend.requestor
	d.net.SendAfter(d.pool.New(Msg{
		Type: MsgFarDone, Line: line, Src: d.nodeID, Dst: req,
		Requestor: req,
	}), d.dataDelay(line)+1)
	e.state = dirI
	e.owner = -1
	e.sharers = 0
	e.blocked = false
	e.pend = pending{}
	for len(e.waiting) > 0 && !e.blocked {
		next := e.waiting[0]
		e.waiting = e.waiting[1:]
		d.serve(next, e)
		d.pool.Put(next) // nothing retains a served request anymore
	}
}

// dataDelay models the bank-side access needed to source the line:
// L3 hit time, or DRAM on an L3 miss (the line is then installed).
//
//rowlint:noalloc
func (d *Directory) dataDelay(line uint64) uint64 {
	if d.l3.Lookup(line, true) != nil {
		d.Stats.L3Hits.Inc()
		return uint64(d.l3HitCycles)
	}
	d.Stats.L3Misses.Inc()
	d.l3.Insert(line, 0)
	return uint64(d.l3HitCycles + d.dramCycles)
}

//rowlint:noalloc
func (d *Directory) serveGetS(m *Msg, e *dirEntry) {
	req := m.Requestor
	switch e.state {
	case dirI:
		// Grant exclusive-clean: the common private-data fast path.
		d.net.SendAfter(d.pool.New(Msg{
			Type: MsgData, Line: m.Line, Src: d.nodeID, Dst: req,
			Requestor: req, Grant: GrantE,
		}), d.dataDelay(m.Line))
	case dirS:
		d.net.SendAfter(d.pool.New(Msg{
			Type: MsgData, Line: m.Line, Src: d.nodeID, Dst: req,
			Requestor: req, Grant: GrantS,
		}), d.dataDelay(m.Line))
	case dirM:
		d.Stats.Forwards.Inc()
		d.net.Send(d.pool.New(Msg{
			Type: MsgFwdGetS, Line: m.Line, Src: d.nodeID, Dst: e.owner,
			Requestor: req,
		}))
	}
	e.blocked = true
	e.pend = pending{requestor: req, isWrite: false}
}

//rowlint:noalloc
func (d *Directory) serveGetX(m *Msg, e *dirEntry) {
	req := m.Requestor
	switch e.state {
	case dirI:
		d.net.SendAfter(d.pool.New(Msg{
			Type: MsgData, Line: m.Line, Src: d.nodeID, Dst: req,
			Requestor: req, Grant: GrantM,
		}), d.dataDelay(m.Line))
	case dirS:
		acks := 0
		for c := 0; c < 64; c++ {
			if e.sharers&(1<<uint(c)) == 0 || c == req {
				continue
			}
			acks++
			d.Stats.Invalidates.Inc()
			d.net.Send(d.pool.New(Msg{
				Type: MsgInv, Line: m.Line, Src: d.nodeID, Dst: c,
				Requestor: req,
			}))
		}
		d.net.SendAfter(d.pool.New(Msg{
			Type: MsgData, Line: m.Line, Src: d.nodeID, Dst: req,
			Requestor: req, Grant: GrantM, AckCount: acks,
		}), d.dataDelay(m.Line))
	case dirM:
		if e.owner == req {
			// The recorded owner re-requests: its copy was silently
			// evicted (clean E eviction). Re-supply from the L3.
			d.net.SendAfter(d.pool.New(Msg{
				Type: MsgData, Line: m.Line, Src: d.nodeID, Dst: req,
				Requestor: req, Grant: GrantM,
			}), d.dataDelay(m.Line))
		} else {
			d.Stats.Forwards.Inc()
			d.net.Send(d.pool.New(Msg{
				Type: MsgFwdGetX, Line: m.Line, Src: d.nodeID, Dst: e.owner,
				Requestor: req,
			}))
		}
	}
	e.blocked = true
	e.pend = pending{requestor: req, isWrite: true}
}

//rowlint:noalloc
func (d *Directory) handlePutX(m *Msg, e *dirEntry) {
	d.Stats.PutX.Inc()
	if e.state == dirM && e.owner == m.Src {
		e.state = dirI
		e.owner = -1
		e.sharers = 0
		d.l3.Insert(m.Line, 0)
	}
	// Otherwise stale (the line was forwarded away first): drop.
}

//rowlint:noalloc
func (d *Directory) handleUnblock(m *Msg) {
	e, ok := d.lines[m.Line]
	if !ok || !e.blocked {
		d.fail(m, e, "Unblock for a line with no transaction in flight") //rowlint:ignore noalloc fatal protocol-error path; the run is already over
		return
	}
	if m.Src != e.pend.requestor {
		//rowlint:ignore noalloc fatal protocol-error path; the run is already over
		d.fail(m, e, fmt.Sprintf("Unblock from core %d but pending requestor is %d", m.Src, e.pend.requestor))
		return
	}
	if m.Type == MsgUnblockX {
		e.state = dirM
		e.owner = m.Src
		e.sharers = 0
	} else {
		// Read transaction closed. A previous M owner has downgraded
		// to S; record both as sharers. An E grant is recorded as M so
		// the silent E->M upgrade stays coherent (FwdGetS/FwdGetX to
		// an E owner behave identically).
		switch {
		case e.state == dirM && e.owner >= 0:
			e.sharers = (1 << uint(e.owner)) | (1 << uint(m.Src))
			e.state = dirS
			e.owner = -1
		case m.Grant == GrantE:
			e.state = dirM
			e.owner = m.Src
			e.sharers = 0
		default:
			e.sharers |= 1 << uint(m.Src)
			e.state = dirS
		}
	}
	e.blocked = false
	e.pend = pending{}
	// Serve stalled requests in order until one blocks the line again.
	for len(e.waiting) > 0 && !e.blocked {
		next := e.waiting[0]
		e.waiting = e.waiting[1:]
		d.serve(next, e)
		d.pool.Put(next) // nothing retains a served request anymore
	}
}

// WarmOwned pre-installs a line as exclusively owned by a core (warm
// start: the owner's private cache must be warmed to match).
func (d *Directory) WarmOwned(line uint64, owner int) {
	e := d.entry(line)
	e.state = dirM
	e.owner = owner
	e.sharers = 0
	d.l3.Insert(line, 0)
}

// WarmL3 pre-installs a line in the L3 data array with no private
// copies (shared data warm start: the first requestor pays an L3 hit,
// not a DRAM access).
func (d *Directory) WarmL3(line uint64) {
	d.l3.Insert(line, 0)
}

// PendingWork reports whether the directory still has blocked lines or
// queued requests (used by the system's quiescence check).
func (d *Directory) PendingWork() bool {
	//rowlint:ignore maporder boolean OR over all entries; any visit order yields the same answer
	for _, e := range d.lines {
		if e.blocked || len(e.waiting) > 0 {
			return true
		}
	}
	return false
}

// RetainedMsgs counts the messages parked in blocked lines' waiting
// queues — the bank's share of the pool's outstanding population (the
// end-of-run conservation check sums this across components).
func (d *Directory) RetainedMsgs() int {
	n := 0
	//rowlint:ignore maporder integer sum over all entries; any visit order yields the same total
	for _, e := range d.lines {
		n += len(e.waiting)
	}
	return n
}

// L3 exposes the bank's data array (for stats).
func (d *Directory) L3() *sram.Array { return d.l3 }

// WaitingOn reports, for a line with a transaction in flight, which
// cores the bank is waiting on before the transaction can close: the
// owner whose data recall or forward is outstanding, the sharers whose
// invalidation acks are missing, or — when the protocol legwork is done
// and only the requestor's Unblock is pending — the requestor itself.
// ok is false when the line has no transaction in flight. The deadlock
// diagnoser uses this to walk the wait-for chain.
func (d *Directory) WaitingOn(line uint64) (desc string, cores []int, ok bool) {
	e, present := d.lines[line]
	if !present || !e.blocked {
		return "", nil, false
	}
	switch {
	case e.pend.farData:
		return fmt.Sprintf("far recall: awaiting dirty data from owner %d", e.owner),
			[]int{e.owner}, true
	case e.pend.far && e.pend.farAcks > 0:
		for c := 0; c < 64; c++ {
			if e.sharers&(1<<uint(c)) != 0 {
				cores = append(cores, c)
			}
		}
		return fmt.Sprintf("far recall: awaiting %d invalidation acks", e.pend.farAcks), cores, true
	case e.state == dirM && e.owner >= 0 && e.owner != e.pend.requestor:
		return fmt.Sprintf("forward to owner %d outstanding (requestor %d)", e.owner, e.pend.requestor),
			[]int{e.owner}, true
	default:
		return fmt.Sprintf("awaiting Unblock from requestor %d", e.pend.requestor),
			[]int{e.pend.requestor}, true
	}
}

// DebugBlocked describes every blocked line (deadlock diagnostics).
// The report is key-sorted so deadlock dumps are identical run to run.
func (d *Directory) DebugBlocked() []string {
	var out []string
	lines := make([]uint64, 0, len(d.lines))
	for line := range d.lines {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		e := d.lines[line]
		if !e.blocked && len(e.waiting) == 0 {
			continue
		}
		out = append(out, fmt.Sprintf(
			"bank%d line=%#x state=%d owner=%d blocked=%v pend={req=%d write=%v far=%v acks=%d data=%v} waiting=%d",
			d.bank, line, e.state, e.owner, e.blocked,
			e.pend.requestor, e.pend.isWrite, e.pend.far, e.pend.farAcks, e.pend.farData,
			len(e.waiting)))
	}
	return out
}
