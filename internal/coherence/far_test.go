package coherence

import "testing"

func getFar(from int) *Msg {
	return &Msg{Type: MsgGetFar, Line: lineA, Src: from, Dst: 32, Requestor: from}
}

func TestFarOnInvalidAnswersDirectly(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getFar(3))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFarDone || sent[0].Dst != 3 {
		t.Fatalf("expected FarDone to core 3, got %v", sent)
	}
	if d.PendingWork() {
		t.Fatal("uncontested far op left the line blocked")
	}
	if d.Stats.FarOps.Value() != 1 {
		t.Fatalf("far ops = %d", d.Stats.FarOps.Value())
	}
}

func TestFarInvalidatesSharers(t *testing.T) {
	d, net := newDirUnderTest()
	// Two sharers: cores 0 and 1.
	d.Handle(getS(0))
	net.take()
	d.Handle(unblock(0, GrantS))
	d.Handle(getS(1))
	net.take()
	d.Handle(unblock(1, GrantS))

	d.Handle(getFar(2))
	sent := net.take()
	invs := 0
	for _, m := range sent {
		if m.Type == MsgInv {
			invs++
			if m.Requestor != 32 {
				t.Fatalf("far Inv acks must return to the bank, got requestor %d", m.Requestor)
			}
		}
		if m.Type == MsgFarDone {
			t.Fatal("FarDone before the sharers acknowledged")
		}
	}
	if invs != 2 {
		t.Fatalf("%d invalidations, want 2", invs)
	}
	// Acks complete the operation.
	d.Handle(&Msg{Type: MsgInvAck, Line: lineA, Src: 0, Dst: 32})
	if len(net.take()) != 0 {
		t.Fatal("answered with one ack outstanding")
	}
	d.Handle(&Msg{Type: MsgInvAck, Line: lineA, Src: 1, Dst: 32})
	sent = net.take()
	if len(sent) != 1 || sent[0].Type != MsgFarDone || sent[0].Dst != 2 {
		t.Fatalf("expected FarDone after the final ack, got %v", sent)
	}
}

func TestFarRecallsOwner(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getX(0))
	net.take()
	d.Handle(unblockX(0))

	d.Handle(getFar(1))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetX || sent[0].Dst != 0 || sent[0].Requestor != 32 {
		t.Fatalf("expected a recall forward to the owner, got %v", sent)
	}
	// The owner's data return completes the op at the bank.
	d.Handle(&Msg{Type: MsgData, Line: lineA, Src: 0, Dst: 32, Grant: GrantM, FromPrivate: true})
	sent = net.take()
	if len(sent) != 1 || sent[0].Type != MsgFarDone || sent[0].Dst != 1 {
		t.Fatalf("expected FarDone after the recall, got %v", sent)
	}
	// The line now lives at the L3: a following GetS is served from
	// the bank, not forwarded.
	d.Handle(getS(2))
	sent = net.take()
	if len(sent) != 1 || sent[0].Type != MsgData || sent[0].Dst != 2 {
		t.Fatalf("line did not land at the bank: %v", sent)
	}
}

func TestFarSerializesWithOtherRequests(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getX(0))
	net.take()
	d.Handle(unblockX(0))
	// A far op recalls the owner; a GetX arrives mid-transaction.
	d.Handle(getFar(1))
	net.take()
	d.Handle(getX(2))
	if len(net.take()) != 0 {
		t.Fatal("request served while a far op was in flight")
	}
	// Completing the far op releases the queued GetX (state I now, so
	// it is granted straight from the bank).
	d.Handle(&Msg{Type: MsgData, Line: lineA, Src: 0, Dst: 32, Grant: GrantM, FromPrivate: true})
	sent := net.take()
	if len(sent) != 2 {
		t.Fatalf("expected FarDone + queued grant, got %v", sent)
	}
	if sent[0].Type != MsgFarDone || sent[1].Type != MsgData || sent[1].Dst != 2 {
		t.Fatalf("wrong release order: %v", sent)
	}
}

func TestBackToBackFarOpsSerialize(t *testing.T) {
	d, net := newDirUnderTest()
	// Put the line at a private owner so far ops must block.
	d.Handle(getX(0))
	net.take()
	d.Handle(unblockX(0))
	d.Handle(getFar(1))
	net.take()
	d.Handle(getFar(2)) // queued behind the first recall
	if len(net.take()) != 0 {
		t.Fatal("second far op served during the first's recall")
	}
	d.Handle(&Msg{Type: MsgData, Line: lineA, Src: 0, Dst: 32, Grant: GrantM, FromPrivate: true})
	sent := net.take()
	// First FarDone, then the queued far op runs against state I and
	// answers immediately.
	if len(sent) != 2 || sent[0].Type != MsgFarDone || sent[0].Dst != 1 ||
		sent[1].Type != MsgFarDone || sent[1].Dst != 2 {
		t.Fatalf("far ops did not serialize cleanly: %v", sent)
	}
}
