package coherence

// MsgPool recycles Msg values so the protocol's steady state allocates
// nothing: every send draws from the free list and every consumer
// returns the message once it is fully processed. A pool is owned by
// exactly one System and is NOT safe for concurrent use — sharing one
// across concurrently running systems would leak protocol state between
// independent simulations (and race). Components tolerate a nil pool
// (direct component tests, micro-benchmarks): Get falls back to the
// allocator and Put drops the message for the GC.
//
// Ownership discipline: the sender builds the message (Get or New) and
// hands it to the network; the final consumer releases it (Put) after
// the message can no longer be referenced. Components that retain a
// message across cycles — the directory's per-line waiting queue, the
// private cache's stalled-external slot — release it when the retained
// reference is served. A message must never be Put twice, and never
// used after Put.
//
//rowlint:owner sim-global
type MsgPool struct {
	free []*Msg

	// gets/puts count every hand-out and release, pool-backed or not,
	// so Outstanding is exactly the number of live messages whose
	// ownership some component still holds. The end-of-run conservation
	// check (sim.System) asserts it against the in-flight and retained
	// populations; a mismatch means a consume-or-retain bug.
	gets, puts int64
}

// Get returns a zeroed message, recycling a released one when possible.
//
//rowlint:seam reduction message allocation: the pool is a shared service every domain draws from; the parallel plan replicates free lists per shard and merges the gets/puts counters at epoch boundaries
func (p *MsgPool) Get() *Msg {
	if p == nil {
		return new(Msg)
	}
	p.gets++
	if len(p.free) == 0 {
		return new(Msg)
	}
	m := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return m
}

// New returns a pooled message initialized to v (the literal-style
// construction the protocol agents use: pool.New(Msg{Type: ..., ...})).
//
//rowlint:seam reduction message allocation: same shared-pool seam as Get
func (p *MsgPool) New(v Msg) *Msg {
	m := p.Get()
	*m = v
	return m
}

// Put releases a fully consumed message back to the free list. The
// message is zeroed immediately so stale protocol state can never leak
// into a later transaction through reuse.
//
//rowlint:seam reduction message release: same shared-pool seam as Get
func (p *MsgPool) Put(m *Msg) {
	if p == nil || m == nil {
		return
	}
	p.puts++
	*m = Msg{}
	p.free = append(p.free, m)
}

// Outstanding reports the number of messages handed out and not yet
// released (gets minus puts). At any quiescent point this must equal
// the population with a live owner: in flight in the network plus
// retained in stall/waiting structures. Anything above that has leaked.
func (p *MsgPool) Outstanding() int64 {
	if p == nil {
		return 0
	}
	return p.gets - p.puts
}

// Size reports the number of idle messages on the free list (tests).
func (p *MsgPool) Size() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
