package coherence

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the directory bank, its per-line entries and the message pool.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Directory{}, []string{
		"now", "lines", "l3", "Stats",
	}, map[string]string{
		"nodeID":      "construction-time identity",
		"bank":        "construction-time identity",
		"net":         "wiring; the mesh is snapshotted separately",
		"l3HitCycles": "construction-time latency constant",
		"dramCycles":  "construction-time latency constant",
		"pool":        "wiring; pool counters are snapshotted separately as PoolSnap",
		"sink":        "wiring; provably empty at checkpoint instants",
		"hook":        "model-checker interposer, never set in checkpointed runs",
	})

	snapcheck.Assert(t, dirEntry{}, []string{
		"state", "owner", "sharers", "blocked", "pend", "waiting",
	}, nil)

	snapcheck.Assert(t, pending{}, []string{
		"requestor", "isWrite", "far", "farAcks", "farData",
	}, nil)

	snapcheck.Assert(t, MsgPool{}, []string{
		"gets", "puts",
	}, map[string]string{
		"free": "free-list members are by definition unreferenced; only the counters define Outstanding",
	})
}
