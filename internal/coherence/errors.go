package coherence

import (
	"fmt"
	"strings"
)

// ProtocolError is a structured coherence-protocol (or core-invariant)
// violation. Every site that used to panic on an impossible message or
// queue state now raises one of these instead, so a protocol bug
// surfaces as a diagnosable, machine-readable error — with the cycle,
// the component, the line address and the transaction state — rather
// than a crash of the whole process.
//
// Like Msg, the error value travels: the raising component builds it
// and hands it to the sink, which owns it from then on.
//
//rowlint:owner message
type ProtocolError struct {
	// Cycle is the simulation cycle at which the violation was
	// detected (the raising component's local clock).
	Cycle uint64
	// Component names the raising agent: "directory bank 2",
	// "cache 5", "core 1" or "mesh".
	Component string
	// Line is the cacheline address involved, 0 when not line-specific.
	Line uint64
	// Op is the offending message or operation, when there is one.
	Op string
	// State describes the transaction/entry state at the violation
	// (directory entry, MSHR, ROB head — whatever the component knows).
	State string
	// Reason is the one-line diagnosis.
	Reason string
	// Trace holds recent network messages touching Line, attached by
	// the system before the error is returned (empty until then).
	Trace []string
}

// Error renders the full report.
func (e *ProtocolError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol error at cycle %d: %s: %s", e.Cycle, e.Component, e.Reason)
	if e.Op != "" {
		fmt.Fprintf(&b, " [op %s]", e.Op)
	}
	if e.Line != 0 {
		fmt.Fprintf(&b, " line=%#x", e.Line)
	}
	if e.State != "" {
		fmt.Fprintf(&b, " state={%s}", e.State)
	}
	if len(e.Trace) > 0 {
		b.WriteString("\nmessage trace (oldest first):\n  ")
		b.WriteString(strings.Join(e.Trace, "\n  "))
	}
	return b.String()
}

// ErrorSink collects the first protocol error raised by any component
// of one simulated system. The system checks it every cycle and turns
// a recorded error into the Run return value; later errors in the same
// (already doomed) cycle are counted but not kept.
//
//rowlint:owner sim-global
type ErrorSink struct {
	err        *ProtocolError
	suppressed int
}

// Fail records the error; only the first one is kept.
//
//rowlint:seam reduction first-error latch: any domain may report its failure; the run is over once one does, so the race is benign and the parallel plan can merge sinks at the failing epoch
func (s *ErrorSink) Fail(e *ProtocolError) {
	if s.err == nil {
		s.err = e
		return
	}
	s.suppressed++
}

// Err returns the recorded error, or nil.
func (s *ErrorSink) Err() *ProtocolError { return s.err }

// Suppressed returns how many further errors followed the first.
func (s *ErrorSink) Suppressed() int { return s.suppressed }

// Raise reports e to the sink. Components not wired into a system
// (nil sink, e.g. driven directly by a unit test) keep the historical
// fail-fast behaviour and panic with the structured error as payload.
//
//rowlint:seam reduction same first-error latch as ErrorSink.Fail
func Raise(s *ErrorSink, e *ProtocolError) {
	if s != nil {
		s.Fail(e)
		return
	}
	panic(e)
}
