package coherence

import (
	"sort"

	"rowsim/internal/sram"
)

// This file is the directory's half of the snapshot/restore interface
// the model checker (internal/mcheck) drives: the checker explores the
// protocol state space by DFS, capturing every component before a
// branch and rewinding it afterwards. Snapshots deep-copy retained
// messages by value — the MsgPool ownership discipline guarantees a
// retained *Msg has exactly one owner, so restoring fresh copies can
// never alias a live message.

// PoolSnap captures the MsgPool's accounting counters. The free list
// itself is not part of protocol state (its members are, by
// definition, unreferenced), so only gets/puts — which define
// Outstanding, the conserved quantity — are rewound.
type PoolSnap struct {
	Gets, Puts int64
}

// Snapshot captures the pool counters.
func (p *MsgPool) Snapshot() PoolSnap {
	if p == nil {
		return PoolSnap{}
	}
	return PoolSnap{Gets: p.gets, Puts: p.puts}
}

// Restore rewinds the accounting counters. Messages handed out since
// the snapshot die with the component states that referenced them;
// messages on the free list stay recyclable (they are zeroed and
// unreferenced, so reuse is safe in either history).
func (p *MsgPool) Restore(s PoolSnap) {
	if p == nil {
		return
	}
	p.gets = s.Gets
	p.puts = s.Puts
}

// DirPending mirrors the directory's in-flight transaction context
// with exported fields.
type DirPending struct {
	Requestor int
	IsWrite   bool
	Far       bool
	FarAcks   int
	FarData   bool
}

// DirEntrySnap is the exported view of one directory entry. The model
// checker also uses it (via EntryView) as the canonical encoding of a
// bank's per-line state.
type DirEntrySnap struct {
	State   uint8
	Owner   int
	Sharers uint64
	Blocked bool
	Pend    DirPending
	Waiting []Msg // queued requests, FIFO, copied by value
}

// DirSnap is a deep copy of one bank's mutable protocol state. Stats
// ride along so a checkpointed run restores to byte-identical counters
// (they never feed back into protocol decisions, but they do reach the
// final Result).
type DirSnap struct {
	Now   uint64
	Lines map[uint64]DirEntrySnap
	L3    sram.Snap
	Stats DirStats
}

func (e *dirEntry) snap() DirEntrySnap {
	s := DirEntrySnap{
		State:   uint8(e.state),
		Owner:   e.owner,
		Sharers: e.sharers,
		Blocked: e.blocked,
		Pend: DirPending{
			Requestor: e.pend.requestor,
			IsWrite:   e.pend.isWrite,
			Far:       e.pend.far,
			FarAcks:   e.pend.farAcks,
			FarData:   e.pend.farData,
		},
	}
	for _, m := range e.waiting {
		s.Waiting = append(s.Waiting, *m)
	}
	return s
}

// Snapshot captures the bank's directory entries and L3 contents. It
// returns a pointer so the snapshot is handed around by reference
// rather than bulk-copied.
func (d *Directory) Snapshot() *DirSnap {
	s := &DirSnap{Now: d.now, Lines: make(map[uint64]DirEntrySnap, len(d.lines)), L3: d.l3.Snapshot(), Stats: d.Stats}
	//rowlint:ignore maporder building a map from a map; per-key copies are order-independent
	for line, e := range d.lines {
		s.Lines[line] = e.snap()
	}
	return s
}

// Restore rewinds the bank to a previously captured DirSnap. Waiting
// messages are reconstituted as fresh allocations (never drawn from
// the pool: the pool counters are restored separately and a pool Get
// here would double-count the retained population).
func (d *Directory) Restore(s *DirSnap) {
	d.now = s.Now
	d.Stats = s.Stats
	d.lines = make(map[uint64]*dirEntry, len(s.Lines))
	//rowlint:ignore maporder rebuilding a map from a map; per-key copies are order-independent
	for line, es := range s.Lines {
		e := &dirEntry{
			state:   dirState(es.State),
			owner:   es.Owner,
			sharers: es.Sharers,
			blocked: es.Blocked,
			pend: pending{
				requestor: es.Pend.Requestor,
				isWrite:   es.Pend.IsWrite,
				far:       es.Pend.Far,
				farAcks:   es.Pend.FarAcks,
				farData:   es.Pend.FarData,
			},
		}
		for i := range es.Waiting {
			m := new(Msg)
			*m = es.Waiting[i]
			e.waiting = append(e.waiting, m)
		}
		d.lines[line] = e
	}
	d.l3.Restore(s.L3)
}

// EntryView returns the exported view of one line's directory entry,
// with the waiting queue copied by value; ok is false when the bank
// has never seen the line (equivalent to an unblocked dirI entry).
// The model checker encodes bank state from this view.
func (d *Directory) EntryView(line uint64) (DirEntrySnap, bool) {
	e, ok := d.lines[line]
	if !ok {
		return DirEntrySnap{Owner: -1}, false
	}
	return e.snap(), true
}

// LinesKnown returns the line addresses the bank has entries for, in
// ascending order (deterministic iteration for checkers).
func (d *Directory) LinesKnown() []uint64 {
	out := make([]uint64, 0, len(d.lines))
	for line := range d.lines {
		out = append(out, line)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
