package coherence

import (
	"strings"
	"testing"
)

// fakeNet records sent messages with their extra (source-side) delay.
type fakeNet struct {
	sent  []*Msg
	extra []uint64
}

func (f *fakeNet) Send(m *Msg) { f.SendAfter(m, 0) }
func (f *fakeNet) SendAfter(m *Msg, extra uint64) {
	f.sent = append(f.sent, m)
	f.extra = append(f.extra, extra)
}

func (f *fakeNet) take() []*Msg {
	s := f.sent
	f.sent = nil
	f.extra = nil
	return s
}

func newDirUnderTest() (*Directory, *fakeNet) {
	net := &fakeNet{}
	// node 32, bank 0; small L3 (64 KiB, 16 ways); 35-cycle L3,
	// 160-cycle DRAM.
	d := NewDirectory(32, 0, net, 64<<10, 16, 64, 35, 160)
	return d, net
}

const lineA = uint64(0x1000)

func getS(from int) *Msg {
	return &Msg{Type: MsgGetS, Line: lineA, Src: from, Dst: 32, Requestor: from}
}
func getX(from int) *Msg {
	return &Msg{Type: MsgGetX, Line: lineA, Src: from, Dst: 32, Requestor: from}
}
func unblock(from int, grant GrantState) *Msg {
	return &Msg{Type: MsgUnblock, Line: lineA, Src: from, Dst: 32, Requestor: from, Grant: grant}
}
func unblockX(from int) *Msg {
	return &Msg{Type: MsgUnblockX, Line: lineA, Src: from, Dst: 32, Requestor: from}
}

func TestGetSOnInvalidGrantsExclusive(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getS(3))
	sent := net.take()
	if len(sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(sent))
	}
	m := sent[0]
	if m.Type != MsgData || m.Dst != 3 || m.Grant != GrantE || m.FromPrivate {
		t.Fatalf("unexpected response %v", m)
	}
}

func TestColdMissPaysDRAM(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getS(0))
	if got := net.extra[0]; got != 35+160 {
		t.Fatalf("cold fill delay = %d, want 195", got)
	}
	d.Handle(unblock(0, GrantE))
	// The line is now in L3: a later fill (after the owner writes
	// back) pays only the L3 hit.
	d.Handle(&Msg{Type: MsgPutX, Line: lineA, Src: 0, Dst: 32})
	net.take()
	d.Handle(getS(1))
	if got := net.extra[len(net.extra)-1]; got != 35 {
		t.Fatalf("warm fill delay = %d, want 35", got)
	}
}

func TestExclusiveOwnerGetsForwardedRead(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getS(0))
	net.take()
	d.Handle(unblock(0, GrantE)) // dir records owner 0 (E treated as M)
	d.Handle(getS(1))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetS || sent[0].Dst != 0 || sent[0].Requestor != 1 {
		t.Fatalf("expected FwdGetS to owner 0 for requestor 1, got %v", sent)
	}
	// After the read transaction closes, both cores are sharers: a
	// write by core 2 invalidates both.
	d.Handle(unblock(1, GrantS))
	d.Handle(getX(2))
	sent = net.take()
	invs := 0
	var data *Msg
	for _, m := range sent {
		switch m.Type {
		case MsgInv:
			invs++
			if m.Dst != 0 && m.Dst != 1 {
				t.Fatalf("Inv to unexpected core %d", m.Dst)
			}
			if m.Requestor != 2 {
				t.Fatalf("Inv requestor = %d, want 2", m.Requestor)
			}
		case MsgData:
			data = m
		}
	}
	if invs != 2 {
		t.Fatalf("%d invalidations, want 2", invs)
	}
	if data == nil || data.AckCount != 2 || data.Grant != GrantM {
		t.Fatalf("bad data response %v", data)
	}
}

func TestWriteWriteForward(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getX(0))
	net.take()
	d.Handle(unblockX(0))
	d.Handle(getX(1))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetX || sent[0].Dst != 0 || sent[0].Requestor != 1 {
		t.Fatalf("expected FwdGetX to owner, got %v", sent)
	}
}

func TestBlockingSerializesRequests(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getX(0))
	net.take()
	// Second and third requests arrive while blocked: queued, nothing sent.
	d.Handle(getX(1))
	d.Handle(getX(2))
	if len(net.take()) != 0 {
		t.Fatal("blocked directory must not respond")
	}
	if d.Stats.Stalled.Value() != 2 {
		t.Fatalf("stalled = %d, want 2", d.Stats.Stalled.Value())
	}
	// Closing the first transaction serves exactly the next one.
	d.Handle(unblockX(0))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetX || sent[0].Dst != 0 || sent[0].Requestor != 1 {
		t.Fatalf("expected queued GetX(1) served via FwdGetX, got %v", sent)
	}
	// Still blocked for core 2.
	d.Handle(unblockX(1))
	sent = net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetX || sent[0].Dst != 1 || sent[0].Requestor != 2 {
		t.Fatalf("expected queued GetX(2) served next, got %v", sent)
	}
}

func TestStalePutXDropped(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getX(0))
	net.take()
	d.Handle(unblockX(0))
	// Ownership moves to core 1.
	d.Handle(getX(1))
	net.take()
	d.Handle(unblockX(1))
	// Core 0's late writeback must not clobber core 1's ownership.
	d.Handle(&Msg{Type: MsgPutX, Line: lineA, Src: 0, Dst: 32})
	d.Handle(getS(2))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetS || sent[0].Dst != 1 {
		t.Fatalf("stale PutX corrupted ownership: %v", sent)
	}
}

func TestOwnerReRequestAfterSilentEviction(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getS(0))
	net.take()
	d.Handle(unblock(0, GrantE))
	// Core 0 silently dropped its E copy and asks again.
	d.Handle(getX(0))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgData || sent[0].Dst != 0 || sent[0].Grant != GrantM {
		t.Fatalf("expected a data re-grant, got %v", sent)
	}
	if sent[0].AckCount != 0 {
		t.Fatalf("re-grant acks = %d, want 0", sent[0].AckCount)
	}
}

func TestPutXWhileBlockedIsQueuedThenDropped(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getX(0))
	net.take()
	d.Handle(unblockX(0))
	// Core 1 requests; dir forwards to core 0 and blocks.
	d.Handle(getX(1))
	net.take()
	// Core 0's eviction writeback races with the forward: queued.
	d.Handle(&Msg{Type: MsgPutX, Line: lineA, Src: 0, Dst: 32})
	d.Handle(unblockX(1))
	// After unblocking, the stale PutX is processed and dropped;
	// core 1 must remain the owner.
	d.Handle(getS(2))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetS || sent[0].Dst != 1 {
		t.Fatalf("queued stale PutX corrupted state: %v", sent)
	}
}

func TestPendingWork(t *testing.T) {
	d, _ := newDirUnderTest()
	if d.PendingWork() {
		t.Fatal("fresh directory has pending work")
	}
	d.Handle(getS(0))
	if !d.PendingWork() {
		t.Fatal("blocked directory must report pending work")
	}
	d.Handle(unblock(0, GrantE))
	if d.PendingWork() {
		t.Fatal("closed transaction still pending")
	}
}

func TestWarmOwned(t *testing.T) {
	d, net := newDirUnderTest()
	d.WarmOwned(lineA, 5)
	d.Handle(getS(1))
	sent := net.take()
	if len(sent) != 1 || sent[0].Type != MsgFwdGetS || sent[0].Dst != 5 {
		t.Fatalf("warm ownership not honoured: %v", sent)
	}
}

func TestWarmL3(t *testing.T) {
	d, net := newDirUnderTest()
	d.WarmL3(lineA)
	d.Handle(getS(0))
	if got := net.extra[0]; got != 35 {
		t.Fatalf("warm L3 fill delay = %d, want 35", got)
	}
}

func TestStatsCounting(t *testing.T) {
	d, net := newDirUnderTest()
	d.Handle(getS(0))
	net.take()
	d.Handle(unblock(0, GrantE))
	d.Handle(getX(1))
	net.take()
	d.Handle(unblockX(1))
	if d.Stats.GetS.Value() != 1 || d.Stats.GetX.Value() != 1 {
		t.Fatalf("GetS/GetX = %d/%d, want 1/1", d.Stats.GetS.Value(), d.Stats.GetX.Value())
	}
	if d.Stats.Forwards.Value() != 1 {
		t.Fatalf("forwards = %d, want 1", d.Stats.Forwards.Value())
	}
}

// Near-miss scenarios: each case drives the directory to the edge of a
// state the model checker (internal/mcheck) proved reachable, where one
// wrong transition would corrupt the protocol, and pins the correct
// behaviour. The steps closure plays the scenario; check inspects the
// tail of the message stream (and the error sink, where the correct
// behaviour IS the diagnostic).
func TestNearMissScenarios(t *testing.T) {
	cases := []struct {
		name  string
		steps func(d *Directory, net *fakeNet)
		check func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink)
	}{
		{
			// A read arriving during another core's write transaction
			// must wait for the UnblockX, then be forwarded to the new
			// owner — serving it early would hand out data the writer
			// is about to clobber.
			name: "gets-while-blocked-queued",
			steps: func(d *Directory, net *fakeNet) {
				d.Handle(getX(0))
				net.take()
				d.Handle(getS(1))
				if len(net.take()) != 0 {
					t.Fatal("GetS served during a blocked write transaction")
				}
				d.Handle(unblockX(0))
			},
			check: func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink) {
				if len(sent) != 1 || sent[0].Type != MsgFwdGetS || sent[0].Dst != 0 || sent[0].Requestor != 1 {
					t.Fatalf("queued GetS not forwarded to the new owner: %v", sent)
				}
			},
		},
		{
			// The recorded owner re-requesting exclusively after a
			// silent clean eviction must be re-supplied from the L3 —
			// forwarding to itself would deadlock the transaction.
			name: "getx-from-owner-resupplied",
			steps: func(d *Directory, net *fakeNet) {
				d.Handle(getX(2))
				net.take()
				d.Handle(unblockX(2))
				d.Handle(getX(2))
			},
			check: func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink) {
				if len(sent) != 1 || sent[0].Type != MsgData || sent[0].Dst != 2 || sent[0].Grant != GrantM {
					t.Fatalf("owner re-request not re-supplied: %v", sent)
				}
			},
		},
		{
			// A sharer upgrading must invalidate every OTHER sharer and
			// never itself; the ack count must match the Inv fan-out.
			name: "upgrade-skips-requestor",
			steps: func(d *Directory, net *fakeNet) {
				d.Handle(getS(0))
				net.take()
				d.Handle(unblock(0, GrantS))
				d.Handle(getS(1))
				net.take()
				d.Handle(unblock(1, GrantS))
				d.Handle(getX(1))
			},
			check: func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink) {
				var invs, data []*Msg
				for _, m := range sent {
					switch m.Type {
					case MsgInv:
						invs = append(invs, m)
					case MsgData:
						data = append(data, m)
					}
				}
				if len(invs) != 1 || invs[0].Dst != 0 {
					t.Fatalf("upgrade invalidations wrong: %v", sent)
				}
				if len(data) != 1 || data[0].AckCount != 1 {
					t.Fatalf("upgrade grant acks wrong: %v", sent)
				}
			},
		},
		{
			// A writeback from a core that is no longer the owner must
			// be dropped without touching the entry (the line moved on
			// while the PutX was in flight).
			name: "stale-putx-ignored-in-shared",
			steps: func(d *Directory, net *fakeNet) {
				d.Handle(getX(0))
				net.take()
				d.Handle(unblockX(0))
				d.Handle(getS(1))
				net.take()
				d.Handle(unblock(1, GrantS)) // M owner downgraded: dirS {0,1}
				d.Handle(&Msg{Type: MsgPutX, Line: lineA, Src: 0, Dst: 32})
				d.Handle(getS(2))
			},
			check: func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink) {
				if len(sent) != 1 || sent[0].Type != MsgData || sent[0].Grant != GrantS {
					t.Fatalf("stale PutX in dirS corrupted the entry: %v", sent)
				}
			},
		},
		{
			// An Unblock from a core that is not the pending requestor
			// is a protocol violation and must be diagnosed, not
			// absorbed into the wrong transaction.
			name: "unblock-from-wrong-core-diagnosed",
			steps: func(d *Directory, net *fakeNet) {
				d.Handle(getX(0))
				net.take()
				d.Handle(unblockX(3))
			},
			check: func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink) {
				e := sink.Err()
				if e == nil {
					t.Fatal("wrong-core Unblock accepted silently")
				}
				if !strings.Contains(e.Reason, "pending requestor") {
					t.Fatalf("unexpected diagnosis: %v", e)
				}
			},
		},
		{
			// An Unblock with no transaction in flight is equally fatal.
			name: "unblock-without-transaction-diagnosed",
			steps: func(d *Directory, net *fakeNet) {
				d.Handle(unblockX(0))
			},
			check: func(t *testing.T, d *Directory, sent []*Msg, sink *ErrorSink) {
				if sink.Err() == nil {
					t.Fatal("stray Unblock accepted silently")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, net := newDirUnderTest()
			sink := &ErrorSink{}
			d.SetErrorSink(sink)
			tc.steps(d, net)
			tc.check(t, d, net.take(), sink)
		})
	}
}
