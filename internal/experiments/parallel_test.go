package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"rowsim/internal/lifecycle"
	"rowsim/internal/sim"
)

// TestForEachCoversAllIndicesBounded checks the worker pool's two
// contracts: every index in [0,n) is visited exactly once, and no more
// than jobs workers run concurrently.
func TestForEachCoversAllIndicesBounded(t *testing.T) {
	const n, jobs = 97, 4
	var mu sync.Mutex
	seen := make(map[int]int)
	var inFlight, maxInFlight int64
	ForEach(jobs, n, func(i int) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			prev := atomic.LoadInt64(&maxInFlight)
			if cur <= prev || atomic.CompareAndSwapInt64(&maxInFlight, prev, cur) {
				break
			}
		}
		mu.Lock()
		seen[i]++
		mu.Unlock()
		atomic.AddInt64(&inFlight, -1)
	})
	if len(seen) != n {
		t.Fatalf("visited %d distinct indices, want %d", len(seen), n)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	if maxInFlight > jobs {
		t.Fatalf("observed %d concurrent calls, limit %d", maxInFlight, jobs)
	}
}

func parallelTestOptions() Options {
	return Options{Cores: 4, Instrs: 1200, Seed: 1, Workloads: []string{"sps", "canneal"}}
}

// TestFigureOutputIdenticalForAnyJobs is the tentpole determinism
// guarantee: the rendered figure tables must be byte-identical whether
// the underlying runs execute sequentially or fanned across a worker
// pool. The parallel phase only warms the memo; the table pass always
// reads it back in sweep order.
func TestFigureOutputIdenticalForAnyJobs(t *testing.T) {
	figures := []struct {
		name string
		run  func(r *Runner) fmt.Stringer
	}{
		{"Fig1", func(r *Runner) fmt.Stringer { return Fig1(r) }},
		{"Fig9", func(r *Runner) fmt.Stringer { return Fig9(r) }},
		{"Fig11", func(r *Runner) fmt.Stringer { return Fig11(r) }},
	}
	jobCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, fig := range figures {
		var want string
		for i, jobs := range jobCounts {
			r := NewRunner(parallelTestOptions())
			r.SetJobs(jobs)
			got := fig.run(r).String()
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("%s with jobs=%d differs from jobs=%d output:\n%s\n--- vs ---\n%s",
					fig.name, jobs, jobCounts[0], got, want)
			}
		}
	}
}

// TestWarmFailureDeferredToSequentialPass: a failing cell must not
// crash the parallel warm phase; the sequential pass reports it with
// the exact error a jobs=1 run would produce.
func TestWarmFailureDeferredToSequentialPass(t *testing.T) {
	r := NewRunner(parallelTestOptions())
	r.SetJobs(4)
	// An unknown workload fails every run of its cell; the warm phase
	// must swallow that and leave the good cells warmed.
	r.Warm(Cross([]string{"sps", "no-such-workload"}, VarEager, VarLazy))
	if _, err := r.Run("sps", VarEager); err != nil {
		t.Fatalf("good cell failed after warm: %v", err)
	}
	_, errPar := r.Run("no-such-workload", VarEager)
	if errPar == nil {
		t.Fatal("bad cell unexpectedly succeeded")
	}
	seq := NewRunner(parallelTestOptions())
	_, errSeq := seq.Run("no-such-workload", VarEager)
	if errSeq == nil || errPar.Error() != errSeq.Error() {
		t.Fatalf("parallel-warm error diverges from sequential error:\npar: %v\nseq: %v", errPar, errSeq)
	}
}

// TestParallelSweepKillResume runs the supervised-sweep recovery story
// under a 4-worker pool: a journaled parallel sweep is "killed" (the
// journal torn mid-record, as SIGKILL leaves it), and the resumed
// parallel sweep must execute exactly the specs the journal does not
// show complete, with a final aggregate identical to an uninterrupted
// run. Journal records land in completion order — resume must not care.
func TestParallelSweepKillResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	const nspecs = 12
	specs := make([]string, nspecs)
	for i := range specs {
		specs[i] = fmt.Sprintf("spec-%02d", i)
	}
	runSpec := func(key string) sim.Result {
		return sim.Result{Cycles: uint64(1000 + len(key)*7 + int(key[len(key)-1])), Committed: uint64(len(key))}
	}

	// Phase 1: a 4-worker sweep of the first 8 specs, then tear the
	// journal inside the last appended record.
	j, err := lifecycle.Create(path, lifecycle.Record{Tool: "par-sweep"})
	if err != nil {
		t.Fatal(err)
	}
	sup := lifecycle.New(lifecycle.Config{Journal: j})
	ForEach(4, 8, func(i int) {
		key := specs[i]
		out := sup.Do(context.Background(), lifecycle.Job{Key: key, Seed: 1}, func(context.Context) (sim.Result, error) {
			return runSpec(key), nil
		})
		if out.Status != lifecycle.StatusOK {
			t.Errorf("setup run %s: %+v", key, out)
		}
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-20); err != nil { // cut into the last record
		t.Fatal(err)
	}

	// Phase 2: resume with 4 workers. The torn record's spec plus the
	// four never-run specs must execute; everything else must come from
	// the journal.
	j2, snap, err := lifecycle.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	completedBefore := 0
	var missing []string
	for _, key := range specs {
		if _, ok := snap.Completed(key); ok {
			completedBefore++
		} else {
			missing = append(missing, key)
		}
	}
	if completedBefore != 7 {
		t.Fatalf("journal shows %d complete specs after tear, want 7", completedBefore)
	}
	sup2 := lifecycle.New(lifecycle.Config{Journal: j2})
	var mu sync.Mutex
	var executed []string
	final := make(map[string]sim.Result)
	for _, key := range specs {
		if rec, ok := snap.Completed(key); ok {
			final[key] = *rec.Result
		}
	}
	ForEach(4, len(missing), func(i int) {
		key := missing[i]
		out := sup2.Do(context.Background(), lifecycle.Job{Key: key, Seed: 1}, func(context.Context) (sim.Result, error) {
			mu.Lock()
			executed = append(executed, key)
			mu.Unlock()
			return runSpec(key), nil
		})
		if out.Status != lifecycle.StatusOK {
			t.Errorf("resumed run %s: %+v", key, out)
		}
		mu.Lock()
		final[key] = out.Result
		mu.Unlock()
	})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	sort.Strings(executed)
	if fmt.Sprint(executed) != fmt.Sprint(missing) {
		t.Fatalf("resume executed %v, want exactly the missing specs %v", executed, missing)
	}
	for _, key := range specs {
		if final[key] != runSpec(key) {
			t.Fatalf("resumed aggregate diverges at %s: %+v", key, final[key])
		}
	}
}
