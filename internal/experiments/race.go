package experiments

import (
	"fmt"

	"rowsim/internal/config"
	"rowsim/internal/stats"
)

// Fig8Race quantifies the race of Figure 8: contended invalidations
// often reach a core after its atomic has already unlocked, so each
// successively wider detection window (EW -> RW -> RW+Dir) observes a
// larger fraction of the truly contended atomics. The policy is held
// at eager for every run; only the detector changes.
func Fig8Race(r *Runner) *stats.Table {
	t := &stats.Table{
		Title:   "Fig. 8 evidence — fraction of atomics detected contended, by detection window (eager execution)",
		Headers: []string{"workload", "EW", "RW", "RW+Dir"},
	}
	mk := func(base Variant, name string) Variant {
		v := base
		v.Name = name
		return v
	}
	// Detection runs under the eager policy: build eager variants
	// with each detector (the detector only affects the statistics,
	// not the schedule, so cycles stay comparable).
	ew := mk(VarEager, "eager-detect-EW")
	ew.Detection = config.DetectEW
	rw := mk(VarEager, "eager-detect-RW")
	rw.Detection = config.DetectRW
	dir := mk(VarEager, "eager-detect-RW+Dir")
	dir.Detection = config.DetectRWDir

	var ews, rws, dirs []float64
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, ew).ContendedFrac
		w := r.MustRun(wl, rw).ContendedFrac
		d := r.MustRun(wl, dir).ContendedFrac
		ews = append(ews, e)
		rws = append(rws, w)
		dirs = append(dirs, d)
		t.AddRow(wl, stats.Pct(e), stats.Pct(w), stats.Pct(d))
	}
	t.AddRow("mean", stats.Pct(stats.ArithMean(ews)), stats.Pct(stats.ArithMean(rws)), stats.Pct(stats.ArithMean(dirs)))
	return t
}

// AblationAQSize sweeps the Atomic Queue depth: too few entries limit
// the number of in-flight atomics (dispatch stalls), while the
// paper's 16 entries are enough for every workload.
func AblationAQSize(r *Runner) *stats.Table {
	sizes := []int{4, 8, 16, 32}
	headers := []string{"workload"}
	for _, n := range sizes {
		headers = append(headers, fmt.Sprintf("AQ=%d", n))
	}
	t := &stats.Table{
		Title:   "Ablation — Atomic Queue depth under RoW (RW+Dir_U/D), normalized to eager",
		Headers: headers,
	}
	sums := make([][]float64, len(sizes))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		row := []string{wl}
		for i, n := range sizes {
			v := VarDirUD
			v.Name = fmt.Sprintf("RW+Dir_U/D(aq%d)", n)
			v.AQSize = n
			res := r.MustRun(wl, v)
			norm := Norm(res.Cycles, e.Cycles)
			sums[i] = append(sums[i], norm)
			row = append(row, stats.F(norm))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range sizes {
		row = append(row, stats.F(stats.GeoMean(sums[i])))
	}
	t.AddRow(row...)
	return t
}

// LockTails reports the lock-window tail (p99 cycles) under eager,
// lazy and RoW: the paper's core argument is that eager execution
// grows exactly this tail on contended lines.
func LockTails(r *Runner) *stats.Table {
	t := &stats.Table{
		Title:   "Lock-window tail — p99 lock-hold cycles",
		Headers: []string{"workload", "eager", "lazy", "RoW(Sat)"},
	}
	for _, wl := range r.opt.Workloads {
		t.AddRow(wl,
			stats.F1(r.MustRun(wl, VarEager).LockHoldP99),
			stats.F1(r.MustRun(wl, VarLazy).LockHoldP99),
			stats.F1(r.MustRun(wl, VarDirSat).LockHoldP99))
	}
	return t
}
