package experiments

import (
	"fmt"

	"rowsim/internal/config"
	"rowsim/internal/stats"
)

// AblationEntries evaluates the predictor-size trade-off Section IV-D
// discusses: with few entries, contended and non-contended atomics
// alias and the wrong policy is applied (a single shared entry
// degrades to roughly eager performance on average).
func AblationEntries(r *Runner) *stats.Table {
	sizes := []int{1, 4, 16, 64, 256}
	headers := []string{"workload"}
	for _, n := range sizes {
		headers = append(headers, fmt.Sprintf("%d-entries", n))
	}
	t := &stats.Table{
		Title:   "Ablation — RoW (RW+Dir_U/D) predictor table size, normalized to eager",
		Headers: headers,
	}
	warm := []Variant{VarEager}
	for _, n := range sizes {
		v := VarDirUD
		v.Name = fmt.Sprintf("RW+Dir_U/D(%de)", n)
		v.PredEntries = n
		warm = append(warm, v)
	}
	r.Warm(Cross(r.opt.Workloads, warm...))
	sums := make([][]float64, len(sizes))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		row := []string{wl}
		for i, n := range sizes {
			v := VarDirUD
			v.Name = fmt.Sprintf("RW+Dir_U/D(%de)", n)
			v.PredEntries = n
			res := r.MustRun(wl, v)
			norm := Norm(res.Cycles, e.Cycles)
			sums[i] = append(sums[i], norm)
			row = append(row, stats.F(norm))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range sizes {
		row = append(row, stats.F(stats.GeoMean(sums[i])))
	}
	t.AddRow(row...)
	return t
}

// AblationUpdate compares the counter-update rules: UpDown, Saturate
// on Contention, and the +2/-1 rule the paper evaluated and
// discarded.
func AblationUpdate(r *Runner) *stats.Table {
	kinds := []config.PredictorKind{config.PredUpDown, config.PredSaturate, config.PredTwoUpOneDown}
	headers := []string{"workload"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	t := &stats.Table{
		Title:   "Ablation — predictor update rule (RW+Dir), normalized to eager",
		Headers: headers,
	}
	warm := []Variant{VarEager}
	for _, k := range kinds {
		warm = append(warm, rowVariant("RW+Dir_"+k.String(), config.DetectRWDir, k, false))
	}
	r.Warm(Cross(r.opt.Workloads, warm...))
	sums := make([][]float64, len(kinds))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		row := []string{wl}
		for i, k := range kinds {
			v := rowVariant("RW+Dir_"+k.String(), config.DetectRWDir, k, false)
			res := r.MustRun(wl, v)
			norm := Norm(res.Cycles, e.Cycles)
			sums[i] = append(sums[i], norm)
			row = append(row, stats.F(norm))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range kinds {
		row = append(row, stats.F(stats.GeoMean(sums[i])))
	}
	t.AddRow(row...)
	return t
}
