package experiments

import (
	"fmt"

	"rowsim/internal/config"
	"rowsim/internal/stats"
	"rowsim/internal/workload"
)

// Fig1 reproduces Figure 1: normalized execution time of lazy
// execution relative to eager, per workload. Values above 1 mean
// eager wins (canneal side), below 1 mean lazy wins (pc side).
func Fig1(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, VarEager, VarLazy))
	t := &stats.Table{
		Title:   "Fig. 1 — Normalized execution time: lazy relative to eager (>1: eager wins)",
		Headers: []string{"workload", "eager-cycles", "lazy-cycles", "lazy/eager"},
	}
	var ratios []float64
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		l := r.MustRun(wl, VarLazy)
		ratio := Norm(l.Cycles, e.Cycles)
		ratios = append(ratios, ratio)
		t.AddRow(wl, fmt.Sprint(e.Cycles), fmt.Sprint(l.Cycles), stats.F(ratio))
	}
	t.AddRow("geomean", "", "", stats.F(stats.GeoMean(ratios)))
	return t
}

// Fig4 reproduces Figure 4: how many independent instructions exist
// around an atomic — older not-yet-executed instructions when an
// eager atomic issues, and younger already-executing instructions
// when a lazy atomic issues.
func Fig4(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, VarEager, VarLazy))
	t := &stats.Table{
		Title:   "Fig. 4 — Independent instructions around atomics",
		Headers: []string{"workload", "older-unexecuted@eager", "younger-started@lazy"},
	}
	var olds, youngs []float64
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		l := r.MustRun(wl, VarLazy)
		olds = append(olds, e.OlderUnexecAtEager)
		youngs = append(youngs, l.YoungerStartedAtLazy)
		t.AddRow(wl, stats.F1(e.OlderUnexecAtEager), stats.F1(l.YoungerStartedAtLazy))
	}
	t.AddRow("mean", stats.F1(stats.ArithMean(olds)), stats.F1(stats.ArithMean(youngs)))
	return t
}

// Fig5 reproduces Figure 5: atomic intensity (atomics per 10
// kilo-instructions) and the fraction of atomics that face contention
// under eager execution. Contention is measured with the full RW+Dir
// detector (the figure's definition counts any concurrent use or
// request of the line, which narrower windows under-report).
func Fig5(r *Runner) *stats.Table {
	t := &stats.Table{
		Title:   "Fig. 5 — Atomic intensity and contention (eager execution)",
		Headers: []string{"workload", "atomics/10k", "%contended"},
	}
	eagerDir := VarEager
	eagerDir.Name = "eager-detect-RW+Dir"
	eagerDir.Detection = config.DetectRWDir
	r.Warm(Cross(r.opt.Workloads, eagerDir))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, eagerDir)
		t.AddRow(wl, stats.F1(e.AtomicsPer10K), stats.Pct(e.ContendedFrac))
	}
	return t
}

// Fig6 reproduces Figure 6: the atomic latency breakdown — dispatch
// to issue, issue to lock, lock to unlock — under eager and lazy.
func Fig6(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, VarEager, VarLazy))
	t := &stats.Table{
		Title:   "Fig. 6 — Atomic latency breakdown (cycles): eager vs lazy",
		Headers: []string{"workload", "E:disp->issue", "E:issue->lock", "E:lock->unlock", "L:disp->issue", "L:issue->lock", "L:lock->unlock"},
	}
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		l := r.MustRun(wl, VarLazy)
		t.AddRow(wl,
			stats.F1(e.DispatchToIssue), stats.F1(e.IssueToLock), stats.F1(e.LockToUnlock),
			stats.F1(l.DispatchToIssue), stats.F1(l.IssueToLock), stats.F1(l.LockToUnlock))
	}
	return t
}

// Fig9Variants is the configuration set of Figure 9 (no forwarding).
var Fig9Variants = []Variant{VarLazy, VarEWUD, VarEWSat, VarRWUD, VarRWSat, VarDirUD, VarDirSat}

// Fig9 reproduces Figure 9: normalized execution time of the RoW
// variants (EW/RW/RW+Dir × UpDown/Saturate) against the eager and
// lazy baselines, forwarding disabled.
func Fig9(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, append([]Variant{VarEager}, Fig9Variants...)...))
	headers := []string{"workload", "eager"}
	for _, v := range Fig9Variants {
		headers = append(headers, v.Name)
	}
	t := &stats.Table{
		Title:   "Fig. 9 — Normalized execution time of RoW variants (no forwarding), relative to eager",
		Headers: headers,
	}
	sums := make([][]float64, len(Fig9Variants))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		row := []string{wl, "1.000"}
		for i, v := range Fig9Variants {
			res := r.MustRun(wl, v)
			n := Norm(res.Cycles, e.Cycles)
			sums[i] = append(sums[i], n)
			row = append(row, stats.F(n))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean", "1.000"}
	for i := range Fig9Variants {
		row = append(row, stats.F(stats.GeoMean(sums[i])))
	}
	t.AddRow(row...)
	return t
}

// Fig10Thresholds is the latency-threshold sweep of Figure 10.
// -2 encodes "infinite" (Dir detection disabled, pure RW).
var Fig10Thresholds = []int{0, 100, 400, 1000, 2000, -2}

// Fig10 reproduces Figure 10: sensitivity of RoW (RW+Dir, UpDown) to
// the fill-latency threshold of the directory detector.
func Fig10(r *Runner) *stats.Table {
	warm := []Variant{VarEager}
	for _, th := range Fig10Thresholds {
		v := VarDirUD
		v.Name = fmt.Sprintf("RW+Dir_U/D(th=%d)", th)
		v.Threshold = th
		warm = append(warm, v)
	}
	r.Warm(Cross(r.opt.Workloads, warm...))
	headers := []string{"workload"}
	for _, th := range Fig10Thresholds {
		if th == -2 {
			headers = append(headers, "inf")
		} else {
			headers = append(headers, fmt.Sprint(th))
		}
	}
	t := &stats.Table{
		Title:   "Fig. 10 — RW+Dir_U/D threshold sweep, normalized to eager",
		Headers: headers,
	}
	sums := make([][]float64, len(Fig10Thresholds))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		row := []string{wl}
		for i, th := range Fig10Thresholds {
			v := VarDirUD
			v.Name = fmt.Sprintf("RW+Dir_U/D(th=%d)", th)
			v.Threshold = th
			res := r.MustRun(wl, v)
			n := Norm(res.Cycles, e.Cycles)
			sums[i] = append(sums[i], n)
			row = append(row, stats.F(n))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range Fig10Thresholds {
		row = append(row, stats.F(stats.GeoMean(sums[i])))
	}
	t.AddRow(row...)
	return t
}

// Fig11 reproduces Figure 11: average L1D miss latency under eager,
// lazy and RoW with either predictor (RW+Dir).
func Fig11(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, VarEager, VarLazy, VarDirUD, VarDirSat))
	t := &stats.Table{
		Title:   "Fig. 11 — L1D miss latency (cycles)",
		Headers: []string{"workload", "eager", "lazy", "RoW_U/D", "RoW_Sat"},
	}
	for _, wl := range r.opt.Workloads {
		t.AddRow(wl,
			stats.F1(r.MustRun(wl, VarEager).MissLatency),
			stats.F1(r.MustRun(wl, VarLazy).MissLatency),
			stats.F1(r.MustRun(wl, VarDirUD).MissLatency),
			stats.F1(r.MustRun(wl, VarDirSat).MissLatency))
	}
	return t
}

// Fig12 reproduces Figure 12: contention-prediction accuracy of the
// UpDown and Saturate predictors (RW+Dir detection).
func Fig12(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, VarDirUD, VarDirSat))
	t := &stats.Table{
		Title:   "Fig. 12 — Contention predictor accuracy",
		Headers: []string{"workload", "U/D", "Sat"},
	}
	var ud, sat []float64
	for _, wl := range r.opt.Workloads {
		u := r.MustRun(wl, VarDirUD).PredAccuracy
		s := r.MustRun(wl, VarDirSat).PredAccuracy
		ud = append(ud, u)
		sat = append(sat, s)
		t.AddRow(wl, stats.Pct(u), stats.Pct(s))
	}
	t.AddRow("mean", stats.Pct(stats.ArithMean(ud)), stats.Pct(stats.ArithMean(sat)))
	return t
}

// Fig13Variants is the forwarding study of Figure 13.
var Fig13Variants = []Variant{VarLazy, VarEagerFwd, VarDirUD, VarDirSat, VarDirUDFwd, VarDirSatFwd}

// Fig13 reproduces Figure 13: forwarding from stores to atomics, with
// the atomic-locality override that flips predicted-contended atomics
// back to eager when a matching store is in the SB.
func Fig13(r *Runner) *stats.Table {
	r.Warm(Cross(r.opt.Workloads, append([]Variant{VarEager}, Fig13Variants...)...))
	headers := []string{"workload", "eager"}
	for _, v := range Fig13Variants {
		headers = append(headers, v.Name)
	}
	t := &stats.Table{
		Title:   "Fig. 13 — Forwarding to atomics, normalized to eager (no fwd)",
		Headers: headers,
	}
	sums := make([][]float64, len(Fig13Variants))
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		row := []string{wl, "1.000"}
		for i, v := range Fig13Variants {
			res := r.MustRun(wl, v)
			n := Norm(res.Cycles, e.Cycles)
			sums[i] = append(sums[i], n)
			row = append(row, stats.F(n))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean", "1.000"}
	for i := range Fig13Variants {
		row = append(row, stats.F(stats.GeoMean(sums[i])))
	}
	t.AddRow(row...)
	return t
}

// Summary reproduces the headline claims of Section VI: RoW with
// forwarding against the eager and lazy baselines, over the
// atomic-intensive workloads and over all applications. The paper's
// headline configuration is RW+Dir_U/D+Fwd; the Saturate predictor is
// reported as well because it is the strongest variant in this
// reproduction.
func Summary(r *Runner) *stats.Table {
	t := &stats.Table{
		Title:   "Section VI summary — RoW with forwarding vs baselines",
		Headers: []string{"set", "variant", "vs-eager", "vs-lazy", "best-case"},
	}
	allWls := append(append([]string{}, r.opt.Workloads...), workload.Fillers...)
	r.Warm(Cross(allWls, VarEager, VarLazy, VarDirUDFwd, VarDirSatFwd))
	eval := func(wls []string, v Variant) (vsEager, vsLazy, best float64) {
		var re, rl []float64
		best = 1
		for _, wl := range wls {
			e := r.MustRun(wl, VarEager)
			l := r.MustRun(wl, VarLazy)
			w := r.MustRun(wl, v)
			ne := Norm(w.Cycles, e.Cycles)
			re = append(re, ne)
			rl = append(rl, Norm(w.Cycles, l.Cycles))
			if ne < best {
				best = ne
			}
		}
		return stats.GeoMean(re), stats.GeoMean(rl), best
	}
	all := append(append([]string{}, r.opt.Workloads...), workload.Fillers...)
	for _, v := range []Variant{VarDirUDFwd, VarDirSatFwd} {
		ve, vl, best := eval(r.opt.Workloads, v)
		t.AddRow("atomic-intensive", v.Name, stats.F(ve), stats.F(vl), stats.F(best))
		ve, vl, best = eval(all, v)
		t.AddRow("all applications", v.Name, stats.F(ve), stats.F(vl), stats.F(best))
	}
	return t
}

// Table1 prints the active Table I system parameters.
func Table1() *stats.Table {
	cfg := config.Default()
	t := &stats.Table{
		Title:   "Table I — System parameters",
		Headers: []string{"parameter", "value"},
	}
	t.AddRow("Cores", fmt.Sprint(cfg.NumCores))
	t.AddRow("Fetch / Issue / Commit width", fmt.Sprintf("%d / %d / %d", cfg.Core.FetchWidth, cfg.Core.IssueWidth, cfg.Core.CommitWidth))
	t.AddRow("ROB / LQ / SB", fmt.Sprintf("%d / %d / %d entries", cfg.Core.ROBSize, cfg.Core.LQSize, cfg.Core.SBSize))
	t.AddRow("Atomic queue", fmt.Sprintf("%d entries", cfg.Core.AQSize))
	t.AddRow("Branch predictor", "gshare/bimodal hybrid (TAGE-SC-L stand-in)")
	t.AddRow("Mem. dep. predictor", "StoreSet")
	t.AddRow("Private L1I", fmt.Sprintf("%dKB, %d ways, next-line prefetcher", cfg.Mem.L1I.SizeBytes>>10, cfg.Mem.L1I.Ways))
	t.AddRow("Private L1D", fmt.Sprintf("%dKB, %d ways, %d hit cycles, IP-stride prefetcher", cfg.Mem.L1D.SizeBytes>>10, cfg.Mem.L1D.Ways, cfg.Mem.L1D.HitCycles))
	t.AddRow("Private L2", fmt.Sprintf("%dMB, %d ways, %d hit cycles", cfg.Mem.L2.SizeBytes>>20, cfg.Mem.L2.Ways, cfg.Mem.L2.HitCycles))
	t.AddRow("Shared L3", fmt.Sprintf("%dMB per bank x %d banks, %d ways, %d hit cycles", cfg.Mem.L3.SizeBytes>>20, cfg.Mem.L3Banks, cfg.Mem.L3.Ways, cfg.Mem.L3.HitCycles))
	t.AddRow("Memory access time", fmt.Sprintf("%d cycles", cfg.Mem.DRAMCycles))
	t.AddRow("RoW detection / predictor", fmt.Sprintf("%s / %s", cfg.RoW.Detection, cfg.RoW.Predictor))
	t.AddRow("RoW predictor table", fmt.Sprintf("%d x %d-bit counters", cfg.RoW.PredictorEntries, cfg.RoW.PredictorBits))
	t.AddRow("RoW latency threshold", fmt.Sprintf("%d cycles (%d-bit timestamps)", cfg.RoW.LatencyThreshold, cfg.RoW.TimestampBits))
	return t
}

// HardwareCost itemizes RoW's storage budget the way Section IV-F
// does, confirming the 64-byte claim for the active configuration.
func HardwareCost() *stats.Table {
	cfg := config.Default()
	t := &stats.Table{
		Title:   "Section IV-F — RoW hardware cost",
		Headers: []string{"structure", "geometry", "bits"},
	}
	predBits := cfg.RoW.PredictorEntries * cfg.RoW.PredictorBits
	t.AddRow("contention predictor", fmt.Sprintf("%d x %d-bit saturating counters", cfg.RoW.PredictorEntries, cfg.RoW.PredictorBits), fmt.Sprint(predBits))
	perEntry := 1 + 1 + cfg.RoW.TimestampBits
	aqBits := cfg.Core.AQSize * perEntry
	t.AddRow("AQ augmentation", fmt.Sprintf("%d entries x (contended + only-calc-addr + %d-bit timestamp)", cfg.Core.AQSize, cfg.RoW.TimestampBits), fmt.Sprint(aqBits))
	t.AddRow("combinational", fmt.Sprintf("%d-bit unsigned subtractor + comparator", cfg.RoW.TimestampBits), "-")
	t.AddRow("total storage", fmt.Sprintf("%d bytes", (predBits+aqBits)/8), fmt.Sprint(predBits+aqBits))
	return t
}
