// Package experiments regenerates every table and figure of the
// paper's evaluation: the eager/lazy trade-off (Fig. 1), the fence
// microbenchmark (Fig. 2), the motivation statistics (Figs. 4-6), the
// RoW variant comparison (Fig. 9), the threshold sweep (Fig. 10), the
// miss-latency and accuracy analyses (Figs. 11-12), the forwarding
// study (Fig. 13) and the headline summary, plus the ablations the
// design discussion calls out (predictor size and update rule).
package experiments

import (
	"context"
	"fmt"
	"sync"

	"rowsim/internal/config"
	"rowsim/internal/lifecycle"
	"rowsim/internal/sim"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

// DefaultSeed is the trace seed selected when Options.Seed is zero.
// Seed 0 is reserved as "use the default" — workload generation mixes
// seeds in ways that treat 0 as unset, so it is not a valid distinct
// seed of its own. Every run record journals the resolved seed, never
// the ambiguous 0, so a journaled spec is always re-runnable verbatim.
const DefaultSeed uint64 = 1

// Options scales the experiments. The zero value picks the paper's
// 32-core system at a trace length that keeps a full figure run in
// minutes.
type Options struct {
	Cores  int
	Instrs int // per-core instructions; 0 = 12000
	// Seed is the trace seed; 0 explicitly selects DefaultSeed (it is
	// NOT a distinct seed — passing 0 and 1 runs identical sweeps by
	// design, and the resolved value is what gets journaled).
	Seed      uint64
	Workloads []string // default: the 13 atomic-intensive workloads
	// Sched selects the simulation scheduler for every run. The zero
	// value is sim.SchedEvent; results are identical either way (only
	// wall time and the visited-cycle bookkeeping differ).
	Sched sim.Scheduler
}

func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 32
	}
	if o.Instrs == 0 {
		o.Instrs = 12000
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.Workloads == nil {
		o.Workloads = workload.AtomicIntensive
	}
	return o
}

// Variant identifies one simulated configuration.
type Variant struct {
	Name      string
	Policy    config.AtomicPolicy
	Detection config.Detection
	Predictor config.PredictorKind
	Forward   bool
	// Threshold overrides the RW+Dir latency threshold; -1 keeps the
	// default 400, -2 means "infinite" (disables the Dir detector).
	Threshold int
	// PredEntries overrides the predictor table size (0 = 64).
	PredEntries int
	// AQSize overrides the Atomic Queue depth (0 = 16).
	AQSize int
}

// Baselines and the RoW variants the figures compare.
var (
	VarEager = Variant{Name: "Eager", Policy: config.PolicyEager, Threshold: -1}
	VarLazy  = Variant{Name: "Lazy", Policy: config.PolicyLazy, Threshold: -1}

	VarEagerFwd = Variant{Name: "Eager+Fwd", Policy: config.PolicyEager, Forward: true, Threshold: -1}

	VarEWUD   = rowVariant("EW_U/D", config.DetectEW, config.PredUpDown, false)
	VarEWSat  = rowVariant("EW_Sat", config.DetectEW, config.PredSaturate, false)
	VarRWUD   = rowVariant("RW_U/D", config.DetectRW, config.PredUpDown, false)
	VarRWSat  = rowVariant("RW_Sat", config.DetectRW, config.PredSaturate, false)
	VarDirUD  = rowVariant("RW+Dir_U/D", config.DetectRWDir, config.PredUpDown, false)
	VarDirSat = rowVariant("RW+Dir_Sat", config.DetectRWDir, config.PredSaturate, false)

	VarDirUDFwd  = rowVariant("RW+Dir_U/D+Fwd", config.DetectRWDir, config.PredUpDown, true)
	VarDirSatFwd = rowVariant("RW+Dir_Sat+Fwd", config.DetectRWDir, config.PredSaturate, true)
)

func rowVariant(name string, d config.Detection, p config.PredictorKind, fwd bool) Variant {
	return Variant{Name: name, Policy: config.PolicyRoW, Detection: d, Predictor: p, Forward: fwd, Threshold: -1}
}

// Config materializes the variant into a full system configuration.
func (v Variant) Config(cores int) *config.Config {
	cfg := config.Default()
	cfg.NumCores = cores
	cfg.Policy = v.Policy
	cfg.ForwardAtomics = v.Forward
	cfg.RoW.Detection = v.Detection
	cfg.RoW.Predictor = v.Predictor
	// The ready window requires the early address-calculation pass;
	// EW and the plain baselines do without it (Section IV-B).
	cfg.EarlyAddrCalc = v.Policy == config.PolicyRoW && v.Detection != config.DetectEW
	switch v.Threshold {
	case -1:
		// keep the default (400)
	case -2:
		cfg.RoW.LatencyThreshold = -1 // infinite
	default:
		cfg.RoW.LatencyThreshold = v.Threshold
	}
	if v.PredEntries > 0 {
		cfg.RoW.PredictorEntries = v.PredEntries
	}
	if v.AQSize > 0 {
		cfg.Core.AQSize = v.AQSize
	}
	cfg.MaxCycles = 500_000_000
	return cfg
}

func (v Variant) key() string {
	return fmt.Sprintf("%s|%d|%d|%d|%v|%d|%d|%d",
		v.Name, v.Policy, v.Detection, v.Predictor, v.Forward, v.Threshold, v.PredEntries, v.AQSize)
}

// Runner executes and memoizes simulation runs: several figures share
// the same eager/lazy/RoW runs. It is safe for concurrent use: the
// memo map is mutex-protected, so the torture harness and parallel
// figure runs can share one runner. Concurrent misses on the same key
// may run the simulation twice (both arrive at the same result; the
// memo is purely a performance optimization).
type Runner struct {
	opt   Options
	ctx   context.Context       // base context for Run/MustRun (nil = Background)
	super *lifecycle.Supervisor // optional supervision of every run
	jobs  int                   // Warm worker count (see SetJobs; <1 = sequential)
	mu    sync.Mutex
	cache map[string]sim.Result
	// cycles accumulates the simulated cycles of every non-memoized
	// run (the benchmark gate's throughput denominator); visited
	// accumulates the cycles those runs actually simulated, so the
	// gate can report the event scheduler's skip efficiency.
	cycles  uint64
	visited uint64
	// Progress, when set, receives a line per completed run. It must
	// itself be safe for concurrent use when the runner is shared.
	Progress func(msg string)
}

// NewRunner builds a runner with the given options.
func NewRunner(opt Options) *Runner {
	return &Runner{opt: opt.withDefaults(), cache: make(map[string]sim.Result)}
}

// Options returns the effective (defaulted) options.
func (r *Runner) Options() Options { return r.opt }

// SetContext installs the base context every context-less Run call
// (and therefore every figure's MustRun) executes under, making whole
// figure harnesses cancellable by SIGINT or a sweep deadline.
func (r *Runner) SetContext(ctx context.Context) { r.ctx = ctx }

// Supervise routes every run through the supervisor: panic
// containment, per-run wall-clock deadline, classified retry, and
// journaling of each outcome with the resolved seed.
func (r *Runner) Supervise(s *lifecycle.Supervisor) { r.super = s }

func (r *Runner) baseCtx() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// Run simulates one workload under one variant, memoized. It returns
// an error when the configuration is invalid or the run aborts (cycle
// budget, deadlock, protocol violation, cancellation).
func (r *Runner) Run(wl string, v Variant) (sim.Result, error) {
	return r.RunCtx(r.baseCtx(), wl, v)
}

// RunCtx is Run under explicit cancellation.
func (r *Runner) RunCtx(ctx context.Context, wl string, v Variant) (sim.Result, error) {
	key := wl + "#" + v.key()
	r.mu.Lock()
	res, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	exec := func(ctx context.Context) (sim.Result, error) {
		p, err := workload.Get(wl)
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %w", err)
		}
		progs := workload.Generate(p, r.opt.Cores, r.opt.Instrs, r.opt.Seed)
		cfg := v.Config(r.opt.Cores)
		s, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(p)), sim.WithScheduler(r.opt.Sched))
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %w", err)
		}
		return s.RunCtx(ctx)
	}
	var err error
	if r.super != nil {
		job := lifecycle.Job{Key: fmt.Sprintf("%s under %s seed=%d", wl, v.Name, r.opt.Seed), Seed: r.opt.Seed}
		out := r.super.Do(ctx, job, exec)
		if out.Status != lifecycle.StatusOK {
			return sim.Result{}, fmt.Errorf("experiments: %s under %s [%s after %d attempt(s)]: %w",
				wl, v.Name, out.Status, out.Attempts, out.Err)
		}
		res = out.Result
	} else {
		res, err = exec(ctx)
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %s under %s: %w", wl, v.Name, err)
		}
	}
	r.mu.Lock()
	r.cache[key] = res
	r.cycles += res.Cycles
	r.visited += res.CyclesVisited
	r.mu.Unlock()
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("ran %-14s %-16s %12d cycles", wl, v.Name, res.Cycles))
	}
	return res, nil
}

// MustRun is Run for the figure harnesses, where an aborted run is a
// bug in the simulator, not an expected condition.
func (r *Runner) MustRun(wl string, v Variant) sim.Result {
	res, err := r.Run(wl, v)
	if err != nil {
		panic(err)
	}
	return res
}

// RunPrograms simulates explicit programs (the microbenchmark path)
// under the runner's base context and supervisor, when set.
func (r *Runner) RunPrograms(cfg *config.Config, progs []trace.Program) (sim.Result, error) {
	exec := func(ctx context.Context) (sim.Result, error) {
		s, err := sim.New(cfg, progs, sim.WithScheduler(r.opt.Sched))
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %w", err)
		}
		return s.RunCtx(ctx)
	}
	if r.super != nil {
		job := lifecycle.Job{Key: fmt.Sprintf("programs(%d) seed=%d", len(progs), r.opt.Seed), Seed: r.opt.Seed}
		out := r.super.Do(r.baseCtx(), job, exec)
		if out.Status != lifecycle.StatusOK {
			return sim.Result{}, fmt.Errorf("experiments: programs [%s after %d attempt(s)]: %w",
				out.Status, out.Attempts, out.Err)
		}
		return out.Result, nil
	}
	res, err := exec(r.baseCtx())
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %w", err)
	}
	return res, nil
}

// MustRunPrograms is RunPrograms with the figure-harness convention.
func (r *Runner) MustRunPrograms(cfg *config.Config, progs []trace.Program) sim.Result {
	res, err := r.RunPrograms(cfg, progs)
	if err != nil {
		panic(err)
	}
	return res
}

// SimulatedCycles returns the total simulated cycles executed by this
// runner's completed (non-memoized) runs — the throughput denominator
// the benchmark-regression gate reports against wall time.
func (r *Runner) SimulatedCycles() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cycles
}

// VisitedCycles returns the total cycles those runs actually visited:
// equal to SimulatedCycles under sim.SchedCycle, smaller under
// sim.SchedEvent. 1 - visited/simulated is the skip efficiency.
func (r *Runner) VisitedCycles() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.visited
}

// Norm returns v normalized to base (the paper normalizes execution
// times to the eager baseline).
func Norm(v, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}
