package experiments

import (
	"strconv"
	"strings"
	"testing"

	"rowsim/internal/config"
)

// tinyRunner keeps experiment tests fast: few cores, short traces,
// a contended and a non-contended workload.
func tinyRunner() *Runner {
	return NewRunner(Options{
		Cores:     4,
		Instrs:    2500,
		Seed:      1,
		Workloads: []string{"canneal", "sps"},
	})
}

func TestVariantConfigs(t *testing.T) {
	if VarEager.Config(4).Policy != config.PolicyEager {
		t.Fatal("eager variant policy wrong")
	}
	if VarLazy.Config(4).EarlyAddrCalc {
		t.Fatal("lazy baseline must not early-calculate addresses")
	}
	if VarEWUD.Config(4).EarlyAddrCalc {
		t.Fatal("EW variant must not early-calculate addresses")
	}
	if !VarRWUD.Config(4).EarlyAddrCalc {
		t.Fatal("RW variant requires the early address pass")
	}
	cfg := VarDirSatFwd.Config(4)
	if !cfg.ForwardAtomics || cfg.RoW.Predictor != config.PredSaturate || cfg.RoW.Detection != config.DetectRWDir {
		t.Fatal("RW+Dir_Sat+Fwd variant mis-assembled")
	}
	v := VarDirUD
	v.Threshold = -2
	if got := v.Config(4).RoW.LatencyThreshold; got >= 0 {
		t.Fatalf("infinite threshold encoded as %d", got)
	}
	v.Threshold = 1000
	if got := v.Config(4).RoW.LatencyThreshold; got != 1000 {
		t.Fatalf("explicit threshold = %d", got)
	}
	v.PredEntries = 4
	if got := v.Config(4).RoW.PredictorEntries; got != 4 {
		t.Fatalf("entries override = %d", got)
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := tinyRunner()
	runs := 0
	r.Progress = func(string) { runs++ }
	r.MustRun("sps", VarEager)
	r.MustRun("sps", VarEager)
	if runs != 1 {
		t.Fatalf("memoization broken: %d runs", runs)
	}
	r.MustRun("sps", VarLazy)
	if runs != 2 {
		t.Fatalf("distinct variant not run: %d", runs)
	}
}

func TestFig1ShapesHold(t *testing.T) {
	r := tinyRunner()
	tab := Fig1(r)
	if len(tab.Rows) != 3 { // 2 workloads + geomean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "canneal") || !strings.Contains(out, "sps") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// The headline shape at any scale: eager beats lazy on canneal.
	e := r.MustRun("canneal", VarEager)
	l := r.MustRun("canneal", VarLazy)
	if l.Cycles <= e.Cycles {
		t.Fatalf("canneal: lazy (%d) not slower than eager (%d)", l.Cycles, e.Cycles)
	}
}

func TestFig5IntensityOrdering(t *testing.T) {
	r := tinyRunner()
	sps := r.MustRun("sps", VarEager)
	can := r.MustRun("canneal", VarEager)
	if sps.AtomicsPer10K <= can.AtomicsPer10K {
		t.Fatalf("sps intensity (%.1f) not above canneal (%.1f)", sps.AtomicsPer10K, can.AtomicsPer10K)
	}
	if sps.ContendedFrac <= can.ContendedFrac {
		t.Fatalf("sps contention (%.2f) not above canneal (%.2f)", sps.ContendedFrac, can.ContendedFrac)
	}
	if tab := Fig5(r); len(tab.Rows) != 2 {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
}

func TestFig6Breakdown(t *testing.T) {
	r := tinyRunner()
	tab := Fig6(r)
	if len(tab.Headers) != 7 {
		t.Fatalf("headers = %v", tab.Headers)
	}
	// Lazy lock windows are minimal by construction.
	l := r.MustRun("canneal", VarLazy)
	if l.LockToUnlock > 20 {
		t.Fatalf("lazy lock->unlock = %.0f, want small", l.LockToUnlock)
	}
}

func TestFig2FenceShapes(t *testing.T) {
	r := NewRunner(Options{Cores: 1, Instrs: 2000, Seed: 1, Workloads: []string{"sps"}})
	tab := Fig2(r)
	if len(tab.Rows) != 12 {
		t.Fatalf("fig2 rows = %d, want 12", len(tab.Rows))
	}
	// Parse the table back for the FAA rows.
	get := func(name string) (unfenced, fenced float64) {
		for _, row := range tab.Rows {
			if row[0] == name {
				var err1, err2 error
				unfenced, err1 = strconv.ParseFloat(row[1], 64)
				fenced, err2 = strconv.ParseFloat(row[2], 64)
				if err1 != nil || err2 != nil {
					t.Fatalf("bad row %v", row)
				}
				return unfenced, fenced
			}
		}
		t.Fatalf("row %q missing", name)
		return 0, 0
	}
	plainU, _ := get("FAA")
	lockU, lockF := get("lock FAA")
	mfenceU, _ := get("FAA +mfence")
	// Unfenced core: lock prefix nearly free; mfences ruinous.
	if lockU > plainU*1.4 {
		t.Fatalf("unfenced core: lock FAA %.1f vs FAA %.1f (should be close)", lockU, plainU)
	}
	if mfenceU < plainU*2 {
		t.Fatalf("unfenced core: mfence cost invisible (%.1f vs %.1f)", mfenceU, plainU)
	}
	// Fenced core: the lock prefix alone behaves like a fence.
	if lockF < lockU*1.5 {
		t.Fatalf("fenced core not slower on lock FAA: %.1f vs %.1f", lockF, lockU)
	}
}

func TestSummaryTable(t *testing.T) {
	r := tinyRunner()
	tab := Summary(r)
	if len(tab.Rows) != 4 {
		t.Fatalf("summary rows = %d, want 4", len(tab.Rows))
	}
}

func TestAblationTables(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 2000, Seed: 1, Workloads: []string{"sps"}})
	if tab := AblationEntries(r); len(tab.Rows) != 2 {
		t.Fatalf("entries ablation rows = %d", len(tab.Rows))
	}
	if tab := AblationUpdate(r); len(tab.Rows) != 2 {
		t.Fatalf("update ablation rows = %d", len(tab.Rows))
	}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"512 / 192 / 128", "16 entries", "160 cycles", "StoreSet"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFig8DetectionWidens(t *testing.T) {
	r := NewRunner(Options{Cores: 8, Instrs: 3000, Seed: 1, Workloads: []string{"sps"}})
	tab := Fig8Race(r)
	if len(tab.Rows) != 2 { // sps + mean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Each wider window detects at least as much contention.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	row := tab.Rows[0]
	ew, rw, dir := parse(row[1]), parse(row[2]), parse(row[3])
	if ew > rw || rw > dir {
		t.Fatalf("detection coverage not widening: EW=%.1f RW=%.1f Dir=%.1f", ew, rw, dir)
	}
	if dir == 0 {
		t.Fatal("RW+Dir detected nothing on sps")
	}
}

func TestLockTailsTable(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 2000, Seed: 1, Workloads: []string{"sps"}})
	if tab := LockTails(r); len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationAQ(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 2000, Seed: 1, Workloads: []string{"sps"}})
	if tab := AblationAQSize(r); len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFarVsNearTable(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 2000, Seed: 1, Workloads: []string{"sps"}})
	tab := FarVsNear(r)
	if len(tab.Rows) != 2 { // sps + geomean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Headers) != 5 {
		t.Fatalf("headers = %v", tab.Headers)
	}
}

func TestLockStudyTable(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 2000, Seed: 1})
	tab := LockStudy(r)
	if len(tab.Rows) != 3 { // tas, ticket, barrier
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestScalingTable(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 1500, Seed: 1})
	tab := Scaling(r, []string{"sps"})
	if len(tab.Rows) != 3 { // 3 core counts
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestStabilityTable(t *testing.T) {
	r := NewRunner(Options{Cores: 4, Instrs: 1500, Seed: 1})
	tab := Stability(r, []uint64{1, 2}, []string{"sps"})
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][1], "[") {
		t.Fatalf("no spread reported: %v", tab.Rows[0])
	}
}

func TestHardwareCost64Bytes(t *testing.T) {
	tab := HardwareCost()
	out := tab.String()
	if !strings.Contains(out, "64 bytes") {
		t.Fatalf("hardware cost table does not confirm 64 bytes:\n%s", out)
	}
}

func TestNorm(t *testing.T) {
	if Norm(50, 100) != 0.5 {
		t.Fatal("norm broken")
	}
	if Norm(50, 0) != 0 {
		t.Fatal("norm by zero")
	}
}
