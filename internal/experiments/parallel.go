package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the sweep-parallelism engine. Every figure is a set of
// independent, deterministic (workload, Variant) simulations, so the
// harness splits each figure into two phases: a parallel *warm* phase
// that fans the runs across a worker pool to fill the runner's memo,
// and the unchanged sequential phase that builds the table from the
// memo. The table pass therefore observes exactly the results (and the
// failure behavior) of a jobs=1 run: output is byte-identical for any
// worker count, and only wall-clock time changes.

// Jobs resolves a -jobs flag value: n >= 1 is taken literally, any
// other value selects GOMAXPROCS.
func Jobs(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0,n) using up to jobs concurrent
// workers and returns when all calls finished. Indices are handed out
// in order, but fn must not depend on completion order; with jobs <= 1
// the calls run sequentially on the caller's goroutine.
func ForEach(jobs, n int, fn func(i int)) {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Spec names one memoizable cell of a figure sweep.
type Spec struct {
	Workload string
	Variant  Variant
}

// Cross builds the spec set {workloads} x {variants}.
func Cross(workloads []string, variants ...Variant) []Spec {
	specs := make([]Spec, 0, len(workloads)*len(variants))
	for _, wl := range workloads {
		for _, v := range variants {
			specs = append(specs, Spec{Workload: wl, Variant: v})
		}
	}
	return specs
}

// SetJobs sets the worker count Warm fans runs across (resolved via
// Jobs; the default is 1, i.e. fully sequential).
func (r *Runner) SetJobs(n int) { r.jobs = Jobs(n) }

// Jobs returns the effective worker count.
func (r *Runner) Jobs() int {
	if r.jobs < 1 {
		return 1
	}
	return r.jobs
}

// Warm fills the memo for the given specs using the runner's worker
// pool, deduplicating repeated cells so no simulation runs twice. Run
// errors (and panics) are swallowed here on purpose: the runs are
// deterministic, so the figure's sequential pass re-executes any
// failed cell and reports the identical failure exactly as a
// sequential run would — Warm only ever changes wall-clock time.
func (r *Runner) Warm(specs []Spec) {
	if r.Jobs() <= 1 || len(specs) < 2 {
		return
	}
	seen := make(map[string]bool, len(specs))
	uniq := specs[:0:0]
	for _, s := range specs {
		k := s.Workload + "#" + s.Variant.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, s)
	}
	ForEach(r.Jobs(), len(uniq), func(i int) {
		defer func() { _ = recover() }()
		_, _ = r.Run(uniq[i].Workload, uniq[i].Variant)
	})
}
