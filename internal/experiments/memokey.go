package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime/debug"
	"sync"
)

// This file is the content-addressing scheme behind rowserve's memo
// cache. Two cells — possibly from different sweeps or tenants — that
// hash to the same content key are guaranteed to produce the same
// sim.Result, because a cell is a pure function of (configuration,
// workload parameters, trace shape, seed) and of the simulator code
// itself. The code revision is therefore part of every key: results
// computed by an older binary must never be served for a newer one.

var (
	codeRevOnce sync.Once
	codeRev     string
)

// CodeRev returns the VCS revision baked into the running binary by
// the Go toolchain, or "dev" for builds without VCS stamping (go test,
// uncommitted trees). It is folded into every content key so a memo
// cache never crosses simulator versions.
func CodeRev() string {
	codeRevOnce.Do(func() {
		codeRev = "dev"
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, modified string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev == "" {
			return
		}
		codeRev = rev
		if modified == "true" {
			codeRev += "+dirty"
		}
	})
	return codeRev
}

// ContentKey hashes an ordered sequence of JSON-serializable parts —
// typically (config.Config, workload.Params, cores, instrs, seed) —
// together with CodeRev into a stable hex content address. Parts are
// length-prefixed by position so adjacent values cannot alias across
// boundaries, and JSON encoding of the repo's plain config/param
// structs is deterministic (fixed field order, no maps).
func ContentKey(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encode never fails for the plain structs and scalars this keys;
	// a failure would mean a non-serializable part, which is a
	// programming error the digest makes loudly visible by differing.
	_ = enc.Encode(CodeRev())
	for i, p := range parts {
		_ = enc.Encode(i)
		_ = enc.Encode(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
