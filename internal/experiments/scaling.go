package experiments

import (
	"fmt"

	"rowsim/internal/config"
	"rowsim/internal/stats"
	"rowsim/internal/workload"
)

// Scaling extends the paper's fixed 32-core evaluation with a
// core-count sweep: the eager/lazy gap on contended workloads grows
// with the number of contenders, and RoW must keep tracking the
// better policy at every point.
func Scaling(r *Runner, workloads []string) *stats.Table {
	if workloads == nil {
		workloads = []string{"canneal", "sps", "pc"}
	}
	coreCounts := []int{8, 16, 32}
	t := &stats.Table{
		Title:   "Scaling — normalized execution time vs eager, by core count",
		Headers: []string{"workload", "cores", "lazy/eager", "RoW(Sat)/eager", "RoW(Sat+Fwd)/eager"},
	}
	// Each (workload, coreCount) cell has its own memoizing sub-runner;
	// the parallel phase warms all cells at once and the sequential
	// table pass below reads the memos back in deterministic order.
	type cell struct {
		wl  string
		n   int
		sub *Runner
	}
	var cells []cell
	for _, wl := range workloads {
		for _, n := range coreCounts {
			sub := NewRunner(Options{
				Cores:     n,
				Instrs:    r.opt.Instrs,
				Seed:      r.opt.Seed,
				Workloads: []string{wl},
			})
			sub.Progress = r.Progress
			cells = append(cells, cell{wl: wl, n: n, sub: sub})
		}
	}
	ForEach(r.Jobs(), len(cells), func(i int) {
		defer func() { _ = recover() }()
		c := cells[i]
		for _, v := range []Variant{VarEager, VarLazy, VarDirSat, VarDirSatFwd} {
			if _, err := c.sub.Run(c.wl, v); err != nil {
				return
			}
		}
	})
	for _, c := range cells {
		wl, n, sub := c.wl, c.n, c.sub
		{
			e := sub.MustRun(wl, VarEager)
			l := sub.MustRun(wl, VarLazy)
			s := sub.MustRun(wl, VarDirSat)
			f := sub.MustRun(wl, VarDirSatFwd)
			t.AddRow(wl, fmt.Sprint(n),
				stats.F(Norm(l.Cycles, e.Cycles)),
				stats.F(Norm(s.Cycles, e.Cycles)),
				stats.F(Norm(f.Cycles, e.Cycles)))
		}
	}
	return t
}

// FarVsNear extends the evaluation along the orthogonal axis the
// paper's Section VII surveys: *where* to execute the atomic. Far
// atomics (performed at the shared L3 bank, IBM-style) avoid bouncing
// contended lines entirely but pay a full round trip per atomic, so
// they win exactly where lazy wins and lose where eager wins — RoW's
// when-question and Dynamo/CLAU's where-question are complementary.
func FarVsNear(r *Runner) *stats.Table {
	far := Variant{Name: "Far", Policy: config.PolicyFar, Threshold: -1}
	r.Warm(Cross(r.opt.Workloads, VarEager, VarLazy, VarDirSatFwd, far))
	t := &stats.Table{
		Title:   "Far vs near — normalized execution time vs eager (near)",
		Headers: []string{"workload", "eager", "lazy", "RoW(Sat+Fwd)", "far"},
	}
	var ls, rs, fs []float64
	for _, wl := range r.opt.Workloads {
		e := r.MustRun(wl, VarEager)
		l := Norm(r.MustRun(wl, VarLazy).Cycles, e.Cycles)
		w := Norm(r.MustRun(wl, VarDirSatFwd).Cycles, e.Cycles)
		f := Norm(r.MustRun(wl, far).Cycles, e.Cycles)
		ls, rs, fs = append(ls, l), append(rs, w), append(fs, f)
		t.AddRow(wl, "1.000", stats.F(l), stats.F(w), stats.F(f))
	}
	t.AddRow("geomean", "1.000", stats.F(stats.GeoMean(ls)), stats.F(stats.GeoMean(rs)), stats.F(stats.GeoMean(fs)))
	return t
}

// LockStudy applies the policy comparison to the classic
// synchronization algorithms the paper's introduction motivates:
// test-and-set spinlocks (SWAP-hammering), ticket locks (one FAA per
// acquisition) and sense-reversing barriers. Eager execution is
// disastrous for lock words (the lock's cacheline is held locked
// while the winner's ROB drains), lazy recovers most of it, and far
// execution shines for barrier arrivals (a fetch-and-add at the bank,
// no line migration at all).
func LockStudy(r *Runner) *stats.Table {
	far := Variant{Name: "Far", Policy: config.PolicyFar, Threshold: -1}
	r.Warm(Cross(workload.SyncKernels, VarEager, VarLazy, VarDirSat, VarDirSatFwd, far))
	t := &stats.Table{
		Title:   "Lock study — synchronization kernels, normalized to eager",
		Headers: []string{"kernel", "eager-cycles", "lazy", "RoW(Sat)", "RoW(Sat+Fwd)", "far"},
	}
	for _, wl := range workload.SyncKernels {
		e := r.MustRun(wl, VarEager)
		t.AddRow(wl,
			fmt.Sprint(e.Cycles),
			stats.F(Norm(r.MustRun(wl, VarLazy).Cycles, e.Cycles)),
			stats.F(Norm(r.MustRun(wl, VarDirSat).Cycles, e.Cycles)),
			stats.F(Norm(r.MustRun(wl, VarDirSatFwd).Cycles, e.Cycles)),
			stats.F(Norm(r.MustRun(wl, far).Cycles, e.Cycles)))
	}
	return t
}

// Stability reruns the headline comparisons under several trace seeds
// and reports the spread, so readers can judge which effects are
// robust and which are generation noise.
func Stability(r *Runner, seeds []uint64, workloads []string) *stats.Table {
	if seeds == nil {
		seeds = []uint64{1, 2, 3}
	}
	if workloads == nil {
		workloads = []string{"canneal", "cq", "sps", "pc"}
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Stability — lazy/eager and RoW(Sat)/eager over %d seeds (mean [min,max])", len(seeds)),
		Headers: []string{"workload", "lazy/eager", "RoW(Sat)/eager"},
	}
	span := func(vs []float64) string {
		mean := stats.ArithMean(vs)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return fmt.Sprintf("%.3f [%.3f,%.3f]", mean, lo, hi)
	}
	for _, wl := range workloads {
		var lazies, rows []float64
		for _, seed := range seeds {
			sub := NewRunner(Options{
				Cores:     r.opt.Cores,
				Instrs:    r.opt.Instrs,
				Seed:      seed,
				Workloads: []string{wl},
			})
			sub.Progress = r.Progress
			e := sub.MustRun(wl, VarEager)
			lazies = append(lazies, Norm(sub.MustRun(wl, VarLazy).Cycles, e.Cycles))
			rows = append(rows, Norm(sub.MustRun(wl, VarDirSat).Cycles, e.Cycles))
		}
		t.AddRow(wl, span(lazies), span(rows))
	}
	return t
}
