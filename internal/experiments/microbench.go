package experiments

import (
	"rowsim/internal/config"
	"rowsim/internal/stats"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

// Fig2 reproduces Figure 2: the Section II-A microbenchmark measuring
// cycles per iteration for FAA/CAS/SWAP, with and without the lock
// prefix, with and without explicit mfences, on two simulated cores:
//
//   - "unfenced" resembles a recent x86 part (Coffee-Lake-like): the
//     lock prefix costs almost nothing, explicit mfences are ruinous.
//   - "fenced" resembles an old x86 part (Kentsfield-like): the lock
//     prefix alone behaves like a fence (roughly doubling cycles per
//     iteration), and adding mfences changes little for atomics.
func Fig2(r *Runner) *stats.Table {
	iterations := r.opt.Instrs / 4
	if iterations < 500 {
		iterations = 500
	}
	t := &stats.Table{
		Title:   "Fig. 2 — Microbenchmark cycles/iteration (single thread, cache-exceeding array)",
		Headers: []string{"variant", "unfenced-core", "fenced-core"},
	}
	for _, v := range workload.MicrobenchVariants() {
		prog := workload.GenerateMicrobench(v, iterations, r.opt.Seed)
		iters := workload.MicrobenchIterations(prog, v)

		run := func(fenced bool) float64 {
			cfg := config.Default()
			cfg.NumCores = 1
			cfg.Policy = config.PolicyEager
			cfg.WarmCaches = false // the array must miss: that is the point
			cfg.MaxCycles = 500_000_000
			if fenced {
				// Kentsfield-class core (2007): fenced atomics on a
				// narrow, shallow machine with little memory-level
				// parallelism — the configuration under which the
				// lock prefix roughly doubles cycles per iteration.
				cfg.Core.FencedAtomics = true
				cfg.Core.FetchWidth = 4
				cfg.Core.IssueWidth = 4
				cfg.Core.CommitWidth = 4
				cfg.Core.ROBSize = 96
				cfg.Core.LQSize = 32
				cfg.Core.SBSize = 20
				cfg.Core.AQSize = 1
				cfg.Mem.MSHRs = 2
			}
			res := r.MustRunPrograms(cfg, []trace.Program{prog})
			return float64(res.Cycles) / float64(iters)
		}
		t.AddRow(v.String(), stats.F1(run(false)), stats.F1(run(true)))
	}
	return t
}
