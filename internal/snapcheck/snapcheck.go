// Package snapcheck is a test helper that keeps snapshots complete.
//
// Every stateful component that participates in mid-run checkpointing
// pairs a live struct (Core, Mesh, Dir, ...) with a snapshot struct
// (CoreSnap, MeshSnap, DirSnap, ...). The failure mode this package
// guards against is silent: someone adds a field to the live struct,
// forgets to serialize it, and checkpoint-resumed runs diverge from
// uninterrupted ones in ways no unit test of the new feature notices.
//
// Each package with a snapshot declares, in a white-box test, which
// live fields the snapshot captures and which are intentionally not
// captured (with the reason — rebuilt on restore, construction-time
// wiring, pure derived state). Assert then enumerates the live
// struct's fields by reflection and fails on anything unaccounted for,
// so adding a field without deciding its checkpoint story breaks the
// build's tests immediately.
package snapcheck

import (
	"reflect"
	"sort"
	"testing"
)

// Assert fails t unless every field of live's struct type is accounted
// for: named in serialized (captured by the snapshot) or present in
// derived (deliberately not captured, mapped to the reason why that is
// sound). A name in neither list, in both lists, or naming no field at
// all (a stale entry after a rename) is a failure.
func Assert(t *testing.T, live any, serialized []string, derived map[string]string) {
	t.Helper()
	typ := reflect.TypeOf(live)
	for typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	if typ.Kind() != reflect.Struct {
		t.Fatalf("snapcheck: %v is not a struct", typ)
	}

	ser := make(map[string]bool, len(serialized))
	for _, name := range serialized {
		if ser[name] {
			t.Errorf("snapcheck: %s: %q listed twice in serialized", typ, name)
		}
		ser[name] = true
	}
	fields := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		fields[name] = true
		inSer, inDer := ser[name], false
		if _, ok := derived[name]; ok {
			inDer = true
		}
		switch {
		case inSer && inDer:
			t.Errorf("snapcheck: %s.%s is listed both serialized and derived — pick one", typ, name)
		case !inSer && !inDer:
			t.Errorf("snapcheck: %s.%s is not captured by the snapshot and not explained as derived/ephemeral — checkpoint-resume would silently lose it", typ, name)
		}
	}

	var stale []string
	for name := range ser {
		if !fields[name] {
			stale = append(stale, name)
		}
	}
	for name := range derived {
		if !fields[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("snapcheck: %s has no field %q (renamed or removed? update the snapshot inventory)", typ, name)
	}
}
