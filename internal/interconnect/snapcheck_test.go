package interconnect

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the mesh and its in-flight event records.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Mesh{}, []string{
		"now", "seq", "events", "inboxes", "lastAt",
		"messages", "hopsSum", "dropped", "dupes",
	}, map[string]string{
		"cols":         "derived from the node count at construction",
		"rows":         "derived from the node count at construction",
		"nodes":        "construction-time configuration",
		"linkCycles":   "construction-time latency constant",
		"routerCycles": "construction-time latency constant",
		"baseCycles":   "construction-time latency constant",
		"pool":         "wiring; pool counters are snapshotted separately as PoolSnap",
		"perturb":      "wiring; the fault injector is snapshotted separately as InjectorSnap",
		"sink":         "wiring; provably empty at checkpoint instants",
		"trace":        "deadlock-diagnosis ring, only read when an error is being reported",
		"traceIdx":     "deadlock-diagnosis ring index",
		"traceN":       "deadlock-diagnosis ring fill count",
	})

	snapcheck.Assert(t, event{}, []string{"at", "seq", "msg"}, nil)
}
