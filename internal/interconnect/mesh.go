// Package interconnect models the on-chip network connecting cores
// and L3/directory banks: a 2D mesh with dimension-order routing and
// per-hop link plus router latency, in the spirit of GARNET but at
// message (not flit) granularity.
package interconnect

import (
	"container/heap"
	"fmt"

	"rowsim/internal/coherence"
)

// event is one in-flight message with its arrival time.
type event struct {
	at  uint64
	seq uint64 // tie-breaker preserving send order
	msg *coherence.Msg
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Mesh is a 2D mesh network. It implements coherence.Network.
type Mesh struct {
	cols, rows int
	nodes      int

	linkCycles   int
	routerCycles int
	baseCycles   int

	now    uint64
	seq    uint64
	events eventHeap

	inboxes [][]*coherence.Msg

	// stats
	messages uint64
	hopsSum  uint64
}

// NewMesh builds a mesh holding the given number of nodes with the
// given per-hop timing. Nodes are placed row-major on the smallest
// near-square grid that fits.
func NewMesh(nodes, linkCycles, routerCycles, baseCycles int) *Mesh {
	if nodes <= 0 {
		panic(fmt.Sprintf("interconnect: non-positive node count %d", nodes))
	}
	cols := 1
	for cols*cols < nodes {
		cols++
	}
	rows := (nodes + cols - 1) / cols
	return &Mesh{
		cols:         cols,
		rows:         rows,
		nodes:        nodes,
		linkCycles:   linkCycles,
		routerCycles: routerCycles,
		baseCycles:   baseCycles,
		inboxes:      make([][]*coherence.Msg, nodes),
	}
}

// Nodes returns the number of attached nodes.
func (m *Mesh) Nodes() int { return m.nodes }

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := a%m.cols, a/m.cols
	bx, by := b%m.cols, b/m.cols
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the transport latency between two nodes.
func (m *Mesh) Latency(a, b int) uint64 {
	hops := m.Hops(a, b)
	return uint64(m.baseCycles + hops*(m.linkCycles+m.routerCycles))
}

// Send implements coherence.Network.
func (m *Mesh) Send(msg *coherence.Msg) { m.SendAfter(msg, 0) }

// SendAfter implements coherence.Network.
func (m *Mesh) SendAfter(msg *coherence.Msg, extra uint64) {
	if msg.Dst < 0 || msg.Dst >= m.nodes {
		panic(fmt.Sprintf("interconnect: message to unknown node %d (%s)", msg.Dst, msg))
	}
	at := m.now + extra + m.Latency(msg.Src, msg.Dst)
	if at <= m.now {
		at = m.now + 1
	}
	m.seq++
	heap.Push(&m.events, event{at: at, seq: m.seq, msg: msg})
	m.messages++
	m.hopsSum += uint64(m.Hops(msg.Src, msg.Dst))
}

// Tick advances the network to the given cycle, moving every message
// that has arrived into its destination inbox.
func (m *Mesh) Tick(cycle uint64) {
	m.now = cycle
	for len(m.events) > 0 && m.events[0].at <= cycle {
		e := heap.Pop(&m.events).(event)
		m.inboxes[e.msg.Dst] = append(m.inboxes[e.msg.Dst], e.msg)
	}
}

// Drain returns and clears the inbox of a node. Callers own the
// returned slice.
func (m *Mesh) Drain(node int) []*coherence.Msg {
	in := m.inboxes[node]
	if len(in) == 0 {
		return nil
	}
	m.inboxes[node] = nil
	return in
}

// Idle reports whether no messages are in flight or queued anywhere.
func (m *Mesh) Idle() bool {
	if len(m.events) > 0 {
		return false
	}
	for _, in := range m.inboxes {
		if len(in) > 0 {
			return false
		}
	}
	return true
}

// Messages returns the total number of messages sent.
func (m *Mesh) Messages() uint64 { return m.messages }

// AvgHops returns the mean hop count over all messages sent.
func (m *Mesh) AvgHops() float64 {
	if m.messages == 0 {
		return 0
	}
	return float64(m.hopsSum) / float64(m.messages)
}
