// Package interconnect models the on-chip network connecting cores
// and L3/directory banks: a 2D mesh with dimension-order routing and
// per-hop link plus router latency, in the spirit of GARNET but at
// message (not flit) granularity.
package interconnect

import (
	"fmt"

	"rowsim/internal/coherence"
)

// event is one in-flight message with its arrival time.
type event struct {
	at  uint64
	seq uint64 // tie-breaker preserving send order
	msg *coherence.Msg
}

// eventHeap is a typed binary min-heap ordered by (at, seq). It is
// hand-rolled instead of container/heap because the interface-based
// Push/Pop box every event through the heap (one allocation per send
// on the simulator's hottest path); the typed version keeps events in
// place. seq is unique, so pop order is a total order independent of
// the heap's internal layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//rowlint:noalloc
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

//rowlint:noalloc
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the msg reference for the GC
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Perturber mutates message delivery for fault injection. The mesh
// consults it on every send when installed (see faults.Injector).
type Perturber interface {
	// Perturb returns the extra source-side delays for each delivered
	// copy of m: {0} delivers normally, multiple entries duplicate the
	// message, and an empty slice drops it. The returned slice is only
	// valid until the next call.
	Perturb(m *coherence.Msg) []uint64
}

// traceDepth is how many recent messages the mesh remembers for the
// trace attached to protocol-error reports.
const traceDepth = 256

// traceEntry is one remembered send.
type traceEntry struct {
	sentAt, arriveAt uint64
	msg              coherence.Msg
}

// Mesh is a 2D mesh network. It implements coherence.Network.
type Mesh struct {
	cols, rows int
	nodes      int

	linkCycles   int
	routerCycles int
	baseCycles   int

	now    uint64
	seq    uint64
	events eventHeap

	inboxes [][]*coherence.Msg

	pool *coherence.MsgPool

	perturb Perturber
	// lastAt preserves per-(src,dst) FIFO delivery under fault
	// injection: jitter may stretch a channel but never lets a younger
	// message overtake an older one on the same ordered channel, which
	// is the timing contract the directory protocol assumes.
	lastAt []uint64

	sink *coherence.ErrorSink

	trace    []traceEntry
	traceIdx int
	traceN   int

	// stats
	messages uint64
	hopsSum  uint64
	dropped  uint64
	dupes    uint64
}

// NewMesh builds a mesh holding the given number of nodes with the
// given per-hop timing. Nodes are placed row-major on the smallest
// near-square grid that fits.
func NewMesh(nodes, linkCycles, routerCycles, baseCycles int) *Mesh {
	if nodes <= 0 {
		panic(fmt.Sprintf("interconnect: non-positive node count %d", nodes))
	}
	cols := 1
	for cols*cols < nodes {
		cols++
	}
	rows := (nodes + cols - 1) / cols
	return &Mesh{
		cols:         cols,
		rows:         rows,
		nodes:        nodes,
		linkCycles:   linkCycles,
		routerCycles: routerCycles,
		baseCycles:   baseCycles,
		inboxes:      make([][]*coherence.Msg, nodes),
	}
}

// Nodes returns the number of attached nodes.
func (m *Mesh) Nodes() int { return m.nodes }

// SetMsgPool installs the message free list used for fault-injected
// duplicate copies. The pool is shared with the protocol endpoints by
// the system; a nil pool (component tests) falls back to the allocator.
func (m *Mesh) SetMsgPool(p *coherence.MsgPool) { m.pool = p }

// SetPerturber installs a fault injector on the send path. Must be set
// before the first message is sent.
func (m *Mesh) SetPerturber(p Perturber) {
	m.perturb = p
	if p != nil && m.lastAt == nil {
		m.lastAt = make([]uint64, m.nodes*m.nodes)
	}
}

// SetErrorSink wires the system-wide protocol-error sink. Without one,
// violations panic (fail-fast for components driven directly by tests).
func (m *Mesh) SetErrorSink(s *coherence.ErrorSink) { m.sink = s }

// Hops returns the Manhattan distance between two nodes.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := a%m.cols, a/m.cols
	bx, by := b%m.cols, b/m.cols
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the transport latency between two nodes.
func (m *Mesh) Latency(a, b int) uint64 {
	hops := m.Hops(a, b)
	return uint64(m.baseCycles + hops*(m.linkCycles+m.routerCycles))
}

// Send implements coherence.Network.
//
//rowlint:noalloc
func (m *Mesh) Send(msg *coherence.Msg) { m.SendAfter(msg, 0) }

// SendAfter implements coherence.Network.
//
//rowlint:noalloc
func (m *Mesh) SendAfter(msg *coherence.Msg, extra uint64) {
	if msg.Dst < 0 || msg.Dst >= m.nodes {
		coherence.Raise(m.sink, &coherence.ProtocolError{ //rowlint:ignore noalloc-escape fatal protocol-error path; the run is already over
			Cycle:     m.now,
			Component: "mesh",
			Line:      msg.Line,
			Op:        msg.String(),
			//rowlint:ignore noalloc fatal protocol-error path; the run is already over
			Reason: fmt.Sprintf("message addressed to unknown node %d (have %d)", msg.Dst, m.nodes),
		})
		m.pool.Put(msg)
		return
	}
	if m.perturb == nil {
		m.enqueue(msg, extra, 0)
		return
	}
	delays := m.perturb.Perturb(msg)
	if len(delays) == 0 {
		m.dropped++
		m.record(msg, 0) // a dropped message still shows in the trace
		m.pool.Put(msg)
		return
	}
	for i, d := range delays {
		if i == 0 {
			m.enqueue(msg, extra, d)
			continue
		}
		// Duplicate deliveries get their own Msg: handlers may retain
		// the pointer (stall queues), so copies must not alias.
		m.dupes++
		cp := m.pool.Get()
		*cp = *msg
		m.enqueue(cp, extra, d)
	}
}

// enqueue schedules one delivery, preserving per-channel FIFO order
// when fault injection is active.
//
//rowlint:noalloc
func (m *Mesh) enqueue(msg *coherence.Msg, extra, faultDelay uint64) {
	at := m.now + extra + faultDelay + m.Latency(msg.Src, msg.Dst)
	if at <= m.now {
		at = m.now + 1
	}
	if m.lastAt != nil && msg.Src >= 0 && msg.Src < m.nodes {
		ch := msg.Src*m.nodes + msg.Dst
		if at < m.lastAt[ch] {
			at = m.lastAt[ch]
		}
		m.lastAt[ch] = at
	}
	m.seq++
	m.events.push(event{at: at, seq: m.seq, msg: msg})
	m.messages++
	m.hopsSum += uint64(m.Hops(msg.Src, msg.Dst))
	m.record(msg, at)
}

// record remembers the send in the trace ring (arriveAt 0 = dropped).
//
//rowlint:noalloc
func (m *Mesh) record(msg *coherence.Msg, arriveAt uint64) {
	if m.trace == nil {
		m.trace = make([]traceEntry, traceDepth) //rowlint:ignore noalloc one-time lazy init of the trace ring, amortized to zero
	}
	m.trace[m.traceIdx] = traceEntry{sentAt: m.now, arriveAt: arriveAt, msg: *msg}
	m.traceIdx = (m.traceIdx + 1) % traceDepth
	if m.traceN < traceDepth {
		m.traceN++
	}
}

// RecentTrace renders the most recent sends touching the given line
// (line 0 = all lines), oldest first, up to max entries. The system
// attaches this to protocol-error reports.
func (m *Mesh) RecentTrace(line uint64, max int) []string {
	if m.trace == nil {
		return nil
	}
	var out []string
	for i := 0; i < m.traceN; i++ {
		e := &m.trace[(m.traceIdx+traceDepth-m.traceN+i)%traceDepth]
		if line != 0 && e.msg.Line != line {
			continue
		}
		if e.arriveAt == 0 {
			out = append(out, fmt.Sprintf("cycle %d: %s DROPPED", e.sentAt, e.msg.String()))
		} else {
			out = append(out, fmt.Sprintf("cycle %d: %s arrives %d", e.sentAt, e.msg.String(), e.arriveAt))
		}
	}
	if len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Dropped returns the number of messages removed by fault injection.
func (m *Mesh) Dropped() uint64 { return m.dropped }

// Duplicated returns the number of extra copies injected by faults.
func (m *Mesh) Duplicated() uint64 { return m.dupes }

// Tick advances the network to the given cycle, moving every message
// that has arrived into its destination inbox.
//
//rowlint:noalloc
func (m *Mesh) Tick(cycle uint64) {
	m.now = cycle
	for len(m.events) > 0 && m.events[0].at <= cycle {
		e := m.events.pop()
		m.inboxes[e.msg.Dst] = append(m.inboxes[e.msg.Dst], e.msg)
	}
}

// NextEventAt returns the arrival cycle of the earliest undelivered
// message, or ^uint64(0) when nothing is in flight. Every enqueue
// clamps the arrival to at least now+1 and Tick delivers everything
// due, so after a Tick at `now` the heap head is always in the future;
// the clamp below only defends the contract against misuse.
//
//rowlint:noalloc
func (m *Mesh) NextEventAt(now uint64) uint64 {
	if len(m.events) == 0 {
		return ^uint64(0)
	}
	if at := m.events[0].at; at > now {
		return at
	}
	return now + 1
}

// HasMail reports whether the node's inbox holds undelivered messages.
// The system's cycle loop uses it to skip Drain-and-handle entirely for
// idle nodes.
//
//rowlint:noalloc
func (m *Mesh) HasMail(node int) bool { return len(m.inboxes[node]) > 0 }

// Drain returns the node's pending messages and empties the inbox.
// Contract: it returns nil exactly when the inbox is empty (HasMail is
// the cheap precheck); a non-nil result always holds at least one
// message. The returned slice is the node's reused drain buffer — it is
// valid only until the next Tick, which may append into the same
// backing array. Callers consume it immediately (the system handles
// every drained message within the same cycle) and must not retain the
// slice itself; retaining individual *Msg pointers is fine, subject to
// the MsgPool ownership discipline.
//
//rowlint:noalloc
func (m *Mesh) Drain(node int) []*coherence.Msg {
	in := m.inboxes[node]
	if len(in) == 0 {
		return nil
	}
	m.inboxes[node] = in[:0]
	return in
}

// InFlightMsgs counts the messages the network currently owns: queued
// in the event heap or sitting in a destination inbox. Part of the
// end-of-run pool conservation check.
func (m *Mesh) InFlightMsgs() int {
	n := len(m.events)
	for _, in := range m.inboxes {
		n += len(in)
	}
	return n
}

// Idle reports whether no messages are in flight or queued anywhere.
func (m *Mesh) Idle() bool {
	if len(m.events) > 0 {
		return false
	}
	for _, in := range m.inboxes {
		if len(in) > 0 {
			return false
		}
	}
	return true
}

// Messages returns the total number of messages sent.
func (m *Mesh) Messages() uint64 { return m.messages }

// AvgHops returns the mean hop count over all messages sent.
func (m *Mesh) AvgHops() float64 {
	if m.messages == 0 {
		return 0
	}
	return float64(m.hopsSum) / float64(m.messages)
}
