package interconnect

import (
	"sort"

	"rowsim/internal/coherence"
)

// This file is the mesh's half of the deterministic "choice point"
// interface the model checker (internal/mcheck) drives. In normal
// simulation, delivery order is fixed by the timing model: Tick moves
// every message whose arrival cycle has passed. The checker instead
// wants to explore every delivery order the protocol must tolerate, so
// it bypasses Tick entirely: it asks which queued messages are
// eligible to fire next under an ordering discipline, picks one, and
// extracts it with TakeSeq for direct hand-off to the destination
// (Directory.Handle / Private.Deliver). Messages never transit the
// inboxes in this mode.
//
// Two ordering disciplines bound the legal delivery orders:
//
//   - per-channel FIFO: each (src,dst) channel delivers in send order,
//     but channels interleave freely. This is what the timed mesh
//     guarantees under fault injection (lastAt), and what the fault
//     injector's legal reorderings can produce across channels.
//   - global FIFO: the single send-order interleaving, the most
//     conservative network (no reordering anywhere).
//
// The timed mesh without faults sits between the two: unequal
// source-side delays can reorder a channel, but only by bounded
// amounts. Checking the per-channel-FIFO envelope covers every order
// the timed model can produce across channels.

// Deliverable identifies one queued message eligible to fire next.
type Deliverable struct {
	Seq      uint64
	Src, Dst int
}

// Deliverables appends to dst the messages eligible for out-of-band
// delivery, in ascending send (seq) order. With perChannel true every
// channel's oldest message is eligible; otherwise only the globally
// oldest is. The result identifies choices for TakeSeq.
func (m *Mesh) Deliverables(perChannel bool, dst []Deliverable) []Deliverable {
	dst = dst[:0]
	if len(m.events) == 0 {
		return dst
	}
	if !perChannel {
		best := 0
		for i := range m.events {
			if m.events[i].seq < m.events[best].seq {
				best = i
			}
		}
		e := &m.events[best]
		return append(dst, Deliverable{Seq: e.seq, Src: e.msg.Src, Dst: e.msg.Dst})
	}
	// Oldest per (src,dst) channel. A flat table over node pairs keeps
	// the scan deterministic (no map iteration).
	heads := make([]int, m.nodes*m.nodes)
	for i := range heads {
		heads[i] = -1
	}
	for i := range m.events {
		ch := m.events[i].msg.Src*m.nodes + m.events[i].msg.Dst
		if heads[ch] < 0 || m.events[i].seq < m.events[heads[ch]].seq {
			heads[ch] = i
		}
	}
	for _, idx := range heads {
		if idx < 0 {
			continue
		}
		e := &m.events[idx]
		dst = append(dst, Deliverable{Seq: e.seq, Src: e.msg.Src, Dst: e.msg.Dst})
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].Seq < dst[j].Seq })
	return dst
}

// TakeSeq removes the queued message with the given send sequence and
// returns it, or nil when no such message is queued. Ownership of the
// message transfers to the caller, which must deliver it to its
// destination (the destination's handler consumes or retains it under
// the usual pool discipline).
func (m *Mesh) TakeSeq(seq uint64) *coherence.Msg {
	idx := -1
	for i := range m.events {
		if m.events[i].seq == seq {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	msg := m.events[idx].msg
	n := len(m.events) - 1
	m.events[idx] = m.events[n]
	m.events[n] = event{}
	m.events = m.events[:n]
	if idx < n {
		m.events.siftDown(idx)
		m.events.siftUp(idx)
	}
	return msg
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// ForEachPending calls fn for every queued (not yet delivered) message
// in ascending send order. Checkers use it to encode the network's
// state; fn must not mutate the message.
func (m *Mesh) ForEachPending(fn func(seq uint64, msg *coherence.Msg)) {
	idx := make([]int, len(m.events))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.events[idx[a]].seq < m.events[idx[b]].seq })
	for _, i := range idx {
		fn(m.events[i].seq, m.events[i].msg)
	}
}

// MeshEventSnap is one queued delivery, message copied by value.
type MeshEventSnap struct {
	At, Seq uint64
	Msg     coherence.Msg
}

// MeshSnap is a deep copy of the mesh's mutable delivery state. The
// diagnostic trace ring is excluded: it feeds error reports only and
// never protocol decisions.
type MeshSnap struct {
	Now, Seq uint64
	Events   []MeshEventSnap
	Inboxes  [][]coherence.Msg
	LastAt   []uint64

	Messages, HopsSum, Dropped, Dupes uint64
}

// Snapshot captures the queued events, inboxes and counters. Events
// are stored in heap-array order, so Restore rebuilds an identical
// heap by copying them back in place.
func (m *Mesh) Snapshot() MeshSnap {
	s := MeshSnap{
		Now: m.now, Seq: m.seq,
		Messages: m.messages, HopsSum: m.hopsSum, Dropped: m.dropped, Dupes: m.dupes,
	}
	for i := range m.events {
		s.Events = append(s.Events, MeshEventSnap{At: m.events[i].at, Seq: m.events[i].seq, Msg: *m.events[i].msg})
	}
	if len(m.inboxes) > 0 {
		s.Inboxes = make([][]coherence.Msg, len(m.inboxes))
		for n, in := range m.inboxes {
			for _, msg := range in {
				s.Inboxes[n] = append(s.Inboxes[n], *msg)
			}
		}
	}
	if m.lastAt != nil {
		s.LastAt = append([]uint64(nil), m.lastAt...)
	}
	return s
}

// Restore rewinds the mesh to a previously captured MeshSnap. Queued
// messages are reconstituted as fresh allocations, never drawn from
// the pool: the pool's counters are restored separately, and a Get
// here would double-count the in-flight population.
func (m *Mesh) Restore(s MeshSnap) {
	m.now, m.seq = s.Now, s.Seq
	m.messages, m.hopsSum, m.dropped, m.dupes = s.Messages, s.HopsSum, s.Dropped, s.Dupes
	m.events = m.events[:0]
	for i := range s.Events {
		msg := new(coherence.Msg)
		*msg = s.Events[i].Msg
		m.events = append(m.events, event{at: s.Events[i].At, seq: s.Events[i].Seq, msg: msg})
	}
	for n := range m.inboxes {
		m.inboxes[n] = m.inboxes[n][:0]
	}
	for n, in := range s.Inboxes {
		for i := range in {
			msg := new(coherence.Msg)
			*msg = in[i]
			m.inboxes[n] = append(m.inboxes[n], msg)
		}
	}
	if s.LastAt != nil {
		if m.lastAt == nil {
			m.lastAt = make([]uint64, len(s.LastAt))
		}
		copy(m.lastAt, s.LastAt)
	} else if m.lastAt != nil {
		for i := range m.lastAt {
			m.lastAt[i] = 0
		}
	}
}
