package interconnect

import (
	"testing"

	"rowsim/internal/coherence"
)

// TestMeshSendDrainSteadyStateAllocsZero enforces the allocation-free
// hot path: once the event heap, inboxes, trace ring and message pool
// have grown to steady state, a full send -> Tick -> Drain -> release
// round trip must not allocate at all. This is the contract that keeps
// GC time out of the simulator's per-cycle loop; if this test starts
// failing, something on the hot path regressed to heap allocation.
func TestMeshSendDrainSteadyStateAllocsZero(t *testing.T) {
	m := NewMesh(16, 1, 2, 4)
	pool := &coherence.MsgPool{}
	m.SetMsgPool(pool)
	cyc := uint64(0)
	round := func() {
		cyc += 8 // larger than any latency in this mesh: all events arrive
		m.Tick(cyc)
		for n := 0; n < 16; n++ {
			for _, d := range m.Drain(n) {
				pool.Put(d)
			}
		}
		m.Send(pool.New(coherence.Msg{Type: coherence.MsgGetS, Src: 0, Dst: 5, Line: 0x40}))
		m.Send(pool.New(coherence.Msg{Type: coherence.MsgData, Src: 5, Dst: 0, Line: 0x40}))
	}
	for i := 0; i < 512; i++ {
		round() // grow every structure to steady state
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Fatalf("steady-state mesh round trip allocates %v allocs/op, want 0", avg)
	}
}

// TestCacheDirectorySteadyStateAllocsZero runs the same check one
// level up: a directory GetX/UnblockX transaction with pooled messages
// must be allocation-free in steady state.
func TestCacheDirectorySteadyStateAllocsZero(t *testing.T) {
	pool := &coherence.MsgPool{}
	m := NewMesh(33, 1, 2, 4)
	m.SetMsgPool(pool)
	d := coherence.NewDirectory(32, 0, m, 4<<20, 16, 64, 35, 160)
	d.SetMsgPool(pool)
	cyc := uint64(0)
	round := func() {
		cyc += 512 // beyond DRAM latency: every reply arrives
		m.Tick(cyc)
		for n := 0; n < 33; n++ {
			for _, msg := range m.Drain(n) {
				pool.Put(msg) // stand-in for the requesting cache
			}
		}
		d.SetCycle(cyc)
		line := uint64(cyc%4096) * 64
		d.Handle(pool.New(coherence.Msg{Type: coherence.MsgGetX, Line: line, Src: 0, Dst: 32, Requestor: 0}))
		d.Handle(pool.New(coherence.Msg{Type: coherence.MsgUnblockX, Line: line, Src: 0, Dst: 32, Requestor: 0}))
	}
	for i := 0; i < 8192; i++ {
		round() // touch every line slot so the directory map stops growing
	}
	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Fatalf("steady-state directory transaction allocates %v allocs/op, want 0", avg)
	}
}
