package interconnect

import (
	"testing"
	"testing/quick"

	"rowsim/internal/coherence"
)

func newTestMesh() *Mesh { return NewMesh(40, 1, 2, 4) }

func TestLatencySymmetric(t *testing.T) {
	m := newTestMesh()
	f := func(a, b uint8) bool {
		x, y := int(a)%40, int(b)%40
		return m.Latency(x, y) == m.Latency(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyTriangleInequality(t *testing.T) {
	m := newTestMesh()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%40, int(b)%40, int(c)%40
		// Hop counts obey the triangle inequality on a mesh.
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLatencyIsBase(t *testing.T) {
	m := newTestMesh()
	if got := m.Latency(3, 3); got != 4 {
		t.Fatalf("self latency = %d, want base 4", got)
	}
}

func TestDeliveryTiming(t *testing.T) {
	m := newTestMesh()
	msg := &coherence.Msg{Type: coherence.MsgGetS, Src: 0, Dst: 1}
	m.Tick(10)
	m.Send(msg)
	lat := m.Latency(0, 1)
	m.Tick(10 + lat - 1)
	if got := m.Drain(1); got != nil {
		t.Fatalf("message delivered a cycle early: %v", got)
	}
	m.Tick(10 + lat)
	got := m.Drain(1)
	if len(got) != 1 || got[0] != msg {
		t.Fatalf("expected the message at exactly t+latency, got %v", got)
	}
}

func TestSendAfterAddsDelay(t *testing.T) {
	m := newTestMesh()
	m.Tick(0)
	m.SendAfter(&coherence.Msg{Src: 0, Dst: 1}, 100)
	m.Tick(m.Latency(0, 1) + 99)
	if m.Drain(1) != nil {
		t.Fatal("SendAfter delivered early")
	}
	m.Tick(m.Latency(0, 1) + 100)
	if len(m.Drain(1)) != 1 {
		t.Fatal("SendAfter never delivered")
	}
}

func TestFIFOOrderSameEndpoints(t *testing.T) {
	m := newTestMesh()
	m.Tick(0)
	a := &coherence.Msg{Line: 1, Src: 0, Dst: 5}
	b := &coherence.Msg{Line: 2, Src: 0, Dst: 5}
	m.Send(a)
	m.Send(b)
	m.Tick(1000)
	got := m.Drain(5)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("order not preserved: %v", got)
	}
}

func TestIdle(t *testing.T) {
	m := newTestMesh()
	if !m.Idle() {
		t.Fatal("fresh mesh not idle")
	}
	m.Tick(0)
	m.Send(&coherence.Msg{Src: 0, Dst: 2})
	if m.Idle() {
		t.Fatal("mesh with in-flight message reported idle")
	}
	m.Tick(1000)
	if m.Idle() {
		t.Fatal("undrained inbox reported idle")
	}
	m.Drain(2)
	if !m.Idle() {
		t.Fatal("mesh should be idle after drain")
	}
}

func TestStats(t *testing.T) {
	m := newTestMesh()
	m.Tick(0)
	m.Send(&coherence.Msg{Src: 0, Dst: 1})
	m.Send(&coherence.Msg{Src: 0, Dst: 39})
	if m.Messages() != 2 {
		t.Fatalf("messages = %d", m.Messages())
	}
	if m.AvgHops() <= 0 {
		t.Fatalf("avg hops = %v", m.AvgHops())
	}
}

func TestUnknownDestinationPanics(t *testing.T) {
	m := newTestMesh()
	defer func() {
		if recover() == nil {
			t.Fatal("send to unknown node did not panic")
		}
	}()
	m.Send(&coherence.Msg{Src: 0, Dst: 40})
}

// TestQuickEverythingDelivered: any batch of messages is fully
// delivered once the clock passes the maximum latency.
func TestQuickEverythingDelivered(t *testing.T) {
	f := func(dsts []uint8) bool {
		m := newTestMesh()
		m.Tick(0)
		for _, d := range dsts {
			m.Send(&coherence.Msg{Src: int(d) % 7, Dst: int(d) % 40})
		}
		m.Tick(10000)
		total := 0
		for n := 0; n < 40; n++ {
			total += len(m.Drain(n))
		}
		return total == len(dsts) && m.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
