// Package trace defines the instruction representation consumed by the
// simulated cores. Instructions are produced ahead of time by the
// workload generators (the simulator is trace-driven, like the Sniper
// front-end used by the paper), but all timing — including the
// contention among cores — emerges from the cycle-level model.
package trace

import "fmt"

// Kind classifies an instruction.
type Kind uint8

const (
	// IntOp is a simple integer ALU operation.
	IntOp Kind = iota
	// IntMul is a long-latency integer operation.
	IntMul
	// FPOp is a floating-point operation.
	FPOp
	// Load reads memory.
	Load
	// Store writes memory; under TSO it retires through the store
	// buffer after commit.
	Store
	// Branch is a conditional branch; Taken carries its outcome for
	// the branch predictor.
	Branch
	// Atomic is an atomic read-modify-write. It decomposes into
	// load_lock / ALU / store_unlock micro-operations (Fig. 3 of the
	// paper) and occupies ROB, LQ, SB and AQ entries.
	Atomic
	// Fence is a full memory fence (mfence): it blocks younger memory
	// operations from issuing until it commits and the store buffer
	// drains. Used by the Fig. 2 microbenchmark variants.
	Fence
)

// String returns a short mnemonic.
func (k Kind) String() string {
	switch k {
	case IntOp:
		return "int"
	case IntMul:
		return "mul"
	case FPOp:
		return "fp"
	case Load:
		return "ld"
	case Store:
		return "st"
	case Branch:
		return "br"
	case Atomic:
		return "atomic"
	case Fence:
		return "fence"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AtomicKind identifies the RMW operation an Atomic performs. The
// distinction only matters for the Fig. 2 microbenchmark (SWAP locks
// regardless of the lock prefix on x86) and for ALU latency.
type AtomicKind uint8

const (
	// FAA is fetch-and-add.
	FAA AtomicKind = iota
	// CAS is compare-and-swap.
	CAS
	// SWAP is an unconditional exchange (xchgl).
	SWAP
)

// String returns the conventional name.
func (a AtomicKind) String() string {
	switch a {
	case FAA:
		return "FAA"
	case CAS:
		return "CAS"
	case SWAP:
		return "SWAP"
	}
	return fmt.Sprintf("rmw(%d)", uint8(a))
}

// NumRegs is the size of the architectural register file visible to
// the renamer. Register 0 is hardwired to "no register".
const NumRegs = 64

// Reg identifies an architectural register; 0 means unused.
type Reg uint8

// Instr is one trace instruction. The generator fills all fields; the
// core never mutates an Instr (per-dynamic-instance state lives in ROB
// entries, so a trace can be replayed after squashes).
type Instr struct {
	// PC is the (synthetic) program counter, used to index the branch
	// and contention predictors.
	PC uint64

	Kind Kind

	// Src1, Src2 are source registers (0 = unused). For memory ops
	// they feed address generation.
	Src1, Src2 Reg
	// Dst is the destination register (0 = none).
	Dst Reg

	// Addr is the virtual address accessed by Load/Store/Atomic.
	Addr uint64
	// Size is the access size in bytes.
	Size uint8

	// AtomicOp selects the RMW operation when Kind == Atomic.
	AtomicOp AtomicKind
	// NoLockPrefix marks an Atomic encoded without the x86 lock
	// prefix: it executes as a plain RMW (load+op+store) without cache
	// locking. SWAP ignores this (xchgl always locks). Only used by
	// the Fig. 2 microbenchmark.
	NoLockPrefix bool

	// Taken is the branch outcome when Kind == Branch.
	Taken bool
}

// IsMem reports whether the instruction occupies load/store queue
// resources.
func (in *Instr) IsMem() bool {
	return in.Kind == Load || in.Kind == Store || in.Kind == Atomic
}

// LocksLine reports whether this instruction performs cache locking:
// an Atomic with the lock prefix, or a SWAP (which always locks).
func (in *Instr) LocksLine() bool {
	if in.Kind != Atomic {
		return false
	}
	return !in.NoLockPrefix || in.AtomicOp == SWAP
}

// String renders the instruction for debugging.
func (in *Instr) String() string {
	switch in.Kind {
	case Load:
		return fmt.Sprintf("%#x: ld r%d <- [%#x]", in.PC, in.Dst, in.Addr)
	case Store:
		return fmt.Sprintf("%#x: st [%#x] <- r%d", in.PC, in.Addr, in.Src1)
	case Atomic:
		lock := "lock "
		if in.NoLockPrefix {
			lock = ""
		}
		return fmt.Sprintf("%#x: %s%s [%#x]", in.PC, lock, in.AtomicOp, in.Addr)
	case Branch:
		return fmt.Sprintf("%#x: br taken=%v", in.PC, in.Taken)
	case Fence:
		return fmt.Sprintf("%#x: mfence", in.PC)
	default:
		return fmt.Sprintf("%#x: %s r%d <- r%d, r%d", in.PC, in.Kind, in.Dst, in.Src1, in.Src2)
	}
}

// Program is the per-core instruction sequence. Cores index into it
// with a fetch pointer, which squashes rewind.
type Program []Instr

// Stats summarizes a program's composition; used by tests and by the
// Fig. 5 atomic-intensity table.
type Stats struct {
	Total    int
	Loads    int
	Stores   int
	Branches int
	Atomics  int
	Fences   int
}

// Summarize scans the program and counts instruction kinds.
func (p Program) Summarize() Stats {
	var s Stats
	s.Total = len(p)
	for i := range p {
		switch p[i].Kind {
		case Load:
			s.Loads++
		case Store:
			s.Stores++
		case Branch:
			s.Branches++
		case Atomic:
			s.Atomics++
		case Fence:
			s.Fences++
		}
	}
	return s
}

// AtomicsPer10K returns the program's atomic intensity in atomics per
// ten kilo-instructions, the metric of Fig. 5.
func (p Program) AtomicsPer10K() float64 {
	if len(p) == 0 {
		return 0
	}
	s := p.Summarize()
	return float64(s.Atomics) / float64(s.Total) * 10000
}
