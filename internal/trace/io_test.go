package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleProgram() Program {
	return Program{
		{PC: 0x400000, Kind: Load, Src1: 3, Dst: 5, Addr: 0x40001000, Size: 8},
		{PC: 0x400004, Kind: Store, Src1: 5, Src2: 3, Addr: 0x40001040, Size: 8},
		{PC: 0x400008, Kind: Atomic, Src1: 1, Dst: 2, Addr: 0x10000000, Size: 8, AtomicOp: CAS},
		{PC: 0x40000c, Kind: Atomic, Dst: 2, Addr: 0x10000040, Size: 8, AtomicOp: SWAP, NoLockPrefix: true},
		{PC: 0x400010, Kind: Branch, Src1: 2, Taken: true},
		{PC: 0x400014, Kind: Fence},
		{PC: 0x400018, Kind: IntMul, Src1: 1, Src2: 2, Dst: 3},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := []Program{sampleProgram(), sampleProgram()[:3], {}}
	var buf bytes.Buffer
	if err := WritePrograms(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPrograms(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("cores = %d, want %d", len(out), len(in))
	}
	for c := range in {
		if len(out[c]) != len(in[c]) {
			t.Fatalf("core %d: %d instrs, want %d", c, len(out[c]), len(in[c]))
		}
		for i := range in[c] {
			if out[c][i] != in[c][i] {
				t.Fatalf("core %d instr %d: %+v != %+v", c, i, out[c][i], in[c][i])
			}
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadPrograms(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPrograms(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTraceRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrograms(&buf, []Program{{}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version
	if _, err := ReadPrograms(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrograms(&buf, []Program{sampleProgram()}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadPrograms(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceRoundTripQuick(t *testing.T) {
	f := func(pcs []uint64, kinds []uint8) bool {
		var prog Program
		for i := range pcs {
			var kb uint8
			if len(kinds) > 0 {
				kb = kinds[i%len(kinds)]
			}
			k := Kind(kb % 8)
			prog = append(prog, Instr{
				PC: pcs[i], Kind: k,
				Src1: Reg(uint8(pcs[i]) % 64), Dst: Reg(uint8(pcs[i]>>8) % 64),
				Addr: pcs[i] * 8, Size: 8,
			})
		}
		var buf bytes.Buffer
		if err := WritePrograms(&buf, []Program{prog}); err != nil {
			return false
		}
		out, err := ReadPrograms(&buf)
		if err != nil || len(out) != 1 || len(out[0]) != len(prog) {
			return false
		}
		for i := range prog {
			if out[0][i] != prog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
