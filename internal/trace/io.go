package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace files let a generated workload be saved and replayed
// bit-exactly (reproduction artifacts): a small header, then per core
// a length-prefixed run of fixed-width instruction records.

const (
	traceMagic   = uint32(0x52575354) // "RWST"
	traceVersion = uint32(1)
)

// WritePrograms serializes per-core programs.
func WritePrograms(w io.Writer, progs []Program) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	var hdr [12]byte
	le.PutUint32(hdr[0:], traceMagic)
	le.PutUint32(hdr[4:], traceVersion)
	le.PutUint32(hdr[8:], uint32(len(progs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [32]byte
	for _, prog := range progs {
		var n [8]byte
		le.PutUint64(n[:], uint64(len(prog)))
		if _, err := bw.Write(n[:]); err != nil {
			return err
		}
		for i := range prog {
			in := &prog[i]
			le.PutUint64(rec[0:], in.PC)
			le.PutUint64(rec[8:], in.Addr)
			rec[16] = byte(in.Kind)
			rec[17] = byte(in.Src1)
			rec[18] = byte(in.Src2)
			rec[19] = byte(in.Dst)
			rec[20] = in.Size
			rec[21] = byte(in.AtomicOp)
			flags := byte(0)
			if in.NoLockPrefix {
				flags |= 1
			}
			if in.Taken {
				flags |= 2
			}
			rec[22] = flags
			rec[23] = 0
			le.PutUint64(rec[24:], 0) // reserved
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadPrograms deserializes programs written by WritePrograms.
func ReadPrograms(r io.Reader) ([]Program, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got := le.Uint32(hdr[0:]); got != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", got)
	}
	if got := le.Uint32(hdr[4:]); got != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", got)
	}
	cores := le.Uint32(hdr[8:])
	const maxCores = 1 << 16
	if cores > maxCores {
		return nil, fmt.Errorf("trace: implausible core count %d", cores)
	}
	progs := make([]Program, cores)
	var rec [32]byte
	for c := range progs {
		var n [8]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, fmt.Errorf("trace: reading core %d length: %w", c, err)
		}
		count := le.Uint64(n[:])
		const maxInstrs = 1 << 32
		if count > maxInstrs {
			return nil, fmt.Errorf("trace: implausible instruction count %d", count)
		}
		prog := make(Program, count)
		for i := range prog {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: reading core %d instr %d: %w", c, i, err)
			}
			prog[i] = Instr{
				PC:           le.Uint64(rec[0:]),
				Addr:         le.Uint64(rec[8:]),
				Kind:         Kind(rec[16]),
				Src1:         Reg(rec[17]),
				Src2:         Reg(rec[18]),
				Dst:          Reg(rec[19]),
				Size:         rec[20],
				AtomicOp:     AtomicKind(rec[21]),
				NoLockPrefix: rec[22]&1 != 0,
				Taken:        rec[22]&2 != 0,
			}
		}
		progs[c] = prog
	}
	return progs, nil
}
