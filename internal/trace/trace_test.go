package trace

import "testing"

func TestIsMem(t *testing.T) {
	cases := []struct {
		kind Kind
		want bool
	}{
		{IntOp, false}, {IntMul, false}, {FPOp, false},
		{Load, true}, {Store, true}, {Atomic, true},
		{Branch, false}, {Fence, false},
	}
	for _, c := range cases {
		in := Instr{Kind: c.kind}
		if in.IsMem() != c.want {
			t.Errorf("IsMem(%v) = %v, want %v", c.kind, in.IsMem(), c.want)
		}
	}
}

func TestLocksLine(t *testing.T) {
	cases := []struct {
		kind     Kind
		op       AtomicKind
		noPrefix bool
		want     bool
	}{
		{Atomic, FAA, false, true},  // lock faa
		{Atomic, FAA, true, false},  // plain faa: no locking
		{Atomic, CAS, true, false},  // plain cas
		{Atomic, SWAP, true, true},  // xchgl always locks
		{Atomic, SWAP, false, true}, // lock xchgl
		{Load, FAA, false, false},   // not an atomic
	}
	for _, c := range cases {
		in := Instr{Kind: c.kind, AtomicOp: c.op, NoLockPrefix: c.noPrefix}
		if in.LocksLine() != c.want {
			t.Errorf("LocksLine(%v,%v,noPrefix=%v) = %v, want %v",
				c.kind, c.op, c.noPrefix, in.LocksLine(), c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	p := Program{
		{Kind: Load}, {Kind: Load}, {Kind: Store},
		{Kind: Branch}, {Kind: Atomic}, {Kind: Fence}, {Kind: IntOp},
	}
	s := p.Summarize()
	if s.Total != 7 || s.Loads != 2 || s.Stores != 1 || s.Branches != 1 || s.Atomics != 1 || s.Fences != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestAtomicsPer10K(t *testing.T) {
	p := make(Program, 1000)
	for i := 0; i < 5; i++ {
		p[i*100].Kind = Atomic
	}
	if got := p.AtomicsPer10K(); got != 50 {
		t.Fatalf("AtomicsPer10K = %v, want 50", got)
	}
	var empty Program
	if empty.AtomicsPer10K() != 0 {
		t.Fatal("empty program intensity must be 0")
	}
}

func TestStringFormats(t *testing.T) {
	// Smoke-test every String path (panics or empty output would be bugs).
	instrs := []Instr{
		{Kind: Load, PC: 4, Dst: 1, Addr: 0x100},
		{Kind: Store, PC: 8, Src1: 2, Addr: 0x140},
		{Kind: Atomic, PC: 12, AtomicOp: FAA, Addr: 0x180},
		{Kind: Atomic, PC: 12, AtomicOp: CAS, NoLockPrefix: true, Addr: 0x180},
		{Kind: Branch, PC: 16, Taken: true},
		{Kind: Fence, PC: 20},
		{Kind: IntOp, PC: 24, Dst: 3, Src1: 1, Src2: 2},
	}
	for _, in := range instrs {
		if in.String() == "" {
			t.Errorf("empty String for %v", in.Kind)
		}
	}
	for _, k := range []Kind{IntOp, IntMul, FPOp, Load, Store, Branch, Atomic, Fence, Kind(99)} {
		if k.String() == "" {
			t.Errorf("empty Kind.String for %d", k)
		}
	}
	for _, a := range []AtomicKind{FAA, CAS, SWAP, AtomicKind(9)} {
		if a.String() == "" {
			t.Errorf("empty AtomicKind.String for %d", a)
		}
	}
}
