package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// directive is one parsed //rowlint:ignore comment.
type directive struct {
	file     string
	line     int // line the directive applies to
	analyzer string
	reason   string
}

// directiveSet indexes directives by (file, line, analyzer).
type directiveSet map[string]*directive

func directiveKey(file string, line int, analyzer string) string {
	return file + "\x00" + strconv.Itoa(line) + "\x00" + analyzer
}

func (s directiveSet) match(f Finding) *directive {
	if d := s[directiveKey(f.Pos.Filename, f.Pos.Line, f.Analyzer)]; d != nil {
		return d
	}
	if f.Analyzer == NoAllocEscape.Name {
		// A //rowlint:ignore noalloc on the line also covers the
		// compiler-proven diagnostic for the same allocation: the
		// justification is the same, and requiring it twice would just
		// duplicate the reason text.
		return s[directiveKey(f.Pos.Filename, f.Pos.Line, NoAlloc.Name)]
	}
	return nil
}

// noallocMarker is the doc-comment annotation opting a function into
// the noalloc analyzer.
const noallocMarker = "//rowlint:noalloc"

// ignorePrefix introduces a suppression directive.
const ignorePrefix = "//rowlint:ignore"

// parseDirectives extracts every //rowlint: directive from the
// package's comments. Malformed directives — a missing analyzer name,
// a missing reason, an unknown analyzer, or an unknown verb — are
// returned as findings under the pseudo-analyzer "rowlint": a
// suppression that silently fails to suppress (or fails to record why)
// is exactly the kind of rot the pass exists to stop.
//
// Placement: a directive on a line of its own applies to the next
// line; a directive trailing code applies to its own line.
func parseDirectives(pkg *Package) (directiveSet, []Finding) {
	set := make(directiveSet)
	var malformed []Finding
	report := func(pos token.Pos, msg string) {
		malformed = append(malformed, Finding{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "rowlint",
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//rowlint:") {
					continue
				}
				if text == noallocMarker || strings.HasPrefix(text, noallocMarker+" ") {
					continue // function annotation, handled by noalloc
				}
				if arg, ok := markerText(text, ownerMarker); ok {
					if _, valid := parseDomain(arg); !valid {
						report(c.Pos(), "//rowlint:owner needs exactly one domain out of "+domainSpellings)
					}
					continue // ownership annotation, consumed by Ownership()
				}
				if arg, ok := markerText(text, seamMarker); ok {
					if arg == "" {
						report(c.Pos(), "//rowlint:seam is missing the mandatory kind ("+seamKindSpellings+") and reason")
						continue
					}
					if _, ok := parseSeamDecl(arg); !ok {
						kindWord, reason, _ := strings.Cut(arg, " ")
						if _, valid := parseSeamKind(kindWord); !valid {
							report(c.Pos(), "//rowlint:seam "+kindWord+" is not a checkable seam kind (want one of "+seamKindSpellings+"), followed by the mandatory reason")
						} else if strings.TrimSpace(reason) == "" {
							report(c.Pos(), "//rowlint:seam "+kindWord+" is missing the mandatory reason")
						}
					}
					continue // seam declaration, consumed by Ownership()
				}
				if _, ok := markerText(text, entryMarker); ok {
					continue // walk root, consumed by Ownership()
				}
				if !strings.HasPrefix(text, ignorePrefix) {
					report(c.Pos(), "unknown rowlint directive "+firstField(text)+
						" (want //rowlint:ignore, //rowlint:noalloc, //rowlint:owner, //rowlint:seam or //rowlint:entry)")
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					report(c.Pos(), "unknown rowlint directive "+firstField(text)+
						" (want //rowlint:ignore, //rowlint:noalloc, //rowlint:owner, //rowlint:seam or //rowlint:entry)")
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "//rowlint:ignore is missing the analyzer name and reason")
					continue
				}
				name := fields[0]
				if !analyzerKnown(name) {
					report(c.Pos(), "//rowlint:ignore names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//rowlint:ignore "+name+" is missing the mandatory reason")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if standalone(pkg.Src[pos.Filename], pos) {
					line++
				}
				set[directiveKey(pos.Filename, line, name)] = &directive{
					file:     pos.Filename,
					line:     line,
					analyzer: name,
					reason:   strings.Join(fields[1:], " "),
				}
			}
		}
	}
	return set, malformed
}

// markerText matches a directive spelling against a marker, returning
// its trimmed argument text. Only exact or space-separated forms match
// (so //rowlint:ownerx stays an unknown directive).
func markerText(text, marker string) (string, bool) {
	if text == marker {
		return "", true
	}
	if rest, ok := strings.CutPrefix(text, marker+" "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// standalone reports whether only whitespace precedes the comment on
// its line (the directive then applies to the following line).
func standalone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return len(strings.TrimSpace(string(src[start:pos.Offset]))) == 0
}

func firstField(s string) string {
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return s
}

// funcHasNoallocAnnotation reports whether the declaration's doc
// comment carries //rowlint:noalloc.
func funcHasNoallocAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == noallocMarker || strings.HasPrefix(text, noallocMarker+" ") {
			return true
		}
	}
	return false
}
