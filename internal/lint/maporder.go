package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map inside the deterministic core.
// Go randomizes map iteration order per run, so any map range whose
// order can reach simulation results, message ordering, error text or
// trace output silently breaks byte-identical sweeps and resumes.
//
// The one blessed idiom is collect-then-sort — a loop whose body only
// appends the keys to a slice that is sorted in the same block before
// use:
//
//	keys := make([]uint64, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
//
// Everything else needs either a rewrite or a
// //rowlint:ignore maporder <reason> proving order-independence.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags randomized map iteration in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !pass.Deterministic() {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.Pkg.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					continue
				}
				if collectThenSorted(pass.Pkg, rs, list[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(),
					"range over map: iteration order is randomized; sort the keys before use (collect-then-sort) or justify with //rowlint:ignore maporder <reason>")
			}
			return true
		})
	}
}

// collectThenSorted recognizes the blessed idiom: the range body is a
// single `s = append(s, key)` and a later statement in the same block
// sorts s (sort.Slice/Ints/Strings/Float64s or slices.Sort*).
func collectThenSorted(pkg *Package, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || !sameObject(pkg, src, dst) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || !sameObject(pkg, arg, key) {
		return false
	}
	// Look for the sort of dst later in the enclosing block.
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || !isPackage(pkg, pkgID, "sort", "slices") {
			continue
		}
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Ints", "Strings", "Float64s", "Sort", "SortFunc", "SortStableFunc":
		default:
			continue
		}
		if first, ok := call.Args[0].(*ast.Ident); ok && sameObject(pkg, first, dst) {
			return true
		}
	}
	return false
}

// sameObject reports whether two identifiers resolve to the same
// object (falling back to name equality when types are unavailable).
func sameObject(pkg *Package, a, b *ast.Ident) bool {
	oa, ob := pkg.ObjectOf(a), pkg.ObjectOf(b)
	if oa != nil && ob != nil {
		return oa == ob
	}
	return a.Name == b.Name
}

// isBuiltin reports whether the identifier resolves to the predeclared
// builtin of that name (make, new, append, panic, ...) rather than a
// shadowing declaration. With no type information it trusts the name.
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	obj := pkg.ObjectOf(id)
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// isPackage reports whether the identifier names one of the given
// imported packages.
func isPackage(pkg *Package, id *ast.Ident, paths ...string) bool {
	if o := pkg.ObjectOf(id); o != nil {
		pn, ok := o.(*types.PkgName)
		if !ok {
			return false
		}
		for _, p := range paths {
			if pn.Imported().Path() == p {
				return true
			}
		}
		return false
	}
	for _, p := range paths {
		base := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			base = p[i+1:]
		}
		if id.Name == base {
			return true
		}
	}
	return false
}
