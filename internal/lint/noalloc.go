package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces hot-path purity: a function whose doc comment
// carries //rowlint:noalloc opts into a ban on allocation-prone
// constructs. The AllocsPerRun tests pin the steady state of the mesh,
// directory and private-cache hot paths at exactly zero allocations;
// this analyzer keeps the constructs that would silently reintroduce
// them from creeping in between benchmark runs:
//
//   - calls into package fmt (every verb formats through interfaces)
//   - function literals capturing enclosing locals (closure allocation)
//   - append to a local slice declared without capacity
//     (append to recycled fields/params is amortized-free and legal)
//   - map, slice, make and new expressions
//   - interface boxing: passing, assigning or converting a concrete
//     value into an interface, and panic (its operand is boxed)
//
// The analysis propagates one level through the package's call graph:
// a //rowlint:noalloc function calling a same-package callee that is
// itself not annotated is checked against the callee's body — a callee
// containing allocation-prone constructs is reported at the call site.
// Annotated callees are trusted here (they are checked in full on
// their own); cross-package and interface calls are trusted too, and
// propagation is deliberately one level deep so a finding is always
// either in the annotated function or one call away from it. Cold
// branches inside a hot function — error reporting, lazy
// initialization — carry //rowlint:ignore noalloc <reason>; an
// allocating callee is fixed by annotating it (and suppressing inside
// it where justified) or by hoisting the call off the hot path.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "bans allocation-prone constructs in //rowlint:noalloc functions and their direct callees",
	Run:  runNoAlloc,
}

// reporter abstracts the finding sink so the same construct walk both
// reports (annotated functions) and probes (their callees).
type reporter func(pos token.Pos, format string, args ...any)

func runNoAlloc(pass *Pass) {
	decls := packageFuncDecls(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasNoallocAnnotation(fd) {
				continue
			}
			walkAllocs(pass.Pkg, fd, pass.Reportf)
			checkCallees(pass, fd, decls)
		}
	}
}

// packageFuncDecls indexes the package's function and method
// declarations by their type-checker objects, for call-site resolution.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	if pkg.Info == nil {
		return decls
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// checkCallees is the interprocedural step: every same-package callee
// of an annotated function that is not itself annotated is probed for
// allocation-prone constructs, and a hit is reported at the call site.
func checkCallees(pass *Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	pkg := pass.Pkg
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeDecl(pkg, call, decls)
		if callee == nil || callee == fd || funcHasNoallocAnnotation(callee) {
			return true
		}
		if msg := probeAllocs(pkg, callee); msg.text != "" {
			pass.Reportf(call.Pos(), "call to %s, which allocates (%s at line %d); annotate the callee //rowlint:noalloc or move the call off the hot path",
				callee.Name.Name, msg.text, msg.line)
		}
		return true
	})
}

// calleeDecl resolves a call expression to a function or method
// declared in this package (nil for builtins, interface methods,
// function values and cross-package calls — all trusted).
func calleeDecl(pkg *Package, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) *ast.FuncDecl {
	if pkg.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return decls[obj]
}

// probed is the first allocation-prone construct found in a callee.
type probed struct {
	text string
	line int
}

// probeAllocs walks a non-annotated callee and returns its first
// allocation-prone construct (zero value when clean). Suppression
// directives inside the callee are not consulted: suppression belongs
// with an annotation, so the fix for a justified hit is to annotate
// the callee and carry the //rowlint:ignore there.
func probeAllocs(pkg *Package, fd *ast.FuncDecl) probed {
	var first probed
	walkAllocs(pkg, fd, func(pos token.Pos, format string, args ...any) {
		if first.text != "" {
			return
		}
		msg := fmt.Sprintf(format, args...)
		// Keep only the construct name: the advice half of the message
		// addresses the annotated-function case, not the call site.
		if i := strings.Index(msg, ";"); i >= 0 {
			msg = msg[:i]
		}
		first = probed{text: msg, line: pkg.Fset.Position(pos).Line}
	})
	return first
}

// walkAllocs reports every allocation-prone construct in fd's body.
func walkAllocs(pkg *Package, fd *ast.FuncDecl, report reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(pkg, fd, n, report)
		case *ast.FuncLit:
			if capt := capturedLocal(pkg, fd, n); capt != "" {
				report(n.Pos(), "closure captures local %q and may allocate; hoist the state or pass it explicitly", capt)
			}
		case *ast.CompositeLit:
			if t := pkg.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates; reuse a recycled buffer")
				case *types.Map:
					report(n.Pos(), "map literal allocates; hoist it to a package-level table")
				}
			}
		case *ast.AssignStmt:
			checkAllocBoxing(pkg, n, report)
		}
		return true
	})
}

// checkAllocCall handles the call-shaped bans: fmt, make/new, panic,
// append to unsized locals, and boxing at call boundaries.
func checkAllocCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, report reporter) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(pkg, fun) {
				report(call.Pos(), "make allocates; hoist the allocation out of the hot path or recycle")
				return
			}
		case "new":
			if isBuiltin(pkg, fun) {
				report(call.Pos(), "new allocates; recycle through a free list instead")
				return
			}
		case "panic":
			if isBuiltin(pkg, fun) {
				report(call.Pos(), "panic boxes its operand; raise a structured error on the cold path instead")
				return
			}
		case "append":
			if isBuiltin(pkg, fun) && len(call.Args) > 0 {
				if dst, ok := call.Args[0].(*ast.Ident); ok && unsizedLocalSlice(pkg, fd, dst) {
					report(call.Pos(), "append grows local slice %q declared without capacity; recycle a buffer or hoist a pre-sized one", dst.Name)
				}
				return
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && isPackage(pkg, id, "fmt") {
			report(call.Pos(), "fmt.%s formats through interfaces and allocates; keep formatting off the hot path", fun.Sel.Name)
			return
		}
	}
	// Conversion to an interface type: Iface(x) boxes x.
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if boxes(tv.Type, pkg.TypeOf(call.Args[0])) {
				report(call.Pos(), "conversion boxes a concrete value into interface %s and may allocate", tv.Type.String())
			}
			return
		}
	}
	// Boxing at the call boundary: a concrete argument bound to an
	// interface parameter.
	sig, ok := typeAsSignature(pkg.TypeOf(call.Fun))
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis != token.NoPos)
		if boxes(pt, pkg.TypeOf(arg)) {
			report(arg.Pos(), "argument boxes a concrete value into interface %s and may allocate", pt.String())
		}
	}
}

// paramTypeAt returns the parameter type argument i binds to,
// unwrapping variadics (a spread `s...` passes the slice verbatim).
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := params.At(n - 1).Type()
		if ellipsis {
			return last
		}
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}

// checkAllocBoxing flags assignments storing a concrete value into an
// interface-typed destination.
func checkAllocBoxing(pkg *Package, asg *ast.AssignStmt, report reporter) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i := range asg.Lhs {
		dt := pkg.TypeOf(asg.Lhs[i])
		if boxes(dt, pkg.TypeOf(asg.Rhs[i])) {
			report(asg.Rhs[i].Pos(), "assignment boxes a concrete value into interface %s and may allocate", dt.String())
		}
	}
}

// boxes reports whether storing a value of type src into dst converts
// a concrete value to an interface.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false // interface-to-interface carries the existing box
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// capturedLocal returns the name of a local from the enclosing
// function that the literal captures ("" when it captures nothing).
// Package-level objects and the literal's own locals are free.
func capturedLocal(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	if pkg.Info == nil {
		return ""
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		// Declared inside the enclosing function but outside the
		// literal: a capture.
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			captured = obj.Name()
			return false
		}
		return true
	})
	return captured
}

// unsizedLocalSlice reports whether the identifier is a slice variable
// declared locally in fd without a make(..., cap) (so append must grow
// it through the allocator). Parameters, fields, package-level slices
// and explicitly pre-sized locals are legal append targets: the hot
// paths recycle their backing arrays.
func unsizedLocalSlice(pkg *Package, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj, ok := pkg.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	pos := obj.Pos()
	if pos < fd.Pos() || pos >= fd.End() {
		return false // package-level or field
	}
	if isParam(fd, pos) {
		return false
	}
	rhs, found := declValue(pkg, fd, obj)
	if !found {
		// var s []T with no initializer: nil slice, unsized.
		return true
	}
	if rhs == nil {
		return true
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false // s := recycled()/x.f/x[i]: trusted source
	}
	if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" && isBuiltin(pkg, fn) {
		// Only make([]T, 0, cap) leaves room to append into; a
		// two-argument make starts full, so the first append grows it.
		return len(call.Args) < 3
	}
	return false // result of a call: trusted source
}

// isParam reports whether the position falls inside fd's parameter or
// receiver lists.
func isParam(fd *ast.FuncDecl, pos token.Pos) bool {
	if fd.Recv != nil && pos >= fd.Recv.Pos() && pos < fd.Recv.End() {
		return true
	}
	if fd.Type.Params != nil && pos >= fd.Type.Params.Pos() && pos < fd.Type.Params.End() {
		return true
	}
	if fd.Type.Results != nil && pos >= fd.Type.Results.Pos() && pos < fd.Type.Results.End() {
		return true
	}
	return false
}

// declValue finds the initializer expression of a local variable
// (nil, false when no declaration is found; nil, true for a bare var).
func declValue(pkg *Package, fd *ast.FuncDecl, obj *types.Var) (ast.Expr, bool) {
	var rhs ast.Expr
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pkg.Info.Defs[id] != obj {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				found = true
				return false
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pkg.Info.Defs[name] != obj {
					continue
				}
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				found = true
				return false
			}
		}
		return true
	})
	return rhs, found
}
