package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EpochSafe proves the parallel execution plan the ROADMAP's
// epoch/barrier scheme needs, on top of the shardown domain model.
// shardown proves every component only touches its own shard;
// epochsafe proves the *declared crossings* and the *schedule* are
// safe:
//
//   - Seam-effect verification: every //rowlint:seam carries a
//     checkable kind (same-index, buffered, reduction, init-only) and
//     the analyzer proves the seam's body — and, for seams declared on
//     interface methods, every implementation in the module — honours
//     it. A same-index seam may only write its own co-scheduled
//     instance and message payloads; a buffered seam may only write
//     message payloads and enqueue into mesh state; a reduction seam
//     may only bump commutative accumulators on sim-global state; an
//     init-only seam must be unreachable from the run loops.
//   - Init-only immutability: no function reachable from a
//     //rowlint:entry run loop may store to readonly-domain state
//     (config, traces) or to package-level variables of the
//     deterministic packages. Construction and Restore paths are
//     exempt by reachability, not by annotation.
//   - Determinism hazards inside shards: go statements, channel
//     operations, select, and calls into sync/sync-atomic are banned
//     in methods (and struct fields) of the indexed shard domains
//     core[i]/cache[i]/bank[i] — inside an epoch a shard must be
//     single-threaded, or the parallel schedule becomes
//     timing-dependent.
//
// Reachability follows direct calls plus interface fan-out
// (implementations across the whole module); function values stored
// before the run (checkpoint callbacks) are out of scope and must be
// covered by their own seam declarations.
//
// rowlint -shard-plan assembles these verdicts, the ownership report's
// domain map, and the epoch bound derived from the interconnect's hop
// costs into SHARDPLAN.json (see BuildShardPlan).
var EpochSafe = &Analyzer{
	Name: "epochsafe",
	Doc:  "proves seam kinds, init-only immutability and shard single-threadedness for the epoch-parallel plan",
	Run:  runEpochSafe,
}

func runEpochSafe(pass *Pass) {
	for _, f := range epochFindings(pass.Pkg) {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// epochCategory buckets epochsafe findings for the shard plan's
// check counters.
type epochCategory uint8

const (
	catSeam     epochCategory = iota // a seam body breaks its declared kind
	catInitOnly                      // a post-init write to frozen state
	catHazard                        // a sync/channel/goroutine hazard in a shard
)

// epochFinding is one structured epochsafe result: the analyzer
// reports it as a Finding, and the shard-plan builder attributes
// catSeam findings to their seam for per-seam verdicts.
type epochFinding struct {
	pos  token.Pos
	msg  string
	cat  epochCategory
	seam *types.Func // the declared seam a catSeam finding counts against
}

// epochFindings computes (and memoizes) the package's epochsafe
// findings. The memo is keyed by the loader's package-set size:
// loading more packages can add entries (changing reachability) or
// interface implementations, so the result is recomputed when the set
// grows.
func epochFindings(pkg *Package) []epochFinding {
	l := pkg.loader
	if l == nil {
		return nil
	}
	if pkg.epoch != nil && pkg.epochAt == len(l.pkgs) {
		return pkg.epoch
	}
	c := &epochChecker{
		pkg:   pkg,
		r:     resolver{pkg: pkg},
		reach: l.reachableFromEntries(),
	}
	c.checkSeams()
	c.checkInitOnly()
	c.checkHazards()
	sort.Slice(c.out, func(i, j int) bool { return c.out[i].pos < c.out[j].pos })
	pkg.epoch, pkg.epochAt = c.out, len(l.pkgs)
	if pkg.epoch == nil {
		pkg.epoch = []epochFinding{} // distinguish "computed, clean" from "not computed"
	}
	return c.out
}

type epochChecker struct {
	pkg   *Package
	r     resolver
	reach map[*types.Func]bool
	out   []epochFinding
}

func (c *epochChecker) report(pos token.Pos, cat epochCategory, seam *types.Func, format string, args ...any) {
	c.out = append(c.out, epochFinding{
		pos:  pos,
		msg:  fmt.Sprintf(format, args...),
		cat:  cat,
		seam: seam,
	})
}

// checkSeams verifies every seam whose obligation lands in this
// package: seams declared here on concrete functions, plus local
// implementations of seam-annotated interface methods declared
// anywhere in the module (the caller promises the kind; every
// implementation must honour it).
func (c *epochChecker) checkSeams() {
	for _, fn := range sortedSeamFuncs(c.pkg.Ownership().seams) {
		sd := c.pkg.Ownership().seams[fn]
		if sd.Kind == SeamKindInvalid {
			continue // the directive parser reports the malformed kind
		}
		if isInterfaceMethod(fn) {
			// The declaration site's only local obligation is init-only
			// reachability; bodies are checked at each implementation.
			if sd.Kind == SeamInitOnly && c.reach[fn] {
				c.report(fn.Pos(), catSeam, fn,
					"init-only seam %s is reachable from the //rowlint:entry run loops; an init-only crossing must stay confined to construction and restore paths",
					renderFunc(fn))
			}
			continue
		}
		c.checkSeamFunc(fn, fn, sd, renderFunc(fn))
	}
	for _, is := range moduleInterfaceSeams(c.pkg.loader) {
		if is.decl.Kind == SeamKindInvalid {
			continue
		}
		for _, impl := range c.pkg.loader.implementations(is.fn) {
			if impl.Pkg() != c.pkg.Types {
				continue
			}
			if _, own := c.pkg.Ownership().seams[impl]; own {
				continue // a direct seam annotation on the method wins
			}
			c.checkSeamFunc(impl, is.fn, is.decl,
				renderFunc(is.fn)+" (implemented by "+renderFunc(impl)+")")
		}
	}
}

// checkSeamFunc proves one concrete function against a seam
// declaration. fn is the body being checked; seam is the declared seam
// the verdict is attributed to (the interface method for
// implementations).
func (c *epochChecker) checkSeamFunc(fn, seam *types.Func, sd seamDecl, display string) {
	fd := c.pkg.FuncDecls()[fn]
	if fd == nil {
		return
	}
	if sd.Kind == SeamInitOnly {
		if c.reach[fn] {
			c.report(fd.Name.Pos(), catSeam, seam,
				"init-only seam %s is reachable from the //rowlint:entry run loops; an init-only crossing must stay confined to construction and restore paths",
				display)
		}
		return // the body is construction code; timing is the whole obligation
	}
	if fd.Body == nil {
		return
	}
	ctx := receiverDomain(c.pkg, fd)
	latches := latchStmts(fd.Body)
	walkAccesses(c.pkg, ctx, fd.Body, func(acc access) {
		switch sd.Kind {
		case SeamSameIndex:
			c.checkSameIndex(ctx, acc, seam, display)
		case SeamBuffered:
			c.checkBuffered(ctx, acc, seam, display)
		case SeamReduction:
			c.checkReduction(ctx, acc, seam, display, latches)
		}
	})
}

// checkSameIndex: the crossing stays on one shard because caller and
// callee instances share an index, so the body may behave like normal
// component code — writes confined to its own instance (and message
// payloads), no peer instances, no globals, and every call classified.
func (c *epochChecker) checkSameIndex(ctx Domain, acc access, seam *types.Func, display string) {
	switch acc.kind {
	case accWrite:
		pl := acc.target
		switch {
		case pl.pkgLevel:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: same-index seam %s writes package-level state %s; a same-index seam may only write its own %s instance and message payloads",
				display, acc.desc, ctx.Render())
		case pl.domain == DomainNone, pl.domain == DomainMessage:
		case pl.domain == ctx && !pl.crossInstance:
		case pl.domain == ctx:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: same-index seam %s writes peer-instance state %s; the crossing stays on one shard only when it touches the caller's own index",
				display, acc.desc)
		default:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: same-index seam %s writes %s state %s; a same-index seam may only write its own %s instance and message payloads",
				display, pl.domain.Render(), acc.desc, ctx.Render())
		}
	case accAlias:
		pl := acc.target
		if (pl.domain != DomainNone && pl.domain != DomainMessage && pl.domain != ctx && pl.domain != DomainReadonly) ||
			(pl.domain == ctx && pl.crossInstance) {
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: same-index seam %s leaks the address of %s state %s; writes through it would escape the shard",
				display, pl.domain.Render(), acc.desc)
		}
	case accCall:
		if classifyCall(c.pkg, ctx, acc).name == classUnclassified {
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: same-index seam %s makes an unclassified cross-domain call to %s; classify the edge before trusting the seam",
				display, acc.desc)
		}
	}
}

// checkBuffered: the crossing defers through the interconnect, so the
// body may only build message payloads and enqueue into mesh state.
func (c *epochChecker) checkBuffered(ctx Domain, acc access, seam *types.Func, display string) {
	switch acc.kind {
	case accWrite:
		pl := acc.target
		switch {
		case pl.pkgLevel:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: buffered seam %s writes package-level state %s; a buffered seam may only write message payloads and enqueue into mesh state",
				display, acc.desc)
		case pl.domain == DomainNone, pl.domain == DomainMessage, pl.domain == DomainMesh:
		default:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: buffered seam %s writes %s state %s; a buffered seam may only write message payloads and enqueue into mesh state",
				display, pl.domain.Render(), acc.desc)
		}
	case accAlias:
		pl := acc.target
		switch pl.domain {
		case DomainNone, DomainMessage, DomainMesh, DomainReadonly:
		default:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: buffered seam %s leaks the address of %s state %s out of the message path",
				display, pl.domain.Render(), acc.desc)
		}
	case accCall:
		if !c.seamCallAllowed(ctx, acc, SeamBuffered) {
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: buffered seam %s calls %s, which is neither mesh/message handling, provably read-only, nor a buffered seam",
				display, acc.desc)
		}
	}
}

// checkReduction: the crossing folds into sim-global accumulators
// that commute across shards, so per-shard replicas merge at epoch
// boundaries. Stores must be commutative: ++/--, op-assign with a
// commutative operator, growing/shrinking an owned free list, or a
// nil-guarded first-error latch.
func (c *epochChecker) checkReduction(ctx Domain, acc access, seam *types.Func, display string, latches map[ast.Node]bool) {
	switch acc.kind {
	case accWrite:
		pl := acc.target
		switch {
		case pl.pkgLevel:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: reduction seam %s writes package-level state %s; accumulators must live on an owned sim-global receiver so shards can replicate them",
				display, acc.desc)
		case pl.domain == DomainNone, pl.domain == DomainMessage:
		case pl.domain == DomainSimGlobal:
			if !commutativeWrite(acc, latches) {
				c.report(acc.pos, catSeam, seam,
					"seam kind mismatch: reduction seam %s stores to sim-global state %s non-commutatively; a reduction seam may only bump commutative accumulators (++, +=, |=), append to or truncate its own free list, or set a nil-guarded latch",
					display, acc.desc)
			}
		default:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: reduction seam %s writes %s state %s; only sim-global accumulators and message payloads may be written",
				display, pl.domain.Render(), acc.desc)
		}
	case accAlias:
		pl := acc.target
		switch pl.domain {
		case DomainNone, DomainMessage, DomainReadonly:
		default:
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: reduction seam %s leaks the address of %s state %s; an aliased accumulator can no longer be merged",
				display, pl.domain.Render(), acc.desc)
		}
	case accCall:
		if !c.seamCallAllowed(ctx, acc, SeamReduction) {
			c.report(acc.pos, catSeam, seam,
				"seam kind mismatch: reduction seam %s calls %s, which is neither provably read-only, message handling, nor a reduction seam",
				display, acc.desc)
		}
	}
}

// seamCallAllowed decides whether a buffered/reduction seam body may
// make this call: seams of the same kind compose, mesh/message/
// read-only edges are the legal plumbing, and helpers must be provably
// mutation-free (stdlib callees are trusted not to reach simulator
// state).
func (c *epochChecker) seamCallAllowed(ctx Domain, acc access, kind SeamKind) bool {
	if sd, ok := c.r.seamFor(acc.callee); ok && sd.Kind == kind {
		return true
	}
	cc := classifyCall(c.pkg, ctx, acc)
	switch cc.name {
	case classMesh, classMessage, classReadOnly:
		return true
	case classInternal:
		if acc.callee.Pkg() == nil || c.r.pkgFor(acc.callee) == nil {
			return true // builtins and stdlib
		}
		return methodReadOnly(c.r, acc.callee)
	}
	return false
}

// checkInitOnly flags post-init writes: stores to readonly-domain
// state or to package-level variables of the deterministic packages
// from any function reachable from the //rowlint:entry run loops.
// Construction and Restore are exempt because the walk never reaches
// them, not because they are annotated.
func (c *epochChecker) checkInitOnly() {
	for _, f := range c.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := c.pkg.defObj(fd.Name).(*types.Func)
			if fn == nil || !c.reach[fn] {
				continue
			}
			ctx := receiverDomain(c.pkg, fd)
			walkAccesses(c.pkg, ctx, fd.Body, func(acc access) {
				if acc.kind != accWrite {
					return
				}
				pl := acc.target
				switch {
				case pl.domain == DomainReadonly && !pl.pkgLevel:
					c.report(acc.pos, catInitOnly, nil,
						"post-init write to readonly state %s: the function is reachable from the //rowlint:entry run loops, and config/trace state is immutable once the run starts; move the write to construction or justify with //rowlint:ignore epochsafe <reason>",
						acc.desc)
				case pl.pkgLevel && deterministicPkgLevelWrite(c.pkg, acc.lhs):
					c.report(acc.pos, catInitOnly, nil,
						"post-init write to package-level state %s: reachable from the //rowlint:entry run loops; package-level state in a deterministic package must be frozen before the run starts",
						acc.desc)
				}
			})
		}
	}
}

// checkHazards bans concurrency constructs inside the indexed shard
// domains: a shard executes single-threaded within an epoch, and any
// sync primitive, channel operation or goroutine would make the
// parallel schedule timing-dependent.
func (c *epochChecker) checkHazards() {
	for _, f := range c.pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil || !receiverDomain(c.pkg, d).Indexed() {
					continue
				}
				c.hazardScan(receiverDomain(c.pkg, d), d.Body)
			case *ast.GenDecl:
				c.hazardFields(d)
			}
		}
	}
}

func (c *epochChecker) hazardScan(ctx Domain, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.hazard(n.Pos(), ctx, "go statement")
		case *ast.SendStmt:
			c.hazard(n.Pos(), ctx, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.hazard(n.Pos(), ctx, "channel receive")
			}
		case *ast.SelectStmt:
			c.hazard(n.Pos(), ctx, "select statement")
		case *ast.RangeStmt:
			if t := c.pkg.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.hazard(n.Pos(), ctx, "range over a channel")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := c.pkg.ObjectOf(id).(*types.Builtin); isBuiltin {
					c.hazard(n.Pos(), ctx, "close of a channel")
				}
			}
			if fn := resolveCallee(c.pkg, n); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sync", "sync/atomic":
					c.hazard(n.Pos(), ctx, "call to "+fn.Pkg().Name()+"."+syncCallName(fn))
				}
			}
		}
		return true
	})
}

// hazardFields flags sync- and channel-typed fields declared on types
// owned by an indexed shard domain: the primitive embedded in the
// state is the hazard, whether or not this package touches it.
func (c *epochChecker) hazardFields(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		tn, _ := c.pkg.defObj(ts.Name).(*types.TypeName)
		if tn == nil || !c.r.typeDomain(tn.Type()).Indexed() {
			continue
		}
		ctx := c.r.typeDomain(tn.Type())
		for _, f := range st.Fields.List {
			t := c.pkg.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if desc, bad := syncTypeDesc(t); bad {
				c.hazard(f.Pos(), ctx, desc+" field on a shard-owned type")
			}
		}
	}
}

func (c *epochChecker) hazard(pos token.Pos, ctx Domain, what string) {
	c.report(pos, catHazard, nil,
		"determinism hazard in %s shard state: %s; a shard runs single-threaded within an epoch, so sync primitives, channels and goroutines would make the parallel schedule timing-dependent",
		ctx.Render(), what)
}

// syncCallName renders a sync/sync-atomic callee for the hazard
// message (Mutex.Lock, AddUint64).
func syncCallName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// syncTypeDesc reports whether t is (or points to) a sync-package type
// or a channel.
func syncTypeDesc(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return "channel-typed", true
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return pkg.Name() + "." + named.Obj().Name() + "-typed", true
			}
		}
	}
	return "", false
}

// deterministicPkgLevelWrite reports whether the written package-level
// variable lives in one of the deterministic packages (the only ones
// whose globals the plan must freeze; harness/reporting packages keep
// their own discipline).
func deterministicPkgLevelWrite(pkg *Package, lhs ast.Expr) bool {
	v := pkgLevelVar(pkg, lhs)
	if v == nil || v.Pkg() == nil {
		return false
	}
	return DeterministicPackages[packageBase(v.Pkg().Path())]
}

// pkgLevelVar resolves the package-level variable a write's lvalue
// roots in (nil when the root is a local or unresolvable).
func pkgLevelVar(pkg *Package, lhs ast.Expr) *types.Var {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if v, ok := pkg.ObjectOf(lhs).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.SelectorExpr:
		if v := pkgLevelVar(pkg, lhs.Sel); v != nil {
			return v
		}
		return pkgLevelVar(pkg, lhs.X)
	case *ast.IndexExpr:
		return pkgLevelVar(pkg, lhs.X)
	case *ast.StarExpr:
		return pkgLevelVar(pkg, lhs.X)
	case *ast.ParenExpr:
		return pkgLevelVar(pkg, lhs.X)
	}
	return nil
}

// commutativeWrite reports whether a store to an accumulator merges
// commutatively across shards: increment/decrement, a commutative
// op-assign, growing (x = append(x, ...)) or shrinking (x = x[:n]) the
// container it owns, or a latch assignment proven nil-guarded by
// latchStmts.
func commutativeWrite(acc access, latches map[ast.Node]bool) bool {
	switch st := acc.stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return true
		case token.ASSIGN:
			if latches[st] {
				return true
			}
			rhs := rhsFor(st, acc.lhs)
			if rhs == nil {
				return false
			}
			l := types.ExprString(acc.lhs)
			switch r := rhs.(type) {
			case *ast.CallExpr:
				if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "append" && len(r.Args) > 0 {
					return types.ExprString(r.Args[0]) == l
				}
			case *ast.SliceExpr:
				return types.ExprString(r.X) == l
			}
		}
	}
	return false
}

// rhsFor returns the right-hand side assigned to lhs in a one-to-one
// assignment (nil for multi-value assignments, where the shape cannot
// be proven).
func rhsFor(st *ast.AssignStmt, lhs ast.Expr) ast.Expr {
	if len(st.Lhs) != len(st.Rhs) {
		return nil
	}
	for i, l := range st.Lhs {
		if l == lhs {
			return st.Rhs[i]
		}
	}
	return nil
}

// latchStmts collects the plain assignments of the first-error-latch
// shape: `if x == nil { x = e }`. Under per-shard replication the
// latch keeps the first error each shard observes, and the epoch merge
// picks a deterministic winner — the one commutative use of a plain
// store.
func latchStmts(body ast.Node) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var guarded string
		switch {
		case isNilIdent(cond.Y):
			guarded = types.ExprString(cond.X)
		case isNilIdent(cond.X):
			guarded = types.ExprString(cond.Y)
		default:
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if as, ok := m.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				for _, lhs := range as.Lhs {
					if types.ExprString(lhs) == guarded {
						out[as] = true
					}
				}
			}
			return true
		})
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// ifaceSeam is one seam declared on an interface method, with its
// parsed declaration.
type ifaceSeam struct {
	fn   *types.Func
	decl seamDecl
}

// moduleInterfaceSeams lists every interface-method seam declared in
// the loaded module, sorted for deterministic checking order.
func moduleInterfaceSeams(l *Loader) []ifaceSeam {
	var out []ifaceSeam
	var paths []string
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := l.pkgs[path]
		for _, fn := range sortedSeamFuncs(p.Ownership().seams) {
			if isInterfaceMethod(fn) {
				out = append(out, ifaceSeam{fn: fn, decl: p.Ownership().seams[fn]})
			}
		}
	}
	return out
}

// sortedSeamFuncs returns the seam-annotated functions of one package
// in declaration-position order.
func sortedSeamFuncs(seams map[types.Object]seamDecl) []*types.Func {
	var out []*types.Func
	for obj := range seams {
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// reachableFromEntries computes the set of module functions reachable
// from every //rowlint:entry root across the loaded packages,
// following direct calls and fanning interface calls out to all
// implementations. Memoized per package-set size: loading another
// package can add entries or implementations.
func (l *Loader) reachableFromEntries() map[*types.Func]bool {
	if l.reachMemo != nil && l.reachMemoPkgs == len(l.pkgs) {
		return l.reachMemo
	}
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	add := func(fn *types.Func) {
		if fn == nil || reach[fn] {
			return
		}
		reach[fn] = true
		queue = append(queue, fn)
	}
	var paths []string
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := l.pkgs[path]
		for _, fd := range p.Ownership().entries {
			if fn, ok := p.defObj(fd.Name).(*types.Func); ok {
				add(fn)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if fn.Pkg() == nil {
			continue
		}
		dp := l.pkgs[fn.Pkg().Path()]
		if dp == nil {
			continue // stdlib: trusted not to call back into the module
		}
		fd := dp.FuncDecls()[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := resolveCallee(dp, call)
			if callee == nil {
				return true
			}
			if isInterfaceMethod(callee) {
				add(callee)
				for _, impl := range l.implementations(callee) {
					add(impl)
				}
				return true
			}
			add(callee)
			return true
		})
	}
	l.reachMemo, l.reachMemoPkgs = reach, len(l.pkgs)
	return reach
}
