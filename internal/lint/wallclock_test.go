package lint

import "testing"

// TestWallClockAllowlistDisjointFromCore: the allowlist can never
// exempt the deterministic core — an entry that names a
// DeterministicPackages member is a policy contradiction and fails
// here before it can silently weaken the gate.
func TestWallClockAllowlistDisjointFromCore(t *testing.T) {
	for name := range WallClockAllowed {
		if DeterministicPackages[name] {
			t.Errorf("WallClockAllowed lists %q, which is a deterministic-core package; the core is always checked", name)
		}
	}
}

// TestWallClockChecked pins the default-deny decision table.
func TestWallClockChecked(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"rowsim/internal/sim", true},     // deterministic core
		{"rowsim/internal/mcheck", true},  // deterministic core
		{"rowsim/internal/serve", false},  // allowlisted daemon
		{"rowsim/cmd/rowbench", false},    // CLIs report wall time to humans
		{"cmd/rowbench", false},           // module-root-relative cmd path
		{"rowsim/internal/torture", true}, // default-deny: unlisted → checked
		{"rowsim/internal/experiments", true},
		{"rowsim/internal/lint/testdata/src/wallclock/core", true},   // fixture scores like the real core
		{"rowsim/internal/lint/testdata/src/wallclock/serve", false}, // fixture scores like the real serve
	}
	for _, c := range cases {
		if got := wallclockChecked(c.path); got != c.want {
			t.Errorf("wallclockChecked(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
