package lint

import (
	"go/ast"
	"go/types"
	"runtime"
)

// BigCopyThreshold is the struct-copy size (bytes) above which bigcopy
// reports, overridable with `rowlint -bigcopy-bytes`. The default
// follows the profile: duffcopy shows up for copies of a couple of
// cache lines and beyond.
var BigCopyThreshold int64 = 128

// BigCopy flags by-value copies of large structs and arrays on the
// hot path: the PR 8 profile attributes ~5% of per-visit cost to
// runtime.duffcopy, i.e. to values large enough that the compiler
// copies them with a Duff's-device loop. Inside every function of the
// deterministic simulator core (DeterministicPackages — the code the
// run loop executes per visit) and every //rowlint:noalloc function
// elsewhere, the analyzer reports:
//
//   - arguments passing a large struct by value
//   - returning a large struct by value
//   - assignments and :=/deref copies of a large struct
//   - range loops whose value variable copies a large element
//
// Sizes come from go/types with the gc compiler's layout for the host
// architecture. The fix is to pass a pointer (or restructure so the
// large value never moves); a justified copy — construction-time code,
// a deliberate defensive copy — carries //rowlint:ignore bigcopy
// <reason>.
var BigCopy = &Analyzer{
	Name: "bigcopy",
	Doc:  "flags by-value struct copies above a size threshold on the simulator hot path",
	Run:  runBigCopy,
}

func runBigCopy(pass *Pass) {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	hotPackage := pass.Deterministic()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hotPackage && !funcHasNoallocAnnotation(fd) {
				continue
			}
			checkBigCopies(pass, sizes, fd)
		}
	}
}

func checkBigCopies(pass *Pass, sizes types.Sizes, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg.Info != nil {
				if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call boundary
				}
			}
			for _, arg := range n.Args {
				if sz, t := bigValue(pkg, sizes, arg); sz > 0 {
					pass.Reportf(arg.Pos(), "argument copies %d-byte value of type %s (threshold %d); pass a pointer",
						sz, renderType(t), BigCopyThreshold)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if sz, t := bigValue(pkg, sizes, res); sz > 0 {
					pass.Reportf(res.Pos(), "return copies %d-byte value of type %s (threshold %d); return a pointer or write through one",
						sz, renderType(t), BigCopyThreshold)
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if sz, t := bigValue(pkg, sizes, rhs); sz > 0 {
					pass.Reportf(rhs.Pos(), "assignment copies %d-byte value of type %s (threshold %d); keep a pointer instead",
						sz, renderType(t), BigCopyThreshold)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if t := pkg.TypeOf(n.Value); t != nil {
				if sz := sizeOfBulk(sizes, t); sz > BigCopyThreshold {
					pass.Reportf(n.Value.Pos(), "range value copies each %d-byte element of type %s (threshold %d); range over the index instead",
						sz, renderType(t), BigCopyThreshold)
				}
			}
		}
		return true
	})
}

// bigValue reports the size of the copy an expression produces when it
// exceeds the threshold (0 otherwise). Only expressions that read an
// existing value copy: composite literals construct in place, and
// address-taking moves a pointer.
func bigValue(pkg *Package, sizes types.Sizes, e ast.Expr) (int64, types.Type) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return bigValue(pkg, sizes, e.X)
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.CallExpr, *ast.TypeAssertExpr:
		t := pkg.TypeOf(e)
		if t == nil {
			return 0, nil
		}
		if sz := sizeOfBulk(sizes, t); sz > BigCopyThreshold {
			return sz, t
		}
	}
	return 0, nil
}

// sizeOfBulk returns the size of a struct or array type (0 for
// pointers, interfaces, slices, maps, basics — their copies are one or
// two words regardless of payload).
func sizeOfBulk(sizes types.Sizes, t types.Type) (sz int64) {
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
	default:
		return 0
	}
	// Partial type information (a fixture with deliberate type errors)
	// can leave invalid component types; treat unsizeable as size 0.
	defer func() {
		if recover() != nil {
			sz = 0
		}
	}()
	return sizes.Sizeof(t)
}

// renderType renders a type compactly: pkg.Name for named types, the
// full spelling otherwise.
func renderType(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	if _, ok := t.(*types.Named); ok {
		return typeShortName(t)
	}
	return t.String()
}
