package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// NoAllocEscape upgrades the syntactic //rowlint:noalloc ban into a
// compiler-proven property. The noalloc analyzer recognizes the
// allocation-prone constructs it knows about; the compiler's escape
// analysis is the authority on what actually reaches the heap. This
// analyzer cross-checks the two: CaptureEscapes runs
// `go build -gcflags=-m` over the linted packages, and any
// "escapes to heap" / "moved to heap" diagnostic landing inside a
// //rowlint:noalloc function body becomes a finding.
//
// Without a capture (plain `lint.Run` in a unit test) the analyzer is
// inert: EscapesCaptured distinguishes "captured, nothing escaped"
// from "never captured", so the pass cannot go green vacuously — the
// CLI and the golden harness always capture.
//
// A justified escape on a cold branch is suppressed with
// //rowlint:ignore noalloc-escape <reason>; an existing
// //rowlint:ignore noalloc on the same line also covers it, since the
// compiler diagnostic is the proven form of the same allocation.
var NoAllocEscape = &Analyzer{
	Name: "noalloc-escape",
	Doc:  "cross-checks compiler escape analysis (go build -gcflags=-m) against //rowlint:noalloc functions",
	Run:  runNoAllocEscape,
}

// BuildDiag is one compiler diagnostic captured from go build.
type BuildDiag struct {
	File string // absolute path
	Line int
	Col  int
	Msg  string
}

// escapeDiagRe matches the file:line:col: message shape -gcflags=-m
// diagnostics are printed in.
var escapeDiagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// escapeDiag reports whether a -m diagnostic indicates a heap
// allocation (as opposed to inlining or parameter-leak notes).
func escapeDiag(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// CaptureEscapes runs one `go build -gcflags=-m=1` over the given
// packages and attaches the heap-allocation diagnostics to each.
// -gcflags applies only to packages named on the command line, so
// every package to be analyzed must be in the list. The build output
// itself is discarded (binaries of main packages land in a throwaway
// directory); diagnostics replay from the build cache on repeat runs,
// so recapturing is cheap.
func (l *Loader) CaptureEscapes(pkgs []*Package) error {
	if len(pkgs) == 0 {
		return nil
	}
	byDir := make(map[string]*Package, len(pkgs))
	args := []string{"build", "-gcflags=-m=1"}
	// Binaries of main packages land in a throwaway directory; with no
	// main package in the list, -o is rejected ("no main packages").
	hasMain := false
	for _, p := range pkgs {
		if p.Types != nil && p.Types.Name() == "main" {
			hasMain = true
			break
		}
	}
	if hasMain {
		tmp, err := os.MkdirTemp("", "rowlint-build-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		args = append(args, "-o", tmp)
	}
	for _, p := range pkgs {
		byDir[p.Dir] = p
		rel, err := filepath.Rel(l.ModRoot, p.Dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("lint: package %s is outside module root %s", p.Dir, l.ModRoot)
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		// The -m diagnostics land on stderr alongside any compile
		// errors; a failed build means the property is unverifiable.
		return fmt.Errorf("lint: go build -gcflags=-m failed: %v\n%s", err, out)
	}
	for _, p := range pkgs {
		p.Escapes = p.Escapes[:0]
		p.EscapesCaptured = true
	}
	seen := make(map[BuildDiag]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeDiagRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !escapeDiag(m[4]) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(l.ModRoot, filepath.FromSlash(file))
		}
		p := byDir[filepath.Dir(file)]
		if p == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		d := BuildDiag{File: file, Line: ln, Col: col, Msg: m[4]}
		if seen[d] {
			continue
		}
		seen[d] = true
		p.Escapes = append(p.Escapes, d)
	}
	return nil
}

func runNoAllocEscape(pass *Pass) {
	pkg := pass.Pkg
	if !pkg.EscapesCaptured {
		return
	}
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasNoallocAnnotation(fd) {
				continue
			}
			start := pkg.Fset.Position(fd.Pos()).Line
			end := pkg.Fset.Position(fd.End()).Line
			for _, d := range pkg.Escapes {
				if d.File != tf.Name() || d.Line < start || d.Line > end {
					continue
				}
				if !diagMatchesSource(pkg.Src[d.File], tf, d) {
					// Inlining attributes a callee's allocation to the
					// call site; the callee (a pool's amortized alloc
					// path, typically) answers for its own escapes.
					continue
				}
				pass.Reportf(diagPos(tf, d),
					"compiler escape analysis: %s inside //rowlint:noalloc function %s; eliminate the heap allocation or justify with //rowlint:ignore noalloc-escape <reason>",
					d.Msg, fd.Name.Name)
			}
		}
	}
}

// diagMatchesSource reports whether the diagnostic's allocation
// expression actually appears on the source line it is attributed to.
// When a callee is inlined, the compiler reports the callee's
// allocation at the caller's line (`new(Msg) escapes to heap` on a
// line reading `p.pool.New()`); such diagnostics belong to the callee,
// which is checked — or suppressed — where the allocation is written.
func diagMatchesSource(src []byte, tf *token.File, d BuildDiag) bool {
	if src == nil || d.Line < 1 || d.Line > tf.LineCount() {
		return true // no source to cross-check: keep the diagnostic
	}
	start := tf.Offset(tf.LineStart(d.Line))
	line := string(src[start:])
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	subj := d.Msg
	if s, ok := strings.CutSuffix(subj, " escapes to heap"); ok {
		subj = s
	} else if s, ok := strings.CutPrefix(subj, "moved to heap: "); ok {
		subj = s
	}
	// Composite literals print elided ("&dirEntry{...}"): match up to
	// the opening brace. Qualified type names ("new(coherence.Msg)")
	// never literally appear in the declaring package's own source, so
	// also try the unqualified spelling.
	if i := strings.IndexByte(subj, '{'); i >= 0 {
		subj = subj[:i+1]
	}
	if subj == "func literal" {
		subj = "func"
	}
	if strings.Contains(line, subj) {
		return true
	}
	if open := strings.IndexByte(subj, '('); open >= 0 {
		inner := subj[open:]
		if dot := strings.LastIndexByte(inner, '.'); dot >= 0 {
			unq := subj[:open+1] + inner[dot+1:]
			return strings.Contains(line, unq)
		}
	}
	return false
}

// diagPos maps a build diagnostic's line:col back into the fileset.
func diagPos(tf *token.File, d BuildDiag) token.Pos {
	if d.Line < 1 || d.Line > tf.LineCount() {
		return tf.Pos(0)
	}
	off := tf.Offset(tf.LineStart(d.Line)) + d.Col - 1
	if off < 0 || off > tf.Size() {
		off = tf.Offset(tf.LineStart(d.Line))
	}
	return tf.Pos(off)
}
