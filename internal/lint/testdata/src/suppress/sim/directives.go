// Package sim is the suppression-parser fixture: malformed directives
// are themselves findings, well-formed ones silence and are counted.
package sim

// Registry is keyed by workload name.
type Registry map[string]int

// MissingReason has a directive with no justification: the directive
// is a finding AND the map range stays active.
func MissingReason(r Registry) int {
	n := 0
	//rowlint:ignore maporder
	for _, v := range r { // want: maporder still active
		n += v
	}
	return n
}

// UnknownAnalyzer names an analyzer that does not exist: the directive
// is a finding AND the map range stays active.
func UnknownAnalyzer(r Registry) int {
	n := 0
	//rowlint:ignore mapsort typo of the analyzer name
	for _, v := range r { // want: maporder still active
		n += v
	}
	return n
}

// UnknownVerb uses an unrecognized directive verb: a finding.
func UnknownVerb(r Registry) int {
	//rowlint:disable maporder wrong verb entirely
	return len(r)
}

// BareIgnore gives neither analyzer nor reason: a finding.
func BareIgnore(r Registry) int {
	//rowlint:ignore
	return len(r)
}

// WellFormed silences with analyzer and reason, trailing placement:
// suppressed and counted.
func WellFormed(r Registry) bool {
	for _, v := range r { //rowlint:ignore maporder boolean OR is order-independent
		if v != 0 {
			return true
		}
	}
	return false
}
