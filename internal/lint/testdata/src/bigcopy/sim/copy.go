// Package sim is a bigcopy fixture: oversized struct values copied by
// assignment, argument, return and range, next to the pointer-shaped
// idioms the analyzer must leave alone.
package sim

// Snap is 256 bytes — twice the 128-byte threshold.
type Snap struct {
	Words [32]uint64
}

// Tiny is far below the threshold.
type Tiny struct {
	A, B uint64
}

// Capture returns the snapshot by value — a full bulk copy per call.
func Capture(s *Snap) Snap {
	return *s
}

// CaptureP is the pointer-returning fix: no copy, not flagged.
func CaptureP(s *Snap) *Snap {
	return s
}

// Consume takes the snapshot by value — a bulk copy at every call site.
func Consume(s Snap) uint64 {
	return s.Words[0]
}

// Sum copies every element into the range value.
func Sum(all []Snap) uint64 {
	var t uint64
	for _, s := range all {
		t += s.Words[0]
	}
	return t
}

// SumP ranges by index — no copy, not flagged.
func SumP(all []Snap) uint64 {
	var t uint64
	for i := range all {
		t += all[i].Words[0]
	}
	return t
}

// Stash seeds assignment and argument copies, a composite-literal
// construction the analyzer must not flag, and a justified copy kept
// suppressed.
func Stash(s *Snap) uint64 {
	local := *s
	fresh := Snap{} // construction in place, not a copy
	fresh = local   //rowlint:ignore bigcopy fixture: justified copy, kept suppressed
	small := Tiny{A: 1}
	other := small // below threshold: legal
	return Consume(fresh) + other.A
}
