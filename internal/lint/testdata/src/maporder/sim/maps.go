// Package sim is a maporder fixture: its name puts it in the
// deterministic core, so map ranges here must be sorted, blessed, or
// justified.
package sim

import "sort"

// Table is keyed by line address, like the real directory.
type Table map[uint64]int

// Sum iterates a map with both key and value bound: flagged.
func Sum(t Table) int {
	total := 0
	for line, n := range t { // want: maporder
		total += int(line) + n
	}
	return total
}

// Names iterates key-only without sorting: flagged.
func Names(t Table) []uint64 {
	var out []uint64
	for line := range t { // want: maporder
		if line%2 == 0 {
			out = append(out, line+1)
		}
	}
	return out
}

// SortedKeys uses the blessed collect-then-sort idiom: not flagged.
func SortedKeys(t Table) []uint64 {
	keys := make([]uint64, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// AnyNonZero is order-independent and carries the mandatory
// justification: suppressed, not active.
func AnyNonZero(t Table) bool {
	//rowlint:ignore maporder boolean OR over all entries is order-independent
	for _, n := range t {
		if n != 0 {
			return true
		}
	}
	return false
}
