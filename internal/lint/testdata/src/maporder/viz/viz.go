// Package viz is outside the deterministic core: map iteration here is
// legal and must produce no findings.
package viz

// Render iterates a map freely — reporting code may.
func Render(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
