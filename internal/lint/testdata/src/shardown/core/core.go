// Package core is a shardown fixture: a miniature core/cache pair
// seeding every violation shape the analyzer must catch — cross-domain
// writes, alias escapes, cross-instance access, package-level writes
// and undeclared cross-domain calls — next to the legal idioms it must
// not flag (own-state mutation, declared seams, provably read-only
// probes, suppression with a reason).
package core

// CacheSide stands in for the paired private cache: state owned by the
// cache shard, not by the visiting core.
//
//rowlint:owner cache[i]
type CacheSide struct {
	Hits   uint64
	Misses uint64
}

// Bump mutates the cache's own counters from cache context — legal.
func (c *CacheSide) Bump() { c.Hits++ }

// Probe is provably read-only; foreign domains may call it freely.
func (c *CacheSide) Probe() uint64 { return c.Hits }

// Deliver is the declared core→cache entry point.
//
//rowlint:seam same-index core→cache handoff; core[i] and cache[i] share a shard
func (c *CacheSide) Deliver(v uint64) { c.Misses = v }

// Mutate is an undeclared mutating entry point: calling it from core
// context must be flagged.
func (c *CacheSide) Mutate(v uint64) { c.Misses = v }

// Core is the visiting component; its domain is inferred from the
// package name.
type Core struct {
	cycles uint64
	cache  *CacheSide
	peers  []*Core
}

// totalTicks is shared across every core instance — no shard owns it.
var totalTicks uint64

// Run drives the fixture components the way a scheduler would.
//
//rowlint:entry
func Run(cores []*Core) {
	for _, c := range cores {
		c.Tick()
	}
}

// Tick seeds one of each violation among legal accesses.
func (c *Core) Tick() {
	c.cycles++          // own state: legal
	c.cache.Hits++      // cross-domain write into the cache shard
	totalTicks++        // package-level write
	c.peers[0].cycles++ // cross-instance write into a peer core
	c.cache.Mutate(1)   // undeclared mutating call into the cache shard
	c.cache.Deliver(1)  // declared seam: legal
	_ = c.cache.Probe() // provably read-only: legal
	p := &c.cache.Hits  // alias escape of cache-owned state
	_ = p
	c.cache.Misses = 0 //rowlint:ignore shardown fixture: justified crossing, kept suppressed
}
