// Package cache is a noalloc fixture: functions annotated
// //rowlint:noalloc may not contain allocation-prone constructs;
// unannotated functions are unconstrained.
package cache

import "fmt"

// Ctl is a controller with recycled buffers, like the real private
// cache.
type Ctl struct {
	buf  []uint64
	hits int
}

// HotFormat formats on the hot path: flagged (fmt call).
//
//rowlint:noalloc
func (c *Ctl) HotFormat(line uint64) {
	_ = fmt.Sprintf("line %#x", line) // want: noalloc fmt
}

// HotClosure captures a local in a closure: flagged.
//
//rowlint:noalloc
func (c *Ctl) HotClosure(lines []uint64) int {
	n := 0
	visit := func() { n++ } // want: noalloc closure
	for range lines {
		visit()
	}
	return n
}

// HotGrow appends to an unsized local slice and builds a map literal:
// both flagged.
//
//rowlint:noalloc
func (c *Ctl) HotGrow(lines []uint64) int {
	var scratch []uint64
	for _, l := range lines {
		scratch = append(scratch, l) // want: noalloc append
	}
	seen := map[uint64]bool{} // want: noalloc map literal
	_ = seen
	return len(scratch)
}

// HotRecycle appends to the receiver's recycled buffer and to a slice
// received from the caller: both legal, no findings.
//
//rowlint:noalloc
func (c *Ctl) HotRecycle(lines []uint64, scratch []uint64) int {
	c.buf = c.buf[:0]
	for _, l := range lines {
		c.buf = append(c.buf, l)
	}
	for _, l := range lines {
		if l&1 == 0 {
			scratch = append(scratch, l)
		}
	}
	return len(c.buf) + len(scratch)
}

// HotLazyInit documents a cold branch inside a hot function:
// suppressed, not active.
//
//rowlint:noalloc
func (c *Ctl) HotLazyInit() {
	if c.buf == nil {
		c.buf = make([]uint64, 0, 64) //rowlint:ignore noalloc one-time lazy init, amortized to zero
	}
	c.hits++
}

// HotBox boxes a concrete value into an interface: flagged at the
// assignment and at the call boundary.
//
//rowlint:noalloc
func (c *Ctl) HotBox(line uint64) {
	var sink any
	sink = line // want: noalloc boxing assignment
	_ = sink
	consume(line) // want: noalloc boxing argument
}

func consume(v any) { _ = v }

// ColdReport is not annotated: the same constructs produce no
// findings.
func (c *Ctl) ColdReport() string {
	all := map[string]int{"hits": c.hits}
	return fmt.Sprint(all)
}

// growBuf is a non-annotated helper that allocates: calling it from a
// hot function is flagged at the call site (one-level propagation).
func (c *Ctl) growBuf() {
	c.buf = make([]uint64, 0, 64)
}

// countHits is a non-annotated helper that is allocation-free: calling
// it from a hot function is fine.
func (c *Ctl) countHits() int {
	return c.hits
}

// annotatedHelper allocates but is itself annotated (with its own
// suppression): the caller trusts it, the helper's own check governs.
//
//rowlint:noalloc
func (c *Ctl) annotatedHelper() {
	if c.buf == nil {
		c.buf = make([]uint64, 0, 8) //rowlint:ignore noalloc one-time lazy init, amortized to zero
	}
}

// HotCallsHelpers exercises the interprocedural step: the allocating
// non-annotated callee is flagged, the clean and the annotated ones
// are not, and a justified hit is suppressible at the call site.
//
//rowlint:noalloc
func (c *Ctl) HotCallsHelpers() int {
	c.growBuf() // want: noalloc call to growBuf
	c.annotatedHelper()
	c.growBuf() //rowlint:ignore noalloc cold branch: only taken on the first access
	return c.countHits()
}
