// Package coherence is a msgpool fixture: a self-contained replica of
// the Msg/MsgPool shape (the analyzer matches the type names, so the
// fixture scores exactly like the real package).
package coherence

// Msg is one protocol message.
type Msg struct {
	Type int
	Line uint64
	Dst  int
}

// MsgPool recycles messages.
type MsgPool struct {
	free []*Msg
}

// Get returns a zeroed message.
func (p *MsgPool) Get() *Msg {
	if len(p.free) == 0 {
		return new(Msg)
	}
	m := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return m
}

// New returns a pooled message initialized to v.
func (p *MsgPool) New(v Msg) *Msg {
	m := p.Get()
	*m = v
	return m
}

// Put releases a message.
func (p *MsgPool) Put(m *Msg) {
	if m == nil {
		return
	}
	*m = Msg{}
	p.free = append(p.free, m)
}

// Network is the consumption boundary.
type Network interface {
	Send(m *Msg)
}
