package coherence

// Agent exercises the ownership flows the analyzer checks.
type Agent struct {
	pool    *MsgPool
	net     Network
	waiting []*Msg
	busy    bool
}

// LeakOnErrorPath draws a message and forgets it on the early return:
// flagged at that return.
func (a *Agent) LeakOnErrorPath(line uint64) bool {
	m := a.pool.Get()
	m.Line = line
	if a.busy {
		return false // want: msgpool leak
	}
	a.net.Send(m)
	return true
}

// LeakAtEnd never consumes the message at all: flagged at the end of
// the function.
func (a *Agent) LeakAtEnd(line uint64) {
	m := a.pool.New(Msg{Line: line})
	m.Type = 1
} // want: msgpool leak

// UseAfterPut touches a released message: flagged at the use.
func (a *Agent) UseAfterPut(line uint64) uint64 {
	m := a.pool.Get()
	m.Line = line
	a.pool.Put(m)
	return m.Line // want: msgpool use-after-put
}

// DoublePut releases twice: the second Put is a use of a Put message,
// flagged.
func (a *Agent) DoublePut() {
	m := a.pool.Get()
	a.pool.Put(m)
	a.pool.Put(m) // want: msgpool use-after-put
}

// PutOnEveryPath releases on both arms: clean.
func (a *Agent) PutOnEveryPath(line uint64) bool {
	m := a.pool.Get()
	m.Line = line
	if a.busy {
		a.pool.Put(m)
		return false
	}
	a.pool.Put(m)
	return true
}

// RetainInQueue parks the message in a stall structure: clean (the
// serve path owns it from here).
func (a *Agent) RetainInQueue(line uint64) {
	m := a.pool.New(Msg{Line: line})
	a.waiting = append(a.waiting, m)
}

// ForwardToNetwork hands ownership to the network: clean.
func (a *Agent) ForwardToNetwork(line uint64, dst int) {
	m := a.pool.New(Msg{Line: line, Dst: dst})
	a.net.Send(m)
}

// ReturnToCaller transfers ownership out: clean.
func (a *Agent) ReturnToCaller(line uint64) *Msg {
	m := a.pool.Get()
	m.Line = line
	return m
}

// HandlerParamMayDrop mirrors the real handler shape: parameters are
// caller-owned, so not consuming one is legal; using it after Put is
// still flagged elsewhere.
func (a *Agent) HandlerParamMayDrop(m *Msg) bool {
	if m.Type == 0 {
		return false // stale: caller releases
	}
	a.waiting = append(a.waiting, m)
	return true
}

// JustifiedLeak shows the escape hatch with its mandatory reason:
// suppressed, not active.
func (a *Agent) JustifiedLeak(line uint64) {
	m := a.pool.Get()
	m.Line = line
	//rowlint:ignore msgpool transferred through unsafe tracing path the analyzer cannot see
} // want: msgpool suppressed leak
