// Package core is a wallclock fixture: deterministic-core code must
// not read wall clocks, the global math/rand source, or the host
// environment.
package core

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want: wallclock
}

// Jitter draws from the global math/rand source: flagged.
func Jitter() int {
	return rand.Intn(8) // want: wallclock
}

// Configured reads the host environment: flagged.
func Configured() bool {
	return os.Getenv("ROWSIM_MODE") != "" // want: wallclock
}

// SeededDelay uses an explicitly seeded local source — the legal
// pattern — plus deterministic helpers from the banned packages.
func SeededDelay(seed int64, cycles uint64) time.Duration {
	r := rand.New(rand.NewSource(seed))
	return time.Duration(cycles+uint64(r.Intn(4))) * time.Nanosecond
}

// DebugDump is justified at the one legal call site: suppressed.
func DebugDump() string {
	//rowlint:ignore wallclock debug-only banner; never reaches simulated state
	return os.Getenv("ROWSIM_BANNER")
}
