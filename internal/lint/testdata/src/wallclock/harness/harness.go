// Package harness is a wallclock fixture for the default-deny rule: it
// is neither deterministic core nor allowlisted nor under cmd/, so
// ambient reads are flagged — the analyzer no longer waits for a
// package to be promoted into DeterministicPackages before checking it.
package harness

import (
	"math/rand/v2"
	"time"
)

// Elapsed reads the wall clock: flagged (default-deny).
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want: wallclock
}

// Pick draws from the global math/rand/v2 source: flagged.
func Pick(n int) int {
	return rand.IntN(n) // want: wallclock
}
