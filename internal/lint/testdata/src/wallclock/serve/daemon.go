// Package serve is a wallclock fixture for the allowlist: the daemon's
// observability surface is wall-clock by nature, so nothing in this
// file is flagged even under default-deny.
package serve

import (
	"os"
	"time"
)

// Uptime reads the wall clock: legal here, "serve" is allowlisted.
func Uptime(start time.Time) float64 {
	return time.Since(start).Seconds()
}

// Stamp is equally legal.
func Stamp() int64 {
	return time.Now().UnixMilli()
}

// Port reads the environment: legal here.
func Port() string {
	return os.Getenv("ROWSERVE_ADDR")
}
