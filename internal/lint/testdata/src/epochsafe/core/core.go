// Package core is an epochsafe fixture: a miniature shard seeding
// every violation shape the analyzer must catch — seam kind
// mismatches (on concrete seams and on implementations of an
// interface seam), post-init writes to readonly and package-level
// state, and sync/channel/goroutine hazards inside shard-owned
// domains — next to the proven idioms it must not flag (commutative
// reduction seams, buffered enqueues, construction-only writes,
// suppression with a reason).
package core

import (
	"sync"
	"sync/atomic"

	"rowsim/internal/lint/testdata/src/epochsafe/config"
)

// Globals stands in for the simulation-wide accumulators the parallel
// plan replicates per shard and merges at epoch boundaries.
//
//rowlint:owner sim-global
type Globals struct {
	Total uint64
	Last  uint64
	wired bool
}

// Bump is a proven reduction seam: an increment commutes, so per-shard
// replicas merge cleanly.
//
//rowlint:seam reduction epoch-merged visit counter; increments commute across shards
func (g *Globals) Bump() { g.Total++ }

// SetLast declares a reduction but stores last-writer-wins state —
// a plain store does not commute, so the seam must be flagged.
//
//rowlint:seam reduction last-observed value, merged at the barrier
func (g *Globals) SetLast(v uint64) { g.Last = v }

// Wire is a proven init-only seam: nothing on the entry path reaches
// it, so the crossing stays confined to construction.
//
//rowlint:seam init-only wiring happens before the run starts
func (g *Globals) Wire() { g.wired = true }

// Rewire claims init-only but Tick calls it — the reachability proof
// must fail.
//
//rowlint:seam init-only re-wiring is construction-only by convention
func (g *Globals) Rewire() { g.wired = false }

// Router stands in for the mesh: the one legal cross-shard channel.
//
//rowlint:owner mesh
type Router struct {
	queue []uint64
}

// Push is a proven buffered seam: the write lands in mesh state and is
// delivered at the next epoch boundary.
//
//rowlint:seam buffered epoch-deferred delivery; the queue drains at the barrier
func (r *Router) Push(v uint64) { r.queue = append(r.queue, v) }

// Sink is the declared core→cache handoff surface. The seam kind is
// promised here, on the interface method; every implementation in the
// module must honour it.
//
//rowlint:owner cache[i]
type Sink interface {
	// Ingest accepts one value from the co-scheduled core.
	//
	//rowlint:seam same-index core→cache handoff; core[i] and cache[i] share a shard
	Ingest(v uint64)
}

// globalSpill is shared across every instance — no shard can own it.
var globalSpill uint64

// CacheSide is the cache half of the shard, with deliberate hazards:
// a mutex and a channel embedded in shard-owned state are flagged as
// fields, and Flush exercises every banned construct.
//
//rowlint:owner cache[i]
type CacheSide struct {
	Loads uint64
	dirty uint64
	g     *Globals
	mu    sync.Mutex
	ch    chan uint64
}

// Ingest honours the same-index promise: it writes only its own
// instance and folds the tally through a declared reduction seam.
func (c *CacheSide) Ingest(v uint64) {
	c.Loads += v
	c.g.Bump()
}

// Spill declares same-index but writes sim-global state directly —
// the crossing leaves the shard, so the kind proof must fail.
//
//rowlint:seam same-index spill accounting stays on the shard
func (c *CacheSide) Spill(g *Globals) { g.Total++ }

// Flush seeds the determinism hazards: inside an epoch a shard runs
// single-threaded, so every construct here is banned.
func (c *CacheSide) Flush() {
	c.mu.Lock()
	c.ch <- c.dirty
	v := <-c.ch
	go c.drain(v)
	atomic.AddUint64(&c.dirty, 1)
	c.mu.Unlock()
}

func (c *CacheSide) drain(v uint64) { c.dirty = v }

// Evict carries a seam directive whose kind is not checkable.
//
//rowlint:seam deferred evict path
func (c *CacheSide) Evict() {}

// Sweep's seam kind is legal but the mandatory reason is missing.
//
//rowlint:seam buffered
func (c *CacheSide) Sweep() {}

// Spool is a second implementation of Sink from another shard domain.
// Its Ingest inherits the interface's same-index promise and breaks
// it with a package-level write.
//
//rowlint:owner bank[i]
type Spool struct {
	Depth uint64
}

// Ingest spills into shared package state — flagged at this
// implementation against the seam declared on Sink.Ingest.
func (s *Spool) Ingest(v uint64) { globalSpill += v }

// Shard is the visiting core; its domain is inferred from the package
// name.
type Shard struct {
	cfg    *config.Config
	cache  *CacheSide
	g      *Globals
	router *Router
	sink   Sink
}

// visits counts ticks across every shard instance — package-level
// state in a deterministic package, frozen once the run starts.
var visits uint64

// Run drives the fixture the way the scheduler would.
//
//rowlint:entry
func Run(shards []*Shard) {
	for _, s := range shards {
		s.Tick()
	}
}

// Tick seeds the post-init violations among legal crossings.
func (s *Shard) Tick() {
	s.cfg.Warmed = true // post-init write to readonly state
	mutateConfig(s.cfg)
	visits++ // post-init write to deterministic package-level state
	s.g.Rewire()
	s.router.Push(3) // buffered seam: legal
	s.sink.Ingest(7) // declared interface seam: legal
}

// mutateConfig is a free function, so shardown's per-method pass never
// sees it — only the epochsafe reachability walk catches the post-init
// config writes.
func mutateConfig(cfg *config.Config) {
	cfg.Cores++
	cfg.Warmed = false //rowlint:ignore epochsafe fixture: justified post-init write, kept suppressed
}
