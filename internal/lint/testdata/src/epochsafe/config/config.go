// Package config is the epochsafe fixture's readonly domain: run
// parameters that must be frozen before the first cycle. The package
// name puts its types in the readonly domain (DomainOfPackage), the
// same way the real config package scores.
package config

// Config carries the fixture's run parameters.
type Config struct {
	Cores  int
	Warmed bool
}

// New constructs a Config. The field writes here are legal: New is
// unreachable from the //rowlint:entry run loops, so the init-only
// pass exempts construction by reachability, not by annotation.
func New(cores int) *Config {
	c := &Config{}
	c.Cores = cores
	c.Warmed = false
	return c
}
