// Package cache is a noalloc-escape fixture: //rowlint:noalloc
// functions whose locals the compiler proves to reach the heap, next
// to stack-bound code the analyzer must not flag and both suppression
// spellings (a direct noalloc-escape ignore, and an existing noalloc
// ignore covering the compiler-proven form of the same allocation).
// Unlike the other fixtures this package must actually compile: the
// harness runs `go build -gcflags=-m` over it to capture diagnostics.
package cache

// Item is a tiny payload; the escapes come from lifetimes, not size.
type Item struct{ V uint64 }

var sink *uint64

// Leak returns the address of a local: the compiler moves it to the
// heap.
//
//rowlint:noalloc
func Leak() *Item {
	it := Item{V: 1}
	return &it
}

// Stash parks a local's address in package state: moved to heap.
//
//rowlint:noalloc
func Stash(v uint64) {
	x := v
	sink = &x
}

// Fresh allocates on a justified cold path, suppressed directly.
//
//rowlint:noalloc
func Fresh() *Item {
	return new(Item) //rowlint:ignore noalloc-escape fixture: justified cold allocation, kept suppressed
}

// Covered allocates under an existing noalloc ignore; the ignore
// covers the compiler-proven form of the same allocation.
//
//rowlint:noalloc
func Covered() *Item {
	return &Item{V: 2} //rowlint:ignore noalloc fixture: justified cold allocation, kept suppressed
}

// Stays is allocation-free: everything stays on the stack.
//
//rowlint:noalloc
func Stays(it Item) uint64 {
	t := it.V
	p := &t
	return *p
}
