package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rowsim/internal/lint"
)

// TestOwnershipReportFixture walks the shardown fixture from its
// //rowlint:entry root and checks the report classifies every edge
// shape: the scheduler visit, the declared seam, the read-only probe,
// the suppressed crossing, and the seeded violations as unclassified.
func TestOwnershipReportFixture(t *testing.T) {
	ld, _ := sharedLoader(t)
	caseDir, err := filepath.Abs(filepath.Join("testdata", "src", "shardown"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lint.BuildOwnershipReport(ld, loadCase(t, ld, caseDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || !strings.Contains(rep.Entries[0], "core.Run") {
		t.Errorf("entries = %v, want the fixture's core.Run", rep.Entries)
	}
	classOf := make(map[string]string)
	for _, e := range rep.Edges {
		classOf[e.Kind+" "+e.Target] = e.Class
	}
	want := map[string]string{
		"call core.Core.Tick":         "scheduler",
		"call core.CacheSide.Deliver": "seam",
		"call core.CacheSide.Probe":   "read-only",
		"call core.CacheSide.Mutate":  "unclassified",
		"write core.CacheSide.Hits":   "unclassified",
		"write core.totalTicks":       "unclassified",
		"write core.CacheSide.Misses": "suppressed",
		"alias core.CacheSide.Hits":   "unclassified",
	}
	for key, class := range want {
		if got := classOf[key]; got != class {
			t.Errorf("edge %q classified %q, want %q (all: %v)", key, got, class, classOf)
		}
	}
	if rep.Unclassified < 4 {
		t.Errorf("unclassified = %d, want the 4+ seeded violations", rep.Unclassified)
	}
	if _, err := rep.JSON(); err != nil {
		t.Errorf("report does not marshal: %v", err)
	}
}

// TestRepoOwnershipComplete is the CI gate in test form: the
// whole-program walk from the repo's run-loop entries must classify
// every cross-domain edge — zero unclassified — and every edge must
// carry a class the report vocabulary knows.
func TestRepoOwnershipComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	ld, root := sharedLoader(t)
	var pkgs []*lint.Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasBuildableGoFiles(path) {
			pkg, err := ld.Load(path)
			if err != nil {
				t.Fatalf("load %s: %v", path, err)
			}
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lint.BuildOwnershipReport(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) < 2 {
		t.Errorf("entries = %v, want both scheduler loops (runCycle, runEvent)", rep.Entries)
	}
	known := map[string]bool{
		"mesh-mediated": true, "scheduler": true, "seam": true,
		"read-only": true, "message": true, "suppressed": true,
	}
	for _, e := range rep.Edges {
		if e.Class == "unclassified" {
			t.Errorf("unclassified edge: %s -> %s %s %s (%v)", e.From, e.To, e.Kind, e.Target, e.Sites)
		} else if !known[e.Class] {
			t.Errorf("edge %s %s carries unknown class %q", e.Kind, e.Target, e.Class)
		}
	}
	if rep.Unclassified != 0 {
		t.Errorf("report counts %d unclassified edges, want 0", rep.Unclassified)
	}
	// The domain map must cover the simulator's component types.
	for _, dom := range []string{"core[i]", "cache[i]", "bank[i]", "mesh", "sim-global"} {
		if len(rep.Domains[dom]) == 0 {
			t.Errorf("domain map has no types in %s", dom)
		}
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round lint.OwnershipReport
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
}
