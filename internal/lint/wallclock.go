package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClock bans ambient nondeterminism: wall-clock reads (time.Now
// and friends), the global math/rand source (whose state is shared,
// seeded from the clock, and lock-protected), and environment lookups.
// Simulated components must take time from the simulation clock,
// randomness from a seeded *xrand.Rand (or a locally constructed
// rand.New(rand.NewSource(seed))), and configuration from injected
// Config values — never from the host.
//
// The check is default-deny: every package is checked unless its path
// is under cmd/ (CLIs report wall time to humans) or its final element
// is named in WallClockAllowed. The deterministic core is checked
// unconditionally — listing a DeterministicPackages member in the
// allowlist has no effect (and is itself rejected by a test).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "bans wall clocks, global math/rand and env reads outside allowlisted packages",
	Run:  runWallClock,
}

// WallClockAllowed names the non-core packages that may read ambient
// host state, matched — like DeterministicPackages — by the final
// import-path element. Keep every entry justified: the allowlist is
// the single place to audit for clock creep, which is why it replaces
// scattered //rowlint:ignore directives for whole-package exemptions.
var WallClockAllowed = map[string]bool{
	// The rowserve daemon's observability surface: uptime, Retry-After
	// estimates and per-worker "since" stamps are wall-clock by nature
	// and never feed simulated state. (Timers and durations — what the
	// lifecycle supervisor uses — are legal everywhere; only ambient
	// reads are banned, so nothing else needs listing today.)
	"serve": true,
}

// wallclockChecked decides whether the analyzer runs on a package:
// deterministic core always, cmd/ and allowlisted packages never,
// everything else by default.
func wallclockChecked(path string) bool {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if DeterministicPackages[base] {
		return true
	}
	if strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/") {
		return false
	}
	return !WallClockAllowed[base]
}

// wallclockBanned maps package path -> banned member -> replacement
// hint. Only ambient-state entry points are listed; deterministic
// helpers from the same packages (time.Duration, rand.New,
// rand.NewSource, os.Exit) stay legal.
var wallclockBanned = map[string]map[string]string{
	"time": {
		"Now":   "take the cycle count from the simulation clock",
		"Since": "take the cycle count from the simulation clock",
		"Until": "take the cycle count from the simulation clock",
	},
	"os": {
		"Getenv":    "inject the setting through config.Config",
		"LookupEnv": "inject the setting through config.Config",
		"Environ":   "inject the setting through config.Config",
		"ExpandEnv": "inject the setting through config.Config",
	},
	"math/rand": {
		"Int": "use a seeded *xrand.Rand", "Intn": "use a seeded *xrand.Rand",
		"Int31": "use a seeded *xrand.Rand", "Int31n": "use a seeded *xrand.Rand",
		"Int63": "use a seeded *xrand.Rand", "Int63n": "use a seeded *xrand.Rand",
		"Uint32": "use a seeded *xrand.Rand", "Uint64": "use a seeded *xrand.Rand",
		"Float32": "use a seeded *xrand.Rand", "Float64": "use a seeded *xrand.Rand",
		"ExpFloat64": "use a seeded *xrand.Rand", "NormFloat64": "use a seeded *xrand.Rand",
		"Perm": "use a seeded *xrand.Rand", "Shuffle": "use a seeded *xrand.Rand",
		"Seed": "use a seeded *xrand.Rand", "Read": "use a seeded *xrand.Rand",
	},
	"math/rand/v2": {
		"Int": "use a seeded *xrand.Rand", "IntN": "use a seeded *xrand.Rand",
		"Int32": "use a seeded *xrand.Rand", "Int32N": "use a seeded *xrand.Rand",
		"Int64": "use a seeded *xrand.Rand", "Int64N": "use a seeded *xrand.Rand",
		"Uint32": "use a seeded *xrand.Rand", "Uint64": "use a seeded *xrand.Rand",
		"Float32": "use a seeded *xrand.Rand", "Float64": "use a seeded *xrand.Rand",
		"ExpFloat64": "use a seeded *xrand.Rand", "NormFloat64": "use a seeded *xrand.Rand",
		"Perm": "use a seeded *xrand.Rand", "Shuffle": "use a seeded *xrand.Rand",
		"N": "use a seeded *xrand.Rand",
	},
}

func runWallClock(pass *Pass) {
	if !wallclockChecked(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			hint, banned := wallclockBanned[path][sel.Sel.Name]
			if !banned {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s reads ambient host state, which breaks run-to-run determinism; %s",
				id.Name, sel.Sel.Name, hint)
			return true
		})
	}
}
