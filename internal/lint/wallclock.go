package lint

import (
	"go/ast"
	"go/types"
)

// WallClock bans ambient nondeterminism inside the deterministic core:
// wall-clock reads (time.Now and friends), the global math/rand source
// (whose state is shared, seeded from the clock, and lock-protected),
// and environment lookups. Simulated components must take time from
// the simulation clock, randomness from a seeded *xrand.Rand (or a
// locally constructed rand.New(rand.NewSource(seed))), and
// configuration from injected Config values — never from the host.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "bans wall clocks, global math/rand and env reads in deterministic packages",
	Run:  runWallClock,
}

// wallclockBanned maps package path -> banned member -> replacement
// hint. Only ambient-state entry points are listed; deterministic
// helpers from the same packages (time.Duration, rand.New,
// rand.NewSource, os.Exit) stay legal.
var wallclockBanned = map[string]map[string]string{
	"time": {
		"Now":   "take the cycle count from the simulation clock",
		"Since": "take the cycle count from the simulation clock",
		"Until": "take the cycle count from the simulation clock",
	},
	"os": {
		"Getenv":    "inject the setting through config.Config",
		"LookupEnv": "inject the setting through config.Config",
		"Environ":   "inject the setting through config.Config",
		"ExpandEnv": "inject the setting through config.Config",
	},
	"math/rand": {
		"Int": "use a seeded *xrand.Rand", "Intn": "use a seeded *xrand.Rand",
		"Int31": "use a seeded *xrand.Rand", "Int31n": "use a seeded *xrand.Rand",
		"Int63": "use a seeded *xrand.Rand", "Int63n": "use a seeded *xrand.Rand",
		"Uint32": "use a seeded *xrand.Rand", "Uint64": "use a seeded *xrand.Rand",
		"Float32": "use a seeded *xrand.Rand", "Float64": "use a seeded *xrand.Rand",
		"ExpFloat64": "use a seeded *xrand.Rand", "NormFloat64": "use a seeded *xrand.Rand",
		"Perm": "use a seeded *xrand.Rand", "Shuffle": "use a seeded *xrand.Rand",
		"Seed": "use a seeded *xrand.Rand", "Read": "use a seeded *xrand.Rand",
	},
	"math/rand/v2": {
		"Int": "use a seeded *xrand.Rand", "IntN": "use a seeded *xrand.Rand",
		"Int32": "use a seeded *xrand.Rand", "Int32N": "use a seeded *xrand.Rand",
		"Int64": "use a seeded *xrand.Rand", "Int64N": "use a seeded *xrand.Rand",
		"Uint32": "use a seeded *xrand.Rand", "Uint64": "use a seeded *xrand.Rand",
		"Float32": "use a seeded *xrand.Rand", "Float64": "use a seeded *xrand.Rand",
		"ExpFloat64": "use a seeded *xrand.Rand", "NormFloat64": "use a seeded *xrand.Rand",
		"Perm": "use a seeded *xrand.Rand", "Shuffle": "use a seeded *xrand.Rand",
		"N": "use a seeded *xrand.Rand",
	},
}

func runWallClock(pass *Pass) {
	if !pass.Deterministic() {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			hint, banned := wallclockBanned[path][sel.Sel.Name]
			if !banned {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s reads ambient host state, which breaks run-to-run determinism; %s",
				id.Name, sel.Sel.Name, hint)
			return true
		})
	}
}
