package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Domain identifies one shard-ownership domain: the unit of state the
// epoch/barrier parallelism plan (ROADMAP) would hand to one OS
// thread. Mutable simulator state belongs to exactly one domain, and
// the shardown analyzer proves no component writes outside its own.
type Domain string

const (
	// DomainCore is per-core pipeline state (rendered core[i]).
	DomainCore Domain = "core"
	// DomainCache is per-core private-cache state (rendered cache[i]).
	DomainCache Domain = "cache"
	// DomainBank is per-bank directory/L3 state (rendered bank[i]).
	DomainBank Domain = "bank"
	// DomainMesh is the interconnect: the one legal cross-shard
	// channel. Calls into mesh state classify as mesh-mediated.
	DomainMesh Domain = "mesh"
	// DomainSimGlobal is state owned by the System driver itself
	// (clock, pools, sinks): shared services the parallel plan must
	// either replicate per shard or merge at epoch boundaries.
	DomainSimGlobal Domain = "sim-global"
	// DomainReadonly is immutable-after-construction input (config,
	// traces). Any write to it on a visit path is a violation.
	DomainReadonly Domain = "readonly"
	// DomainMessage marks transferable payloads (protocol messages,
	// error reports): ownership moves with the value, enforced
	// dynamically by the msgpool discipline, so the current holder may
	// write freely.
	DomainMessage Domain = "message"
	// DomainNone marks state with no domain of its own: locals,
	// library types (sram arrays, stats counters) that belong to
	// whichever component embeds them.
	DomainNone Domain = ""
)

// Indexed reports whether the domain is per-instance (one shard per
// component index).
func (d Domain) Indexed() bool {
	return d == DomainCore || d == DomainCache || d == DomainBank
}

// Render returns the report spelling: indexed domains carry the
// symbolic instance index.
func (d Domain) Render() string {
	if d.Indexed() {
		return string(d) + "[i]"
	}
	return string(d)
}

// parseDomain maps an annotation spelling to a Domain. Indexed domains
// must be written with their index (core[i]) so the taxonomy stays
// explicit about per-instance sharding.
func parseDomain(s string) (Domain, bool) {
	switch s {
	case "core[i]":
		return DomainCore, true
	case "cache[i]":
		return DomainCache, true
	case "bank[i]":
		return DomainBank, true
	case "mesh":
		return DomainMesh, true
	case "sim-global":
		return DomainSimGlobal, true
	case "readonly":
		return DomainReadonly, true
	case "message":
		return DomainMessage, true
	}
	return DomainNone, false
}

// domainSpellings lists the legal annotation spellings for error text.
const domainSpellings = "core[i], cache[i], bank[i], mesh, sim-global, readonly, message"

// DomainOfPackage infers the domain of types declared in a package
// with no explicit //rowlint:owner annotation, keyed by the final
// import-path element (so testdata fixtures score like the real
// packages, mirroring DeterministicPackages). Packages absent from the
// table declare library types with no domain of their own: their state
// belongs to whichever component embeds it.
var DomainOfPackage = map[string]Domain{
	"core":         DomainCore,
	"cache":        DomainCache,
	"coherence":    DomainBank,
	"interconnect": DomainMesh,
	"sim":          DomainSimGlobal,
	"config":       DomainReadonly,
	"trace":        DomainReadonly,
}

// Annotation markers recognized on declarations.
const (
	ownerMarker = "//rowlint:owner"
	seamMarker  = "//rowlint:seam"
	entryMarker = "//rowlint:entry"
)

// SeamKind is the checkable obligation a //rowlint:seam declares. A
// seam is not trusted prose: the epochsafe analyzer proves the seam's
// body (and, for interface seams, every implementation) honours the
// declared kind, and the shard plan records the verdict.
type SeamKind string

const (
	// SeamSameIndex: the crossing stays on one shard because core[i],
	// cache[i] and bank[i] of the same index are co-scheduled. The body
	// may only write its own instance's state and message payloads.
	SeamSameIndex SeamKind = "same-index"
	// SeamBuffered: the crossing is deferred through the interconnect.
	// The body may only write message payloads and enqueue into mesh
	// state; the write lands on the peer shard at the next epoch.
	SeamBuffered SeamKind = "buffered"
	// SeamReduction: the crossing folds into sim-global accumulators
	// that commute, so per-shard replicas merge at epoch boundaries.
	// The body may only bump counters (++, +=, |=, ^=), grow or shrink
	// a free list it owns (x = append(x, ...), x = x[:n]), set a
	// nil-guarded first-error latch, and write message payloads.
	SeamReduction SeamKind = "reduction"
	// SeamInitOnly: the crossing happens during construction or
	// Restore, never on a visit path. The obligation is reachability:
	// no //rowlint:entry run loop may reach the seam.
	SeamInitOnly SeamKind = "init-only"
	// SeamKindInvalid marks a seam whose directive did not parse; the
	// directive parser reports it and the shard plan counts it
	// unproven.
	SeamKindInvalid SeamKind = ""
)

// parseSeamKind maps a directive's kind verb to a SeamKind.
func parseSeamKind(s string) (SeamKind, bool) {
	switch SeamKind(s) {
	case SeamSameIndex, SeamBuffered, SeamReduction, SeamInitOnly:
		return SeamKind(s), true
	}
	return SeamKindInvalid, false
}

// seamKindSpellings lists the legal seam kinds for error text.
const seamKindSpellings = "same-index, buffered, reduction, init-only"

// seamDecl is one parsed //rowlint:seam declaration: the checkable
// kind plus the recorded prose reason.
type seamDecl struct {
	Kind   SeamKind
	Reason string
}

// parseSeamDecl splits a seam directive's argument into kind and
// reason. Both are mandatory; a bad kind yields SeamKindInvalid with
// the full text kept as the reason so reports stay informative.
func parseSeamDecl(arg string) (seamDecl, bool) {
	kindWord, reason, _ := strings.Cut(arg, " ")
	kind, ok := parseSeamKind(kindWord)
	reason = strings.TrimSpace(reason)
	if !ok || reason == "" {
		return seamDecl{Kind: SeamKindInvalid, Reason: strings.TrimSpace(arg)}, false
	}
	return seamDecl{Kind: kind, Reason: reason}, true
}

// ownership is the per-package shard-ownership annotation table,
// built lazily and memoized on the Package.
type ownership struct {
	// typeDomain holds explicit //rowlint:owner annotations on type
	// declarations.
	typeDomain map[*types.TypeName]Domain
	// fieldDomain holds explicit //rowlint:owner annotations on
	// struct fields (overriding the field type's own domain).
	fieldDomain map[*types.Var]Domain
	// seams maps functions and interface methods annotated
	// //rowlint:seam <kind> <reason> — declared legal domain crossings
	// — to their parsed declaration.
	seams map[types.Object]seamDecl
	// entries lists //rowlint:entry functions: the roots of the
	// whole-program ownership walk (the run loop's visit paths).
	entries []*ast.FuncDecl
}

// Ownership returns the package's annotation table, building it on
// first use.
func (p *Package) Ownership() *ownership {
	if p.own != nil {
		return p.own
	}
	o := &ownership{
		typeDomain:  make(map[*types.TypeName]Domain),
		fieldDomain: make(map[*types.Var]Domain),
		seams:       make(map[types.Object]seamDecl),
	}
	p.own = o
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if arg, ok := markerArg(d.Doc, seamMarker); ok {
					if obj := p.defObj(d.Name); obj != nil {
						sd, _ := parseSeamDecl(arg)
						o.seams[obj] = sd
					}
				}
				if _, ok := markerArg(d.Doc, entryMarker); ok {
					o.entries = append(o.entries, d)
				}
			case *ast.GenDecl:
				o.collectGenDecl(p, d)
			}
		}
	}
	return o
}

// collectGenDecl gathers owner/seam annotations from a type or var
// declaration group. An annotation on the group's doc applies to every
// spec in it (the common single-type case).
func (o *ownership) collectGenDecl(p *Package, d *ast.GenDecl) {
	groupDomain, groupOK := domainArg(d.Doc)
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		dom, ok := domainArg(ts.Doc)
		if !ok {
			dom, ok = groupDomain, groupOK
		}
		if ok {
			if tn, _ := p.defObj(ts.Name).(*types.TypeName); tn != nil {
				o.typeDomain[tn] = dom
			}
		}
		switch t := ts.Type.(type) {
		case *ast.StructType:
			for _, f := range t.Fields.List {
				fd, ok := domainArg(f.Doc)
				if !ok {
					fd, ok = domainArg(f.Comment)
				}
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if v, _ := p.defObj(name).(*types.Var); v != nil {
						o.fieldDomain[v] = fd
					}
				}
			}
		case *ast.InterfaceType:
			for _, m := range t.Methods.List {
				arg, ok := markerArg(m.Doc, seamMarker)
				if !ok {
					arg, ok = markerArg(m.Comment, seamMarker)
				}
				if !ok {
					continue
				}
				sd, _ := parseSeamDecl(arg)
				for _, name := range m.Names {
					if fn := p.defObj(name); fn != nil {
						o.seams[fn] = sd
					}
				}
			}
		}
	}
}

func (p *Package) defObj(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.Defs[id]
}

// markerArg extracts the argument text of the given marker from a
// comment group ("", false when absent).
func markerArg(cg *ast.CommentGroup, marker string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == marker {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// domainArg extracts and parses an owner annotation from a comment
// group (DomainNone, false when absent or malformed; malformed
// spellings are reported by parseDirectives).
func domainArg(cg *ast.CommentGroup) (Domain, bool) {
	arg, ok := markerArg(cg, ownerMarker)
	if !ok {
		return DomainNone, false
	}
	d, ok := parseDomain(arg)
	return d, ok
}

// packageBase returns the final element of an import path.
func packageBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// resolver answers cross-package ownership questions through the
// loader's memoized package set. All packages a target package depends
// on are loaded (type-checking requires it), so annotation tables for
// any named type or function the target references are available.
type resolver struct {
	pkg *Package
}

// pkgFor returns the loaded Package declaring obj (nil for stdlib and
// unloaded packages).
func (r resolver) pkgFor(obj types.Object) *Package {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if r.pkg.loader == nil {
		if obj.Pkg() == r.pkg.Types {
			return r.pkg
		}
		return nil
	}
	return r.pkg.loader.pkgs[obj.Pkg().Path()]
}

// typeDomain resolves the ownership domain of a type: pointers are
// transparent, explicit annotations win, unannotated named types fall
// back to their package's inferred domain, and everything else
// (slices, maps, basics, unnamed structs, type parameters) has no
// domain of its own.
func (r resolver) typeDomain(t types.Type) Domain {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return DomainNone
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return DomainNone // error and other universe types
	}
	if dp := r.pkgFor(tn); dp != nil {
		if d, ok := dp.Ownership().typeDomain[tn]; ok {
			return d
		}
	}
	return DomainOfPackage[packageBase(tn.Pkg().Path())]
}

// fieldDomain returns an explicit owner annotation on a struct field
// (DomainNone when unannotated).
func (r resolver) fieldDomain(f *types.Var) Domain {
	if dp := r.pkgFor(f); dp != nil {
		if d, ok := dp.Ownership().fieldDomain[f]; ok {
			return d
		}
	}
	return DomainNone
}

// seamFor returns the //rowlint:seam declaration on a function or
// interface method (zero, false when not a seam).
func (r resolver) seamFor(fn types.Object) (seamDecl, bool) {
	if dp := r.pkgFor(fn); dp != nil {
		sd, ok := dp.Ownership().seams[fn]
		return sd, ok
	}
	return seamDecl{}, false
}

// componentPointer reports whether t is a pointer to a named type
// owned by a per-instance component domain — the shape component
// collections ([]*core.Core, []*cache.Private, []*coherence.Directory)
// hold. Indexing such a collection reaches a data-dependent instance,
// which is what makes an access cross-instance.
func (r resolver) componentPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return r.typeDomain(p.Elem()).Indexed()
}

// place describes the state an expression denotes.
type place struct {
	domain Domain
	// crossInstance marks a path that indexes into a collection of
	// component pointers (peer access: the instance reached depends on
	// the index value, not on the visiting component's identity) or
	// reaches package-level mutable state (shared by every instance).
	crossInstance bool
	// pkgLevel marks package-level variables: state shared by every
	// component instance in the process.
	pkgLevel bool
}

// exprPlace resolves the ownership domain of the state an expression
// denotes, walking selector/index/deref paths from their root. ctx is
// the domain the enclosing code executes in; receiver-rooted paths
// resolve to it naturally (the receiver's type carries the domain).
func exprPlace(pkg *Package, ctx Domain, e ast.Expr) place {
	r := resolver{pkg: pkg}
	return r.exprPlace(pkg, ctx, e)
}

func (r resolver) exprPlace(pkg *Package, ctx Domain, e ast.Expr) place {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pkg.ObjectOf(e)
		v, ok := obj.(*types.Var)
		if !ok {
			return place{}
		}
		pl := place{domain: r.typeDomain(v.Type())}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Package-level variable: shared mutable state.
			pl.pkgLevel, pl.crossInstance = true, true
			if pl.domain == DomainNone {
				pl.domain = DomainOfPackage[packageBase(v.Pkg().Path())]
			}
		}
		return pl
	case *ast.SelectorExpr:
		if pkg.Info != nil {
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				f, _ := sel.Obj().(*types.Var)
				if f != nil {
					if d := r.fieldDomain(f); d != DomainNone {
						return place{domain: d}
					}
				}
				base := r.exprPlace(pkg, ctx, e.X)
				if f != nil {
					if d := r.typeDomain(f.Type()); d != DomainNone {
						return place{domain: d, crossInstance: base.crossInstance}
					}
				}
				return base
			}
		}
		// Qualified identifier (pkgname.Var) or method value.
		return r.exprPlace(pkg, ctx, e.Sel)
	case *ast.IndexExpr:
		base := r.exprPlace(pkg, ctx, e.X)
		elem := indexedElem(pkg.TypeOf(e.X))
		if elem == nil {
			return base
		}
		if d := r.typeDomain(elem); d != DomainNone {
			return place{
				domain:        d,
				crossInstance: base.crossInstance || r.componentPointer(elem),
			}
		}
		return base
	case *ast.StarExpr:
		return r.exprPlace(pkg, ctx, e.X)
	case *ast.ParenExpr:
		return r.exprPlace(pkg, ctx, e.X)
	case *ast.CallExpr:
		// The result of a call: an accessor handing out a pointer into
		// owned state (d.entry(line)) carries its domain in the result
		// type; fresh values carry none.
		if t := pkg.TypeOf(e); t != nil {
			if _, ok := t.(*types.Pointer); ok {
				return place{domain: r.typeDomain(t)}
			}
		}
		return place{}
	case *ast.TypeAssertExpr:
		return r.exprPlace(pkg, ctx, e.X)
	}
	return place{}
}

// containerPlace resolves the state a write to lhs mutates: the
// container holding the written slot, not the value being traversed
// to. Writing s[i] mutates s's backing store; writing x.f mutates the
// struct x denotes; rebinding a plain local mutates nothing shared.
func containerPlace(pkg *Package, ctx Domain, lhs ast.Expr) place {
	r := resolver{pkg: pkg}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pkg.ObjectOf(lhs)
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			pl := place{domain: r.typeDomain(v.Type()), pkgLevel: true, crossInstance: true}
			if pl.domain == DomainNone {
				pl.domain = DomainOfPackage[packageBase(v.Pkg().Path())]
			}
			return pl
		}
		return place{} // rebinding a local or blank
	case *ast.SelectorExpr:
		if pkg.Info != nil {
			if sel, ok := pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				if f, _ := sel.Obj().(*types.Var); f != nil {
					if d := r.fieldDomain(f); d != DomainNone {
						return place{domain: d}
					}
				}
				return r.exprPlace(pkg, ctx, lhs.X)
			}
		}
		return containerPlace(pkg, ctx, lhs.Sel)
	case *ast.IndexExpr:
		// The slot lives in the indexed container's backing store.
		return r.exprPlace(pkg, ctx, lhs.X)
	case *ast.StarExpr:
		return r.exprPlace(pkg, ctx, lhs.X)
	case *ast.ParenExpr:
		return containerPlace(pkg, ctx, lhs.X)
	}
	return place{}
}

// indexedElem returns the element type an index expression reaches
// (nil for strings and unindexable types).
func indexedElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Pointer:
		if a, ok := u.Elem().Underlying().(*types.Array); ok {
			return a.Elem()
		}
	}
	return nil
}

// receiverDomain returns the domain a method executes in: the domain
// of its receiver's type (DomainNone for free functions and methods on
// library types).
func receiverDomain(pkg *Package, fd *ast.FuncDecl) Domain {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return DomainNone
	}
	t := pkg.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return DomainNone
	}
	return resolver{pkg: pkg}.typeDomain(t)
}
