// Package lint implements rowlint, the simulator-aware static-analysis
// pass. The repo's hardest-won contracts — byte-identical determinism,
// the MsgPool consume-or-retain ownership rule, and the zero-alloc hot
// path — are invariants the type system cannot express; rowlint turns
// them into build-time checks. The driver is stdlib-only (go/ast,
// go/parser, go/types): the module has no external dependencies and
// must stay hermetic.
//
// Analyzers report Findings; a finding can be silenced at its site with
//
//	//rowlint:ignore <analyzer> <reason>
//
// where the reason is mandatory (a suppression without a recorded
// justification is itself a finding). A directive on a line of its own
// applies to the next line; a trailing directive applies to its own
// line. Hot-path functions opt into the noalloc analyzer with a
// //rowlint:noalloc line in their doc comment.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer (or by the
// directive parser itself, under the pseudo-analyzer name "rowlint").
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Suppressed marks a finding silenced by a //rowlint:ignore
	// directive; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

// String renders the finding the way the CLI and golden files print it:
// file:line: analyzer: message. Suppressed findings carry the reason.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	return s
}

// Analyzer is one named check run over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package and accumulates its
// findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DeterministicPackages names the packages whose behaviour must be
// byte-reproducible across runs and hosts: everything the simulated
// system is built from. Experiment harnesses, CLIs and reporting
// packages may consult wall clocks and iterate maps freely; these may
// not. Matching is by the final import-path element, so the testdata
// fixtures under internal/lint/testdata score the same way the real
// packages do.
var DeterministicPackages = map[string]bool{
	"sim":          true,
	"coherence":    true,
	"cache":        true,
	"core":         true,
	"interconnect": true,
	"predictor":    true,
	"workload":     true,
	// The model checker's explored-state counts are compared across
	// runs and hosts in CI; its search order may not depend on map
	// iteration or wall clocks any more than the simulator may.
	"mcheck": true,
}

// Deterministic reports whether the pass's package is part of the
// deterministic core (see DeterministicPackages).
func (p *Pass) Deterministic() bool {
	path := p.Pkg.Path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return DeterministicPackages[path]
}

// Analyzers is the registry, in the order checks are run and reported.
func Analyzers() []*Analyzer {
	return []*Analyzer{BigCopy, EpochSafe, MapOrder, MsgPool, NoAlloc, NoAllocEscape, ShardOwn, WallClock}
}

// analyzerKnown reports whether name is a registered analyzer (used to
// validate //rowlint:ignore directives).
func analyzerKnown(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Run executes the analyzers over one loaded package, applies the
// package's suppression directives, and returns every finding —
// suppressed ones included, marked — sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		all = append(all, pass.findings...)
	}
	dirs, malformed := parseDirectives(pkg)
	all = append(all, malformed...)
	for i := range all {
		if d := dirs.match(all[i]); d != nil {
			all[i].Suppressed = true
			all[i].Reason = d.reason
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// Active filters to the findings that are not suppressed.
func Active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
