package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rowsim/internal/lint"
)

// loadRepoPackages loads every buildable package of the repository
// through the shared loader — the same set `rowlint ./...` lints.
func loadRepoPackages(t *testing.T) (*lint.Loader, string, []*lint.Package) {
	t.Helper()
	ld, root := sharedLoader(t)
	var pkgs []*lint.Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasBuildableGoFiles(path) {
			pkg, err := ld.Load(path)
			if err != nil {
				t.Fatalf("load %s: %v", path, err)
			}
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ld, root, pkgs
}

// TestRepoParallelReady is the acceptance gate for the parallel
// execution plan: over the repository's own packages the plan must
// prove every declared seam, find zero post-init writes and zero
// shard-domain sync hazards, derive the epoch bound from the
// interconnect timing, and regenerate byte-identically to the
// committed SHARDPLAN.json.
func TestRepoParallelReady(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	ld, root, pkgs := loadRepoPackages(t)
	plan, err := lint.BuildShardPlan(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	if !plan.Checks.Clean() {
		t.Errorf("plan checks not clean: %+v", plan.Checks)
	}
	if plan.Checks.UnprovenSeams != 0 || plan.Checks.InitOnlyViolations != 0 ||
		plan.Checks.ShardSyncHazards != 0 || plan.Checks.UnclassifiedEdges != 0 {
		t.Errorf("plan gates must all be zero, got %+v", plan.Checks)
	}
	if len(plan.Entries) < 2 {
		t.Errorf("entries = %v, want both scheduler loops", plan.Entries)
	}

	// The epoch bound is base + hops*(link+router) with hops >= 1; with
	// the committed default timing that is 4 + 1*(1+2) = 7 cycles.
	e := plan.Epoch
	if got := e.BaseCycles + e.MinHops*(e.LinkCycles+e.RouterCycles); e.MinCrossShardLatencyCycles != got {
		t.Errorf("epoch bound %d does not match its own formula (%d)", e.MinCrossShardLatencyCycles, got)
	}
	if e.MinCrossShardLatencyCycles != 7 {
		t.Errorf("epoch bound = %d cycles, want 7 from the default timing", e.MinCrossShardLatencyCycles)
	}

	if len(plan.Shards) != 7 {
		t.Errorf("plan lists %d shard domains, want all 7", len(plan.Shards))
	}
	for _, s := range plan.Shards {
		if s.Assignment == "" {
			t.Errorf("domain %s has no shard assignment", s.Domain)
		}
	}

	legal := map[string]bool{"same-index": true, "buffered": true, "reduction": true, "init-only": true}
	if len(plan.Seams) < 15 {
		t.Errorf("plan lists %d seams, want the repo's 15+", len(plan.Seams))
	}
	for _, s := range plan.Seams {
		if s.Verdict != "proven" {
			t.Errorf("seam %s (%s) is %s with %d finding(s)", s.Func, s.Kind, s.Verdict, s.Findings)
		}
		if !legal[s.Kind] {
			t.Errorf("seam %s carries illegal kind %q", s.Func, s.Kind)
		}
		if strings.TrimSpace(s.Reason) == "" {
			t.Errorf("seam %s has no recorded reason", s.Func)
		}
	}
	// The cache→core upcall seams are declared on interface methods and
	// must list every implementation that was proven.
	fanOut := 0
	for _, s := range plan.Seams {
		if len(s.Implementations) >= 2 {
			fanOut++
		}
	}
	if fanOut == 0 {
		t.Error("no interface seam lists multiple proven implementations")
	}

	// Regeneration must be deterministic and must match the committed
	// artifact — the same drift gate CI enforces.
	data, err := plan.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := lint.BuildShardPlan(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("plan JSON is not deterministic across rebuilds")
	}
	committed, err := os.ReadFile(filepath.Join(root, "SHARDPLAN.json"))
	if err != nil {
		t.Fatalf("committed plan missing: %v (regenerate with go run ./cmd/rowlint -shard-plan SHARDPLAN.json ./...)", err)
	}
	if want := append(data, '\n'); !bytes.Equal(committed, want) {
		t.Error("committed SHARDPLAN.json drifted from the regenerated plan; run go run ./cmd/rowlint -shard-plan SHARDPLAN.json ./...")
	}
}

// epochsafeFixture loads the epochsafe fixture packages plus the real
// config and interconnect packages (the epoch-bound derivation needs
// them in the linted set).
func epochsafeFixture(t *testing.T) (*lint.Loader, []*lint.Package) {
	t.Helper()
	ld, root := sharedLoader(t)
	caseDir, err := filepath.Abs(filepath.Join("testdata", "src", "epochsafe"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadCase(t, ld, caseDir)
	for _, dir := range []string{"internal/config", "internal/interconnect"} {
		pkg, err := ld.Load(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return ld, pkgs
}

// TestShardPlanFixtureVerdicts builds the plan over the epochsafe
// fixture and checks every verdict lands where the seeded violations
// say it must: kind mismatches and reachable init-only seams are
// unproven, commutative/buffered/unreachable seams are proven, and the
// gate counters see exactly the seeded violations.
func TestShardPlanFixtureVerdicts(t *testing.T) {
	ld, pkgs := epochsafeFixture(t)
	plan, err := lint.BuildShardPlan(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string]lint.SeamVerdict)
	for _, s := range plan.Seams {
		verdicts[s.Func] = s
	}
	want := map[string]string{
		"core.Globals.Bump":    "proven",   // increment commutes
		"core.Globals.SetLast": "unproven", // plain store is not a reduction
		"core.Globals.Wire":    "proven",   // unreachable init-only
		"core.Globals.Rewire":  "unproven", // init-only but Tick calls it
		"core.Router.Push":     "proven",   // buffered enqueue into mesh state
		"core.Sink.Ingest":     "unproven", // Spool's implementation breaks same-index
		"core.CacheSide.Spill": "unproven", // same-index writing sim-global
		"core.CacheSide.Evict": "unproven", // malformed kind
		"core.CacheSide.Sweep": "unproven", // missing reason
	}
	for fn, verdict := range want {
		s, ok := verdicts[fn]
		if !ok {
			t.Errorf("plan has no verdict for seam %s (have %v)", fn, plan.Seams)
			continue
		}
		if s.Verdict != verdict {
			t.Errorf("seam %s = %s (%d finding(s)), want %s", fn, s.Verdict, s.Findings, verdict)
		}
	}
	if s := verdicts["core.Sink.Ingest"]; len(s.Implementations) != 2 {
		t.Errorf("interface seam implementations = %v, want CacheSide and Spool", s.Implementations)
	}
	if k := verdicts["core.CacheSide.Evict"].Kind; k != "" {
		t.Errorf("malformed seam kind recorded as %q, want empty", k)
	}
	if c := plan.Checks; c.UnprovenSeams != 6 || c.InitOnlyViolations != 4 ||
		c.ShardSyncHazards != 8 || c.SuppressedFindings != 1 {
		t.Errorf("fixture gate counters = %+v, want 6 unproven / 4 init-only / 8 hazards / 1 suppressed", c)
	}
	if plan.Checks.Clean() {
		t.Error("fixture plan reports clean despite seeded violations")
	}
	if plan.Epoch.MinCrossShardLatencyCycles != 7 {
		t.Errorf("epoch bound = %d, want 7 (derived from the real config package)", plan.Epoch.MinCrossShardLatencyCycles)
	}
}

// TestOwnershipReportInterfaceFanOut: the whole-program walk must
// follow an interface call to every implementation in the module. The
// fixture's entry reaches Sink.Ingest; only by visiting both
// implementations can the report see CacheSide's reduction-seam call
// and Spool's package-level write.
func TestOwnershipReportInterfaceFanOut(t *testing.T) {
	ld, pkgs := epochsafeFixture(t)
	rep, err := lint.BuildOwnershipReport(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || !strings.Contains(rep.Entries[0], "core.Run") {
		t.Errorf("entries = %v, want the fixture's core.Run", rep.Entries)
	}
	type edge struct{ class, seamKind string }
	edges := make(map[string]edge)
	for _, e := range rep.Edges {
		edges[e.Kind+" "+e.Target] = edge{e.Class, e.SeamKind}
	}
	want := map[string]edge{
		// Through the interface: the call itself is the declared seam...
		"call core.Sink.Ingest": {"seam", "same-index"},
		// ...and the walk must reach both implementations' effects:
		// CacheSide.Ingest folds into the reduction seam, Spool.Ingest
		// writes shared package state.
		"call core.Globals.Bump": {"seam", "reduction"},
		"write core.globalSpill": {"unclassified", ""},
		// The other declared crossings keep their kinds; the mesh call
		// classifies as mesh-mediated before the seam check sees it.
		"call core.Globals.Rewire": {"seam", "init-only"},
		"call core.Router.Push":    {"mesh-mediated", ""},
		// Post-init config writes are walked and left unclassified.
		"write config.Config.Warmed": {"unclassified", ""},
	}
	for key, w := range want {
		got, ok := edges[key]
		if !ok {
			t.Errorf("report is missing edge %q (interface fan-out lost?); have %v", key, edges)
			continue
		}
		if got != w {
			t.Errorf("edge %q = %+v, want %+v", key, got, w)
		}
	}
}

// TestShardPlanJSONRoundTrip: the plan marshals deterministically,
// survives a decode/encode cycle byte-for-byte, and loses no seam
// kind or reason on the way — the properties CI's drift gate and the
// future executor both depend on.
func TestShardPlanJSONRoundTrip(t *testing.T) {
	ld, pkgs := epochsafeFixture(t)
	plan, err := lint.BuildShardPlan(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round lint.ShardPlan
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("plan JSON does not parse: %v", err)
	}
	data2, err := round.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("plan JSON is not stable across a decode/encode cycle:\n%s\n---\n%s", data, data2)
	}
	if round.Version != 1 || round.Module == "" {
		t.Errorf("round-tripped header lost: version=%d module=%q", round.Version, round.Module)
	}
	for i, s := range round.Seams {
		if s.Reason != plan.Seams[i].Reason || s.Kind != plan.Seams[i].Kind {
			t.Errorf("seam %s lost kind/reason in round trip: %+v vs %+v", s.Func, s, plan.Seams[i])
		}
	}
	// The HTML-unsafe formula must survive unescaped.
	if !bytes.Contains(data, []byte("hops >= 1")) {
		t.Errorf("formula was escaped or lost:\n%s", data)
	}
}

// TestOwnershipReportJSONRoundTrip: the edge map keeps seam kinds and
// reasons through a decode/encode cycle, byte-for-byte.
func TestOwnershipReportJSONRoundTrip(t *testing.T) {
	ld, pkgs := epochsafeFixture(t)
	rep, err := lint.BuildOwnershipReport(ld, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round lint.OwnershipReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	data2, err := round.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("report JSON is not stable across a decode/encode cycle")
	}
	kinds := 0
	for _, e := range round.Edges {
		if e.Class == "seam" {
			if e.SeamKind == "" {
				t.Errorf("seam edge %s lost its kind in round trip", e.Target)
			}
			if e.Reason == "" {
				t.Errorf("seam edge %s lost its reason in round trip", e.Target)
			}
			kinds++
		}
	}
	if kinds == 0 {
		t.Error("report has no seam edges to round-trip")
	}
}
