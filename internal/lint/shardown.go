package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardOwn proves the shard-partition property the epoch/barrier
// parallelism plan needs: every piece of mutable simulator state
// belongs to one ownership domain (core[i], cache[i], bank[i], mesh,
// sim-global, readonly, message — see Domain), and a component visited
// by the run loop only ever writes its own. Domains come from
// //rowlint:owner annotations on types and fields, with unannotated
// types inferred from their package (DomainOfPackage).
//
// The analyzer checks every method executing in a component domain
// and flags:
//
//   - writes (and alias escapes) to state owned by another domain
//   - writes to readonly state (config, traces) anywhere
//   - writes to package-level variables (state shared across every
//     instance of a component, which no shard can own)
//   - cross-instance access: indexing into a collection of component
//     pointers reaches a peer whose identity is data-dependent
//   - calls into another domain that are not mesh-mediated (the mesh
//     is the one legal cross-shard channel), not a declared
//     //rowlint:seam, not provably read-only, and not message-payload
//     manipulation
//
// The sim-global domain (the System driver) is exempt from call and
// alias checks: the sequential scheduler's whole job is to visit every
// component, and the parallel plan replaces it per shard. Its direct
// writes are still checked.
//
// rowlint -ownership-report complements this per-package pass with a
// whole-program walk from the //rowlint:entry run loops, emitting the
// machine-readable cross-domain edge map CI gates on.
var ShardOwn = &Analyzer{
	Name: "shardown",
	Doc:  "flags writes, alias escapes and undeclared calls that cross shard-ownership domains",
	Run:  runShardown,
}

func runShardown(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctx := receiverDomain(pass.Pkg, fd)
			switch ctx {
			case DomainCore, DomainCache, DomainBank, DomainMesh, DomainSimGlobal:
			default:
				continue // free functions and library-type methods inherit their caller's domain
			}
			walkAccesses(pass.Pkg, ctx, fd.Body, func(acc access) {
				reportAccess(pass, ctx, acc)
			})
		}
	}
}

// accessKind distinguishes the shapes of a domain crossing.
type accessKind uint8

const (
	accWrite accessKind = iota
	accAlias
	accCall
	accRead
)

// access is one observation the ownership walker emits: a write, an
// alias escape, a resolvable call, or a cross-domain field read.
type access struct {
	pos    token.Pos
	kind   accessKind
	target place  // written/aliased/read state (writes, alias, reads)
	desc   string // rendered target, e.g. "config.Config.NumCores" or "cache.Private.Deliver"

	callee   *types.Func // resolved callee (calls only)
	calleeTo place       // callee receiver's place (calls only)

	// lhs/stmt carry the written expression and its enclosing
	// assignment (writes only), so the epochsafe reduction check can
	// prove a store commutative (x++, x += v, x = append(x, ...)).
	lhs  ast.Expr
	stmt ast.Node
}

// walkAccesses walks a function body executing in domain ctx and
// reports every ownership-relevant access to visit. Reads are emitted
// only for selector paths reaching a foreign domain (the report
// classifies them; the per-package analyzer ignores them).
func walkAccesses(pkg *Package, ctx Domain, body ast.Node, visit func(access)) {
	written := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				written[lhs] = true
				pl := containerPlace(pkg, ctx, lhs)
				visit(access{pos: lhs.Pos(), kind: accWrite, target: pl, desc: renderTarget(pkg, lhs), lhs: lhs, stmt: n})
			}
		case *ast.IncDecStmt:
			written[n.X] = true
			pl := containerPlace(pkg, ctx, n.X)
			visit(access{pos: n.X.Pos(), kind: accWrite, target: pl, desc: renderTarget(pkg, n.X), lhs: n.X, stmt: n})
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			pl := exprPlace(pkg, ctx, n.X)
			visit(access{pos: n.Pos(), kind: accAlias, target: pl, desc: renderTarget(pkg, n.X)})
		case *ast.CallExpr:
			fn := resolveCallee(pkg, n)
			if fn == nil {
				return true
			}
			acc := access{pos: n.Pos(), kind: accCall, callee: fn, desc: renderFunc(fn)}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if recv := methodReceiverExpr(pkg, sel); recv != nil {
					acc.calleeTo = exprPlace(pkg, ctx, recv)
				}
			}
			visit(acc)
		case *ast.SelectorExpr:
			if written[n] {
				return true
			}
			if pkg.Info != nil {
				if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					pl := exprPlace(pkg, ctx, n)
					if foreignRead(ctx, pl) {
						visit(access{pos: n.Pos(), kind: accRead, target: pl, desc: renderTarget(pkg, n)})
						return false // the outermost foreign selector covers its base
					}
				}
			}
		}
		return true
	})
}

// foreignRead reports whether reading state at pl crosses out of ctx.
func foreignRead(ctx Domain, pl place) bool {
	switch pl.domain {
	case DomainNone, DomainMessage, ctx:
		return pl.crossInstance && pl.domain == ctx
	}
	return true
}

// reportAccess turns one walker observation into a finding when it
// violates the ownership rules (the per-package half of shardown; the
// whole-program report additionally classifies the legal crossings).
func reportAccess(pass *Pass, ctx Domain, acc access) {
	switch acc.kind {
	case accWrite:
		pl := acc.target
		switch {
		case pl.pkgLevel:
			pass.Reportf(acc.pos, "write to package-level state %s: shared across every %s instance, so no shard can own it; make it per-component or justify with //rowlint:ignore shardown <reason>",
				acc.desc, ctx.Render())
		case pl.domain == DomainReadonly:
			pass.Reportf(acc.pos, "write to readonly state %s from %s context: config and traces are immutable after construction; copy the value into owned state or justify with //rowlint:ignore shardown <reason>",
				acc.desc, ctx.Render())
		case pl.domain == DomainNone, pl.domain == DomainMessage:
			// Locals, library state embedded in the receiver, and
			// message payloads held by this component.
		case pl.domain != ctx:
			pass.Reportf(acc.pos, "cross-domain write to %s state %s from %s context: route it through the mesh message API or a //rowlint:seam, or justify with //rowlint:ignore shardown <reason>",
				pl.domain.Render(), acc.desc, ctx.Render())
		case pl.crossInstance:
			pass.Reportf(acc.pos, "cross-instance write to peer %s state %s: the written instance is data-dependent, not the visiting component; route it through the mesh or justify with //rowlint:ignore shardown <reason>",
				ctx.Render(), acc.desc)
		}
	case accAlias:
		if ctx == DomainSimGlobal {
			return // the driver hands out component references by design
		}
		pl := acc.target
		if (pl.domain != DomainNone && pl.domain != DomainMessage && pl.domain != ctx && pl.domain != DomainReadonly) ||
			(pl.domain == ctx && pl.crossInstance) {
			pass.Reportf(acc.pos, "alias escape: taking the address of %s state %s from %s context lets writes bypass the ownership check; pass a message or justify with //rowlint:ignore shardown <reason>",
				pl.domain.Render(), acc.desc, ctx.Render())
		}
	case accCall:
		if ctx == DomainSimGlobal {
			return // the sequential scheduler visits everyone by design
		}
		class := classifyCall(pass.Pkg, ctx, acc)
		if class.name != classUnclassified {
			return
		}
		pass.Reportf(acc.pos, "cross-domain call to %s method %s from %s context: not mesh-mediated, not a //rowlint:seam, and not provably read-only; declare the seam or justify with //rowlint:ignore shardown <reason>",
			class.to.Render(), acc.desc, ctx.Render())
	}
}

// classification names for cross-domain edges (also the report's
// vocabulary).
const (
	classInternal     = ""              // same domain, same instance: not an edge
	classMesh         = "mesh-mediated" // through the interconnect, the legal channel
	classScheduler    = "scheduler"     // the sequential driver visiting components
	classSeam         = "seam"          // a declared //rowlint:seam crossing
	classReadOnly     = "read-only"     // provably mutation-free foreign access
	classMessage      = "message"       // transferable payload manipulation
	classSuppressed   = "suppressed"    // silenced //rowlint:ignore shardown with reason
	classUnclassified = "unclassified"  // an illegal crossing: a finding and a CI failure
)

// callClass is a classified call edge.
type callClass struct {
	name   string
	to     Domain
	kind   SeamKind // seam kind when name == classSeam
	reason string   // seam reason when name == classSeam
}

// classifyCall decides how a resolvable call from ctx crosses domains.
func classifyCall(pkg *Package, ctx Domain, acc access) callClass {
	r := resolver{pkg: pkg}
	fn := acc.callee
	to := DomainNone
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		to = r.typeDomain(sig.Recv().Type())
	}
	crossInstance := acc.calleeTo.crossInstance
	if to == DomainNone && !crossInstance {
		// Free functions and library-type methods execute in the
		// caller's domain; their own bodies are checked (or walked by
		// the report) in that context.
		return callClass{name: classInternal, to: ctx}
	}
	if to == ctx && !crossInstance {
		return callClass{name: classInternal, to: to}
	}
	if to == DomainMessage {
		return callClass{name: classMessage, to: to}
	}
	if to == DomainMesh {
		return callClass{name: classMesh, to: to}
	}
	if sd, ok := r.seamFor(fn); ok {
		return callClass{name: classSeam, to: to, kind: sd.Kind, reason: sd.Reason}
	}
	if ctx == DomainSimGlobal {
		return callClass{name: classScheduler, to: to}
	}
	if to == DomainReadonly || methodReadOnly(r, fn) {
		return callClass{name: classReadOnly, to: to}
	}
	return callClass{name: classUnclassified, to: to}
}

// resolveCallee resolves a call to a concrete or interface function
// object (nil for builtins, conversions and func-typed values).
func resolveCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	if pkg.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// methodReceiverExpr returns the receiver expression of a method call
// spelled x.M (nil for package-qualified calls).
func methodReceiverExpr(pkg *Package, sel *ast.SelectorExpr) ast.Expr {
	if pkg.Info == nil {
		return nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// methodReadOnly reports whether fn provably never mutates domained
// state: its body (and, recursively, same-module callees up to a small
// depth) contains no write whose container carries a domain, no
// package-level write, and no unresolvable or interface call.
// Stdlib calls are trusted not to mutate simulator state. The result
// is memoized on the loader.
func methodReadOnly(r resolver, fn *types.Func) bool {
	if r.pkg.loader == nil {
		return false
	}
	return methodReadOnlyDepth(r, fn, 6)
}

func methodReadOnlyDepth(r resolver, fn *types.Func, depth int) bool {
	memo := r.pkg.loader.readonlyMemo
	if v, ok := memo[fn]; ok {
		return v
	}
	if depth == 0 {
		return false
	}
	dp := r.pkgFor(fn)
	if dp == nil {
		return false // stdlib and unloaded targets are never proofs
	}
	fd := dp.FuncDecls()[fn]
	if fd == nil || fd.Body == nil {
		return false
	}
	// Optimistic for recursion: a cycle is read-only unless some
	// member writes, which flips the final memoized result.
	memo[fn] = true
	ctx := receiverDomain(dp, fd)
	readonly := true
	walkAccesses(dp, ctx, fd.Body, func(acc access) {
		if !readonly {
			return
		}
		switch acc.kind {
		case accWrite:
			if acc.target.domain != DomainNone || acc.target.pkgLevel {
				readonly = false
			}
		case accAlias:
			// Handing out addresses of owned state is fine for a
			// read-only probe only when the state has no domain.
			if acc.target.domain != DomainNone {
				readonly = false
			}
		case accCall:
			callee := acc.callee
			if callee.Pkg() == nil {
				readonly = false
				return
			}
			if r.pkgFor(callee) == nil {
				// Outside the module: trust the stdlib not to reach
				// back into simulator state.
				return
			}
			if !methodReadOnlyDepth(r, callee, depth-1) {
				readonly = false
			}
		}
	})
	memo[fn] = readonly
	return readonly
}

// FuncDecls indexes the package's function and method declarations by
// their type-checker objects, memoized.
func (p *Package) FuncDecls() map[*types.Func]*ast.FuncDecl {
	if p.decls == nil {
		p.decls = packageFuncDecls(p)
	}
	return p.decls
}

// renderTarget renders the state an lvalue denotes as Type.field when
// resolvable, falling back to the source text shape.
func renderTarget(pkg *Package, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if pkg.Info != nil {
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return typeShortName(sel.Recv()) + "." + e.Sel.Name
			}
		}
		return renderTarget(pkg, e.X) + "." + e.Sel.Name
	case *ast.Ident:
		if obj := pkg.ObjectOf(e); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
		}
		return e.Name
	case *ast.IndexExpr:
		return renderTarget(pkg, e.X) + "[...]"
	case *ast.StarExpr:
		return renderTarget(pkg, e.X)
	case *ast.ParenExpr:
		return renderTarget(pkg, e.X)
	case *ast.CallExpr:
		return renderTarget(pkg, e.Fun) + "()"
	}
	return "<expr>"
}

// typeShortName renders a type as pkg.Name, dropping pointers.
func typeShortName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		tn := named.Obj()
		if tn.Pkg() != nil {
			return tn.Pkg().Name() + "." + tn.Name()
		}
		return tn.Name()
	}
	return t.String()
}

// renderFunc renders a function object as pkg.Type.Method or pkg.Func.
func renderFunc(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return typeShortName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
