package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path string // import path ("rowsim/internal/sim")
	Dir  string // absolute directory

	Fset  *token.FileSet
	Files []*ast.File
	// Src holds each file's source bytes by filename, used by the
	// suppression parser to decide whether a directive stands alone on
	// its line.
	Src map[string][]byte

	Types *types.Package
	Info  *types.Info

	// TypeErrors collects type-checking problems. Analysis proceeds
	// with partial type information; `go build` is the authority on
	// whether the code compiles.
	TypeErrors []error

	// Escapes holds compiler escape diagnostics captured from
	// `go build -gcflags=-m` (see CaptureEscapes); EscapesCaptured
	// distinguishes "captured, none found" from "never captured", so
	// the noalloc-escape analyzer can refuse to pass vacuously.
	Escapes         []BuildDiag
	EscapesCaptured bool

	// loader links back to the module loader so cross-package
	// ownership annotations resolve through the memoized package set.
	loader *Loader
	// own memoizes the package's shard-ownership annotation table.
	own *ownership
	// decls memoizes FuncDecls().
	decls map[*types.Func]*ast.FuncDecl
	// epoch memoizes epochFindings(); epochAt records the loader
	// package-set size it was computed at (reachability and interface
	// fan-out can change as more packages load).
	epoch   []epochFinding
	epochAt int
}

// TypeOf returns the static type of an expression, or nil when type
// checking could not resolve it. Analyzers treat nil conservatively
// (no finding).
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (nil when unknown).
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Loader parses and type-checks packages of one module, resolving
// module-internal imports itself and delegating the standard library
// to the toolchain's from-source importer. Results are memoized, so
// linting the whole repo type-checks each dependency once.
//
// The loader is not safe for concurrent use.
type Loader struct {
	ModRoot string // absolute module root (directory of go.mod)
	ModPath string // module path from go.mod

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // by import path

	loading map[string]bool // cycle guard

	// readonlyMemo caches methodReadOnly results across packages.
	readonlyMemo map[*types.Func]bool

	// implMemo caches interface-method → implementations resolution;
	// implMemoPkgs records the package-set size it was computed at, so
	// loading more packages (which can add implementations)
	// invalidates it. reachMemo/reachMemoPkgs memoize the entry-roots
	// reachability set the same way (see reachableFromEntries).
	implMemo      map[*types.Func][]*types.Func
	implMemoPkgs  int
	reachMemo     map[*types.Func]bool
	reachMemoPkgs int
}

// NewLoader builds a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),

		readonlyMemo: make(map[*types.Func]bool),
	}
}

// FindModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.ModPath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// Load parses and type-checks the package in dir (non-test files only:
// tests may freely use maps, clocks and fmt). The result is memoized
// by import path.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.pathFor(dir)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.fset,
		Src:    make(map[string][]byte),
		loader: l,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Src[full] = src
		pkg.Files = append(pkg.Files, f)
	}

	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never fails hard with a non-nil Error handler; partial
	// information is recorded in pkg.Info either way.
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)

	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader, everything else through the from-source stdlib
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
