package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MsgPool enforces the pool ownership discipline documented on
// coherence.MsgPool: every message drawn from the pool (Get/New) must,
// on every control-flow path — error paths included — be released
// (Put), handed to another owner (passed to a call such as Send or a
// handler), retained (stored into a field, slice, map or channel), or
// returned. A message that reaches the end of its scope still owned is
// a leak: the free list shrinks, the steady state starts allocating,
// and the AllocsPerRun gates rot.
//
// Two further rules catch the inverse bugs on any *Msg variable the
// function tracks (pool results and *Msg parameters): a message must
// never be used after it was Put (the pool zeroes it and will hand it
// to an unrelated transaction), and never Put twice.
//
// The analysis is a per-function abstract interpretation over the AST:
// intraprocedural and deliberately ownership-optimistic at call
// boundaries (passing a message to any call transfers ownership).
// The runtime conservation check (sim.MsgAccounting, asserted at every
// successful end-of-run) is the dynamic complement covering whatever
// this static pass trusts.
var MsgPool = &Analyzer{
	Name: "msgpool",
	Doc:  "checks consume-or-retain ownership of pooled coherence messages",
	Run:  runMsgPool,
}

// ownState is the abstract ownership state of one tracked variable.
type ownState int

const (
	ownLive  ownState = iota // pool-owned here: must be consumed
	ownMoved                 // transferred/retained/param: no leak duty
	ownPut                   // released: any further use is a bug
)

type msgVar struct {
	obj    *types.Var
	origin token.Position // where the message was obtained
	what   string         // "pool.Get" / "pool.New"
}

type poolFlow struct {
	pass  *Pass
	fn    *ast.FuncDecl
	vars  map[*types.Var]*msgVar
	state map[*types.Var]ownState
}

func runMsgPool(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pf := &poolFlow{
				pass:  pass,
				fn:    fd,
				vars:  make(map[*types.Var]*msgVar),
				state: make(map[*types.Var]ownState),
			}
			// *Msg parameters are tracked for use-after-Put (the
			// caller owns them; dropping one here is legal — the
			// consume-or-retain duty stays with the single consumption
			// point that received it from the network).
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := pass.Pkg.ObjectOf(name).(*types.Var); ok && isMsgPtr(v.Type()) {
						pf.vars[v] = &msgVar{obj: v, origin: pass.Pkg.Fset.Position(name.Pos()), what: "parameter"}
						pf.state[v] = ownMoved
					}
				}
			}
			terminated := pf.block(fd.Body.List, fd.Body.Rbrace)
			if !terminated {
				pf.leakCheck(fd.Body.Rbrace, "end of function")
			}
		}
	}
}

// isMsgPtr reports whether t is *Msg for a named type Msg (matched by
// name so the fixture packages under testdata score like the real
// coherence package).
func isMsgPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Msg"
}

// poolCall classifies a call on a MsgPool receiver; returns "" for
// other calls.
func (pf *poolFlow) poolCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Get", "New", "Put":
	default:
		return ""
	}
	t := pf.pass.Pkg.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "MsgPool" {
		return ""
	}
	return sel.Sel.Name
}

// block runs the statements of one lexical scope. Variables first
// obtained inside the scope must be consumed by the time it ends.
// Returns whether every path through the scope terminated (return,
// panic, branch).
func (pf *poolFlow) block(stmts []ast.Stmt, end token.Pos) bool {
	before := make(map[*types.Var]bool, len(pf.state))
	for v := range pf.state {
		before[v] = true
	}
	terminated := false
	for _, s := range stmts {
		if terminated {
			break // unreachable; parser-verified code rarely has any
		}
		terminated = pf.stmt(s)
	}
	if !terminated {
		// Scope ends: messages obtained in it die here.
		for v, st := range pf.state {
			if st == ownLive && !before[v] {
				pf.reportLeak(v, end, "end of scope")
				pf.state[v] = ownMoved
			}
		}
	}
	return terminated
}

// leakCheck reports every still-live tracked message at an exit point.
func (pf *poolFlow) leakCheck(pos token.Pos, where string) {
	for v, st := range pf.state {
		if st == ownLive {
			pf.reportLeak(v, pos, where)
			pf.state[v] = ownMoved // one report per path suffices
		}
	}
}

func (pf *poolFlow) reportLeak(v *types.Var, pos token.Pos, where string) {
	mv := pf.vars[v]
	pf.pass.Reportf(pos,
		"message %q from %s (line %d) is neither Put, retained, nor forwarded on the path reaching %s: the pool leaks",
		v.Name(), mv.what, mv.origin.Line, where)
}

// stmt interprets one statement; returns true when the statement
// terminates the path (return, panic, branch).
func (pf *poolFlow) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		pf.assign(s)
	case *ast.ExprStmt:
		pf.expr(s.X)
		return pf.isTerminatorCall(s.X)
	case *ast.DeferStmt:
		pf.expr(s.Call)
	case *ast.GoStmt:
		pf.expr(s.Call)
	case *ast.SendStmt:
		pf.consumeIdent(s.Value, "channel send")
		pf.expr(s.Chan)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			pf.consumeIdent(r, "return")
			pf.expr(r)
		}
		pf.leakCheck(s.Pos(), "this return")
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			pf.stmt(s.Init)
		}
		pf.expr(s.Cond)
		branches := []ast.Stmt{s.Body}
		if s.Else != nil {
			branches = append(branches, s.Else)
		} else {
			branches = append(branches, nil)
		}
		return pf.branch(branches)
	case *ast.SwitchStmt:
		if s.Init != nil {
			pf.stmt(s.Init)
		}
		if s.Tag != nil {
			pf.expr(s.Tag)
		}
		return pf.caseBranches(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			pf.stmt(s.Init)
		}
		pf.stmt(s.Assign)
		return pf.caseBranches(s.Body)
	case *ast.SelectStmt:
		return pf.caseBranches(s.Body)
	case *ast.ForStmt:
		if s.Init != nil {
			pf.stmt(s.Init)
		}
		if s.Cond != nil {
			pf.expr(s.Cond)
		}
		if s.Post != nil {
			pf.stmt(s.Post)
		}
		pf.loopBody(s.Body)
		return s.Cond == nil // `for {}` only exits via break/return
	case *ast.RangeStmt:
		pf.expr(s.X)
		pf.loopBody(s.Body)
	case *ast.BlockStmt:
		return pf.block(s.List, s.Rbrace)
	case *ast.LabeledStmt:
		return pf.stmt(s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto leave the scope; stay lax (no leak check:
		// a loop-carried message may be consumed on a later iteration).
		return true
	case *ast.IncDecStmt:
		pf.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						pf.expr(v)
					}
				}
			}
		}
	}
	return false
}

// branch analyzes alternative paths (if/else arms), merging the
// resulting states: a message live on any surviving arm stays live; a
// message Put on any surviving arm is poisoned for later use.
func (pf *poolFlow) branch(arms []ast.Stmt) bool {
	entry := pf.snapshot()
	var outs []map[*types.Var]ownState
	allTerminated := true
	for _, arm := range arms {
		pf.state = cloneState(entry)
		term := false
		if arm != nil {
			term = pf.stmt(arm)
		}
		if !term {
			outs = append(outs, pf.state)
			allTerminated = false
		}
	}
	pf.state = mergeStates(entry, outs)
	return allTerminated
}

// caseBranches analyzes a switch/select body clause-by-clause. A
// switch without a default keeps the fall-through path alive.
func (pf *poolFlow) caseBranches(body *ast.BlockStmt) bool {
	entry := pf.snapshot()
	var outs []map[*types.Var]ownState
	hasDefault := false
	allTerminated := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			pf.state = cloneState(entry)
			for _, e := range c.List {
				pf.expr(e)
			}
			pf.state = cloneState(entry)
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			pf.state = cloneState(entry)
			if c.Comm != nil {
				pf.stmt(c.Comm)
			}
			term := pf.block(c.Body, body.Rbrace)
			if !term {
				outs = append(outs, pf.state)
				allTerminated = false
			}
			continue
		}
		pf.state = cloneState(entry)
		term := pf.block(stmts, body.Rbrace)
		if !term {
			outs = append(outs, pf.state)
			allTerminated = false
		}
	}
	if !hasDefault {
		outs = append(outs, cloneState(entry))
		allTerminated = false
	}
	pf.state = mergeStates(entry, outs)
	return allTerminated
}

// loopBody analyzes a loop body in its own scope: messages obtained
// inside one iteration must be consumed within it.
func (pf *poolFlow) loopBody(body *ast.BlockStmt) {
	entry := pf.snapshot()
	pf.state = cloneState(entry)
	term := pf.block(body.List, body.Rbrace)
	out := pf.state
	if term {
		out = entry
	}
	pf.state = mergeStates(entry, []map[*types.Var]ownState{out})
}

func (pf *poolFlow) snapshot() map[*types.Var]ownState { return cloneState(pf.state) }

func cloneState(m map[*types.Var]ownState) map[*types.Var]ownState {
	out := make(map[*types.Var]ownState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeStates joins surviving branch states. Live wins over moved
// (leaking on one path is a leak); Put wins over moved (using after a
// conditional Put is a bug on that path).
func mergeStates(entry map[*types.Var]ownState, outs []map[*types.Var]ownState) map[*types.Var]ownState {
	if len(outs) == 0 {
		return cloneState(entry)
	}
	merged := cloneState(outs[0])
	for _, out := range outs[1:] {
		for v, st := range out {
			cur, ok := merged[v]
			if !ok {
				merged[v] = st
				continue
			}
			if st == ownLive || cur == ownLive {
				merged[v] = ownLive
			} else if st == ownPut || cur == ownPut {
				merged[v] = ownPut
			}
		}
	}
	return merged
}

// assign handles tracking starts (x := pool.Get()), ownership
// transfers through aliasing, and retention through field stores.
func (pf *poolFlow) assign(s *ast.AssignStmt) {
	// Pairwise only when the counts line up (not a multi-value call).
	pairwise := len(s.Lhs) == len(s.Rhs)
	for i, rhs := range s.Rhs {
		pf.expr(rhs)
		if !pairwise {
			continue
		}
		lhs := s.Lhs[i]
		// Retention: storing the tracked message anywhere but a plain
		// local identifier parks it under a new owner.
		if id, ok := rhs.(*ast.Ident); ok {
			if v := pf.trackedIdent(id); v != nil {
				if _, plain := lhs.(*ast.Ident); !plain {
					pf.moveVar(v)
				} else {
					// Alias: ownership transfers to the new name; the
					// analysis stops tracking (a rename, not a copy
					// the protocol cares about).
					pf.moveVar(v)
				}
			}
		}
		// Tracking start: a fresh pool message bound to an identifier.
		if call, ok := rhs.(*ast.CallExpr); ok {
			what := pf.poolCall(call)
			if what == "Get" || what == "New" {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if v, ok := pf.pass.Pkg.ObjectOf(id).(*types.Var); ok {
						if cur, tracked := pf.state[v]; tracked && cur == ownLive {
							pf.reportLeak(v, s.Pos(), "this reassignment")
						}
						pf.vars[v] = &msgVar{
							obj:    v,
							origin: pf.pass.Pkg.Fset.Position(call.Pos()),
							what:   "pool." + what,
						}
						pf.state[v] = ownLive
					}
				}
			}
		}
	}
}

// expr walks an expression: flags uses of Put messages, applies Put
// transitions, and treats a bare tracked identifier appearing as a
// call argument, composite-literal element or address-taken operand as
// an ownership transfer.
func (pf *poolFlow) expr(e ast.Expr) {
	if e == nil {
		return
	}
	// First the use-after-Put sweep over every identifier occurrence.
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v := pf.trackedIdent(id); v != nil && pf.state[v] == ownPut {
			mv := pf.vars[v]
			pf.pass.Reportf(id.Pos(),
				"%q is used after Put: the pool has zeroed it and may already have reissued it (message from %s, line %d)",
				id.Name, mv.what, mv.origin.Line)
			pf.state[v] = ownMoved // one report per misuse site
		}
		return true
	})
	// Then the ownership transitions.
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pf.poolCall(n) == "Put" && len(n.Args) == 1 {
				if id, ok := n.Args[0].(*ast.Ident); ok {
					if v := pf.trackedIdent(id); v != nil {
						pf.state[v] = ownPut
						return false // args handled
					}
				}
			}
			for _, arg := range n.Args {
				pf.consumeIdent(arg, "call")
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					pf.consumeIdent(kv.Value, "composite literal")
				} else {
					pf.consumeIdent(el, "composite literal")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				pf.consumeIdent(n.X, "address-of")
			}
		case *ast.FuncLit:
			// The closure may stash or release the message later.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := pf.trackedIdent(id); v != nil {
						pf.moveVar(v)
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// consumeIdent transfers ownership when the expression is a bare
// tracked identifier (not a field read like m.Line).
func (pf *poolFlow) consumeIdent(e ast.Expr, _ string) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if v := pf.trackedIdent(id); v != nil {
		pf.moveVar(v)
	}
}

func (pf *poolFlow) moveVar(v *types.Var) {
	if pf.state[v] == ownLive {
		pf.state[v] = ownMoved
	}
}

// trackedIdent resolves an identifier to a tracked message variable.
func (pf *poolFlow) trackedIdent(id *ast.Ident) *types.Var {
	v, ok := pf.pass.Pkg.ObjectOf(id).(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := pf.vars[v]; !tracked {
		return nil
	}
	return v
}

// isTerminatorCall reports whether the expression statement cannot
// fall through (panic, os.Exit, log.Fatal*, runtime.Goexit).
func (pf *poolFlow) isTerminatorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic" && isBuiltin(pf.pass.Pkg, fun)
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if isPackage(pf.pass.Pkg, id, "os") && fun.Sel.Name == "Exit" {
			return true
		}
		if isPackage(pf.pass.Pkg, id, "log") && strings.HasPrefix(fun.Sel.Name, "Fatal") {
			return true
		}
		if isPackage(pf.pass.Pkg, id, "runtime") && fun.Sel.Name == "Goexit" {
			return true
		}
	}
	return false
}
