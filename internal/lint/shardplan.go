package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// ShardPlan is the machine-readable parallel execution plan rowlint
// -shard-plan emits: the artifact the future epoch/barrier executor
// consumes directly. It records the epoch bound derived from the
// interconnect's hop costs, the per-domain shard assignment, and a
// verdict for every declared seam. The plan is fully deterministic (no
// timestamps, sorted slices), so CI can regenerate it and fail on any
// drift from the committed copy.
type ShardPlan struct {
	Version int    `json:"version"`
	Module  string `json:"module"`
	// Entries are the //rowlint:entry run-loop roots the proofs walk
	// from.
	Entries []string         `json:"entries"`
	Epoch   EpochBound       `json:"epoch"`
	Shards  []ShardAssignment `json:"shards"`
	Seams   []SeamVerdict    `json:"seams"`
	Checks  PlanChecks       `json:"checks"`
}

// shardPlanVersion bumps when the schema changes shape.
const shardPlanVersion = 1

// EpochBound is the derived epoch sizing: cross-shard messages travel
// through the mesh, and the cheapest mesh delivery (adjacent nodes,
// default timing) takes MinCrossShardLatencyCycles. An epoch no longer
// than that can exchange messages only at barriers and still be
// bit-identical to the sequential schedule. The values are extracted
// from the config package's Default() literal; a run with custom
// timing must recompute the bound with the same formula.
type EpochBound struct {
	MinCrossShardLatencyCycles int64  `json:"min_cross_shard_latency_cycles"`
	MinHops                    int64  `json:"min_hops"`
	LinkCycles                 int64  `json:"link_cycles"`
	RouterCycles               int64  `json:"router_cycles"`
	BaseCycles                 int64  `json:"base_cycles"`
	Formula                    string `json:"formula"`
	Source                     string `json:"source"`
}

// ShardAssignment records how one ownership domain maps onto the
// epoch-parallel execution: which shard runs it, or how shards share
// it.
type ShardAssignment struct {
	Domain     string   `json:"domain"`
	Assignment string   `json:"assignment"`
	Types      []string `json:"types,omitempty"` // named types owned by the domain (from the ownership report)
}

// SeamVerdict is the per-seam proof result: the declared kind, the
// recorded reason, and whether epochsafe proved the obligation.
type SeamVerdict struct {
	Func   string `json:"func"`
	Domain string `json:"domain,omitempty"` // callee-side domain of the crossing
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
	// Verdict is "proven" or "unproven". Suppressed findings do not
	// block a proof but are recorded so the plan shows what was waived.
	Verdict    string `json:"verdict"`
	Findings   int    `json:"findings,omitempty"`
	Suppressed int    `json:"suppressed,omitempty"`
	// Implementations lists the concrete methods proven for a seam
	// declared on an interface method.
	Implementations []string `json:"implementations,omitempty"`
}

// PlanChecks are the gate counters CI fails on.
type PlanChecks struct {
	UnprovenSeams      int `json:"unproven_seams"`
	InitOnlyViolations int `json:"init_only_violations"`
	ShardSyncHazards   int `json:"shard_sync_hazards"`
	UnclassifiedEdges  int `json:"unclassified_edges"`
	SuppressedFindings int `json:"suppressed_findings"`
}

// Clean reports whether every gate is zero.
func (c PlanChecks) Clean() bool {
	return c.UnprovenSeams == 0 && c.InitOnlyViolations == 0 &&
		c.ShardSyncHazards == 0 && c.UnclassifiedEdges == 0
}

// JSON renders the plan for the committed artifact. HTML escaping is
// off so the formula's ">=" survives review-friendly.
func (p *ShardPlan) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// shardAssignments spells out how the epoch/barrier scheme handles
// each domain (the prose half the executor's scheduler implements).
var shardAssignments = []struct {
	domain     Domain
	assignment string
}{
	{DomainCore, "per-index: core[i] runs on shard i, co-scheduled with cache[i] so same-index seams stay shard-local"},
	{DomainCache, "per-index: cache[i] runs on shard i, co-scheduled with core[i] so same-index seams stay shard-local"},
	{DomainBank, "per-index: bank[i] runs on shard hash(i); banks never touch each other, only the mesh"},
	{DomainMesh, "barrier-exchanged: the mesh is the one cross-shard channel; enqueued messages are drained and delivered at epoch boundaries"},
	{DomainSimGlobal, "replicated: each shard keeps a replica (clock, pools, sinks) and reduction seams merge them at epoch boundaries"},
	{DomainReadonly, "shared-immutable: config and traces are frozen after construction (proven by the init-only pass), so every shard reads without synchronization"},
	{DomainMessage, "ownership-transferring: a message belongs to whichever shard holds it; transfer happens only through the mesh"},
}

// BuildShardPlan assembles the parallel execution plan for the loaded
// packages: the ownership report's domain map and edge classification,
// the epochsafe verdict for every declared seam, and the epoch bound
// derived from the interconnect timing defaults. The package set must
// include the config and interconnect packages (lint ./... from the
// module root).
func BuildShardPlan(l *Loader, pkgs []*Package) (*ShardPlan, error) {
	rep, err := BuildOwnershipReport(l, pkgs)
	if err != nil {
		return nil, err
	}
	epoch, err := deriveEpochBound(pkgs)
	if err != nil {
		return nil, err
	}
	plan := &ShardPlan{
		Version: shardPlanVersion,
		Module:  l.ModPath,
		Entries: rep.Entries,
		Epoch:   epoch,
	}

	for _, sa := range shardAssignments {
		plan.Shards = append(plan.Shards, ShardAssignment{
			Domain:     sa.domain.Render(),
			Assignment: sa.assignment,
			Types:      rep.Domains[sa.domain.Render()],
		})
	}

	// Tally epochsafe findings per seam and per category, with the
	// same suppression semantics the analyzer has.
	type tally struct{ findings, suppressed int }
	seamTally := make(map[*types.Func]*tally)
	for _, p := range sortedPackages(pkgs) {
		dirs, _ := parseDirectives(p)
		for _, f := range epochFindings(p) {
			pos := p.Fset.Position(f.pos)
			suppressed := dirs[directiveKey(pos.Filename, pos.Line, EpochSafe.Name)] != nil
			if suppressed {
				plan.Checks.SuppressedFindings++
			}
			switch f.cat {
			case catSeam:
				t := seamTally[f.seam]
				if t == nil {
					t = &tally{}
					seamTally[f.seam] = t
				}
				if suppressed {
					t.suppressed++
				} else {
					t.findings++
				}
			case catInitOnly:
				if !suppressed {
					plan.Checks.InitOnlyViolations++
				}
			case catHazard:
				if !suppressed {
					plan.Checks.ShardSyncHazards++
				}
			}
		}
	}

	// One verdict per declared seam, across every linted package.
	r := resolver{}
	for _, p := range sortedPackages(pkgs) {
		r.pkg = p
		for _, fn := range sortedSeamFuncs(p.Ownership().seams) {
			sd := p.Ownership().seams[fn]
			v := SeamVerdict{
				Func:   renderFunc(fn),
				Kind:   string(sd.Kind),
				Reason: sd.Reason,
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if d := r.typeDomain(sig.Recv().Type()); d != DomainNone {
					v.Domain = d.Render()
				}
			}
			if isInterfaceMethod(fn) {
				for _, impl := range l.implementations(fn) {
					v.Implementations = append(v.Implementations, renderFunc(impl))
				}
				sort.Strings(v.Implementations)
			}
			if t := seamTally[fn]; t != nil {
				v.Findings, v.Suppressed = t.findings, t.suppressed
			}
			if sd.Kind == SeamKindInvalid || v.Findings > 0 {
				v.Verdict = "unproven"
				plan.Checks.UnprovenSeams++
			} else {
				v.Verdict = "proven"
			}
			plan.Seams = append(plan.Seams, v)
		}
	}
	sort.Slice(plan.Seams, func(i, j int) bool {
		if plan.Seams[i].Func != plan.Seams[j].Func {
			return plan.Seams[i].Func < plan.Seams[j].Func
		}
		return plan.Seams[i].Kind < plan.Seams[j].Kind
	})
	plan.Checks.UnclassifiedEdges = rep.Unclassified
	return plan, nil
}

// deriveEpochBound extracts the minimum cross-shard message latency
// from the config package's Default() timing literal, anchored against
// the interconnect's Latency implementation (base + hops*(link +
// router), Manhattan hops). If either side disappears or moves, the
// derivation fails and the plan cannot be regenerated — exactly the
// signal that the formula drifted.
func deriveEpochBound(pkgs []*Package) (EpochBound, error) {
	var cfg, mesh *Package
	for _, p := range pkgs {
		switch packageBase(p.Path) {
		case "config":
			cfg = p
		case "interconnect":
			mesh = p
		}
	}
	if cfg == nil || mesh == nil {
		return EpochBound{}, fmt.Errorf("lint: shard plan needs the config and interconnect packages in the linted set; run rowlint -shard-plan over ./... from the module root")
	}
	if !hasMethod(mesh, "Mesh", "Latency") {
		return EpochBound{}, fmt.Errorf("lint: shard plan epoch bound is anchored to interconnect.Mesh.Latency, which no longer exists; update deriveEpochBound to the new hop-cost model")
	}
	vals, err := defaultTimingConstants(cfg, "LinkCycles", "RouterCycles", "BaseCycles")
	if err != nil {
		return EpochBound{}, err
	}
	const minHops = 1 // adjacent mesh nodes: the cheapest cross-shard delivery
	link, router, base := vals["LinkCycles"], vals["RouterCycles"], vals["BaseCycles"]
	return EpochBound{
		MinCrossShardLatencyCycles: base + minHops*(link+router),
		MinHops:                    minHops,
		LinkCycles:                 link,
		RouterCycles:               router,
		BaseCycles:                 base,
		Formula:                    "base_cycles + hops*(link_cycles + router_cycles), hops >= 1",
		Source:                     "config.Default() Mem timing, applied by interconnect.Mesh.Latency",
	}, nil
}

// hasMethod reports whether the package declares a method named method
// on a receiver type named recv.
func hasMethod(p *Package, recv, method string) bool {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if st, ok := t.(*ast.StarExpr); ok {
				t = st.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recv {
				return true
			}
		}
	}
	return false
}

// defaultTimingConstants extracts named integer constants from the
// composite literal inside the config package's Default() function.
// Each key must appear exactly once with a compile-time constant
// value.
func defaultTimingConstants(cfg *Package, keys ...string) (map[string]int64, error) {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	vals := make(map[string]int64)
	var dup string
	for _, f := range cfg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Default" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				kv, ok := n.(*ast.KeyValueExpr)
				if !ok {
					return true
				}
				id, ok := kv.Key.(*ast.Ident)
				if !ok || !want[id.Name] {
					return true
				}
				tv, ok := cfg.Info.Types[kv.Value]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					return true
				}
				v, exact := constant.Int64Val(tv.Value)
				if !exact {
					return true
				}
				if _, seen := vals[id.Name]; seen && vals[id.Name] != v {
					dup = id.Name
				}
				vals[id.Name] = v
				return true
			})
		}
	}
	if dup != "" {
		return nil, fmt.Errorf("lint: shard plan epoch bound: %s appears more than once with different values in config.Default()", dup)
	}
	for _, k := range keys {
		if _, ok := vals[k]; !ok {
			return nil, fmt.Errorf("lint: shard plan epoch bound: config.Default() no longer sets %s as a constant; update deriveEpochBound to the new timing model", k)
		}
	}
	return vals, nil
}
