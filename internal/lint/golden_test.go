package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"rowsim/internal/lint"
)

// -update regenerates the expected.txt golden files from current
// analyzer output:
//
//	go test ./internal/lint -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// One loader for the whole test binary: the from-source stdlib
// importer is the expensive part, and its results are shared across
// every fixture case and the repo-wide scan.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	modRoot    string
	loaderErr  error
)

func sharedLoader(t *testing.T) (*lint.Loader, string) {
	t.Helper()
	loaderOnce.Do(func() {
		cwd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, path, err := lint.FindModule(cwd)
		if err != nil {
			loaderErr = err
			return
		}
		modRoot = root
		loader = lint.NewLoader(root, path)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader, modRoot
}

// TestGolden runs every analyzer over each fixture case under
// testdata/src/<case>/ and compares the full rendered finding list —
// suppressed findings included — against the case's expected.txt.
// Each case seeds violations the analyzer must catch, legal idioms it
// must not flag, and suppression/malformed-directive behaviour.
func TestGolden(t *testing.T) {
	ld, _ := sharedLoader(t)
	caseRoot := filepath.Join("testdata", "src")
	cases, err := os.ReadDir(caseRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no golden cases under testdata/src")
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		t.Run(c.Name(), func(t *testing.T) {
			caseDir, err := filepath.Abs(filepath.Join(caseRoot, c.Name()))
			if err != nil {
				t.Fatal(err)
			}
			got := renderCase(t, ld, caseDir)
			goldenPath := filepath.Join(caseDir, "expected.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("findings diverge from %s:\n--- want ---\n%s--- got ---\n%s", goldenPath, want, got)
			}
		})
	}
}

// renderCase lints every package directory under caseDir and renders
// the findings with case-relative paths, one per line.
func renderCase(t *testing.T, ld *lint.Loader, caseDir string) string {
	t.Helper()
	var b strings.Builder
	for _, pkg := range loadCase(t, ld, caseDir) {
		for _, f := range lint.Run(pkg, lint.Analyzers()) {
			if rel, err := filepath.Rel(caseDir, f.Pos.Filename); err == nil {
				f.Pos.Filename = filepath.ToSlash(rel)
			}
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// loadCase loads every fixture package under caseDir. The
// noallocescape case additionally runs the compiler escape capture —
// that fixture is kept compilable for exactly this purpose (fixtures
// with deliberate type or build quirks cannot go through go build).
func loadCase(t *testing.T, ld *lint.Loader, caseDir string) []*lint.Package {
	t.Helper()
	var pkgDirs []string
	err := filepath.WalkDir(caseDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		if path != caseDir && hasGoFiles(path) {
			pkgDirs = append(pkgDirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(pkgDirs)
	if len(pkgDirs) == 0 {
		t.Fatalf("case %s has no fixture packages", caseDir)
	}
	var pkgs []*lint.Package
	for _, dir := range pkgDirs {
		pkg, err := ld.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if filepath.Base(caseDir) == "noallocescape" {
		if err := ld.CaptureEscapes(pkgs); err != nil {
			t.Fatalf("capture escapes for %s: %v", caseDir, err)
		}
	}
	return pkgs
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// TestGoldenCasesCoverEveryAnalyzer: each registered analyzer must
// catch at least two seeded violations somewhere in the fixture set —
// the acceptance bar that keeps an analyzer from silently rotting into
// a no-op.
func TestGoldenCasesCoverEveryAnalyzer(t *testing.T) {
	ld, _ := sharedLoader(t)
	counts := make(map[string]int)
	caseRoot := filepath.Join("testdata", "src")
	cases, err := os.ReadDir(caseRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		caseDir, err := filepath.Abs(filepath.Join(caseRoot, c.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range loadCase(t, ld, caseDir) {
			for _, f := range lint.Run(pkg, lint.Analyzers()) {
				if !f.Suppressed {
					counts[f.Analyzer]++
				}
			}
		}
	}
	for _, a := range lint.Analyzers() {
		if counts[a.Name] < 2 {
			t.Errorf("analyzer %s catches %d seeded violations in testdata, want >= 2", a.Name, counts[a.Name])
		}
	}
	// The directive parser's own findings count too.
	if counts["rowlint"] < 2 {
		t.Errorf("malformed directives produce %d findings in testdata, want >= 2", counts["rowlint"])
	}
}

// TestRepoIsClean runs the full analyzer suite over the repository's
// own packages — the same gate CI enforces with `go run ./cmd/rowlint
// ./...` — and fails on any active finding. Suppressed findings are
// legal but must carry reasons (the parser enforces that).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	ld, root := sharedLoader(t)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasBuildableGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := ld.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	// The repo always builds, so the compiler cross-check runs here
	// with full force — the same capture the CLI performs.
	if err := ld.CaptureEscapes(pkgs); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, f := range lint.Active(lint.Run(pkg, lint.Analyzers())) {
			t.Errorf("repo not rowlint-clean: %s", f.String())
		}
	}
}

func hasBuildableGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		return true
	}
	return false
}
