package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// OwnershipEdge is one aggregated cross-domain access in the
// whole-program walk: state in domain To touched from code executing
// in domain From, through one named target.
type OwnershipEdge struct {
	From     string   `json:"from"`
	To       string   `json:"to"`
	Kind     string   `json:"kind"` // call | write | alias | read
	Target   string   `json:"target"`
	Class    string   `json:"class"`               // mesh-mediated | seam | scheduler | read-only | message | suppressed | unclassified
	SeamKind string   `json:"seam_kind,omitempty"` // same-index | buffered | reduction | init-only (seam edges)
	Reason   string   `json:"reason,omitempty"`
	Count    int      `json:"count"`
	Sites    []string `json:"sites"` // up to maxEdgeSites file:line samples
}

const maxEdgeSites = 3

// OwnershipReport is the machine-readable shard-partition proof
// rowlint -ownership-report emits: the complete domain map plus every
// cross-domain edge reachable from the //rowlint:entry run loops,
// classified. Zero unclassified edges is the property the
// epoch/barrier parallelism plan needs, and what CI gates on.
type OwnershipReport struct {
	Module  string   `json:"module"`
	Entries []string `json:"entries"` // //rowlint:entry roots walked
	// Domains maps each domain to the named types it owns, the
	// "complete domain map" half of the proof: every mutable simulator
	// type appears under exactly one domain.
	Domains      map[string][]string `json:"domains"`
	Edges        []OwnershipEdge     `json:"edges"`
	Unclassified int                 `json:"unclassified"`
}

// JSON renders the report for the CI artifact.
func (r *OwnershipReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// BuildOwnershipReport walks every function reachable from the
// //rowlint:entry roots of the given packages, tracking the ownership
// domain the walk executes in, and aggregates every domain crossing.
//
// Domain transitions at call sites follow classifyCall: internal calls
// keep the caller's context; scheduler visits, declared seams,
// mesh-mediated sends and message manipulation continue in the
// callee's own domain; read-only crossings are recorded but not
// entered (the probe already proved the subtree mutation-free).
// Interface calls fan out to every implementation in the module.
// Writes with a //rowlint:ignore shardown directive at the site
// classify as suppressed, carrying the directive's reason.
func BuildOwnershipReport(l *Loader, pkgs []*Package) (*OwnershipReport, error) {
	w := &ownWalker{
		loader:  l,
		visited: make(map[walkKey]bool),
		edges:   make(map[string]*OwnershipEdge),
		dirs:    make(map[*Package]directiveSet),
	}
	rep := &OwnershipReport{
		Module:  l.ModPath,
		Domains: make(map[string][]string),
	}

	// The domain map: every named type in the linted packages that
	// resolves to a domain, explicit or package-inferred.
	for _, p := range sortedPackages(pkgs) {
		if p.Types == nil {
			continue
		}
		r := resolver{pkg: p}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if d := r.typeDomain(tn.Type()); d != DomainNone {
				key := d.Render()
				rep.Domains[key] = append(rep.Domains[key], p.Types.Name()+"."+tn.Name())
			}
		}
	}

	// Walk from the annotated entry roots.
	for _, p := range sortedPackages(pkgs) {
		for _, fd := range p.Ownership().entries {
			fn, _ := p.defObj(fd.Name).(*types.Func)
			if fn == nil {
				continue
			}
			ctx := receiverDomain(p, fd)
			if ctx == DomainNone {
				ctx = DomainSimGlobal
			}
			rep.Entries = append(rep.Entries, renderFunc(fn))
			w.walk(p, fn, ctx)
		}
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("lint: no //rowlint:entry functions in the linted packages; annotate the run loop's visit roots")
	}
	sort.Strings(rep.Entries)

	for _, e := range w.edges {
		if e.Class == classUnclassified {
			rep.Unclassified++
		}
		rep.Edges = append(rep.Edges, *e)
	}
	sort.Slice(rep.Edges, func(i, j int) bool {
		a, b := rep.Edges[i], rep.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Class < b.Class
	})
	return rep, nil
}

// walkKey identifies one (function, executing domain) walk state.
type walkKey struct {
	fn  *types.Func
	ctx Domain
}

type ownWalker struct {
	loader  *Loader
	visited map[walkKey]bool
	edges   map[string]*OwnershipEdge
	dirs    map[*Package]directiveSet
}

func (w *ownWalker) walk(pkg *Package, fn *types.Func, ctx Domain) {
	key := walkKey{fn: fn, ctx: ctx}
	if w.visited[key] {
		return
	}
	w.visited[key] = true
	fd := pkg.FuncDecls()[fn]
	if fd == nil || fd.Body == nil {
		return
	}
	walkAccesses(pkg, ctx, fd.Body, func(acc access) {
		w.record(pkg, ctx, acc)
	})
}

// record classifies one access and aggregates it into the edge map,
// recursing through call boundaries per the transition rules.
func (w *ownWalker) record(pkg *Package, ctx Domain, acc access) {
	switch acc.kind {
	case accCall:
		cc := classifyCall(pkg, ctx, acc)
		if cc.name == classUnclassified {
			if reason, ok := w.suppressed(pkg, acc); ok {
				cc = callClass{name: classSuppressed, to: cc.to, reason: reason}
			}
		}
		if cc.name != classInternal {
			w.add(ctx, cc.to, "call", acc.desc, cc.name, cc.reason, string(cc.kind), pkg, acc)
		}
		w.descend(pkg, ctx, acc, cc)
	case accWrite, accAlias:
		pl := acc.target
		kind := "write"
		if acc.kind == accAlias {
			kind = "alias"
		}
		switch {
		case pl.domain == DomainNone && !pl.pkgLevel,
			pl.domain == DomainMessage,
			pl.domain == ctx && !pl.crossInstance:
			return
		case acc.kind == accAlias && ctx == DomainSimGlobal:
			// The driver wiring components together at construction and
			// visit time is the scheduler's job.
			w.add(ctx, pl.domain, kind, acc.desc, classScheduler, "", "", pkg, acc)
			return
		case acc.kind == accAlias && pl.domain == DomainReadonly:
			// Holding a reference to immutable configuration is how
			// components read it; the alias cannot leak mutable state.
			w.add(ctx, pl.domain, kind, acc.desc, classReadOnly, "", "", pkg, acc)
			return
		}
		class, reason := classUnclassified, ""
		if ctx == DomainSimGlobal && acc.kind == accWrite && !pl.pkgLevel && pl.domain != DomainReadonly {
			class = classScheduler
		}
		if class == classUnclassified {
			if r, ok := w.suppressed(pkg, acc); ok {
				class, reason = classSuppressed, r
			}
		}
		w.add(ctx, pl.domain, kind, acc.desc, class, reason, "", pkg, acc)
	case accRead:
		pl := acc.target
		class := classReadOnly
		if ctx == DomainSimGlobal {
			class = classScheduler
		}
		w.add(ctx, pl.domain, "read", acc.desc, class, "", "", pkg, acc)
	}
}

// descend continues the walk through a call boundary in the domain the
// callee executes in.
func (w *ownWalker) descend(pkg *Package, ctx Domain, acc access, cc callClass) {
	next := cc.to
	switch cc.name {
	case classInternal:
		next = ctx
	case classReadOnly:
		return // subtree proven mutation-free by the probe
	case classUnclassified, classSuppressed:
		return // an illegal or silenced crossing is a boundary, not a path
	}
	r := resolver{pkg: pkg}
	fn := acc.callee
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			for _, impl := range w.implementations(fn) {
				ip := resolver{pkg: pkg}.pkgFor(impl)
				if ip == nil {
					continue
				}
				d := r.typeDomain(impl.Type().(*types.Signature).Recv().Type())
				if d == DomainNone {
					d = next
				}
				w.walk(ip, impl, d)
			}
			return
		}
	}
	dp := r.pkgFor(fn)
	if dp == nil {
		return // stdlib
	}
	if next == DomainNone {
		return // seam into a free helper: the declaration covers it
	}
	w.walk(dp, fn, next)
}

// implementations finds every concrete method in the loaded module
// satisfying an interface method, so interface-mediated calls (the
// cache's core-side Client, the coherence Network) fan out to the real
// component code.
func (w *ownWalker) implementations(ifaceFn *types.Func) []*types.Func {
	return w.loader.implementations(ifaceFn)
}

// implementations resolves an interface method to every concrete
// method implementing it across the loaded module, memoized per
// loaded-package-set size (loading another package can add
// implementations, so the memo invalidates as the set grows).
func (l *Loader) implementations(ifaceFn *types.Func) []*types.Func {
	if l.implMemo == nil || l.implMemoPkgs != len(l.pkgs) {
		l.implMemo = make(map[*types.Func][]*types.Func)
		l.implMemoPkgs = len(l.pkgs)
	}
	if out, ok := l.implMemo[ifaceFn]; ok {
		return out
	}
	var out []*types.Func
	sig := ifaceFn.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		l.implMemo[ifaceFn] = nil
		return nil
	}
	var paths []string
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := l.pkgs[path]
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if types.IsInterface(tn.Type()) {
				continue
			}
			recv := types.Type(types.NewPointer(tn.Type()))
			if !types.Implements(recv, iface) {
				if !types.Implements(tn.Type(), iface) {
					continue
				}
				recv = tn.Type()
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, ifaceFn.Pkg(), ifaceFn.Name())
			if m, ok := obj.(*types.Func); ok {
				out = append(out, m)
			}
		}
	}
	l.implMemo[ifaceFn] = out
	return out
}

// suppressed looks for a //rowlint:ignore shardown directive at the
// access site.
func (w *ownWalker) suppressed(pkg *Package, acc access) (string, bool) {
	set, ok := w.dirs[pkg]
	if !ok {
		set, _ = parseDirectives(pkg)
		w.dirs[pkg] = set
	}
	pos := pkg.Fset.Position(acc.pos)
	if d := set[directiveKey(pos.Filename, pos.Line, ShardOwn.Name)]; d != nil {
		return d.reason, true
	}
	return "", false
}

func (w *ownWalker) add(from, to Domain, kind, target, class, reason, seamKind string, pkg *Package, acc access) {
	key := from.Render() + "\x00" + to.Render() + "\x00" + kind + "\x00" + target + "\x00" + class
	e := w.edges[key]
	if e == nil {
		e = &OwnershipEdge{
			From:     from.Render(),
			To:       to.Render(),
			Kind:     kind,
			Target:   target,
			Class:    class,
			SeamKind: seamKind,
			Reason:   reason,
		}
		w.edges[key] = e
	}
	e.Count++
	if len(e.Sites) < maxEdgeSites {
		pos := pkg.Fset.Position(acc.pos)
		site := fmt.Sprintf("%s:%d", relToModule(w.loader, pos.Filename), pos.Line)
		for _, s := range e.Sites {
			if s == site {
				return
			}
		}
		e.Sites = append(e.Sites, site)
	}
}

func relToModule(l *Loader, file string) string {
	if rel, err := filepath.Rel(l.ModRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

func sortedPackages(pkgs []*Package) []*Package {
	out := append([]*Package(nil), pkgs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
