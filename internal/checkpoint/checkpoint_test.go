package checkpoint

import (
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

// realSnap captures a mid-run snapshot from a real system, so the
// round-trip tests exercise populated ROBs, MSHRs and mesh traffic
// rather than a quiesced zero state.
func realSnap(t *testing.T) *sim.SysSnap {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = 2
	cfg.Policy = config.PolicyRoW
	cfg.MaxCycles = 50_000_000
	p := workload.MustGet("sps")
	progs := workload.Generate(p, cfg.NumCores, 4000, 7)
	var captured *sim.SysSnap
	s, err := sim.New(cfg, progs,
		sim.WithWarmFilter(workload.WarmFilter(p)),
		sim.WithCheckpoint(2048, func(cycle uint64, snap *sim.SysSnap) error {
			if captured == nil {
				captured = snap
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("run finished without reaching a checkpoint")
	}
	return captured
}

// tinySnap is a minimal synthetic snapshot: the corruption fuzz flips
// every byte offset, which is quadratic in checkpoint size, so it
// wants the smallest structurally complete file.
func tinySnap() *sim.SysSnap {
	return &sim.SysSnap{Cycle: 4096}
}

func snapEqual(t *testing.T, a, b *sim.SysSnap) {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("snapshots differ (%d vs %d bytes)", len(ab), len(bb))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	snap := realSnap(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, "key1", snap); err != nil {
		t.Fatal(err)
	}
	got, meta, err := Load(path, "key1")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Cycle != snap.Cycle || meta.Key != "key1" || meta.Version != Version {
		t.Fatalf("meta %+v, want cycle %d key %q version %d", meta, snap.Cycle, "key1", Version)
	}
	snapEqual(t, got, snap)
}

func TestLoadKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, "key1", tinySnap()); err != nil {
		t.Fatal(err)
	}
	_, _, err := Load(path, "key2")
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("foreign checkpoint loaded: err=%v", err)
	}
	if mm.Field != "content key" || mm.Got != "key1" || mm.Want != "key2" {
		t.Fatalf("mismatch detail wrong: %+v", mm)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	// Hand-build a checkpoint with a bumped version field.
	snap := tinySnap()
	data, err := Encode("k", snap)
	if err != nil {
		t.Fatal(err)
	}
	_, meta, err := Decode("x", "k", data)
	if err != nil {
		t.Fatal(err)
	}
	meta.Version = Version + 1
	// Re-frame with the altered header.
	hdr, _ := json.Marshal(meta)
	body, _ := json.Marshal(snap)
	var buf []byte
	buf = append(buf, magic[:]...)
	buf = appendFrame(buf, hdr)
	buf = appendFrame(buf, body)
	var mm *MismatchError
	if _, _, err := Decode("x", "k", buf); !errors.As(err, &mm) || mm.Field != "version" {
		t.Fatalf("future-version checkpoint accepted: err=%v", err)
	}
}

func TestRotationKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s1, s2 := tinySnap(), tinySnap()
	s2.Cycle = 8192
	if err := Save(path, "k", s1); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "k", s2); err != nil {
		t.Fatal(err)
	}
	if _, meta, err := Load(path, "k"); err != nil || meta.Cycle != 8192 {
		t.Fatalf("primary load: meta=%+v err=%v", meta, err)
	}
	// Destroy the primary: Load must fall back to the previous one.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, meta, err := Load(path, "k")
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if meta.Cycle != 4096 {
		t.Fatalf("fallback returned cycle %d, want 4096", meta.Cycle)
	}
	snapEqual(t, got, s1)
}

func TestLoadMissing(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), "k")
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: err=%v, want ErrNotExist", err)
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, "k", tinySnap()); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "k", tinySnap()); err != nil {
		t.Fatal(err)
	}
	if err := Remove(path); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("files left after Remove: %v", left)
	}
	if err := Remove(path); err != nil {
		t.Fatalf("Remove of removed lineage: %v", err)
	}
}

func appendFrame(buf, payload []byte) []byte {
	ln := uint32(len(payload))
	buf = append(buf, byte(ln), byte(ln>>8), byte(ln>>16), byte(ln>>24))
	buf = append(buf, payload...)
	crc := crc32.Checksum(payload, castagnoli)
	return append(buf, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}
