package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// These tests are the corruption exhaustiveness proof: a checkpoint
// file damaged at ANY byte offset — a flip or a truncation — must
// yield a typed error (*CorruptError / *MismatchError) or, at the
// Load level with a fallback present, the previous checkpoint. Never
// a panic, never silently wrong state. They run on the minimal
// synthetic snapshot because the sweep is quadratic in file size; the
// framing logic under test is size-independent.

// decodeNeverPanics asserts Decode's contract on one corrupted input.
func decodeNeverPanics(t *testing.T, label string, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Decode panicked: %v", label, r)
		}
	}()
	snap, _, err := Decode("fuzz", "k", data)
	if err == nil {
		// A flip that leaves the file valid is impossible (CRC32 detects
		// all single-byte errors); a truncation to the full length is
		// excluded by the loops below.
		t.Fatalf("%s: corrupted checkpoint decoded successfully", label)
	}
	var ce *CorruptError
	var mm *MismatchError
	if !errors.As(err, &ce) && !errors.As(err, &mm) {
		t.Fatalf("%s: untyped error %T: %v", label, err, err)
	}
	if snap != nil {
		t.Fatalf("%s: error return carried a snapshot", label)
	}
}

func TestDecodeFlipEveryByte(t *testing.T) {
	data, err := Encode("k", tinySnap())
	if err != nil {
		t.Fatal(err)
	}
	for off := range data {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		decodeNeverPanics(t, "flip@"+itoa(off), mut)
	}
}

func TestDecodeTruncateEveryOffset(t *testing.T) {
	data, err := Encode("k", tinySnap())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		decodeNeverPanics(t, "trunc@"+itoa(n), data[:n])
	}
}

func TestDecodeExtendEveryByteValue(t *testing.T) {
	data, err := Encode("k", tinySnap())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 256; b++ {
		decodeNeverPanics(t, "extend+"+itoa(b), append(append([]byte(nil), data...), byte(b)))
	}
}

// TestLoadFallsBackOnEveryCorruption is the end-to-end guarantee: with
// a previous checkpoint present, damaging the primary at any offset
// still loads — and loads the previous state, not garbage.
func TestLoadFallsBackOnEveryCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	older, newer := tinySnap(), tinySnap()
	newer.Cycle = 8192
	if err := Save(path, "k", older); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "k", newer); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, damaged []byte) {
		t.Helper()
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		snap, meta, err := Load(path, "k")
		if err != nil {
			t.Fatalf("%s: fallback load failed: %v", label, err)
		}
		if meta.Cycle != older.Cycle || snap.Cycle != older.Cycle {
			t.Fatalf("%s: fallback returned cycle %d, want %d", label, meta.Cycle, older.Cycle)
		}
	}
	for off := range pristine {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0xFF
		check("flip@"+itoa(off), mut)
	}
	for n := 0; n < len(pristine); n += 7 {
		check("trunc@"+itoa(n), pristine[:n])
	}
	// Both slots damaged: typed error, no panic, no snapshot.
	if err := os.WriteFile(path, pristine[:len(pristine)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+PrevSuffix, []byte{0}, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, _, err := Load(path, "k")
	var ce *CorruptError
	if !errors.As(err, &ce) || snap != nil {
		t.Fatalf("both-corrupt load: snap=%v err=%v", snap, err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
