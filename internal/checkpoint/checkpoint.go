// Package checkpoint persists mid-run simulation state durably, so a
// long run killed at any instant resumes from the last completed
// checkpoint instead of cycle zero (bounded-loss recovery).
//
// On-disk format (all integers little-endian):
//
//	magic "rowckpt1" (8 bytes)
//	header frame: uint32 length | JSON header | uint32 CRC32-C
//	body frame:   uint32 length | JSON sim.SysSnap | uint32 CRC32-C
//
// The header carries the format version, the simulated cycle, and a
// content key — a hash over everything that determines the run
// (configuration, workload parameters, seed, code revision; see
// experiments.ContentKey). Load refuses a checkpoint whose key does
// not match the resuming run with a *MismatchError: resuming foreign
// state would not crash, it would silently produce wrong results,
// which is worse.
//
// Durability discipline: Save writes to a temporary file, fsyncs it,
// rotates the current checkpoint to the ".prev" slot, and renames the
// temporary into place (then fsyncs the directory). A crash at any
// point leaves either the old checkpoint, the new one, or the old one
// in the ".prev" slot — Load tries the primary first and falls back to
// ".prev", so a torn or half-rotated write costs one checkpoint
// interval of progress, never the run. Load never panics on corrupt
// input: every structural defect is reported as a *CorruptError.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"rowsim/internal/sim"
)

// Version is the on-disk format version. Bump on any incompatible
// change to the header or body encoding; Load refuses other versions.
const Version = 1

// PrevSuffix is appended to a checkpoint path to name the previous
// (fallback) checkpoint in the keep-last-2 rotation.
const PrevSuffix = ".prev"

// maxFrame bounds a frame length read from disk, so a corrupt length
// field cannot drive a multi-gigabyte allocation.
const maxFrame = 1 << 30

var magic = [8]byte{'r', 'o', 'w', 'c', 'k', 'p', 't', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the checkpoint header: everything Load verifies before it
// touches the body.
type Meta struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Cycle   uint64 `json:"cycle"`
}

// MismatchError reports a structurally valid checkpoint that belongs
// to a different run: wrong content key (different config, workload,
// seed or code revision) or wrong format version.
type MismatchError struct {
	Path  string
	Field string // "content key" or "version"
	Want  string
	Got   string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint %s: %s mismatch: checkpoint has %q, this run wants %q", e.Path, e.Field, e.Got, e.Want)
}

// CorruptError reports a checkpoint file that failed structural
// validation: truncated, bit-flipped (CRC), or undecodable.
type CorruptError struct {
	Path  string
	Cause error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint %s: corrupt: %v", e.Path, e.Cause)
}

func (e *CorruptError) Unwrap() error { return e.Cause }

func writeFrame(w io.Writer, payload []byte) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(n[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(n[:])
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("frame length: %w", err)
	}
	ln := binary.LittleEndian.Uint32(n[:])
	if ln > maxFrame {
		return nil, fmt.Errorf("frame length %d exceeds limit", ln)
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("frame payload: %w", err)
	}
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("frame checksum: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(n[:]); got != want {
		return nil, fmt.Errorf("frame checksum 0x%08x, computed 0x%08x", want, got)
	}
	return payload, nil
}

// Encode serializes a checkpoint to its byte representation (the exact
// content Save writes). Split out so tests and in-memory consumers can
// frame without touching the filesystem.
func Encode(key string, snap *sim.SysSnap) ([]byte, error) {
	hdr, err := json.Marshal(Meta{Version: Version, Key: key, Cycle: snap.Cycle})
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(magic) + len(hdr) + len(body) + 16)
	buf.Write(magic[:])
	if err := writeFrame(&buf, hdr); err != nil {
		return nil, err
	}
	if err := writeFrame(&buf, body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses checkpoint bytes, verifying structure and, when key is
// non-empty, the content key. Structural defects return *CorruptError;
// a valid checkpoint for a different run returns *MismatchError. The
// path parameter only labels errors.
func Decode(path, key string, data []byte) (*sim.SysSnap, Meta, error) {
	r := bytes.NewReader(data)
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, Meta{}, &CorruptError{Path: path, Cause: fmt.Errorf("magic: %w", err)}
	}
	if m != magic {
		return nil, Meta{}, &CorruptError{Path: path, Cause: fmt.Errorf("bad magic %q", m[:])}
	}
	hdrB, err := readFrame(r)
	if err != nil {
		return nil, Meta{}, &CorruptError{Path: path, Cause: fmt.Errorf("header: %w", err)}
	}
	var meta Meta
	if err := json.Unmarshal(hdrB, &meta); err != nil {
		return nil, Meta{}, &CorruptError{Path: path, Cause: fmt.Errorf("header: %w", err)}
	}
	if meta.Version != Version {
		return nil, meta, &MismatchError{Path: path, Field: "version", Want: fmt.Sprint(Version), Got: fmt.Sprint(meta.Version)}
	}
	if key != "" && meta.Key != key {
		return nil, meta, &MismatchError{Path: path, Field: "content key", Want: key, Got: meta.Key}
	}
	bodyB, err := readFrame(r)
	if err != nil {
		return nil, meta, &CorruptError{Path: path, Cause: fmt.Errorf("body: %w", err)}
	}
	if r.Len() != 0 {
		return nil, meta, &CorruptError{Path: path, Cause: fmt.Errorf("%d trailing bytes after body frame", r.Len())}
	}
	snap := new(sim.SysSnap)
	if err := json.Unmarshal(bodyB, snap); err != nil {
		return nil, meta, &CorruptError{Path: path, Cause: fmt.Errorf("body: %w", err)}
	}
	if snap.Cycle != meta.Cycle {
		return nil, meta, &CorruptError{Path: path, Cause: fmt.Errorf("header cycle %d, body cycle %d", meta.Cycle, snap.Cycle)}
	}
	return snap, meta, nil
}

// Save durably writes snap as the checkpoint at path, rotating any
// existing checkpoint to path+PrevSuffix. The write is atomic
// (temp+fsync+rename): a crash during Save never damages the existing
// checkpoint lineage.
func Save(path, key string, snap *sim.SysSnap) error {
	data, err := Encode(key, snap)
	if err != nil {
		return fmt.Errorf("checkpoint %s: encode: %w", path, err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Rotate: the checkpoint being replaced becomes the fallback. Both
	// renames are atomic; a crash between them leaves only the ".prev"
	// slot populated, which Load handles.
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+PrevSuffix); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so the renames within it are durable.
// Best-effort: some filesystems refuse directory fsync, and the
// in-process guarantees do not depend on it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// loadFile reads and decodes one checkpoint file.
func loadFile(path, key string) (*sim.SysSnap, Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	return Decode(path, key, data)
}

// Load returns the newest valid checkpoint for path. The primary file
// is tried first; if it is missing or corrupt (torn write, bit rot),
// the ".prev" fallback is tried. A checkpoint for a different run
// returns *MismatchError immediately — the fallback shares the
// lineage, so it cannot be the right run either. When neither slot
// holds a loadable checkpoint, the error wraps os.ErrNotExist if no
// file existed, otherwise it reports the primary's corruption.
func Load(path, key string) (*sim.SysSnap, Meta, error) {
	snap, meta, err := loadFile(path, key)
	if err == nil {
		return snap, meta, nil
	}
	var mismatch *MismatchError
	if errors.As(err, &mismatch) {
		return nil, meta, err
	}
	snap2, meta2, err2 := loadFile(path+PrevSuffix, key)
	if err2 == nil {
		return snap2, meta2, nil
	}
	if errors.As(err2, &mismatch) {
		return nil, meta2, err2
	}
	if os.IsNotExist(err) && os.IsNotExist(err2) {
		return nil, Meta{}, fmt.Errorf("checkpoint %s: %w", path, os.ErrNotExist)
	}
	if os.IsNotExist(err) {
		err = err2 // primary absent: the fallback's defect is the story
	}
	return nil, Meta{}, err
}

// Saver adapts Save to the sim.WithCheckpoint callback signature.
func Saver(path, key string) func(cycle uint64, snap *sim.SysSnap) error {
	return func(_ uint64, snap *sim.SysSnap) error {
		return Save(path, key, snap)
	}
}

// Resume restores the newest valid checkpoint for path into s.
// ok reports whether a checkpoint was restored; (0, false, nil) means
// no checkpoint exists and the run should start fresh. Any other
// failure — corruption of both slots, key mismatch, shape mismatch —
// is returned as-is for the caller to surface.
func Resume(s *sim.System, path, key string) (cycle uint64, ok bool, err error) {
	snap, meta, err := Load(path, key)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if err := s.RestoreSnap(snap); err != nil {
		return 0, false, err
	}
	return meta.Cycle, true, nil
}

// ResumeLenient restores the newest valid checkpoint into s with the
// recovery policy the harnesses want: a corrupt lineage (both slots
// damaged) is treated as absent — resuming from cycle zero loses
// bounded progress, while refusing to run loses the whole job — and is
// reported through warn so the caller can log it. A *MismatchError or
// a restore shape error stays a hard error: that state belongs to a
// different run, and executing it would be silently wrong.
func ResumeLenient(s *sim.System, path, key string) (cycle uint64, ok bool, warn, err error) {
	cycle, ok, err = Resume(s, path, key)
	var ce *CorruptError
	if errors.As(err, &ce) {
		return 0, false, err, nil
	}
	return cycle, ok, nil, err
}

// Remove deletes every file of the checkpoint lineage at path (the
// primary, the ".prev" fallback, and any abandoned temporary).
// Missing files are fine; the first real filesystem error is returned.
func Remove(path string) error {
	var first error
	for _, p := range []string{path, path + PrevSuffix, path + ".tmp"} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}
