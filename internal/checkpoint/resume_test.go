package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/faults"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

// TestResumeEndToEnd is the on-disk half of the crash-recovery
// cross-check (the in-memory half lives in internal/sim): for three
// torture-style configurations, a run that checkpoints to disk, is
// "killed", and resumes in a fresh process image finishes with exactly
// the Result of an uninterrupted run — and when the newest checkpoint
// file is corrupted, resume falls back to the previous one and still
// converges to the same end state.
func TestResumeEndToEnd(t *testing.T) {
	cases := []struct {
		name     string
		policy   config.AtomicPolicy
		workload string
		faults   *faults.Config
	}{
		{name: "eager_pc", policy: config.PolicyEager, workload: "pc"},
		{name: "row_sps", policy: config.PolicyRoW, workload: "sps"},
		{name: "row_sps_jitter", policy: config.PolicyRoW, workload: "sps",
			faults: &faults.Config{Seed: 9, JitterProb: 0.3, JitterMax: 12}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := config.Default()
			cfg.NumCores = 2
			cfg.Policy = tc.policy
			cfg.EarlyAddrCalc = tc.policy == config.PolicyRoW
			cfg.MaxCycles = 50_000_000
			p := workload.MustGet(tc.workload)
			// Long enough that every case crosses several checkpoint
			// intervals (rotation needs at least two saves for a .prev).
			const instrs, seed = 6000, 7
			const every = 1024

			build := func(opts ...sim.Option) *sim.System {
				progs := workload.Generate(p, cfg.NumCores, instrs, seed)
				opts = append(opts, sim.WithWarmFilter(workload.WarmFilter(p)))
				if tc.faults != nil {
					opts = append(opts, sim.WithFaults(*tc.faults))
				}
				s, err := sim.New(cfg, progs, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}

			// Ground truth: one uninterrupted run.
			want, err := build().Run()
			if err != nil {
				t.Fatal(err)
			}

			// Checkpointed run: persist every interval. The run is then
			// "killed" — the system is discarded; only the files remain.
			path := filepath.Join(t.TempDir(), "run.ckpt")
			const key = "resume-e2e"
			ck := build(sim.WithCheckpoint(every, Saver(path, key)))
			if _, err := ck.Run(); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("no checkpoint was written: %v", err)
			}

			// Resume in a fresh system from the newest checkpoint.
			s2 := build()
			cyc, ok, err := Resume(s2, path, key)
			if err != nil || !ok {
				t.Fatalf("Resume: ok=%v err=%v", ok, err)
			}
			if cyc == 0 {
				t.Fatal("resumed at cycle 0")
			}
			got, err := s2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("resumed run diverges from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
			}

			// Corrupt the newest checkpoint: resume must fall back to the
			// previous one and still converge to the same end state.
			if _, err := os.Stat(path + PrevSuffix); err != nil {
				t.Fatalf("no previous checkpoint to fall back to: %v", err)
			}
			if err := os.WriteFile(path, []byte("torn to shreds"), 0o644); err != nil {
				t.Fatal(err)
			}
			s3 := build()
			cyc3, ok, err := Resume(s3, path, key)
			if err != nil || !ok {
				t.Fatalf("fallback Resume: ok=%v err=%v", ok, err)
			}
			if cyc3 >= cyc {
				t.Fatalf("fallback resumed at cycle %d, want earlier than the corrupted primary's %d", cyc3, cyc)
			}
			got3, err := s3.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got3, want) {
				t.Errorf("fallback-resumed run diverges from uninterrupted run:\nwant %+v\ngot  %+v", want, got3)
			}
		})
	}
}
