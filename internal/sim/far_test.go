package sim

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/trace"
)

func farCfg(cores int) *config.Config {
	cfg := config.Default()
	cfg.NumCores = cores
	cfg.Policy = config.PolicyFar
	cfg.EarlyAddrCalc = false
	cfg.MaxCycles = 20_000_000
	return cfg
}

func TestFarAtomicsComplete(t *testing.T) {
	r, s := buildAndRun(t, farCfg(1), []trace.Program{atomicProgram(50, 0x40000000, trace.FAA)})
	if r.Atomics != 50 {
		t.Fatalf("atomics = %d, want 50", r.Atomics)
	}
	var far uint64
	for _, c := range s.Cores() {
		far += c.Stats.FarIssued
	}
	if far != 50 {
		t.Fatalf("far-issued = %d, want 50", far)
	}
	var bankOps uint64
	for _, d := range s.Directories() {
		bankOps += d.Stats.FarOps.Value()
	}
	if bankOps != 50 {
		t.Fatalf("bank RMWs = %d, want 50", bankOps)
	}
}

func TestFarAtomicsNeverLock(t *testing.T) {
	const hot = uint64(0x10000000)
	progs := []trace.Program{
		atomicProgram(80, hot, trace.FAA),
		atomicProgram(80, hot, trace.FAA),
	}
	r, _ := buildAndRun(t, farCfg(2), progs)
	if r.Atomics != 160 {
		t.Fatalf("atomics = %d", r.Atomics)
	}
	// No cache locking: no external request ever stalls.
	if r.ExtStalls != 0 {
		t.Fatalf("far atomics stalled %d external requests", r.ExtStalls)
	}
	if r.LockToUnlock != 0 {
		t.Fatalf("far atomics held locks for %.0f cycles", r.LockToUnlock)
	}
}

func TestFarRecallsOwnedLine(t *testing.T) {
	// Core 1 owns the line via plain stores; core 0's far atomic must
	// recall it to the bank (a directory forward) and still complete.
	const line = uint64(0x10000040)
	p0 := atomicProgram(40, line, trace.FAA)
	var p1 trace.Program
	for i := 0; i < 80; i++ {
		p1 = append(p1,
			trace.Instr{PC: 0x400400, Kind: trace.Store, Src1: 1, Addr: line, Size: 8},
			trace.Instr{PC: 0x400404, Kind: trace.IntOp, Dst: 1},
		)
	}
	r, s := buildAndRun(t, farCfg(2), []trace.Program{p0, p1})
	if r.Committed != uint64(len(p0)+len(p1)) {
		t.Fatalf("committed %d", r.Committed)
	}
	var fwds uint64
	for _, d := range s.Directories() {
		fwds += d.Stats.Forwards.Value()
	}
	if fwds == 0 {
		t.Fatal("no recall forwards despite a private owner")
	}
}

func TestFarBeatsNearOnHeavyContention(t *testing.T) {
	// The far-vs-near crossover: on a single hammered line with many
	// cores, far execution (one bank-side op per atomic, no line
	// bouncing) beats eager near execution (lock hold + transfer per
	// atomic).
	// Each atomic sits behind a dependent multiply chain, so an eager
	// lock is held while the chain commits — the regime where keeping
	// the RMW at the bank avoids both the hold and the line bounce.
	const hot = uint64(0x10000000)
	mk := func(n int) []trace.Program {
		progs := make([]trace.Program, n)
		for i := range progs {
			var p trace.Program
			for j := 0; j < 60; j++ {
				for k := 0; k < 20; k++ {
					p = append(p, trace.Instr{PC: uint64(0x400000 + 4*k), Kind: trace.IntMul, Src1: 1, Dst: 1})
				}
				p = append(p, trace.Instr{PC: 0x4002f0, Kind: trace.Atomic, Dst: 2, Addr: hot, Size: 8, AtomicOp: trace.FAA})
			}
			progs[i] = p
		}
		return progs
	}
	cfg := smallCfg(8)
	cfg.MaxCycles = 20_000_000
	eager, _ := buildAndRun(t, cfg, mk(8))
	far, _ := buildAndRun(t, farCfg(8), mk(8))
	if far.Cycles >= eager.Cycles {
		t.Fatalf("far (%d) not faster than eager (%d) on a hammered line", far.Cycles, eager.Cycles)
	}
}

func TestFarPlainRMWStillNear(t *testing.T) {
	// Non-locking RMWs (no lock prefix) stay near even under
	// PolicyFar: they are ordinary load/op/store sequences.
	var p trace.Program
	for i := 0; i < 30; i++ {
		p = append(p, trace.Instr{
			PC: uint64(0x400000 + 4*i), Kind: trace.Atomic, Dst: 1,
			Addr: 0x40000000, Size: 8, AtomicOp: trace.FAA, NoLockPrefix: true,
		})
	}
	r, s := buildAndRun(t, farCfg(1), []trace.Program{p})
	if r.Committed != 30 {
		t.Fatalf("committed %d", r.Committed)
	}
	for _, d := range s.Directories() {
		if d.Stats.FarOps.Value() != 0 {
			t.Fatal("plain RMW executed at the bank")
		}
	}
}
