package sim

// LeakMsgForTest draws one message from the system's pool and drops it,
// simulating a component that lost a message without Put. Tests use it
// to prove the end-of-run conservation check actually fires.
func (s *System) LeakMsgForTest() { s.pool.Get() }
