package sim

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

// TestCoherenceInvariantUnderContention runs a heavily contended
// workload with the single-writer/multiple-reader checker armed.
func TestCoherenceInvariantUnderContention(t *testing.T) {
	for _, pol := range []config.AtomicPolicy{
		config.PolicyEager, config.PolicyLazy, config.PolicyRoW, config.PolicyFar,
	} {
		cfg := config.Default()
		cfg.NumCores = 8
		cfg.Policy = pol
		cfg.EarlyAddrCalc = pol == config.PolicyRoW
		cfg.MaxCycles = 50_000_000
		progs := workload.Generate(workload.MustGet("pc"), 8, 3000, 5)
		s, err := New(cfg, progs, WithInvariantChecks(64))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

// TestCoherenceInvariantMixedSharing covers read-sharing plus writes.
func TestCoherenceInvariantMixedSharing(t *testing.T) {
	shared := uint64(0x18000000)
	mk := func(writer bool) trace.Program {
		var p trace.Program
		for i := 0; i < 400; i++ {
			if writer && i%3 == 0 {
				p = append(p, trace.Instr{PC: 0x400000, Kind: trace.Store, Src1: 1, Addr: shared + uint64(i%8)*64, Size: 8})
			} else {
				p = append(p, trace.Instr{PC: 0x400004, Kind: trace.Load, Dst: 1, Addr: shared + uint64(i%8)*64, Size: 8})
			}
		}
		return p
	}
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.MaxCycles = 20_000_000
	progs := []trace.Program{mk(true), mk(false), mk(true), mk(false)}
	s, err := New(cfg, progs, WithInvariantChecks(32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// A final explicit check at quiescence.
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
