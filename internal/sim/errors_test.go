package sim

import (
	"strings"
	"testing"
)

// TestWaitEdgeRendering pins the one-hop formats a human reads first
// when a deadlock report fires: bank state present, bank state lost on
// the wire, and the cache-locking "stalled" annotation.
func TestWaitEdgeRendering(t *testing.T) {
	cases := []struct {
		name string
		edge WaitEdge
		want []string
	}{
		{
			name: "full hop with bank state",
			edge: WaitEdge{Core: 2, Line: 0x4c0, Bank: 1, CacheDesc: "MSHR GetX pending", BankDesc: "busy: awaiting Unblock", Next: 3},
			want: []string{
				"core 2 waits on line 0x4c0 (MSHR GetX pending)",
				"bank 1: busy: awaiting Unblock",
				"-> core 3",
			},
		},
		{
			name: "message lost on the wire",
			edge: WaitEdge{Core: 0, Line: 0x80, Bank: 2, CacheDesc: "MSHR Get pending", BankDesc: "", Next: -1},
			want: []string{
				"core 0 waits on line 0x80",
				"bank 2: no transaction in flight (message on the wire or lost)",
			},
		},
		{
			name: "next holder stalls the external request (cache locking)",
			edge: WaitEdge{Core: 1, Line: 0x100, Bank: 0, CacheDesc: "far RMW", BankDesc: "busy", Stalled: true, Next: 2},
			want: []string{
				"-> core 2 (holds the line locked; external request stalled)",
			},
		},
	}
	for _, tc := range cases {
		s := tc.edge.String()
		for _, w := range tc.want {
			if !strings.Contains(s, w) {
				t.Errorf("%s: rendering %q lacks %q", tc.name, s, w)
			}
		}
	}
	// A chain dead-ending without a bank must not invent one.
	noBank := WaitEdge{Core: 5, Line: 0x40, Bank: -1, CacheDesc: "MSHR Get pending", Next: -1}
	if s := noBank.String(); strings.Contains(s, "bank") {
		t.Errorf("bankless edge mentions a bank: %q", s)
	}
}

// TestDeadlockErrorRendering: the full report distinguishes a genuine
// cycle from a dead-ended chain, and lists every hop in order.
func TestDeadlockErrorRendering(t *testing.T) {
	chain := []WaitEdge{
		{Core: 0, Line: 0x4c0, Bank: 1, CacheDesc: "MSHR GetX", BankDesc: "busy", Next: 1},
		{Core: 1, Line: 0x500, Bank: 0, CacheDesc: "MSHR GetX", BankDesc: "busy", Stalled: true, Next: 0},
	}
	cyclic := &DeadlockError{Cycle: 99999, Window: 4096, Chain: chain, Cyclic: true}
	s := cyclic.Error()
	for _, w := range []string{
		"deadlock cycle",
		"no commit for 4096 cycles at cycle 99999",
		"wait-for chain:",
		"core 0 waits on line 0x4c0",
		"core 1 waits on line 0x500",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("cyclic report %q lacks %q", s, w)
		}
	}
	// The two hops must render in walk order (core 0's edge first).
	if strings.Index(s, "core 0 waits") > strings.Index(s, "core 1 waits") {
		t.Errorf("chain hops out of order:\n%s", s)
	}

	deadEnd := &DeadlockError{Cycle: 512, Window: 256, Chain: chain[:1], Cyclic: false}
	if ds := deadEnd.Error(); !strings.Contains(ds, "no progress") || strings.Contains(ds, "deadlock cycle") {
		t.Errorf("dead-ended chain mislabeled: %q", ds)
	}
}
