package sim_test

import (
	"fmt"
	"log"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

// Example runs a small contended workload under the RoW policy and
// prints the committed-instruction count (cycle counts are stable for
// a fixed seed but too fragile to assert in documentation).
func Example() {
	params := workload.MustGet("sps")
	progs := workload.Generate(params, 4, 2000, 1)

	cfg := config.Default()
	cfg.NumCores = 4
	cfg.Policy = config.PolicyRoW
	cfg.MaxCycles = 50_000_000

	system, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(params)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := system.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed=%d atomics=%d\n", res.Committed, res.Atomics)
	// Output: committed=8000 atomics=64
}
