package sim

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/trace"
)

// TestMispredictsAroundAtomics: hard-to-predict branches interleaved
// with contended atomics — exercises front-end holds combined with
// lock replay machinery.
func TestMispredictsAroundAtomics(t *testing.T) {
	const hot = uint64(0x10000000)
	mk := func(seedish int) trace.Program {
		var p trace.Program
		for i := 0; i < 300; i++ {
			p = append(p,
				trace.Instr{PC: 0x400000, Kind: trace.IntOp, Dst: 1},
				trace.Instr{PC: 0x400004, Kind: trace.Branch, Src1: 1, Taken: (i*2654435761+seedish)&4 != 0},
				trace.Instr{PC: 0x400008, Kind: trace.Atomic, Dst: 2, Addr: hot, Size: 8, AtomicOp: trace.FAA},
			)
		}
		return p
	}
	for _, pol := range []config.AtomicPolicy{config.PolicyEager, config.PolicyLazy} {
		cfg := smallCfg(4)
		cfg.Policy = pol
		cfg.MaxCycles = 50_000_000
		r, _ := buildAndRun(t, cfg, []trace.Program{mk(0), mk(1), mk(2), mk(3)})
		if r.Committed != 4*900 {
			t.Fatalf("policy %v: committed %d", pol, r.Committed)
		}
		if r.Mispredicts == 0 {
			t.Fatalf("policy %v: no mispredicts on a random pattern", pol)
		}
	}
}

// TestFencesBetweenAtomics: explicit fences interleaved with locking
// atomics (both use the fence bookkeeping) must retire in order.
func TestFencesBetweenAtomics(t *testing.T) {
	var p trace.Program
	for i := 0; i < 100; i++ {
		p = append(p,
			trace.Instr{PC: 0x400000, Kind: trace.Atomic, Dst: 1, Addr: uint64(0x40000000 + i*64), Size: 8, AtomicOp: trace.FAA},
			trace.Instr{PC: 0x400004, Kind: trace.Fence},
			trace.Instr{PC: 0x400008, Kind: trace.Load, Dst: 2, Addr: uint64(0x40010000 + i*64), Size: 8},
		)
	}
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{p})
	if r.Committed != 300 {
		t.Fatalf("committed %d", r.Committed)
	}
	if r.Atomics != 100 {
		t.Fatalf("atomics %d", r.Atomics)
	}
}

// TestFencedAtomicsMultiCore: the Fig. 2 "old x86" mode on a
// contended multicore still completes and serializes.
func TestFencedAtomicsMultiCore(t *testing.T) {
	const hot = uint64(0x10000000)
	cfg := smallCfg(4)
	cfg.Core.FencedAtomics = true
	cfg.MaxCycles = 50_000_000
	progs := []trace.Program{
		atomicProgram(80, hot, trace.FAA), atomicProgram(80, hot, trace.FAA),
		atomicProgram(80, hot, trace.FAA), atomicProgram(80, hot, trace.FAA),
	}
	r, _ := buildAndRun(t, cfg, progs)
	if r.Atomics != 320 {
		t.Fatalf("atomics %d", r.Atomics)
	}
}

// TestStoreHeavyDrain: SB-capacity pressure — more in-flight stores
// than SB entries, mixed lines, multicore invalidation traffic.
func TestStoreHeavyDrain(t *testing.T) {
	shared := uint64(0x18000000)
	mk := func(core int) trace.Program {
		var p trace.Program
		for i := 0; i < 1500; i++ {
			addr := shared + uint64((i*7+core)%64)*64
			p = append(p, trace.Instr{PC: uint64(0x400000 + 4*(i%32)), Kind: trace.Store, Src1: 1, Addr: addr, Size: 8})
		}
		return p
	}
	cfg := smallCfg(4)
	cfg.MaxCycles = 50_000_000
	r, _ := buildAndRun(t, cfg, []trace.Program{mk(0), mk(1), mk(2), mk(3)})
	if r.Committed != 6000 {
		t.Fatalf("committed %d", r.Committed)
	}
}

// TestRoWWithEWDetectionEndToEnd: the weakest detector still runs the
// full predictor train/predict loop.
func TestRoWWithEWDetectionEndToEnd(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.Policy = config.PolicyRoW
	cfg.RoW.Detection = config.DetectEW
	cfg.EarlyAddrCalc = false
	cfg.MaxCycles = 50_000_000
	const hot = uint64(0x10000000)
	progs := []trace.Program{
		atomicProgram(100, hot, trace.FAA), atomicProgram(100, hot, trace.FAA),
		atomicProgram(100, hot, trace.FAA), atomicProgram(100, hot, trace.FAA),
	}
	s, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Atomics != 400 {
		t.Fatalf("atomics %d", r.Atomics)
	}
}

// TestSingleInstructionProgram: degenerate sizes.
func TestSingleInstructionProgram(t *testing.T) {
	for _, in := range []trace.Instr{
		{PC: 4, Kind: trace.IntOp, Dst: 1},
		{PC: 4, Kind: trace.Load, Dst: 1, Addr: 0x40000000, Size: 8},
		{PC: 4, Kind: trace.Store, Src1: 1, Addr: 0x40000000, Size: 8},
		{PC: 4, Kind: trace.Atomic, Dst: 1, Addr: 0x40000000, Size: 8, AtomicOp: trace.FAA},
		{PC: 4, Kind: trace.Fence},
		{PC: 4, Kind: trace.Branch, Taken: true},
	} {
		r, _ := buildAndRun(t, smallCfg(1), []trace.Program{{in}})
		if r.Committed != 1 {
			t.Fatalf("%v: committed %d", in.Kind, r.Committed)
		}
	}
}

// TestEmptyProgram: a core with nothing to do finishes immediately.
func TestEmptyProgram(t *testing.T) {
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{{}})
	if r.Committed != 0 {
		t.Fatalf("committed %d", r.Committed)
	}
}
