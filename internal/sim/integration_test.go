package sim

import (
	"testing"
	"testing/quick"

	"rowsim/internal/config"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

// buildAndRun assembles a small system and runs it to completion.
func buildAndRun(t *testing.T, cfg *config.Config, progs []trace.Program) (Result, *System) {
	t.Helper()
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000
	}
	s, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

func smallCfg(cores int) *config.Config {
	cfg := config.Default()
	cfg.NumCores = cores
	cfg.Policy = config.PolicyEager
	return cfg
}

// seq builds a simple program of ALU ops with an optional dependency
// chain.
func aluProgram(n int, chained bool) trace.Program {
	p := make(trace.Program, n)
	for i := range p {
		p[i] = trace.Instr{PC: uint64(0x400000 + 4*i), Kind: trace.IntOp, Dst: trace.Reg(1 + i%40)}
		if chained {
			p[i].Dst = 1
			p[i].Src1 = 1
		}
	}
	return p
}

func TestALUProgramCompletes(t *testing.T) {
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{aluProgram(1000, false)})
	if r.Committed != 1000 {
		t.Fatalf("committed %d, want 1000", r.Committed)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	rInd, _ := buildAndRun(t, smallCfg(1), []trace.Program{aluProgram(2000, false)})
	rDep, _ := buildAndRun(t, smallCfg(1), []trace.Program{aluProgram(2000, true)})
	// A fully dependent chain is bounded below by one op per cycle;
	// independent ops run several per cycle.
	if rDep.Cycles < 2000 {
		t.Fatalf("dependent chain finished in %d cycles (< chain length)", rDep.Cycles)
	}
	if rInd.Cycles*2 > rDep.Cycles {
		t.Fatalf("no ILP advantage: independent %d vs chained %d", rInd.Cycles, rDep.Cycles)
	}
}

func TestWarmLoadsHit(t *testing.T) {
	// Loads over a small warmed region never miss.
	n := 2000
	p := make(trace.Program, n)
	for i := range p {
		p[i] = trace.Instr{
			PC: uint64(0x400000 + 4*(i%64)), Kind: trace.Load,
			Dst: trace.Reg(1 + i%40), Addr: uint64(0x40000000 + (i%256)*64), Size: 8,
		}
	}
	cfg := smallCfg(1)
	cfg.Mem.PrefetcherDegree = 0 // prefetches past the region would count as misses
	r, s := buildAndRun(t, cfg, []trace.Program{p})
	if r.Committed != uint64(n) {
		t.Fatalf("committed %d", r.Committed)
	}
	if miss := s.Caches()[0].Stats.Misses.Value(); miss != 0 {
		t.Fatalf("%d misses over a warmed region", miss)
	}
}

func TestColdLoadsMiss(t *testing.T) {
	p := make(trace.Program, 64)
	for i := range p {
		p[i] = trace.Instr{
			PC: uint64(0x400000 + 4*i), Kind: trace.Load,
			Dst: trace.Reg(1 + i%40), Addr: uint64(0x40000000 + i*64), Size: 8,
		}
	}
	cfg := smallCfg(1)
	cfg.WarmCaches = false
	r, s := buildAndRun(t, cfg, []trace.Program{p})
	if r.Committed != 64 {
		t.Fatalf("committed %d", r.Committed)
	}
	if miss := s.Caches()[0].Stats.Misses.Value(); miss != 64 {
		t.Fatalf("%d misses, want 64 (cold)", miss)
	}
	if r.MissLatency < 100 {
		t.Fatalf("cold miss latency %.0f suspiciously low", r.MissLatency)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// store [X]; load [X] immediately after: the load forwards.
	p := trace.Program{
		{PC: 0x400000, Kind: trace.Store, Src1: 1, Addr: 0x40000100, Size: 8},
		{PC: 0x400004, Kind: trace.Load, Dst: 2, Addr: 0x40000100, Size: 8},
	}
	// Pad so the system has work.
	p = append(p, aluProgram(100, false)...)
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{p})
	if r.LoadForwards == 0 {
		t.Fatal("no store-to-load forwarding")
	}
}

func TestFenceSlowsMemoryOverlap(t *testing.T) {
	mk := func(fenced bool) trace.Program {
		var p trace.Program
		for i := 0; i < 200; i++ {
			p = append(p, trace.Instr{
				PC: uint64(0x400000 + 16*i), Kind: trace.Load,
				Dst: 1, Addr: uint64(0x40000000 + i*64), Size: 8,
			})
			if fenced {
				p = append(p, trace.Instr{PC: uint64(0x400008 + 16*i), Kind: trace.Fence})
			}
		}
		return p
	}
	cfg := smallCfg(1)
	cfg.WarmCaches = false // misses expose the fence serialization
	rPlain, _ := buildAndRun(t, cfg, []trace.Program{mk(false)})
	cfg2 := smallCfg(1)
	cfg2.WarmCaches = false
	rFenced, _ := buildAndRun(t, cfg2, []trace.Program{mk(true)})
	if rFenced.Cycles < rPlain.Cycles*2 {
		t.Fatalf("fences did not serialize: %d vs %d", rFenced.Cycles, rPlain.Cycles)
	}
}

func atomicProgram(n int, line uint64, op trace.AtomicKind) trace.Program {
	var p trace.Program
	for i := 0; i < n; i++ {
		p = append(p,
			trace.Instr{PC: uint64(0x400000 + 16*i), Kind: trace.IntOp, Dst: 1},
			trace.Instr{PC: uint64(0x400004 + 16*i), Kind: trace.Atomic, Dst: 2, Addr: line, Size: 8, AtomicOp: op},
			trace.Instr{PC: uint64(0x400008 + 16*i), Kind: trace.IntOp, Src1: 2, Dst: 3},
		)
	}
	return p
}

func TestAtomicsCompleteEager(t *testing.T) {
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{atomicProgram(50, 0x40000000, trace.FAA)})
	if r.Atomics != 50 {
		t.Fatalf("atomics = %d, want 50", r.Atomics)
	}
	if r.EagerIssued == 0 || r.LazyIssued != 0 {
		t.Fatalf("issued eager=%d lazy=%d, want all eager", r.EagerIssued, r.LazyIssued)
	}
}

func TestAtomicsCompleteLazy(t *testing.T) {
	cfg := smallCfg(1)
	cfg.Policy = config.PolicyLazy
	cfg.EarlyAddrCalc = false
	r, _ := buildAndRun(t, cfg, []trace.Program{atomicProgram(50, 0x40000000, trace.FAA)})
	if r.Atomics != 50 {
		t.Fatalf("atomics = %d, want 50", r.Atomics)
	}
	if r.LazyIssued == 0 || r.EagerIssued != 0 {
		t.Fatalf("issued eager=%d lazy=%d, want all lazy", r.EagerIssued, r.LazyIssued)
	}
	if r.LockToUnlock > 10 {
		t.Fatalf("lazy lock window %.0f cycles, want tiny", r.LockToUnlock)
	}
}

func TestContendedAtomicsSerializeAcrossCores(t *testing.T) {
	// Two cores hammering one line: the line must bounce (forwards at
	// the directory) and external requests must hit locked windows.
	const hot = uint64(0x10000000)
	progs := []trace.Program{
		atomicProgram(100, hot, trace.FAA),
		atomicProgram(100, hot, trace.FAA),
	}
	r, s := buildAndRun(t, smallCfg(2), progs)
	if r.Atomics != 200 {
		t.Fatalf("atomics = %d, want 200", r.Atomics)
	}
	var fwds uint64
	for _, d := range s.Directories() {
		fwds += d.Stats.Forwards.Value()
	}
	if fwds == 0 {
		t.Fatal("the contended line never transferred cache to cache")
	}
	if r.ContendedFrac == 0 {
		t.Fatal("no contention detected on a fully contended line")
	}
}

func TestCacheLockingStallsExternalRequests(t *testing.T) {
	// Each atomic is preceded by a slow dependent chain so its eager
	// lock is held long enough for the contending core's forwarded
	// request to arrive inside the locked window. (With short holds
	// the invalidation usually lands after the unlock — exactly the
	// Fig. 8 race that motivates the directory-latency detector.)
	const hot = uint64(0x10000000)
	mk := func() trace.Program {
		var p trace.Program
		for i := 0; i < 60; i++ {
			for j := 0; j < 25; j++ {
				p = append(p, trace.Instr{PC: uint64(0x400000 + 4*j), Kind: trace.IntMul, Src1: 1, Dst: 1})
			}
			p = append(p, trace.Instr{PC: 0x4001f0, Kind: trace.Atomic, Dst: 2, Addr: hot, Size: 8, AtomicOp: trace.FAA})
		}
		return p
	}
	r, _ := buildAndRun(t, smallCfg(2), []trace.Program{mk(), mk()})
	if r.ExtStalls == 0 {
		t.Fatal("no external request ever hit a locked line")
	}
}

func TestFencedAtomicsSlower(t *testing.T) {
	prog := atomicProgram(100, 0x40000000, trace.FAA)
	cfg := smallCfg(1)
	cfg.WarmCaches = false
	fast, _ := buildAndRun(t, cfg, []trace.Program{prog})
	cfg2 := smallCfg(1)
	cfg2.WarmCaches = false
	cfg2.Core.FencedAtomics = true
	slow, _ := buildAndRun(t, cfg2, []trace.Program{prog})
	if slow.Cycles <= fast.Cycles {
		t.Fatalf("fenced atomics not slower: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

func TestSameLineAtomicsSameCore(t *testing.T) {
	// Back-to-back atomics on one line from one core must serialize
	// their locks but still complete.
	var p trace.Program
	for i := 0; i < 30; i++ {
		p = append(p, trace.Instr{
			PC: uint64(0x400000 + 4*i), Kind: trace.Atomic, Dst: 1,
			Addr: 0x40000040, Size: 8, AtomicOp: trace.FAA,
		})
	}
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{p})
	if r.Atomics != 30 {
		t.Fatalf("atomics = %d, want 30", r.Atomics)
	}
}

func TestManyAtomicsExceedAQ(t *testing.T) {
	// More in-flight atomics than AQ entries: dispatch must stall and
	// recover, never deadlock.
	var p trace.Program
	for i := 0; i < 64; i++ {
		p = append(p, trace.Instr{
			PC: uint64(0x400000 + 4*i), Kind: trace.Atomic, Dst: 1,
			Addr: uint64(0x40000000 + i*64), Size: 8, AtomicOp: trace.FAA,
		})
	}
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{p})
	if r.Atomics != 64 {
		t.Fatalf("atomics = %d, want 64", r.Atomics)
	}
}

func TestRoWSplitsPolicies(t *testing.T) {
	// A workload mixing contended and private atomics under RoW must
	// issue some of each kind.
	cfg := config.Default()
	cfg.NumCores = 8
	cfg.Policy = config.PolicyRoW
	cfg.MaxCycles = 50_000_000
	progs := workload.Generate(workload.MustGet("sps"), 8, 6000, 3)
	s, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.EagerIssued == 0 || r.LazyIssued == 0 {
		t.Fatalf("RoW did not split: eager=%d lazy=%d", r.EagerIssued, r.LazyIssued)
	}
	if r.PredAccuracy == 0 {
		t.Fatal("predictor accuracy not measured")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.Policy = config.PolicyRoW
		cfg.MaxCycles = 50_000_000
		progs := workload.Generate(workload.MustGet("sps"), 4, 3000, 11)
		s, err := New(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.ContendedFrac != b.ContendedFrac {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBranchMispredictsCost(t *testing.T) {
	mk := func(taken func(i int) bool) trace.Program {
		var p trace.Program
		for i := 0; i < 2000; i++ {
			p = append(p, trace.Instr{PC: 0x400000, Kind: trace.IntOp, Dst: 1})
			p = append(p, trace.Instr{PC: 0x400004, Kind: trace.Branch, Src1: 1, Taken: taken(i)})
		}
		return p
	}
	biased, _ := buildAndRun(t, smallCfg(1), []trace.Program{mk(func(int) bool { return true })})
	// Pattern chosen to defeat both bimodal and short-history gshare.
	hard, _ := buildAndRun(t, smallCfg(1), []trace.Program{mk(func(i int) bool {
		return (i*2654435761)&8 != 0
	})})
	if hard.Mispredicts <= biased.Mispredicts {
		t.Fatalf("mispredicts: hard=%d biased=%d", hard.Mispredicts, biased.Mispredicts)
	}
	if hard.Cycles <= biased.Cycles {
		t.Fatalf("mispredicts cost nothing: %d vs %d", hard.Cycles, biased.Cycles)
	}
}

func TestLQSquashOnRemoteWrite(t *testing.T) {
	// Core 1 writes a line that core 0 reads speculatively behind
	// slow older loads: core 0 must occasionally squash.
	shared := uint64(0x18000000)
	var p0 trace.Program
	for i := 0; i < 200; i++ {
		p0 = append(p0,
			// Slow older load (cold, private).
			trace.Instr{PC: 0x400000, Kind: trace.Load, Dst: 1, Addr: uint64(0x40000000 + i*64), Size: 8},
			// Speculative young load of the shared line.
			trace.Instr{PC: 0x400004, Kind: trace.Load, Dst: 2, Addr: shared, Size: 8},
			trace.Instr{PC: 0x400008, Kind: trace.IntOp, Src1: 2, Dst: 3},
		)
	}
	var p1 trace.Program
	for i := 0; i < 300; i++ {
		p1 = append(p1, trace.Instr{PC: 0x400100, Kind: trace.Store, Src1: 1, Addr: shared, Size: 8})
		p1 = append(p1, trace.Instr{PC: 0x400104, Kind: trace.IntOp, Dst: 1})
	}
	cfg := smallCfg(2)
	cfg.WarmCaches = false
	r, _ := buildAndRun(t, cfg, []trace.Program{p0, p1})
	if r.LQSquashes == 0 {
		t.Fatal("no TSO squash despite racing reads and writes")
	}
}

func TestMemoryDependenceViolationLearned(t *testing.T) {
	// A load that aliases an older store whose address resolves late
	// must first violate, then be predicted by the store sets.
	var p trace.Program
	for i := 0; i < 100; i++ {
		p = append(p,
			// The store's address depends on a slow chain.
			trace.Instr{PC: 0x400000, Kind: trace.IntMul, Src1: 4, Dst: 4},
			trace.Instr{PC: 0x400004, Kind: trace.IntMul, Src1: 4, Dst: 4},
			trace.Instr{PC: 0x400008, Kind: trace.Store, Src1: 1, Src2: 4, Addr: 0x40000200, Size: 8},
			// The load to the same line has no dependencies: it wants
			// to issue immediately.
			trace.Instr{PC: 0x40000c, Kind: trace.Load, Dst: 2, Addr: 0x40000200, Size: 8},
			trace.Instr{PC: 0x400010, Kind: trace.IntOp, Src1: 2, Dst: 3},
		)
	}
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{p})
	if r.SSViolations == 0 {
		t.Fatal("no memory-order violation ever detected")
	}
	if r.SSViolations > 50 {
		t.Fatalf("store sets never learned: %d violations in 100 iterations", r.SSViolations)
	}
}

// TestQuickNeverDeadlocks: random contended workloads — including the
// lock kernels, the historically riskiest traffic — on small core
// counts always run to completion under every policy.
func TestQuickNeverDeadlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	workloads := []string{"pc", "cq", "ticket", "tas", "barrier"}
	policies := []config.AtomicPolicy{
		config.PolicyEager, config.PolicyLazy, config.PolicyRoW, config.PolicyFar,
	}
	f := func(seed uint64, polPick, wlPick uint8) bool {
		wl := workloads[int(wlPick)%len(workloads)]
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.Policy = policies[int(polPick)%len(policies)]
		cfg.EarlyAddrCalc = cfg.Policy == config.PolicyRoW
		cfg.MaxCycles = 50_000_000
		progs := workload.Generate(workload.MustGet(wl), 4, 1500, seed)
		s, err := New(cfg, progs)
		if err != nil {
			return false
		}
		r, err := s.Run()
		if err != nil {
			t.Logf("seed=%d wl=%s policy=%v: %v", seed, wl, cfg.Policy, err)
			return false
		}
		return r.Committed >= 4*1500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
