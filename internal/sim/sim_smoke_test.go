package sim

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/workload"
)

// TestSmokeSingleCore runs a tiny single-core workload end to end.
func TestSmokeSingleCore(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.Policy = config.PolicyEager
	cfg.MaxCycles = 2_000_000
	progs := workload.Generate(workload.MustGet("canneal"), 1, 2000, 42)
	s, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 2000 {
		t.Fatalf("committed %d < 2000", r.Committed)
	}
	t.Logf("cycles=%d committed=%d ipc=%.2f atomics=%d", r.Cycles, r.Committed, r.IPC, r.Atomics)
}

// TestSmokeContended runs a small contended multicore workload under
// each policy.
func TestSmokeContended(t *testing.T) {
	for _, pol := range []config.AtomicPolicy{config.PolicyEager, config.PolicyLazy, config.PolicyRoW} {
		cfg := config.Default()
		cfg.NumCores = 8
		cfg.Policy = pol
		cfg.MaxCycles = 5_000_000
		progs := workload.Generate(workload.MustGet("pc"), 8, 2000, 7)
		s, err := New(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		t.Logf("policy=%v cycles=%d ipc=%.2f atomics=%d contended=%.2f",
			pol, r.Cycles, r.IPC, r.Atomics, r.ContendedFrac)
	}
}
