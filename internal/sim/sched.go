package sim

import (
	"context"
	"fmt"
)

// Scheduler selects how RunCtx advances simulated time.
type Scheduler uint8

const (
	// SchedEvent jumps the clock directly to the earliest future
	// wake-up across all components, skipping dead cycles entirely.
	// It is the default: the zero value of every Options struct and
	// CLI that embeds a Scheduler.
	SchedEvent Scheduler = iota
	// SchedCycle ticks every component every cycle — the reference
	// loop the event scheduler is checked against.
	SchedCycle
)

// String renders the CLI spelling of the mode.
func (m Scheduler) String() string {
	if m == SchedCycle {
		return "cycle"
	}
	return "event"
}

// Other returns the opposite scheduler (mode-equivalence replays).
func (m Scheduler) Other() Scheduler {
	if m == SchedCycle {
		return SchedEvent
	}
	return SchedCycle
}

// ParseScheduler maps a -sched flag value to a Scheduler.
func ParseScheduler(s string) (Scheduler, error) {
	switch s {
	case "event":
		return SchedEvent, nil
	case "cycle":
		return SchedCycle, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (want cycle or event)", s)
}

// runEvent is the next-event loop. Each iteration computes the
// earliest future cycle at which anything can happen — a mesh arrival,
// a cache pipeline event or forced-release expiry, a core wheel event
// or front-end un-stall, or a maintenance cadence — jumps the clock
// there, and visits only the nodes that are due. Equivalence with
// runCycle rests on three pillars:
//
//   - The NextEventAt contract: a component reporting its next event
//     at cycle t does no observable work in (now, t) absent external
//     input, and external input (mail, a same-node client call) always
//     lands on a visited node. WithCrossCheck verifies the contract by
//     visiting every cycle and replaying the ticks the wake times said
//     were skippable, asserting their work counters unchanged.
//   - Phase order: within a visited cycle the loop runs banks, then
//     caches in index order, then cores in index order — exactly the
//     cycle loop's order with provably idle ticks removed — so every
//     message send happens at the same cycle, in the same global
//     order, with the same mesh sequence number and the same fault
//     injector RNG draw as in cycle mode.
//   - Maintenance bounds: the jump never overshoots the next multiple
//     of 1024 or checkEvery, or MaxCycles+1, so the watchdog, context
//     poll, coherence check, checkpoints and the cycle budget fire at
//     identical simulated cycles.
//
//rowlint:entry
func (s *System) runEvent(ctx context.Context, ms *maintState) (Result, error) {
	n := len(s.caches)
	cacheWake := make([]uint64, n)
	coreWake := make([]uint64, n)
	visit := make([]bool, n)
	activeCores := 0
	for i, c := range s.cores {
		cacheWake[i] = s.caches[i].NextEventAt(s.cycle)
		coreWake[i] = c.NextEventAt(s.cycle)
		if !c.Done() {
			activeCores++
		}
	}
	for activeCores > 0 {
		target := s.nextTarget(cacheWake, coreWake)
		if s.crossCheck {
			target = s.cycle + 1
		}
		if target <= s.cycle {
			panic(fmt.Sprintf("sim: event scheduler would not advance past cycle %d", s.cycle))
		}
		s.cycle = target
		s.visited++
		cyc := s.cycle
		s.mesh.Tick(cyc)
		for i, d := range s.dirs {
			node := s.cfg.NumCores + i
			if !s.mesh.HasMail(node) {
				if s.crossCheck && s.mesh.Drain(node) != nil {
					panic(fmt.Sprintf("sim: cross-check: bank %d skipped with mail at cycle %d", i, cyc))
				}
				continue
			}
			d.SetCycle(cyc)
			for _, m := range s.mesh.Drain(node) {
				d.Handle(m)
			}
		}
		for i, pc := range s.caches {
			c := s.cores[i]
			coreLive := !c.Done()
			mail := s.mesh.HasMail(i)
			cacheDue := cacheWake[i] <= cyc
			visit[i] = mail || cacheDue || (coreLive && coreWake[i] <= cyc)
			if !visit[i] {
				if s.crossCheck {
					work := pc.WorkDone()
					pc.Tick(cyc)
					if pc.WorkDone() != work {
						panic(fmt.Sprintf("sim: cross-check: cache %d slept through work at cycle %d", i, cyc))
					}
				}
				continue
			}
			if coreLive && (mail || cacheDue) {
				// Cache-phase callbacks (completions, forced releases,
				// external requests) observe the core clock of the
				// previous cycle, exactly as in the cycle loop where
				// the core last ticked at cyc-1.
				c.SetNow(cyc - 1)
			}
			switch {
			case mail:
				// Deliver-time handlers read the controller clock the
				// previous cycle's Tick/SetNow left behind in the
				// cycle loop.
				pc.SetNow(cyc - 1)
				pc.Deliver(s.mesh.Drain(i))
				pc.Tick(cyc)
			case cacheDue:
				pc.Tick(cyc)
			default:
				// Core-only visit: the clock still advances so the
				// core's accesses schedule completions at the right
				// time. This replaces the cycle loop's per-cache
				// per-cycle SetNow — it now runs only on visits.
				pc.SetNow(cyc)
			}
		}
		for i, c := range s.cores {
			if c.Done() {
				continue
			}
			if !visit[i] {
				if s.crossCheck {
					work := c.WorkDone()
					c.Tick(cyc)
					if c.WorkDone() != work || c.Done() {
						panic(fmt.Sprintf("sim: cross-check: core %d slept through work at cycle %d", i, cyc))
					}
				}
				continue
			}
			c.Tick(cyc)
			if c.Done() {
				activeCores--
			}
		}
		// Only visited nodes can have changed state: unvisited caches
		// receive no mail and no client calls, unvisited cores no
		// responses, so their previously computed wake-ups stand.
		for i := 0; i < n; i++ {
			if visit[i] {
				cacheWake[i] = s.caches[i].NextEventAt(cyc)
				coreWake[i] = s.cores[i].NextEventAt(cyc)
			}
		}
		if err := s.postCycle(ctx, cyc, ms); err != nil {
			return Result{}, err
		}
	}
	if err := s.checkMsgConservation(); err != nil {
		return Result{}, err
	}
	return s.collect(), nil //rowlint:ignore bigcopy per-run result value, built once at run exit
}

// nextTarget computes the next cycle anything can happen at: the
// earliest component wake-up, bounded by the maintenance cadences so
// watchdog/poll/checkpoint/coherence checks and the cycle budget fire
// at the same simulated cycles as the cycle loop.
//
//rowlint:noalloc
func (s *System) nextTarget(cacheWake, coreWake []uint64) uint64 {
	target := (s.cycle &^ 1023) + 1024
	if s.checkEvery > 0 {
		if t := (s.cycle/s.checkEvery + 1) * s.checkEvery; t < target {
			target = t
		}
	}
	if s.cfg.MaxCycles > 0 && s.cfg.MaxCycles+1 > s.cycle && s.cfg.MaxCycles+1 < target {
		target = s.cfg.MaxCycles + 1
	}
	if t := s.mesh.NextEventAt(s.cycle); t < target {
		target = t
	}
	for i, t := range cacheWake {
		if t < target {
			target = t
		}
		if ct := coreWake[i]; ct < target {
			target = ct
		}
	}
	return target
}
