package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/faults"
	"rowsim/internal/workload"
)

// snapCfg builds the reference configuration the round-trip tests run:
// small enough to finish fast, RoW so every optional structure (AQ,
// contention predictor) is live.
func snapCfg(policy config.AtomicPolicy) *config.Config {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.Policy = policy
	cfg.MaxCycles = 50_000_000
	return cfg
}

// runToEnd runs the system and returns the result plus the final
// system snapshot (the strongest equality witness: every counter and
// table, not just the aggregated Result).
func runToEnd(t *testing.T, s *System) (Result, *SysSnap) {
	t.Helper()
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, s.Snapshot()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotResumeByteIdentical is the core checkpoint correctness
// property at the in-memory level: capture a snapshot mid-run, rebuild
// a fresh system from scratch (regenerated programs), restore, resume
// — the final Result and the final full-system snapshot must be
// byte-identical to the uninterrupted run's.
func TestSnapshotResumeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy config.AtomicPolicy
		wl     string
		faults faults.Config
	}{
		{name: "row_sps", policy: config.PolicyRoW, wl: "sps"},
		{name: "eager_pc", policy: config.PolicyEager, wl: "pc"},
		{name: "row_sps_jitter", policy: config.PolicyRoW, wl: "sps",
			faults: faults.Config{Seed: 9, JitterProb: 0.3, JitterMax: 12}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := snapCfg(tc.policy)
			p := workload.MustGet(tc.wl)
			build := func() *System {
				progs := workload.Generate(p, cfg.NumCores, 6000, 11)
				opts := []Option{WithWarmFilter(workload.WarmFilter(p))}
				if tc.faults != (faults.Config{}) {
					opts = append(opts, WithFaults(tc.faults))
				}
				s, err := New(cfg, progs, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}

			wantRes, wantSnap := runToEnd(t, build())

			// Second run: capture snapshots at a cadence and keep the
			// middle one, so the resume exercises genuinely in-flight
			// state (non-empty ROBs, MSHRs, mesh traffic).
			var snaps []SysSnap
			s := build()
			s.ckptEvery = 2048
			s.ckptFn = func(cycle uint64, snap *SysSnap) error {
				snaps = append(snaps, *snap)
				return nil
			}
			midRes, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(midRes, wantRes) {
				t.Fatalf("checkpointing perturbed the run:\n got %+v\nwant %+v", midRes, wantRes)
			}
			if len(snaps) < 2 {
				t.Fatalf("expected at least 2 checkpoints, got %d (run too short for the cadence?)", len(snaps))
			}
			mid := snaps[len(snaps)/2]

			// Round-trip the snapshot through JSON first: the on-disk
			// checkpoint stores exactly this encoding, so the resumed
			// state must survive serialization, not just copying.
			var decoded SysSnap
			if err := json.Unmarshal(mustJSON(t, &mid), &decoded); err != nil {
				t.Fatal(err)
			}

			resumed := build()
			if err := resumed.RestoreSnap(&decoded); err != nil {
				t.Fatal(err)
			}
			if resumed.Cycle() != mid.Cycle {
				t.Fatalf("restored cycle %d, snapshot says %d", resumed.Cycle(), mid.Cycle)
			}
			gotRes, gotSnap := runToEnd(t, resumed)

			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("resumed result diverged:\n got %+v\nwant %+v", gotRes, wantRes)
			}
			gotB, wantB := mustJSON(t, gotSnap), mustJSON(t, wantSnap)
			if string(gotB) != string(wantB) {
				t.Fatalf("resumed final state diverged from uninterrupted run (snapshots differ, %d vs %d bytes)", len(gotB), len(wantB))
			}
		})
	}
}

// TestRestoreSnapShapeMismatch: restoring into a differently shaped
// system must fail cleanly, not corrupt state or panic.
func TestRestoreSnapShapeMismatch(t *testing.T) {
	cfg := snapCfg(config.PolicyRoW)
	p := workload.MustGet("sps")
	s, err := New(cfg, workload.Generate(p, cfg.NumCores, 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	other := snapCfg(config.PolicyRoW)
	other.NumCores = 2
	s2, err := New(other, workload.Generate(p, other.NumCores, 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreSnap(snap); err == nil {
		t.Fatal("restoring a 4-core snapshot into a 2-core system succeeded")
	}

	// Fault-injector state into a faultless system must also refuse.
	s3, err := New(cfg, workload.Generate(p, cfg.NumCores, 500, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap.Faults.RNGState = 42
	if err := s3.RestoreSnap(snap); err == nil {
		t.Fatal("restoring injector state into a faultless system succeeded")
	}
}
