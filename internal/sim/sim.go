// Package sim assembles the full simulated system — cores, private
// caches, mesh interconnect and directory/L3 banks — and runs a
// workload to completion, extracting the metrics the experiment
// harnesses report.
package sim

import (
	"context"
	"fmt"
	"sort"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/core"
	"rowsim/internal/faults"
	"rowsim/internal/interconnect"
	"rowsim/internal/trace"
)

// System is one assembled multicore simulation.
type System struct {
	cfg    *config.Config
	mesh   *interconnect.Mesh
	cores  []*core.Core
	caches []*cache.Private
	dirs   []*coherence.Directory
	bankOf func(line uint64) int

	sink     *coherence.ErrorSink
	injector *faults.Injector
	pool     *coherence.MsgPool

	warmFilter func(core int, line uint64) bool
	checkEvery uint64
	watchdog   uint64
	crossCheck bool
	sched      Scheduler

	ckptEvery uint64
	ckptFn    func(cycle uint64, snap *SysSnap) error
	lastCkpt  uint64

	cycle   uint64
	visited uint64 // loop iterations: cycles actually simulated (vs skipped)
}

// Option customizes system construction.
type Option func(*System)

// WithWarmFilter restricts cache warming: lines for which the filter
// returns false stay cold (e.g. a capacity-missing atomic region).
func WithWarmFilter(f func(core int, line uint64) bool) Option {
	return func(s *System) { s.warmFilter = f }
}

// WithInvariantChecks verifies the single-writer/multiple-reader
// coherence invariant every interval cycles (expensive; intended for
// tests). A violation aborts the run with a diagnostic error.
func WithInvariantChecks(interval uint64) Option {
	return func(s *System) { s.checkEvery = interval }
}

// WithFaults installs a fault injector on the interconnect (see the
// faults package). Legal fault mixes perturb timing only; illegal ones
// (dup/drop) exercise failure detection.
func WithFaults(cfg faults.Config) Option {
	return func(s *System) {
		s.injector = faults.New(cfg)
		s.mesh.SetPerturber(s.injector)
	}
}

// WithCrossCheck verifies the cycle loop's idle-skip decisions: every
// component the loop would skip is run anyway and asserted to be a
// no-op (empty drain for banks, unchanged work counter for caches).
// A violated skip panics — it means the skip conditions are wrong and
// results could silently diverge from the always-tick loop. Enabled in
// tests and the torture harness; too slow for real runs (it defeats
// the skipping it checks).
func WithCrossCheck() Option {
	return func(s *System) { s.crossCheck = true }
}

// WithScheduler selects the simulation loop: SchedEvent (the default)
// advances the clock directly to the next scheduled wake-up, SchedCycle
// is the reference lock-step loop. Both produce byte-identical Results
// (modulo CyclesVisited; see Result.SchedNormalized). The scheduler is
// deliberately not part of config.Config: it cannot change results, so
// it stays out of checkpoint content keys, and a checkpoint taken in
// one mode restores into the other.
func WithScheduler(m Scheduler) Option {
	return func(s *System) { s.sched = m }
}

// WithCheckpoint arranges for fn to receive a full system snapshot
// every `every` simulated cycles (coarsened to the existing 1024-cycle
// cold-block cadence, so the per-cycle hot path pays nothing — with
// checkpointing off the only cost is one predictable compare every
// 1024 cycles). fn runs with the error sink checked empty and the
// simulated clock frozen; an error from fn aborts the run. Checkpoint
// cycles depend only on the cadence, never on wall-clock time, so two
// runs of the same workload checkpoint at identical instants.
func WithCheckpoint(every uint64, fn func(cycle uint64, snap *SysSnap) error) Option {
	return func(s *System) {
		s.ckptEvery = every
		s.ckptFn = fn
	}
}

// WithWatchdogWindow overrides the no-progress watchdog horizon
// (cycles without a commit before the run aborts with a deadlock
// report). Values at or below the 1024-cycle check cadence are raised
// to one cadence. Intended for tests; the default suits real runs.
func WithWatchdogWindow(cycles uint64) Option {
	return func(s *System) { s.watchdog = cycles }
}

// New builds a system running one program per core. Cores without a
// program idle (len(progs) may be less than NumCores).
func New(cfg *config.Config, progs []trace.Program, opts ...Option) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) > cfg.NumCores {
		return nil, fmt.Errorf("sim: %d programs for %d cores", len(progs), cfg.NumCores)
	}
	n := cfg.NumCores
	banks := cfg.Mem.L3Banks
	mesh := interconnect.NewMesh(n+banks, cfg.Mem.LinkCycles, cfg.Mem.RouterCycles, cfg.Mem.BaseCycles)

	lineShift := uint(0)
	for 1<<lineShift < cfg.Mem.LineBytes {
		lineShift++
	}
	bankOf := func(line uint64) int {
		return n + int((line>>lineShift)%uint64(banks))
	}

	s := &System{cfg: cfg, mesh: mesh, bankOf: bankOf, sink: &coherence.ErrorSink{}, watchdog: watchdogWindow}
	// One message free list per system, shared by every protocol agent
	// and the mesh: the system is single-threaded, so the pool needs no
	// locking, and per-system ownership means concurrent systems can
	// never leak messages (or state) into each other.
	s.pool = &coherence.MsgPool{}
	mesh.SetErrorSink(s.sink)
	mesh.SetMsgPool(s.pool)
	for b := 0; b < banks; b++ {
		d := coherence.NewDirectory(
			n+b, b, mesh,
			cfg.Mem.L3.SizeBytes, cfg.Mem.L3.Ways, cfg.Mem.LineBytes,
			cfg.Mem.L3.HitCycles, cfg.Mem.DRAMCycles,
		)
		d.SetErrorSink(s.sink)
		d.SetMsgPool(s.pool)
		s.dirs = append(s.dirs, d)
	}
	for i := 0; i < n; i++ {
		var prog trace.Program
		if i < len(progs) {
			prog = progs[i]
		}
		c := core.New(i, cfg, prog)
		pc := cache.NewPrivate(i, cfg, mesh, c, bankOf)
		c.AttachMemory(pc)
		c.SetErrorSink(s.sink)
		pc.SetErrorSink(s.sink)
		pc.SetMsgPool(s.pool)
		s.cores = append(s.cores, c)
		s.caches = append(s.caches, pc)
	}
	for _, opt := range opts {
		opt(s)
	}
	if cfg.WarmCaches {
		s.Warm(progs)
	}
	return s, nil
}

// Cores exposes the simulated cores (stats inspection).
func (s *System) Cores() []*core.Core { return s.cores }

// Caches exposes the private caches (stats inspection).
func (s *System) Caches() []*cache.Private { return s.caches }

// Directories exposes the L3/directory banks (stats inspection).
func (s *System) Directories() []*coherence.Directory { return s.dirs }

// Cycle returns the current simulation cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// Warm pre-loads the caches with the lines the programs touch, the
// way a real evaluation measures a region of interest after warm-up:
// lines accessed by a single core are installed exclusively in that
// core's private L2 (and at the directory), lines shared by several
// cores are installed in the L3. Without this, short traces are
// dominated by cold first-touch DRAM misses that real ROI
// measurements never see.
func (s *System) Warm(progs []trace.Program) {
	lineMask := ^uint64(s.cfg.Mem.LineBytes - 1)
	owner := make(map[uint64]int)
	for c, prog := range progs {
		for i := range prog {
			in := &prog[i]
			if !in.IsMem() {
				continue
			}
			line := in.Addr & lineMask
			if prev, ok := owner[line]; ok && prev != c {
				owner[line] = -1 // shared
			} else if !ok {
				owner[line] = c
			}
		}
	}
	n := s.cfg.NumCores
	banks := s.cfg.Mem.L3Banks
	lineShift := uint(0)
	for 1<<lineShift < s.cfg.Mem.LineBytes {
		lineShift++
	}
	// Deterministic install order (map iteration is randomized):
	// warming happens in line-address order, so LRU keeps the highest
	// lines of an over-capacity region — a fixed, reproducible subset.
	lines := make([]uint64, 0, len(owner))
	for line := range owner {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		c := owner[line]
		if s.warmFilter != nil && !s.warmFilter(c, line) {
			continue
		}
		bank := int((line >> lineShift) % uint64(banks))
		if c >= 0 && c < n {
			s.dirs[bank].WarmOwned(line, c)
			s.caches[c].Warm(line, cache.StateE)
		} else {
			s.dirs[bank].WarmL3(line)
		}
	}
}

// watchdogWindow is the progress-check horizon: a healthy system
// commits something well within this many cycles.
const watchdogWindow = 1 << 19

// Run simulates until every core finishes its program. It returns a
// structured error when the cycle budget is exhausted
// (*CycleLimitError), the system stops making progress
// (*DeadlockError, with the wait-for chain), or a component detects a
// protocol violation (*coherence.ProtocolError, with the message trace
// for the affected line attached).
func (s *System) Run() (Result, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run under cooperative cancellation: the context is polled
// at the existing 1024-cycle watchdog cadence (never on the per-cycle
// hot path), so an expired deadline or a canceled context stops the
// run within one check window and returns a *RunCanceledError wrapping
// ctx.Err(). The wall-clock deadline carried by the context is
// distinct from the simulated-cycle budget (Config.MaxCycles): the
// former bounds host time, the latter simulated time.
func (s *System) RunCtx(ctx context.Context) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, &RunCanceledError{Cycle: s.cycle, Cause: err}
	}
	ms := &maintState{watchdog: s.watchdog}
	if ms.watchdog < 1024 {
		ms.watchdog = 1024
	}
	if s.sched == SchedCycle {
		return s.runCycle(ctx, ms)
	}
	return s.runEvent(ctx, ms)
}

// maintState is the per-run maintenance bookkeeping shared by both
// scheduler loops: the committed-progress watchdog.
type maintState struct {
	lastCommitted uint64
	lastProgress  uint64
	watchdog      uint64
}

// runCycle is the reference lock-step loop: every cycle visits the
// mesh, every bank, every cache and every active core.
//
//rowlint:entry
func (s *System) runCycle(ctx context.Context, ms *maintState) (Result, error) {
	// active holds the cores still running their programs, in core-index
	// order. Compacting it as cores finish replaces the per-cycle
	// all-core doneness rescan: the loop exits when the list empties.
	// Ticking a done core is a no-op (it returns immediately), so
	// dropping finished cores cannot change behaviour, only cost.
	active := make([]*core.Core, 0, len(s.cores))
	for _, c := range s.cores {
		if !c.Done() {
			active = append(active, c)
		}
	}
	for len(active) > 0 {
		s.cycle++
		s.visited++
		cyc := s.cycle
		s.mesh.Tick(cyc)
		for i, d := range s.dirs {
			node := s.cfg.NumCores + i
			if !s.mesh.HasMail(node) {
				// Banks are purely message-driven: no mail means no
				// work, and the bank clock only matters while handling.
				if s.crossCheck && s.mesh.Drain(node) != nil {
					panic(fmt.Sprintf("sim: cross-check: bank %d skipped with mail at cycle %d", i, cyc))
				}
				continue
			}
			d.SetCycle(cyc)
			for _, m := range s.mesh.Drain(node) {
				d.Handle(m)
			}
		}
		for i, pc := range s.caches {
			// Drain contract: nil exactly when the inbox is empty, so
			// HasMail is the cheap precheck and Deliver never sees an
			// empty batch.
			if s.mesh.HasMail(i) {
				pc.Deliver(s.mesh.Drain(i))
				pc.Tick(cyc)
				continue
			}
			if pc.NeedsTick() {
				pc.Tick(cyc)
				continue
			}
			if s.crossCheck {
				// Replay the skipped Tick and require it observably
				// idle. (Tick also advances the clock, which is what
				// SetNow does on the skip path.)
				work := pc.WorkDone()
				pc.Tick(cyc)
				if pc.WorkDone() != work {
					panic(fmt.Sprintf("sim: cross-check: cache %d skipped with pending work at cycle %d", i, cyc))
				}
				continue
			}
			// The clock still advances: the core may issue accesses
			// this cycle, and their completion events are scheduled
			// relative to the controller's now.
			pc.SetNow(cyc)
		}
		n := 0
		for _, c := range active {
			c.Tick(cyc)
			if !c.Done() {
				active[n] = c
				n++
			}
		}
		active = active[:n]

		if err := s.postCycle(ctx, cyc, ms); err != nil {
			return Result{}, err
		}
	}
	if err := s.checkMsgConservation(); err != nil {
		return Result{}, err
	}
	return s.collect(), nil //rowlint:ignore bigcopy per-run result value, built once at run exit
}

// postCycle is the per-simulated-cycle epilogue shared by both
// scheduler loops: protocol-error surfacing, the cycle budget, the
// coherence-invariant cadence and the 1024-cycle cold block (context
// poll, progress watchdog, checkpoints). The event loop visits every
// multiple of 1024 and of checkEvery, so maintenance fires at the same
// simulated cycles in both modes.
func (s *System) postCycle(ctx context.Context, cyc uint64, ms *maintState) error {
	if pe := s.sink.Err(); pe != nil {
		pe.Trace = s.mesh.RecentTrace(pe.Line, 32)
		return pe
	}
	if s.cfg.MaxCycles > 0 && cyc > s.cfg.MaxCycles {
		return &CycleLimitError{MaxCycles: s.cfg.MaxCycles, Cycle: cyc, Dump: s.dump()}
	}
	if s.checkEvery > 0 && cyc%s.checkEvery == 0 {
		if err := s.CheckCoherence(); err != nil {
			return fmt.Errorf("sim: cycle %d: %w", cyc, err)
		}
	}
	if cyc&1023 == 0 {
		if err := ctx.Err(); err != nil {
			return &RunCanceledError{Cycle: cyc, Cause: err}
		}
		var committed uint64
		for _, c := range s.cores {
			committed += c.Stats.Committed
		}
		if committed != ms.lastCommitted {
			ms.lastCommitted = committed
			ms.lastProgress = cyc
		} else if cyc-ms.lastProgress > ms.watchdog {
			return s.diagnoseDeadlock(ms.watchdog)
		}
		if s.ckptEvery != 0 && cyc-s.lastCkpt >= s.ckptEvery {
			if s.sched == SchedEvent {
				// Normalize the component clocks the event loop left
				// stale on skipped nodes, so a snapshot is identical
				// in shape to a cycle-mode one and restores into
				// either mode. Done cores stay frozen at finishedAt,
				// matching the cycle loop (Tick returns early on
				// them). Nothing reads these clocks before the next
				// visit overwrites them, so the run itself is
				// unaffected.
				for _, pc := range s.caches {
					pc.SetNow(cyc)
				}
				for _, c := range s.cores {
					if !c.Done() {
						c.SetNow(cyc)
					}
				}
			}
			s.lastCkpt = cyc
			snap := s.Snapshot()
			if err := s.ckptFn(cyc, snap); err != nil {
				return fmt.Errorf("sim: checkpoint at cycle %d: %w", cyc, err)
			}
		}
	}
	return nil
}

// MsgAccounting returns the three message populations the pool
// conservation law relates: outstanding (pool gets minus puts), in
// flight (owned by the network), and retained (parked in directory
// waiting queues and cache stall tables).
func (s *System) MsgAccounting() (outstanding int64, inFlight, retained int) {
	outstanding = s.pool.Outstanding()
	inFlight = s.mesh.InFlightMsgs()
	for _, d := range s.dirs {
		retained += d.RetainedMsgs()
	}
	for _, pc := range s.caches {
		retained += pc.RetainedMsgs()
	}
	return outstanding, inFlight, retained
}

// checkMsgConservation asserts the pool conservation law at the end of
// a successful run: every message drawn from the pool is either still
// in flight, still retained, or was released. It runs only on the
// success path — error returns leave transactions legitimately open —
// and is a pure read: it never drains the network or perturbs stats,
// so enabling it cannot change any reported result. Legal fault
// injection keeps the books balanced (drops and duplicate copies are
// Put/Get through the pool by the mesh), so a nonzero residue is
// always a consume-or-retain bug in a component.
func (s *System) checkMsgConservation() error {
	outstanding, inFlight, retained := s.MsgAccounting()
	if outstanding != int64(inFlight)+int64(retained) {
		return &MsgLeakError{
			Cycle:       s.cycle,
			Outstanding: outstanding,
			InFlight:    inFlight,
			Retained:    retained,
		}
	}
	return nil
}

// FaultStats returns the injector's decision counts, or a zero value
// when no faults are installed.
func (s *System) FaultStats() faults.Stats {
	if s.injector == nil {
		return faults.Stats{}
	}
	return s.injector.Stats()
}

// MustRun runs and panics on simulation failure (experiment harness
// convenience: a failure is a bug, not an expected condition).
func (s *System) MustRun() Result {
	r, err := s.Run()
	if err != nil {
		panic(err)
	}
	return r //rowlint:ignore bigcopy per-run result value, built once at run exit
}

// CheckCoherence verifies the single-writer/multiple-reader invariant
// across every private cache: a line held M or E by one core must not
// be valid anywhere else. Transient windows exist while a transaction
// is in flight (data sent, old copy being invalidated), so lines with
// open directory transactions or in-flight messages are skipped; the
// check is therefore meaningful at quiesced instants and approximate
// otherwise — still enough to catch protocol regressions in tests.
func (s *System) CheckCoherence() error {
	if !s.mesh.Idle() {
		return nil // messages in flight: transient states expected
	}
	type holder struct {
		core  int
		state uint8
	}
	holders := make(map[uint64][]holder)
	for i, pc := range s.caches {
		if pc.PendingWork() {
			return nil
		}
		core := i
		pc.ForEachLine(func(line uint64, state uint8) {
			if state == cache.StateI {
				return
			}
			holders[line] = append(holders[line], holder{core: core, state: state})
		})
	}
	for _, d := range s.dirs {
		if d.PendingWork() {
			return nil
		}
	}
	// Sort the lines so that, when several are in violation, the same
	// one is reported on every run (the error text reaches logs and
	// torture-harness dedup keys).
	lines := make([]uint64, 0, len(holders))
	for line := range holders {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		hs := holders[line]
		if len(hs) < 2 {
			continue
		}
		for _, h := range hs {
			if h.state == cache.StateM || h.state == cache.StateE {
				verr := &CoherenceViolationError{Line: line}
				for _, hh := range hs {
					verr.Holders = append(verr.Holders, Holder{Core: hh.core, State: hh.state})
				}
				return verr
			}
		}
	}
	return nil
}

func (s *System) dump() string {
	out := ""
	for _, c := range s.cores {
		if !c.Done() {
			out += c.String() + "\n"
		}
	}
	for _, d := range s.dirs {
		for _, line := range d.DebugBlocked() {
			out += line + "\n"
		}
	}
	for _, pc := range s.caches {
		for _, line := range pc.DebugMSHRs() {
			out += line + "\n"
		}
	}
	return out
}
