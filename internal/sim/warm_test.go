package sim

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/trace"
	"rowsim/internal/workload"
)

// TestWarmDeterministic: warming over-capacity regions keeps a fixed
// subset, so two identical systems behave identically.
func TestWarmDeterministic(t *testing.T) {
	build := func() Result {
		cfg := config.Default()
		cfg.NumCores = 2
		cfg.MaxCycles = 50_000_000
		p := workload.MustGet("canneal")
		progs := workload.Generate(p, 2, 3000, 5)
		s, err := New(cfg, progs, WithWarmFilter(workload.WarmFilter(p)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if a, b := build(), build(); a.Cycles != b.Cycles {
		t.Fatalf("warm start nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

// TestWarmFilterKeepsAtomicsCold: canneal's atomics target a declared
// cold region; with the filter installed their fills must still miss
// past the private caches.
func TestWarmFilterKeepsAtomicsCold(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.Policy = config.PolicyEager
	cfg.MaxCycles = 50_000_000
	p := workload.MustGet("canneal")
	progs := workload.Generate(p, 1, 3000, 5)
	s, err := New(cfg, progs, WithWarmFilter(workload.WarmFilter(p)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Atomics == 0 {
		t.Fatal("no atomics committed")
	}
	// Cold atomics must show a substantial issue->lock latency (they
	// go to the L3/DRAM, not the warmed L2).
	if r.IssueToLock < 50 {
		t.Fatalf("atomic fill latency %.0f too low: cold region was warmed", r.IssueToLock)
	}
}

// TestWarmSharedLinesInL3: without a filter, a line used by two cores
// is warmed into the L3 only — the first access misses the private
// levels but is served quickly.
func TestWarmSharedLinesInL3(t *testing.T) {
	shared := uint64(0x18000000)
	mk := func() trace.Program {
		return trace.Program{
			{PC: 0x400000, Kind: trace.Load, Dst: 1, Addr: shared, Size: 8},
			{PC: 0x400004, Kind: trace.IntOp, Src1: 1, Dst: 2},
		}
	}
	cfg := config.Default()
	cfg.NumCores = 2
	cfg.MaxCycles = 1_000_000
	s, err := New(cfg, []trace.Program{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// An L3 hit plus network is far below a DRAM round trip.
	if r.MissLatency <= 0 || r.MissLatency > 150 {
		t.Fatalf("shared warm fill latency %.0f, want (0,150]", r.MissLatency)
	}
}

// TestIdleCoresAllowed: fewer programs than cores is legal.
func TestIdleCoresAllowed(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.MaxCycles = 1_000_000
	progs := []trace.Program{{{PC: 4, Kind: trace.IntOp, Dst: 1}}}
	s, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed != 1 {
		t.Fatalf("committed = %d", r.Committed)
	}
}

// TestTooManyProgramsRejected: more programs than cores is an error.
func TestTooManyProgramsRejected(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	if _, err := New(cfg, make([]trace.Program, 2)); err == nil {
		t.Fatal("expected an error")
	}
}

// TestInvalidConfigRejected: New validates the configuration.
func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("expected a validation error")
	}
}
