package sim

import (
	"fmt"
	"strings"
)

// Holder is one private cache holding a line (coherence reports).
type Holder struct {
	Core  int
	State uint8
}

// CoherenceViolationError reports a broken single-writer/multiple-
// reader invariant found by CheckCoherence: a line held exclusively by
// one core while valid in other caches.
type CoherenceViolationError struct {
	Line    uint64
	Holders []Holder
}

func (e *CoherenceViolationError) Error() string {
	return fmt.Sprintf("coherence violation: line %#x held exclusively but valid in %d caches (%v)",
		e.Line, len(e.Holders), e.Holders)
}

// CycleLimitError reports a run that exhausted its cycle budget
// (Config.MaxCycles) before every core finished.
type CycleLimitError struct {
	MaxCycles uint64
	Cycle     uint64
	Dump      string // component state at abort
}

func (e *CycleLimitError) Error() string {
	s := fmt.Sprintf("sim: exceeded MaxCycles=%d at cycle %d", e.MaxCycles, e.Cycle)
	if e.Dump != "" {
		s += "\n" + e.Dump
	}
	return s
}

// MsgLeakError reports broken pool conservation at the end of a run:
// the number of messages drawn from the pool and never released does
// not match the population with a live owner (in flight in the network
// plus retained in stall/waiting structures). Outstanding > InFlight +
// Retained means some component dropped a message without Put — the
// free list shrinks and the steady state starts allocating; the
// (never-observed) opposite sign would mean a double Put.
type MsgLeakError struct {
	Cycle       uint64
	Outstanding int64 // pool gets minus puts
	InFlight    int   // owned by the network (event heap + inboxes)
	Retained    int   // parked in directory/cache stall structures
}

func (e *MsgLeakError) Error() string {
	return fmt.Sprintf(
		"sim: message pool conservation broken at cycle %d: %d outstanding, but %d in flight + %d retained (%+d leaked)",
		e.Cycle, e.Outstanding, e.InFlight, e.Retained,
		e.Outstanding-int64(e.InFlight)-int64(e.Retained))
}

// RunCanceledError reports a run stopped by its context before
// completion — cooperative cancellation (SIGINT drain, a supervisor
// shutting down) or an expired wall-clock deadline. Cause is the
// context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) distinguish the two; the
// lifecycle package classifies the former as a drain (never retried)
// and the latter as a transient host-level failure (retryable).
type RunCanceledError struct {
	Cycle uint64 // simulation cycle at which the poll observed ctx.Err()
	Cause error
}

func (e *RunCanceledError) Error() string {
	return fmt.Sprintf("sim: run stopped at cycle %d: %v", e.Cycle, e.Cause)
}

// Unwrap exposes the context error for errors.Is.
func (e *RunCanceledError) Unwrap() error { return e.Cause }

// WaitEdge is one hop of the wait-for chain the deadlock diagnoser
// walks: a core, the line its oldest outstanding transaction waits on,
// the directory bank serving that line and the core the bank in turn
// is waiting on.
type WaitEdge struct {
	Core int    // waiting core
	Line uint64 // line its oldest outstanding request targets
	Bank int    // directory bank owning the line (-1 when unknown)
	// CacheDesc describes the core-side transaction (MSHR/far state).
	CacheDesc string
	// BankDesc describes the bank-side transaction state ("" when the
	// bank has no transaction in flight — the request or response is
	// still on the wire, or was dropped).
	BankDesc string
	// Stalled marks the next core holding the line locked with the
	// external request for it stalled (cache locking).
	Stalled bool
	// Next is the core this edge waits on, -1 when the chain ends.
	Next int
}

func (e WaitEdge) String() string {
	s := fmt.Sprintf("core %d waits on line %#x (%s)", e.Core, e.Line, e.CacheDesc)
	if e.Bank >= 0 {
		if e.BankDesc == "" {
			s += fmt.Sprintf("; bank %d: no transaction in flight (message on the wire or lost)", e.Bank)
		} else {
			s += fmt.Sprintf("; bank %d: %s", e.Bank, e.BankDesc)
		}
	}
	if e.Next >= 0 {
		s += fmt.Sprintf(" -> core %d", e.Next)
		if e.Stalled {
			s += " (holds the line locked; external request stalled)"
		}
	}
	return s
}

// DeadlockError reports the no-progress watchdog firing, with the
// wait-for chain starting at the stuck core. Cyclic is true when the
// chain closes on itself — a genuine cross-core deadlock — and false
// when it dead-ends (e.g. a message lost to fault injection).
type DeadlockError struct {
	Cycle  uint64
	Window uint64 // cycles without a commit before firing
	Chain  []WaitEdge
	Cyclic bool
	Dump   string
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	kind := "no progress"
	if e.Cyclic {
		kind = "deadlock cycle"
	}
	fmt.Fprintf(&b, "sim: %s: no commit for %d cycles at cycle %d", kind, e.Window, e.Cycle)
	if len(e.Chain) > 0 {
		b.WriteString("\nwait-for chain:\n")
		for _, edge := range e.Chain {
			fmt.Fprintf(&b, "  %s\n", edge)
		}
	}
	if e.Dump != "" {
		b.WriteString(e.Dump)
	}
	return b.String()
}

// diagnoseDeadlock walks the wait-for graph — core -> oldest MSHR line
// -> directory bank -> core the bank waits on -> ... — starting from
// every unfinished core, and returns the structured report. It prefers
// a chain that closes into a cycle; otherwise it keeps the longest.
func (s *System) diagnoseDeadlock(window uint64) *DeadlockError {
	derr := &DeadlockError{Cycle: s.cycle, Window: window, Dump: s.dump()}
	var longest []WaitEdge
	for start, c := range s.cores {
		if c.Done() {
			continue
		}
		chain, cyclic := s.walkWaitChain(start)
		if cyclic {
			derr.Chain = chain
			derr.Cyclic = true
			return derr
		}
		if len(chain) > len(longest) {
			longest = chain
		}
	}
	derr.Chain = longest
	return derr
}

// walkWaitChain follows the wait-for edges from one core until the
// chain dead-ends or revisits a core (a cycle).
func (s *System) walkWaitChain(start int) (chain []WaitEdge, cyclic bool) {
	visited := make(map[int]bool)
	cur := start
	for {
		if visited[cur] {
			return chain, true
		}
		visited[cur] = true
		line, cdesc, ok := s.caches[cur].OldestMiss()
		if !ok {
			return chain, false
		}
		edge := WaitEdge{Core: cur, Line: line, Bank: -1, CacheDesc: cdesc, Next: -1}
		bankNode := s.bankOf(line)
		bank := bankNode - s.cfg.NumCores
		if bank >= 0 && bank < len(s.dirs) {
			edge.Bank = bank
			if bdesc, waitOn, ok := s.dirs[bank].WaitingOn(line); ok {
				edge.BankDesc = bdesc
				for _, w := range waitOn {
					if w >= 0 && w < len(s.caches) && w != cur {
						edge.Next = w
						edge.Stalled = s.caches[w].HasStalledExternal(line)
						break
					}
				}
			}
		}
		chain = append(chain, edge)
		if edge.Next < 0 {
			return chain, false
		}
		cur = edge.Next
	}
}
