package sim

import "rowsim/internal/stats"

// Result aggregates the metrics a run produces; the experiments
// package turns these into the paper's figures.
type Result struct {
	// Cycles is the parallel execution time: the cycle at which the
	// last core finished. This is the cycles-advanced count — simulated
	// time is identical in both scheduler modes.
	Cycles uint64

	// CyclesVisited is the number of cycles the scheduler actually
	// simulated: equal to Cycles under SchedCycle, usually far smaller
	// under SchedEvent (1 - CyclesVisited/Cycles is the skip
	// efficiency). It is the only Result field that legitimately
	// differs between scheduler modes; compare runs across modes with
	// SchedNormalized.
	CyclesVisited uint64

	Committed uint64
	Atomics   uint64 // committed locking atomics
	IPC       float64

	AtomicsPer10K float64
	// ContendedFrac is the fraction of atomics whose contended bit was
	// set at unlock (Fig. 5's red line).
	ContendedFrac float64

	EagerIssued      uint64
	LazyIssued       uint64
	ForwardedAtomics uint64
	PredictedLazy    uint64

	// Fig. 6 latency breakdown (mean cycles per atomic).
	DispatchToIssue float64
	IssueToLock     float64
	LockToUnlock    float64

	// Fig. 4 instrumentation (means per issued atomic).
	OlderUnexecAtEager   float64
	YoungerStartedAtLazy float64

	// MissLatency is the mean L1D demand-miss fill latency over all
	// cores (Fig. 11); P99 is the tail of the same distribution.
	MissLatency    float64
	MissLatencyP99 float64

	// LockHoldP99 is the 99th percentile of lock-window lengths: the
	// convoy tail that eager execution grows under contention.
	LockHoldP99 float64

	// PredAccuracy is the contention predictor accuracy (Fig. 12);
	// zero when the policy is not RoW.
	PredAccuracy float64

	LoadForwards   uint64
	LQSquashes     uint64
	SSViolations   uint64
	ForcedReleases uint64
	Mispredicts    uint64
	Branches       uint64
	ExtStalls      uint64

	NetworkMessages uint64
}

// SchedNormalized returns the result with the scheduler-dependent
// bookkeeping zeroed: two runs of the same workload must compare equal
// under it regardless of scheduler mode.
func (r Result) SchedNormalized() Result {
	r.CyclesVisited = 0
	return r //rowlint:ignore bigcopy per-run result value, built once at run exit
}

func (s *System) collect() Result {
	var r Result
	r.Cycles = s.cycle
	r.CyclesVisited = s.visited

	var d2i, i2l, l2u struct{ sum, n float64 }
	var older, younger struct{ sum, n float64 }
	var miss struct{ sum, n float64 }
	var predTotal, predCorrectWeighted float64
	missHist := stats.NewHistogram(1 << 16)
	lockHist := stats.NewHistogram(1 << 16)

	for i, c := range s.cores {
		st := &c.Stats
		r.Committed += st.Committed
		r.Atomics += st.Atomics
		r.EagerIssued += st.EagerIssued
		r.LazyIssued += st.LazyIssued
		r.ForwardedAtomics += st.ForwardedAtomics
		r.PredictedLazy += st.PredictedLazy
		r.LoadForwards += st.LoadForwards
		r.LQSquashes += st.LQSquashes
		r.SSViolations += st.SSViolations
		r.ForcedReleases += st.ForcedReleases
		r.Mispredicts += st.Mispredicts
		r.Branches += st.Branches

		d2i.sum += st.DispatchToIssue.Sum()
		d2i.n += float64(st.DispatchToIssue.Count())
		i2l.sum += st.IssueToLock.Sum()
		i2l.n += float64(st.IssueToLock.Count())
		l2u.sum += st.LockToUnlock.Sum()
		l2u.n += float64(st.LockToUnlock.Count())
		older.sum += st.OlderUnexecAtEager.Sum()
		older.n += float64(st.OlderUnexecAtEager.Count())
		younger.sum += st.YoungerStartedAtLazy.Sum()
		younger.n += float64(st.YoungerStartedAtLazy.Count())

		pc := s.caches[i]
		miss.sum += pc.Stats.MissLatency.Sum()
		miss.n += float64(pc.Stats.MissLatency.Count())
		missHist.Merge(pc.Stats.MissHist)
		lockHist.Merge(st.LockHold)
		r.ExtStalls += pc.Stats.ExtStalls.Value()

		if cp := c.ContentionPredictor(); cp != nil && cp.Predictions() > 0 {
			predTotal += float64(cp.Predictions())
			predCorrectWeighted += cp.Accuracy() * float64(cp.Predictions())
		}
	}
	var contendedTotal uint64
	for _, c := range s.cores {
		contendedTotal += c.Stats.ContendedAtomics
	}
	if r.Atomics > 0 {
		r.ContendedFrac = float64(contendedTotal) / float64(r.Atomics)
	}
	if r.Committed > 0 {
		r.AtomicsPer10K = float64(r.Atomics) / float64(r.Committed) * 10000
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Committed) / float64(r.Cycles)
	}
	if d2i.n > 0 {
		r.DispatchToIssue = d2i.sum / d2i.n
	}
	if i2l.n > 0 {
		r.IssueToLock = i2l.sum / i2l.n
	}
	if l2u.n > 0 {
		r.LockToUnlock = l2u.sum / l2u.n
	}
	if older.n > 0 {
		r.OlderUnexecAtEager = older.sum / older.n
	}
	if younger.n > 0 {
		r.YoungerStartedAtLazy = younger.sum / younger.n
	}
	if miss.n > 0 {
		r.MissLatency = miss.sum / miss.n
	}
	r.MissLatencyP99 = missHist.Quantile(0.99)
	r.LockHoldP99 = lockHist.Quantile(0.99)
	if predTotal > 0 {
		r.PredAccuracy = predCorrectWeighted / predTotal
	}
	r.NetworkMessages = s.mesh.Messages()
	return r //rowlint:ignore bigcopy per-run result value, built once at run exit
}
