package sim

import (
	"fmt"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/core"
	"rowsim/internal/faults"
	"rowsim/internal/interconnect"
)

// SysSnap is a deep copy of the full system's mutable state at one
// simulated instant: every core pipeline, private cache, directory
// bank, the mesh (in-flight and inboxed messages), the message-pool
// accounting, the fault injector's RNG position, and the cycle
// counter. Restoring it into a freshly built System (same config, same
// regenerated programs) and resuming yields a run byte-identical to
// one that was never interrupted.
//
// Not captured, by design:
//
//   - programs: workload.Generate is a pure function of its parameters,
//     so the trace is regenerated on resume and core.Restore rebinds
//     instruction pointers by program index. The checkpoint content key
//     covers the generator parameters instead.
//   - the error sink: snapshots are taken in RunCtx's cold block, which
//     runs only after the sink has been checked empty that cycle — a
//     system with a recorded protocol error never reaches a checkpoint.
//   - construction-time wiring (config, bank mapping, warm filter,
//     check cadences): rebuilt by sim.New, validated by the content key.
type SysSnap struct {
	Cycle uint64 `json:"cycle"`
	// Visited is the cumulative visited-cycle count, carried so a
	// resumed run reports the same CyclesVisited as an uninterrupted
	// one in the same scheduler mode.
	Visited uint64                `json:"visited"`
	Mesh    interconnect.MeshSnap `json:"mesh"`
	// The per-component snapshots are held by pointer: each one is
	// built in place by its component and handed around by reference
	// (a CoreSnap alone is ~900 bytes). JSON encoding is unchanged.
	Cores  []*core.CoreSnap     `json:"cores"`
	Caches []*cache.CacheSnap   `json:"caches"`
	Dirs   []*coherence.DirSnap `json:"dirs"`
	Pool   coherence.PoolSnap   `json:"pool"`
	Faults faults.InjectorSnap  `json:"faults"`
}

// Snapshot captures the system's full mutable state. It is a pure
// read: taking a snapshot never perturbs the run.
func (s *System) Snapshot() *SysSnap {
	snap := &SysSnap{
		Cycle:   s.cycle,
		Visited: s.visited,
		Mesh:    s.mesh.Snapshot(),
		Pool:    s.pool.Snapshot(),
		Faults:  s.injector.Snapshot(),
	}
	for _, c := range s.cores {
		snap.Cores = append(snap.Cores, c.Snapshot())
	}
	for _, pc := range s.caches {
		snap.Caches = append(snap.Caches, pc.Snapshot())
	}
	for _, d := range s.dirs {
		snap.Dirs = append(snap.Dirs, d.Snapshot())
	}
	return snap
}

// RestoreSnap rewinds the system to a previously captured SysSnap. The
// system must have been built by sim.New with the same configuration
// and the same (regenerated) programs; the caller is expected to have
// verified that via the checkpoint content key, so a shape mismatch
// here reports an error rather than guessing.
func (s *System) RestoreSnap(snap *SysSnap) error {
	if len(snap.Cores) != len(s.cores) || len(snap.Caches) != len(s.caches) || len(snap.Dirs) != len(s.dirs) {
		return fmt.Errorf("sim: snapshot shape %d cores/%d caches/%d dirs does not match system %d/%d/%d",
			len(snap.Cores), len(snap.Caches), len(snap.Dirs), len(s.cores), len(s.caches), len(s.dirs))
	}
	if s.injector == nil && snap.Faults != (faults.InjectorSnap{}) {
		return fmt.Errorf("sim: snapshot carries fault-injector state but the system has no injector")
	}
	s.cycle = snap.Cycle
	s.visited = snap.Visited
	s.lastCkpt = snap.Cycle
	s.mesh.Restore(snap.Mesh)
	s.pool.Restore(snap.Pool)
	s.injector.Restore(snap.Faults)
	for i, c := range s.cores {
		c.Restore(snap.Cores[i])
	}
	for i, pc := range s.caches {
		pc.Restore(snap.Caches[i])
	}
	for i, d := range s.dirs {
		d.Restore(snap.Dirs[i])
	}
	return nil
}
