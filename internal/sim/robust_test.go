package sim

import (
	"errors"
	"strings"
	"testing"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/faults"
	"rowsim/internal/workload"
)

func contendedSystem(t *testing.T, cores int, opts ...Option) *System {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = cores
	cfg.Policy = config.PolicyEager
	cfg.MaxCycles = 5_000_000
	progs := workload.Generate(workload.MustGet("pc"), cores, 1500, 11)
	s, err := New(cfg, progs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCycleLimitError: an exhausted budget comes back as a structured
// *CycleLimitError carrying the abort cycle and a state dump.
func TestCycleLimitError(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.MaxCycles = 300 // far too few to finish
	progs := workload.Generate(workload.MustGet("pc"), 4, 1500, 11)
	s, err := New(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	var ce *CycleLimitError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CycleLimitError, got %T: %v", err, err)
	}
	if ce.Cycle <= ce.MaxCycles || ce.MaxCycles != 300 {
		t.Fatalf("bad cycle accounting: %+v", ce)
	}
}

// TestWatchdogFiresOnDroppedMessages: with every message dropped the
// system stops committing, and the watchdog reports a structured
// deadlock diagnosis with the wait-for chain.
func TestWatchdogFiresOnDroppedMessages(t *testing.T) {
	s := contendedSystem(t, 4,
		WithFaults(faults.Config{Seed: 1, DropProb: 1}),
		WithWatchdogWindow(2048),
	)
	_, err := s.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if len(de.Chain) == 0 {
		t.Fatalf("deadlock report has no wait-for chain: %v", de)
	}
	// Dropped requests never reach a bank, so the chain must dead-end
	// (not report a false protocol cycle) and say the message was lost.
	if de.Cyclic {
		t.Fatalf("dropped-message stall misreported as a protocol cycle:\n%v", de)
	}
	if !strings.Contains(de.Error(), "wait-for chain") {
		t.Fatalf("report lacks the wait-for chain:\n%v", de)
	}
	if s.FaultStats().Dropped == 0 {
		t.Fatal("injector reports no drops")
	}
}

// TestCheckCoherenceReportsDualExclusive: an injected dual-exclusive
// line is reported as a *CoherenceViolationError naming both holders.
func TestCheckCoherenceReportsDualExclusive(t *testing.T) {
	s := contendedSystem(t, 4)
	const line = 0x4c0
	s.Caches()[0].Warm(line, cache.StateE)
	s.Caches()[2].Warm(line, cache.StateE)
	err := s.CheckCoherence()
	var ve *CoherenceViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *CoherenceViolationError, got %T: %v", err, err)
	}
	if ve.Line != line || len(ve.Holders) != 2 {
		t.Fatalf("bad violation report: %+v", ve)
	}
}

// TestSeededProtocolBugSurfaces seeds a protocol bug via the directory
// test hook — the first Unblock is re-attributed to the wrong core —
// and verifies it surfaces as a structured *coherence.ProtocolError
// with cycle, line and transaction context, not a panic.
func TestSeededProtocolBugSurfaces(t *testing.T) {
	s := contendedSystem(t, 4)
	corrupted := false
	for _, d := range s.Directories() {
		d.SetTestHook(func(m *coherence.Msg) *coherence.Msg {
			if corrupted || (m.Type != coherence.MsgUnblock && m.Type != coherence.MsgUnblockX) {
				return m
			}
			corrupted = true
			cp := *m
			cp.Src = (m.Src + 1) % 4
			return &cp
		})
	}
	_, err := s.Run()
	var pe *coherence.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("want *coherence.ProtocolError, got %T: %v", err, err)
	}
	if pe.Cycle == 0 || pe.Line == 0 || pe.Component == "" || pe.State == "" {
		t.Fatalf("protocol error missing context: %+v", pe)
	}
	if len(pe.Trace) == 0 {
		t.Fatalf("protocol error carries no message trace:\n%v", pe)
	}
	if !strings.Contains(pe.Reason, "Unblock") {
		t.Fatalf("unexpected failure reason: %v", pe)
	}
}

// TestDuplicatedMessagesAreDetected: message duplication violates the
// protocol's delivery assumptions and must surface as a structured
// *coherence.ProtocolError (e.g. a duplicate Data with no MSHR), never
// pass silently or crash.
func TestDuplicatedMessagesAreDetected(t *testing.T) {
	s := contendedSystem(t, 4,
		WithFaults(faults.Config{Seed: 1, DupProb: 0.05}),
		WithWatchdogWindow(8192),
	)
	_, err := s.Run()
	var pe *coherence.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("want *coherence.ProtocolError, got %T: %v", err, err)
	}
}

// TestLegalFaultsComplete: a run under heavy legal perturbation (jitter
// + reordering) still completes with no protocol or invariant failure.
func TestLegalFaultsComplete(t *testing.T) {
	s := contendedSystem(t, 4,
		WithFaults(faults.Config{Seed: 7, JitterProb: 0.5, JitterMax: 16, ReorderProb: 0.1, ReorderMax: 64}),
		WithInvariantChecks(2048),
	)
	r, err := s.Run()
	if err != nil {
		t.Fatalf("legal faults must be tolerated: %v", err)
	}
	fs := s.FaultStats()
	if fs.Jittered == 0 || fs.Reordered == 0 {
		t.Fatalf("faults not exercised: %+v", fs)
	}
	if r.Committed == 0 {
		t.Fatal("no instructions committed")
	}
}

// TestDeterministicReplay is the regression for the repro-line
// guarantee: building the same system twice (same config, workload
// seed, fault seed) yields an identical Result.
func TestDeterministicReplay(t *testing.T) {
	run := func() Result {
		s := contendedSystem(t, 4,
			WithFaults(faults.Config{Seed: 13, JitterProb: 0.25, JitterMax: 12, ReorderProb: 0.05, ReorderMax: 64}),
		)
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic replay:\nfirst  %+v\nsecond %+v", a, b)
	}
}
