package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rowsim/internal/coherence"
)

// TestRunCtxAlreadyCanceled: a canceled context aborts before the
// first cycle with a *RunCanceledError wrapping context.Canceled.
func TestRunCtxAlreadyCanceled(t *testing.T) {
	s := contendedSystem(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.RunCtx(ctx)
	var rc *RunCanceledError
	if !errors.As(err, &rc) {
		t.Fatalf("want *RunCanceledError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation cause not exposed via errors.Is: %v", err)
	}
	if s.Cycle() != 0 {
		t.Fatalf("simulated %d cycles under a canceled context", s.Cycle())
	}
}

// TestRunCtxDeadline: an expired wall-clock deadline stops the run at
// a poll boundary and is distinguishable from plain cancellation.
func TestRunCtxDeadline(t *testing.T) {
	s := contendedSystem(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline long expired by the first poll
	_, err := s.RunCtx(ctx)
	var rc *RunCanceledError
	if !errors.As(err, &rc) {
		t.Fatalf("want *RunCanceledError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline cause not exposed via errors.Is: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline misreported as cancellation: %v", err)
	}
}

// TestRunCtxCancelMidRun: cancellation lands within one 1024-cycle
// poll window, so SIGINT drains promptly without a per-cycle check on
// the hot path.
func TestRunCtxCancelMidRun(t *testing.T) {
	s := contendedSystem(t, 4)
	ctx := &cancelAfterCalls{n: 3} // cancel at the third Err poll
	_, err := s.RunCtx(ctx)
	var rc *RunCanceledError
	if !errors.As(err, &rc) {
		t.Fatalf("want *RunCanceledError, got %T: %v", err, err)
	}
	// Err is polled once before the loop, then at cycles 1024, 2048,
	// ...: the third poll lands at cycle 2048, so the run stops there.
	if rc.Cycle != 2*1024 {
		t.Fatalf("run stopped at cycle %d, want %d (third poll)", rc.Cycle, 2*1024)
	}
}

// cancelAfterCalls is a context whose Err becomes non-nil at the nth
// call — deterministic mid-run cancellation without goroutine timing.
type cancelAfterCalls struct {
	context.Context
	mu    sync.Mutex
	calls int
	n     int
}

func (c *cancelAfterCalls) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls >= c.n {
		return context.Canceled
	}
	return nil
}

func (c *cancelAfterCalls) Done() <-chan struct{}       { return nil }
func (c *cancelAfterCalls) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *cancelAfterCalls) Value(key any) any           { return nil }

// TestErrorSinkIsolatedAcrossSystems: two systems running concurrently
// have independent error sinks — a protocol bug seeded into one must
// fail exactly that one, and the clean system's run and result are
// unaffected.
func TestErrorSinkIsolatedAcrossSystems(t *testing.T) {
	buggy := contendedSystem(t, 4)
	clean := contendedSystem(t, 4)
	corrupted := false
	for _, d := range buggy.Directories() {
		d.SetTestHook(func(m *coherence.Msg) *coherence.Msg {
			if corrupted || (m.Type != coherence.MsgUnblock && m.Type != coherence.MsgUnblockX) {
				return m
			}
			corrupted = true
			cp := *m
			cp.Src = (m.Src + 1) % 4
			return &cp
		})
	}
	var wg sync.WaitGroup
	var buggyErr, cleanErr error
	var cleanRes Result
	wg.Add(2)
	go func() { defer wg.Done(); _, buggyErr = buggy.Run() }()
	go func() { defer wg.Done(); cleanRes, cleanErr = clean.Run() }()
	wg.Wait()

	var pe *coherence.ProtocolError
	if !errors.As(buggyErr, &pe) {
		t.Fatalf("buggy system: want *coherence.ProtocolError, got %T: %v", buggyErr, buggyErr)
	}
	if cleanErr != nil {
		t.Fatalf("clean system failed — sink state leaked across systems: %v", cleanErr)
	}
	if cleanRes.Committed == 0 {
		t.Fatal("clean system committed nothing")
	}
	// The clean run must match a solo reference run exactly: sharing a
	// process with a failing system cannot perturb determinism.
	ref, err := contendedSystem(t, 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes != ref {
		t.Fatalf("clean system's result differs from the solo reference:\nconcurrent %+v\nsolo       %+v", cleanRes, ref)
	}
}
