package sim

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/trace"
)

// TestPlainRMWDoesNotLock: atomics without the lock prefix (except
// SWAP) never allocate AQ entries or stall external requests.
func TestPlainRMWDoesNotLock(t *testing.T) {
	var p trace.Program
	for i := 0; i < 40; i++ {
		p = append(p, trace.Instr{
			PC: uint64(0x400000 + 4*i), Kind: trace.Atomic, Dst: 1,
			Addr: 0x40000000, Size: 8, AtomicOp: trace.FAA, NoLockPrefix: true,
		})
	}
	r, s := buildAndRun(t, smallCfg(1), []trace.Program{p})
	// Plain RMWs are not counted as (locking) atomics.
	if r.Atomics != 0 {
		t.Fatalf("plain RMWs counted as atomics: %d", r.Atomics)
	}
	if r.Committed != 40 {
		t.Fatalf("committed %d", r.Committed)
	}
	if got := s.Caches()[0].Stats.ExtStalls.Value(); got != 0 {
		t.Fatalf("plain RMW stalled external requests: %d", got)
	}
}

// TestSwapLocksWithoutPrefix: xchgl locks regardless of the prefix.
func TestSwapLocksWithoutPrefix(t *testing.T) {
	var p trace.Program
	for i := 0; i < 20; i++ {
		p = append(p, trace.Instr{
			PC: uint64(0x400000 + 4*i), Kind: trace.Atomic, Dst: 1,
			Addr: 0x40000000, Size: 8, AtomicOp: trace.SWAP, NoLockPrefix: true,
		})
	}
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{p})
	if r.Atomics != 20 {
		t.Fatalf("SWAP without prefix not treated as locking: %d", r.Atomics)
	}
}

// TestLazyDetectionNeedsWiderWindow: under the lazy policy, the
// execution-window detector (EW) sees almost no contention — the
// paper's Fig. 7b argument — while the directory detector still does.
func TestLazyDetectionNeedsWiderWindow(t *testing.T) {
	const hot = uint64(0x10000000)
	mk := func() trace.Program {
		return atomicProgram(150, hot, trace.FAA)
	}
	run := func(det config.Detection) Result {
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.Policy = config.PolicyLazy
		cfg.EarlyAddrCalc = false
		cfg.RoW.Detection = det
		cfg.MaxCycles = 20_000_000
		progs := []trace.Program{mk(), mk(), mk(), mk()}
		s, err := New(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ew := run(config.DetectEW)
	dir := run(config.DetectRWDir)
	if ew.ContendedFrac >= dir.ContendedFrac {
		t.Fatalf("EW (%.2f) should detect less than RW+Dir (%.2f) under lazy",
			ew.ContendedFrac, dir.ContendedFrac)
	}
	if dir.ContendedFrac < 0.2 {
		t.Fatalf("RW+Dir detected only %.2f on a fully contended line", dir.ContendedFrac)
	}
}

// TestTimestampWraparound: with an artificially tiny timestamp width,
// long fills alias below the threshold and escape detection —
// footnote 4's hardware quirk, modeled faithfully.
func TestTimestampWraparound(t *testing.T) {
	const hot = uint64(0x10000000)
	run := func(bits int) Result {
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.Policy = config.PolicyEager
		cfg.RoW.TimestampBits = bits
		cfg.MaxCycles = 20_000_000
		progs := []trace.Program{
			atomicProgram(120, hot, trace.FAA), atomicProgram(120, hot, trace.FAA),
			atomicProgram(120, hot, trace.FAA), atomicProgram(120, hot, trace.FAA),
		}
		s, err := New(cfg, progs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	full := run(14)
	// 6-bit timestamps wrap at 64 cycles: every long contended fill
	// aliases to [0,64) and the >400 check never fires, so detection
	// falls back to the in-window (EW/RW) mechanisms only.
	tiny := run(6)
	if tiny.ContendedFrac > full.ContendedFrac {
		t.Fatalf("wrapped timestamps detected more (%.2f) than full ones (%.2f)",
			tiny.ContendedFrac, full.ContendedFrac)
	}
}

// TestCommitWaitsForSBDrain: an atomic cannot commit (and thus the
// run cannot finish) before older stores drained — checked indirectly
// by a store whose line is held remotely.
func TestCommitWaitsForSBDrain(t *testing.T) {
	// Core 0: store to X, then atomic on Y. Core 1 hammers X with
	// atomics (keeping it locked often). The run must still finish,
	// and core 0's atomic can only have committed after its older
	// store drained (enforced structurally; this guards regressions
	// that would let the atomic commit early and deadlock the SB).
	const x, y = uint64(0x10000000), uint64(0x10000040)
	var p0 trace.Program
	for i := 0; i < 60; i++ {
		p0 = append(p0,
			trace.Instr{PC: 0x400000, Kind: trace.Store, Src1: 1, Addr: x, Size: 8},
			trace.Instr{PC: 0x400004, Kind: trace.Atomic, Dst: 2, Addr: y, Size: 8, AtomicOp: trace.FAA},
		)
	}
	p1 := atomicProgram(120, x, trace.FAA)
	r, _ := buildAndRun(t, smallCfg(2), []trace.Program{p0, p1})
	if r.Committed != uint64(len(p0)+len(p1)) {
		t.Fatalf("committed %d", r.Committed)
	}
}

// TestLockHoldTailReported: the p99 lock-hold metric is populated for
// runs with locking atomics.
func TestLockHoldTailReported(t *testing.T) {
	r, _ := buildAndRun(t, smallCfg(1), []trace.Program{atomicProgram(50, 0x40000000, trace.FAA)})
	if r.LockHoldP99 <= 0 {
		t.Fatal("lock-hold tail not measured")
	}
}
