package sim_test

import (
	"errors"
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

func msgLeakSystem(t *testing.T) *sim.System {
	t.Helper()
	p := workload.MustGet("sps")
	progs := workload.Generate(p, 4, 500, 7)
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.MaxCycles = 50_000_000
	s, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(p)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunMsgAccountingBalanced: a successful run ends with the pool
// conservation law holding — every message drawn is in flight,
// retained, or released. The in-run check already enforces this (Run
// would have failed); asserting via the public accessor additionally
// pins the accessor itself.
func TestRunMsgAccountingBalanced(t *testing.T) {
	s := msgLeakSystem(t)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	out, inFlight, retained := s.MsgAccounting()
	if out != int64(inFlight)+int64(retained) {
		t.Fatalf("accounting unbalanced after successful run: outstanding=%d inFlight=%d retained=%d",
			out, inFlight, retained)
	}
}

// TestSeededLeakDetected: dropping a single pooled message without Put
// turns a clean run into a *MsgLeakError naming the exact residue.
func TestSeededLeakDetected(t *testing.T) {
	s := msgLeakSystem(t)
	s.LeakMsgForTest()
	_, err := s.Run()
	var le *sim.MsgLeakError
	if !errors.As(err, &le) {
		t.Fatalf("run with a seeded leak returned %v, want *MsgLeakError", err)
	}
	if leaked := le.Outstanding - int64(le.InFlight) - int64(le.Retained); leaked != 1 {
		t.Fatalf("leak residue = %d, want exactly the 1 seeded message (err: %v)", leaked, le)
	}
	if le.Error() == "" {
		t.Fatal("MsgLeakError has an empty message")
	}
}
