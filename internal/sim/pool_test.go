package sim_test

import (
	"sync"
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

func poolTestRun(wl string, seed uint64) (sim.Result, error) {
	p := workload.MustGet(wl)
	progs := workload.Generate(p, 4, 1500, seed)
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.MaxCycles = 50_000_000
	s, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(p)))
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run()
}

// TestCrossCheckMatchesPlainRun pins the idle-skip invariant from the
// outside: a run with the cross-check replays (which force every
// skipped component to execute) must produce the identical result as
// the production skipping loop. Combined with the in-loop assertions,
// this shows skipped components really are no-ops.
func TestCrossCheckMatchesPlainRun(t *testing.T) {
	for _, wl := range []string{"sps", "canneal"} {
		plain, err := poolTestRun(wl, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := workload.MustGet(wl)
		progs := workload.Generate(p, 4, 1500, 1)
		cfg := config.Default()
		cfg.NumCores = 4
		cfg.MaxCycles = 50_000_000
		s, err := sim.New(cfg, progs, sim.WithWarmFilter(workload.WarmFilter(p)), sim.WithCrossCheck())
		if err != nil {
			t.Fatal(err)
		}
		checked := s.MustRun()
		// The cross-check visits every cycle by design, so only the
		// visited-cycle bookkeeping may differ from the skipping run.
		if plain.SchedNormalized() != checked.SchedNormalized() {
			t.Fatalf("%s: cross-checked run diverges from plain run:\nplain:   %+v\nchecked: %+v", wl, plain, checked)
		}
	}
}

// TestConcurrentSystemsShareNothing hammers two (and more) Systems
// running concurrently and asserts every run reproduces the sequential
// reference bit-for-bit. Message pooling makes this the critical
// isolation test: an accidentally global (or shared) free list would
// leak Msg state between independent simulations, which shows up here
// as a diverging result — and as a data race under -race.
func TestConcurrentSystemsShareNothing(t *testing.T) {
	workloads := []string{"sps", "canneal", "cq"}
	ref := make(map[string]sim.Result)
	for _, wl := range workloads {
		r, err := poolTestRun(wl, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref[wl] = r
	}
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, len(workloads)*rounds)
	for round := 0; round < rounds; round++ {
		for _, wl := range workloads {
			wg.Add(1)
			go func(wl string) {
				defer wg.Done()
				got, err := poolTestRun(wl, 1)
				if err != nil {
					errs <- wl + ": " + err.Error()
					return
				}
				if got != ref[wl] {
					errs <- wl + ": result diverged"
				}
			}(wl)
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Errorf("concurrent run of %s from sequential reference (pooled state leaked across systems?)", msg)
	}
}
