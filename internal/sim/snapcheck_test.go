package sim

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the system: a new System field must either be captured by SysSnap
// (via a component snapshot) or be explained here as derived or
// construction-time state.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, System{}, []string{
		"mesh", "cores", "caches", "dirs", "pool", "injector",
		"cycle", "visited",
		"lastCkpt", // restored to the snapshot cycle so the cadence continues
	}, map[string]string{
		"sched":      "construction-time option; deliberately outside the snapshot so a checkpoint restores into either scheduler mode",
		"cfg":        "construction-time configuration, part of the checkpoint content key",
		"bankOf":     "pure function of the configuration",
		"sink":       "provably empty at checkpoint instants: RunCtx drains it earlier in the same cold block",
		"warmFilter": "construction-time option, pure function of the workload params",
		"checkEvery": "construction-time option",
		"watchdog":   "construction-time option",
		"crossCheck": "construction-time option",
		"ckptEvery":  "construction-time option (the checkpoint cadence itself)",
		"ckptFn":     "construction-time option (the checkpoint sink itself)",
	})
}
