package sim

import (
	"encoding/json"
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/faults"
	"rowsim/internal/workload"
)

// schedBuild assembles one system for the scheduler-equivalence tests.
func schedBuild(t *testing.T, policy config.AtomicPolicy, wl string, fc faults.Config, instrs int, opts ...Option) *System {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = 4
	cfg.Policy = policy
	cfg.MaxCycles = 50_000_000
	p := workload.MustGet(wl)
	progs := workload.Generate(p, cfg.NumCores, instrs, 11)
	all := []Option{WithWarmFilter(workload.WarmFilter(p))}
	if fc != (faults.Config{}) {
		all = append(all, WithFaults(fc))
	}
	all = append(all, opts...)
	s, err := New(cfg, progs, all...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSchedulerModeEquivalence is the headline property of the event
// scheduler: over eager and lazy policies, with and without fault
// injection, the event-driven run must produce a Result byte-identical
// to the cycle-driven reference (modulo the visited-cycle bookkeeping)
// — and must actually have skipped cycles to earn its keep.
func TestSchedulerModeEquivalence(t *testing.T) {
	jitter := faults.Config{Seed: 9, JitterProb: 0.3, JitterMax: 12}
	reorder := faults.Config{Seed: 5, JitterProb: 0.25, JitterMax: 12, ReorderProb: 0.05, ReorderMax: 64}
	for _, tc := range []struct {
		name   string
		policy config.AtomicPolicy
		wl     string
		faults faults.Config
	}{
		{name: "eager_sps", policy: config.PolicyEager, wl: "sps"},
		{name: "eager_cq_jitter", policy: config.PolicyEager, wl: "cq", faults: jitter},
		{name: "lazy_cq", policy: config.PolicyLazy, wl: "cq"},
		{name: "lazy_sps_reorder", policy: config.PolicyLazy, wl: "sps", faults: reorder},
		{name: "row_pc", policy: config.PolicyRoW, wl: "pc"},
		{name: "row_cq_jitter", policy: config.PolicyRoW, wl: "cq", faults: jitter},
		{name: "far_tas", policy: config.PolicyFar, wl: "tas"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cycle := schedBuild(t, tc.policy, tc.wl, tc.faults, 3000, WithScheduler(SchedCycle)).MustRun()
			event := schedBuild(t, tc.policy, tc.wl, tc.faults, 3000, WithScheduler(SchedEvent)).MustRun()
			if cycle.SchedNormalized() != event.SchedNormalized() {
				t.Fatalf("schedulers diverge:\ncycle: %+v\nevent: %+v", cycle, event)
			}
			if cycle.CyclesVisited != cycle.Cycles {
				t.Fatalf("cycle mode visited %d of %d cycles; want all", cycle.CyclesVisited, cycle.Cycles)
			}
			if event.CyclesVisited >= event.Cycles {
				t.Fatalf("event mode visited %d of %d cycles; skipped nothing", event.CyclesVisited, event.Cycles)
			}
		})
	}
}

// TestEventCrossCheckClean runs the event scheduler with the
// cross-check enabled: every cycle is visited, every tick the wake
// times said was skippable is replayed and asserted idle. A wrong
// NextEventAt panics inside the run; a divergent result fails here.
func TestEventCrossCheckClean(t *testing.T) {
	plain := schedBuild(t, config.PolicyRoW, "cq", faults.Config{}, 3000).MustRun()
	checked := schedBuild(t, config.PolicyRoW, "cq", faults.Config{}, 3000, WithCrossCheck()).MustRun()
	if plain.SchedNormalized() != checked.SchedNormalized() {
		t.Fatalf("event cross-check diverges from plain event run:\nplain:   %+v\nchecked: %+v", plain, checked)
	}
	if checked.CyclesVisited != checked.Cycles {
		t.Fatalf("cross-check visited %d of %d cycles; must visit all", checked.CyclesVisited, checked.Cycles)
	}
}

// TestEventModeLatenciesUnchanged is the regression test for the
// skip-path clock wart: completion events are now scheduled relative
// to event time (the controller clock is only advanced on visits), so
// every latency-derived metric must match the per-cycle SetNow
// reference exactly — hit latencies, miss fills, and the lock-window
// tail included.
func TestEventModeLatenciesUnchanged(t *testing.T) {
	cycle := schedBuild(t, config.PolicyEager, "canneal", faults.Config{}, 4000, WithScheduler(SchedCycle)).MustRun()
	event := schedBuild(t, config.PolicyEager, "canneal", faults.Config{}, 4000, WithScheduler(SchedEvent)).MustRun()
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"MissLatency", event.MissLatency, cycle.MissLatency},
		{"MissLatencyP99", event.MissLatencyP99, cycle.MissLatencyP99},
		{"DispatchToIssue", event.DispatchToIssue, cycle.DispatchToIssue},
		{"IssueToLock", event.IssueToLock, cycle.IssueToLock},
		{"LockToUnlock", event.LockToUnlock, cycle.LockToUnlock},
		{"LockHoldP99", event.LockHoldP99, cycle.LockHoldP99},
		{"IPC", event.IPC, cycle.IPC},
	} {
		if c.got != c.want {
			t.Errorf("%s: event mode %v, cycle mode %v", c.name, c.got, c.want)
		}
	}
}

// TestCrossModeCheckpointRestore: a checkpoint taken under one
// scheduler must restore into the other and finish with the same
// normalized result as an uninterrupted run. The snapshot is
// round-tripped through JSON, as the on-disk checkpoint would be.
func TestCrossModeCheckpointRestore(t *testing.T) {
	jitter := faults.Config{Seed: 7, JitterProb: 0.2, JitterMax: 10}
	for _, tc := range []struct {
		name     string
		from, to Scheduler
		faults   faults.Config
	}{
		{name: "event_to_cycle", from: SchedEvent, to: SchedCycle},
		{name: "cycle_to_event", from: SchedCycle, to: SchedEvent},
		{name: "event_to_cycle_jitter", from: SchedEvent, to: SchedCycle, faults: jitter},
		{name: "cycle_to_event_jitter", from: SchedCycle, to: SchedEvent, faults: jitter},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := schedBuild(t, config.PolicyRoW, "sps", tc.faults, 6000, WithScheduler(tc.to)).MustRun()

			var snaps []SysSnap
			s := schedBuild(t, config.PolicyRoW, "sps", tc.faults, 6000, WithScheduler(tc.from),
				WithCheckpoint(2048, func(cycle uint64, snap *SysSnap) error {
					snaps = append(snaps, *snap)
					return nil
				}))
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if len(snaps) < 2 {
				t.Fatalf("expected at least 2 checkpoints, got %d", len(snaps))
			}
			mid := snaps[len(snaps)/2]
			b, err := json.Marshal(&mid)
			if err != nil {
				t.Fatal(err)
			}
			var decoded SysSnap
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatal(err)
			}

			resumed := schedBuild(t, config.PolicyRoW, "sps", tc.faults, 6000, WithScheduler(tc.to))
			if err := resumed.RestoreSnap(&decoded); err != nil {
				t.Fatal(err)
			}
			got := resumed.MustRun()
			if got.SchedNormalized() != want.SchedNormalized() {
				t.Fatalf("cross-mode resume (%s) diverged:\n got %+v\nwant %+v", tc.name, got, want)
			}
		})
	}
}

// TestSchedulerStuckPanics: defensive check that a wake in the past
// cannot silently rewind the clock — components clamp their own
// NextEventAt, and the loop refuses a non-advancing target.
func TestParseScheduler(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scheduler
		ok   bool
	}{
		{"event", SchedEvent, true},
		{"cycle", SchedCycle, true},
		{"", 0, false},
		{"events", 0, false},
	} {
		got, err := ParseScheduler(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseScheduler(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if SchedEvent.String() != "event" || SchedCycle.String() != "cycle" {
		t.Errorf("String(): %q, %q", SchedEvent, SchedCycle)
	}
	if SchedEvent.Other() != SchedCycle || SchedCycle.Other() != SchedEvent {
		t.Error("Other() does not flip the mode")
	}
}

// TestSchedulerSteadyStateAllocs pins the event scheduler's per-cycle
// hot path — the wake-time queries and the jump-target computation —
// at zero allocations in steady state.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := schedBuild(t, config.PolicyRoW, "cq", faults.Config{}, 2000)
	n := len(s.caches)
	cacheWake := make([]uint64, n)
	coreWake := make([]uint64, n)
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < n; i++ {
			cacheWake[i] = s.caches[i].NextEventAt(s.cycle)
			coreWake[i] = s.cores[i].NextEventAt(s.cycle)
		}
		_ = s.mesh.NextEventAt(s.cycle)
		_ = s.nextTarget(cacheWake, coreWake)
	}); avg != 0 {
		t.Fatalf("scheduler hot path allocates %.1f per cycle; want 0", avg)
	}
}
