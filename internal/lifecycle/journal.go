package lifecycle

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"rowsim/internal/sim"
)

// Record is one JSONL journal line. A journal starts with exactly one
// "meta" record describing the sweep (tool name plus the flag values
// needed to reconstruct it), followed by one "run" record per
// completed job. Seeds are journaled resolved — a record never carries
// the ambiguous seed 0 a caller may have passed to mean "default".
//
// rowserve reuses the same journal as its durable queue: a "sweep"
// record admits a batch of cells, and every cell state transition
// (running, then ok/failed/degraded/canceled) is a "cell" record.
// Restart replays the journal and reconstructs the exact queue state —
// the latest record per key wins, so a cell is re-run if and only if
// its newest journaled state is non-terminal.
type Record struct {
	Kind string `json:"kind"` // "meta" | "run" | "sweep" | "cell"

	// Meta fields. SpecHash is the canonical hash of the sweep
	// definition (see SpecHash); Create fills it automatically so a
	// resume can detect a journal whose meta was edited or that was
	// produced by a different definition. Sweep records carry the hash
	// of their embedded Spec the same way.
	Tool     string            `json:"tool,omitempty"`
	Args     map[string]string `json:"args,omitempty"`
	SpecHash string            `json:"spec_hash,omitempty"`

	// Queue fields (rowserve). Sweep is the owning sweep ID on both
	// "sweep" and "cell" records; Spec is the sweep's JSON submission.
	Sweep  string          `json:"sweep,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`

	// Run/cell fields.
	Key      string      `json:"key,omitempty"` // stable job identity (repro line)
	Seed     uint64      `json:"seed,omitempty"`
	Status   Status      `json:"status,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Class    string      `json:"class,omitempty"` // retry class of the final error
	Error    string      `json:"error,omitempty"`
	Result   *sim.Result `json:"result,omitempty"` // set when Status == ok

	// Checkpoint is the job's durable checkpoint path, when mid-run
	// checkpointing was enabled (observability: where recovery state
	// lived, and where to look if it was left behind).
	Checkpoint string `json:"checkpoint,omitempty"`
}

// Outcome converts a journaled run record back into the outcome the
// supervisor produced, so resumed sweeps aggregate journaled results
// exactly as live ones.
func (r Record) Outcome() Outcome {
	out := Outcome{Status: r.Status, Attempts: r.Attempts}
	if r.Result != nil {
		out.Result = *r.Result
	}
	if r.Error != "" {
		out.Err = fmt.Errorf("%s (journaled, class %s)", r.Error, r.Class)
	}
	return out
}

// syncEvery batches fsync: every record is flushed to the OS when
// appended (a SIGKILL of the process loses nothing already appended),
// but the more expensive disk barrier runs once per this many records
// (power-loss can cost at most one batch; the torn tail is dropped on
// resume).
const syncEvery = 16

// journalFile is the sink a journal appends to. Production journals
// write to an *os.File; tests inject failing implementations to prove
// write and sync errors surface instead of being dropped.
type journalFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Journal is a crash-safe append-only JSONL run log. Creation is
// atomic (the header is written to a temp file, fsynced and renamed,
// so the journal either exists with a valid meta record or not at
// all); appends are line-buffered with batched fsync; Resume tolerates
// a torn final line by truncating to the last valid record.
type Journal struct {
	mu      sync.Mutex
	f       journalFile
	w       *bufio.Writer
	path    string
	pending int   // appends since the last fsync
	err     error // first append failure, sticky
}

// Create initializes a new journal at path with the given meta record
// via write-temp-then-rename, then opens it for appending. An existing
// file at path is an error: journals are never silently overwritten.
func Create(path string, meta Record) (*Journal, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("lifecycle: journal %s already exists (use resume, or remove it)", path)
	}
	meta.Kind = "meta"
	if meta.SpecHash == "" && len(meta.Args) > 0 {
		meta.SpecHash = SpecHash(meta.Tool, meta.Args)
	}
	line, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: encode meta: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("lifecycle: write journal header: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return openAppend(path)
}

func openAppend(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Path returns the journal's file path (for resume hints).
func (j *Journal) Path() string { return j.path }

// Append writes one record as a JSONL line and flushes it to the OS;
// fsync runs every syncEvery records. Append never fails the caller's
// run: the first I/O error is recorded and returned by Err.
func (j *Journal) Append(rec Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("lifecycle: encode record: %w", err)
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
		return
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return
	}
	j.pending++
	if j.pending >= syncEvery {
		j.err = j.f.Sync()
		j.pending = 0
	}
}

// Err returns the first append failure, or nil.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes, fsyncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	for _, e := range []error{j.err, ferr, serr, cerr} {
		if e != nil {
			return e
		}
	}
	return nil
}

// SpecHash canonically hashes a sweep definition — the tool name plus
// its reconstruction arguments in sorted-key order — so a journal can
// prove which definition produced it. Resume paths compare the stored
// hash against a recomputation and fail fast with *SpecMismatchError
// on divergence instead of silently sweeping the wrong cells.
func SpecHash(tool string, args map[string]string) string {
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "tool=%s\n", tool)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, args[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot is a loaded journal: the meta record, the latest run (or
// cell) record per job key, and — for queue journals — the accepted
// sweep records in admission order.
type Snapshot struct {
	Meta   Record
	Runs   map[string]Record
	Sweeps []Record
}

// CheckSpec recomputes the meta record's definition hash and returns a
// *SpecMismatchError when it no longer matches the stored one (an
// edited or corrupt meta record, or a journal written by a tool whose
// definition encoding changed). Journals from before spec hashing
// (no stored hash) pass: there is nothing to validate against.
func (s *Snapshot) CheckSpec(path string) error {
	if s == nil || s.Meta.SpecHash == "" {
		return nil
	}
	got := SpecHash(s.Meta.Tool, s.Meta.Args)
	if got != s.Meta.SpecHash {
		return &SpecMismatchError{Path: path, Field: "meta", Want: s.Meta.SpecHash, Got: got}
	}
	return nil
}

// Completed reports whether key finished successfully in the journaled
// sweep and returns its record. Failed, degraded and canceled jobs do
// not count: a resumed sweep re-runs them (that is the "re-run only
// failures" half of resume — successes are served from the journal).
func (s *Snapshot) Completed(key string) (Record, bool) {
	if s == nil {
		return Record{}, false
	}
	rec, ok := s.Runs[key]
	if !ok || rec.Status != StatusOK {
		return Record{}, false
	}
	return rec, true
}

// Load reads a journal, dropping a torn final line (a crash mid-append
// leaves at most one), and returns the snapshot plus the byte length
// of the valid prefix.
func Load(path string) (*Snapshot, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	snap := &Snapshot{Runs: make(map[string]Record)}
	r := bufio.NewReader(f)
	var valid int64
	first := true
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the record was torn mid-write. Drop it.
			break
		}
		if err != nil {
			return nil, 0, err
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil {
			break // torn or corrupt tail: keep the valid prefix only
		}
		if first {
			if rec.Kind != "meta" {
				return nil, 0, fmt.Errorf("lifecycle: %s is not a journal (first record kind %q, want meta)", path, rec.Kind)
			}
			snap.Meta = rec
			first = false
		} else if (rec.Kind == "run" || rec.Kind == "cell") && rec.Key != "" {
			// Latest record wins: a cell journaled running and later ok
			// resolves to ok; one journaled ok only before the crash
			// point resolves to whatever state survived.
			snap.Runs[rec.Key] = rec
		} else if rec.Kind == "sweep" {
			snap.Sweeps = append(snap.Sweeps, rec)
		}
		valid += int64(len(line))
	}
	if first {
		return nil, 0, fmt.Errorf("lifecycle: %s has no valid meta record", path)
	}
	return snap, valid, nil
}

// Resume loads the journal at path, truncates any torn tail, and
// reopens it for appending, so a killed sweep continues in place: the
// snapshot says which jobs are already done, new records append after
// the valid prefix.
func Resume(path string) (*Journal, *Snapshot, error) {
	snap, valid, err := Load(path)
	if err != nil {
		return nil, nil, err
	}
	if err := os.Truncate(path, valid); err != nil {
		return nil, nil, fmt.Errorf("lifecycle: drop torn journal tail: %w", err)
	}
	j, err := openAppend(path)
	if err != nil {
		return nil, nil, err
	}
	return j, snap, nil
}
