package lifecycle

import (
	"bufio"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCompactFile: a journal with many transitions per key compacts to
// one record per key — and the compacted file loads into exactly the
// snapshot the full journal produced.
func TestCompactFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	jnl, err := Create(path, Record{Tool: "rowserve", Args: map[string]string{"format": "test"}})
	if err != nil {
		t.Fatal(err)
	}
	jnl.Append(Record{Kind: "sweep", Sweep: "sw-1", Tenant: "alice"})
	for _, key := range []string{"sw-1/a", "sw-1/b", "sw-1/c"} {
		jnl.Append(Record{Kind: "cell", Sweep: "sw-1", Key: key, Seed: 1, Status: StatusRunning})
	}
	jnl.Append(Record{Kind: "cell", Sweep: "sw-1", Key: "sw-1/a", Seed: 1, Status: StatusOK, Attempts: 1})
	jnl.Append(Record{Kind: "cell", Sweep: "sw-1", Key: "sw-1/b", Seed: 1, Status: StatusFailed, Attempts: 2, Error: "boom"})
	// sw-1/c's latest record stays "running" (killed mid-run).
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	before, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompactFile(path); err != nil {
		t.Fatal(err)
	}
	after, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Runs, after.Runs) {
		t.Errorf("runs diverge after compaction:\nbefore %+v\nafter  %+v", before.Runs, after.Runs)
	}
	if !reflect.DeepEqual(before.Sweeps, after.Sweeps) {
		t.Errorf("sweeps diverge after compaction")
	}
	if !reflect.DeepEqual(before.Meta, after.Meta) {
		t.Errorf("meta diverges after compaction")
	}

	// Minimality: meta + 1 sweep + 3 cells = 5 lines (was 7).
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
	}
	if lines != 5 {
		t.Errorf("compacted journal has %d lines, want 5", lines)
	}

	// Idempotent: compacting a compacted journal changes nothing.
	data1, _ := os.ReadFile(path)
	if err := CompactFile(path); err != nil {
		t.Fatal(err)
	}
	data2, _ := os.ReadFile(path)
	if string(data1) != string(data2) {
		t.Error("second compaction changed the file")
	}
}

// TestCompactFileMissing: compacting a nonexistent journal errors
// instead of creating one.
func TestCompactFileMissing(t *testing.T) {
	if err := CompactFile(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("want error for missing journal")
	}
}
