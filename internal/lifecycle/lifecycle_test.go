package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rowsim/internal/coherence"
	"rowsim/internal/sim"
)

// instantSleep records requested backoff delays without waiting.
func instantSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		*delays = append(*delays, d)
		return nil
	}
}

// TestClassify pins the retry classification table documented in
// DESIGN.md: deterministic simulator failures are permanent,
// host-level ones transient, shutdown is its own class.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{&coherence.ProtocolError{Reason: "impossible Unblock"}, ClassPermanent},
		{&sim.DeadlockError{Cycle: 1}, ClassPermanent},
		{&sim.CycleLimitError{MaxCycles: 10}, ClassPermanent},
		{&sim.CoherenceViolationError{Line: 0x40}, ClassPermanent},
		{errors.New("unknown workload"), ClassPermanent},
		{&RunPanicError{Spec: "x", Value: "boom"}, ClassTransient},
		{context.DeadlineExceeded, ClassTransient},
		{&sim.RunCanceledError{Cycle: 1024, Cause: context.DeadlineExceeded}, ClassTransient},
		{context.Canceled, ClassCanceled},
		{&sim.RunCanceledError{Cycle: 1024, Cause: context.Canceled}, ClassCanceled},
		{fmt.Errorf("wrapped: %w", &RunPanicError{Value: 1}), ClassTransient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestPermanentFailureNeverRetried: a deterministic protocol error
// fails after exactly one attempt — retrying a deterministic replay is
// pure waste.
func TestPermanentFailureNeverRetried(t *testing.T) {
	var delays []time.Duration
	sup := New(Config{MaxAttempts: 5, Sleep: instantSleep(&delays)})
	attempts := 0
	out := sup.Do(context.Background(), Job{Key: "det"}, func(context.Context) (sim.Result, error) {
		attempts++
		return sim.Result{}, &coherence.ProtocolError{Reason: "deterministic"}
	})
	if out.Status != StatusFailed || out.Attempts != 1 || attempts != 1 {
		t.Fatalf("want failed after exactly 1 attempt, got status=%s attempts=%d (fn ran %d times)",
			out.Status, out.Attempts, attempts)
	}
	if len(delays) != 0 {
		t.Fatalf("permanent failure slept %v", delays)
	}
}

// TestPanicRetriedWithBackoff: an escaped panic is contained, retried
// with exponentially growing jittered delays, and succeeds when the
// fault clears.
func TestPanicRetriedWithBackoff(t *testing.T) {
	var delays []time.Duration
	sup := New(Config{MaxAttempts: 3, BackoffBase: 100 * time.Millisecond, Sleep: instantSleep(&delays)})
	attempts := 0
	out := sup.Do(context.Background(), Job{Key: "flaky"}, func(context.Context) (sim.Result, error) {
		attempts++
		if attempts < 3 {
			panic(fmt.Sprintf("host glitch %d", attempts))
		}
		return sim.Result{Cycles: 42}, nil
	})
	if out.Status != StatusOK || out.Attempts != 3 || out.Result.Cycles != 42 {
		t.Fatalf("want ok on third attempt, got %+v", out)
	}
	if len(delays) != 2 {
		t.Fatalf("want 2 backoff sleeps, got %v", delays)
	}
	// Jitter maps the nominal delay into [1/2, 1): attempt 1 from
	// 100ms, attempt 2 from 200ms.
	bounds := []struct{ lo, hi time.Duration }{
		{50 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 200 * time.Millisecond},
	}
	for i, d := range delays {
		if d < bounds[i].lo || d >= bounds[i].hi {
			t.Errorf("backoff %d = %v outside [%v, %v)", i, d, bounds[i].lo, bounds[i].hi)
		}
	}
}

// TestPanicContainmentCarriesContext: the converted error names the
// run spec, keeps the payload and captures a stack.
func TestPanicContainmentCarriesContext(t *testing.T) {
	sup := New(Config{MaxAttempts: 1})
	out := sup.Do(context.Background(), Job{Key: "rowtorture -seed 0x3a41 -wl cq"}, func(context.Context) (sim.Result, error) {
		panic("index out of range [17]")
	})
	if out.Status != StatusDegraded {
		t.Fatalf("want degraded, got %s", out.Status)
	}
	var rp *RunPanicError
	if !errors.As(out.Err, &rp) {
		t.Fatalf("want *RunPanicError, got %T: %v", out.Err, out.Err)
	}
	if rp.Spec != "rowtorture -seed 0x3a41 -wl cq" || rp.Value != "index out of range [17]" {
		t.Fatalf("panic context lost: %+v", rp)
	}
	if !strings.Contains(rp.Stack, "lifecycle") {
		t.Fatalf("no stack captured: %q", rp.Stack)
	}
}

// TestTransientExhaustionDegrades: a persistently transient job
// degrades after MaxAttempts instead of aborting the sweep.
func TestTransientExhaustionDegrades(t *testing.T) {
	var delays []time.Duration
	sup := New(Config{MaxAttempts: 3, Sleep: instantSleep(&delays)})
	attempts := 0
	out := sup.Do(context.Background(), Job{Key: "always-panics"}, func(context.Context) (sim.Result, error) {
		attempts++
		panic("every time")
	})
	if out.Status != StatusDegraded || out.Attempts != 3 || attempts != 3 {
		t.Fatalf("want degraded after 3 attempts, got status=%s attempts=%d (fn ran %d)",
			out.Status, out.Attempts, attempts)
	}
}

// TestPerAttemptDeadline: RunTimeout bounds one attempt's wall-clock
// time; the timed-out attempts count as transient and the job degrades
// when every retry times out too.
func TestPerAttemptDeadline(t *testing.T) {
	var delays []time.Duration
	sup := New(Config{MaxAttempts: 2, RunTimeout: 5 * time.Millisecond, Sleep: instantSleep(&delays)})
	out := sup.Do(context.Background(), Job{Key: "slow"}, func(ctx context.Context) (sim.Result, error) {
		<-ctx.Done() // simulate RunCtx observing the deadline at a poll
		return sim.Result{}, &sim.RunCanceledError{Cycle: 2048, Cause: ctx.Err()}
	})
	if out.Status != StatusDegraded || out.Attempts != 2 {
		t.Fatalf("want degraded after 2 timed-out attempts, got %+v", out)
	}
	if !errors.Is(out.Err, context.DeadlineExceeded) {
		t.Fatalf("final error should be the deadline: %v", out.Err)
	}
}

// TestParentCancellationDrains: when the sweep context ends mid-job,
// the job is canceled — never retried, never marked failed — so a
// resume re-runs it.
func TestParentCancellationDrains(t *testing.T) {
	sup := New(Config{MaxAttempts: 5})
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	out := sup.Do(ctx, Job{Key: "drained"}, func(c context.Context) (sim.Result, error) {
		attempts++
		cancel() // SIGINT arrives while the run is in flight
		return sim.Result{}, &sim.RunCanceledError{Cycle: 1024, Cause: context.Canceled}
	})
	if out.Status != StatusCanceled || attempts != 1 {
		t.Fatalf("want canceled after 1 attempt, got status=%s (fn ran %d)", out.Status, attempts)
	}
	// And a context canceled before the job starts never runs it.
	out = sup.Do(ctx, Job{Key: "never-started"}, func(context.Context) (sim.Result, error) {
		t.Fatal("attempt ran under a dead context")
		return sim.Result{}, nil
	})
	if out.Status != StatusCanceled || out.Attempts != 0 {
		t.Fatalf("want canceled with 0 attempts, got %+v", out)
	}
}

// TestBackoffDeterministic: the same jitter seed produces the same
// delay sequence — supervised sweeps stay reproducible.
func TestBackoffDeterministic(t *testing.T) {
	seq := func() []time.Duration {
		var delays []time.Duration
		sup := New(Config{MaxAttempts: 4, JitterSeed: 7, Sleep: instantSleep(&delays)})
		sup.Do(context.Background(), Job{Key: "x"}, func(context.Context) (sim.Result, error) {
			panic("always")
		})
		return delays
	}
	a, c := seq(), seq()
	if len(a) != 3 || len(c) != 3 {
		t.Fatalf("want 3 delays each, got %v / %v", a, c)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, c)
		}
	}
}
