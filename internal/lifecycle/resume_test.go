package lifecycle

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rowsim/internal/sim"
)

// TestKilledSweepResumesExactlyMissingSpecs is the end-to-end recovery
// story at the package level: a supervised sweep of ten specs is
// "killed" mid-journal (the file is cut mid-record, as SIGKILL during
// an append would leave it), and the resumed sweep must execute
// exactly the specs the journal does not show complete — the torn one
// included — while serving the finished ones from disk, ending with
// results identical to an uninterrupted sweep.
func TestKilledSweepResumesExactlyMissingSpecs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	specs := make([]string, 10)
	for i := range specs {
		specs[i] = fmt.Sprintf("spec-%02d", i)
	}
	runSpec := func(key string) sim.Result {
		// A deterministic stand-in for a simulation: the result is a
		// function of the spec alone, like a seeded run.
		return sim.Result{Cycles: uint64(1000 + len(key)*7), Committed: uint64(len(key))}
	}

	// Phase 1: run the sweep, stopping after 6 completed specs — then
	// tear the journal mid-way through the 6th record to emulate
	// SIGKILL during the append.
	j, err := Create(path, Record{Tool: "test-sweep"})
	if err != nil {
		t.Fatal(err)
	}
	sup := New(Config{Journal: j})
	for _, key := range specs[:6] {
		out := sup.Do(context.Background(), Job{Key: key, Seed: 1}, func(context.Context) (sim.Result, error) {
			return runSpec(key), nil
		})
		if out.Status != StatusOK {
			t.Fatalf("setup run %s: %+v", key, out)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-25); err != nil { // cut into the 6th record
		t.Fatal(err)
	}

	// Phase 2: resume. Only specs 5..9 may execute (5's record was
	// torn); 0..4 come from the journal.
	j2, snap, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	sup2 := New(Config{Journal: j2})
	var executed []string
	final := make(map[string]sim.Result)
	for _, key := range specs {
		if rec, ok := snap.Completed(key); ok {
			final[key] = *rec.Result
			continue
		}
		key := key
		out := sup2.Do(context.Background(), Job{Key: key, Seed: 1}, func(context.Context) (sim.Result, error) {
			executed = append(executed, key)
			return runSpec(key), nil
		})
		if out.Status != StatusOK {
			t.Fatalf("resumed run %s: %+v", key, out)
		}
		final[key] = out.Result
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{"spec-05", "spec-06", "spec-07", "spec-08", "spec-09"}
	sort.Strings(executed)
	if fmt.Sprint(executed) != fmt.Sprint(want) {
		t.Fatalf("resume executed %v, want exactly the missing specs %v", executed, want)
	}
	// The aggregate equals an uninterrupted sweep's.
	for _, key := range specs {
		if final[key] != runSpec(key) {
			t.Fatalf("resumed aggregate diverges at %s: %+v", key, final[key])
		}
	}
	// And the healed journal now shows all ten specs complete.
	snap2, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range specs {
		if _, ok := snap2.Completed(key); !ok {
			t.Fatalf("journal incomplete after resumed sweep: missing %s", key)
		}
	}
}
