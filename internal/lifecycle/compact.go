package lifecycle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CompactFile rewrites the journal at path to its minimal equivalent:
// the meta record, every sweep record in admission order, and only the
// newest record per run/cell key (latest-wins is exactly the semantics
// Load applies, so replaying the compacted journal reconstructs the
// same state the full journal would — a daemon's queue after a year of
// cell transitions reloads from a file proportional to the number of
// cells, not the number of transitions).
//
// The rewrite is atomic (temp+fsync+rename): a crash mid-compaction
// leaves the original journal untouched. The journal must not be open
// for appending — compaction is for quiesced journals (rowserve runs
// it on graceful drain, after the queue has closed).
func CompactFile(path string) error {
	snap, _, err := Load(path)
	if err != nil {
		return fmt.Errorf("lifecycle: compact %s: %w", path, err)
	}
	keys := make([]string, 0, len(snap.Runs))
	for k := range snap.Runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	write := func(rec Record) {
		if err != nil {
			return
		}
		var line []byte
		if line, err = json.Marshal(rec); err != nil {
			return
		}
		_, err = f.Write(append(line, '\n'))
	}
	err = nil
	write(snap.Meta)
	for _, sw := range snap.Sweeps {
		write(sw)
	}
	for _, k := range keys {
		write(snap.Runs[k])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lifecycle: compact %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
