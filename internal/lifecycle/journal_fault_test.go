package lifecycle

import (
	"bufio"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"rowsim/internal/sim"
)

// faultFile is a journalFile that starts failing on command: writes
// fail after failWriteAfter successful calls (-1 = never), Sync fails
// when failSync is set, Close when failClose is set.
type faultFile struct {
	writes         int
	failWriteAfter int // fail every Write once this many succeeded; -1 = never
	failSync       bool
	failClose      bool
	synced         int
}

var (
	errDiskFull  = errors.New("injected: disk full")
	errSyncFail  = errors.New("injected: fsync failed")
	errCloseFail = errors.New("injected: close failed")
)

func (f *faultFile) Write(p []byte) (int, error) {
	if f.failWriteAfter >= 0 && f.writes >= f.failWriteAfter {
		return 0, errDiskFull
	}
	f.writes++
	return len(p), nil
}

func (f *faultFile) Sync() error {
	if f.failSync {
		return errSyncFail
	}
	f.synced++
	return nil
}

func (f *faultFile) Close() error {
	if f.failClose {
		return errCloseFail
	}
	return nil
}

func faultJournal(ff *faultFile) *Journal {
	// Mirror openAppend, with the file swapped for the fault injector.
	return &Journal{f: ff, w: bufio.NewWriter(ff), path: "fault-injected"}
}

func runRec(i int) Record {
	return Record{Kind: "run", Key: fmt.Sprintf("job-%d", i), Seed: 1, Status: StatusOK}
}

// TestJournalWriteErrorSurfaces: Append never fails the caller's run,
// but the first write error must become visible on Err and again on
// Close — a silently broken journal would make resume lie.
func TestJournalWriteErrorSurfaces(t *testing.T) {
	ff := &faultFile{failWriteAfter: 1}
	j := faultJournal(ff)

	j.Append(runRec(0)) // succeeds
	if err := j.Err(); err != nil {
		t.Fatalf("first append: unexpected error %v", err)
	}
	j.Append(runRec(1)) // the buffered flush hits the failing write
	if err := j.Err(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Err after failed append = %v, want %v", err, errDiskFull)
	}
	if err := j.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close after failed append = %v, want %v", err, errDiskFull)
	}
}

// TestJournalWriteErrorIsSticky: once an append failed, the journal
// reports that first error forever; later appends are dropped rather
// than papering over the failure.
func TestJournalWriteErrorIsSticky(t *testing.T) {
	ff := &faultFile{failWriteAfter: 0}
	j := faultJournal(ff)
	j.Append(runRec(0))
	first := j.Err()
	if !errors.Is(first, errDiskFull) {
		t.Fatalf("Err = %v, want %v", first, errDiskFull)
	}
	// Heal the file: the journal must NOT recover silently — records
	// were already lost.
	ff.failWriteAfter = -1
	j.Append(runRec(1))
	if err := j.Err(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Err after healed file = %v, want the original sticky %v", err, errDiskFull)
	}
	if ff.writes != 0 {
		t.Fatalf("append after failure wrote %d times, want 0 (dropped)", ff.writes)
	}
}

// TestJournalSyncErrorSurfaces: fsync runs once per syncEvery appends;
// its failure must surface on Err/Close like a write failure even
// though the appends themselves succeeded.
func TestJournalSyncErrorSurfaces(t *testing.T) {
	ff := &faultFile{failWriteAfter: -1, failSync: true}
	j := faultJournal(ff)
	for i := 0; i < syncEvery-1; i++ {
		j.Append(runRec(i))
	}
	if err := j.Err(); err != nil {
		t.Fatalf("before the sync boundary: unexpected error %v", err)
	}
	j.Append(runRec(syncEvery - 1)) // crosses the batched-fsync boundary
	if err := j.Err(); !errors.Is(err, errSyncFail) {
		t.Fatalf("Err after sync boundary = %v, want %v", err, errSyncFail)
	}
	if err := j.Close(); !errors.Is(err, errSyncFail) {
		t.Fatalf("Close = %v, want %v", err, errSyncFail)
	}
}

// TestJournalCloseSurfacesFlushSyncClose: a journal that was healthy
// through every Append still reports failures of the final flush,
// fsync, or close.
func TestJournalCloseSurfacesFlushSyncClose(t *testing.T) {
	t.Run("sync", func(t *testing.T) {
		ff := &faultFile{failWriteAfter: -1}
		j := faultJournal(ff)
		j.Append(runRec(0))
		ff.failSync = true
		if err := j.Close(); !errors.Is(err, errSyncFail) {
			t.Fatalf("Close = %v, want %v", err, errSyncFail)
		}
	})
	t.Run("close", func(t *testing.T) {
		ff := &faultFile{failWriteAfter: -1, failClose: true}
		j := faultJournal(ff)
		j.Append(runRec(0))
		if err := j.Close(); !errors.Is(err, errCloseFail) {
			t.Fatalf("Close = %v, want %v", err, errCloseFail)
		}
	})
	t.Run("write-at-close", func(t *testing.T) {
		ff := &faultFile{failWriteAfter: -1}
		j := faultJournal(ff)
		j.Append(runRec(0))
		// A record still sitting in the bufio buffer when the write
		// path dies must fail the Close's flush. Grow the buffer so the
		// append's own flush is the only prior write.
		ff.failWriteAfter = ff.writes
		j.Append(runRec(1))
		if err := j.Close(); !errors.Is(err, errDiskFull) {
			t.Fatalf("Close = %v, want %v", err, errDiskFull)
		}
	})
}

// TestSpecHashValidation: Create stamps a hash of the meta definition;
// CheckSpec accepts the genuine journal and rejects a tampered meta
// with the typed *SpecMismatchError.
func TestSpecHashValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := Create(path, Record{Tool: "rowsweep", Args: map[string]string{"workload": "sps", "values": "0.1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.SpecHash == "" {
		t.Fatal("Create did not stamp a spec hash into the meta record")
	}
	if err := snap.CheckSpec(path); err != nil {
		t.Fatalf("CheckSpec on a genuine journal: %v", err)
	}

	// Tamper: same hash, different definition.
	snap.Meta.Args["values"] = "0.9"
	err = snap.CheckSpec(path)
	var sm *SpecMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("CheckSpec on tampered meta = %v, want *SpecMismatchError", err)
	}
	if sm.Path != path || sm.Field != "meta" {
		t.Fatalf("mismatch error fields = %+v", sm)
	}

	// Journals from before spec hashing carry no hash: nothing to
	// validate, resume proceeds.
	snap.Meta.SpecHash = ""
	if err := snap.CheckSpec(path); err != nil {
		t.Fatalf("CheckSpec without a stored hash = %v, want nil", err)
	}
}

// TestQueueRecordsRoundTrip: sweep and cell records — the rowserve
// queue's state transitions — load back with latest-record-wins
// semantics and admission order preserved.
func TestQueueRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	j, err := Create(path, Record{Tool: "rowserve", Args: map[string]string{"format": "v1"}})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: "sweep", Sweep: "sw-a", Tenant: "alice", Spec: []byte(`{"workload":"sps"}`), SpecHash: "h1"})
	j.Append(Record{Kind: "sweep", Sweep: "sw-b", Tenant: "bob", Spec: []byte(`{"workload":"pc"}`), SpecHash: "h2"})
	j.Append(Record{Kind: "cell", Sweep: "sw-a", Key: "sw-a/x=1/eager", Status: StatusRunning})
	res := sim.Result{Cycles: 123, Committed: 456}
	j.Append(Record{Kind: "cell", Sweep: "sw-a", Key: "sw-a/x=1/eager", Status: StatusOK, Result: &res})
	j.Append(Record{Kind: "cell", Sweep: "sw-b", Key: "sw-b/x=1/lazy", Status: StatusRunning})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	snap, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sweeps) != 2 || snap.Sweeps[0].Sweep != "sw-a" || snap.Sweeps[1].Sweep != "sw-b" {
		t.Fatalf("sweeps = %+v, want sw-a then sw-b", snap.Sweeps)
	}
	if got := snap.Runs["sw-a/x=1/eager"]; got.Status != StatusOK || got.Result == nil {
		t.Fatalf("latest record for completed cell = %+v, want ok with result", got)
	}
	if got := snap.Runs["sw-b/x=1/lazy"]; got.Status != StatusRunning {
		t.Fatalf("latest record for in-flight cell = %+v, want running", got)
	}
	if StatusRunning.Terminal() || StatusPending.Terminal() || StatusCanceled.Terminal() {
		t.Fatal("pending/running/canceled must be non-terminal (re-run on resume)")
	}
	if !StatusOK.Terminal() || !StatusFailed.Terminal() || !StatusDegraded.Terminal() {
		t.Fatal("ok/failed/degraded must be terminal")
	}
}
