package lifecycle

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rowsim/internal/sim"
)

func testMeta() Record {
	return Record{Tool: "test", Args: map[string]string{"n": "3"}}
}

// TestJournalRoundTrip: records appended to a journal load back with
// results intact, and the meta record is preserved.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := Create(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Result{Cycles: 12345, Committed: 99, IPC: 1.25, ContendedFrac: 0.333}
	j.Append(Record{Kind: "run", Key: "a", Seed: 7, Status: StatusOK, Attempts: 1, Result: &res})
	j.Append(Record{Kind: "run", Key: "b", Seed: 8, Status: StatusFailed, Attempts: 1, Class: "permanent", Error: "protocol error"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	snap, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Tool != "test" || snap.Meta.Args["n"] != "3" {
		t.Fatalf("meta lost: %+v", snap.Meta)
	}
	rec, ok := snap.Completed("a")
	if !ok || rec.Result == nil || *rec.Result != res {
		t.Fatalf("completed run lost or result mutated: %+v", rec)
	}
	if rec.Seed != 7 {
		t.Fatalf("resolved seed not journaled: %+v", rec)
	}
	if _, ok := snap.Completed("b"); ok {
		t.Fatal("failed run reported as completed — resume would skip re-running it")
	}
	if _, ok := snap.Completed("missing"); ok {
		t.Fatal("unknown key reported as completed")
	}
}

// TestJournalCreateRefusesExisting: a journal is never silently
// overwritten — a half-finished sweep's log is the recovery story.
func TestJournalCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := Create(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Create(path, testMeta()); err == nil {
		t.Fatal("Create over an existing journal succeeded")
	}
}

// TestJournalTornTailDropped: a crash mid-append leaves a torn final
// line; Load keeps the valid prefix and Resume truncates the tear so
// new records append cleanly.
func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := Create(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: "run", Key: "done", Seed: 1, Status: StatusOK, Attempts: 1, Result: &sim.Result{Cycles: 1}})
	j.Close()

	// Simulate SIGKILL mid-write: half a JSON record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"run","key":"torn","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, snap, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Completed("done"); !ok {
		t.Fatal("valid record lost with the torn tail")
	}
	if _, ok := snap.Runs["torn"]; ok {
		t.Fatal("torn record surfaced as data")
	}
	// Appending after resume lands on a clean line boundary.
	j2.Append(Record{Kind: "run", Key: "after", Seed: 2, Status: StatusOK, Attempts: 1, Result: &sim.Result{Cycles: 2}})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	snap2, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap2.Completed("after"); !ok {
		t.Fatal("post-resume append lost")
	}
	raw, _ := os.ReadFile(path)
	if strings.Contains(string(raw), `"sta{`) || strings.Count(string(raw), "\n") != 3 {
		t.Fatalf("journal not clean after resume:\n%s", raw)
	}
}

// TestJournalLatestRecordWins: a key journaled twice (e.g. ok then
// overridden by a replay mismatch) resumes from the latest record.
func TestJournalLatestRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := Create(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Kind: "run", Key: "k", Seed: 1, Status: StatusOK, Attempts: 1, Result: &sim.Result{}})
	j.Append(Record{Kind: "run", Key: "k", Seed: 1, Status: StatusFailed, Attempts: 1, Class: "replay-mismatch", Error: "nondeterminism"})
	j.Close()
	snap, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Completed("k"); ok {
		t.Fatal("superseded ok record still counts as completed")
	}
}

// TestLoadRejectsNonJournal: resuming from a file that is not a
// journal fails loudly instead of running an empty sweep.
func TestLoadRejectsNonJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("Load accepted a non-journal file")
	}
}

// TestSupervisorJournalsOutcomes: Do writes one record per job with
// the resolved seed, terminal status and attempt count; ok records
// carry the result, failures the error and class.
func TestSupervisorJournalsOutcomes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := Create(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	sup := New(Config{MaxAttempts: 2, Journal: j, Sleep: instantSleep(&delays)})
	sup.Do(context.Background(), Job{Key: "good", Seed: 11}, func(context.Context) (sim.Result, error) {
		return sim.Result{Cycles: 5}, nil
	})
	sup.Do(context.Background(), Job{Key: "bad", Seed: 12}, func(context.Context) (sim.Result, error) {
		panic("twice")
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snap, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	good, ok := snap.Completed("good")
	if !ok || good.Seed != 11 || good.Result.Cycles != 5 {
		t.Fatalf("ok outcome journaled wrong: %+v", good)
	}
	bad := snap.Runs["bad"]
	if bad.Status != StatusDegraded || bad.Attempts != 2 || bad.Class != "transient" || !strings.Contains(bad.Error, "twice") {
		t.Fatalf("degraded outcome journaled wrong: %+v", bad)
	}
}
