package lifecycle

import (
	"context"
	"errors"
	"fmt"
)

// RunPanicError is a panic that escaped a simulation attempt, caught
// by the supervisor's containment and converted into a value: the run
// spec that panicked, the panic payload and the goroutine stack. A
// panic is classified transient — it may be a host-level glitch — but
// a deterministic simulator panic simply exhausts its retries and the
// job degrades instead of killing the whole sweep.
type RunPanicError struct {
	Spec  string // the job key (repro line) of the panicking run
	Value any    // the recovered panic payload
	Stack string // debug.Stack() at the recovery point
}

func (e *RunPanicError) Error() string {
	return fmt.Sprintf("lifecycle: run %q panicked: %v\n%s", e.Spec, e.Value, e.Stack)
}

// SpecMismatchError reports a resume attempt against a journal whose
// recorded sweep definition does not match — an edited meta record, a
// sweep record whose embedded spec no longer hashes to its stored
// spec_hash, or resume flags that contradict the journaled definition.
// Resuming anyway would silently sweep different cells than the
// journal's completed records describe, so callers fail fast instead.
type SpecMismatchError struct {
	Path  string // journal path
	Field string // what diverged: "meta", a sweep ID, or a flag name
	Want  string // the journaled value (or hash)
	Got   string // the conflicting value (or recomputed hash)
}

func (e *SpecMismatchError) Error() string {
	return fmt.Sprintf("lifecycle: journal %s was produced by a different sweep definition (%s: journal has %q, resume computed %q); refusing to resume",
		e.Path, e.Field, e.Want, e.Got)
}

// Class is the retry classification of a failed attempt.
type Class int

const (
	// ClassPermanent marks deterministic failures — protocol errors,
	// deadlocks, coherence violations, exhausted cycle budgets, setup
	// errors. A deterministic simulation replays identically, so
	// retrying is pure waste: the job fails after exactly one attempt.
	ClassPermanent Class = iota
	// ClassTransient marks host-level failures — an escaped panic or
	// an expired per-attempt wall-clock deadline — that a retry on a
	// healthier host moment can genuinely fix.
	ClassTransient
	// ClassCanceled marks supervisor shutdown (context canceled): the
	// job is neither failed nor degraded, just unfinished — a resume
	// re-runs it.
	ClassCanceled
)

func (c Class) String() string {
	switch c {
	case ClassPermanent:
		return "permanent"
	case ClassTransient:
		return "transient"
	case ClassCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify maps an attempt error to its retry class. Cancellation is
// recognized via errors.Is(err, context.Canceled) (sim wraps it in
// *sim.RunCanceledError), deadlines via context.DeadlineExceeded,
// panics via *RunPanicError; everything else — including every typed
// simulator failure — replays identically and is permanent.
func Classify(err error) Class {
	var pe *RunPanicError
	switch {
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	case errors.As(err, &pe), errors.Is(err, context.DeadlineExceeded):
		return ClassTransient
	default:
		return ClassPermanent
	}
}
