// Package lifecycle supervises simulation runs: every job executes
// under cooperative cancellation, an optional per-attempt wall-clock
// deadline (distinct from the simulated-cycle budget), panic
// containment, and classified retry — transient host-level failures
// (deadline, panic) back off exponentially with seeded jitter and try
// again, deterministic simulator failures (protocol error, deadlock,
// cycle limit) fail after exactly one attempt because they replay
// identically. Outcomes stream to a crash-safe append-only JSONL
// journal, so a sweep killed at run 480/500 resumes with the 480
// finished runs served from disk and only the tail re-executed;
// repeatedly failing jobs degrade (recorded with their error) instead
// of aborting the sweep.
//
// The same supervisor shape — job spec, attempt, classify,
// retry-or-degrade, journal — is what any long batch campaign needs;
// see DESIGN.md "Run lifecycle & recovery" for the state machine and
// journal format.
package lifecycle

import (
	"context"
	"runtime/debug"
	"sync"
	"time"

	"rowsim/internal/sim"
	"rowsim/internal/xrand"
)

// Status is the terminal state of a supervised job.
type Status string

const (
	// StatusOK: an attempt completed cleanly.
	StatusOK Status = "ok"
	// StatusFailed: a permanent (deterministic) failure; one attempt.
	StatusFailed Status = "failed"
	// StatusDegraded: transient failures persisted through every
	// retry; the sweep records the error and moves on.
	StatusDegraded Status = "degraded"
	// StatusCanceled: the supervisor shut down (SIGINT drain, sweep
	// deadline) before the job finished; a resume re-runs it.
	StatusCanceled Status = "canceled"

	// Queue-only states (rowserve). The supervisor never produces
	// them; the daemon journals them as cell state transitions so a
	// restart reconstructs the queue. Both are non-terminal: a cell
	// whose newest journaled state is pending or running re-runs.
	StatusPending Status = "pending"
	StatusRunning Status = "running"
)

// Terminal reports whether s is a final state: the job will not run
// again in this journal's lifetime (ok serves its result, failed and
// degraded keep their error). Canceled, pending and running cells are
// re-run on resume.
func (s Status) Terminal() bool {
	switch s {
	case StatusOK, StatusFailed, StatusDegraded:
		return true
	}
	return false
}

// Config tunes a Supervisor. The zero value retries transient
// failures twice (three attempts), backing off from 100ms toward 5s,
// with no per-attempt deadline and no journal.
type Config struct {
	// MaxAttempts is the total attempt budget per job, including the
	// first (default 3). Only transient failures consume retries.
	MaxAttempts int
	// RunTimeout is the per-attempt wall-clock deadline (0 = none).
	// It bounds host time; the simulated-cycle budget is Config
	// .MaxCycles on the simulation side.
	RunTimeout time.Duration
	// BackoffBase is the delay before the first retry (default 100ms);
	// each further retry doubles it, capped at BackoffMax (default 5s).
	// The actual delay is jittered uniformly into [1/2, 1) of the
	// nominal value from a seeded generator, so sweeps stay
	// reproducible while concurrent retries decorrelate.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter (default 1).
	JitterSeed uint64
	// Journal, when set, receives one run record per completed job.
	Journal *Journal
	// Sleep replaces the backoff sleep (tests). It must return a
	// non-nil error when ctx is done before the delay elapses.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.Sleep == nil {
		c.Sleep = sleep
	}
	return c
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Job identifies one supervised run. Key is its stable identity across
// processes (a repro line or spec string) — the journal and resume
// match on it. Seed is the resolved trace seed, journaled so a record
// is always re-runnable even when the caller used a defaulted seed.
type Job struct {
	Key  string
	Seed uint64
	// Checkpoint, when non-empty, is the path of the job's durable
	// mid-run checkpoint lineage (see internal/checkpoint). The
	// supervisor does not read or write it — the attempt function owns
	// checkpointing, and a retried attempt resumes from whatever its
	// failed predecessor persisted — but the path is journaled with the
	// outcome so operators can locate and audit recovery state.
	Checkpoint string
}

// AttemptFunc executes one attempt of a job. The context carries the
// supervisor's cancellation and, when configured, the per-attempt
// deadline; implementations pass it to sim.System.RunCtx.
type AttemptFunc func(ctx context.Context) (sim.Result, error)

// Outcome is the terminal result of a supervised job.
type Outcome struct {
	Status   Status
	Result   sim.Result // valid when Status == StatusOK
	Attempts int        // attempts actually made
	Err      error      // final error for failed/degraded/canceled
}

// Supervisor runs jobs under the policy in its Config. It is safe for
// concurrent use by multiple workers.
type Supervisor struct {
	cfg Config
	mu  sync.Mutex
	rng *xrand.RNG
}

// New builds a supervisor.
func New(cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{cfg: cfg, rng: xrand.New(cfg.JitterSeed)}
}

// Do runs one job to a terminal state and journals the outcome. The
// journal write never alters the outcome; its first failure is
// reported by Journal.Err.
func (s *Supervisor) Do(ctx context.Context, job Job, fn AttemptFunc) Outcome {
	out := s.run(ctx, job, fn)
	if s.cfg.Journal != nil {
		rec := Record{
			Kind:       "run",
			Key:        job.Key,
			Seed:       job.Seed,
			Status:     out.Status,
			Attempts:   out.Attempts,
			Checkpoint: job.Checkpoint,
		}
		if out.Err != nil {
			rec.Error = out.Err.Error()
			rec.Class = Classify(out.Err).String()
		}
		if out.Status == StatusOK {
			res := out.Result
			rec.Result = &res
		}
		s.cfg.Journal.Append(rec)
	}
	return out
}

func (s *Supervisor) run(ctx context.Context, job Job, fn AttemptFunc) Outcome {
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Outcome{Status: StatusCanceled, Attempts: attempt - 1, Err: err}
		}
		res, err := s.attempt(ctx, job, fn)
		if err == nil {
			return Outcome{Status: StatusOK, Result: res, Attempts: attempt}
		}
		// The parent context ending mid-attempt — SIGINT drain or the
		// whole-sweep deadline — is a shutdown, not a per-run failure:
		// never retried, journaled canceled so a resume re-runs it.
		if ctx.Err() != nil {
			return Outcome{Status: StatusCanceled, Attempts: attempt, Err: err}
		}
		switch Classify(err) {
		case ClassCanceled:
			return Outcome{Status: StatusCanceled, Attempts: attempt, Err: err}
		case ClassPermanent:
			return Outcome{Status: StatusFailed, Attempts: attempt, Err: err}
		default: // transient: deadline or panic
			if attempt >= s.cfg.MaxAttempts {
				return Outcome{Status: StatusDegraded, Attempts: attempt, Err: err}
			}
			if s.cfg.Sleep(ctx, s.backoff(attempt)) != nil {
				return Outcome{Status: StatusCanceled, Attempts: attempt, Err: err}
			}
		}
	}
}

// attempt executes fn once with the per-attempt deadline installed and
// panics contained as *RunPanicError.
func (s *Supervisor) attempt(ctx context.Context, job Job, fn AttemptFunc) (res sim.Result, err error) {
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RunTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &RunPanicError{Spec: job.Key, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn(ctx)
}

// backoff computes the jittered delay before retry number attempt.
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	s.mu.Lock()
	j := 0.5 + 0.5*s.rng.Float64()
	s.mu.Unlock()
	return time.Duration(float64(d) * j)
}
