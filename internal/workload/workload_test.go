package workload

import (
	"testing"

	"rowsim/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	for _, n := range append(append([]string{}, AtomicIntensive...), Fillers...) {
		p, err := Get(n)
		if err != nil {
			t.Fatalf("workload %s: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("%s: name not filled", n)
		}
		if p.Descr == "" {
			t.Errorf("%s: missing description", n)
		}
		if p.DefaultInstrs <= 0 {
			t.Errorf("%s: missing default length", n)
		}
		if p.AddrIndep <= 0 {
			t.Errorf("%s: AddrIndep not defaulted", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("definitely-not-a-workload"); err == nil {
		t.Fatal("expected an error")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet did not panic")
		}
	}()
	MustGet("nope")
}

func TestGenerateDeterministic(t *testing.T) {
	p := MustGet("pc")
	a := Generate(p, 2, 3000, 7)
	b := Generate(p, 2, 3000, 7)
	for c := range a {
		if len(a[c]) != len(b[c]) {
			t.Fatalf("core %d lengths differ", c)
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("core %d instr %d differs", c, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := MustGet("pc")
	a := Generate(p, 1, 3000, 1)[0]
	b := Generate(p, 1, 3000, 2)[0]
	same := 0
	for i := range a {
		if i < len(b) && a[i].Addr == b[i].Addr && a[i].Kind == b[i].Kind {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAtomicIntensityNearTarget(t *testing.T) {
	for _, n := range AtomicIntensive {
		p := MustGet(n)
		prog := Generate(p, 1, 30000, 3)[0]
		got := prog.AtomicsPer10K()
		lo, hi := p.AtomicsPer10K*0.5, p.AtomicsPer10K*1.6
		if got < lo || got > hi {
			t.Errorf("%s: intensity %.1f outside [%.1f,%.1f]", n, got, lo, hi)
		}
	}
}

func TestCoresDisjointPrivateRegions(t *testing.T) {
	p := MustGet("canneal")
	progs := Generate(p, 2, 4000, 5)
	seen := map[uint64]int{}
	for c, prog := range progs {
		for i := range prog {
			in := &prog[i]
			if !in.IsMem() || in.Addr < privateBase {
				continue
			}
			line := in.Addr &^ 63
			if prev, ok := seen[line]; ok && prev != c {
				t.Fatalf("private line %#x used by cores %d and %d", line, prev, c)
			}
			seen[line] = c
		}
	}
}

func TestHotLinesShared(t *testing.T) {
	p := MustGet("pc")
	progs := Generate(p, 4, 4000, 5)
	perCore := make([]map[uint64]bool, 4)
	for c, prog := range progs {
		perCore[c] = map[uint64]bool{}
		for i := range prog {
			in := &prog[i]
			if in.Kind == trace.Atomic && in.Addr >= hotBase && in.Addr < metaBase {
				perCore[c][in.Addr&^63] = true
			}
		}
	}
	for c := 1; c < 4; c++ {
		shared := false
		for l := range perCore[0] {
			if perCore[c][l] {
				shared = true
				break
			}
		}
		if !shared {
			t.Fatalf("cores 0 and %d share no hot atomic lines", c)
		}
	}
}

func TestStableSitePCs(t *testing.T) {
	// Dynamic instances of the same static site keep the same PC
	// (the predictors depend on it): the number of distinct atomic
	// PCs must be small and repeated.
	p := MustGet("sps")
	prog := Generate(p, 1, 20000, 9)[0]
	pcs := map[uint64]int{}
	for i := range prog {
		if prog[i].Kind == trace.Atomic {
			pcs[prog[i].PC]++
		}
	}
	if len(pcs) == 0 || len(pcs) > 64 {
		t.Fatalf("%d distinct atomic sites, want 1..64", len(pcs))
	}
	repeated := 0
	for _, n := range pcs {
		if n > 1 {
			repeated++
		}
	}
	if repeated == 0 {
		t.Fatal("no atomic site executed twice")
	}
}

func TestLocalityGroupShape(t *testing.T) {
	// cq atomics are usually preceded (within a few instructions) by
	// a store to the same line.
	p := MustGet("cq")
	prog := Generate(p, 1, 20000, 11)[0]
	total, withStore := 0, 0
	for i := range prog {
		in := &prog[i]
		if in.Kind != trace.Atomic || in.Addr < hotBase || in.Addr >= metaBase {
			continue
		}
		total++
		for back := 1; back <= 3 && i-back >= 0; back++ {
			prev := &prog[i-back]
			if prev.Kind == trace.Store && prev.Addr&^63 == in.Addr&^63 {
				withStore++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("cq generated no hot atomics")
	}
	frac := float64(withStore) / float64(total)
	if frac < 0.6 {
		t.Fatalf("only %.0f%% of hot atomics have a same-line store (want >= 60%%)", frac*100)
	}
}

func TestWarmFilter(t *testing.T) {
	cold := MustGet("canneal")
	f := WarmFilter(cold)
	if f == nil {
		t.Fatal("cold-atomics workload must have a filter")
	}
	wsLine := uint64(privateBase + 0x100)
	atomicLine := uint64(privateBase + atomicRegionOff + 0x100)
	if !f(0, wsLine) {
		t.Fatal("working-set line filtered out")
	}
	if f(0, atomicLine) {
		t.Fatal("cold atomic line allowed to warm")
	}
	if !f(0, hotBase) {
		t.Fatal("shared line filtered out")
	}
	if WarmFilter(MustGet("blackscholes")) != nil {
		t.Fatal("warm workload should have no filter")
	}
}

func TestDefaultLengthUsed(t *testing.T) {
	p := MustGet("fmm")
	prog := Generate(p, 1, 0, 1)[0]
	if len(prog) < p.DefaultInstrs {
		t.Fatalf("len = %d, want >= %d", len(prog), p.DefaultInstrs)
	}
}

func TestMicrobenchVariants(t *testing.T) {
	vs := MicrobenchVariants()
	if len(vs) != 12 {
		t.Fatalf("%d variants, want 12", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if names[v.String()] {
			t.Fatalf("duplicate variant %q", v)
		}
		names[v.String()] = true
	}
}

func TestMicrobenchShape(t *testing.T) {
	for _, v := range MicrobenchVariants() {
		prog := GenerateMicrobench(v, 100, 1)
		if got := MicrobenchIterations(prog, v); got != 100 {
			t.Fatalf("%v: iterations = %d, want 100", v, got)
		}
		s := prog.Summarize()
		if v.Locked || v.Op == trace.SWAP {
			if s.Atomics != 100 {
				t.Fatalf("%v: atomics = %d, want 100", v, s.Atomics)
			}
		} else {
			if s.Atomics != 0 || s.Loads != 100 || s.Stores != 100 {
				t.Fatalf("%v: plain RMW shape wrong: %+v", v, s)
			}
		}
		if v.Fenced && s.Fences != 200 {
			t.Fatalf("%v: fences = %d, want 200", v, s.Fences)
		}
		if !v.Fenced && s.Fences != 0 {
			t.Fatalf("%v: unexpected fences", v)
		}
	}
}

func TestMicrobenchLockSemantics(t *testing.T) {
	// Plain SWAP locks anyway (xchgl); plain FAA/CAS never lock.
	swap := GenerateMicrobench(MicrobenchVariant{Op: trace.SWAP}, 10, 1)
	for i := range swap {
		if swap[i].Kind == trace.Atomic && !swap[i].LocksLine() {
			t.Fatal("plain SWAP must still lock")
		}
	}
}
