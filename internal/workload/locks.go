package workload

import (
	"fmt"

	"rowsim/internal/trace"
)

// The paper's introduction motivates atomics as the building blocks
// of higher-level synchronization (locks, barriers). These generators
// emit the instruction patterns of three classic algorithms so the
// eager/lazy/RoW/far comparison can be read directly against them.
//
// Spin iteration counts are drawn per dynamic instance from the
// generator's PRNG (a static trace cannot adapt to simulated timing);
// the parameters are chosen so the traffic pattern — who hammers
// which line, how often, with what in between — matches the
// algorithm. Lock and barrier lines live in the hot region, so the
// contention machinery treats them like any other contended line.

// synthKind selects a structured generator instead of the statistical
// template.
type synthKind string

const (
	synthNone    synthKind = ""
	synthTAS     synthKind = "tas"     // test-and-set spinlock (SWAP)
	synthTicket  synthKind = "ticket"  // ticket lock (FAA + spin load)
	synthBarrier synthKind = "barrier" // sense-reversing barrier (FAA)
)

// emitTAS produces one lock/critical-section/unlock round of a
// test-and-set spinlock.
func (g *generator) emitTAS(prog trace.Program) trace.Program {
	p := g.t.p //rowlint:ignore bigcopy per-run parameter block copied once at generation time
	lock := g.hotAddr()
	// Acquire: SWAP until it returns 0. The number of failed attempts
	// grows with the configured contention.
	spins := g.rng.Geometric(p.SpinMean)
	for s := 0; s < spins; s++ {
		prog = append(prog,
			trace.Instr{PC: codeBase + 0, Kind: trace.Atomic, Dst: 1, Addr: lock, Size: 8, AtomicOp: trace.SWAP},
			trace.Instr{PC: codeBase + 4, Kind: trace.Branch, Src1: 1, Taken: s < spins-1},
		)
	}
	// Critical section: touch the protected shared data.
	for i := 0; i < p.CriticalLen; i++ {
		addr := g.sharedAddr()
		if i%3 == 1 {
			prog = append(prog, trace.Instr{PC: codeBase + 8 + uint64(4*i), Kind: trace.Store, Src1: 2, Addr: addr, Size: 8})
		} else {
			prog = append(prog, trace.Instr{PC: codeBase + 8 + uint64(4*i), Kind: trace.Load, Dst: 2, Addr: addr, Size: 8})
		}
	}
	// Release: plain store to the lock word.
	prog = append(prog, trace.Instr{PC: codeBase + 256, Kind: trace.Store, Src1: 1, Addr: lock, Size: 8})
	return g.emitLocalWork(prog, p.NonCriticalLen)
}

// lockPair returns the two cachelines of one lock/barrier object
// (e.g. ticket + now-serving). Objects are laid out at a two-line
// stride so no object's second line aliases another object's first —
// atomics must only ever target the first line, or a lock's spin
// target would be another lock's atomic target.
func (g *generator) lockPair() (uint64, uint64) {
	n := g.t.p.HotLines / 2
	if n < 1 {
		n = 1
	}
	base := uint64(hotBase) + uint64(g.rng.Intn(n))*2*lineBytes
	return base, base + lineBytes
}

// emitTicket produces one round of a ticket lock: one FAA grabs a
// ticket, then the waiter spins on plain loads of the now-serving
// word (no atomic hammering — the reason ticket locks scale better).
func (g *generator) emitTicket(prog trace.Program) trace.Program {
	p := g.t.p //rowlint:ignore bigcopy per-run parameter block copied once at generation time
	ticket, serving := g.lockPair()
	prog = append(prog, trace.Instr{PC: codeBase + 0, Kind: trace.Atomic, Dst: 1, Addr: ticket, Size: 8, AtomicOp: trace.FAA})
	spins := g.rng.Geometric(p.SpinMean)
	for s := 0; s < spins; s++ {
		prog = append(prog,
			trace.Instr{PC: codeBase + 4, Kind: trace.Load, Dst: 2, Addr: serving, Size: 8},
			trace.Instr{PC: codeBase + 8, Kind: trace.Branch, Src1: 2, Taken: s < spins-1},
		)
	}
	for i := 0; i < p.CriticalLen; i++ {
		addr := g.sharedAddr()
		if i%3 == 1 {
			prog = append(prog, trace.Instr{PC: codeBase + 12 + uint64(4*i), Kind: trace.Store, Src1: 2, Addr: addr, Size: 8})
		} else {
			prog = append(prog, trace.Instr{PC: codeBase + 12 + uint64(4*i), Kind: trace.Load, Dst: 2, Addr: addr, Size: 8})
		}
	}
	// Release: bump now-serving with a plain store.
	prog = append(prog, trace.Instr{PC: codeBase + 260, Kind: trace.Store, Src1: 2, Addr: serving, Size: 8})
	return g.emitLocalWork(prog, p.NonCriticalLen)
}

// emitBarrier produces one work-phase + barrier round: local work,
// one FAA on the arrival counter, then spin loads on the generation
// word until the last arriver flips it.
func (g *generator) emitBarrier(prog trace.Program) trace.Program {
	p := g.t.p //rowlint:ignore bigcopy per-run parameter block copied once at generation time
	counter, gen := g.lockPair()
	prog = g.emitLocalWork(prog, p.NonCriticalLen)
	prog = append(prog, trace.Instr{PC: codeBase + 0, Kind: trace.Atomic, Dst: 1, Addr: counter, Size: 8, AtomicOp: trace.FAA})
	spins := g.rng.Geometric(p.SpinMean)
	for s := 0; s < spins; s++ {
		prog = append(prog,
			trace.Instr{PC: codeBase + 4, Kind: trace.Load, Dst: 2, Addr: gen, Size: 8},
			trace.Instr{PC: codeBase + 8, Kind: trace.Branch, Src1: 2, Taken: s < spins-1},
		)
	}
	return prog
}

// emitLocalWork appends n instructions of private computation (the
// code between synchronization operations).
func (g *generator) emitLocalWork(prog trace.Program, n int) trace.Program {
	for i := 0; i < n; i++ {
		pc := codeBase + 0x1000 + uint64(4*(i%512))
		switch i % 5 {
		case 0:
			prog = append(prog, trace.Instr{PC: pc, Kind: trace.Load, Src1: g.pickAddrSrc(), Dst: g.allocLeafDst(), Addr: g.privateAddr(), Size: 8})
		case 1:
			prog = append(prog, trace.Instr{PC: pc, Kind: trace.Store, Src1: g.pickSrc(), Addr: g.privateAddr(), Size: 8})
		default:
			src2 := g.consumeLeaf()
			if src2 == 0 {
				src2 = g.maybeSrc()
			}
			prog = append(prog, trace.Instr{PC: pc, Kind: trace.IntOp, Src1: g.pickSrc(), Src2: src2, Dst: g.allocDst()})
		}
	}
	return prog
}

// generateSynth builds a structured synchronization trace.
func generateSynth(p Params, cores, instrs int, seed uint64) []trace.Program {
	t := &template{p: p}
	progs := make([]trace.Program, cores)
	for c := 0; c < cores; c++ {
		g := newGenerator(t, c, seed)
		prog := make(trace.Program, 0, instrs+instrs/8)
		for len(prog) < instrs {
			switch p.Synth {
			case synthTAS:
				prog = g.emitTAS(prog)
			case synthTicket:
				prog = g.emitTicket(prog)
			case synthBarrier:
				prog = g.emitBarrier(prog)
			default:
				panic(fmt.Sprintf("workload: unknown synthetic kind %q", p.Synth))
			}
		}
		progs[c] = prog
	}
	return progs
}
