package workload

import (
	"testing"

	"rowsim/internal/trace"
)

func TestSyncKernelsRegistered(t *testing.T) {
	for _, n := range SyncKernels {
		p, err := Get(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if p.Synth == synthNone {
			t.Fatalf("%s: not a synthetic kernel", n)
		}
		progs := Generate(p, 2, 5000, 1)
		if len(progs[0]) < 5000 {
			t.Fatalf("%s: trace too short (%d)", n, len(progs[0]))
		}
	}
}

func TestTicketAtomicsOnlyOnTicketLines(t *testing.T) {
	// Lock objects span two lines; atomics must only target the
	// first (the second is the spin word — aliasing them deadlocks
	// real and simulated ticket locks alike).
	p := MustGet("ticket")
	prog := Generate(p, 4, 8000, 3)[0]
	for i := range prog {
		in := &prog[i]
		if in.Kind != trace.Atomic {
			continue
		}
		off := (in.Addr - hotBase) / lineBytes
		if off%2 != 0 {
			t.Fatalf("atomic on a spin line %#x", in.Addr)
		}
	}
}

func TestTASShape(t *testing.T) {
	p := MustGet("tas")
	prog := Generate(p, 1, 6000, 2)[0]
	s := prog.Summarize()
	if s.Atomics == 0 {
		t.Fatal("no SWAP acquisitions generated")
	}
	// Every atomic is a SWAP on a lock line.
	for i := range prog {
		in := &prog[i]
		if in.Kind == trace.Atomic {
			if in.AtomicOp != trace.SWAP {
				t.Fatalf("TAS uses %v, want SWAP", in.AtomicOp)
			}
			if in.Addr < hotBase || in.Addr >= metaBase {
				t.Fatalf("SWAP outside the lock region: %#x", in.Addr)
			}
		}
	}
	// Releases: stores to the lock region exist.
	releases := 0
	for i := range prog {
		if prog[i].Kind == trace.Store && prog[i].Addr >= hotBase && prog[i].Addr < metaBase {
			releases++
		}
	}
	if releases == 0 {
		t.Fatal("no release stores")
	}
}

func TestBarrierShape(t *testing.T) {
	p := MustGet("barrier")
	prog := Generate(p, 1, 6000, 2)[0]
	faa, spinLoads := 0, 0
	for i := range prog {
		in := &prog[i]
		if in.Kind == trace.Atomic && in.AtomicOp == trace.FAA {
			faa++
		}
		if in.Kind == trace.Load && in.Addr >= hotBase && in.Addr < metaBase {
			spinLoads++
		}
	}
	if faa == 0 || spinLoads == 0 {
		t.Fatalf("barrier shape wrong: faa=%d spinLoads=%d", faa, spinLoads)
	}
	if spinLoads < faa {
		t.Fatalf("fewer spin loads (%d) than arrivals (%d)", spinLoads, faa)
	}
}

func TestSynthDeterministic(t *testing.T) {
	p := MustGet("ticket")
	a := Generate(p, 2, 4000, 9)
	b := Generate(p, 2, 4000, 9)
	for c := range a {
		if len(a[c]) != len(b[c]) {
			t.Fatal("lengths differ")
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("instr %d differs", i)
			}
		}
	}
}
