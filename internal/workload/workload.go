// Package workload generates the synthetic instruction traces that
// stand in for the paper's benchmark suites (Splash-4, PARSEC 3.0 and
// the six fine-grain synchronization workloads).
//
// Each workload is a parameterized generator tuned to the published
// characteristics that drive the eager/lazy trade-off: atomic
// intensity (Fig. 5's atomics per 10 kilo-instructions), the fraction
// of atomics touching contended (shared, hot) cachelines, atomic
// locality (a store to the same line right before the atomic — the
// cq/tatp/barnes pattern of Section VI), private working-set size
// (cache-miss behaviour) and dependency-chain depth (how much work
// can overlap an atomic).
//
// Generation is deterministic: the same name/seed/core/length always
// yields the same trace, so experiments are reproducible.
package workload

import (
	"fmt"
	"sort"

	"rowsim/internal/trace"
	"rowsim/internal/xrand"
)

// Params fully describes one synthetic workload.
type Params struct {
	Name string
	// Descr is a one-line description of the real workload this
	// stands in for.
	Descr string

	// AtomicsPer10K is the target atomic intensity.
	AtomicsPer10K float64
	// SharedFrac is the fraction of atomic sites that target the hot
	// shared lines (contended); the rest target private data.
	SharedFrac float64
	// HotLines is the number of distinct contended cachelines.
	HotLines int
	// StoreBefore is the probability that a contended atomic is
	// immediately preceded by a regular store to the same line
	// (atomic locality).
	StoreBefore float64
	// WorkingSet is the private data region size in bytes per core.
	WorkingSet int
	// AtomicWS sizes the private region non-contended atomics target
	// (0 = WorkingSet). canneal-style workloads hit small, cached
	// data with regular accesses while their atomics roam a huge
	// array and miss — which is exactly when eager execution hides
	// the most latency.
	AtomicWS int
	// ColdAtomics marks the atomic region as a capacity-missing
	// region: the warm-start must not pre-install it (in steady state
	// it does not fit in any cache, so its accesses always miss).
	ColdAtomics bool
	// SharedData is a separate shared (non-atomic) payload region in
	// bytes; a SharedAccFrac fraction of plain loads/stores touch it.
	SharedData    int
	SharedAccFrac float64

	// Instruction mix (the remainder is ALU work).
	LoadFrac, StoreFrac, BranchFrac, FPFrac float64

	// DepMean is the mean register-dependency distance: small values
	// make long serial chains (little ILP around atomics), large
	// values leave many independent instructions.
	DepMean float64

	// AddrIndep is the probability that a memory access's address has
	// no register dependency (an induction variable or hoisted index):
	// such accesses can issue as soon as resources allow, which is
	// what gives real workloads their memory-level parallelism.
	AddrIndep float64

	// BiasedBranches is the fraction of branch sites with a strongly
	// biased outcome (the rest are random, i.e. hard to predict).
	BiasedBranches float64

	// AtomicOp is the RMW flavour the workload uses.
	AtomicOp trace.AtomicKind

	// MixedSites is the probability that an atomic site occasionally
	// behaves as the opposite contention class (predictor noise).
	MixedSites float64

	// DefaultInstrs is the per-core trace length used when the caller
	// passes 0.
	DefaultInstrs int

	// Synth selects a structured synchronization-algorithm generator
	// ("tas", "ticket", "barrier") instead of the statistical
	// template; the fields below parameterize it.
	Synth synthKind
	// SpinMean is the mean number of spin iterations per acquisition.
	SpinMean float64
	// CriticalLen is the critical-section length in instructions.
	CriticalLen int
	// NonCriticalLen is the private work between synchronizations.
	NonCriticalLen int
}

// address-space layout (virtual; the simulator stores no data).
const (
	hotBase     = 0x1000_0000 // contended atomic lines
	metaBase    = 0x1400_0000 // write-shared metadata lines (never read)
	sharedBase  = 0x1800_0000 // shared payload region
	privateBase = 0x4000_0000 // per-core private regions
	privateStep = 0x0800_0000 // 128 MiB apart
	// atomicRegionOff places each core's private-atomic region in the
	// upper half of its window, disjoint from the load/store working
	// set, so the warm-start can tell them apart.
	atomicRegionOff = 0x0400_0000
	codeBase        = 0x0040_0000
	lineBytes       = 64
)

// siteKind classifies a static instruction slot in the template.
type siteKind uint8

const (
	siteALU siteKind = iota
	siteFP
	siteLoad
	siteStore
	siteBranch
	siteAtomic
	siteCompanionStore // store-before-atomic slot (conditionally emitted)
)

// site is one static instruction in the synthetic code template. The
// template gives the trace stable PCs, which the PC-indexed branch
// and contention predictors rely on.
type site struct {
	kind   siteKind
	pc     uint64
	hot    bool    // atomic site targeting the contended lines
	stream bool    // load/store site with a sequential (strided) pattern
	bias   float64 // branch taken probability
	shared bool    // load/store site touching the shared payload
}

// template is the per-workload static code layout, shared by all
// cores (SPMD, as in the paper's 32-thread runs).
type template struct {
	sites []site
	p     Params
}

// buildTemplate synthesizes the static code for a workload. The
// template is sized so it contains at least minAtomicSites atomic
// sites at the target intensity.
func buildTemplate(p Params, seed uint64) *template {
	const minAtomicSites = 4
	length := 2048
	if p.AtomicsPer10K > 0 {
		need := int(float64(minAtomicSites) * 10000 / p.AtomicsPer10K)
		if need > length {
			length = need
		}
	}
	if length > 32768 {
		length = 32768
	}
	nAtomic := int(float64(length)*p.AtomicsPer10K/10000 + 0.5)
	if nAtomic < 1 && p.AtomicsPer10K > 0 {
		nAtomic = 1
	}

	rng := xrand.New(seed ^ 0xabcdef12345678)
	t := &template{p: p}
	atomicAt := make(map[int]bool, nAtomic)
	for len(atomicAt) < nAtomic {
		// Position 0 is reserved so a companion store fits before.
		pos := 1 + rng.Intn(length-1)
		atomicAt[pos] = true
	}
	hotLeft := int(float64(nAtomic)*p.SharedFrac + 0.5)

	// Deterministic iteration order for reproducibility.
	positions := make([]int, 0, nAtomic)
	for pos := range atomicAt {
		positions = append(positions, pos)
	}
	sort.Ints(positions)

	hotSite := make(map[int]bool, nAtomic)
	for _, pos := range positions {
		if hotLeft > 0 {
			hotSite[pos] = true
			hotLeft--
		}
	}

	for i := 0; i < length; i++ {
		pc := uint64(codeBase + 4*i)
		switch {
		case atomicAt[i]:
			t.sites = append(t.sites, site{kind: siteAtomic, pc: pc, hot: hotSite[i]})
		case atomicAt[i+1] && hotSite[i+1] && p.StoreBefore > 0:
			t.sites = append(t.sites, site{kind: siteCompanionStore, pc: pc})
		default:
			r := rng.Float64()
			switch {
			case r < p.LoadFrac:
				t.sites = append(t.sites, site{
					kind:   siteLoad,
					pc:     pc,
					stream: rng.Bool(0.35),
					shared: rng.Bool(p.SharedAccFrac),
				})
			case r < p.LoadFrac+p.StoreFrac:
				t.sites = append(t.sites, site{
					kind:   siteStore,
					pc:     pc,
					stream: rng.Bool(0.35),
					shared: rng.Bool(p.SharedAccFrac),
				})
			case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
				bias := 0.5
				if rng.Bool(p.BiasedBranches) {
					bias = 0.97
				}
				t.sites = append(t.sites, site{kind: siteBranch, pc: pc, bias: bias})
			case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
				t.sites = append(t.sites, site{kind: siteFP, pc: pc})
			default:
				t.sites = append(t.sites, site{kind: siteALU, pc: pc})
			}
		}
	}
	return t
}

// generator emits a dynamic trace for one core from the template.
type generator struct {
	t    *template
	rng  *xrand.RNG
	core int

	recentRegs [16]trace.Reg // ring of recently written registers
	regCursor  int
	nextDst    int
	nextLeaf   int
	lastLeaf   trace.Reg

	streamPos map[uint64]uint64 // per-site streaming counters
}

func newGenerator(t *template, core int, seed uint64) *generator {
	g := &generator{
		t:         t,
		rng:       xrand.New(seed + uint64(core)*0x9e3779b97f4a7c15 + 1),
		core:      core,
		streamPos: make(map[uint64]uint64),
	}
	for i := range g.recentRegs {
		g.recentRegs[i] = trace.Reg(1 + i)
	}
	g.nextDst = len(g.recentRegs)
	return g
}

// pickSrc selects a source register at roughly DepMean instructions of
// dependency distance.
func (g *generator) pickSrc() trace.Reg {
	d := g.rng.Geometric(g.t.p.DepMean)
	if d > len(g.recentRegs) {
		d = len(g.recentRegs)
	}
	idx := (g.regCursor - d + 2*len(g.recentRegs)) % len(g.recentRegs)
	return g.recentRegs[idx]
}

// pickAddrSrc selects the address-generation dependency of a memory
// access: none for hoisted/induction addresses, a register otherwise.
func (g *generator) pickAddrSrc() trace.Reg {
	if g.rng.Bool(g.t.p.AddrIndep) {
		return 0
	}
	return g.pickSrc()
}

// maybeSrc returns a register dependency half the time (two-operand
// ops are common but not universal).
func (g *generator) maybeSrc() trace.Reg {
	if g.rng.Bool(0.5) {
		return 0
	}
	return g.pickSrc()
}

// allocDst claims the next destination register and publishes it to
// the dependence window (later instructions may consume it).
func (g *generator) allocDst() trace.Reg {
	r := trace.Reg(1 + g.nextDst%44)
	g.nextDst++
	g.regCursor = (g.regCursor + 1) % len(g.recentRegs)
	g.recentRegs[g.regCursor] = r
	return r
}

// allocLeafDst claims a destination register that is NOT published to
// the dependence window. Load and RMW results behave like this in
// real code: consumed by one or two nearby instructions, then dead —
// a long-latency miss must not transitively poison every later chain.
func (g *generator) allocLeafDst() trace.Reg {
	r := trace.Reg(45 + g.nextLeaf%16)
	g.nextLeaf++
	g.lastLeaf = r
	return r
}

// consumeLeaf returns the most recent leaf register once (so one ALU
// op depends on the last load), then stops handing it out.
func (g *generator) consumeLeaf() trace.Reg {
	r := g.lastLeaf
	g.lastLeaf = 0
	return r
}

func (g *generator) privateAddr() uint64 {
	base := uint64(privateBase) + uint64(g.core)*privateStep
	return base + uint64(g.rng.Intn(g.t.p.WorkingSet))&^7
}

func (g *generator) privateAtomicAddr() uint64 {
	ws := g.t.p.AtomicWS
	if ws <= 0 {
		ws = g.t.p.WorkingSet
	}
	base := uint64(privateBase) + uint64(g.core)*privateStep + atomicRegionOff
	return base + uint64(g.rng.Intn(ws))&^(lineBytes-1)
}

// WarmFilter returns the warm-start predicate for a workload: lines
// in a cold atomic region are never pre-installed.
func WarmFilter(p Params) func(core int, line uint64) bool {
	if !p.ColdAtomics {
		return nil
	}
	return func(core int, line uint64) bool {
		off := line & (privateStep - 1)
		return line < privateBase || off < atomicRegionOff
	}
}

// sharedAddr returns a read address anywhere in the shared payload
// (consumers read what any producer wrote).
func (g *generator) sharedAddr() uint64 {
	if g.t.p.SharedData <= 0 {
		return g.privateAddr()
	}
	return uint64(sharedBase) + uint64(g.rng.Intn(g.t.p.SharedData))&^7
}

// sharedWriteAddr returns a write address within this core's slice of
// the shared payload: real communication patterns (queue slots,
// per-thread buckets) have one writer per line, so writes do not
// ping-pong against each other and readers are invalidated only by
// the producing core.
func (g *generator) sharedWriteAddr() uint64 {
	if g.t.p.SharedData <= 0 {
		return g.privateAddr()
	}
	slice := g.t.p.SharedData / 32
	if slice < lineBytes {
		slice = lineBytes
	}
	base := uint64(sharedBase) + uint64(g.core%32)*uint64(slice)
	return base + uint64(g.rng.Intn(slice))&^7
}

func (g *generator) hotAddr() uint64 {
	return uint64(hotBase) + uint64(g.rng.Intn(g.t.p.HotLines))*lineBytes
}

// metaAddr returns a write-shared metadata line (queue bookkeeping):
// all cores store to these lines, nobody loads them, so their drains
// contend for ownership without triggering speculative-load squashes.
func (g *generator) metaAddr() uint64 {
	n := g.t.p.HotLines
	if n < 2 {
		n = 2
	}
	return uint64(metaBase) + uint64(g.rng.Intn(n))*lineBytes
}

func (g *generator) streamAddr(pc uint64, shared bool) uint64 {
	pos, ok := g.streamPos[pc]
	if !ok {
		// Scatter the streams: each site starts at its own offset so
		// concurrent streams do not collide on the same lines.
		h := (pc*0x9e3779b97f4a7c15 + uint64(g.core)) >> 16
		pos = (h % 4096) * 4096
	}
	g.streamPos[pc] = pos + 8
	if shared {
		if g.t.p.SharedData > 0 {
			return uint64(sharedBase) + pos%uint64(g.t.p.SharedData)&^7
		}
	}
	base := uint64(privateBase) + uint64(g.core)*privateStep
	return base + pos%uint64(g.t.p.WorkingSet)&^7
}

// emit appends the dynamic instruction(s) for one template site.
func (g *generator) emit(prog trace.Program, s *site) trace.Program {
	p := g.t.p //rowlint:ignore bigcopy per-run parameter block copied once at generation time
	switch s.kind {
	case siteALU:
		src2 := g.consumeLeaf()
		if src2 == 0 {
			src2 = g.maybeSrc()
		}
		return append(prog, trace.Instr{
			PC: s.pc, Kind: trace.IntOp,
			Src1: g.pickSrc(), Src2: src2, Dst: g.allocDst(),
		})
	case siteFP:
		src2 := g.consumeLeaf()
		if src2 == 0 {
			src2 = g.maybeSrc()
		}
		return append(prog, trace.Instr{
			PC: s.pc, Kind: trace.FPOp,
			Src1: g.pickSrc(), Src2: src2, Dst: g.allocDst(),
		})
	case siteLoad:
		addr := g.dataAddr(s)
		return append(prog, trace.Instr{
			PC: s.pc, Kind: trace.Load, Src1: g.pickAddrSrc(), Dst: g.allocLeafDst(),
			Addr: addr, Size: 8,
		})
	case siteStore:
		addr := g.dataAddr(s)
		return append(prog, trace.Instr{
			PC: s.pc, Kind: trace.Store, Src1: g.pickSrc(), Src2: g.pickAddrSrc(),
			Addr: addr, Size: 8,
		})
	case siteBranch:
		return append(prog, trace.Instr{
			PC: s.pc, Kind: trace.Branch, Src1: g.pickSrc(),
			Taken: g.rng.Bool(s.bias),
		})
	case siteAtomic:
		hot := s.hot
		if p.MixedSites > 0 && g.rng.Bool(p.MixedSites) {
			hot = !hot
		}
		var addr uint64
		if hot {
			addr = g.hotAddr()
		} else {
			addr = g.privateAtomicAddr()
		}
		atomicAddrSrc := g.pickAddrSrc()
		if hot && p.StoreBefore > 0 && g.rng.Bool(p.StoreBefore) {
			// The atomic-locality pattern (cq/tatp/barnes): write the
			// line, write the payload, then RMW the first line. Under
			// lazy execution the payload store drains between the
			// same-line store's write and the atomic's issue; during
			// that window a contending core steals the line and the
			// atomic re-acquires it, exposing a full miss. An eager
			// atomic instead locks the line while the store still
			// owns it (its GetX merges with the store's exclusive
			// prefetch). PC offsets are byte-level, so they do not
			// collide with neighbouring 4-aligned sites.
			prog = append(prog,
				trace.Instr{
					PC: s.pc - 3, Kind: trace.Store, Src1: g.pickSrc(),
					Addr: addr, Size: 8,
				},
				trace.Instr{
					PC: s.pc - 2, Kind: trace.Store, Src1: g.pickSrc(),
					Addr: g.metaAddr(), Size: 8,
				},
			)
		}
		return append(prog, trace.Instr{
			PC: s.pc, Kind: trace.Atomic, Src1: atomicAddrSrc, Dst: g.allocLeafDst(),
			Addr: addr, Size: 8, AtomicOp: p.AtomicOp,
		})
	case siteCompanionStore:
		// Emitted with the atomic itself; skip as a standalone site.
		return prog
	}
	panic(fmt.Sprintf("workload: unknown site kind %d", s.kind))
}

func (g *generator) dataAddr(s *site) uint64 {
	if s.stream {
		return g.streamAddr(s.pc, s.shared)
	}
	if s.shared {
		if s.kind == siteStore {
			return g.sharedWriteAddr()
		}
		return g.sharedAddr()
	}
	return g.privateAddr()
}

// Generate produces per-core programs of about instrs instructions
// each (0 uses the workload default). All cores share the template
// (same PCs) but draw independent address/outcome streams.
func Generate(p Params, cores, instrs int, seed uint64) []trace.Program {
	if instrs <= 0 {
		instrs = p.DefaultInstrs
	}
	if p.Synth != synthNone {
		return generateSynth(p, cores, instrs, seed) //rowlint:ignore bigcopy per-run parameter block handed to the generator once
	}
	t := buildTemplate(p, seed) //rowlint:ignore bigcopy per-run parameter block handed to the generator once
	progs := make([]trace.Program, cores)
	for c := 0; c < cores; c++ {
		g := newGenerator(t, c, seed)
		prog := make(trace.Program, 0, instrs+instrs/16)
		for len(prog) < instrs {
			for i := range t.sites {
				prog = g.emit(prog, &t.sites[i])
				if len(prog) >= instrs {
					break
				}
			}
		}
		progs[c] = prog
	}
	return progs
}
