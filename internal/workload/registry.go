package workload

import (
	"fmt"
	"sort"

	"rowsim/internal/trace"
)

// The named workloads. Parameters are tuned so the synthetic traces
// reproduce the published characteristics that drive each paper
// result: Fig. 5's atomic intensity and contention fraction, the
// locality behaviour of cq/tatp/barnes (Section VI), and the
// ILP-window shapes of Fig. 4.
var registry = map[string]Params{
	// --- PARSEC 3.0 stand-ins -------------------------------------
	"canneal": {
		Descr:         "PARSEC canneal: random-access annealing; frequent non-contended atomics that miss",
		AtomicsPer10K: 25, SharedFrac: 0.02, HotLines: 4,
		WorkingSet: 512 << 10, AtomicWS: 16 << 20, ColdAtomics: true, SharedData: 1 << 20, SharedAccFrac: 0.05,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.05,
		DepMean: 10, AddrIndep: 0.8, BiasedBranches: 0.92, AtomicOp: trace.SWAP,
		DefaultInstrs: 24000,
	},
	"freqmine": {
		Descr:         "PARSEC freqmine: FP-growth mining; non-contended atomics over a large heap",
		AtomicsPer10K: 20, SharedFrac: 0.05, HotLines: 4,
		WorkingSet: 512 << 10, AtomicWS: 8 << 20, ColdAtomics: true, SharedData: 1 << 20, SharedAccFrac: 0.05,
		LoadFrac: 0.32, StoreFrac: 0.14, BranchFrac: 0.14, FPFrac: 0.02,
		DepMean: 8, AddrIndep: 0.8, BiasedBranches: 0.9, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	"streamcluster": {
		Descr:         "PARSEC streamcluster: barrier-heavy clustering; moderately contended atomics, little ILP",
		AtomicsPer10K: 12, SharedFrac: 0.6, HotLines: 4,
		WorkingSet: 4 << 20, SharedData: 2 << 20, SharedAccFrac: 0.15,
		LoadFrac: 0.34, StoreFrac: 0.10, BranchFrac: 0.10, FPFrac: 0.12,
		DepMean: 3, AddrIndep: 0.6, BiasedBranches: 0.95, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	// --- Splash-4 stand-ins ---------------------------------------
	"barnes": {
		Descr:         "Splash-4 barnes: N-body; contended atomics with store→atomic locality",
		AtomicsPer10K: 12, SharedFrac: 0.5, HotLines: 8, StoreBefore: 0.55,
		WorkingSet: 2 << 20, SharedData: 2 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.15,
		DepMean: 6, BiasedBranches: 0.92, AtomicOp: trace.FAA, MixedSites: 0.08,
		DefaultInstrs: 24000,
	},
	"raytrace": {
		Descr:         "Splash-4 raytrace: ray tracing; contended ticket counters, short dependency windows",
		AtomicsPer10K: 25, SharedFrac: 0.8, HotLines: 4,
		WorkingSet: 2 << 20, SharedData: 2 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.32, StoreFrac: 0.10, BranchFrac: 0.12, FPFrac: 0.12,
		DepMean: 3, AddrIndep: 0.7, BiasedBranches: 0.9, AtomicOp: trace.FAA, MixedSites: 0.1,
		DefaultInstrs: 24000,
	},
	"fmm": {
		Descr:         "Splash-4 fmm: fast multipole; atomic-poor, insensitive",
		AtomicsPer10K: 2, SharedFrac: 0.3, HotLines: 8,
		WorkingSet: 4 << 20, SharedData: 1 << 20, SharedAccFrac: 0.05,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.10, FPFrac: 0.2,
		DepMean: 8, BiasedBranches: 0.93, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	"volrend": {
		Descr:         "Splash-4 volrend: volume rendering; atomic-poor, insensitive",
		AtomicsPer10K: 3, SharedFrac: 0.3, HotLines: 8,
		WorkingSet: 2 << 20, SharedData: 1 << 20, SharedAccFrac: 0.05,
		LoadFrac: 0.32, StoreFrac: 0.10, BranchFrac: 0.12, FPFrac: 0.12,
		DepMean: 8, BiasedBranches: 0.9, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	"radiosity": {
		Descr:         "Splash-4 radiosity: light transport; atomic-poor, insensitive",
		AtomicsPer10K: 3, SharedFrac: 0.4, HotLines: 8,
		WorkingSet: 2 << 20, SharedData: 1 << 20, SharedAccFrac: 0.08,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.15,
		DepMean: 8, BiasedBranches: 0.9, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	// --- fine-grain synchronization suite stand-ins ----------------
	"cq": {
		Descr:         "concurrent queue: contended but locality-friendly (store→atomic on the same line)",
		AtomicsPer10K: 50, SharedFrac: 0.7, HotLines: 4, StoreBefore: 0.9,
		WorkingSet: 256 << 10, SharedData: 1 << 20, SharedAccFrac: 0.08,
		LoadFrac: 0.28, StoreFrac: 0.16, BranchFrac: 0.10,
		DepMean: 6, AddrIndep: 0.25, BiasedBranches: 0.95, AtomicOp: trace.CAS,
		DefaultInstrs: 24000,
	},
	"tatp": {
		Descr:         "TATP telecom benchmark: contended atomics, partial locality",
		AtomicsPer10K: 30, SharedFrac: 0.3, HotLines: 6, StoreBefore: 0.7,
		WorkingSet: 1 << 20, SharedData: 2 << 20, SharedAccFrac: 0.15,
		LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.12,
		DepMean: 8, BiasedBranches: 0.9, AtomicOp: trace.CAS, MixedSites: 0.1,
		DefaultInstrs: 24000,
	},
	"tpcc": {
		Descr:         "TPC-C order processing: high-intensity contended atomics",
		AtomicsPer10K: 70, SharedFrac: 0.8, HotLines: 6,
		WorkingSet: 2 << 20, AtomicWS: 8 << 20, ColdAtomics: true, SharedData: 2 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.30, StoreFrac: 0.14, BranchFrac: 0.12,
		DepMean: 8, BiasedBranches: 0.9, AtomicOp: trace.CAS, MixedSites: 0.05,
		DefaultInstrs: 24000,
	},
	"sps": {
		Descr:         "shared counters (sps): highly contended fetch-and-add",
		AtomicsPer10K: 90, SharedFrac: 0.9, HotLines: 2,
		WorkingSet: 3 << 20, AtomicWS: 8 << 20, ColdAtomics: true, SharedData: 512 << 10, SharedAccFrac: 0.02,
		LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.10,
		DepMean: 8, BiasedBranches: 0.95, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	"pc": {
		Descr:         "producer-consumer queue: the most contended workload",
		AtomicsPer10K: 110, SharedFrac: 0.95, HotLines: 2,
		WorkingSet: 2 << 20, AtomicWS: 8 << 20, ColdAtomics: true, SharedData: 1 << 20, SharedAccFrac: 0.05,
		LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.10,
		DepMean: 8, BiasedBranches: 0.95, AtomicOp: trace.FAA,
		DefaultInstrs: 24000,
	},
	// --- atomic-poor fillers (for the all-applications average) ----
	"blackscholes": {
		Descr:         "PARSEC blackscholes: embarrassingly parallel, nearly atomic-free",
		AtomicsPer10K: 0.3, SharedFrac: 0.2, HotLines: 2,
		WorkingSet: 1 << 20, LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.08, FPFrac: 0.3,
		DepMean: 8, BiasedBranches: 0.97, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"swaptions": {
		Descr:         "PARSEC swaptions: Monte-Carlo pricing, nearly atomic-free",
		AtomicsPer10K: 0.2, SharedFrac: 0.2, HotLines: 2,
		WorkingSet: 512 << 10, LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.10, FPFrac: 0.3,
		DepMean: 6, BiasedBranches: 0.95, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"fluidanimate": {
		Descr:         "PARSEC fluidanimate: particle simulation, few atomics",
		AtomicsPer10K: 0.8, SharedFrac: 0.4, HotLines: 4,
		WorkingSet: 4 << 20, SharedData: 1 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.32, StoreFrac: 0.14, BranchFrac: 0.10, FPFrac: 0.25,
		DepMean: 6, BiasedBranches: 0.93, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"ocean": {
		Descr:         "Splash-4 ocean: stencil grids, few atomics",
		AtomicsPer10K: 0.5, SharedFrac: 0.3, HotLines: 4,
		WorkingSet: 8 << 20, SharedData: 2 << 20, SharedAccFrac: 0.15,
		LoadFrac: 0.36, StoreFrac: 0.16, BranchFrac: 0.08, FPFrac: 0.25,
		DepMean: 10, BiasedBranches: 0.97, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"radix": {
		Descr:         "Splash-4 radix sort: streaming, few atomics",
		AtomicsPer10K: 0.6, SharedFrac: 0.5, HotLines: 4,
		WorkingSet: 8 << 20, LoadFrac: 0.34, StoreFrac: 0.18, BranchFrac: 0.08,
		DepMean: 10, BiasedBranches: 0.95, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"lu": {
		Descr:         "Splash-4 lu: dense factorization, few atomics",
		AtomicsPer10K: 0.4, SharedFrac: 0.3, HotLines: 2,
		WorkingSet: 2 << 20, LoadFrac: 0.32, StoreFrac: 0.14, BranchFrac: 0.08, FPFrac: 0.3,
		DepMean: 12, BiasedBranches: 0.97, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"bodytrack": {
		Descr:         "PARSEC bodytrack: particle-filter vision, sparse atomics",
		AtomicsPer10K: 1.5, SharedFrac: 0.4, HotLines: 4,
		WorkingSet: 2 << 20, SharedData: 1 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.25,
		DepMean: 7, BiasedBranches: 0.92, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"dedup": {
		Descr:         "PARSEC dedup: pipelined compression, hash-bucket atomics",
		AtomicsPer10K: 2.5, SharedFrac: 0.5, HotLines: 8, StoreBefore: 0.3,
		WorkingSet: 4 << 20, SharedData: 2 << 20, SharedAccFrac: 0.2,
		LoadFrac: 0.34, StoreFrac: 0.16, BranchFrac: 0.10,
		DepMean: 8, BiasedBranches: 0.9, AtomicOp: trace.CAS,
		DefaultInstrs: 16000,
	},
	"ferret": {
		Descr:         "PARSEC ferret: similarity search pipeline, queue atomics",
		AtomicsPer10K: 2, SharedFrac: 0.6, HotLines: 4, StoreBefore: 0.4,
		WorkingSet: 2 << 20, SharedData: 1 << 20, SharedAccFrac: 0.15,
		LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.1,
		DepMean: 7, BiasedBranches: 0.9, AtomicOp: trace.CAS,
		DefaultInstrs: 16000,
	},
	"x264": {
		Descr:         "PARSEC x264: video encoding, nearly atomic-free",
		AtomicsPer10K: 0.3, SharedFrac: 0.3, HotLines: 2,
		WorkingSet: 4 << 20, SharedData: 2 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.34, StoreFrac: 0.16, BranchFrac: 0.10, FPFrac: 0.05,
		DepMean: 9, BiasedBranches: 0.9, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	"water": {
		Descr:         "Splash-4 water: molecular dynamics, few atomics",
		AtomicsPer10K: 1, SharedFrac: 0.4, HotLines: 4,
		WorkingSet: 1 << 20, SharedData: 512 << 10, SharedAccFrac: 0.08,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.08, FPFrac: 0.35,
		DepMean: 9, BiasedBranches: 0.96, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
	// --- synchronization-algorithm kernels --------------------------
	"tas": {
		Descr:          "test-and-set spinlock: SWAP-hammering acquisitions around short critical sections",
		Synth:          synthTAS,
		SpinMean:       3,
		CriticalLen:    12,
		NonCriticalLen: 60,
		HotLines:       2,
		SharedData:     64 << 10, SharedAccFrac: 1,
		WorkingSet: 512 << 10,
		DepMean:    8, AddrIndep: 0.6,
		AtomicOp:      trace.SWAP,
		DefaultInstrs: 20000,
	},
	"ticket": {
		Descr:          "ticket lock: one FAA per acquisition, plain-load spinning on now-serving",
		Synth:          synthTicket,
		SpinMean:       4,
		CriticalLen:    12,
		NonCriticalLen: 60,
		HotLines:       2,
		SharedData:     64 << 10, SharedAccFrac: 1,
		WorkingSet: 512 << 10,
		DepMean:    8, AddrIndep: 0.6,
		AtomicOp:      trace.FAA,
		DefaultInstrs: 20000,
	},
	"barrier": {
		Descr:          "sense-reversing barrier: work phases separated by FAA arrivals and generation spinning",
		Synth:          synthBarrier,
		SpinMean:       6,
		CriticalLen:    0,
		NonCriticalLen: 150,
		HotLines:       2,
		WorkingSet:     512 << 10,
		DepMean:        8, AddrIndep: 0.6,
		AtomicOp:      trace.FAA,
		DefaultInstrs: 20000,
	},
	"cholesky": {
		Descr:         "Splash-4 cholesky: sparse factorization, task-queue atomics",
		AtomicsPer10K: 1.2, SharedFrac: 0.5, HotLines: 4,
		WorkingSet: 2 << 20, SharedData: 1 << 20, SharedAccFrac: 0.1,
		LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.10, FPFrac: 0.25,
		DepMean: 10, BiasedBranches: 0.95, AtomicOp: trace.FAA,
		DefaultInstrs: 16000,
	},
}

// SyncKernels lists the synchronization-algorithm kernels built on
// atomics, per the paper's framing of atomics as the building blocks
// of locks and barriers.
var SyncKernels = []string{"tas", "ticket", "barrier"}

// AtomicIntensive lists the 13 workloads the paper's figures show, in
// Fig. 1's order: from the strongest eager advantage (canneal) to the
// strongest lazy advantage (pc).
var AtomicIntensive = []string{
	"canneal", "freqmine", "cq", "tatp", "barnes",
	"fmm", "volrend", "radiosity", "streamcluster",
	"raytrace", "tpcc", "sps", "pc",
}

// Fillers lists the atomic-poor workloads only included in the
// all-applications average.
var Fillers = []string{
	"blackscholes", "swaptions", "fluidanimate", "ocean", "radix", "lu",
	"bodytrack", "dedup", "ferret", "x264", "water", "cholesky",
}

// Names returns every registered workload name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the parameters of a registered workload.
func Get(name string) (Params, error) {
	p, ok := registry[name]
	if !ok {
		return Params{}, fmt.Errorf("workload: unknown workload %q (known: %v)", name, Names())
	}
	p.Name = name
	if p.AddrIndep == 0 {
		p.AddrIndep = 0.6
	}
	return p, nil //rowlint:ignore bigcopy per-run parameter block, returned once at lookup time
}

// MustGet is Get for callers with a known-valid name.
func MustGet(name string) Params {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p //rowlint:ignore bigcopy per-run parameter block, returned once at lookup time
}
