package workload_test

import (
	"fmt"

	"rowsim/internal/workload"
)

func ExampleGenerate() {
	// Generate 32 per-core traces of the paper's most contended
	// workload; generation is deterministic in the seed.
	params := workload.MustGet("pc")
	progs := workload.Generate(params, 32, 8000, 1)
	fmt.Printf("cores=%d instrs/core=%d atomics/10k=%.0f\n",
		len(progs), len(progs[0]), progs[0].AtomicsPer10K())
	// Output: cores=32 instrs/core=8000 atomics/10k=106
}

func ExampleMicrobenchVariant() {
	v := workload.MicrobenchVariant{Locked: true, Fenced: true}
	fmt.Println(v)
	// Output: lock FAA +mfence
}
