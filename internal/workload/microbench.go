package workload

import (
	"fmt"

	"rowsim/internal/trace"
	"rowsim/internal/xrand"
)

// MicrobenchVariant selects one bar of the paper's Fig. 2: an RMW
// flavour, with or without the x86 lock prefix, with or without
// explicit mfences around it.
type MicrobenchVariant struct {
	Op     trace.AtomicKind
	Locked bool // lock prefix present
	Fenced bool // explicit mfence before and after
}

// String matches the figure's labels, e.g. "lock FAA +mfence".
func (v MicrobenchVariant) String() string {
	s := v.Op.String()
	if v.Locked {
		s = "lock " + s
	}
	if v.Fenced {
		s += " +mfence"
	}
	return s
}

// MicrobenchVariants enumerates the twelve Fig. 2 bars in the paper's
// order: FAA, CAS, SWAP, each plain/locked and without/with fences.
func MicrobenchVariants() []MicrobenchVariant {
	var vs []MicrobenchVariant
	for _, op := range []trace.AtomicKind{trace.FAA, trace.CAS, trace.SWAP} {
		for _, locked := range []bool{false, true} {
			for _, fenced := range []bool{false, true} {
				vs = append(vs, MicrobenchVariant{Op: op, Locked: locked, Fenced: fenced})
			}
		}
	}
	return vs
}

// GenerateMicrobench builds the Section II-A microbenchmark trace: a
// single thread performing the RMW on randomly selected elements of
// an array far larger than the caches, so every iteration misses and
// the memory-level parallelism across iterations dominates. Each
// iteration is: a couple of index-computation ALU ops, then the RMW
// (one atomic instruction when locked, a load/op/store sequence when
// plain), optionally bracketed by mfences.
func GenerateMicrobench(v MicrobenchVariant, iterations int, seed uint64) trace.Program {
	const (
		arrayBytes = 64 << 20 // exceeds L1+L2+L3 by far
		elemSize   = 8
	)
	rng := xrand.New(seed)
	prog := make(trace.Program, 0, iterations*8)
	base := uint64(privateBase)

	pcIdx := uint64(codeBase)
	pc := func() uint64 { p := pcIdx; pcIdx += 4; return p }
	// Stable per-site PCs: build one iteration's PC layout and reuse.
	type slotPC struct{ a, b, f1, f2, ld, op, st uint64 }
	pcs := slotPC{a: pc(), b: pc(), f1: pc(), f2: pc(), ld: pc(), op: pc(), st: pc()}

	for i := 0; i < iterations; i++ {
		addr := base + uint64(rng.Intn(arrayBytes/elemSize))*elemSize
		// Index computation.
		prog = append(prog,
			trace.Instr{PC: pcs.a, Kind: trace.IntOp, Src1: 1, Dst: 2},
			trace.Instr{PC: pcs.b, Kind: trace.IntOp, Src1: 2, Dst: 3},
		)
		if v.Fenced {
			prog = append(prog, trace.Instr{PC: pcs.f1, Kind: trace.Fence})
		}
		if v.Locked || v.Op == trace.SWAP {
			// With the lock prefix (or xchgl, which always locks) the
			// RMW is a single atomic instruction.
			prog = append(prog, trace.Instr{
				PC: pcs.op, Kind: trace.Atomic, Src1: 3, Dst: 4,
				Addr: addr, Size: elemSize, AtomicOp: v.Op, NoLockPrefix: !v.Locked,
			})
		} else {
			// Plain RMW: load, operate, store.
			prog = append(prog,
				trace.Instr{PC: pcs.ld, Kind: trace.Load, Src1: 3, Dst: 4, Addr: addr, Size: elemSize},
				trace.Instr{PC: pcs.op, Kind: trace.IntOp, Src1: 4, Dst: 5},
				trace.Instr{PC: pcs.st, Kind: trace.Store, Src1: 5, Src2: 3, Addr: addr, Size: elemSize},
			)
		}
		if v.Fenced {
			prog = append(prog, trace.Instr{PC: pcs.f2, Kind: trace.Fence})
		}
	}
	return prog
}

// MicrobenchIterations extracts the iteration count implied by a
// generated program and variant (used to report cycles/iteration).
func MicrobenchIterations(prog trace.Program, v MicrobenchVariant) int {
	perIter := 3 // 2 ALU + 1 atomic
	if !(v.Locked || v.Op == trace.SWAP) {
		perIter = 5
	}
	if v.Fenced {
		perIter += 2
	}
	if len(prog)%perIter != 0 {
		panic(fmt.Sprintf("workload: program length %d not a multiple of %d", len(prog), perIter))
	}
	return len(prog) / perIter
}
