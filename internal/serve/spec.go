// Package serve implements rowserve: a long-running, multi-tenant
// simulation daemon. It accepts sweep specifications over HTTP/JSON,
// persists them into a crash-safe queue built on the lifecycle
// journal (the journal IS the queue: every cell state transition is
// an appended record and restart replays the file to reconstruct the
// exact queue), schedules cells across a bounded worker pool under the
// lifecycle supervisor (panic containment, per-attempt timeouts,
// classified retry), and serves results from a content-addressed memo
// cache so identical cells across sweeps and tenants compute once.
//
// Robustness is the design driver: admission control sheds load with
// 429 + Retry-After instead of growing without bound, SIGTERM/SIGINT
// drain gracefully to a resumable queue, and the chaostest harness
// proves that kill -9 at any point — including mid-journal-append —
// loses no accepted cell, duplicates no completed cell, and yields a
// result set byte-identical to an uninterrupted run.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"rowsim/internal/config"
	"rowsim/internal/experiments"
	"rowsim/internal/workload"
)

// Params maps sweep-parameter names to their application on the
// workload. It is the one shared definition of "what can be swept" —
// cmd/rowsweep and the daemon both use it, so a spec means the same
// cells everywhere.
var Params = map[string]func(*workload.Params, float64){
	"atomics10k":  func(p *workload.Params, v float64) { p.AtomicsPer10K = v },
	"sharedfrac":  func(p *workload.Params, v float64) { p.SharedFrac = v },
	"hotlines":    func(p *workload.Params, v float64) { p.HotLines = int(v) },
	"storebefore": func(p *workload.Params, v float64) { p.StoreBefore = v },
	"workingset":  func(p *workload.Params, v float64) { p.WorkingSet = int(v) },
	"depmean":     func(p *workload.Params, v float64) { p.DepMean = v },
	"addrindep":   func(p *workload.Params, v float64) { p.AddrIndep = v },
}

// ParamNames returns the known sweep parameters, sorted (flag help,
// error messages).
func ParamNames() []string {
	names := make([]string, 0, len(Params))
	for n := range Params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ApplyParam applies one sweep value to the workload parameters,
// failing on unknown parameter names.
func ApplyParam(p *workload.Params, name string, v float64) error {
	apply, ok := Params[name]
	if !ok {
		return fmt.Errorf("serve: unknown sweep parameter %q (known: %s)", name, strings.Join(ParamNames(), ", "))
	}
	apply(p, v)
	return nil
}

// Policies maps spec policy names to atomic-execution policies.
var Policies = map[string]config.AtomicPolicy{
	"eager": config.PolicyEager,
	"lazy":  config.PolicyLazy,
	"row":   config.PolicyRoW,
}

// DefaultPolicies is the comparison trio a spec sweeps when it names
// none explicitly, in canonical order.
var DefaultPolicies = []string{"eager", "lazy", "row"}

// Spec limits: a single spec may not expand into more cells than this
// (admission control starts at the parse boundary — a huge spec is
// rejected before it allocates anything).
const (
	MaxCellsPerSweep = 256
	maxCores         = 512
	maxInstrs        = 1_000_000
)

// SweepSpec is the JSON body of POST /v1/sweeps: one parameter swept
// over a value list for a base workload, each value simulated under
// each policy. It is the same sweep shape cmd/rowsweep runs locally.
type SweepSpec struct {
	Workload string    `json:"workload"`           // base workload name
	Param    string    `json:"param"`              // swept parameter (see Params)
	Values   []float64 `json:"values"`             // sweep points
	Policies []string  `json:"policies,omitempty"` // default eager,lazy,row
	Cores    int       `json:"cores,omitempty"`    // default 8
	Instrs   int       `json:"instrs,omitempty"`   // per-core instructions, default 4000
	Seed     uint64    `json:"seed,omitempty"`     // 0 selects the documented default seed

	// TimeoutMS, when positive, bounds the whole sweep's wall-clock
	// time from admission; cells that miss the deadline are journaled
	// canceled and re-run if the sweep is resubmitted or the daemon
	// restarts (the deadline re-arms per process).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Normalize fills defaults and validates the spec. It must be called
// before Hash, ID or Cells: normalization is part of the canonical
// form, so `{"cores":0}` and `{"cores":8}` are the same sweep.
func (s *SweepSpec) Normalize() error {
	if s.Workload == "" {
		s.Workload = "sps"
	}
	if _, err := workload.Get(s.Workload); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if s.Param == "" {
		s.Param = "sharedfrac"
	}
	if _, ok := Params[s.Param]; !ok {
		return fmt.Errorf("serve: unknown sweep parameter %q (known: %s)", s.Param, strings.Join(ParamNames(), ", "))
	}
	if len(s.Values) == 0 {
		return fmt.Errorf("serve: spec has no sweep values")
	}
	if len(s.Policies) == 0 {
		s.Policies = append([]string(nil), DefaultPolicies...)
	}
	for _, p := range s.Policies {
		if _, ok := Policies[p]; !ok {
			return fmt.Errorf("serve: unknown policy %q (known: eager, lazy, row)", p)
		}
	}
	if s.Cores == 0 {
		s.Cores = 8
	}
	if s.Cores < 1 || s.Cores > maxCores {
		return fmt.Errorf("serve: cores %d out of range [1,%d]", s.Cores, maxCores)
	}
	if s.Instrs == 0 {
		s.Instrs = 4000
	}
	if s.Instrs < 1 || s.Instrs > maxInstrs {
		return fmt.Errorf("serve: instrs %d out of range [1,%d]", s.Instrs, maxInstrs)
	}
	if s.Seed == 0 {
		s.Seed = experiments.DefaultSeed
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", s.TimeoutMS)
	}
	if n := len(s.Values) * len(s.Policies); n > MaxCellsPerSweep {
		return fmt.Errorf("serve: spec expands to %d cells, limit %d", n, MaxCellsPerSweep)
	}
	return nil
}

// Canonical returns the spec's canonical JSON encoding (normalized
// field values, fixed struct field order). Hashing and journaling use
// this form, so byte equality means spec equality.
func (s SweepSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A plain struct of scalars and slices cannot fail to encode.
		panic(fmt.Sprintf("serve: encode spec: %v", err))
	}
	return b
}

// Hash is the content hash of the normalized spec: the sweep's
// durable identity. Journals store it next to the embedded spec so
// recovery can prove the spec it replays is the spec that was
// admitted.
func (s SweepSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// ID derives the sweep's public identifier from its hash. Determinism
// is a feature: resubmitting an identical spec names the same sweep,
// making submission idempotent and retry-safe for clients.
func (s SweepSpec) ID() string {
	return "sw-" + s.Hash()[:12]
}

// Timeout returns the whole-sweep deadline, or 0 for none.
func (s SweepSpec) Timeout() time.Duration {
	return time.Duration(s.TimeoutMS) * time.Millisecond
}

// Cell is one schedulable unit of a sweep: (value, policy).
type Cell struct {
	Key    string  // stable within the sweep: "param=value/policy"
	Value  float64 // the swept value
	Policy string  // policy name (a Policies key)
}

// Cells expands the normalized spec into its cell list, in canonical
// order (values outer, policies inner). Expansion is deterministic, so
// recovery re-derives the exact same cells from the journaled spec.
func (s SweepSpec) Cells() []Cell {
	cells := make([]Cell, 0, len(s.Values)*len(s.Policies))
	for _, v := range s.Values {
		for _, p := range s.Policies {
			cells = append(cells, Cell{
				Key:    fmt.Sprintf("%s=%s/%s", s.Param, trimFloat(v), p),
				Value:  v,
				Policy: p,
			})
		}
	}
	return cells
}

// Config materializes the simulator configuration for one cell —
// the same shape cmd/rowsweep builds for its cells.
func (s SweepSpec) Config(c Cell) *config.Config {
	cfg := config.Default()
	cfg.NumCores = s.Cores
	cfg.Policy = Policies[c.Policy]
	cfg.RoW.Predictor = config.PredSaturate
	cfg.EarlyAddrCalc = cfg.Policy == config.PolicyRoW
	cfg.MaxCycles = 500_000_000
	return cfg
}

// WorkloadParams returns the cell's workload parameters: the base
// workload with the swept value applied.
func (s SweepSpec) WorkloadParams(c Cell) (workload.Params, error) {
	p, err := workload.Get(s.Workload)
	if err != nil {
		return workload.Params{}, fmt.Errorf("serve: %w", err)
	}
	if err := ApplyParam(&p, s.Param, c.Value); err != nil {
		return workload.Params{}, err
	}
	return p, nil
}

// ContentKey is the cell's content address: identical keys across any
// two sweeps or tenants denote byte-identical results, so the memo
// cache computes them once. The key covers the full simulator
// configuration, the applied workload parameters, the trace shape and
// seed, and (via experiments.ContentKey) the code revision.
func (s SweepSpec) ContentKey(c Cell) (string, error) {
	wp, err := s.WorkloadParams(c)
	if err != nil {
		return "", err
	}
	return experiments.ContentKey(s.Config(c), wp, s.Cores, s.Instrs, s.Seed), nil
}

// trimFloat renders a sweep value the way rowsweep's key format does:
// no trailing zeros, integers without a decimal point.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
