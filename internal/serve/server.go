package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rowsim/internal/checkpoint"
	"rowsim/internal/experiments"
	"rowsim/internal/lifecycle"
	"rowsim/internal/sim"
	"rowsim/internal/workload"
)

// Config tunes a Server. The zero value (plus a Journal path) is a
// working daemon: GOMAXPROCS-bounded workers, a 256-cell queue with a
// quarter reserved per tenant, three attempts per transient failure
// and a 5s drain grace.
type Config struct {
	// Journal is the queue journal path (required). An existing file
	// is recovered; a missing one is created.
	Journal string

	// Workers bounds concurrent cell simulations (<1 = GOMAXPROCS).
	Workers int

	// MaxQueue bounds total pending cells across tenants; admissions
	// that would exceed it get HTTP 429 with Retry-After instead of
	// unbounded memory growth (<1 = 256).
	MaxQueue int
	// TenantQueue bounds one tenant's pending cells — the fair-share
	// floor that keeps a single tenant from filling the whole queue
	// (<1 = MaxQueue/4, at least MaxCellsPerSweep).
	TenantQueue int

	// RunTimeout is the per-attempt wall-clock deadline handed to the
	// supervisor (0 = none); MaxAttempts its retry budget (0 = 3).
	RunTimeout  time.Duration
	MaxAttempts int

	// DrainGrace bounds how long a SIGTERM drain waits for in-flight
	// cells before canceling them into the journal (0 = 5s). Either
	// way the queue on disk is resumable and the daemon exits cleanly.
	DrainGrace time.Duration

	// JitterSeed seeds retry-backoff jitter (0 = 1).
	JitterSeed uint64

	// CheckpointEvery enables durable mid-cell checkpoints every N
	// simulated cycles (0 = off). A cell killed mid-run — crash, drain
	// overrun, retried panic — resumes from its newest valid checkpoint
	// instead of cycle zero, bounding recomputation to one interval.
	// Checkpoint files are content-addressed (the cell's memo key), so
	// they survive daemon restarts without a manifest.
	CheckpointEvery uint64
	// CheckpointDir is where per-cell checkpoint files live
	// (default: Journal + ".ckpt" when CheckpointEvery > 0).
	CheckpointDir string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 256
	}
	if c.TenantQueue < 1 {
		c.TenantQueue = c.MaxQueue / 4
		if c.TenantQueue < MaxCellsPerSweep {
			c.TenantQueue = MaxCellsPerSweep
		}
	}
	if c.TenantQueue > c.MaxQueue {
		c.TenantQueue = c.MaxQueue
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	return c
}

// Server is the rowserve daemon: queue + memo + worker pool + HTTP
// handlers. Build one with Open, serve its Handler, and call Run.
type Server struct {
	cfg   Config
	q     *queue
	memo  *memo
	sup   *lifecycle.Supervisor
	stats *statsBook

	// cellCtx is the parent of every sweep context. It is canceled
	// only by a drain-grace overrun — never directly by the Run
	// context, so a SIGTERM lets in-flight cells finish first.
	cellCtx    context.Context
	cellCancel context.CancelFunc

	draining atomic.Bool
	ready    atomic.Bool
}

// Open builds the server, creating or recovering the journal-backed
// queue. Recovery is strict: a journal produced by a different spec
// definition fails with *lifecycle.SpecMismatchError rather than
// silently running the wrong cells.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Journal == "" {
		return nil, fmt.Errorf("serve: Config.Journal is required (the journal is the queue)")
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.CheckpointDir == "" {
			cfg.CheckpointDir = cfg.Journal + ".ckpt"
		}
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
	}
	s := &Server{
		cfg:   cfg,
		memo:  newMemo(),
		stats: newStatsBook(cfg.Workers),
	}
	s.cellCtx, s.cellCancel = context.WithCancel(context.Background())
	q, resumed, requeued, err := openQueue(s.cellCtx, cfg.Journal, s.memo)
	if err != nil {
		s.cellCancel()
		return nil, err
	}
	s.q = q
	s.stats.add(func(b *statsBook) {
		b.cellsResumed += uint64(resumed)
		b.cellsRequeued += uint64(requeued)
	})
	s.sup = lifecycle.New(lifecycle.Config{
		MaxAttempts: cfg.MaxAttempts,
		RunTimeout:  cfg.RunTimeout,
		JitterSeed:  cfg.JitterSeed,
		Journal:     nil, // the queue journals cell records itself
	})
	return s, nil
}

// Run starts the worker pool and blocks until ctx is done and the
// drain completes, then closes the journal. The shutdown contract:
// stop admitting (readyz flips 503), let in-flight cells finish for up
// to DrainGrace, cancel and journal the rest as canceled, flush, and
// return nil — the queue on disk resumes exactly where this process
// stopped.
func (s *Server) Run(ctx context.Context) error {
	s.ready.Store(true)
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.worker(ctx, id)
		}(i)
	}

	<-ctx.Done()
	s.draining.Store(true)
	s.ready.Store(false)

	// Give in-flight cells DrainGrace to finish, then cancel them into
	// the journal (checkpoint: their newest record is non-terminal, so
	// a restart re-runs them).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-done:
	case <-grace.C:
		s.cellCancel()
		<-done
	}
	s.cellCancel()
	if err := s.q.close(); err != nil {
		return fmt.Errorf("serve: close journal: %w", err)
	}
	// Graceful drain is the natural compaction point: the journal is
	// quiesced and every in-flight transition is flushed. The rewrite
	// keeps only the latest record per cell (plus sweep admissions and
	// cancel markers), so a long-lived queue reloads from a file
	// proportional to its cells, not its history. Atomic: a crash mid
	// compaction leaves the original journal.
	if err := lifecycle.CompactFile(s.cfg.Journal); err != nil {
		return fmt.Errorf("serve: compact journal: %w", err)
	}
	return nil
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// worker is one pool goroutine: pop a cell under fair share, resolve
// it through the memo (single-flight) or compute it under the
// supervisor, journal the outcome, repeat. On drain it exits after the
// cell in hand.
func (s *Server) worker(ctx context.Context, id int) {
	for {
		if ctx.Err() != nil {
			return
		}
		c := s.q.pop()
		if c == nil {
			s.stats.setWorker(id, "idle", "")
			select {
			case <-ctx.Done():
				return
			case <-s.q.wake:
			}
			continue
		}
		s.runCell(id, c)
	}
}

// runCell resolves one popped cell to a terminal (or canceled) state.
func (s *Server) runCell(id int, c *cellState) {
	sw := c.sweep
	for {
		out, ok, wait := s.memo.claim(c.ckey)
		if ok {
			// Cache hit: identical cell already computed (this process
			// or recovered from the journal) — serve, don't recompute.
			s.stats.add(func(b *statsBook) { b.cellsFromCache++ })
			if out.err != "" {
				s.settle(id, c, lifecycle.Outcome{
					Status: lifecycle.StatusFailed,
					Err:    fmt.Errorf("%s", out.err),
				}, true)
			} else {
				s.settle(id, c, lifecycle.Outcome{Status: lifecycle.StatusOK, Result: out.res}, true)
			}
			return
		}
		if wait == nil {
			break // this worker is the leader; compute below
		}
		s.stats.setWorker(id, "waiting-memo", c.jkey)
		select {
		case <-wait:
			continue
		case <-sw.ctx.Done():
			s.settle(id, c, lifecycle.Outcome{Status: lifecycle.StatusCanceled, Err: sw.ctx.Err()}, false)
			return
		}
	}

	s.stats.setWorker(id, "running", c.jkey)
	spec := sw.spec
	cpath := s.ckptPath(c.ckey)
	out := s.sup.Do(sw.ctx, lifecycle.Job{Key: c.jkey, Seed: spec.Seed, Checkpoint: cpath}, func(runCtx context.Context) (sim.Result, error) {
		// Count contained panics at the attempt level, then re-raise so
		// the supervisor classifies them exactly as before.
		defer func() {
			if r := recover(); r != nil {
				s.stats.add(func(b *statsBook) { b.panics++ })
				panic(r)
			}
		}()
		wp, err := spec.WorkloadParams(c.cell)
		if err != nil {
			return sim.Result{}, err
		}
		progs := workload.Generate(wp, spec.Cores, spec.Instrs, spec.Seed)
		opts := []sim.Option{sim.WithWarmFilter(workload.WarmFilter(wp))}
		if cpath != "" {
			opts = append(opts, sim.WithCheckpoint(s.cfg.CheckpointEvery, checkpoint.Saver(cpath, c.ckey)))
		}
		sys, err := sim.New(spec.Config(c.cell), progs, opts...)
		if err != nil {
			return sim.Result{}, err
		}
		if cpath != "" {
			// Resume from a checkpoint left by a previous attempt or a
			// previous daemon process. A stale or corrupt pair is a
			// bounded loss (start fresh), never a failed cell.
			_, resumed, _, err := checkpoint.ResumeLenient(sys, cpath, c.ckey)
			if err != nil {
				return sim.Result{}, err
			}
			if resumed {
				s.stats.add(func(b *statsBook) { b.cellsCkptResumed++ })
			}
		}
		return sys.RunCtx(runCtx)
	})

	s.stats.add(func(b *statsBook) {
		b.cellsExecuted++
		if out.Attempts > 1 {
			b.retries += uint64(out.Attempts - 1)
		}
	})
	switch out.Status {
	case lifecycle.StatusOK:
		s.memo.publish(c.ckey, memoOutcome{res: out.Result})
	case lifecycle.StatusFailed:
		// Deterministic failure: every identical cell fails identically,
		// so the error is as cacheable as a result.
		s.memo.publish(c.ckey, memoOutcome{err: out.Err.Error()})
	default:
		// Degraded or canceled: not a deterministic outcome — release
		// the key so another claim can retry fresh.
		s.memo.abandon(c.ckey)
	}
	s.settle(id, c, out, false)
}

// ckptPath maps a cell's content key to its checkpoint file, or ""
// when checkpointing is off. Content addressing makes the mapping
// stable across restarts: the resumed daemon recomputes the same key
// and finds the same file, no manifest needed.
func (s *Server) ckptPath(ckey string) string {
	if s.cfg.CheckpointEvery == 0 {
		return ""
	}
	return filepath.Join(s.cfg.CheckpointDir, ckey[:16]+".ckpt")
}

// settle journals the outcome, updates counters and idles the worker.
func (s *Server) settle(id int, c *cellState, out lifecycle.Outcome, cached bool) {
	s.q.complete(c, out, cached)
	// A terminal cell no longer needs its recovery state; a canceled
	// cell of a deleted sweep will never run again, so its checkpoint
	// goes too. A drain-canceled cell keeps its checkpoint — that is
	// the state the restart resumes from.
	if p := s.ckptPath(c.ckey); p != "" && (out.Status.Terminal() || s.q.sweepCanceled(c.sweep)) {
		_ = checkpoint.Remove(p)
	}
	s.stats.add(func(b *statsBook) {
		switch out.Status {
		case lifecycle.StatusOK:
			b.okN++
		case lifecycle.StatusFailed:
			b.failedN++
		case lifecycle.StatusDegraded:
			b.degradedN++
		case lifecycle.StatusCanceled:
			b.cancN++
		}
	})
	s.stats.setWorker(id, "idle", "")
}

// admissionRetryAfter estimates when capacity frees up: queue depth
// over worker count, clamped to [1s, 120s]. Deliberately coarse — the
// point of Retry-After is to spread thundering herds, not to promise a
// slot.
func (s *Server) admissionRetryAfter(pending int) int {
	sec := pending / s.cfg.Workers
	if sec < 1 {
		sec = 1
	}
	if sec > 120 {
		sec = 120
	}
	return sec
}

// Snapshot assembles the /v1/stats document.
func (s *Server) Snapshot() Stats {
	hits, misses, entries := s.memo.counters()
	s.q.mu.Lock()
	depth := s.q.pendingN
	tenants := make(map[string]int, len(s.q.tenantFIFO))
	for t, fifo := range s.q.tenantFIFO {
		if len(fifo) > 0 {
			tenants[t] = len(fifo)
		}
	}
	s.q.mu.Unlock()

	b := s.stats
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		UptimeSeconds:    time.Since(b.start).Seconds(),
		CodeRev:          experiments.CodeRev(),
		Journal:          s.cfg.Journal,
		Draining:         s.draining.Load(),
		QueueDepth:       depth,
		TenantDepths:     tenants,
		SweepsAccepted:   b.sweepsAccepted,
		SweepsDeduped:    b.sweepsDeduped,
		SweepsCanceled:   b.sweepsCanceled,
		RejectedLoad:     b.rejectedLoad,
		RejectedDrain:    b.rejectedDrain,
		CellsExecuted:    b.cellsExecuted,
		CellsFromCache:   b.cellsFromCache,
		CellsResumed:     b.cellsResumed,
		CellsRequeued:    b.cellsRequeued,
		CellsCkptResumed: b.cellsCkptResumed,
		OutcomeOK:        b.okN,
		OutcomeFailed:    b.failedN,
		OutcomeDegraded:  b.degradedN,
		OutcomeCanceled:  b.cancN,
		Retries:          b.retries,
		Panics:           b.panics,
		CacheHits:        hits,
		CacheMisses:      misses,
		CacheEntries:     entries,
		Workers:          append([]WorkerState(nil), b.workers...),
	}
	if total := hits + misses; total > 0 {
		st.CacheHitRate = float64(hits) / float64(total)
	}
	return st
}
