package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func del(t *testing.T, hs *httptest.Server, tenant, id string) (*http.Response, SweepView) {
	t.Helper()
	req, err := http.NewRequest("DELETE", hs.URL+"/v1/sweeps/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v SweepView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

// TestServerDeleteSweep: DELETE cancels a queued sweep's pending cells,
// is idempotent, is tenant-scoped, and survives a restart — the
// journaled cancel marker replays, so the cells are not re-enqueued.
func TestServerDeleteSweep(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "q.jsonl")
	srv, hs := testServer(t, Config{Journal: journal}, false) // no workers: cells stay pending

	_, v := submit(t, hs, "alice", testSpec(t, 0.2, 0.8)) // 4 cells

	if resp, _ := del(t, hs, "alice", "sw-missing"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE of a missing sweep = %d, want 404", resp.StatusCode)
	}
	if resp, _ := del(t, hs, "bob", v.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant DELETE = %d, want 404", resp.StatusCode)
	}

	resp, dv := del(t, hs, "alice", v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	if dv.Status != "canceled" || dv.Canceled != 4 || dv.Pending != 0 {
		t.Fatalf("view after DELETE = %+v, want 4 canceled", dv)
	}
	if st := srv.Snapshot(); st.QueueDepth != 0 || st.SweepsCanceled != 1 {
		t.Errorf("stats after DELETE: depth=%d canceled=%d", st.QueueDepth, st.SweepsCanceled)
	}

	// Idempotent: a second DELETE succeeds without double-counting.
	resp2, dv2 := del(t, hs, "alice", v.ID)
	if resp2.StatusCode != http.StatusOK || dv2.Status != "canceled" {
		t.Fatalf("second DELETE = %d %+v, want 200 canceled", resp2.StatusCode, dv2)
	}
	if st := srv.Snapshot(); st.SweepsCanceled != 1 {
		t.Errorf("sweeps_canceled = %d after idempotent re-delete, want 1", st.SweepsCanceled)
	}

	// Results of a canceled sweep are never final.
	if r, _ := get(t, hs, "alice", "/v1/sweeps/"+v.ID+"/results"); r.StatusCode != http.StatusConflict {
		t.Errorf("results of a canceled sweep = %d, want 409", r.StatusCode)
	}

	// Restart on the same journal: the cancel marker replays — the
	// sweep stays canceled and none of its cells come back as pending.
	if err := srv.q.close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Open(Config{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.q.close()
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	r, body := get(t, hs2, "alice", "/v1/sweeps/"+v.ID)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET after restart: %d %s", r.StatusCode, body)
	}
	var rv SweepView
	if err := json.Unmarshal(body, &rv); err != nil {
		t.Fatal(err)
	}
	if rv.Status != "canceled" || rv.Canceled != 4 || rv.Pending != 0 {
		t.Errorf("view after restart = %+v, want canceled to persist", rv)
	}
	if st := srv2.Snapshot(); st.CellsRequeued != 0 {
		t.Errorf("requeued %d cells of a deleted sweep, want 0", st.CellsRequeued)
	}
}

// TestServerDeleteDoneSweep: a finished sweep refuses deletion with
// 409 — its results are final and stay retrievable.
func TestServerDeleteDoneSweep(t *testing.T) {
	_, hs := testServer(t, Config{}, true)
	_, v := submit(t, hs, "", testSpec(t, 0.5))
	waitDone(t, hs, "", v.ID)
	resp, _ := del(t, hs, "", v.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE of a done sweep = %d, want 409", resp.StatusCode)
	}
	if r, _ := get(t, hs, "", "/v1/sweeps/"+v.ID+"/results"); r.StatusCode != http.StatusOK {
		t.Errorf("results after refused DELETE = %d, want 200", r.StatusCode)
	}
}

// TestServerDeleteRunningSweep: deleting a sweep with in-flight cells
// cancels their context; the workers settle them as canceled and the
// sweep converges to "canceled" without waiting for the cells to run
// to completion.
func TestServerDeleteRunningSweep(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2}, true)
	// A big-instruction spec so cells are still running when the DELETE
	// lands (and if they happen to finish first, the DELETE still
	// observes a consistent canceled-or-conflict outcome).
	spec := SweepSpec{Values: []float64{0.1, 0.5, 0.9}, Policies: []string{"eager", "lazy", "row"}, Cores: 4, Instrs: 20000}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	_, v := submit(t, hs, "", spec)
	resp, _ := del(t, hs, "", v.ID)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE of a running sweep = %d, want 200 (or 409 if it raced to done)", resp.StatusCode)
	}
	if resp.StatusCode == http.StatusConflict {
		return // the sweep finished before the DELETE landed
	}
	waitFor(t, func() bool {
		r, body := get(t, hs, "", "/v1/sweeps/"+v.ID)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET: %d", r.StatusCode)
		}
		var sv SweepView
		if err := json.Unmarshal(body, &sv); err != nil {
			t.Fatal(err)
		}
		return sv.Status == "canceled" && sv.Running == 0 && sv.Pending == 0
	}, "deleted sweep never converged to canceled")
}

// TestServerCompactsJournalOnDrain: a graceful drain rewrites the
// journal to its minimal form — one record per cell instead of the
// full transition history — and the compacted journal replays into
// byte-identical results.
func TestServerCompactsJournalOnDrain(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "q.jsonl")
	spec := testSpec(t, 0.3, 0.7) // 4 cells

	srv1, err := Open(Config{Journal: journal, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv1.Run(ctx) }()
	_, v := submit(t, hs1, "", spec)
	waitDone(t, hs1, "", v.ID)
	_, want := get(t, hs1, "", "/v1/sweeps/"+v.ID+"/results")
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	hs1.Close()

	// 4 cells × (running + terminal) + meta + sweep = 10 lines before
	// compaction; after, exactly meta + sweep + one line per cell.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 2+len(spec.Cells()) {
		t.Errorf("compacted journal has %d lines, want %d", lines, 2+len(spec.Cells()))
	}

	// The compacted journal replays into the same queue: results are
	// byte-identical and nothing is re-run.
	srv2, err := Open(Config{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.q.close()
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	r, got := get(t, hs2, "", "/v1/sweeps/"+v.ID+"/results")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("results after compaction: %d %s", r.StatusCode, got)
	}
	if string(want) != string(got) {
		t.Errorf("results diverge across compact+restart:\n--- before ---\n%s--- after ---\n%s", want, got)
	}
	if st := srv2.Snapshot(); st.CellsResumed != 4 || st.CellsRequeued != 0 {
		t.Errorf("after compacted replay: resumed=%d requeued=%d, want 4 and 0", st.CellsResumed, st.CellsRequeued)
	}
}

// TestServerCheckpointLifecycle: with checkpointing on, cells run to
// completion and leave no checkpoint files behind (terminal cells
// clean up); a deleted sweep's checkpoints are removed too.
func TestServerCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "q.jsonl")
	srv, hs := testServer(t, Config{Journal: journal, CheckpointEvery: 256}, true)

	_, v := submit(t, hs, "", testSpec(t, 0.4))
	waitDone(t, hs, "", v.ID)
	waitFor(t, func() bool {
		ents, err := os.ReadDir(srv.cfg.CheckpointDir)
		if err != nil {
			t.Fatal(err)
		}
		return len(ents) == 0
	}, "checkpoints of terminal cells were not removed")

	// A deleted sweep drops its cells' checkpoints as well.
	_, v2 := submit(t, hs, "", testSpec(t, 0.6))
	resp, _ := del(t, hs, "", v2.ID)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	waitFor(t, func() bool {
		ents, err := os.ReadDir(srv.cfg.CheckpointDir)
		if err != nil {
			t.Fatal(err)
		}
		return len(ents) == 0
	}, "checkpoints of a deleted sweep were not removed")
}
