package serve

import (
	"sync"

	"rowsim/internal/sim"
)

// memoOutcome is one finished computation: the result of a cell, or
// the deterministic failure every identical cell would reproduce.
type memoOutcome struct {
	res sim.Result
	err string // non-empty for deterministic (permanent) failures
}

// memo is the content-addressed result cache with single-flight
// deduplication: the first worker to claim a content key computes it,
// concurrent claims for the same key park until the leader publishes,
// and later claims are served instantly. Keys embed the code revision
// (see experiments.ContentKey), so a cache never serves results across
// simulator versions.
type memo struct {
	mu       sync.Mutex
	done     map[string]memoOutcome
	inflight map[string]chan struct{} // closed when the leader publishes

	hits, misses uint64 // claim outcomes (leader claims count as misses)
}

func newMemo() *memo {
	return &memo{
		done:     make(map[string]memoOutcome),
		inflight: make(map[string]chan struct{}),
	}
}

// claim looks up key. Exactly one of three shapes comes back:
//   - ok=true: out is the cached outcome (a hit).
//   - ok=false, wait=nil: the caller is the leader and must compute the
//     cell, then publish (or abandon) the key.
//   - ok=false, wait!=nil: another worker is computing the key; receive
//     on wait, then claim again.
func (m *memo) claim(key string) (out memoOutcome, ok bool, wait <-chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if out, ok := m.done[key]; ok {
		m.hits++
		return out, true, nil
	}
	if ch, busy := m.inflight[key]; busy {
		return memoOutcome{}, false, ch
	}
	m.inflight[key] = make(chan struct{})
	m.misses++
	return memoOutcome{}, false, nil
}

// publish records the leader's outcome and releases every parked
// claimer.
func (m *memo) publish(key string, out memoOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[key] = out
	if ch, ok := m.inflight[key]; ok {
		close(ch)
		delete(m.inflight, key)
	}
}

// abandon releases a claimed key without an outcome (the leader was
// canceled mid-computation). Parked claimers wake and re-claim; the
// next one becomes the new leader.
func (m *memo) abandon(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ch, ok := m.inflight[key]; ok {
		close(ch)
		delete(m.inflight, key)
	}
}

// seed pre-fills the cache (journal recovery: completed cells of
// unfinished sweeps re-serve without recomputation). It never
// overwrites a present entry.
func (m *memo) seed(key string, out memoOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.done[key]; !ok {
		m.done[key] = out
	}
}

// counters returns (hits, misses, entries).
func (m *memo) counters() (hits, misses uint64, entries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, len(m.done)
}
