package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strconv"

	"rowsim/internal/checkpoint"
	"rowsim/internal/sim"
)

// API types. Results documents are canonical: cells in spec order,
// fixed field order, no timestamps or attempt counts — so a sweep's
// results are byte-identical whether the daemon ran uninterrupted or
// was kill -9'd and restarted ten times (the chaos gate compares
// exactly these bytes).

// SweepView is the status document for one sweep.
type SweepView struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	SpecHash string `json:"spec_hash"`
	Status   string `json:"status"` // queued | running | done | canceled
	Cells    int    `json:"cells"`
	Pending  int    `json:"pending"`
	Running  int    `json:"running"`
	OK       int    `json:"ok"`
	Failed   int    `json:"failed"`
	Degraded int    `json:"degraded"`
	Canceled int    `json:"canceled"`
	Results  string `json:"results,omitempty"` // href, set once done
}

// CellResult is one cell of a results document.
type CellResult struct {
	Key    string      `json:"key"`
	Status string      `json:"status"`
	Error  string      `json:"error,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
}

// ResultsDoc is the canonical results document of a finished sweep.
type ResultsDoc struct {
	ID       string       `json:"id"`
	SpecHash string       `json:"spec_hash"`
	Cells    []CellResult `json:"cells"`
}

// errorDoc is every non-2xx body: {"error": "..."}.
type errorDoc struct {
	Error string `json:"error"`
}

var tenantRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,31}$`)

// tenantOf extracts and validates the caller's tenant from the
// X-Tenant header (default "default"). Tenancy is cooperative
// namespacing, not authentication: it scopes queues, fair share and
// sweep visibility.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return "default", nil
	}
	if !tenantRe.MatchString(t) {
		return "", fmt.Errorf("invalid X-Tenant %q (want [a-z0-9-]{1,32})", t)
	}
	return t, nil
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/sweeps: validate, shed load, durably admit.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.draining.Load() {
		s.stats.add(func(b *statsBook) { b.rejectedDrain++ })
		writeErr(w, http.StatusServiceUnavailable, "draining: not admitting new sweeps")
		return
	}
	if err := s.q.journalErr(); err != nil {
		// A queue that cannot persist admissions must not accept them:
		// an unjournaled 202 would be lost by the next crash.
		s.stats.add(func(b *statsBook) { b.rejectedDrain++ })
		writeErr(w, http.StatusServiceUnavailable, "journal unavailable: %v", err)
		return
	}
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission control: bounded total queue depth plus a per-tenant
	// fair-share bound. Over either limit the submission is shed with
	// 429 + Retry-After — in-flight work keeps completing, memory does
	// not grow, and the client knows when to come back.
	newCells := len(spec.Cells())
	total, mine := s.q.depths(tenant)
	if _, exists := s.q.get(tenant, sweepID(tenant, spec)); !exists {
		if total+newCells > s.cfg.MaxQueue || mine+newCells > s.cfg.TenantQueue {
			s.stats.add(func(b *statsBook) { b.rejectedLoad++ })
			w.Header().Set("Retry-After", strconv.Itoa(s.admissionRetryAfter(total)))
			writeErr(w, http.StatusTooManyRequests,
				"queue full (%d pending, tenant %d/%d, total limit %d): retry later",
				total, mine, s.cfg.TenantQueue, s.cfg.MaxQueue)
			return
		}
	}

	sw, created, err := s.q.admit(s.cellCtx, tenant, spec)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
		s.stats.add(func(b *statsBook) { b.sweepsAccepted++ })
	} else {
		s.stats.add(func(b *statsBook) { b.sweepsDeduped++ })
	}
	writeJSON(w, code, s.viewOf(sw))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	views := []SweepView{}
	for _, sw := range s.q.list(tenant) {
		views = append(views, s.viewOf(sw))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, ok := s.q.get(tenant, r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such sweep for this tenant")
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(sw))
}

// handleDelete is DELETE /v1/sweeps/{id}: permanently cancel a sweep.
// Pending cells are canceled and journaled, running cells get their
// context canceled and settle through the worker path, and the
// journaled cancel marker makes the deletion survive restarts.
// Idempotent (re-deleting a canceled sweep is 200); a done sweep is
// 409 — its results are final and stay retrievable.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.q.journalErr(); err != nil {
		// A cancellation that cannot be journaled would silently undo
		// itself on restart; refuse instead.
		writeErr(w, http.StatusServiceUnavailable, "journal unavailable: %v", err)
		return
	}
	sw, first, err := s.q.cancel(tenant, r.PathValue("id"))
	switch {
	case err == errSweepNotFound:
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	case err == errSweepDone:
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if first {
		s.stats.add(func(b *statsBook) { b.sweepsCanceled++ })
	}
	// Canceled cells will never run again in any process: drop their
	// recovery checkpoints (idempotent; running cells that settle later
	// clean up after themselves in settle).
	for _, c := range sw.cells {
		if p := s.ckptPath(c.ckey); p != "" {
			_ = checkpoint.Remove(p)
		}
	}
	writeJSON(w, http.StatusOK, s.viewOf(sw))
}

// handleResults is GET /v1/sweeps/{id}/results: the canonical results
// document, available only once every cell is terminal.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantOf(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, ok := s.q.get(tenant, r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such sweep for this tenant")
		return
	}
	s.q.mu.Lock()
	status := sw.statusString()
	doc := ResultsDoc{ID: sw.id, SpecHash: sw.spec.Hash()}
	if status == "done" {
		for _, c := range sw.cells {
			cr := CellResult{Key: c.cell.Key, Status: string(c.status), Error: c.errMsg}
			if c.result != nil {
				res := *c.result
				cr.Result = &res
			}
			doc.Cells = append(doc.Cells, cr)
		}
	}
	s.q.mu.Unlock()
	if status != "done" {
		writeErr(w, http.StatusConflict, "sweep is %s, results not final", status)
		return
	}
	// Cells are already in canonical spec order; keep the sort as a
	// belt-and-suspenders guarantee of byte-stable output.
	sort.SliceStable(doc.Cells, func(i, j int) bool { return doc.Cells[i].Key < doc.Cells[j].Key })
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleHealthz is liveness: the process is up and serving HTTP. It
// stays 200 during a drain (the process is healthy, just leaving).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: recovered, admitting, journal writable.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeErr(w, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		writeErr(w, http.StatusServiceUnavailable, "starting")
	case s.q.journalErr() != nil:
		writeErr(w, http.StatusServiceUnavailable, "journal unavailable: %v", s.q.journalErr())
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// viewOf snapshots a sweep's status document.
func (s *Server) viewOf(sw *sweepState) SweepView {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	pending, running, ok, failed, degraded, canceled := sw.counts()
	v := SweepView{
		ID:       sw.id,
		Tenant:   sw.tenant,
		SpecHash: sw.spec.Hash(),
		Status:   sw.statusString(),
		Cells:    len(sw.cells),
		Pending:  pending,
		Running:  running,
		OK:       ok,
		Failed:   failed,
		Degraded: degraded,
		Canceled: canceled,
	}
	if v.Status == "done" {
		v.Results = "/v1/sweeps/" + sw.id + "/results"
	}
	return v
}
