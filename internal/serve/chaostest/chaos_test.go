// Package chaostest kills the real rowserve binary with SIGKILL at
// randomized points — including mid-journal-append — restarts it, and
// asserts the crash-safety contract end to end:
//
//   - no accepted cell is lost (every admitted cell reaches a terminal
//     state once the daemon is finally allowed to finish),
//   - no completed cell is duplicated (at most one terminal ok record
//     per cell key across every restart),
//   - the final results document is byte-identical to an uninterrupted
//     run of the same spec.
//
// The harness is a subprocess test on purpose: in-process restarts
// (internal/serve tests) cannot prove survival of a real SIGKILL,
// which never runs deferred code, never flushes buffers, and can land
// between any two syscalls.
package chaostest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosSpec expands to 9 cells (3 values x eager/lazy/row), small
// enough that a full run takes well under a second but long enough
// that early kills usually land mid-sweep.
const chaosSpec = `{"workload":"sps","param":"sharedfrac","values":[0.1,0.5,0.9],"cores":2,"instrs":800}`

const chaosCells = 9

var (
	buildOnce sync.Once
	buildErr  error
	binPath   string
)

// rowserveBin builds cmd/rowserve once per test binary.
func rowserveBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		dir, err := os.MkdirTemp("", "rowserve-chaos-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "rowserve")
		cmd := exec.Command("go", "build", "-o", binPath, "rowsim/cmd/rowserve")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build rowserve: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// daemon is one running rowserve subprocess.
type daemon struct {
	cmd *exec.Cmd
	url string
	log *bytes.Buffer
}

// startDaemon launches rowserve on a free port and waits for /readyz.
// Extra flags (e.g. -checkpoint-every) are appended to the base set.
func startDaemon(t *testing.T, journal string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	d := &daemon{log: &bytes.Buffer{}}
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-journal", journal, "-workers", "2"}, extra...)
	d.cmd = exec.Command(rowserveBin(t), args...)
	d.cmd.Stdout = d.log
	d.cmd.Stderr = d.log
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			d.url = "http://" + string(addr)
			resp, err := http.Get(d.url + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return d
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.kill()
	t.Fatalf("rowserve never became ready; log:\n%s", d.log)
	return nil
}

// kill delivers SIGKILL: no deferred code, no flushes, no goodbye.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

func (d *daemon) submit(t *testing.T, spec string) (code int, id string) {
	t.Helper()
	resp, err := http.Post(d.url+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v; log:\n%s", err, d.log)
	}
	defer resp.Body.Close()
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, v.ID
}

// waitDone polls the sweep until done and returns the results bytes.
func (d *daemon) waitDone(t *testing.T, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatalf("poll: %v; log:\n%s", err, d.log)
		}
		var v struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" {
			resp, err := http.Get(d.url + "/v1/sweeps/" + id + "/results")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("results: %d %s", resp.StatusCode, buf.Bytes())
			}
			return buf.Bytes()
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s never finished; log:\n%s", id, d.log)
	return nil
}

// TestChaosKill9 is the chaos gate. One clean run establishes the
// reference bytes; the chaos run is SIGKILLed at randomized points
// across several restarts (with a torn journal append injected between
// two of them) and must converge to the identical document.
func TestChaosKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness; skipped in -short")
	}
	rowserveBin(t) // fail fast if the build fails

	// Reference: uninterrupted run.
	cleanJournal := filepath.Join(t.TempDir(), "clean.jsonl")
	clean := startDaemon(t, cleanJournal)
	code, id := clean.submit(t, chaosSpec)
	if code != http.StatusAccepted {
		t.Fatalf("clean submit = %d, want 202", code)
	}
	want := clean.waitDone(t, id)
	clean.kill()

	// Chaos: same spec, kill -9 at seeded-random points. The seed is
	// overridable so a failing schedule can be replayed exactly.
	seed := int64(1)
	if s := os.Getenv("ROWSIM_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ROWSIM_CHAOS_SEED %q", s)
		}
		seed = v
	}
	t.Logf("chaos schedule seed %d (replay with ROWSIM_CHAOS_SEED)", seed)
	rng := rand.New(rand.NewSource(seed))

	journal := filepath.Join(t.TempDir(), "chaos.jsonl")
	const rounds = 4
	for round := 0; round < rounds; round++ {
		d := startDaemon(t, journal)
		if round == 0 {
			code, chaosID := d.submit(t, chaosSpec)
			if code != http.StatusAccepted {
				t.Fatalf("chaos submit = %d, want 202", code)
			}
			if chaosID != id {
				t.Fatalf("chaos sweep ID %s != clean %s (spec identity must be deterministic)", chaosID, id)
			}
		}
		// Let it work for a random slice of the sweep, then murder it.
		time.Sleep(time.Duration(1+rng.Intn(120)) * time.Millisecond)
		d.kill()

		if round == 1 {
			// Crash mid-append: a torn, newline-less half record at the
			// tail. Recovery must truncate it, not choke or misparse.
			f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`{"kind":"cell","sweep":"` + id + `","key":"torn-`); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}

	// Final restart: no more kills, the sweep must complete.
	d := startDaemon(t, journal)
	defer d.kill()
	got := d.waitDone(t, id)
	if !bytes.Equal(want, got) {
		t.Errorf("results after %d SIGKILLs diverge from the uninterrupted run:\n--- clean ---\n%s--- chaos ---\n%s",
			rounds, want, got)
	}

	auditJournal(t, journal, id)
}

// ckptSpec is heavier than chaosSpec so cells live long enough to
// cross many checkpoint intervals: kills land while checkpoint files
// are actively being written and rotated.
const ckptSpec = `{"workload":"sps","param":"sharedfrac","values":[0.2,0.8],"cores":2,"instrs":3000}`

const ckptCells = 6

// TestChaosCheckpointKill9 is the mid-checkpoint-write chaos gate. The
// daemon runs with a tight checkpoint cadence so saves are in flight
// almost continuously; SIGKILL therefore lands between any two syscalls
// of the save path (temp write, fsync, .prev rotation, rename). One
// round additionally corrupts the newest checkpoint of every cell on
// disk, forcing resume to fall back to the .prev generation or start
// the cell fresh. Whatever mix of torn, stale, and missing checkpoints
// recovery sees, the final results document must be byte-identical to
// an uninterrupted, never-checkpointed run.
func TestChaosCheckpointKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness; skipped in -short")
	}
	rowserveBin(t)

	// Reference: uninterrupted run with checkpointing off. Resuming
	// from checkpoints must not be observable in the results.
	cleanJournal := filepath.Join(t.TempDir(), "clean.jsonl")
	clean := startDaemon(t, cleanJournal)
	code, id := clean.submit(t, ckptSpec)
	if code != http.StatusAccepted {
		t.Fatalf("clean submit = %d, want 202", code)
	}
	want := clean.waitDone(t, id)
	clean.kill()

	seed := int64(1)
	if s := os.Getenv("ROWSIM_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ROWSIM_CHAOS_SEED %q", s)
		}
		seed = v
	}
	t.Logf("chaos schedule seed %d (replay with ROWSIM_CHAOS_SEED)", seed)
	rng := rand.New(rand.NewSource(seed))

	journal := filepath.Join(t.TempDir(), "chaos.jsonl")
	ckptDir := journal + ".ckpt" // the daemon's default layout
	ckptFlags := []string{"-checkpoint-every", "512"}
	const rounds = 3
	for round := 0; round < rounds; round++ {
		d := startDaemon(t, journal, ckptFlags...)
		if round == 0 {
			code, chaosID := d.submit(t, ckptSpec)
			if code != http.StatusAccepted {
				t.Fatalf("chaos submit = %d, want 202", code)
			}
			if chaosID != id {
				t.Fatalf("chaos sweep ID %s != clean %s", chaosID, id)
			}
		}
		if round == 1 {
			// Corruption round: kill the instant checkpoints exist so
			// a running cell cannot finish and clean them up first,
			// then corrupt every surviving newest-generation file —
			// recovery must fall back to .prev or recompute, silently.
			// The appear-then-settle race is real (a cell can complete
			// between ReadDir and SIGKILL), so retry until a kill
			// actually strands checkpoints on disk.
			shredded := 0
			for attempt := 0; attempt < 10 && shredded == 0; attempt++ {
				if attempt > 0 {
					d = startDaemon(t, journal, ckptFlags...)
				}
				waitForCheckpoint(t, ckptDir, 10*time.Second)
				d.kill()
				ents, err := os.ReadDir(ckptDir)
				if err != nil && !os.IsNotExist(err) {
					t.Fatal(err)
				}
				for _, e := range ents {
					if strings.HasSuffix(e.Name(), ".ckpt") {
						p := filepath.Join(ckptDir, e.Name())
						if err := os.WriteFile(p, []byte("shredded"), 0o644); err != nil {
							t.Fatal(err)
						}
						shredded++
					}
				}
			}
			if shredded == 0 {
				t.Fatal("no checkpoint files survived any kill; the fallback path was not exercised")
			}
			t.Logf("corrupted %d checkpoint file(s) after round %d", shredded, round)
			continue
		}
		// Long enough for cells to start and checkpoint repeatedly,
		// short enough that the sweep is still in flight when killed.
		time.Sleep(time.Duration(30+rng.Intn(250)) * time.Millisecond)
		d.kill()
	}

	// Final restart: no more kills; the sweep completes from whatever
	// checkpoints survived.
	d := startDaemon(t, journal, ckptFlags...)
	defer d.kill()
	got := d.waitDone(t, id)
	if !bytes.Equal(want, got) {
		t.Errorf("results after %d mid-checkpoint SIGKILLs diverge from the uninterrupted run:\n--- clean ---\n%s--- chaos ---\n%s",
			rounds, want, got)
	}

	// Terminal cells delete their checkpoints; once the sweep is done
	// the directory must drain to empty (removal races settle briefly).
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(ckptDir)
		if err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			names := make([]string, 0, len(ents))
			for _, e := range ents {
				names = append(names, e.Name())
			}
			t.Errorf("checkpoint dir not drained after completion: %v", names)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitForCheckpoint polls until dir contains at least one primary
// checkpoint file (suffix .ckpt — not a .tmp in progress or a rotated
// .prev, which resume alone cannot use).
func waitForCheckpoint(t *testing.T, dir string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ents, err := os.ReadDir(dir)
		if err == nil {
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".ckpt") {
					return
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no primary checkpoint appeared in %s within %v", dir, timeout)
}

// auditJournal re-reads the chaos journal and enforces the queue's
// durability invariants record by record.
func auditJournal(t *testing.T, path, sweepID string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	okCount := make(map[string]int)
	terminal := make(map[string]string)
	sweeps := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	torn := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Kind   string `json:"kind"`
			Sweep  string `json:"sweep"`
			Key    string `json:"key"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			// The injected torn tail is truncated by recovery, but the
			// process may have been killed mid-append on its own too; a
			// non-final unparseable line would be corruption.
			torn++
			continue
		}
		switch rec.Kind {
		case "sweep":
			sweeps++
		case "cell":
			switch rec.Status {
			case "ok":
				okCount[rec.Key]++
				terminal[rec.Key] = "ok"
			case "failed", "degraded":
				terminal[rec.Key] = rec.Status
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if sweeps != 1 {
		t.Errorf("journal has %d sweep records, want 1 (admission is idempotent)", sweeps)
	}
	if torn > 0 {
		t.Logf("journal contains %d unparseable line(s) — tolerated only as a truncated tail", torn)
	}
	// No duplication: a completed cell is never recomputed, so at most
	// one ok record per key survives any number of restarts.
	for key, n := range okCount {
		if n > 1 {
			t.Errorf("cell %s has %d ok records: completed work was recomputed", key, n)
		}
	}
	// No loss: every admitted cell reached a terminal ok state.
	if len(terminal) != chaosCells {
		t.Errorf("journal shows %d terminal cells, want %d", len(terminal), chaosCells)
	}
	for key, st := range terminal {
		if st != "ok" {
			t.Errorf("cell %s ended %s, want ok", key, st)
		}
		if !strings.HasPrefix(key, sweepID+"/") {
			t.Errorf("cell key %s does not belong to sweep %s", key, sweepID)
		}
	}
}
