package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

// testServer opens a server on a fresh journal and, when run is true,
// starts its worker pool. Cleanup drains and waits for Run to return.
func testServer(t *testing.T, cfg Config, run bool) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Journal == "" {
		cfg.Journal = filepath.Join(t.TempDir(), "q.jsonl")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 30 * time.Second // tests always finish their cells
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	if run {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- srv.Run(ctx) }()
		t.Cleanup(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("Run: %v", err)
			}
		})
	}
	return srv, hs
}

func submit(t *testing.T, hs *httptest.Server, tenant string, spec SweepSpec) (int, SweepView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", hs.URL+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v SweepView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, v
}

func get(t *testing.T, hs *httptest.Server, tenant, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", hs.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// waitDone polls a sweep until it reports done (tiny cells: this is
// tens of milliseconds, the deadline is pure headroom).
func waitDone(t *testing.T, hs *httptest.Server, tenant, id string) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, hs, tenant, "/v1/sweeps/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET sweep: %d %s", resp.StatusCode, body)
		}
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return SweepView{}
}

// TestServerEndToEnd: submit → compute → canonical results, with
// idempotent resubmission before and after completion.
func TestServerEndToEnd(t *testing.T) {
	_, hs := testServer(t, Config{}, true)
	spec := testSpec(t, 0.2, 0.8) // 4 tiny cells

	code, v := submit(t, hs, "", spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	if v.Tenant != "default" || v.Cells != 4 {
		t.Fatalf("view = %+v", v)
	}
	done := waitDone(t, hs, "", v.ID)
	if done.OK != 4 || done.Failed != 0 || done.Results == "" {
		t.Fatalf("finished view = %+v, want 4 ok and a results href", done)
	}

	resp, body := get(t, hs, "", done.Results)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %s", resp.StatusCode, body)
	}
	var doc ResultsDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != 4 || doc.SpecHash != spec.Hash() {
		t.Fatalf("results doc = %+v", doc)
	}
	for _, c := range doc.Cells {
		if c.Status != "ok" || c.Result == nil || c.Result.Cycles == 0 {
			t.Errorf("cell %s: status=%s result=%v", c.Key, c.Status, c.Result)
		}
	}

	// Resubmit after completion: same sweep, 200, same results bytes.
	code2, v2 := submit(t, hs, "", spec)
	if code2 != http.StatusOK || v2.ID != v.ID {
		t.Fatalf("resubmit = %d id=%s, want 200 and %s", code2, v2.ID, v.ID)
	}
	_, body2 := get(t, hs, "", done.Results)
	if !bytes.Equal(body, body2) {
		t.Error("results document changed across reads")
	}
}

// TestServerResultsByteIdenticalAcrossRestart: finish a sweep, drain,
// reopen on the same journal, and the results document is byte-for-
// byte what the first process served — the in-process half of the
// chaos gate (the SIGKILL half lives in chaostest).
func TestServerResultsByteIdenticalAcrossRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "q.jsonl")
	spec := testSpec(t, 0.3, 0.7)

	srv1, err := Open(Config{Journal: journal, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv1.Run(ctx) }()
	_, v := submit(t, hs1, "alice", spec)
	waitDone(t, hs1, "alice", v.ID)
	_, want := get(t, hs1, "alice", "/v1/sweeps/"+v.ID+"/results")
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	hs1.Close()

	srv2, err := Open(Config{Journal: journal, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	defer srv2.q.close()
	resp, got := get(t, hs2, "alice", "/v1/sweeps/"+v.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results after restart: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("results diverge across restart:\n--- before ---\n%s--- after ---\n%s", want, got)
	}
	st := srv2.Snapshot()
	if st.CellsResumed != 4 || st.CellsRequeued != 0 {
		t.Errorf("restart stats: resumed=%d requeued=%d, want 4 and 0", st.CellsResumed, st.CellsRequeued)
	}
}

// TestServerCrossTenantMemo: two tenants submit the identical spec;
// isolation gives them separate sweeps, the memo computes the shared
// cells once.
func TestServerCrossTenantMemo(t *testing.T) {
	srv, hs := testServer(t, Config{}, true)
	spec := testSpec(t, 0.4)

	_, va := submit(t, hs, "alice", spec)
	_, vb := submit(t, hs, "bob", spec)
	if va.ID == vb.ID {
		t.Fatal("tenants share a sweep ID")
	}
	waitDone(t, hs, "alice", va.ID)
	waitDone(t, hs, "bob", vb.ID)

	// Cross-tenant visibility stays off even though the compute is shared.
	resp, _ := get(t, hs, "bob", "/v1/sweeps/"+va.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bob sees alice's sweep: %d", resp.StatusCode)
	}

	st := srv.Snapshot()
	cells := uint64(len(spec.Cells()))
	if st.CellsExecuted != cells {
		t.Errorf("executed %d cells for two identical sweeps, want %d (memo dedup)", st.CellsExecuted, cells)
	}
	if st.CellsFromCache != cells {
		t.Errorf("served %d cells from cache, want %d", st.CellsFromCache, cells)
	}
	// And the two tenants' results agree cell-for-cell.
	_, ba := get(t, hs, "alice", "/v1/sweeps/"+va.ID+"/results")
	_, bb := get(t, hs, "bob", "/v1/sweeps/"+vb.ID+"/results")
	var da, db ResultsDoc
	if err := json.Unmarshal(ba, &da); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bb, &db); err != nil {
		t.Fatal(err)
	}
	for i := range da.Cells {
		if da.Cells[i].Result.Cycles != db.Cells[i].Result.Cycles {
			t.Errorf("cell %s differs across tenants", da.Cells[i].Key)
		}
	}
}

// TestServerAdmissionControl: a full queue sheds with 429 and a
// Retry-After header; already-admitted work is unaffected. Workers
// are deliberately not running, so the queue cannot drain under us.
func TestServerAdmissionControl(t *testing.T) {
	srv, hs := testServer(t, Config{MaxQueue: 3}, false)
	defer srv.q.close()

	code, v := submit(t, hs, "", testSpec(t, 0.5)) // 2 cells: fits
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	body, _ := json.Marshal(testSpec(t, 0.6))
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Shedding does not disturb admitted sweeps or idempotent re-reads.
	code2, v2 := submit(t, hs, "", testSpec(t, 0.5))
	if code2 != http.StatusOK || v2.ID != v.ID {
		t.Errorf("resubmit under load = %d, want 200 for the admitted sweep", code2)
	}
	st := srv.Snapshot()
	if st.RejectedLoad != 1 {
		t.Errorf("rejected_429 = %d, want 1", st.RejectedLoad)
	}
}

// TestServerPerTenantBound: one tenant cannot fill the shared queue —
// its own bound trips first and other tenants still get in.
func TestServerPerTenantBound(t *testing.T) {
	srv, hs := testServer(t, Config{MaxQueue: 100, TenantQueue: 3}, false)
	defer srv.q.close()

	if code, _ := submit(t, hs, "alice", testSpec(t, 0.5)); code != http.StatusAccepted {
		t.Fatalf("alice's first submit rejected: %d", code)
	}
	if code, _ := submit(t, hs, "alice", testSpec(t, 0.6)); code != http.StatusTooManyRequests {
		t.Fatal("alice exceeded her fair share without a 429")
	}
	if code, _ := submit(t, hs, "bob", testSpec(t, 0.6)); code != http.StatusAccepted {
		t.Fatal("bob was shed because of alice's backlog")
	}
}

// TestServerValidation: malformed requests get 4xx, not queue slots.
func TestServerValidation(t *testing.T) {
	srv, hs := testServer(t, Config{}, false)
	defer srv.q.close()

	post := func(tenant, body string) int {
		req, err := http.NewRequest("POST", hs.URL+"/v1/sweeps", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("", `{"values":[0.5],"workload":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad workload = %d, want 400", code)
	}
	if code := post("", `{"values":[0.5],"surprise":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
	if code := post("", `{`); code != http.StatusBadRequest {
		t.Errorf("truncated JSON = %d, want 400", code)
	}
	if code := post("NOT/A/TENANT", `{"values":[0.5]}`); code != http.StatusBadRequest {
		t.Errorf("invalid tenant = %d, want 400", code)
	}
	if resp, _ := get(t, hs, "", "/v1/sweeps/sw-missing"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing sweep = %d, want 404", resp.StatusCode)
	}
}

// TestServerResultsNotFinal: results are refused with 409 until every
// cell is terminal.
func TestServerResultsNotFinal(t *testing.T) {
	srv, hs := testServer(t, Config{}, false) // no workers: stays queued
	defer srv.q.close()
	_, v := submit(t, hs, "", testSpec(t, 0.5))
	resp, _ := get(t, hs, "", "/v1/sweeps/"+v.ID+"/results")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("results of a queued sweep = %d, want 409", resp.StatusCode)
	}
}

// TestServerReadyzLifecycle: starting → ready → draining, with
// healthz 200 throughout and submissions refused while draining.
func TestServerReadyzLifecycle(t *testing.T) {
	srv, hs := testServer(t, Config{DrainGrace: time.Millisecond}, false)

	if resp, _ := get(t, hs, "", "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before Run = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, hs, "", "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	waitFor(t, func() bool {
		resp, _ := get(t, hs, "", "/readyz")
		return resp.StatusCode == http.StatusOK
	}, "readyz never went 200 after Run")

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, hs, "", "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Error("readyz after drain is not 503")
	}
	if code, _ := submit(t, hs, "", testSpec(t, 0.5)); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", code)
	}
	if resp, _ := get(t, hs, "", "/healthz"); resp.StatusCode != http.StatusOK {
		t.Error("healthz must stay 200 during drain (alive, just leaving)")
	}
	st := srv.Snapshot()
	if !st.Draining || st.RejectedDrain != 1 {
		t.Errorf("stats after drain: draining=%v rejected_503=%d", st.Draining, st.RejectedDrain)
	}
}

// TestServerStats: the stats document reflects the work done.
func TestServerStats(t *testing.T) {
	srv, hs := testServer(t, Config{}, true)
	spec := testSpec(t, 0.2)
	_, v := submit(t, hs, "", spec)
	waitDone(t, hs, "", v.ID)

	resp, body := get(t, hs, "", "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	cells := uint64(len(spec.Cells()))
	if st.SweepsAccepted != 1 || st.OutcomeOK != cells || st.QueueDepth != 0 {
		t.Errorf("stats = accepted:%d ok:%d depth:%d", st.SweepsAccepted, st.OutcomeOK, st.QueueDepth)
	}
	if len(st.Workers) != srv.cfg.Workers || st.Journal == "" || st.CodeRev == "" {
		t.Errorf("stats identity fields: %+v", st)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}
