package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"rowsim/internal/lifecycle"
	"rowsim/internal/sim"
)

// cellState is one schedulable cell and its current queue state. The
// in-memory state is always a pure function of the journal: every
// transition is appended before it is observable through the API.
type cellState struct {
	sweep *sweepState
	cell  Cell
	jkey  string // journal key: "<sweepID>/<cellKey>"
	ckey  string // content address (memo cache key)

	status   lifecycle.Status
	attempts int
	class    string
	errMsg   string
	result   *sim.Result
	resumed  bool // terminal state served from the journal at recovery
	cached   bool // result served from the memo cache, not computed
}

// sweepState is one admitted sweep: its spec, cells and the context
// the spec's deadline propagates through (request → sweep → cell).
type sweepState struct {
	id     string
	tenant string
	spec   SweepSpec
	cells  []*cellState
	byKey  map[string]*cellState

	// canceled marks an explicit DELETE: unlike drain-canceled cells
	// (which a restart re-runs), a deleted sweep stays canceled across
	// restarts — the cancel marker is journaled and replayed.
	canceled bool

	ctx    context.Context
	cancel context.CancelFunc
}

// settled counts cells that will not run again in this process:
// terminal ones plus canceled ones (canceled re-runs only after a
// restart or resubmission).
func (sw *sweepState) counts() (pending, running, ok, failed, degraded, canceled int) {
	for _, c := range sw.cells {
		switch c.status {
		case lifecycle.StatusPending:
			pending++
		case lifecycle.StatusRunning:
			running++
		case lifecycle.StatusOK:
			ok++
		case lifecycle.StatusFailed:
			failed++
		case lifecycle.StatusDegraded:
			degraded++
		case lifecycle.StatusCanceled:
			canceled++
		}
	}
	return
}

// statusString summarizes the sweep for the API. "canceled" covers
// two cases: a drain-canceled sweep (resumable — a restart re-runs
// the canceled cells) and an explicitly deleted one (permanent — the
// journaled cancel marker replays on restart).
func (sw *sweepState) statusString() string {
	pending, running, _, _, _, canceled := sw.counts()
	switch {
	case sw.canceled && pending+running == 0:
		return "canceled"
	case pending+running > 0 && running > 0:
		return "running"
	case pending > 0:
		return "queued"
	case canceled > 0:
		return "canceled" // resumable: a restart re-runs the canceled cells
	default:
		return "done"
	}
}

// queue is the durable multi-tenant cell queue. The lifecycle journal
// is the single source of truth; the in-memory maps are its replayed
// projection plus scheduling indexes (per-tenant FIFOs walked
// round-robin for fair share).
type queue struct {
	mu   sync.Mutex
	jnl  *lifecycle.Journal
	path string

	sweeps map[string]*sweepState
	order  []string // sweep IDs in admission order

	tenantFIFO  map[string][]*cellState // pending cells per tenant
	tenantOrder []string                // round-robin ring of tenant names
	rrNext      int
	pendingN    int // total pending cells across tenants

	wake chan struct{} // capacity 1: signaled when work arrives
}

// queueMetaArgs is the rowserve journal's meta definition. Create
// hashes it into the meta record, so CheckSpec catches a tampered
// header the same way rowsweep resume does.
func queueMetaArgs() map[string]string {
	return map[string]string{"format": "rowserve-queue-v1"}
}

// sweepID scopes a spec's identity to its tenant: the same spec
// submitted by two tenants is two sweeps (isolation), while the memo
// cache still computes the shared cells once (efficiency).
func sweepID(tenant string, spec SweepSpec) string {
	sum := sha256.Sum256([]byte(tenant + "\x00" + spec.Hash()))
	return "sw-" + hex.EncodeToString(sum[:])[:12]
}

// openQueue creates the journal at path, or — when the file already
// exists — replays it and reconstructs the exact queue state: sweeps
// re-admitted, terminal cells kept with their results, everything else
// re-enqueued. Recovered terminal results also seed the memo cache.
// Returns (queue, resumedCells, requeuedCells).
func openQueue(baseCtx context.Context, path string, m *memo) (*queue, int, int, error) {
	q := &queue{
		path:       path,
		sweeps:     make(map[string]*sweepState),
		tenantFIFO: make(map[string][]*cellState),
		wake:       make(chan struct{}, 1),
	}
	if _, err := os.Stat(path); err != nil {
		if !os.IsNotExist(err) {
			return nil, 0, 0, err
		}
		jnl, err := lifecycle.Create(path, lifecycle.Record{Tool: "rowserve", Args: queueMetaArgs()})
		if err != nil {
			return nil, 0, 0, err
		}
		q.jnl = jnl
		return q, 0, 0, nil
	}

	jnl, snap, err := lifecycle.Resume(path)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := snap.CheckSpec(path); err != nil {
		jnl.Close()
		return nil, 0, 0, err
	}
	if snap.Meta.Tool != "rowserve" {
		jnl.Close()
		return nil, 0, 0, fmt.Errorf("serve: journal %s belongs to %q, not rowserve", path, snap.Meta.Tool)
	}
	q.jnl = jnl

	var resumed, requeued int
	for _, rec := range snap.Sweeps {
		if len(rec.Spec) == 0 && rec.Status == lifecycle.StatusCanceled {
			// Cancel marker (DELETE /v1/sweeps/{id}): re-apply it to the
			// sweep admitted earlier in the journal. An unknown sweep ID
			// is ignored — the marker is idempotent by construction.
			if sw, ok := q.sweeps[rec.Sweep]; ok {
				q.cancelSweepLocked(sw, false)
			}
			continue
		}
		var spec SweepSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			jnl.Close()
			return nil, 0, 0, fmt.Errorf("serve: journal %s: sweep %s has a corrupt spec: %w", path, rec.Sweep, err)
		}
		if err := spec.Normalize(); err != nil {
			jnl.Close()
			return nil, 0, 0, fmt.Errorf("serve: journal %s: sweep %s: %w", path, rec.Sweep, err)
		}
		// The journaled hash must match the embedded spec: a journal
		// whose sweep body diverged from its admission hash was written
		// by a different definition and must not be replayed silently.
		if got := spec.Hash(); rec.SpecHash != "" && got != rec.SpecHash {
			jnl.Close()
			return nil, 0, 0, &lifecycle.SpecMismatchError{Path: path, Field: rec.Sweep, Want: rec.SpecHash, Got: got}
		}
		sw, err := q.admitLocked(baseCtx, rec.Sweep, rec.Tenant, spec, nil)
		if err != nil {
			jnl.Close()
			return nil, 0, 0, err
		}
		for _, c := range sw.cells {
			prev, found := snap.Runs[c.jkey]
			if !found || !prev.Status.Terminal() {
				continue // stays pending: the restart re-runs it
			}
			// Completed before the crash: keep the journaled outcome and
			// never recompute (the no-duplication half of the chaos gate).
			q.dequeueLocked(c)
			c.status = prev.Status
			c.attempts = prev.Attempts
			c.class = prev.Class
			c.errMsg = prev.Error
			c.result = prev.Result
			c.resumed = true
			resumed++
			if m != nil {
				switch prev.Status {
				case lifecycle.StatusOK:
					m.seed(c.ckey, memoOutcome{res: *prev.Result})
				case lifecycle.StatusFailed:
					m.seed(c.ckey, memoOutcome{err: prev.Error})
				}
			}
		}
	}
	for _, id := range q.order {
		for _, c := range q.sweeps[id].cells {
			if c.status == lifecycle.StatusPending {
				requeued++
			}
		}
	}
	return q, resumed, requeued, nil
}

// admitLocked registers a sweep (recovery passes journalRec == nil to
// skip re-journaling). Caller holds no lock during recovery; live
// admission goes through admit.
func (q *queue) admitLocked(baseCtx context.Context, id, tenant string, spec SweepSpec, journalRec *lifecycle.Record) (*sweepState, error) {
	sw := &sweepState{
		id:     id,
		tenant: tenant,
		spec:   spec,
		byKey:  make(map[string]*cellState),
	}
	sctx := baseCtx
	var cancel context.CancelFunc = func() {}
	if d := spec.Timeout(); d > 0 {
		sctx, cancel = context.WithTimeout(baseCtx, d)
	}
	sw.ctx, sw.cancel = sctx, cancel

	for _, cell := range spec.Cells() {
		ckey, err := spec.ContentKey(cell)
		if err != nil {
			cancel()
			return nil, err
		}
		cs := &cellState{
			sweep:  sw,
			cell:   cell,
			jkey:   id + "/" + cell.Key,
			ckey:   ckey,
			status: lifecycle.StatusPending,
		}
		sw.cells = append(sw.cells, cs)
		sw.byKey[cell.Key] = cs
	}
	if journalRec != nil {
		q.jnl.Append(*journalRec)
		if err := q.jnl.Err(); err != nil {
			cancel()
			return nil, fmt.Errorf("serve: journal admission: %w", err)
		}
	}
	q.sweeps[id] = sw
	q.order = append(q.order, id)
	if _, ok := q.tenantFIFO[tenant]; !ok {
		q.tenantOrder = append(q.tenantOrder, tenant)
	}
	q.tenantFIFO[tenant] = append(q.tenantFIFO[tenant], sw.cells...)
	q.pendingN += len(sw.cells)
	q.signal()
	return sw, nil
}

// admit durably accepts a sweep: the "sweep" record is flushed to the
// journal before admit returns, so an HTTP 202 means the cells survive
// kill -9. Resubmitting an identical spec returns the existing sweep
// (created == false) — submission is idempotent.
func (q *queue) admit(baseCtx context.Context, tenant string, spec SweepSpec) (sw *sweepState, created bool, err error) {
	id := sweepID(tenant, spec)
	q.mu.Lock()
	defer q.mu.Unlock()
	if sw, ok := q.sweeps[id]; ok {
		return sw, false, nil
	}
	rec := lifecycle.Record{
		Kind:     "sweep",
		Sweep:    id,
		Tenant:   tenant,
		Spec:     json.RawMessage(spec.Canonical()),
		SpecHash: spec.Hash(),
	}
	sw, err = q.admitLocked(baseCtx, id, tenant, spec, &rec)
	if err != nil {
		return nil, false, err
	}
	return sw, true, nil
}

// Sentinel results for cancel, mapped to HTTP codes by the handler.
var (
	errSweepNotFound = fmt.Errorf("no such sweep for this tenant")
	errSweepDone     = fmt.Errorf("sweep is done; results are final")
)

// cancel permanently cancels a tenant's sweep (DELETE /v1/sweeps/{id}).
// The cancel marker — a second "sweep" record with no spec and status
// canceled — is journaled before any state changes, so the deletion
// survives kill -9 and replays on restart. Pending cells transition to
// canceled (journaled per cell) and leave the scheduling FIFO; running
// cells get their sweep context canceled and settle as canceled through
// the normal worker path. Idempotent: re-deleting a canceled sweep
// succeeds (first == false) without re-journaling. A done sweep (all
// cells terminal, results final) refuses with errSweepDone.
func (q *queue) cancel(tenant, id string) (sw *sweepState, first bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	sw, ok := q.sweeps[id]
	if !ok || sw.tenant != tenant {
		return nil, false, errSweepNotFound
	}
	if sw.canceled {
		return sw, false, nil
	}
	if sw.statusString() == "done" {
		return nil, false, errSweepDone
	}
	q.jnl.Append(lifecycle.Record{
		Kind: "sweep", Sweep: id, Tenant: tenant, Status: lifecycle.StatusCanceled,
	})
	if err := q.jnl.Err(); err != nil {
		return nil, false, fmt.Errorf("serve: journal cancel: %w", err)
	}
	q.cancelSweepLocked(sw, true)
	return sw, true, nil
}

// cancelSweepLocked applies a sweep cancellation: pending cells become
// canceled and leave the FIFO, the sweep context is canceled so running
// cells (and memo waiters) unwind. journal=false is the replay path —
// the records already exist.
func (q *queue) cancelSweepLocked(sw *sweepState, journal bool) {
	sw.canceled = true
	for _, c := range sw.cells {
		if c.status != lifecycle.StatusPending {
			continue
		}
		q.dequeueLocked(c)
		c.status = lifecycle.StatusCanceled
		if journal {
			q.jnl.Append(lifecycle.Record{
				Kind: "cell", Sweep: sw.id, Tenant: sw.tenant,
				Key: c.jkey, Seed: sw.spec.Seed, Status: lifecycle.StatusCanceled,
			})
		}
	}
	sw.cancel()
}

// depths returns (total pending, pending for tenant) for admission
// control.
func (q *queue) depths(tenant string) (total, forTenant int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pendingN, len(q.tenantFIFO[tenant])
}

// pop takes the next pending cell under per-tenant fair share: tenants
// are walked round-robin, so a tenant with one queued sweep is not
// starved behind a tenant with a hundred. The cell is marked running
// and the transition journaled. Returns nil when nothing is pending.
func (q *queue) pop() *cellState {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.tenantOrder)
	for i := 0; i < n; i++ {
		tenant := q.tenantOrder[(q.rrNext+i)%n]
		fifo := q.tenantFIFO[tenant]
		if len(fifo) == 0 {
			continue
		}
		c := fifo[0]
		q.tenantFIFO[tenant] = fifo[1:]
		q.pendingN--
		q.rrNext = (q.rrNext + i + 1) % n
		c.status = lifecycle.StatusRunning
		q.jnl.Append(lifecycle.Record{
			Kind: "cell", Sweep: c.sweep.id, Tenant: tenant,
			Key: c.jkey, Seed: c.sweep.spec.Seed, Status: lifecycle.StatusRunning,
		})
		return c
	}
	return nil
}

// dequeueLocked removes a specific cell from its tenant FIFO (recovery
// marking a journaled-terminal cell done).
func (q *queue) dequeueLocked(c *cellState) {
	fifo := q.tenantFIFO[c.sweep.tenant]
	for i, e := range fifo {
		if e == c {
			q.tenantFIFO[c.sweep.tenant] = append(fifo[:i:i], fifo[i+1:]...)
			q.pendingN--
			return
		}
	}
}

// complete journals a cell's outcome and settles its in-memory state.
// cached marks results served from the memo rather than computed.
func (q *queue) complete(c *cellState, out lifecycle.Outcome, cached bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	c.status = out.Status
	c.attempts = out.Attempts
	c.cached = cached
	rec := lifecycle.Record{
		Kind: "cell", Sweep: c.sweep.id, Tenant: c.sweep.tenant,
		Key: c.jkey, Seed: c.sweep.spec.Seed,
		Status: out.Status, Attempts: out.Attempts,
	}
	if out.Err != nil {
		c.errMsg = out.Err.Error()
		c.class = lifecycle.Classify(out.Err).String()
		rec.Error, rec.Class = c.errMsg, c.class
	}
	if out.Status == lifecycle.StatusOK {
		res := out.Result
		c.result = &res
		rec.Result = &res
	}
	q.jnl.Append(rec)
	if done := q.sweepDoneLocked(c.sweep); done {
		c.sweep.cancel() // release the deadline timer
	}
}

// sweepDoneLocked reports whether no cell of sw can still run in this
// process.
func (q *queue) sweepDoneLocked(sw *sweepState) bool {
	for _, c := range sw.cells {
		if c.status == lifecycle.StatusPending || c.status == lifecycle.StatusRunning {
			return false
		}
	}
	return true
}

// sweepCanceled reports whether sw was explicitly deleted.
func (q *queue) sweepCanceled(sw *sweepState) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return sw.canceled
}

// get returns a sweep by ID, tenant-scoped: a tenant can only see its
// own sweeps.
func (q *queue) get(tenant, id string) (*sweepState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	sw, ok := q.sweeps[id]
	if !ok || sw.tenant != tenant {
		return nil, false
	}
	return sw, true
}

// list returns the tenant's sweeps in admission order.
func (q *queue) list(tenant string) []*sweepState {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*sweepState
	for _, id := range q.order {
		if sw := q.sweeps[id]; sw.tenant == tenant {
			out = append(out, sw)
		}
	}
	return out
}

// signal wakes one idle worker (non-blocking; the channel is a level
// trigger, workers re-scan the queue after every wake).
func (q *queue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// journalErr surfaces the queue's first persistence failure. A broken
// journal flips the daemon read-only: admission stops (503) because an
// acceptance that cannot be persisted would be a lie.
func (q *queue) journalErr() error {
	return q.jnl.Err()
}

// close flushes and closes the journal.
func (q *queue) close() error {
	return q.jnl.Close()
}
