package serve

import (
	"sync"
	"time"
)

// WorkerState is one worker's live view in the /v1/stats snapshot.
type WorkerState struct {
	State string `json:"state"`          // "idle" | "running" | "waiting-memo"
	Cell  string `json:"cell,omitempty"` // journal key of the cell being worked
	Since int64  `json:"since_unix_ms"`
}

// Stats is the /v1/stats snapshot: the daemon's health in numbers.
// Everything here is observability — no simulation state, so wall
// clocks are fine (internal/serve is wallclock-allowlisted).
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	CodeRev       string  `json:"code_rev"`
	Journal       string  `json:"journal"`
	Draining      bool    `json:"draining"`

	QueueDepth   int            `json:"queue_depth"` // pending cells, all tenants
	TenantDepths map[string]int `json:"tenant_depths,omitempty"`

	SweepsAccepted uint64 `json:"sweeps_accepted"`
	SweepsDeduped  uint64 `json:"sweeps_deduped"`  // idempotent resubmissions
	SweepsCanceled uint64 `json:"sweeps_canceled"` // explicit DELETEs
	RejectedLoad   uint64 `json:"rejected_429"`    // shed by admission control
	RejectedDrain  uint64 `json:"rejected_503"`    // refused while draining/broken

	CellsExecuted    uint64 `json:"cells_executed"`     // computed by a worker
	CellsFromCache   uint64 `json:"cells_from_cache"`   // served by the memo
	CellsResumed     uint64 `json:"cells_resumed"`      // served from the journal at startup
	CellsRequeued    uint64 `json:"cells_requeued"`     // re-enqueued at startup
	CellsCkptResumed uint64 `json:"cells_ckpt_resumed"` // resumed mid-run from a checkpoint

	OutcomeOK       uint64 `json:"outcome_ok"`
	OutcomeFailed   uint64 `json:"outcome_failed"`
	OutcomeDegraded uint64 `json:"outcome_degraded"`
	OutcomeCanceled uint64 `json:"outcome_canceled"`

	Retries uint64 `json:"retries"` // attempts beyond the first
	Panics  uint64 `json:"panics"`  // contained attempt panics

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	Workers []WorkerState `json:"workers"`
}

// statsBook accumulates the mutable counters behind Stats.
type statsBook struct {
	mu      sync.Mutex
	start   time.Time
	workers []WorkerState

	sweepsAccepted, sweepsDeduped  uint64
	sweepsCanceled                 uint64
	rejectedLoad, rejectedDrain    uint64
	cellsExecuted, cellsFromCache  uint64
	cellsResumed, cellsRequeued    uint64
	cellsCkptResumed               uint64
	okN, failedN, degradedN, cancN uint64
	retries, panics                uint64
}

func newStatsBook(workers int) *statsBook {
	b := &statsBook{start: time.Now(), workers: make([]WorkerState, workers)}
	for i := range b.workers {
		b.workers[i] = WorkerState{State: "idle", Since: b.start.UnixMilli()}
	}
	return b
}

func (b *statsBook) setWorker(i int, state, cell string) {
	b.mu.Lock()
	b.workers[i] = WorkerState{State: state, Cell: cell, Since: time.Now().UnixMilli()}
	b.mu.Unlock()
}

func (b *statsBook) add(f func(*statsBook)) {
	b.mu.Lock()
	f(b)
	b.mu.Unlock()
}
