package serve

import (
	"strings"
	"testing"

	"rowsim/internal/experiments"
)

func normalized(t *testing.T, s SweepSpec) SweepSpec {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatalf("Normalize(%+v): %v", s, err)
	}
	return s
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := normalized(t, SweepSpec{Values: []float64{0.5}})
	if s.Workload != "sps" || s.Param != "sharedfrac" {
		t.Errorf("defaults: workload=%q param=%q", s.Workload, s.Param)
	}
	if s.Cores != 8 || s.Instrs != 4000 {
		t.Errorf("defaults: cores=%d instrs=%d", s.Cores, s.Instrs)
	}
	if s.Seed != experiments.DefaultSeed {
		t.Errorf("seed 0 should resolve to the documented default, got %d", s.Seed)
	}
	if len(s.Policies) != 3 || s.Policies[0] != "eager" || s.Policies[2] != "row" {
		t.Errorf("default policies = %v", s.Policies)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec SweepSpec
		want string // substring of the error
	}{
		{"no values", SweepSpec{}, "no sweep values"},
		{"bad workload", SweepSpec{Workload: "nope", Values: []float64{1}}, "nope"},
		{"bad param", SweepSpec{Param: "nope", Values: []float64{1}}, "unknown sweep parameter"},
		{"bad policy", SweepSpec{Values: []float64{1}, Policies: []string{"speculative"}}, "unknown policy"},
		{"cores over limit", SweepSpec{Values: []float64{1}, Cores: maxCores + 1}, "out of range"},
		{"negative cores", SweepSpec{Values: []float64{1}, Cores: -4}, "out of range"},
		{"instrs over limit", SweepSpec{Values: []float64{1}, Instrs: maxInstrs + 1}, "out of range"},
		{"negative timeout", SweepSpec{Values: []float64{1}, TimeoutMS: -5}, "timeout_ms"},
		{"too many cells", SweepSpec{Values: make([]float64, MaxCellsPerSweep)}, "limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Normalize()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Normalize = %v, want error containing %q", err, c.want)
			}
		})
	}
}

// TestSpecHashCanonical: normalization is part of the canonical form —
// a spec written with explicit defaults hashes identically to one that
// omitted them, so resubmission dedup works across client styles.
func TestSpecHashCanonical(t *testing.T) {
	implicit := normalized(t, SweepSpec{Values: []float64{0.5}})
	explicit := normalized(t, SweepSpec{
		Workload: "sps", Param: "sharedfrac", Values: []float64{0.5},
		Policies: []string{"eager", "lazy", "row"},
		Cores:    8, Instrs: 4000, Seed: experiments.DefaultSeed,
	})
	if implicit.Hash() != explicit.Hash() {
		t.Error("implicit and explicit defaults hash differently")
	}
	if implicit.ID() != explicit.ID() {
		t.Error("implicit and explicit defaults get different sweep IDs")
	}
	other := normalized(t, SweepSpec{Values: []float64{0.6}})
	if other.Hash() == implicit.Hash() {
		t.Error("different values hash identically")
	}
}

func TestSpecCellsExpansion(t *testing.T) {
	s := normalized(t, SweepSpec{
		Param: "hotlines", Values: []float64{1, 16}, Policies: []string{"eager", "row"},
	})
	cells := s.Cells()
	wantKeys := []string{"hotlines=1/eager", "hotlines=1/row", "hotlines=16/eager", "hotlines=16/row"}
	if len(cells) != len(wantKeys) {
		t.Fatalf("got %d cells, want %d", len(cells), len(wantKeys))
	}
	for i, c := range cells {
		if c.Key != wantKeys[i] {
			t.Errorf("cell %d key = %q, want %q", i, c.Key, wantKeys[i])
		}
	}
	// Fractional values keep rowsweep's trimmed rendering.
	f := normalized(t, SweepSpec{Values: []float64{0.25}})
	if got := f.Cells()[0].Key; got != "sharedfrac=0.25/eager" {
		t.Errorf("fractional key = %q", got)
	}
}

// TestSpecContentKey: the content address must separate everything
// that changes the simulation and nothing that does not.
func TestSpecContentKey(t *testing.T) {
	base := normalized(t, SweepSpec{Values: []float64{0.5}})
	c := base.Cells()[0]
	k1, err := base.ContentKey(c)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := base.ContentKey(c)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("content key is not deterministic")
	}

	seeded := base
	seeded.Seed = base.Seed + 1
	k3, err := seeded.ContentKey(seeded.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different seeds share a content key")
	}

	// Two cells of the same sweep must never collide.
	two := normalized(t, SweepSpec{Values: []float64{0.1, 0.9}})
	ka, _ := two.ContentKey(two.Cells()[0])
	kb, _ := two.ContentKey(two.Cells()[3])
	if ka == kb {
		t.Error("different cells share a content key")
	}
}

func TestSweepIDTenantScoped(t *testing.T) {
	s := normalized(t, SweepSpec{Values: []float64{0.5}})
	a, b := sweepID("alice", s), sweepID("bob", s)
	if a == b {
		t.Error("same spec under two tenants must be two sweeps")
	}
	if a != sweepID("alice", s) {
		t.Error("sweep ID is not deterministic")
	}
}
