package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rowsim/internal/lifecycle"
	"rowsim/internal/sim"
)

func testSpec(t *testing.T, values ...float64) SweepSpec {
	t.Helper()
	s := SweepSpec{Values: values, Policies: []string{"eager", "lazy"}, Cores: 2, Instrs: 200}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func mustOpenQueue(t *testing.T, path string, m *memo) (*queue, int, int) {
	t.Helper()
	q, resumed, requeued, err := openQueue(context.Background(), path, m)
	if err != nil {
		t.Fatal(err)
	}
	return q, resumed, requeued
}

// TestQueueRecovery is the core journal-is-the-queue contract: admit,
// run some cells to terminal states, kill the process (close here —
// the chaostest harness does it with SIGKILL), reopen, and the queue
// state is exactly what the journal says: terminal cells kept with
// results, the rest pending again.
func TestQueueRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	spec := testSpec(t, 0.2, 0.8) // 4 cells
	sw, created, err := q.admit(context.Background(), "alice", spec)
	if err != nil || !created {
		t.Fatalf("admit: created=%v err=%v", created, err)
	}

	// Finish two cells, leave one running (crash victim), one pending.
	c0 := q.pop()
	q.complete(c0, lifecycle.Outcome{Status: lifecycle.StatusOK, Attempts: 1, Result: sim.Result{Cycles: 100}}, false)
	c1 := q.pop()
	q.complete(c1, lifecycle.Outcome{Status: lifecycle.StatusFailed, Attempts: 2, Err: errors.New("boom")}, false)
	c2 := q.pop()
	_ = c2 // journaled running, never completed: lost to the "crash"
	if err := q.close(); err != nil {
		t.Fatal(err)
	}

	m := newMemo()
	q2, resumed, requeued := mustOpenQueue(t, path, m)
	defer q2.close()
	if resumed != 2 || requeued != 2 {
		t.Fatalf("resumed=%d requeued=%d, want 2 and 2", resumed, requeued)
	}
	sw2, ok := q2.get("alice", sw.id)
	if !ok {
		t.Fatal("sweep lost across recovery")
	}
	r0 := sw2.byKey[c0.cell.Key]
	if r0.status != lifecycle.StatusOK || !r0.resumed || r0.result == nil || r0.result.Cycles != 100 {
		t.Errorf("completed cell not recovered terminal: %+v", r0)
	}
	r1 := sw2.byKey[c1.cell.Key]
	if r1.status != lifecycle.StatusFailed || r1.errMsg != "boom" {
		t.Errorf("failed cell not recovered: status=%s err=%q", r1.status, r1.errMsg)
	}
	if st := sw2.byKey[c2.cell.Key].status; st != lifecycle.StatusPending {
		t.Errorf("mid-flight cell recovered as %s, want pending (re-run)", st)
	}
	// Recovered results seed the memo: identical future cells are hits.
	if _, ok, _ := m.claim(r0.ckey); !ok {
		t.Error("recovered ok result did not seed the memo cache")
	}
	// No completed cell may be handed out again.
	for c := q2.pop(); c != nil; c = q2.pop() {
		if c.cell.Key == c0.cell.Key || c.cell.Key == c1.cell.Key {
			t.Errorf("terminal cell %s re-queued after recovery", c.cell.Key)
		}
	}
}

// TestQueueRecoveryTornTail: a crash mid-append leaves a torn last
// line; recovery truncates it and the queue opens (the lifecycle
// journal's torn-tail contract, exercised through the queue).
func TestQueueRecoveryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	if _, _, err := q.admit(context.Background(), "alice", testSpec(t, 0.5)); err != nil {
		t.Fatal(err)
	}
	c := q.pop()
	q.complete(c, lifecycle.Outcome{Status: lifecycle.StatusOK, Attempts: 1}, false)
	if err := q.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"cell","sweep":"sw-tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2, resumed, requeued := mustOpenQueue(t, path, nil)
	defer q2.close()
	if resumed != 1 || requeued != 1 {
		t.Fatalf("after torn tail: resumed=%d requeued=%d, want 1 and 1", resumed, requeued)
	}
}

// TestQueueRecoveryRejectsTamperedSpec: a journaled sweep whose spec
// body no longer hashes to its admission hash fails recovery with the
// typed error instead of silently running different cells.
func TestQueueRecoveryRejectsTamperedSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	jnl, err := lifecycle.Create(path, lifecycle.Record{Tool: "rowserve", Args: queueMetaArgs()})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 0.5)
	tampered := spec
	tampered.Values = []float64{0.9} // body diverges from the hash below
	jnl.Append(lifecycle.Record{
		Kind: "sweep", Sweep: "sw-evil", Tenant: "alice",
		Spec: tampered.Canonical(), SpecHash: spec.Hash(),
	})
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, _, err = openQueue(context.Background(), path, nil)
	var sm *lifecycle.SpecMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("openQueue = %v, want *lifecycle.SpecMismatchError", err)
	}
	if sm.Field != "sw-evil" {
		t.Errorf("mismatch names field %q, want the sweep ID", sm.Field)
	}
}

// TestQueueRejectsForeignJournal: a journal written by another tool is
// refused, not misread as a queue.
func TestQueueRejectsForeignJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jnl, err := lifecycle.Create(path, lifecycle.Record{Tool: "rowsweep", Args: map[string]string{"workload": "sps"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := openQueue(context.Background(), path, nil); err == nil {
		t.Fatal("openQueue accepted a rowsweep journal")
	}
}

// TestQueueFairShare: tenants are drained round-robin, so a tenant
// with one queued sweep is not starved behind a bulk submitter.
func TestQueueFairShare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	defer q.close()
	// alice floods 8 cells, then bob queues 2.
	if _, _, err := q.admit(context.Background(), "alice", testSpec(t, 0.1, 0.2, 0.3, 0.4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.admit(context.Background(), "bob", testSpec(t, 0.5)); err != nil {
		t.Fatal(err)
	}
	var order []string
	for c := q.pop(); c != nil; c = q.pop() {
		order = append(order, c.sweep.tenant)
	}
	if len(order) != 10 {
		t.Fatalf("popped %d cells, want 10", len(order))
	}
	// Bob's two cells must both be served within the first four pops.
	bob := 0
	for _, tn := range order[:4] {
		if tn == "bob" {
			bob++
		}
	}
	if bob != 2 {
		t.Errorf("first four pops served bob %d times, want 2 (round-robin): %v", bob, order)
	}
}

// TestQueueIdempotentAdmit: resubmitting an identical spec returns the
// existing sweep without a second journal record.
func TestQueueIdempotentAdmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	spec := testSpec(t, 0.5)
	sw1, created1, err := q.admit(context.Background(), "alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	sw2, created2, err := q.admit(context.Background(), "alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created1 || created2 {
		t.Errorf("created flags = %v, %v; want true, false", created1, created2)
	}
	if sw1 != sw2 {
		t.Error("resubmission built a second sweepState")
	}
	if total, _ := q.depths("alice"); total != len(spec.Cells()) {
		t.Errorf("queue depth %d after duplicate admit, want %d", total, len(spec.Cells()))
	}
	if err := q.close(); err != nil {
		t.Fatal(err)
	}
	// One sweep record in the journal, not two.
	q2, _, requeued := mustOpenQueue(t, path, nil)
	defer q2.close()
	if got := len(q2.list("alice")); got != 1 {
		t.Errorf("recovered %d sweeps, want 1", got)
	}
	if requeued != len(spec.Cells()) {
		t.Errorf("requeued %d, want %d", requeued, len(spec.Cells()))
	}
}

// TestQueueTenantIsolation: get and list are tenant-scoped.
func TestQueueTenantIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	defer q.close()
	sw, _, err := q.admit(context.Background(), "alice", testSpec(t, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.get("bob", sw.id); ok {
		t.Error("bob can see alice's sweep")
	}
	if got := len(q.list("bob")); got != 0 {
		t.Errorf("bob lists %d sweeps, want 0", got)
	}
	if _, ok := q.get("alice", sw.id); !ok {
		t.Error("alice cannot see her own sweep")
	}
}

// TestSweepDeadlinePropagation: a spec deadline becomes the sweep
// context's deadline (which runCell hands to every attempt).
func TestSweepDeadlinePropagation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	defer q.close()

	spec := testSpec(t, 0.5)
	spec.TimeoutMS = 60_000
	spec0 := testSpec(t, 0.6)

	sw, _, err := q.admit(context.Background(), "alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.ctx.Deadline(); !ok {
		t.Error("sweep with timeout_ms has no context deadline")
	}
	sw0, _, err := q.admit(context.Background(), "alice", spec0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sw0.ctx.Deadline(); ok {
		t.Error("sweep without timeout_ms got a deadline")
	}

	// The sweep context chains from the server's cell context: a drain
	// cancel reaches every sweep.
	base, cancel := context.WithCancel(context.Background())
	q2, _, _ := mustOpenQueue(t, filepath.Join(t.TempDir(), "q2.jsonl"), nil)
	defer q2.close()
	swc, _, err := q2.admit(base, "alice", spec0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-swc.ctx.Done():
	default:
		t.Error("canceling the base context did not cancel the sweep context")
	}
}

// TestQueueJournalErrGatesAdmission: once the journal is broken, admit
// fails — an acceptance that cannot be persisted would be a lie.
func TestQueueJournalErrGatesAdmission(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	q, _, _ := mustOpenQueue(t, path, nil)
	// Close the journal behind the queue's back: subsequent appends fail.
	if err := q.close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := q.admit(context.Background(), "alice", testSpec(t, 0.5))
	if err == nil {
		t.Fatal("admit succeeded on a closed journal")
	}
	if q.journalErr() == nil {
		t.Error("journalErr is nil after a failed append")
	}
}
