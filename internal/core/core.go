// Package core implements the cycle-level out-of-order core: a
// 512-entry ROB with register renaming, load queue, store buffer and
// the Atomic Queue (AQ) of Free Atomics, plus the paper's Rush-or-Wait
// policy engine deciding when each atomic RMW issues.
//
// The core is trace-driven: it fetches pre-generated instructions from
// a trace.Program, but all timing — dependencies, structural hazards,
// cache locking, coherence stalls — is modeled cycle by cycle, so the
// contention between cores emerges from the multicore simulation
// rather than from the trace.
package core

import (
	"fmt"
	"os"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/predictor"
	"rowsim/internal/sram"
	"rowsim/internal/stats"
	"rowsim/internal/trace"
)

// instruction lifecycle states.
type state uint8

const (
	sWaiting   state = iota // source operands pending
	sReady                  // in the ready queue
	sIssued                 // executing (ALU timer, AGU, or memory outstanding)
	sWaitStore              // load blocked behind an older store (store sets / unready forward)
	sWaitLazy               // atomic waiting for the lazy-issue conditions
	sWaitLock               // atomic waiting for an older same-line lock to release
	sCompleted              // executed; waiting to commit
)

// depRef identifies a dependent instruction to wake at completion.
type depRef struct {
	slot uint32
	id   uint64
}

// robEntry is one in-flight instruction.
type robEntry struct {
	valid bool
	id    uint64 // unique dynamic id; never reused
	pi    int32  // program index (for squash refetch)
	in    *trace.Instr
	st    state

	srcPending int8
	token      uint16 // invalidates stale execution-wheel events
	deps       []depRef

	dispatchAt uint64
	completeAt uint64

	line      uint64
	addrReady bool
	lq, sb    int64 // absolute LQ/SB positions, -1 when not occupying
	aq        int64 // absolute AQ position, -1 when none

	waitStoreID uint64 // store-set: wait until this store resolves (0 = none)

	mispred bool

	// valueReady marks the result available to dependents before the
	// instruction completes (store-to-atomic value forwarding).
	valueReady bool

	// Atomic execution state.
	lazy          bool // current policy (may flip eager via forwarding)
	predContended bool
	addrCalcDone  bool
	locked        bool
	lockAt        uint64
	lockIssueAt   uint64 // cycle the lock GetX was issued
}

// sbEntry is one store-buffer slot (allocated at dispatch, drains in
// order after commit — TSO).
type sbEntry struct {
	id        uint64
	slot      uint32
	line      uint64
	addrReady bool
	committed bool
	isAtomic  bool
	noWrite   bool // far atomic: the RMW already happened at the L3
}

// lqEntry is one load-queue slot.
type lqEntry struct {
	id       uint64
	slot     uint32
	line     uint64
	hasLine  bool
	isAtomic bool
	done     bool // performed its read (squashable until commit)
}

// aqEntry is one Atomic Queue slot, augmented with the RoW fields:
// the contended bit, the only-calculate-address flag (implicit in
// hasAddr + the entry's lazy policy) and the issued-cycle timestamp.
type aqEntry struct {
	id        uint64
	slot      uint32
	pc        uint64
	line      uint64
	hasAddr   bool
	locked    bool
	contended bool
	issuedAt  uint64 // cycle the GetX was sent (14-bit semantics at use)
	lockAt    uint64 // cycle the line was locked

	predContended bool // prediction made at allocation (for training)
	trainable     bool // update the predictor at unlock
}

// wheelEvent is a scheduled completion inside the core.
type wheelEvent struct {
	slot  uint32
	id    uint64
	token uint16
	kind  uint8
}

const (
	evALUDone uint8 = iota
	evLoadAGU
	evStoreAGU
	evAtomicAGU      // address-calculation pass for an atomic
	evAtomicOp       // the RMW ALU operation after the lock
	evForwarded      // store-to-load forward data delivery
	evAtomicRetry    // replay of a force-released lock acquisition
	evAtomicFwdValue // forwarded RMW result becomes visible to dependents
)

const wheelSize = 16 // > max internal latency

// Tag encoding for memory responses: slot in the low bits, id above.
const tagSlotBits = 12

// debugLock enables lock-timeline prints for core 0 (development aid;
// compiled out when false).
//
//rowlint:ignore wallclock development-only log gate read once at init; it toggles prints, never simulated behaviour
var debugLock = os.Getenv("ROWSIM_DEBUG_LOCK") != ""

// Stats aggregates a core's behaviour for the experiment harnesses.
type Stats struct {
	Committed uint64
	Atomics   uint64 // committed locking atomics

	EagerIssued uint64
	LazyIssued  uint64
	FarIssued   uint64

	ContendedAtomics uint64 // contended bit set at unlock
	ForwardedAtomics uint64 // flipped eager by a matching SB store
	ForcedReleases   uint64
	PredictedLazy    uint64
	Mispredicts      uint64
	Branches         uint64
	LQSquashes       uint64
	SSViolations     uint64
	LoadForwards     uint64

	// Fig. 6 latency breakdown (per locking atomic).
	DispatchToIssue stats.Mean
	IssueToLock     stats.Mean
	LockToUnlock    stats.Mean
	// LockHold is the lock-window distribution (tail behaviour shows
	// the convoying the paper's lazy mode avoids).
	LockHold *stats.Histogram

	// Fig. 4 instrumentation.
	OlderUnexecAtEager   stats.Mean // older instrs not yet executed when an eager atomic issues
	YoungerStartedAtLazy stats.Mean // younger instrs already executing when a lazy atomic issues
}

// Core is one simulated out-of-order core.
type Core struct {
	id  int
	cfg *config.Config

	prog        trace.Program
	fetchIdx    int
	fetchHoldBy uint64 // id of the mispredicted branch stalling fetch (0 = none)
	fetchFreeAt uint64 // front-end redirect bubble

	now    uint64
	nextID uint64

	rob     []robEntry
	robHead int64 // absolute position of oldest entry
	robTail int64 // absolute position one past youngest
	robMask int64

	lq     []lqEntry
	lqHead int64
	lqTail int64
	sb     []sbEntry
	sbHead int64
	sbTail int64
	aq     []aqEntry
	aqHead int64
	aqTail int64

	rename [trace.NumRegs]depRef

	readyQ       []depRef
	lazyWait     []depRef // atomics in sWaitLazy
	storeBlocked []depRef // loads in sWaitStore
	fenceBlocked []depRef // memory ops stalled behind a fence
	lockWait     []depRef // atomics waiting for a same-line lock
	orderWait    []depRef // atomics whose line arrived before an older atomic locked
	fenceIDs     []uint64 // in-flight fences (and fenced atomics), ascending

	wheel [][]wheelEvent // wheelSize buckets

	mem *cache.Private
	bp  *predictor.Branch
	ss  *predictor.StoreSet
	cp  *predictor.Contention

	// Instruction cache: fetch stalls on a miss while the line fills
	// from the private L2 (instructions are read-only, so the I-side
	// stays outside the coherence protocol).
	l1i         *sram.Array
	l1iLineMask uint64
	l1iLastLine uint64
	l1iMisses   uint64

	memPortsUsed int
	drainBusy    bool // SB drain write in flight

	// work counts observable Tick actions (retires, issues, drains,
	// dispatches, wheel events, wakes). The event scheduler's
	// cross-check replays a skipped Tick and asserts it unchanged.
	work uint64

	done       bool
	finishedAt uint64

	sink *coherence.ErrorSink

	Stats Stats
}

// New builds a core executing prog. The private cache is created by
// the caller (the system) and attached with AttachMemory, because it
// needs the network and bank mapping.
func New(id int, cfg *config.Config, prog trace.Program) *Core {
	c := &Core{
		id:          id,
		cfg:         cfg,
		prog:        prog,
		rob:         make([]robEntry, nextPow2(cfg.Core.ROBSize)),
		lq:          make([]lqEntry, cfg.Core.LQSize),
		sb:          make([]sbEntry, cfg.Core.SBSize),
		aq:          make([]aqEntry, cfg.Core.AQSize),
		bp:          predictor.NewBranch(12),
		ss:          predictor.NewStoreSet(10),
		l1i:         sram.New(cfg.Mem.L1I.SizeBytes, cfg.Mem.L1I.Ways, cfg.Mem.LineBytes),
		l1iLineMask: ^uint64(cfg.Mem.LineBytes - 1),
		l1iLastLine: ^uint64(0),
	}
	c.robMask = int64(len(c.rob) - 1)
	c.wheel = make([][]wheelEvent, wheelSize)
	c.Stats.LockHold = stats.NewHistogram(1 << 16)
	if cfg.Policy == config.PolicyRoW {
		c.cp = predictor.NewContention(cfg)
	}
	c.nextID = 1
	return c
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// AttachMemory wires the private cache hierarchy.
func (c *Core) AttachMemory(m *cache.Private) { c.mem = m }

// SetErrorSink wires the system-wide protocol-error sink. Without one,
// invariant violations panic (fail-fast for direct component tests).
func (c *Core) SetErrorSink(s *coherence.ErrorSink) { c.sink = s }

// fail raises a structured error for a broken core invariant. The
// pipeline state the error captures is what a postmortem needs: the
// ROB head, queue occupancies and the drain flags.
func (c *Core) fail(reason string) {
	coherence.Raise(c.sink, &coherence.ProtocolError{
		Cycle:     c.now,
		Component: fmt.Sprintf("core %d", c.id),
		Reason:    reason,
		State:     c.String(),
	})
}

// Mem returns the core's private cache (for stats).
func (c *Core) Mem() *cache.Private { return c.mem }

// ContentionPredictor returns the RoW predictor, or nil when the
// policy is not RoW.
func (c *Core) ContentionPredictor() *predictor.Contention { return c.cp }

// BranchPredictor returns the direction predictor.
func (c *Core) BranchPredictor() *predictor.Branch { return c.bp }

// L1IMisses returns the number of instruction-cache misses.
func (c *Core) L1IMisses() uint64 { return c.l1iMisses }

// Done reports whether the core has committed its whole program and
// drained its buffers.
func (c *Core) Done() bool { return c.done }

// FinishedAt returns the cycle the core completed (valid once Done).
func (c *Core) FinishedAt() uint64 { return c.finishedAt }

// ID returns the core's id.
func (c *Core) ID() int { return c.id }

func (c *Core) entry(pos int64) *robEntry { return &c.rob[pos&c.robMask] }

func (c *Core) slotOf(pos int64) uint32 { return uint32(pos & c.robMask) }

func (c *Core) robFull() bool { return c.robTail-c.robHead >= int64(c.cfg.Core.ROBSize) }

func (c *Core) entryBySlot(slot uint32, id uint64) *robEntry {
	e := &c.rob[slot]
	if !e.valid || e.id != id {
		return nil
	}
	return e
}

// posOfSlot reconstructs the absolute ROB position of a live slot.
func (c *Core) posOfSlot(slot uint32) int64 {
	base := c.robHead &^ c.robMask
	pos := base | int64(slot)
	if pos < c.robHead {
		pos += c.robMask + 1
	}
	return pos
}

func (c *Core) makeTag(slot uint32, id uint64) uint64 {
	return uint64(slot) | id<<tagSlotBits
}

func (c *Core) fromTag(tag uint64) (*robEntry, uint32) {
	slot := uint32(tag & (1<<tagSlotBits - 1))
	id := tag >> tagSlotBits
	return c.entryBySlot(slot, id), slot
}

func (c *Core) schedule(lat int, kind uint8, slot uint32, id uint64, token uint16) {
	if lat < 1 {
		lat = 1
	}
	if lat >= wheelSize {
		c.fail(fmt.Sprintf("internal latency %d exceeds the %d-cycle execution wheel", lat, wheelSize))
		lat = wheelSize - 1
	}
	b := (c.now + uint64(lat)) % wheelSize
	c.wheel[b] = append(c.wheel[b], wheelEvent{slot: slot, id: id, token: token, kind: kind})
}

// PendingWork reports whether the core still has in-flight state
// (quiescence/deadlock diagnostics).
func (c *Core) PendingWork() bool {
	return !c.done
}

func (c *Core) String() string {
	head := "empty"
	if c.robHead < c.robTail {
		e := c.entry(c.robHead)
		head = fmt.Sprintf("%s st=%d src=%d lq=%d/%d sb=%d/%d locked=%v lazy=%v",
			e.in, e.st, e.srcPending, e.lq, c.lqHead, e.sb, c.sbHead, e.locked, e.lazy)
	}
	sbh := "empty"
	if c.sbHead < c.sbTail {
		h := &c.sb[c.sbHead%int64(len(c.sb))]
		sbh = fmt.Sprintf("id=%d line=%#x committed=%v addrReady=%v atomic=%v",
			h.id, h.line, h.committed, h.addrReady, h.isAtomic)
	}
	return fmt.Sprintf("core%d{fetch=%d/%d rob=%d lq=%d sb=%d aq=%d drainBusy=%v done=%v head: %s | sbHead: %s}",
		c.id, c.fetchIdx, len(c.prog), c.robTail-c.robHead, c.lqTail-c.lqHead,
		c.sbTail-c.sbHead, c.aqTail-c.aqHead, c.drainBusy, c.done, head, sbh)
}
