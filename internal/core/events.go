package core

import "rowsim/internal/trace"

// This file is the core's side of the event-driven scheduler contract
// (internal/sim): NextEventAt reports the earliest future cycle at
// which Tick could do observable work absent external input, and the
// work counter lets the scheduler's cross-check replay a skipped Tick
// and assert it idle.

// never is the NextEventAt value meaning "no self-driven work pending".
const never = ^uint64(0)

// SetNow advances the core clock without doing any work. The event
// loop uses it to replicate the cycle loop's clock phasing: cache
// completions and coherence callbacks delivered at cycle T observe a
// core clock of T-1, because cores tick after caches within a cycle.
func (c *Core) SetNow(cycle uint64) { c.now = cycle }

// WorkDone returns the monotone observable-work counter. Every
// externally visible action a Tick can take increments it, so a
// replayed Tick on a core the event scheduler chose to skip must
// leave it unchanged.
func (c *Core) WorkDone() uint64 { return c.work }

// NextEventAt returns the earliest cycle strictly after now at which
// the core could do observable work without further external input
// (cache responses and coherence callbacks arrive via the mesh or the
// private cache and force a visit on their own); ^uint64(0) means the
// core is quiescent until something external happens. The contract is
// one-sided: returning too early wastes a visit, returning too late
// would diverge from the cycle loop — which is exactly what the
// cross-check mode verifies.
//
//rowlint:noalloc
func (c *Core) NextEventAt(now uint64) uint64 {
	if c.done {
		return never
	}
	next := now + 1
	if c.activeNow(next) {
		return next
	}
	at := never
	// A pending wheel event for cycle Y sits in bucket Y%wheelSize and
	// was scheduled fewer than wheelSize cycles before Y, so from any
	// later now the bucket's next alias time is Y itself: timed events
	// are neither fired early nor missed. Buckets holding only stale
	// (token-mismatched) events wake the core spuriously once; the
	// visit clears them.
	for b := uint64(0); b < wheelSize; b++ {
		if len(c.wheel[b]) == 0 {
			continue
		}
		t := next + (b+wheelSize-next%wheelSize)%wheelSize
		if t < at {
			at = t
		}
	}
	// Front end blocked only by the redirect / i-miss bubble.
	if c.fetchFreeAt > next && c.dispatchReady() && c.fetchFreeAt < at {
		at = c.fetchFreeAt
	}
	return at
}

// activeNow reports whether a Tick at cycle next would do observable
// work given the current architectural state. The clauses mirror the
// first action of each pipeline stage; wait lists whose entries are
// woken explicitly inside other actions (storeBlocked, fenceBlocked,
// lockWait) need no clause, because the waking action itself counts
// as work and triggers a wake recomputation.
//
//rowlint:noalloc
func (c *Core) activeNow(next uint64) bool {
	if len(c.readyQ) != 0 {
		return true // issue acts (or parks entries behind a fence)
	}
	if c.robHead < c.robTail {
		e := c.entry(c.robHead)
		switch {
		case e.st == sCompleted:
			// commit retires the head — unless it is an atomic whose
			// store_unlock has not reached the SB head yet (that drain
			// is covered by the SB clause below).
			if e.in.Kind != trace.Atomic || e.sb < 0 || e.sb == c.sbHead {
				return true
			}
		case e.in.Kind == trace.Fence && e.srcPending == 0:
			// A fence completes at the head once every older store has
			// drained; the last such drain happens after commit within
			// its tick, so the completion lands on the next one.
			if c.sbHead == c.sbTail || c.sb[c.sbHead%int64(len(c.sb))].id > e.id {
				return true
			}
		}
	}
	if c.sbHead != c.sbTail && !c.drainBusy {
		h := &c.sb[c.sbHead%int64(len(c.sb))]
		if h.committed && h.addrReady {
			return true // drainSB drains the head or goes busy fetching permission
		}
	}
	for _, ref := range c.lazyWait {
		e := c.entryBySlot(ref.slot, ref.id)
		if e != nil && e.st == sWaitLazy && e.srcPending == 0 && c.lazyReady(e) {
			return true // checkLazy issues it (ports reset every tick)
		}
	}
	for _, ref := range c.orderWait {
		e := c.entryBySlot(ref.slot, ref.id)
		if e != nil && e.st == sWaitLock && !c.olderUnlockedAtomic(e.id) {
			return true // checkOrderWait re-issues the lock
		}
	}
	if next >= c.fetchFreeAt && c.dispatchReady() {
		return true
	}
	if c.fetchIdx >= len(c.prog) && c.robHead == c.robTail && c.sbHead == c.sbTail {
		return true // checkDone latches completion
	}
	return false
}

// dispatchReady reports whether the front end could make observable
// progress on the next fetch instruction, ignoring the fetchFreeAt
// time gate (the caller accounts for it). The i-cache probe runs
// before the structural-hazard checks in dispatch and mutates fetch
// state even when dispatch then stalls, so a new fetch line counts as
// progress on its own.
//
//rowlint:noalloc
func (c *Core) dispatchReady() bool {
	if c.fetchHoldBy != 0 || c.fetchIdx >= len(c.prog) || c.robFull() {
		return false
	}
	in := &c.prog[c.fetchIdx]
	if in.PC&c.l1iLineMask != c.l1iLastLine {
		return true
	}
	switch in.Kind {
	case trace.Load:
		if c.lqTail-c.lqHead >= int64(len(c.lq)) {
			return false
		}
	case trace.Store:
		if c.sbTail-c.sbHead >= int64(len(c.sb)) {
			return false
		}
	case trace.Atomic:
		if c.lqTail-c.lqHead >= int64(len(c.lq)) || c.sbTail-c.sbHead >= int64(len(c.sb)) {
			return false
		}
		if in.LocksLine() && c.aqTail-c.aqHead >= int64(len(c.aq)) {
			return false
		}
	}
	return true
}
