package core

import (
	"testing"

	"rowsim/internal/config"
	"rowsim/internal/trace"
)

func testCore(t *testing.T, cfgMut func(*config.Config)) *Core {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = 1
	if cfgMut != nil {
		cfgMut(cfg)
	}
	return New(0, cfg, trace.Program{})
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 512: 512, 513: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTagRoundTrip(t *testing.T) {
	c := testCore(t, nil)
	c.rob[37] = robEntry{valid: true, id: 123456}
	tag := c.makeTag(37, 123456)
	e, slot := c.fromTag(tag)
	if e == nil || slot != 37 || e.id != 123456 {
		t.Fatalf("round trip failed: e=%v slot=%d", e, slot)
	}
	// Stale id: nil.
	if e, _ := c.fromTag(c.makeTag(37, 99)); e != nil {
		t.Fatal("stale tag resolved")
	}
}

func TestWrappedLatency(t *testing.T) {
	c := testCore(t, nil)
	if got := c.wrappedLatency(100, 500); got != 400 {
		t.Fatalf("latency = %d, want 400", got)
	}
	// The 14-bit subtractor aliases latencies near 2^14 (footnote 4):
	// a 16384+100 cycle latency reads as 100.
	if got := c.wrappedLatency(0, 16384+100); got != 100 {
		t.Fatalf("wrapped latency = %d, want 100", got)
	}
}

func TestFenceIDBookkeeping(t *testing.T) {
	c := testCore(t, nil)
	c.fenceIDs = []uint64{3, 7, 9}
	if !c.fenceBlocks(8) {
		t.Fatal("fence 3 must block id 8")
	}
	if c.fenceBlocks(2) {
		t.Fatal("no fence older than id 2")
	}
	c.removeFence(7)
	if len(c.fenceIDs) != 2 || c.fenceIDs[0] != 3 || c.fenceIDs[1] != 9 {
		t.Fatalf("fenceIDs = %v", c.fenceIDs)
	}
	c.removeFence(42) // absent: no-op
	if len(c.fenceIDs) != 2 {
		t.Fatal("removing an absent fence changed the list")
	}
}

func TestPosOfSlot(t *testing.T) {
	c := testCore(t, nil)
	// Simulate an advanced ring: head at 600 (wrapped).
	c.robHead, c.robTail = 600, 700
	for p := c.robHead; p < c.robTail; p++ {
		slot := c.slotOf(p)
		if got := c.posOfSlot(slot); got != p {
			t.Fatalf("posOfSlot(slotOf(%d)) = %d", p, got)
		}
	}
}

func TestAQScansEmpty(t *testing.T) {
	c := testCore(t, nil)
	if c.LineLocked(0x40) {
		t.Fatal("empty AQ reports a lock")
	}
	if c.olderSameLineAtomic(0x40, 5) || c.olderUnlockedAtomic(5) {
		t.Fatal("empty AQ reports conflicts")
	}
	if c.ExternalRequest(0x40, true) {
		t.Fatal("empty AQ stalls external requests")
	}
}

func TestAQLockBookkeeping(t *testing.T) {
	c := testCore(t, nil)
	c.aq[0] = aqEntry{id: 5, slot: 1, line: 0x100, hasAddr: true, locked: true}
	c.aqTail = 1
	if !c.LineLocked(0x100) {
		t.Fatal("locked line not reported")
	}
	if c.LineLocked(0x140) {
		t.Fatal("wrong line reported locked")
	}
	if !c.olderSameLineAtomic(0x100, 9) {
		t.Fatal("younger same-line atomic not blocked")
	}
	if c.olderSameLineAtomic(0x100, 5) {
		t.Fatal("the atomic blocks itself")
	}
	if c.olderSameLineAtomic(0x100, 3) {
		t.Fatal("an older atomic blocked by a younger one")
	}
	if c.olderUnlockedAtomic(9) {
		t.Fatal("locked entry counted as unlocked")
	}
	c.aq[0].locked = false
	if !c.olderUnlockedAtomic(9) {
		t.Fatal("unlocked older atomic not reported")
	}
}

func TestExternalRequestDetection(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.RoW.Detection = config.DetectRW
	c := New(0, cfg, trace.Program{})
	// Unlocked address match: ready-window detection marks contended
	// without stalling.
	c.aq[0] = aqEntry{id: 5, slot: 1, line: 0x100, hasAddr: true}
	c.aqTail = 1
	if c.ExternalRequest(0x100, true) {
		t.Fatal("unlocked match must not stall")
	}
	if !c.aq[0].contended {
		t.Fatal("ready window did not mark contention")
	}
	// Locked match: stalls and marks.
	c.aq[0].contended = false
	c.aq[0].locked = true
	if !c.ExternalRequest(0x100, true) {
		t.Fatal("locked match must stall")
	}
	if !c.aq[0].contended {
		t.Fatal("execution window did not mark contention")
	}
}

func TestExternalRequestEWIgnoresUnlocked(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.RoW.Detection = config.DetectEW
	c := New(0, cfg, trace.Program{})
	c.aq[0] = aqEntry{id: 5, slot: 1, line: 0x100, hasAddr: true}
	c.aqTail = 1
	c.ExternalRequest(0x100, true)
	if c.aq[0].contended {
		t.Fatal("EW detection must not use the ready window")
	}
}

func TestDetectDirRespectsThreshold(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.RoW.Detection = config.DetectRWDir
	c := New(0, cfg, trace.Program{})
	if !c.detectDir() {
		t.Fatal("RW+Dir with a finite threshold must enable Dir detection")
	}
	cfg.RoW.LatencyThreshold = -1 // infinite
	if c.detectDir() {
		t.Fatal("infinite threshold must disable Dir detection")
	}
}
