package core

import (
	"fmt"

	"rowsim/internal/config"
	"rowsim/internal/trace"
)

// Tick advances the core by one cycle. Stages run back to front so an
// instruction moves at most one stage per cycle.
func (c *Core) Tick(cycle uint64) {
	if c.done {
		return
	}
	c.now = cycle
	c.memPortsUsed = 0
	c.processWheel()
	c.commit()
	c.drainSB()
	c.checkOrderWait()
	c.checkLazy()
	c.issue()
	c.dispatch()
	c.checkDone()
}

// processWheel drains this cycle's completion events.
func (c *Core) processWheel() {
	bucket := c.now % wheelSize
	evs := c.wheel[bucket]
	if len(evs) == 0 {
		return
	}
	c.wheel[bucket] = evs[:0]
	for _, ev := range evs {
		e := c.entryBySlot(ev.slot, ev.id)
		if e == nil || e.token != ev.token {
			continue // flushed or cancelled
		}
		c.work++
		switch ev.kind {
		case evALUDone:
			c.complete(e, ev.slot)
		case evLoadAGU:
			c.loadAfterAGU(e, ev.slot)
		case evStoreAGU:
			c.storeAfterAGU(e, ev.slot)
		case evAtomicAGU:
			c.atomicAfterAGU(e, ev.slot)
		case evAtomicOp:
			c.complete(e, ev.slot)
		case evForwarded:
			if e.lq >= 0 {
				c.lq[e.lq%int64(len(c.lq))].done = true
			}
			c.complete(e, ev.slot)
		case evAtomicRetry:
			c.tryLock(e, ev.slot)
		case evAtomicFwdValue:
			c.forwardValue(e)
		}
	}
}

// complete marks an instruction executed and wakes its dependents.
func (c *Core) complete(e *robEntry, slot uint32) {
	c.work++
	e.st = sCompleted
	e.completeAt = c.now
	e.valueReady = true
	c.wakeDependents(e)

	if e.mispred && c.fetchHoldBy == e.id {
		c.fetchHoldBy = 0
		c.fetchFreeAt = c.now + uint64(c.cfg.Core.RedirectPenalty)
	}
}

// wakeDependents releases register consumers of this instruction.
func (c *Core) wakeDependents(e *robEntry) {
	for _, d := range e.deps {
		de := c.entryBySlot(d.slot, d.id)
		if de == nil || de.srcPending == 0 {
			continue
		}
		de.srcPending--
		if de.srcPending == 0 && de.st == sWaiting {
			c.makeReady(de, d.slot)
		}
	}
	e.deps = e.deps[:0]
}

// forwardValue makes an atomic's result visible to dependents before
// the lock completes (the RMW data came from an older store by
// forwarding, Section IV-E).
func (c *Core) forwardValue(e *robEntry) {
	if e.valueReady {
		return
	}
	e.valueReady = true
	c.wakeDependents(e)
}

// makeReady routes a dependency-resolved instruction to the right
// queue: the ready queue, or straight to the lazy-wait list for
// atomics issued lazily without the early address-calculation pass.
func (c *Core) makeReady(e *robEntry, slot uint32) {
	if e.in.Kind == trace.Atomic && e.lazy && !c.cfg.EarlyAddrCalc {
		e.st = sWaitLazy
		c.lazyWait = append(c.lazyWait, depRef{slot: slot, id: e.id})
		return
	}
	if e.in.Kind == trace.Fence {
		return // fences complete at the ROB head
	}
	e.st = sReady
	c.readyQ = append(c.readyQ, depRef{slot: slot, id: e.id})
}

// commit retires completed instructions in order.
func (c *Core) commit() {
	width := c.cfg.Core.CommitWidth
	for n := 0; n < width && c.robHead < c.robTail; n++ {
		e := c.entry(c.robHead)
		if e.in.Kind == trace.Fence && e.st != sCompleted {
			// A fence completes at the head once every OLDER store
			// has drained. Younger stores may already occupy the SB
			// (they dispatched behind the fence) — they cannot drain
			// before the fence commits, so waiting for a fully empty
			// SB would deadlock.
			olderDrained := c.sbHead == c.sbTail || c.sb[c.sbHead%int64(len(c.sb))].id > e.id
			if e.srcPending == 0 && olderDrained {
				c.complete(e, c.slotOf(c.robHead))
				c.removeFence(e.id)
				c.wakeFenceBlocked()
			} else {
				break
			}
		}
		if e.st != sCompleted {
			break
		}
		if e.in.Kind == trace.Atomic && e.sb >= 0 && e.sb != c.sbHead {
			// Total order for atomics: drain the SB before leaving
			// the ROB (Free Atomics, Section II-B).
			break
		}
		// Retire.
		switch e.in.Kind {
		case trace.Load:
			if e.lq != c.lqHead {
				c.fail(fmt.Sprintf("LQ head mismatch at load retire (%d != %d)", e.lq, c.lqHead))
			}
			c.lq[c.lqHead%int64(len(c.lq))] = lqEntry{}
			c.lqHead++
		case trace.Store:
			c.sb[e.sb%int64(len(c.sb))].committed = true
		case trace.Atomic:
			if e.lq != c.lqHead {
				c.fail(fmt.Sprintf("LQ head mismatch at atomic retire (%d != %d)", e.lq, c.lqHead))
			}
			c.lq[c.lqHead%int64(len(c.lq))] = lqEntry{}
			c.lqHead++
			c.sb[e.sb%int64(len(c.sb))].committed = true
			if e.in.LocksLine() {
				c.Stats.Atomics++
			}
		}
		e.valid = false
		c.robHead++
		c.Stats.Committed++
		c.work++
	}
}

// drainSB retires up to two store-buffer entries per cycle (two store
// ports): committed stores write to the L1D in order; atomic
// store_unlocks additionally clear their AQ entry and release the
// cacheline lock.
func (c *Core) drainSB() {
	for n := 0; n < 2; n++ {
		if c.sbHead == c.sbTail || c.drainBusy {
			return
		}
		h := &c.sb[c.sbHead%int64(len(c.sb))]
		if !h.committed || !h.addrReady {
			return
		}
		if h.noWrite {
			// Far atomic: the bank already performed the write.
			c.work++
			*h = sbEntry{}
			c.sbHead++
			continue
		}
		if !c.mem.StoreComplete(h.line) {
			// Need write permission first.
			c.work++
			c.drainBusy = true
			c.mem.Access(c.sbDrainTag(), h.line, true)
			return
		}
		c.work++
		if h.isAtomic {
			c.unlockAtomic(h)
		}
		*h = sbEntry{}
		c.sbHead++
	}
}

func (c *Core) sbDrainTag() uint64 { return 1<<63 | uint64(c.sbHead) }

// unlockAtomic clears the AQ head for a draining store_unlock, trains
// the contention predictor and releases any stalled external request.
func (c *Core) unlockAtomic(h *sbEntry) {
	if c.aqHead == c.aqTail {
		return // non-locking RMW: no AQ entry
	}
	a := &c.aq[c.aqHead%int64(len(c.aq))]
	if a.id != h.id {
		// The SB entry belongs to a non-locking RMW dispatched while
		// locking atomics are also in flight.
		return
	}
	line := a.line
	wasLocked := a.locked
	if a.contended {
		c.Stats.ContendedAtomics++
	}
	if a.locked {
		if debugLock && c.id == 0 {
			fmt.Printf("[%d] core0 UNLOCK line=%#x id=%d held=%d\n", c.now, a.line, a.id, c.now-a.lockAt)
		}
		c.Stats.LockToUnlock.Observe(float64(c.now - a.lockAt))
		c.Stats.LockHold.Observe(float64(c.now - a.lockAt))
	}
	if a.trainable && c.cp != nil {
		c.cp.Train(a.pc, a.predContended, a.contended)
	}
	if c.cfg.Core.FencedAtomics {
		c.removeFence(a.id)
		c.wakeFenceBlocked()
	}
	*a = aqEntry{}
	c.aqHead++
	if wasLocked {
		c.mem.LockReleased(line)
		c.wakeLockWaiters(line)
	}
}

// checkOrderWait retries atomics whose lock acquisition was deferred
// by per-core lock ordering, once every older atomic has locked.
func (c *Core) checkOrderWait() {
	if len(c.orderWait) == 0 {
		return
	}
	var wake []depRef
	kept := c.orderWait[:0]
	for _, ref := range c.orderWait {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitLock {
			continue
		}
		if c.olderUnlockedAtomic(e.id) {
			kept = append(kept, ref)
			continue
		}
		wake = append(wake, ref)
	}
	c.orderWait = kept
	for _, ref := range wake {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitLock {
			continue
		}
		c.work++
		e.st = sIssued
		c.tryLock(e, ref.slot)
	}
}

// checkLazy issues atomics whose lazy conditions are now met: oldest
// memory instruction (head of the LQ) and a drained SB (the atomic's
// own store_unlock entry at the SB head).
func (c *Core) checkLazy() {
	if len(c.lazyWait) == 0 {
		return
	}
	kept := c.lazyWait[:0]
	for _, ref := range c.lazyWait {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitLazy {
			continue
		}
		if e.srcPending != 0 || !c.lazyReady(e) || c.memPortsUsed >= c.cfg.Core.MemPorts {
			kept = append(kept, ref)
			continue
		}
		c.work++
		c.memPortsUsed++
		e.st = sIssued
		if !e.addrCalcDone {
			e.token++
			c.schedule(c.cfg.Core.AGULatency, evAtomicAGU, ref.slot, e.id, e.token)
		} else {
			c.tryLock(e, ref.slot)
		}
	}
	c.lazyWait = kept
}

func (c *Core) lazyReady(e *robEntry) bool {
	return e.lq == c.lqHead && e.sb == c.sbHead
}

// fenceBlocks reports whether an uncompleted fence older than id is
// in flight (younger memory operations must not issue past it).
func (c *Core) fenceBlocks(id uint64) bool {
	return len(c.fenceIDs) > 0 && c.fenceIDs[0] < id
}

func (c *Core) removeFence(id uint64) {
	for i, f := range c.fenceIDs {
		if f == id {
			c.fenceIDs = append(c.fenceIDs[:i], c.fenceIDs[i+1:]...)
			return
		}
	}
}

func (c *Core) wakeFenceBlocked() {
	if len(c.fenceBlocked) == 0 {
		return
	}
	for _, ref := range c.fenceBlocked {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitStore {
			continue
		}
		e.st = sReady
		c.readyQ = append(c.readyQ, ref)
	}
	c.fenceBlocked = c.fenceBlocked[:0]
}

func (c *Core) wakeLockWaiters(line uint64) {
	if len(c.lockWait) == 0 {
		return
	}
	// Rebuild the list before re-issuing: tryLock may push a waiter
	// right back onto it.
	var wake []depRef
	kept := c.lockWait[:0]
	for _, ref := range c.lockWait {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitLock {
			continue
		}
		if e.line == line {
			wake = append(wake, ref)
		} else {
			kept = append(kept, ref)
		}
	}
	c.lockWait = kept
	for _, ref := range wake {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitLock {
			continue
		}
		e.st = sIssued
		c.tryLock(e, ref.slot)
	}
}

// issue moves ready instructions into execution, bounded by the issue
// width and L1D ports.
func (c *Core) issue() {
	budget := c.cfg.Core.IssueWidth
	q := c.readyQ
	kept := q[:0]
	for i, ref := range q {
		if budget == 0 {
			kept = append(kept, q[i:]...)
			break
		}
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sReady {
			continue
		}
		if e.in.IsMem() {
			if c.fenceBlocks(e.id) {
				c.work++
				e.st = sWaitStore
				c.fenceBlocked = append(c.fenceBlocked, ref)
				continue
			}
			if c.memPortsUsed >= c.cfg.Core.MemPorts {
				kept = append(kept, ref)
				continue
			}
			c.memPortsUsed++
		}
		c.work++
		budget--
		e.st = sIssued
		e.token++
		co := &c.cfg.Core
		switch e.in.Kind {
		case trace.IntOp:
			c.schedule(co.IntALULatency, evALUDone, ref.slot, e.id, e.token)
		case trace.IntMul:
			c.schedule(co.IntMulLatency, evALUDone, ref.slot, e.id, e.token)
		case trace.FPOp:
			c.schedule(co.FPLatency, evALUDone, ref.slot, e.id, e.token)
		case trace.Branch:
			c.schedule(co.IntALULatency, evALUDone, ref.slot, e.id, e.token)
		case trace.Load:
			c.schedule(co.AGULatency, evLoadAGU, ref.slot, e.id, e.token)
		case trace.Store:
			c.schedule(co.AGULatency, evStoreAGU, ref.slot, e.id, e.token)
		case trace.Atomic:
			c.schedule(co.AGULatency, evAtomicAGU, ref.slot, e.id, e.token)
		default:
			c.fail(fmt.Sprintf("cannot issue unknown instruction kind %s", e.in))
			continue
		}
	}
	c.readyQ = kept
}

// dispatch fetches, renames and allocates new instructions.
func (c *Core) dispatch() {
	if c.fetchHoldBy != 0 || c.now < c.fetchFreeAt {
		return
	}
	for n := 0; n < c.cfg.Core.FetchWidth; n++ {
		if c.fetchIdx >= len(c.prog) || c.robFull() {
			return
		}
		in := &c.prog[c.fetchIdx]
		// Instruction cache: a miss on a new fetch line stalls the
		// front end while the line fills from the L2. A next-line
		// prefetcher hides sequential misses, so only discontinuous
		// fetch (branch targets, template wrap-around) pays.
		if line := in.PC & c.l1iLineMask; line != c.l1iLastLine {
			c.work++
			sequential := line == c.l1iLastLine+uint64(c.cfg.Mem.LineBytes)
			c.l1iLastLine = line
			if c.l1i.Lookup(line, true) == nil {
				c.l1i.Insert(line, 0)
				c.l1iMisses++
				if !sequential {
					c.fetchFreeAt = c.now + uint64(c.cfg.Mem.L2.HitCycles)
					return
				}
			}
		}
		// Structural hazards.
		switch in.Kind {
		case trace.Load:
			if c.lqTail-c.lqHead >= int64(len(c.lq)) {
				return
			}
		case trace.Store:
			if c.sbTail-c.sbHead >= int64(len(c.sb)) {
				return
			}
		case trace.Atomic:
			if c.lqTail-c.lqHead >= int64(len(c.lq)) || c.sbTail-c.sbHead >= int64(len(c.sb)) {
				return
			}
			if in.LocksLine() && c.aqTail-c.aqHead >= int64(len(c.aq)) {
				return
			}
		}
		c.dispatchOne(in)
		c.fetchIdx++
		if c.fetchHoldBy != 0 {
			return // mispredicted branch: stall the front end
		}
	}
}

func (c *Core) dispatchOne(in *trace.Instr) {
	c.work++
	pos := c.robTail
	slot := c.slotOf(pos)
	id := c.nextID
	c.nextID++
	e := &c.rob[slot]
	*e = robEntry{
		valid:      true,
		id:         id,
		pi:         int32(c.fetchIdx),
		in:         in,
		st:         sWaiting,
		dispatchAt: c.now,
		lq:         -1,
		sb:         -1,
		aq:         -1,
		deps:       e.deps[:0], // reuse backing array
		token:      e.token + 1,
	}
	c.robTail++

	// Rename sources.
	for _, r := range [2]trace.Reg{in.Src1, in.Src2} {
		if r == 0 {
			continue
		}
		ref := c.rename[r]
		if ref.id == 0 {
			continue
		}
		p := c.entryBySlot(ref.slot, ref.id)
		if p == nil || p.st == sCompleted || p.valueReady {
			continue
		}
		e.srcPending++
		p.deps = append(p.deps, depRef{slot: slot, id: id})
	}
	if in.Dst != 0 {
		c.rename[in.Dst] = depRef{slot: slot, id: id}
	}

	switch in.Kind {
	case trace.Branch:
		c.Stats.Branches++
		if c.bp.PredictAndTrain(in.PC, in.Taken) {
			c.Stats.Mispredicts++
			e.mispred = true
			c.fetchHoldBy = id
		}
	case trace.Fence:
		c.fenceIDs = append(c.fenceIDs, id)
	case trace.Load:
		e.lq = c.lqTail
		c.lq[c.lqTail%int64(len(c.lq))] = lqEntry{id: id, slot: slot}
		c.lqTail++
		e.waitStoreID = c.ss.DispatchLoad(in.PC)
	case trace.Store:
		e.sb = c.sbTail
		c.sb[c.sbTail%int64(len(c.sb))] = sbEntry{id: id, slot: slot}
		c.sbTail++
		c.ss.DispatchStore(in.PC, id)
	case trace.Atomic:
		c.dispatchAtomic(e, in, slot, id)
	}

	if e.srcPending == 0 {
		c.makeReady(e, slot)
	}
}

// dispatchAtomic allocates the atomic's LQ/SB/AQ entries and decides
// its execution policy (the RoW prediction happens here, at
// allocation, using the PC).
func (c *Core) dispatchAtomic(e *robEntry, in *trace.Instr, slot uint32, id uint64) {
	e.lq = c.lqTail
	c.lq[c.lqTail%int64(len(c.lq))] = lqEntry{id: id, slot: slot, isAtomic: true}
	c.lqTail++
	e.sb = c.sbTail
	c.sb[c.sbTail%int64(len(c.sb))] = sbEntry{id: id, slot: slot, isAtomic: true}
	c.sbTail++

	if !in.LocksLine() {
		return // plain RMW: no AQ entry, no policy decision
	}

	switch c.cfg.Policy {
	case config.PolicyEager:
		e.lazy = false
	case config.PolicyLazy, config.PolicyFar:
		e.lazy = true
	case config.PolicyRoW:
		e.predContended = c.cp.Predict(in.PC)
		e.lazy = e.predContended
		if e.lazy {
			c.Stats.PredictedLazy++
		}
	}
	if c.cfg.Core.FencedAtomics {
		e.lazy = true
		c.fenceIDs = append(c.fenceIDs, id)
	}

	if c.cfg.Policy == config.PolicyFar {
		// Far atomics never lock a line: no AQ entry, and the RMW's
		// store side needs no local write at drain time.
		c.sb[e.sb%int64(len(c.sb))].noWrite = true
		return
	}

	e.aq = c.aqTail
	c.aq[c.aqTail%int64(len(c.aq))] = aqEntry{
		id:            id,
		slot:          slot,
		pc:            in.PC,
		predContended: e.predContended,
		trainable:     c.cfg.Policy == config.PolicyRoW,
	}
	c.aqTail++
}

// checkDone latches completion once the whole program has committed
// and the buffers have drained.
func (c *Core) checkDone() {
	if c.fetchIdx >= len(c.prog) && c.robHead == c.robTail && c.sbHead == c.sbTail {
		c.work++
		c.done = true
		c.finishedAt = c.now
	}
}
