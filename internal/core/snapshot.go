package core

import (
	"fmt"

	"rowsim/internal/predictor"
	"rowsim/internal/sram"
	"rowsim/internal/trace"
)

// Snapshot/Restore for the out-of-order core: the checkpoint half that
// rowcheck never needed (the model checker drives tiny hand-rolled
// programs, not the full pipeline). A snapshot deep-copies every field
// that evolves during a run.
//
// Two rules keep restored runs byte-identical to uninterrupted ones:
//
//   - Ring buffers (ROB, LQ, SB, AQ, execution wheel) are serialized in
//     full, dead slots included. A dead ROB slot still carries its token
//     counter, which dispatch reads to invalidate stale wheel events —
//     dropping dead slots would fork the token sequence.
//   - Instruction pointers are serialized as program indexes. The trace
//     is a pure function of (params, cores, instrs, seed), so the caller
//     regenerates it and Restore rebinds in = &prog[pi]; the checkpoint
//     never stores the trace itself.
//
// Construction-time state (config, robMask, l1iLineMask, the attached
// cache and error sink) is rebuilt by core.New and excluded.

// DepRef is the exported view of one dependence edge.
type DepRef struct {
	Slot uint32 `json:"slot"`
	ID   uint64 `json:"id"`
}

// ROBEntrySnap is the exported view of one reorder-buffer slot. In is
// represented by Pi, the program index (-1 when the slot never held an
// instruction).
type ROBEntrySnap struct {
	Valid bool   `json:"valid"`
	ID    uint64 `json:"id"`
	Pi    int32  `json:"pi"`
	St    uint8  `json:"st"`

	SrcPending int8     `json:"src_pending"`
	Token      uint16   `json:"token"`
	Deps       []DepRef `json:"deps"`

	DispatchAt uint64 `json:"dispatch_at"`
	CompleteAt uint64 `json:"complete_at"`

	Line      uint64 `json:"line"`
	AddrReady bool   `json:"addr_ready"`
	LQ        int64  `json:"lq"`
	SB        int64  `json:"sb"`
	AQ        int64  `json:"aq"`

	WaitStoreID uint64 `json:"wait_store_id"`
	Mispred     bool   `json:"mispred"`
	ValueReady  bool   `json:"value_ready"`

	Lazy          bool   `json:"lazy"`
	PredContended bool   `json:"pred_contended"`
	AddrCalcDone  bool   `json:"addr_calc_done"`
	Locked        bool   `json:"locked"`
	LockAt        uint64 `json:"lock_at"`
	LockIssueAt   uint64 `json:"lock_issue_at"`
}

// SBEntrySnap is the exported view of one store-buffer slot.
type SBEntrySnap struct {
	ID        uint64 `json:"id"`
	Slot      uint32 `json:"slot"`
	Line      uint64 `json:"line"`
	AddrReady bool   `json:"addr_ready"`
	Committed bool   `json:"committed"`
	IsAtomic  bool   `json:"is_atomic"`
	NoWrite   bool   `json:"no_write"`
}

// LQEntrySnap is the exported view of one load-queue slot.
type LQEntrySnap struct {
	ID       uint64 `json:"id"`
	Slot     uint32 `json:"slot"`
	Line     uint64 `json:"line"`
	HasLine  bool   `json:"has_line"`
	IsAtomic bool   `json:"is_atomic"`
	Done     bool   `json:"done"`
}

// AQEntrySnap is the exported view of one Atomic Queue slot.
type AQEntrySnap struct {
	ID        uint64 `json:"id"`
	Slot      uint32 `json:"slot"`
	PC        uint64 `json:"pc"`
	Line      uint64 `json:"line"`
	HasAddr   bool   `json:"has_addr"`
	Locked    bool   `json:"locked"`
	Contended bool   `json:"contended"`
	IssuedAt  uint64 `json:"issued_at"`
	LockAt    uint64 `json:"lock_at"`

	PredContended bool `json:"pred_contended"`
	Trainable     bool `json:"trainable"`
}

// WheelEventSnap is the exported view of one scheduled completion.
type WheelEventSnap struct {
	Slot  uint32 `json:"slot"`
	ID    uint64 `json:"id"`
	Token uint16 `json:"token"`
	Kind  uint8  `json:"kind"`
}

// CoreSnap is a deep copy of the core's mutable state.
type CoreSnap struct {
	FetchIdx    int    `json:"fetch_idx"`
	FetchHoldBy uint64 `json:"fetch_hold_by"`
	FetchFreeAt uint64 `json:"fetch_free_at"`

	Now    uint64 `json:"now"`
	NextID uint64 `json:"next_id"`

	ROB     []ROBEntrySnap `json:"rob"`
	ROBHead int64          `json:"rob_head"`
	ROBTail int64          `json:"rob_tail"`

	LQ     []LQEntrySnap `json:"lq"`
	LQHead int64         `json:"lq_head"`
	LQTail int64         `json:"lq_tail"`
	SB     []SBEntrySnap `json:"sb"`
	SBHead int64         `json:"sb_head"`
	SBTail int64         `json:"sb_tail"`
	AQ     []AQEntrySnap `json:"aq"`
	AQHead int64         `json:"aq_head"`
	AQTail int64         `json:"aq_tail"`

	Rename []DepRef `json:"rename"`

	ReadyQ       []DepRef `json:"ready_q"`
	LazyWait     []DepRef `json:"lazy_wait"`
	StoreBlocked []DepRef `json:"store_blocked"`
	FenceBlocked []DepRef `json:"fence_blocked"`
	LockWait     []DepRef `json:"lock_wait"`
	OrderWait    []DepRef `json:"order_wait"`
	FenceIDs     []uint64 `json:"fence_ids"`

	Wheel [][]WheelEventSnap `json:"wheel"`

	BP predictor.BranchSnap      `json:"bp"`
	SS predictor.StoreSetSnap    `json:"ss"`
	CP *predictor.ContentionSnap `json:"cp,omitempty"` // nil unless policy RoW

	L1I         sram.Snap `json:"l1i"`
	L1ILastLine uint64    `json:"l1i_last_line"`
	L1IMisses   uint64    `json:"l1i_misses"`

	MemPortsUsed int    `json:"mem_ports_used"`
	DrainBusy    bool   `json:"drain_busy"`
	Work         uint64 `json:"work"`
	Done         bool   `json:"done"`
	FinishedAt   uint64 `json:"finished_at"`

	Stats Stats `json:"stats"`
}

func snapDeps(ds []depRef) []DepRef {
	out := make([]DepRef, 0, len(ds))
	for _, d := range ds {
		out = append(out, DepRef{Slot: d.slot, ID: d.id})
	}
	return out
}

func restoreDeps(ds []DepRef) []depRef {
	var out []depRef
	for _, d := range ds {
		out = append(out, depRef{slot: d.Slot, id: d.ID})
	}
	return out
}

// Snapshot captures the core's full pipeline state. It returns a
// pointer so the ~900-byte snapshot is built once and handed around by
// reference (the duffcopy of passing it by value showed up in profiles).
func (c *Core) Snapshot() *CoreSnap {
	s := &CoreSnap{
		FetchIdx:     c.fetchIdx,
		FetchHoldBy:  c.fetchHoldBy,
		FetchFreeAt:  c.fetchFreeAt,
		Now:          c.now,
		NextID:       c.nextID,
		ROBHead:      c.robHead,
		ROBTail:      c.robTail,
		LQHead:       c.lqHead,
		LQTail:       c.lqTail,
		SBHead:       c.sbHead,
		SBTail:       c.sbTail,
		AQHead:       c.aqHead,
		AQTail:       c.aqTail,
		ReadyQ:       snapDeps(c.readyQ),
		LazyWait:     snapDeps(c.lazyWait),
		StoreBlocked: snapDeps(c.storeBlocked),
		FenceBlocked: snapDeps(c.fenceBlocked),
		LockWait:     snapDeps(c.lockWait),
		OrderWait:    snapDeps(c.orderWait),
		FenceIDs:     append([]uint64(nil), c.fenceIDs...),
		BP:           c.bp.Snapshot(),
		SS:           c.ss.Snapshot(),
		L1I:          c.l1i.Snapshot(),
		L1ILastLine:  c.l1iLastLine,
		L1IMisses:    c.l1iMisses,
		MemPortsUsed: c.memPortsUsed,
		DrainBusy:    c.drainBusy,
		Work:         c.work,
		Done:         c.done,
		FinishedAt:   c.finishedAt,
		Stats:        c.Stats,
	}
	s.Stats.LockHold = c.Stats.LockHold.Clone()
	if c.cp != nil {
		cp := c.cp.Snapshot()
		s.CP = &cp
	}
	s.Rename = make([]DepRef, trace.NumRegs)
	for i, r := range c.rename {
		s.Rename[i] = DepRef{Slot: r.slot, ID: r.id}
	}
	s.ROB = make([]ROBEntrySnap, len(c.rob))
	for i := range c.rob {
		e := &c.rob[i]
		pi := int32(-1)
		if e.in != nil {
			pi = e.pi
		}
		s.ROB[i] = ROBEntrySnap{
			Valid: e.valid, ID: e.id, Pi: pi, St: uint8(e.st),
			SrcPending: e.srcPending, Token: e.token, Deps: snapDeps(e.deps),
			DispatchAt: e.dispatchAt, CompleteAt: e.completeAt,
			Line: e.line, AddrReady: e.addrReady, LQ: e.lq, SB: e.sb, AQ: e.aq,
			WaitStoreID: e.waitStoreID, Mispred: e.mispred, ValueReady: e.valueReady,
			Lazy: e.lazy, PredContended: e.predContended, AddrCalcDone: e.addrCalcDone,
			Locked: e.locked, LockAt: e.lockAt, LockIssueAt: e.lockIssueAt,
		}
	}
	s.LQ = make([]LQEntrySnap, len(c.lq))
	for i, e := range c.lq {
		s.LQ[i] = LQEntrySnap{ID: e.id, Slot: e.slot, Line: e.line, HasLine: e.hasLine, IsAtomic: e.isAtomic, Done: e.done}
	}
	s.SB = make([]SBEntrySnap, len(c.sb))
	for i, e := range c.sb {
		s.SB[i] = SBEntrySnap{ID: e.id, Slot: e.slot, Line: e.line, AddrReady: e.addrReady, Committed: e.committed, IsAtomic: e.isAtomic, NoWrite: e.noWrite}
	}
	s.AQ = make([]AQEntrySnap, len(c.aq))
	for i, e := range c.aq {
		s.AQ[i] = AQEntrySnap{
			ID: e.id, Slot: e.slot, PC: e.pc, Line: e.line, HasAddr: e.hasAddr,
			Locked: e.locked, Contended: e.contended, IssuedAt: e.issuedAt, LockAt: e.lockAt,
			PredContended: e.predContended, Trainable: e.trainable,
		}
	}
	s.Wheel = make([][]WheelEventSnap, len(c.wheel))
	for b, evs := range c.wheel {
		for _, ev := range evs {
			s.Wheel[b] = append(s.Wheel[b], WheelEventSnap{Slot: ev.slot, ID: ev.id, Token: ev.token, Kind: ev.kind})
		}
	}
	return s
}

// Restore rewinds the core to a previously captured CoreSnap. The core
// must have been built by core.New with the same configuration and the
// same (regenerated) program — instruction pointers are rebound to
// prog by the serialized program indexes.
func (c *Core) Restore(s *CoreSnap) {
	if len(s.ROB) != len(c.rob) || len(s.LQ) != len(c.lq) || len(s.SB) != len(c.sb) || len(s.AQ) != len(c.aq) {
		panic(fmt.Sprintf("core: restoring snapshot with rings rob=%d lq=%d sb=%d aq=%d into core with rob=%d lq=%d sb=%d aq=%d",
			len(s.ROB), len(s.LQ), len(s.SB), len(s.AQ), len(c.rob), len(c.lq), len(c.sb), len(c.aq)))
	}
	c.fetchIdx = s.FetchIdx
	c.fetchHoldBy = s.FetchHoldBy
	c.fetchFreeAt = s.FetchFreeAt
	c.now = s.Now
	c.nextID = s.NextID
	c.robHead, c.robTail = s.ROBHead, s.ROBTail
	c.lqHead, c.lqTail = s.LQHead, s.LQTail
	c.sbHead, c.sbTail = s.SBHead, s.SBTail
	c.aqHead, c.aqTail = s.AQHead, s.AQTail
	for i := range c.rename {
		c.rename[i] = depRef{slot: s.Rename[i].Slot, id: s.Rename[i].ID}
	}
	c.readyQ = restoreDeps(s.ReadyQ)
	c.lazyWait = restoreDeps(s.LazyWait)
	c.storeBlocked = restoreDeps(s.StoreBlocked)
	c.fenceBlocked = restoreDeps(s.FenceBlocked)
	c.lockWait = restoreDeps(s.LockWait)
	c.orderWait = restoreDeps(s.OrderWait)
	c.fenceIDs = append(c.fenceIDs[:0], s.FenceIDs...)
	c.bp.Restore(s.BP)
	c.ss.Restore(s.SS)
	if c.cp != nil && s.CP != nil {
		c.cp.Restore(*s.CP)
	}
	c.l1i.Restore(s.L1I)
	c.l1iLastLine = s.L1ILastLine
	c.l1iMisses = s.L1IMisses
	c.memPortsUsed = s.MemPortsUsed
	c.drainBusy = s.DrainBusy
	c.work = s.Work
	c.done = s.Done
	c.finishedAt = s.FinishedAt
	c.Stats = s.Stats //rowlint:ignore bigcopy restore rewinds the whole stats block once per resume, off the visit path
	c.Stats.LockHold = s.Stats.LockHold.Clone()

	for i := range c.rob {
		e := &s.ROB[i]
		var in *trace.Instr
		if e.Pi >= 0 && int(e.Pi) < len(c.prog) {
			in = &c.prog[e.Pi]
		}
		c.rob[i] = robEntry{
			valid: e.Valid, id: e.ID, pi: e.Pi, in: in, st: state(e.St),
			srcPending: e.SrcPending, token: e.Token, deps: restoreDeps(e.Deps),
			dispatchAt: e.DispatchAt, completeAt: e.CompleteAt,
			line: e.Line, addrReady: e.AddrReady, lq: e.LQ, sb: e.SB, aq: e.AQ,
			waitStoreID: e.WaitStoreID, mispred: e.Mispred, valueReady: e.ValueReady,
			lazy: e.Lazy, predContended: e.PredContended, addrCalcDone: e.AddrCalcDone,
			locked: e.Locked, lockAt: e.LockAt, lockIssueAt: e.LockIssueAt,
		}
	}
	for i, e := range s.LQ {
		c.lq[i] = lqEntry{id: e.ID, slot: e.Slot, line: e.Line, hasLine: e.HasLine, isAtomic: e.IsAtomic, done: e.Done}
	}
	for i, e := range s.SB {
		c.sb[i] = sbEntry{id: e.ID, slot: e.Slot, line: e.Line, addrReady: e.AddrReady, committed: e.Committed, isAtomic: e.IsAtomic, noWrite: e.NoWrite}
	}
	for i, e := range s.AQ {
		c.aq[i] = aqEntry{
			id: e.ID, slot: e.Slot, pc: e.PC, line: e.Line, hasAddr: e.HasAddr,
			locked: e.Locked, contended: e.Contended, issuedAt: e.IssuedAt, lockAt: e.LockAt,
			predContended: e.PredContended, trainable: e.Trainable,
		}
	}
	for b := range c.wheel {
		c.wheel[b] = c.wheel[b][:0]
		for _, ev := range s.Wheel[b] {
			c.wheel[b] = append(c.wheel[b], wheelEvent{slot: ev.Slot, id: ev.ID, token: ev.Token, kind: ev.Kind})
		}
	}
}
