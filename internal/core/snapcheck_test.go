package core

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard:
// adding a field to the core (or any of its ring-entry structs)
// without deciding its checkpoint story fails here, before a
// checkpoint-resumed run can silently diverge.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Core{}, []string{
		"fetchIdx", "fetchHoldBy", "fetchFreeAt",
		"now", "nextID",
		"rob", "robHead", "robTail",
		"lq", "lqHead", "lqTail",
		"sb", "sbHead", "sbTail",
		"aq", "aqHead", "aqTail",
		"rename",
		"readyQ", "lazyWait", "storeBlocked", "fenceBlocked",
		"lockWait", "orderWait", "fenceIDs",
		"wheel",
		"bp", "ss", "cp",
		"l1i", "l1iLastLine", "l1iMisses",
		"memPortsUsed", "drainBusy", "work",
		"done", "finishedAt",
		"Stats",
	}, map[string]string{
		"id":          "construction-time identity, fixed by system wiring",
		"cfg":         "construction-time configuration, part of the checkpoint content key",
		"prog":        "pure function of (params, cores, instrs, seed); regenerated, ROB entries rebind by program index",
		"robMask":     "derived from the ROB size at construction",
		"mem":         "attached cache, snapshotted separately as CacheSnap",
		"l1iLineMask": "derived from the line size at construction",
		"sink":        "wiring; provably empty at checkpoint instants (RunCtx checks it earlier in the cycle)",
	})

	snapcheck.Assert(t, robEntry{}, []string{
		"valid", "id", "pi", "in", // in is serialized as the program index (Pi)
		"st", "srcPending", "token", "deps",
		"dispatchAt", "completeAt",
		"line", "addrReady", "lq", "sb", "aq",
		"waitStoreID", "mispred", "valueReady",
		"lazy", "predContended", "addrCalcDone",
		"locked", "lockAt", "lockIssueAt",
	}, nil)

	snapcheck.Assert(t, sbEntry{}, []string{
		"id", "slot", "line", "addrReady", "committed", "isAtomic", "noWrite",
	}, nil)

	snapcheck.Assert(t, lqEntry{}, []string{
		"id", "slot", "line", "hasLine", "isAtomic", "done",
	}, nil)

	snapcheck.Assert(t, aqEntry{}, []string{
		"id", "slot", "pc", "line", "hasAddr",
		"locked", "contended", "issuedAt", "lockAt",
		"predContended", "trainable",
	}, nil)

	snapcheck.Assert(t, wheelEvent{}, []string{
		"slot", "id", "token", "kind",
	}, nil)

	snapcheck.Assert(t, depRef{}, []string{"slot", "id"}, nil)
}
