package core

import (
	"testing"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/trace"
)

// nullNet satisfies coherence.Network; white-box pipeline tests never
// need real transport (everything under test stays cache-resident).
type nullNet struct{}

func (nullNet) Send(*coherence.Msg)              {}
func (nullNet) SendAfter(*coherence.Msg, uint64) {}

// newWiredCore builds a core with a real private cache on a null
// network. Lines in warm are pre-installed in M state so memory
// operations hit locally and the pipeline can be observed in
// isolation.
func newWiredCore(t *testing.T, cfg *config.Config, prog trace.Program, warm []uint64) *Core {
	t.Helper()
	c := New(0, cfg, prog)
	pc := cache.NewPrivate(0, cfg, nullNet{}, c, func(uint64) int { return 1 })
	for _, line := range warm {
		pc.Warm(line, cache.StateM)
	}
	c.AttachMemory(pc)
	return c
}

func runCycles(c *Core, from, n uint64) {
	for cyc := from; cyc < from+n; cyc++ {
		c.Mem().Tick(cyc)
		c.Tick(cyc)
	}
}

func smallCoreCfg() *config.Config {
	cfg := config.Default()
	cfg.NumCores = 1
	return cfg
}

func TestDispatchStallsOnROBFull(t *testing.T) {
	cfg := smallCoreCfg()
	cfg.Core.ROBSize = 8
	// A long-latency head (cold load on a null network never
	// completes) blocks commit; dispatch must stop at ROB capacity.
	prog := trace.Program{{PC: 4, Kind: trace.Load, Dst: 1, Addr: 0x99990000, Size: 8}}
	for i := 0; i < 40; i++ {
		prog = append(prog, trace.Instr{PC: uint64(8 + 4*i), Kind: trace.IntOp, Dst: 2})
	}
	c := newWiredCore(t, cfg, prog, nil)
	runCycles(c, 1, 200)
	if got := c.robTail - c.robHead; got != 8 {
		t.Fatalf("ROB occupancy %d, want capacity 8", got)
	}
	if c.done {
		t.Fatal("core finished with an unsatisfiable load")
	}
}

func TestDispatchStallsOnAQFull(t *testing.T) {
	cfg := smallCoreCfg()
	cfg.Core.AQSize = 2
	var prog trace.Program
	for i := 0; i < 6; i++ {
		prog = append(prog, trace.Instr{
			PC: uint64(4 + 4*i), Kind: trace.Atomic, Dst: 1,
			Addr: 0x99990000, Size: 8, AtomicOp: trace.FAA, // never completes: null net
		})
	}
	c := newWiredCore(t, cfg, prog, nil)
	runCycles(c, 1, 100)
	if got := c.aqTail - c.aqHead; got != 2 {
		t.Fatalf("AQ occupancy %d, want capacity 2", got)
	}
}

func TestChainExecutesInOrder(t *testing.T) {
	cfg := smallCoreCfg()
	// r1 <- op; r2 <- op(r1); r3 <- op(r2): strict chain, one ALU
	// completion per cycle at best.
	prog := trace.Program{
		{PC: 4, Kind: trace.IntOp, Dst: 1},
		{PC: 8, Kind: trace.IntOp, Src1: 1, Dst: 2},
		{PC: 12, Kind: trace.IntOp, Src1: 2, Dst: 3},
	}
	c := newWiredCore(t, cfg, prog, nil)
	runCycles(c, 1, 50)
	if !c.done {
		t.Fatal("chain did not finish")
	}
	// Lower bound: dispatch (1) + three dependent 1-cycle ops.
	if c.finishedAt < 4 {
		t.Fatalf("finished at %d, impossibly fast for a 3-deep chain", c.finishedAt)
	}
}

func TestStoreThenLoadForwardsLocally(t *testing.T) {
	cfg := smallCoreCfg()
	prog := trace.Program{
		{PC: 4, Kind: trace.Store, Src1: 1, Addr: 0x40000100, Size: 8},
		{PC: 8, Kind: trace.Load, Dst: 2, Addr: 0x40000100, Size: 8},
	}
	c := newWiredCore(t, cfg, prog, []uint64{0x40000100 &^ 63})
	runCycles(c, 1, 100)
	if !c.done {
		t.Fatal("did not finish")
	}
	if c.Stats.LoadForwards != 1 {
		t.Fatalf("forwards = %d, want 1", c.Stats.LoadForwards)
	}
}

func TestFlushFromRollsBackRings(t *testing.T) {
	cfg := smallCoreCfg()
	var prog trace.Program
	lines := []uint64{}
	for i := 0; i < 12; i++ {
		addr := uint64(0x40000000 + i*64)
		lines = append(lines, addr)
		prog = append(prog,
			trace.Instr{PC: uint64(4 + 16*i), Kind: trace.Load, Dst: 1, Addr: addr, Size: 8},
			trace.Instr{PC: uint64(8 + 16*i), Kind: trace.Store, Src1: 1, Addr: addr, Size: 8},
			trace.Instr{PC: uint64(12 + 16*i), Kind: trace.Atomic, Dst: 2, Addr: addr, Size: 8, AtomicOp: trace.FAA},
		)
	}
	c := newWiredCore(t, cfg, prog, lines)
	// Run just past the initial I-cache fill so a window is in
	// flight, then flush from the middle of the ROB.
	runCycles(c, 1, 16)
	if c.robTail-c.robHead < 8 {
		t.Fatalf("window too small to test flush: %d", c.robTail-c.robHead)
	}
	cut := c.robHead + (c.robTail-c.robHead)/2
	cutEntry := c.entry(cut)
	wantFetch := int(cutEntry.pi)
	c.flushFrom(cut)
	if c.robTail != cut {
		t.Fatalf("robTail = %d, want %d", c.robTail, cut)
	}
	if c.fetchIdx != wantFetch {
		t.Fatalf("fetchIdx = %d, want %d", c.fetchIdx, wantFetch)
	}
	// Ring invariants: every surviving entry's LQ/SB/AQ positions are
	// below the rolled-back tails.
	for p := c.robHead; p < c.robTail; p++ {
		e := c.entry(p)
		if e.lq >= c.lqTail || e.sb >= c.sbTail || (e.aq >= 0 && e.aq >= c.aqTail) {
			t.Fatalf("entry %d references flushed queue slots", p)
		}
	}
	// The machine must still run to completion afterwards.
	runCycles(c, 17, 4000)
	if !c.done {
		t.Fatalf("core wedged after flush: %s", c)
	}
	if c.Stats.Committed != uint64(len(prog)) {
		t.Fatalf("committed %d, want %d", c.Stats.Committed, len(prog))
	}
}

func TestRenameRebuiltAfterFlush(t *testing.T) {
	cfg := smallCoreCfg()
	prog := trace.Program{
		{PC: 4, Kind: trace.IntMul, Dst: 7},          // slow producer
		{PC: 8, Kind: trace.IntOp, Src1: 7, Dst: 8},  // consumer
		{PC: 12, Kind: trace.IntOp, Dst: 7},          // re-writer (will be flushed)
		{PC: 16, Kind: trace.IntOp, Src1: 7, Dst: 9}, // consumer of re-writer
	}
	c := newWiredCore(t, cfg, prog, nil)
	runCycles(c, 1, 13) // first fetch pays the I-cache fill
	if c.robTail-c.robHead != 4 {
		t.Fatalf("dispatched %d", c.robTail-c.robHead)
	}
	// Flush the re-writer and its consumer; the rename table must
	// point back at the original producer of r7.
	c.flushFrom(c.robHead + 2)
	ref := c.rename[7]
	e := c.entryBySlot(ref.slot, ref.id)
	if e == nil || e.in.PC != 4 {
		t.Fatalf("rename[7] does not point at the surviving producer")
	}
	runCycles(c, 14, 2000)
	if !c.done {
		t.Fatal("did not finish after flush")
	}
}
