package core

import (
	"fmt"

	"rowsim/internal/cache"
	"rowsim/internal/config"
	"rowsim/internal/trace"
)

// loadAfterAGU runs when a load's address generation finishes: record
// the line in the LQ, honour store-set dependencies, try store-to-load
// forwarding, and otherwise access the L1D.
func (c *Core) loadAfterAGU(e *robEntry, slot uint32) {
	e.line = c.mem.Line(e.in.Addr)
	e.addrReady = true
	le := &c.lq[e.lq%int64(len(c.lq))]
	le.line = e.line
	le.hasLine = true

	if e.waitStoreID != 0 && c.storeUnresolved(e.waitStoreID) {
		e.st = sWaitStore
		c.storeBlocked = append(c.storeBlocked, depRef{slot: slot, id: e.id})
		return
	}
	if idx := c.sbMatch(e.id, e.line, false); idx >= 0 {
		// Forward from the youngest matching resolved store.
		c.Stats.LoadForwards++
		c.schedule(c.cfg.Core.ForwardLat, evForwarded, slot, e.id, e.token)
		return
	}
	c.mem.TrainPrefetch(e.in.PC, e.in.Addr)
	c.mem.Access(c.makeTag(slot, e.id), e.in.Addr, false)
}

// storeAfterAGU resolves a store's address: update its SB entry,
// detect memory-order violations by younger loads, prefetch the line
// exclusive, and complete (data sources were ready at issue).
func (c *Core) storeAfterAGU(e *robEntry, slot uint32) {
	e.line = c.mem.Line(e.in.Addr)
	e.addrReady = true
	se := &c.sb[e.sb%int64(len(c.sb))]
	se.line = e.line
	se.addrReady = true
	c.ss.CompleteStore(e.in.PC, e.id)

	// A violation flush only removes loads younger than this store,
	// so the store itself always survives.
	c.checkViolation(e)
	// Exclusive prefetch so the post-commit drain write hits.
	c.mem.Access(cache.TagPrefetch, e.in.Addr, true)
	c.complete(e, slot)
	c.wakeStoreBlocked()
}

// atomicAfterAGU is the atomic's address-calculation pass. For
// predicted-contended atomics under RoW this is the
// only-calculate-address issue: it opens the ready window (the AQ now
// knows the address) and searches the SB for a forwarding match that
// would flip the atomic back to eager (atomic locality, Section IV-E).
func (c *Core) atomicAfterAGU(e *robEntry, slot uint32) {
	e.line = c.mem.Line(e.in.Addr)
	e.addrReady = true
	e.addrCalcDone = true
	if le := &c.lq[e.lq%int64(len(c.lq))]; le.id == e.id {
		le.line = e.line
		le.hasLine = true
	}
	if se := &c.sb[e.sb%int64(len(c.sb))]; se.id == e.id {
		se.line = e.line
		se.addrReady = true
	}
	if e.aq >= 0 {
		a := &c.aq[e.aq%int64(len(c.aq))]
		a.line = e.line
		a.hasAddr = true
	}

	if c.cfg.ForwardAtomics && !c.cfg.Core.FencedAtomics && c.cfg.Policy != config.PolicyFar &&
		c.sbMatch(e.id, e.line, true) >= 0 {
		// Atomic locality (Section IV-E): a matching older regular
		// store can forward its data, and a predicted-contended
		// atomic flips to eager so the line is locked while the store
		// still owns it. The store contends for the line anyway,
		// which mitigates the cost of the eager lock.
		c.Stats.ForwardedAtomics++
		if e.lazy {
			e.lazy = false
		}
		// Dependents can proceed as soon as the forwarded value
		// arrives, before the lock completes.
		c.schedule(c.cfg.Core.ForwardLat+c.cfg.Core.IntALULatency, evAtomicFwdValue, slot, e.id, e.token)
	}
	if e.lazy && !c.lazyReady(e) {
		e.st = sWaitLazy
		c.lazyWait = append(c.lazyWait, depRef{slot: slot, id: e.id})
		return
	}
	c.tryLock(e, slot)
}

// tryLock issues the atomic's load_lock: request the line with
// exclusive permission. Same-line atomics of one core serialize in
// age order: a younger atomic waits for an older in-flight same-line
// atomic, and an older atomic preempts a younger one that locked
// first (the younger replays after the older unlocks) — otherwise the
// commit order would deadlock against the lock order.
func (c *Core) tryLock(e *robEntry, slot uint32) {
	if c.cfg.Policy == config.PolicyFar && e.in.LocksLine() {
		// Far execution: ship the RMW to the line's home bank.
		e.st = sIssued
		e.lockIssueAt = c.now
		c.Stats.DispatchToIssue.Observe(float64(c.now - e.dispatchAt))
		c.Stats.FarIssued++
		c.mem.FarRMW(c.makeTag(slot, e.id), e.in.Addr)
		return
	}
	if c.olderSameLineAtomic(e.line, e.id) {
		e.st = sWaitLock
		c.lockWait = append(c.lockWait, depRef{slot: slot, id: e.id})
		return
	}
	c.preemptYoungerLock(e.line, e.id)
	e.st = sIssued
	e.lockIssueAt = c.now
	if e.aq >= 0 {
		c.aq[e.aq%int64(len(c.aq))].issuedAt = c.now
	}
	c.Stats.DispatchToIssue.Observe(float64(c.now - e.dispatchAt))
	if e.lazy {
		c.Stats.LazyIssued++
		c.Stats.YoungerStartedAtLazy.Observe(float64(c.countYoungerStarted(e.id)))
	} else {
		c.Stats.EagerIssued++
		c.Stats.OlderUnexecAtEager.Observe(float64(c.countOlderUnexecuted(e.id)))
	}
	c.mem.Access(c.makeTag(slot, e.id), e.in.Addr, true)
}

// MemResp implements cache.Client: a memory access completed.
func (c *Core) MemResp(tag uint64, info cache.RespInfo) {
	if tag>>63 == 1 {
		// Store-buffer drain GetX completed; the write retries next
		// cycle and will hit.
		c.drainBusy = false
		return
	}
	e, slot := c.fromTag(tag)
	if e == nil {
		return // flushed while the miss was outstanding
	}
	switch e.in.Kind {
	case trace.Load:
		if e.lq >= 0 {
			le := &c.lq[e.lq%int64(len(c.lq))]
			if le.id == e.id {
				le.done = true
			}
		}
		c.complete(e, slot)
	case trace.Atomic:
		c.atomicLineArrived(e, slot, info)
	default:
		c.fail(fmt.Sprintf("unexpected MemResp for non-memory instruction %s", e.in))
	}
}

// atomicLineArrived locks the line (for locking atomics) and starts
// the RMW ALU operation. The RW+Dir contention detector fires here:
// a fill served by a remote private cache whose latency exceeds the
// threshold marks the atomic contended.
func (c *Core) atomicLineArrived(e *robEntry, slot uint32, info cache.RespInfo) {
	if c.cfg.Policy == config.PolicyFar && e.in.LocksLine() {
		// The bank performed the RMW; the result is back.
		c.Stats.IssueToLock.Observe(float64(c.now - e.lockIssueAt))
		if le := &c.lq[e.lq%int64(len(c.lq))]; le.id == e.id {
			le.done = true
		}
		c.complete(e, slot)
		return
	}
	if e.in.LocksLine() {
		if c.olderSameLineAtomic(e.line, e.id) {
			// An older same-line atomic appeared (resolved its
			// address) between our request and the response: wait
			// for its unlock.
			e.st = sWaitLock
			c.lockWait = append(c.lockWait, depRef{slot: slot, id: e.id})
			return
		}
		if c.olderUnlockedAtomic(e.id) {
			// Locks are acquired in program order per core: this is
			// what makes cache locking deadlock-free (the globally
			// oldest atomic can always commit, so every lock releases
			// in finite time) and what keeps lock-hold times from
			// inflating to other atomics' queueing delays. The line
			// stays cached unlocked — a contending core may steal it
			// before our turn comes, in which case the lock request
			// replays.
			e.st = sWaitLock
			c.orderWait = append(c.orderWait, depRef{slot: slot, id: e.id})
			return
		}
		c.preemptYoungerLock(e.line, e.id)
		a := &c.aq[e.aq%int64(len(c.aq))]
		a.locked = true
		a.lockAt = c.now
		e.locked = true
		e.lockAt = c.now
		if debugLock && c.id == 0 {
			headID := uint64(0)
			if c.robHead < c.robTail {
				headID = c.entry(c.robHead).id
			}
			fmt.Printf("[%d] core0 LOCK line=%#x id=%d distToHead=%d olderUnexec=%d sbDepth=%d issueToLock=%d\n",
				c.now, e.line, e.id, e.id-headID, c.countOlderUnexecuted(e.id), e.sb-c.sbHead, c.now-e.lockIssueAt)
		}
		c.Stats.IssueToLock.Observe(float64(c.now - e.lockIssueAt))
		if c.detectDir() && info.FromPrivate && !info.Hit {
			// The AQ's request-issued-cycle field feeds the 14-bit
			// subtractor/comparator (Section IV-C hardware).
			if c.wrappedLatency(a.issuedAt, c.now) > uint64(c.cfg.RoW.LatencyThreshold) {
				a.contended = true
			}
		}
		if le := &c.lq[e.lq%int64(len(c.lq))]; le.id == e.id {
			le.done = true
		}
	}
	e.token++
	c.schedule(c.cfg.Core.IntALULatency, evAtomicOp, slot, e.id, e.token)
}

// detectDir reports whether the directory-latency detector is active.
func (c *Core) detectDir() bool {
	return c.cfg.RoW.Detection == config.DetectRWDir && c.cfg.RoW.LatencyThreshold >= 0
}

// wrappedLatency computes now-issued using unsigned arithmetic at the
// configured timestamp width, exactly as the 14-bit hardware
// subtractor would (footnote 4 of the paper: a latency in
// [2^14, 2^14+threshold] aliases below the threshold).
func (c *Core) wrappedLatency(issued, now uint64) uint64 {
	mask := uint64(1)<<uint(c.cfg.RoW.TimestampBits) - 1
	return (now - issued) & mask
}

// ExternalRequest implements cache.Client: an Inv or Fwd arrived for
// line. Locked matches stall the request (cache locking) and mark the
// atomic contended (execution-window detection); with the ready
// window enabled, unlocked address matches are marked too.
func (c *Core) ExternalRequest(line uint64, write bool) (stall bool) {
	rw := c.cfg.RoW.Detection == config.DetectRW || c.cfg.RoW.Detection == config.DetectRWDir
	for p := c.aqHead; p < c.aqTail; p++ {
		a := &c.aq[p%int64(len(c.aq))]
		if !a.hasAddr || a.line != line {
			continue
		}
		if a.locked {
			a.contended = true
			stall = true
		} else if rw {
			a.contended = true
		}
	}
	return stall
}

// LineLocked implements cache.Client (eviction veto).
func (c *Core) LineLocked(line uint64) bool {
	for p := c.aqHead; p < c.aqTail; p++ {
		a := &c.aq[p%int64(len(c.aq))]
		if a.locked && a.line == line {
			return true
		}
	}
	return false
}

// olderUnlockedAtomic reports whether an older in-flight locking
// atomic has not yet acquired its lock (per-core lock ordering).
func (c *Core) olderUnlockedAtomic(id uint64) bool {
	for p := c.aqHead; p < c.aqTail; p++ {
		a := &c.aq[p%int64(len(c.aq))]
		if a.id != 0 && a.id < id && !a.locked {
			return true
		}
	}
	return false
}

// olderSameLineAtomic reports whether an older in-flight atomic with a
// resolved address targets the same line (the younger must wait).
func (c *Core) olderSameLineAtomic(line uint64, id uint64) bool {
	for p := c.aqHead; p < c.aqTail; p++ {
		a := &c.aq[p%int64(len(c.aq))]
		if a.id != 0 && a.id < id && a.hasAddr && a.line == line {
			return true
		}
	}
	return false
}

// preemptYoungerLock force-releases a younger atomic's lock on the
// line so an older atomic can proceed; the younger replays once the
// older unlocks.
func (c *Core) preemptYoungerLock(line uint64, id uint64) {
	for p := c.aqHead; p < c.aqTail; p++ {
		a := &c.aq[p%int64(len(c.aq))]
		if a.id <= id || !a.locked || a.line != line {
			continue
		}
		ye := c.entryBySlot(a.slot, a.id)
		if ye == nil {
			continue
		}
		a.locked = false
		ye.locked = false
		ye.token++ // cancel an in-flight op completion
		ye.st = sWaitLock
		c.lockWait = append(c.lockWait, depRef{slot: a.slot, id: a.id})
		// The line stays in the cache (the older atomic locks it
		// next); no coherence action is needed, but a stalled
		// external request must not be released here — the older
		// atomic's lock keeps stalling it.
	}
}

// LineInvalidated implements cache.Client: the line left the private
// cache. TSO requires squashing speculatively performed loads whose
// value may now violate the global order.
func (c *Core) LineInvalidated(line uint64) {
	for p := c.lqHead; p < c.lqTail; p++ {
		le := &c.lq[p%int64(len(c.lq))]
		if le.isAtomic || !le.hasLine || le.line != line || !le.done {
			continue
		}
		e := c.entryBySlot(le.slot, le.id)
		if e == nil {
			continue
		}
		c.Stats.LQSquashes++
		c.flushFrom(c.posOfSlot(le.slot))
		return
	}
}

// ForceRelease implements cache.Client: the progress guarantee asks
// to break a lock whose external request has stalled too long. The
// lock is released and the atomic replays its lock acquisition unless
// the unlock is imminent.
func (c *Core) ForceRelease(line uint64) bool {
	for p := c.aqHead; p < c.aqTail; p++ {
		a := &c.aq[p%int64(len(c.aq))]
		if !a.locked || a.line != line {
			continue
		}
		e := c.entryBySlot(a.slot, a.id)
		if e == nil {
			continue
		}
		// Imminent unlock: the atomic is committed (SB entry just
		// needs to drain) or at the ROB head with a drained SB.
		if e.st == sCompleted && e.sb == c.sbHead && c.posOfSlot(a.slot) == c.robHead {
			return false
		}
		a.locked = false
		a.contended = true // a stalled external request is contention
		e.locked = false
		e.token++ // cancel an in-flight op completion
		c.Stats.ForcedReleases++
		// Replay the lock acquisition. The retry is delayed a couple
		// of cycles so the released line leaves the cache first (the
		// stalled external request is served right after this call
		// returns); the replayed GetX then queues at the directory
		// behind the winner.
		if e.lazy {
			e.st = sWaitLazy
			c.lazyWait = append(c.lazyWait, depRef{slot: a.slot, id: a.id})
		} else {
			e.st = sIssued
			c.schedule(2, evAtomicRetry, a.slot, a.id, e.token)
		}
		return true
	}
	return false
}

// sbMatch returns the SB index (>=0) of the youngest resolved entry
// older than id writing the same line, or -1. regularOnly excludes
// atomic store_unlocks (atomics only forward from plain stores in our
// design, Section IV-E).
func (c *Core) sbMatch(id uint64, line uint64, regularOnly bool) int {
	for p := c.sbTail - 1; p >= c.sbHead; p-- {
		se := &c.sb[p%int64(len(c.sb))]
		if se.id >= id || !se.addrReady || se.line != line {
			continue
		}
		if regularOnly && se.isAtomic {
			continue
		}
		return int(p % int64(len(c.sb)))
	}
	return -1
}

// storeUnresolved reports whether the store with this id is still in
// the SB without a resolved address.
func (c *Core) storeUnresolved(id uint64) bool {
	for p := c.sbHead; p < c.sbTail; p++ {
		se := &c.sb[p%int64(len(c.sb))]
		if se.id == id {
			return !se.addrReady
		}
	}
	return false // drained or flushed
}

// wakeStoreBlocked rechecks loads blocked on store resolution.
func (c *Core) wakeStoreBlocked() {
	if len(c.storeBlocked) == 0 {
		return
	}
	kept := c.storeBlocked[:0]
	for _, ref := range c.storeBlocked {
		e := c.entryBySlot(ref.slot, ref.id)
		if e == nil || e.st != sWaitStore {
			continue
		}
		if e.waitStoreID != 0 && c.storeUnresolved(e.waitStoreID) {
			kept = append(kept, ref)
			continue
		}
		e.st = sIssued
		if idx := c.sbMatch(e.id, e.line, false); idx >= 0 {
			c.Stats.LoadForwards++
			e.token++
			c.schedule(c.cfg.Core.ForwardLat, evForwarded, ref.slot, e.id, e.token)
		} else {
			c.mem.TrainPrefetch(e.in.PC, e.in.Addr)
			c.mem.Access(c.makeTag(ref.slot, e.id), e.in.Addr, false)
		}
	}
	c.storeBlocked = kept
}

// checkViolation detects loads that speculatively executed past this
// store to the same line (memory-order violation): squash the oldest
// and train the store sets.
func (c *Core) checkViolation(st *robEntry) {
	for p := c.lqHead; p < c.lqTail; p++ {
		le := &c.lq[p%int64(len(c.lq))]
		if le.id <= st.id || !le.hasLine || le.line != st.line || !le.done || le.isAtomic {
			continue
		}
		e := c.entryBySlot(le.slot, le.id)
		if e == nil {
			continue
		}
		c.Stats.SSViolations++
		c.ss.Violation(e.in.PC, st.in.PC)
		c.flushFrom(c.posOfSlot(le.slot))
		return
	}
}

// countOlderUnexecuted counts in-flight instructions older than id
// that have not started executing (Fig. 4, first bar).
func (c *Core) countOlderUnexecuted(id uint64) int {
	n := 0
	for p := c.robHead; p < c.robTail; p++ {
		e := c.entry(p)
		if e.id >= id {
			break
		}
		switch e.st {
		case sWaiting, sReady, sWaitStore, sWaitLazy, sWaitLock:
			n++
		}
	}
	return n
}

// countYoungerStarted counts instructions younger than id that have
// already started executing (Fig. 4, second bar).
func (c *Core) countYoungerStarted(id uint64) int {
	n := 0
	for p := c.robHead; p < c.robTail; p++ {
		e := c.entry(p)
		if e.id <= id {
			continue
		}
		if e.st == sIssued || e.st == sCompleted {
			n++
		}
	}
	return n
}

// flushFrom squashes every instruction at or after the given absolute
// ROB position, rolling back the LQ/SB/AQ tails, releasing squashed
// locks and restarting fetch at the squash point.
func (c *Core) flushFrom(pos int64) {
	if pos >= c.robTail {
		return
	}
	first := c.entry(pos)
	refetch := first.pi
	// Lock releases are deferred until the rollback finishes: serving
	// a stalled external request re-enters the core (LineInvalidated)
	// and must observe consistent queues.
	var released []uint64
	for p := c.robTail - 1; p >= pos; p-- {
		e := c.entry(p)
		if e.lq >= 0 {
			if e.lq != c.lqTail-1 {
				c.fail(fmt.Sprintf("LQ rollback out of order (entry %d, tail %d)", e.lq, c.lqTail))
			}
			c.lq[e.lq%int64(len(c.lq))] = lqEntry{}
			c.lqTail--
		}
		if e.sb >= 0 {
			if e.sb != c.sbTail-1 {
				c.fail(fmt.Sprintf("SB rollback out of order (entry %d, tail %d)", e.sb, c.sbTail))
			}
			c.sb[e.sb%int64(len(c.sb))] = sbEntry{}
			c.sbTail--
		}
		if e.aq >= 0 {
			a := &c.aq[e.aq%int64(len(c.aq))]
			line, wasLocked := a.line, a.locked
			*a = aqEntry{}
			c.aqTail--
			if wasLocked {
				released = append(released, line)
			}
		}
		if e.in.Kind == trace.Fence || (e.in.Kind == trace.Atomic && c.cfg.Core.FencedAtomics && e.in.LocksLine()) {
			c.removeFence(e.id)
		}
		if c.fetchHoldBy == e.id {
			c.fetchHoldBy = 0
		}
		e.valid = false
		e.token++
	}
	c.robTail = pos

	// Rebuild the rename table from the surviving window.
	c.rename = [trace.NumRegs]depRef{}
	for p := c.robHead; p < c.robTail; p++ {
		e := c.entry(p)
		if e.in.Dst != 0 {
			c.rename[e.in.Dst] = depRef{slot: c.slotOf(p), id: e.id}
		}
	}

	c.fetchIdx = int(refetch)
	c.fetchFreeAt = c.now + uint64(c.cfg.Core.RedirectPenalty)

	for _, line := range released {
		c.mem.LockReleased(line)
	}
}
