package mcheck

import (
	"reflect"
	"testing"
)

// applyTrace drives the model through a label sequence, skipping labels
// that are not enabled (test traces are approximate steering, not
// strict witnesses).
func applyTrace(t *testing.T, m *Model, trace []string) int {
	t.Helper()
	applied := 0
	for _, lab := range trace {
		if ch, ok := m.findChoice(lab); ok {
			if !m.apply(ch) {
				t.Fatalf("violation while steering: %v", m.viol)
			}
			applied++
		}
	}
	return applied
}

// TestSnapshotRestoreRoundTrip snapshots a mid-flight state, mutates
// heavily, restores, and requires the re-taken snapshot to compare
// deep-equal — the property the DFS depends on for sibling isolation.
// Run under -race this also proves restore shares no mutable structure
// with the snapshot it came from.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m, err := NewModel(Config{Cores: 2, Lines: 2, Banks: 2, Ops: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.settle()
	// Steer into a state with in-flight misses, a blocked directory
	// entry and queued messages.
	applyTrace(t, m, []string{"i0", "i1", "i0", "d0-2", "d1-2"})

	before := m.snapshot()
	key := m.stateKey(buildPerms(&m.cfg))

	// Mutate: drive several more transitions.
	applyTrace(t, m, []string{"d2-0", "d0-3", "i1", "d1-3", "d3-1", "d2-1", "i0"})

	m.restore(before)
	after := m.snapshot()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot drifted across restore:\nbefore: %+v\nafter:  %+v", before, after)
	}
	if k2 := m.stateKey(buildPerms(&m.cfg)); k2 != key {
		t.Fatalf("canonical key drifted across restore: %x vs %x", key, k2)
	}
	// The restored state must still satisfy the per-state invariants
	// (in particular pool conservation: restore reconstitutes retained
	// and in-flight messages without touching the pool's free list).
	m.checkState()
	if m.viol != nil {
		t.Fatalf("restored state violates invariants: %v", m.viol)
	}
}

// TestRestoreIsolation takes one snapshot, runs two different
// continuations from it, and requires both to start from the identical
// canonical state — no leakage from the first continuation into the
// second.
func TestRestoreIsolation(t *testing.T) {
	// Per-channel network: both cores' requests are deliverable
	// independently, so the two continuations below diverge.
	m, err := NewModel(Config{Cores: 2, Lines: 1, Banks: 1, Ops: 3, PerChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	m.settle()
	applyTrace(t, m, []string{"i0", "i1"})
	snap := m.snapshot()
	perms := buildPerms(&m.cfg)
	base := m.stateKey(perms)

	applyTrace(t, m, []string{"d0-2", "d2-0", "i0"})
	k1 := m.stateKey(perms)
	m.restore(snap)
	if got := m.stateKey(perms); got != base {
		t.Fatalf("first restore drifted: %x vs %x", got, base)
	}
	applyTrace(t, m, []string{"d1-2", "d2-1"})
	k2 := m.stateKey(perms)
	m.restore(snap)
	if got := m.stateKey(perms); got != base {
		t.Fatalf("second restore drifted: %x vs %x", got, base)
	}
	if k1 == base || k2 == base {
		t.Fatal("continuations did not move the state (test is vacuous)")
	}
}
