// Package mcheck is an exhaustive small-scope model checker for the
// blocking MESI directory protocol. It drives the real implementation
// — internal/coherence, internal/cache and internal/interconnect, the
// same code the simulator runs — not a reimplemented abstract model:
// for tiny configurations (2–3 cores, 1–2 cachelines, 1–2 banks,
// a bounded program of loads/stores/atomic RMWs per core) it
// enumerates every legal interleaving of mesh message deliveries and
// core memory operations by depth-first search with canonicalized
// state hashing, checking the protocol invariants at every explored
// state. On a violation it shrinks the witness with delta debugging
// and emits a one-line spec that `rowtorture -replay` re-executes
// against the same component stack.
//
// The choice points are: which core issues its next program operation,
// which core executes (and unlocks) a locked atomic, which queued mesh
// message is delivered next, and — only when nothing else can run —
// which overlong lock stall is forcibly broken. Between choices the
// model "settles": cache pipeline events are drained to completion, so
// every visited state is a quiescent point where only choice-driven
// progress remains. Two network disciplines bound the legal delivery
// orders: per-channel FIFO (what the timed mesh guarantees under the
// fault injector's legal reorderings) and global FIFO (no reordering
// at all).
package mcheck

import (
	"fmt"
	"strings"

	"rowsim/internal/cache"
	"rowsim/internal/coherence"
	"rowsim/internal/config"
	"rowsim/internal/interconnect"
)

// OpKind enumerates the model's memory operations.
type OpKind uint8

const (
	// OpLoad is a plain load.
	OpLoad OpKind = iota
	// OpStore is a plain store.
	OpStore
	// OpRMW is a near atomic: acquire the line in M, lock it, and
	// execute/unlock as a separate choice (the "no rush" window).
	OpRMW
	// OpFar is a far atomic, executed at the directory bank.
	OpFar
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "L"
	case OpStore:
		return "S"
	case OpRMW:
		return "R"
	case OpFar:
		return "F"
	}
	return "?"
}

// Op is one program operation on a line index (0-based; line i lives
// at address i*lineBytes).
type Op struct {
	Kind OpKind
	Line int
}

// Config bounds the model.
type Config struct {
	Cores int // 2..4
	Lines int // 1..2
	Banks int // 1..2
	Ops   int // per-core program length when Progs is nil

	// Lazy selects the lazy RoW issue discipline: one operation in
	// flight per core. Eager allows a window of two.
	Lazy bool

	// PerChannel selects the per-channel-FIFO network envelope (every
	// channel's oldest message is deliverable — covers the legal fault
	// reorderings). False checks the single global-FIFO order.
	PerChannel bool

	// Bug seeds a protocol mutation through the directory's test hook:
	// "" (none), "getx-as-gets", "drop-unblock", "drop-inv".
	Bug string

	// Progs overrides the generated per-core programs.
	Progs [][]Op

	// MaxStates truncates the search after visiting this many states
	// (0: unlimited).
	MaxStates uint64

	// StopAfter, when non-nil, is polled periodically; returning true
	// truncates the search. The CLI injects a wall-clock cap through
	// it so the checker itself never reads time.
	StopAfter func() bool
}

const lineBytes = 64

// Window returns the per-core in-flight operation window.
func (c *Config) Window() int {
	if c.Lazy {
		return 1
	}
	return 2
}

func (c *Config) validate() error {
	if c.Cores < 1 || c.Cores > 4 {
		return fmt.Errorf("mcheck: cores must be 1..4, got %d", c.Cores)
	}
	if c.Lines < 1 || c.Lines > 2 {
		return fmt.Errorf("mcheck: lines must be 1..2, got %d", c.Lines)
	}
	if c.Banks < 1 || c.Banks > 2 {
		return fmt.Errorf("mcheck: banks must be 1..2, got %d", c.Banks)
	}
	switch c.Bug {
	case "", "getx-as-gets", "drop-unblock", "drop-inv":
	default:
		return fmt.Errorf("mcheck: unknown bug %q", c.Bug)
	}
	for ci, prog := range c.Progs {
		if len(prog) > 15 {
			return fmt.Errorf("mcheck: core %d program longer than 15 ops", ci)
		}
		for _, op := range prog {
			if op.Line < 0 || op.Line >= c.Lines {
				return fmt.Errorf("mcheck: core %d references line %d outside 0..%d", ci, op.Line, c.Lines-1)
			}
		}
	}
	return nil
}

// DefaultProgs generates the standard contended workload: each core's
// k-th slot rotates through RMW(0), load, store and far-RMW(0) with a
// per-core phase shift, so line 0 sees lock contention from every core
// while loads and stores rove over all lines.
func DefaultProgs(cores, lines, ops int) [][]Op {
	progs := make([][]Op, cores)
	for c := 0; c < cores; c++ {
		prog := make([]Op, 0, ops)
		for k := 0; k < ops; k++ {
			switch (c + k) % 4 {
			case 0:
				prog = append(prog, Op{Kind: OpRMW, Line: 0})
			case 1:
				prog = append(prog, Op{Kind: OpLoad, Line: k % lines})
			case 2:
				prog = append(prog, Op{Kind: OpStore, Line: k % lines})
			case 3:
				prog = append(prog, Op{Kind: OpFar, Line: 0})
			}
		}
		progs[c] = prog
	}
	return progs
}

// InvariantError reports a protocol invariant violated at an explored
// state, with the (shrunk) choice trace that reaches it and a one-line
// spec replayable by rowtorture -replay.
type InvariantError struct {
	// Kind is the invariant class: "swmr", "owner", "data-value",
	// "stuck-blocked", "deadlock", "conservation" or "protocol".
	Kind   string
	Detail string
	// Trace is the choice-label sequence from the initial state to the
	// violation (shrunk when produced by Check).
	Trace []string
	// Spec is the one-line replayable witness (FormatSpec output).
	Spec string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("mcheck: %s invariant violated after %d choices: %s", e.Kind, len(e.Trace), e.Detail)
}

// Stats summarizes a search.
type Stats struct {
	Visited     uint64 // unique canonical states
	Transitions uint64 // choice applications
	MaxDepth    int
	Truncated   bool // stopped by MaxStates or StopAfter before exhaustion
}

// Result is the outcome of a search or replay.
type Result struct {
	Stats     Stats
	Violation *InvariantError // nil when every explored state satisfied the invariants
}

// --- model ---

type opStatus uint8

const (
	opPending  opStatus = iota // not (re)issued yet
	opInFlight                 // issued, awaiting completion
	opLocked                   // RMW fill arrived; lock held, execute pending
	opDone
)

// modelCore is the minimal cache.Client the checker drives in place of
// the OoO core: a straight-line program with an issue window, explicit
// lock tracking, and completions queued for processing outside cache
// call frames.
type modelCore struct {
	m  *Model
	id int

	prog   []Op
	status []opStatus
	locked uint64 // bitmask over line indices

	// completions queues MemResp callbacks; the settle loop drains it
	// so StoreComplete and lock bookkeeping never reenter the cache
	// from inside one of its own callbacks. validAtResp records the
	// line state the cache held when the response fired: a load's
	// value is captured at fill time, so a later same-settle
	// invalidation (e.g. a deferred far atomic draining) must not be
	// mistaken for a fill that never installed.
	completions []completion
}

type completion struct {
	tag         uint64
	validAtResp bool
}

func (c *modelCore) tag(opIdx int) uint64 { return uint64(c.id<<4 | opIdx) }

func opOfTag(tag uint64) int { return int(tag & 15) }

// MemResp implements cache.Client.
func (c *modelCore) MemResp(tag uint64, info cache.RespInfo) {
	valid := true
	if idx := opOfTag(tag); idx < len(c.prog) {
		addr := c.m.lineAddr(c.prog[idx].Line)
		valid = c.m.caches[c.id].State(addr) != cache.StateI
	}
	c.completions = append(c.completions, completion{tag: tag, validAtResp: valid})
}

// ExternalRequest implements cache.Client: stall external requests for
// locked lines (the atomic holds the line until it executes).
func (c *modelCore) ExternalRequest(line uint64, write bool) bool {
	return c.locked&(1<<c.m.lineIdx(line)) != 0
}

// LineInvalidated implements cache.Client (the model has no
// speculative loads to squash).
func (c *modelCore) LineInvalidated(line uint64) {}

// LineLocked implements cache.Client: veto evictions of locked lines.
func (c *modelCore) LineLocked(line uint64) bool {
	return c.locked&(1<<c.m.lineIdx(line)) != 0
}

// ForceRelease implements cache.Client: break the lock and replay the
// atomic's acquisition, exactly as the real core squashes and replays.
func (c *modelCore) ForceRelease(line uint64) bool {
	li := c.m.lineIdx(line)
	if c.locked&(1<<li) == 0 {
		return false
	}
	c.locked &^= 1 << li
	for i, op := range c.prog {
		if op.Kind == OpRMW && op.Line == li && c.status[i] == opLocked {
			c.status[i] = opPending // re-acquire via a later issue choice
			return true
		}
	}
	return false
}

// Model is one instantiated configuration under search: the real
// component stack (caches, directory banks, mesh, pool) plus the model
// cores and ghost state.
type Model struct {
	cfg   Config
	nodes int

	pool   *coherence.MsgPool
	sink   *coherence.ErrorSink
	mesh   *interconnect.Mesh
	caches []*cache.Private
	dirs   []*coherence.Directory
	cores  []*modelCore

	clock    uint64
	bugFired bool

	// viol records a violation detected inside a transition (data
	// value, protocol error); state invariants are checked after.
	viol *InvariantError

	trace []string

	delivBuf []interconnect.Deliverable
	encBuf   []byte
	pendBuf  []*coherence.Msg
}

func (m *Model) lineAddr(idx int) uint64 { return uint64(idx) * lineBytes }
func (m *Model) lineIdx(addr uint64) int { return int(addr / lineBytes) }
func (m *Model) bankOf(line uint64) int {
	return m.cfg.Cores + int(line/lineBytes)%m.cfg.Banks
}

// NewModel builds the component stack for one configuration. The cache
// geometry is deliberately tiny (snapshots are taken at every DFS
// node) but still multi-way and multi-set so the install and eviction
// paths run for real; with at most two distinct lines no capacity or
// conflict eviction can occur, keeping LRU state behaviorally inert.
func NewModel(cfgIn Config) (*Model, error) {
	cfg := cfgIn
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Progs == nil {
		ops := cfg.Ops
		if ops <= 0 {
			ops = 3
		}
		cfg.Progs = DefaultProgs(cfg.Cores, cfg.Lines, ops)
	}

	sc := config.Default().Clone()
	sc.NumCores = cfg.Cores
	sc.Mem.LineBytes = lineBytes
	sc.Mem.L1D.SizeBytes = 1 << 10
	sc.Mem.L1D.Ways = 4
	sc.Mem.L1D.HitCycles = 1
	sc.Mem.L2.SizeBytes = 2 << 10
	sc.Mem.L2.Ways = 4
	sc.Mem.L2.HitCycles = 2
	sc.Mem.MSHRs = 8
	sc.Mem.PrefetcherDegree = 0

	m := &Model{cfg: cfg, nodes: cfg.Cores + cfg.Banks}
	m.pool = &coherence.MsgPool{}
	m.sink = &coherence.ErrorSink{}
	m.mesh = interconnect.NewMesh(m.nodes, 1, 1, 1)
	m.mesh.SetMsgPool(m.pool)

	bankOf := m.bankOf
	for b := 0; b < cfg.Banks; b++ {
		d := coherence.NewDirectory(cfg.Cores+b, b, m.mesh, 4<<10, 4, lineBytes, 1, 2)
		d.SetMsgPool(m.pool)
		d.SetErrorSink(m.sink)
		m.dirs = append(m.dirs, d)
	}
	for i := 0; i < cfg.Cores; i++ {
		mc := &modelCore{m: m, id: i, prog: cfg.Progs[i], status: make([]opStatus, len(cfg.Progs[i]))}
		m.cores = append(m.cores, mc)
		pc := cache.NewPrivate(i, sc, m.mesh, mc, bankOf)
		pc.SetMsgPool(m.pool)
		pc.SetErrorSink(m.sink)
		pc.DisableForcedRelease()
		m.caches = append(m.caches, pc)
	}
	m.installBug()
	return m, nil
}

// installBug wires the seeded protocol mutation into bank 0's test
// hook. The fired flag is model state: it is captured by snapshots so
// the DFS explores "bug already fired" and "not yet" as distinct
// histories.
func (m *Model) installBug() {
	switch m.cfg.Bug {
	case "":
		return
	case "getx-as-gets":
		m.dirs[0].SetTestHook(func(msg *coherence.Msg) *coherence.Msg {
			if !m.bugFired && msg.Type == coherence.MsgGetX {
				m.bugFired = true
				msg.Type = coherence.MsgGetS
			}
			return msg
		})
	case "drop-unblock":
		m.dirs[0].SetTestHook(func(msg *coherence.Msg) *coherence.Msg {
			if !m.bugFired && (msg.Type == coherence.MsgUnblock || msg.Type == coherence.MsgUnblockX) {
				m.bugFired = true
				return nil
			}
			return msg
		})
	case "drop-inv":
		// Inv travels directory->core, so it never passes the bank
		// hook; drop the InvAck it provokes instead — same effect, the
		// writer's fill never completes.
		m.dirs[0].SetTestHook(func(msg *coherence.Msg) *coherence.Msg {
			if !m.bugFired && msg.Type == coherence.MsgInvAck {
				m.bugFired = true
				return nil
			}
			return msg
		})
	}
}

// --- transitions ---

type choiceKind uint8

const (
	chIssue choiceKind = iota
	chExec
	chDeliver
	chBreak
)

type choice struct {
	kind choiceKind
	core int    // issue, exec, break
	line int    // exec, break (line index)
	seq  uint64 // deliver
	src  int    // deliver
	dst  int    // deliver
}

func (c choice) label() string {
	switch c.kind {
	case chIssue:
		return fmt.Sprintf("i%d", c.core)
	case chExec:
		return fmt.Sprintf("x%d.%d", c.core, c.line)
	case chDeliver:
		return fmt.Sprintf("d%d-%d", c.src, c.dst)
	case chBreak:
		return fmt.Sprintf("b%d.%d", c.core, c.line)
	}
	return "?"
}

func (c *modelCore) inFlight() int {
	n := 0
	for _, st := range c.status {
		if st == opInFlight || st == opLocked {
			n++
		}
	}
	return n
}

func (c *modelCore) nextPending() int {
	for i, st := range c.status {
		if st == opPending {
			return i
		}
	}
	return -1
}

// enabled returns the choices available at the current settled state,
// in deterministic order. Break-stall choices are last-resort: they
// model the forced-release timeout and are enabled only when nothing
// else is, exactly the progress guarantee the timeout provides without
// making reachability depend on its constant.
func (m *Model) enabled(dst []choice) []choice {
	dst = dst[:0]
	window := m.cfg.Window()
	for ci, c := range m.cores {
		if c.inFlight() >= window {
			continue
		}
		idx := c.nextPending()
		if idx < 0 {
			continue
		}
		// The atomic queue serializes same-line atomics in age order
		// (core.tryLock): a younger atomic does not dispatch while an
		// older same-line atomic is still in flight.
		op := c.prog[idx]
		if op.Kind == OpRMW || op.Kind == OpFar {
			blocked := false
			for i := 0; i < idx; i++ {
				prev := c.prog[i]
				if (prev.Kind == OpRMW || prev.Kind == OpFar) && prev.Line == op.Line && c.status[i] != opDone {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
		}
		dst = append(dst, choice{kind: chIssue, core: ci})
	}
	for ci, c := range m.cores {
		for li := 0; li < m.cfg.Lines; li++ {
			if c.locked&(1<<li) != 0 {
				dst = append(dst, choice{kind: chExec, core: ci, line: li})
			}
		}
	}
	m.delivBuf = m.mesh.Deliverables(m.cfg.PerChannel, m.delivBuf)
	for _, d := range m.delivBuf {
		dst = append(dst, choice{kind: chDeliver, seq: d.Seq, src: d.Src, dst: d.Dst})
	}
	if len(dst) > 0 {
		return dst
	}
	for ci, pc := range m.caches {
		for li := 0; li < m.cfg.Lines; li++ {
			if _, ok := pc.StalledView(m.lineAddr(li)); ok {
				dst = append(dst, choice{kind: chBreak, core: ci, line: li})
			}
		}
	}
	return dst
}

// apply fires one choice and settles the pipelines. It returns false
// when a violation was detected during the transition.
func (m *Model) apply(ch choice) bool {
	m.clock++
	switch ch.kind {
	case chIssue:
		c := m.cores[ch.core]
		idx := c.nextPending()
		op := c.prog[idx]
		c.status[idx] = opInFlight
		pc := m.caches[ch.core]
		pc.SetNow(m.clock)
		addr := m.lineAddr(op.Line)
		switch op.Kind {
		case OpLoad:
			pc.Access(c.tag(idx), addr, false)
		case OpStore, OpRMW:
			pc.Access(c.tag(idx), addr, true)
		case OpFar:
			pc.FarRMW(c.tag(idx), addr)
		}
	case chExec:
		m.execRMW(ch.core, ch.line)
	case chDeliver:
		msg := m.mesh.TakeSeq(ch.seq)
		if msg == nil {
			m.violate("deadlock", fmt.Sprintf("replay chose seq %d which is not queued", ch.seq))
			return false
		}
		if msg.Dst >= m.cfg.Cores {
			d := m.dirs[msg.Dst-m.cfg.Cores]
			d.SetCycle(m.clock)
			d.Handle(msg)
		} else {
			m.caches[msg.Dst].DeliverOne(msg)
		}
	case chBreak:
		m.caches[ch.core].BreakStall(m.lineAddr(ch.line))
	}
	m.settle()
	if m.viol == nil {
		m.checkState()
	}
	return m.viol == nil
}

// execRMW is the execute/unlock half of a near atomic: the write is
// performed while the lock is held, then the lock releases — which
// immediately serves any stalled external request (the Fig. 8 window).
func (m *Model) execRMW(core, line int) {
	c := m.cores[core]
	addr := m.lineAddr(line)
	pc := m.caches[core]
	if st := pc.State(addr); st != cache.StateM && st != cache.StateE {
		m.violate("data-value", fmt.Sprintf("core %d executes atomic on line %d holding state %d (want M/E)", core, line, st))
		return
	}
	if !pc.StoreComplete(addr) {
		m.violate("data-value", fmt.Sprintf("core %d atomic store on line %d rejected (copy lost while locked)", core, line))
		return
	}
	for i, op := range c.prog {
		if op.Kind == OpRMW && op.Line == line && c.status[i] == opLocked {
			c.status[i] = opDone
			break
		}
	}
	c.locked &^= 1 << line
	pc.SetNow(m.clock)
	pc.LockReleased(addr)
}

// settle drains cache pipeline events and queued completions until the
// only remaining progress is choice-driven. Event effects are local to
// their cache (messages go into the mesh, to be delivered by later
// choices), so the drain order across caches cannot matter.
func (m *Model) settle() {
	for guard := 0; ; guard++ {
		if guard > 1<<20 {
			panic("mcheck: settle did not converge")
		}
		progressed := false
		for _, c := range m.cores {
			if len(c.completions) > 0 {
				progressed = true
				m.drainCompletions(c)
			}
		}
		var at uint64
		found := false
		for _, pc := range m.caches {
			if t, ok := pc.EarliestPipelineEvent(); ok && (!found || t < at) {
				at, found = t, true
			}
		}
		if !found {
			if !progressed {
				return
			}
			continue
		}
		if at > m.clock {
			m.clock = at
		}
		for _, pc := range m.caches {
			pc.Tick(m.clock)
		}
	}
}

// drainCompletions processes MemResp callbacks outside cache call
// frames: store commits and lock acquisitions mutate the cache, and
// doing that from inside Deliver or Tick would reenter it.
func (m *Model) drainCompletions(c *modelCore) {
	for len(c.completions) > 0 {
		comp := c.completions[0]
		c.completions = c.completions[:copy(c.completions, c.completions[1:])]
		tag := comp.tag
		idx := opOfTag(tag)
		if idx >= len(c.prog) || c.status[idx] != opInFlight {
			m.violate("data-value", fmt.Sprintf("core %d completion for op %d in status %d", c.id, idx, c.status[idx]))
			return
		}
		op := c.prog[idx]
		addr := m.lineAddr(op.Line)
		pc := m.caches[c.id]
		switch op.Kind {
		case OpLoad:
			if !comp.validAtResp {
				m.violate("data-value", fmt.Sprintf("core %d load of line %d completed without a valid copy", c.id, op.Line))
				return
			}
			c.status[idx] = opDone
		case OpStore:
			if !pc.StoreComplete(addr) {
				// Write permission was lost between the fill and the
				// commit (a deferred far atomic draining at MSHR
				// retirement, or a racing external). The store buffer
				// re-acquires the line and retries (core.drainSB);
				// losing permission here is legal, failing to retry
				// would be the bug.
				pc.SetNow(m.clock)
				pc.Access(tag, addr, true)
				continue
			}
			c.status[idx] = opDone
		case OpRMW:
			// Fill arrived with write permission: take the lock. The
			// execute/unlock is a separate choice so the search
			// explores every legal hold duration.
			c.status[idx] = opLocked
			c.locked |= 1 << op.Line
		case OpFar:
			c.status[idx] = opDone
		}
	}
}

func (m *Model) violate(kind, detail string) {
	if m.viol == nil {
		m.viol = &InvariantError{Kind: kind, Detail: detail}
	}
}

// --- state invariants ---

// checkState evaluates the per-state invariants at a settled state.
func (m *Model) checkState() {
	if e := m.sink.Err(); e != nil {
		m.violate("protocol", e.Error())
		return
	}
	// Pool conservation: every message handed out is either queued in
	// the mesh or retained by a directory (waiting queue) or a cache
	// (stalled external).
	retained := 0
	for _, d := range m.dirs {
		retained += d.RetainedMsgs()
	}
	for _, pc := range m.caches {
		retained += pc.RetainedMsgs()
	}
	inFlight := m.mesh.InFlightMsgs()
	if out := m.pool.Outstanding(); out != int64(inFlight+retained) {
		m.violate("conservation", fmt.Sprintf("outstanding=%d but in-flight=%d retained=%d", out, inFlight, retained))
		return
	}
	for li := 0; li < m.cfg.Lines; li++ {
		if !m.checkLine(li) {
			return
		}
	}
}

// checkLine enforces SWMR at every state, and directory agreement at
// per-line quiesced states (when no transaction on the line is in
// flight anywhere). Agreement is one-sided: silent S evictions mean
// the sharer bits over-approximate the true holders.
func (m *Model) checkLine(li int) bool {
	addr := m.lineAddr(li)
	writers, readers := 0, 0
	holders := make([]uint8, len(m.caches))
	for ci, pc := range m.caches {
		st := pc.State(addr)
		holders[ci] = st
		switch st {
		case cache.StateM, cache.StateE:
			writers++
		case cache.StateS:
			readers++
		}
	}
	if writers > 1 || (writers == 1 && readers > 0) {
		m.violate("swmr", fmt.Sprintf("line %d held as %s", li, holdersString(holders)))
		return false
	}
	if !m.lineQuiesced(li, addr) {
		return true
	}
	ent, known := m.dirs[m.bankOf(addr)-m.cfg.Cores].EntryView(addr)
	if !known {
		ent = coherence.DirEntrySnap{Owner: -1}
	}
	switch ent.State {
	case 0: // dirI: no private copies at all
		if writers+readers > 0 {
			m.violate("owner", fmt.Sprintf("line %d is dirI but held as %s", li, holdersString(holders)))
			return false
		}
	case 1: // dirS: no writable copies; holders within the sharer bits
		if writers > 0 {
			m.violate("owner", fmt.Sprintf("line %d is dirS but held as %s", li, holdersString(holders)))
			return false
		}
		for ci, st := range holders {
			if st != cache.StateI && ent.Sharers&(1<<uint(ci)) == 0 {
				m.violate("owner", fmt.Sprintf("line %d is dirS with sharers %#x but core %d holds a copy", li, ent.Sharers, ci))
				return false
			}
		}
	case 2: // dirM: exactly one owner; nobody else holds any copy
		for ci, st := range holders {
			if st != cache.StateI && ci != ent.Owner {
				m.violate("owner", fmt.Sprintf("line %d is dirM owned by %d but core %d holds state %d", li, ent.Owner, ci, st))
				return false
			}
		}
	}
	return true
}

// lineQuiesced reports whether no transaction touching the line is in
// flight: nothing queued in the mesh, no MSHR, no stalled external, no
// pending far RMW, and the directory entry neither blocked nor holding
// waiters.
func (m *Model) lineQuiesced(li int, addr uint64) bool {
	quiet := true
	m.mesh.ForEachPending(func(seq uint64, msg *coherence.Msg) {
		if msg.Line == addr {
			quiet = false
		}
	})
	if !quiet {
		return false
	}
	for _, pc := range m.caches {
		if _, ok := pc.MSHRView(addr); ok {
			return false
		}
		if _, ok := pc.StalledView(addr); ok {
			return false
		}
		if pc.FarView(addr) != nil || pc.FarDeferredView(addr) != nil {
			return false
		}
	}
	ent, known := m.dirs[m.bankOf(addr)-m.cfg.Cores].EntryView(addr)
	if known && (ent.Blocked || len(ent.Waiting) > 0) {
		return false
	}
	return true
}

// checkTerminal runs at states with no enabled choices: either the
// programs all completed and every component is quiet, or something is
// stuck.
func (m *Model) checkTerminal() {
	if m.viol != nil {
		return
	}
	incomplete := 0
	for _, c := range m.cores {
		for _, st := range c.status {
			if st != opDone {
				incomplete++
			}
		}
	}
	for _, d := range m.dirs {
		for _, line := range d.LinesKnown() {
			ent, _ := d.EntryView(line)
			if ent.Blocked || len(ent.Waiting) > 0 {
				m.violate("stuck-blocked", fmt.Sprintf("terminal state with line %#x blocked (%d waiting, pend requestor %d); %d ops incomplete",
					line, len(ent.Waiting), ent.Pend.Requestor, incomplete))
				return
			}
		}
	}
	if incomplete > 0 {
		m.violate("deadlock", fmt.Sprintf("no enabled choice but %d ops incomplete: %s", incomplete, m.stuckDetail()))
		return
	}
	for ci, pc := range m.caches {
		if pc.PendingWork() {
			m.violate("deadlock", fmt.Sprintf("terminal state but core %d cache has pending work", ci))
			return
		}
	}
	for bi, d := range m.dirs {
		if d.PendingWork() {
			m.violate("stuck-blocked", fmt.Sprintf("terminal state but bank %d has pending work", bi))
			return
		}
	}
}

func (m *Model) stuckDetail() string {
	var sb strings.Builder
	for ci, pc := range m.caches {
		if line, desc, ok := pc.OldestMiss(); ok {
			fmt.Fprintf(&sb, "core %d: line %#x %s; ", ci, line, desc)
		}
	}
	for _, d := range m.dirs {
		for _, s := range d.DebugBlocked() {
			sb.WriteString(s)
			sb.WriteString("; ")
		}
	}
	if sb.Len() == 0 {
		return "no diagnostics"
	}
	return sb.String()
}

func holdersString(h []uint8) string {
	var sb strings.Builder
	names := [...]string{"I", "S", "E", "M"}
	for ci, st := range h {
		if ci > 0 {
			sb.WriteByte(' ')
		}
		n := "?"
		if int(st) < len(names) {
			n = names[st]
		}
		fmt.Fprintf(&sb, "c%d=%s", ci, n)
	}
	return sb.String()
}

// --- snapshot / restore ---

type coreSnap struct {
	status      []opStatus
	locked      uint64
	completions []completion
}

type modelSnap struct {
	clock    uint64
	bugFired bool
	cores    []coreSnap
	caches   []*cache.CacheSnap
	dirs     []*coherence.DirSnap
	mesh     interconnect.MeshSnap
	pool     coherence.PoolSnap
}

func (m *Model) snapshot() *modelSnap {
	s := &modelSnap{
		clock:    m.clock,
		bugFired: m.bugFired,
		mesh:     m.mesh.Snapshot(),
		pool:     m.pool.Snapshot(),
	}
	for _, c := range m.cores {
		s.cores = append(s.cores, coreSnap{
			status:      append([]opStatus(nil), c.status...),
			locked:      c.locked,
			completions: append([]completion(nil), c.completions...),
		})
	}
	for _, pc := range m.caches {
		s.caches = append(s.caches, pc.Snapshot())
	}
	for _, d := range m.dirs {
		s.dirs = append(s.dirs, d.Snapshot())
	}
	return s
}

func (m *Model) restore(s *modelSnap) {
	m.clock = s.clock
	m.bugFired = s.bugFired
	m.mesh.Restore(s.mesh)
	m.pool.Restore(s.pool)
	for i, c := range m.cores {
		c.status = append(c.status[:0], s.cores[i].status...)
		c.locked = s.cores[i].locked
		c.completions = append(c.completions[:0], s.cores[i].completions...)
	}
	for i, pc := range m.caches {
		pc.Restore(s.caches[i])
	}
	for i, d := range m.dirs {
		d.Restore(s.dirs[i])
	}
	m.viol = nil
}
