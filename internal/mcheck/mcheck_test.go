package mcheck

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden witness files")

// TestCleanMatrix exhausts the smallest configuration under every
// mode/network combination: the unmodified protocol must satisfy every
// invariant in the entire reachable state space.
func TestCleanMatrix(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		for _, perChannel := range []bool{false, true} {
			name := modeName(lazy) + "/" + netName(perChannel)
			t.Run(name, func(t *testing.T) {
				res, err := Check(Config{
					Cores: 2, Lines: 1, Banks: 1, Ops: 3,
					Lazy: lazy, PerChannel: perChannel,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Truncated {
					t.Fatal("search truncated without a cap")
				}
				if res.Violation != nil {
					t.Fatalf("clean protocol violated %s: %s\nspec: %s",
						res.Violation.Kind, res.Violation.Detail, res.Violation.Spec)
				}
				if res.Stats.Visited < 100 {
					t.Fatalf("suspiciously small state space: %d states", res.Stats.Visited)
				}
			})
		}
	}
}

// TestSeededBugsCaught seeds each protocol mutation through the
// directory's test hook and requires the search to find a violation of
// the expected class, with a witness that replays strictly.
func TestSeededBugsCaught(t *testing.T) {
	cases := []struct {
		bug   string
		kinds []string // acceptable invariant classes
	}{
		{"getx-as-gets", []string{"swmr", "owner", "data-value"}},
		{"drop-unblock", []string{"stuck-blocked", "deadlock"}},
		{"drop-inv", []string{"stuck-blocked", "deadlock"}},
	}
	for _, tc := range cases {
		t.Run(tc.bug, func(t *testing.T) {
			res, err := Check(Config{
				Cores: 2, Lines: 1, Banks: 1, Ops: 3, Bug: tc.bug,
			})
			if err != nil {
				t.Fatal(err)
			}
			v := res.Violation
			if v == nil {
				t.Fatalf("seeded bug %s not caught (%d states explored)", tc.bug, res.Stats.Visited)
			}
			found := false
			for _, k := range tc.kinds {
				if v.Kind == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("bug %s flagged as %q, want one of %v", tc.bug, v.Kind, tc.kinds)
			}
			// The shrunk witness must replay strictly and reproduce the
			// same invariant class.
			rep, err := Replay(v.Spec)
			if err != nil {
				t.Fatalf("witness does not replay: %v\nspec: %s", err, v.Spec)
			}
			if rep.Violation == nil || rep.Violation.Kind != v.Kind {
				t.Fatalf("replay did not reproduce %s violation\nspec: %s", v.Kind, v.Spec)
			}
		})
	}
}

// TestGoldenCounterexample pins the exact shrunk witness for the
// getx-as-gets mutation. The search, shrinker and canonical hashing are
// all deterministic, so the witness is stable; a change here means the
// checker's exploration order or the shrinker changed, which is worth a
// deliberate golden update (-update).
func TestGoldenCounterexample(t *testing.T) {
	res, err := Check(Config{Cores: 2, Lines: 1, Banks: 1, Ops: 3, Bug: "getx-as-gets"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("seeded bug not caught")
	}
	got := res.Violation.Spec + "\n"
	golden := filepath.Join("testdata", "getx_as_gets.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("witness drifted from golden\ngot:  %swant: %s", got, want)
	}
	// The golden spec itself must stay replayable.
	rep, err := Replay(strings.TrimSpace(string(want)))
	if err != nil {
		t.Fatalf("golden spec does not replay: %v", err)
	}
	if rep.Violation == nil {
		t.Fatal("golden spec replayed without reproducing the violation")
	}
}

// TestReplayRejectsBadSpecs covers spec-parsing and strict-replay
// failure modes.
func TestReplayRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name, spec string
	}{
		{"empty", ""},
		{"wrong-magic", "rowtorture v1 cores=2"},
		{"bad-field", "mcheck v1 cores=2 lines=1 banks=1 mode=eager net=fifo prog=L0/L0 bogus=1"},
		{"bad-mode", "mcheck v1 cores=2 lines=1 banks=1 mode=sideways net=fifo prog=L0/L0"},
		{"prog-count", "mcheck v1 cores=2 lines=1 banks=1 mode=eager net=fifo prog=L0"},
		{"line-range", "mcheck v1 cores=2 lines=1 banks=1 mode=eager net=fifo prog=L5/L0"},
		{"dead-label", "mcheck v1 cores=2 lines=1 banks=1 mode=eager net=fifo prog=L0/L0 trace=x0.0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Replay(tc.spec); err == nil {
				t.Fatalf("spec %q accepted", tc.spec)
			}
		})
	}
}

// TestSpecRoundTrip formats and reparses a config, requiring identical
// rendered output (the property rowtorture -replay depends on).
func TestSpecRoundTrip(t *testing.T) {
	cfg := Config{
		Cores: 3, Lines: 2, Banks: 2, Lazy: true, PerChannel: true, Bug: "drop-inv",
		Progs: [][]Op{
			{{OpRMW, 0}, {OpLoad, 1}},
			{{OpStore, 1}, {OpFar, 0}},
			{{OpLoad, 0}},
		},
	}
	trace := []string{"i0", "d0-3", "x0.0"}
	spec := FormatSpec(cfg, trace)
	cfg2, trace2, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSpec(cfg2, trace2); got != spec {
		t.Fatalf("round trip drifted:\n%s\n%s", spec, got)
	}
}
