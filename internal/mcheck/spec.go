package mcheck

import (
	"fmt"
	"strconv"
	"strings"
)

// One-line witness specs. A violation found by Check is emitted as
//
//	mcheck v1 cores=2 lines=1 banks=1 mode=eager net=chan \
//	    bug=getx-as-gets prog=R0.L0.S0/L0.R0.S0 trace=i0,d0-2,...
//
// and replayed — against the same real component stack — by Replay,
// which `rowtorture -replay` exposes on the command line. The prog
// field is each core's program ("/"-separated), one op per token:
// L<line> load, S<line> store, R<line> near atomic, F<line> far
// atomic. The trace field is the choice-label sequence: i<core>
// issues, x<core>.<line> executes a locked atomic, d<src>-<dst>
// delivers the head of a mesh channel, b<core>.<line> breaks an
// overlong lock stall.

// FormatSpec renders a replayable one-line witness.
func FormatSpec(cfg Config, trace []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mcheck v1 cores=%d lines=%d banks=%d mode=%s net=%s",
		cfg.Cores, cfg.Lines, cfg.Banks, modeName(cfg.Lazy), netName(cfg.PerChannel))
	if cfg.Bug != "" {
		fmt.Fprintf(&sb, " bug=%s", cfg.Bug)
	}
	sb.WriteString(" prog=")
	progs := cfg.Progs
	if progs == nil {
		ops := cfg.Ops
		if ops <= 0 {
			ops = 3
		}
		progs = DefaultProgs(cfg.Cores, cfg.Lines, ops)
	}
	for ci, prog := range progs {
		if ci > 0 {
			sb.WriteByte('/')
		}
		for oi, op := range prog {
			if oi > 0 {
				sb.WriteByte('.')
			}
			fmt.Fprintf(&sb, "%s%d", op.Kind, op.Line)
		}
	}
	sb.WriteString(" trace=")
	sb.WriteString(strings.Join(trace, ","))
	return sb.String()
}

func modeName(lazy bool) string {
	if lazy {
		return "lazy"
	}
	return "eager"
}

func netName(perChannel bool) string {
	if perChannel {
		return "chan"
	}
	return "fifo"
}

// ParseSpec parses a witness line back into a configuration and a
// choice trace.
func ParseSpec(spec string) (Config, []string, error) {
	fields := strings.Fields(strings.TrimSpace(spec))
	if len(fields) < 2 || fields[0] != "mcheck" || fields[1] != "v1" {
		return Config{}, nil, fmt.Errorf("mcheck: spec must start with %q", "mcheck v1")
	}
	var cfg Config
	var trace []string
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Config{}, nil, fmt.Errorf("mcheck: malformed spec field %q", f)
		}
		switch k {
		case "cores", "lines", "banks":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Config{}, nil, fmt.Errorf("mcheck: bad %s=%q", k, v)
			}
			switch k {
			case "cores":
				cfg.Cores = n
			case "lines":
				cfg.Lines = n
			case "banks":
				cfg.Banks = n
			}
		case "mode":
			switch v {
			case "eager":
				cfg.Lazy = false
			case "lazy":
				cfg.Lazy = true
			default:
				return Config{}, nil, fmt.Errorf("mcheck: bad mode=%q", v)
			}
		case "net":
			switch v {
			case "chan":
				cfg.PerChannel = true
			case "fifo":
				cfg.PerChannel = false
			default:
				return Config{}, nil, fmt.Errorf("mcheck: bad net=%q", v)
			}
		case "bug":
			cfg.Bug = v
		case "prog":
			progs, err := parseProgs(v)
			if err != nil {
				return Config{}, nil, err
			}
			cfg.Progs = progs
		case "trace":
			if v != "" {
				trace = strings.Split(v, ",")
			}
		default:
			return Config{}, nil, fmt.Errorf("mcheck: unknown spec field %q", k)
		}
	}
	if err := cfg.validate(); err != nil {
		return Config{}, nil, err
	}
	if len(cfg.Progs) != cfg.Cores {
		return Config{}, nil, fmt.Errorf("mcheck: spec has %d programs for %d cores", len(cfg.Progs), cfg.Cores)
	}
	return cfg, trace, nil
}

func parseProgs(v string) ([][]Op, error) {
	var progs [][]Op
	for _, ps := range strings.Split(v, "/") {
		var prog []Op
		if ps != "" {
			for _, tok := range strings.Split(ps, ".") {
				if len(tok) < 2 {
					return nil, fmt.Errorf("mcheck: bad program op %q", tok)
				}
				var kind OpKind
				switch tok[0] {
				case 'L':
					kind = OpLoad
				case 'S':
					kind = OpStore
				case 'R':
					kind = OpRMW
				case 'F':
					kind = OpFar
				default:
					return nil, fmt.Errorf("mcheck: bad program op %q", tok)
				}
				line, err := strconv.Atoi(tok[1:])
				if err != nil {
					return nil, fmt.Errorf("mcheck: bad program op %q", tok)
				}
				prog = append(prog, Op{Kind: kind, Line: line})
			}
		}
		progs = append(progs, prog)
	}
	return progs, nil
}

// Replay strictly re-executes a witness spec: every trace label must
// be enabled at its turn. It returns the violation the replay
// reproduces (in Result.Violation), or an error when the spec is
// malformed or a label does not apply.
func Replay(spec string) (*Result, error) {
	cfg, trace, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.settle()
	m.checkState()
	applied := 0
	for _, lab := range trace {
		if m.viol != nil {
			break
		}
		ch, ok := m.findChoice(lab)
		if !ok {
			return nil, fmt.Errorf("mcheck: replay label %q (step %d) is not enabled", lab, applied+1)
		}
		m.apply(ch)
		applied++
	}
	if m.viol == nil && len(m.enabled(nil)) == 0 {
		m.checkTerminal()
	}
	res := &Result{Stats: Stats{Transitions: uint64(applied)}}
	if m.viol != nil {
		v := m.viol
		v.Trace = append([]string(nil), trace[:applied]...)
		v.Spec = FormatSpec(cfg, v.Trace)
		res.Violation = v
	}
	return res, nil
}
