package mcheck

import (
	"bytes"

	"rowsim/internal/coherence"
)

// Canonical state encoding. Two states are behaviorally equivalent —
// and must hash identically so the visited set merges them — when they
// differ only by (a) a relabeling of core ids (and the induced
// relabeling of bank ids and line addresses), or (b) absolute time.
// The encoding therefore walks the logical protocol state under every
// admissible (core permutation, line permutation) pair and keeps the
// lexicographically smallest byte string; no cycle counts, latencies
// or LRU clocks are emitted.
//
// A line permutation is admissible only when it acts consistently on
// banks: line l lives on bank l%banks, so mapping l to λ(l) forces
// bank l%banks to map to λ(l)%banks, and two lines of the same bank
// must agree. The per-channel network encoding emits each (src,dst)
// channel's queue separately in send order and discards cross-channel
// send-order: under the per-channel discipline two states whose
// channels hold the same sequences are bisimilar even if their global
// send interleavings differ. Under global FIFO the whole queue is one
// sequence, so cross-channel order is kept.

// perm is one admissible relabeling: cores[old] = new core id,
// lines[old] = new line index, banks[old] = new bank index.
type perm struct {
	cores, lines, banks []int
	invCores, invLines  []int
}

func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used uint)
	rec = func(cur []int, used uint) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used&(1<<i) == 0 {
				rec(append(cur, i), used|1<<i)
			}
		}
	}
	rec(make([]int, 0, n), 0)
	return out
}

func invert(p []int) []int {
	inv := make([]int, len(p))
	for old, new := range p {
		inv[new] = old
	}
	return inv
}

// buildPerms enumerates the admissible relabelings for the
// configuration. Counts are tiny (≤ 4 cores, ≤ 2 lines): at most 48
// pairs, each applied once per encoded state.
func buildPerms(cfg *Config) []perm {
	var out []perm
	for _, cp := range permutations(cfg.Cores) {
		for _, lp := range permutations(cfg.Lines) {
			banks := make([]int, cfg.Banks)
			for b := range banks {
				banks[b] = b
			}
			ok := true
			for old, new := range lp {
				ob, nb := old%cfg.Banks, new%cfg.Banks
				if banks[ob] != ob && banks[ob] != nb {
					ok = false
					break
				}
				banks[ob] = nb
			}
			if !ok {
				continue
			}
			// banks must itself be a permutation (two source banks
			// cannot collapse onto one).
			seen := 0
			for _, b := range banks {
				seen |= 1 << b
			}
			if seen != 1<<cfg.Banks-1 {
				continue
			}
			out = append(out, perm{
				cores: cp, lines: lp, banks: banks,
				invCores: invert(cp), invLines: invert(lp),
			})
		}
	}
	return out
}

type encoder struct {
	buf []byte
}

func (e *encoder) b(v byte)    { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool) { e.buf = append(e.buf, boolByte(v)) }
func (e *encoder) i(v int) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}
func (e *encoder) u64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// relNode maps a network node id through the permutation.
func (m *Model) relNode(p *perm, node int) int {
	if node < m.cfg.Cores {
		return p.cores[node]
	}
	return m.cfg.Cores + p.banks[node-m.cfg.Cores]
}

func (m *Model) encodeMsg(e *encoder, p *perm, msg *coherence.Msg) {
	e.b(byte(msg.Type))
	e.b(byte(p.lines[m.lineIdx(msg.Line)]))
	e.b(byte(m.relNode(p, msg.Src)))
	e.b(byte(m.relNode(p, msg.Dst)))
	e.b(byte(m.relNode(p, msg.Requestor)))
	e.b(byte(msg.Grant))
	e.i(msg.AckCount)
	e.bool(msg.FromPrivate)
}

// encodeWith emits the full logical state under one relabeling.
func (m *Model) encodeWith(e *encoder, p *perm) {
	e.bool(m.bugFired)
	e.bool(m.cfg.Lazy)
	e.bool(m.cfg.PerChannel)

	for newC := 0; newC < m.cfg.Cores; newC++ {
		c := m.cores[p.invCores[newC]]
		e.b(byte(len(c.prog)))
		for _, op := range c.prog {
			e.b(byte(op.Kind))
			e.b(byte(p.lines[op.Line]))
		}
		for _, st := range c.status {
			e.b(byte(st))
		}
		mask := 0
		for li := 0; li < m.cfg.Lines; li++ {
			if c.locked&(1<<li) != 0 {
				mask |= 1 << p.lines[li]
			}
		}
		e.b(byte(mask))
		e.b(byte(len(c.completions)))
		for _, comp := range c.completions {
			e.b(byte(opOfTag(comp.tag)))
			e.bool(comp.validAtResp)
		}
	}

	for newC := 0; newC < m.cfg.Cores; newC++ {
		pc := m.caches[p.invCores[newC]]
		for newLi := 0; newLi < m.cfg.Lines; newLi++ {
			addr := m.lineAddr(p.invLines[newLi])
			l1, l2 := pc.LevelStates(addr)
			e.b(l1)
			e.b(l2)
			if ms, ok := pc.MSHRView(addr); ok {
				e.b(1)
				e.bool(ms.Write)
				e.bool(ms.DataArrived)
				e.b(byte(ms.Grant))
				e.bool(ms.FromPrivate)
				e.i(ms.PendingAcks)
				e.b(byte(len(ms.Waiters)))
				for _, w := range ms.Waiters {
					e.b(byte(opOfTag(w.Tag)))
					e.bool(w.Write)
				}
			} else {
				e.b(0)
			}
			if msg, ok := pc.StalledView(addr); ok {
				e.b(1)
				m.encodeMsg(e, p, &msg)
			} else {
				e.b(0)
			}
			fw := pc.FarView(addr)
			e.b(byte(len(fw)))
			for _, w := range fw {
				e.b(byte(opOfTag(w.Tag)))
			}
			fd := pc.FarDeferredView(addr)
			e.b(byte(len(fd)))
			for _, w := range fd {
				e.b(byte(opOfTag(w.Tag)))
			}
		}
	}

	for newB := 0; newB < m.cfg.Banks; newB++ {
		for newLi := 0; newLi < m.cfg.Lines; newLi++ {
			oldLi := p.invLines[newLi]
			addr := m.lineAddr(oldLi)
			oldB := m.bankOf(addr) - m.cfg.Cores
			if p.banks[oldB] != newB {
				continue
			}
			ent, known := m.dirs[oldB].EntryView(addr)
			if !known {
				e.b(0)
				continue
			}
			e.b(1)
			e.b(ent.State)
			if ent.Owner >= 0 && ent.Owner < m.cfg.Cores {
				e.b(byte(p.cores[ent.Owner]))
			} else {
				e.b(0xff)
			}
			sh := uint64(0)
			for ci := 0; ci < m.cfg.Cores; ci++ {
				if ent.Sharers&(1<<uint(ci)) != 0 {
					sh |= 1 << uint(p.cores[ci])
				}
			}
			e.u64(sh)
			e.bool(ent.Blocked)
			if ent.Blocked {
				e.b(byte(p.cores[ent.Pend.Requestor]))
				e.bool(ent.Pend.IsWrite)
				e.bool(ent.Pend.Far)
				e.i(ent.Pend.FarAcks)
				e.bool(ent.Pend.FarData)
			}
			e.b(byte(len(ent.Waiting)))
			for i := range ent.Waiting {
				m.encodeMsg(e, p, &ent.Waiting[i])
			}
		}
	}

	m.pendBuf = m.pendBuf[:0]
	m.mesh.ForEachPending(func(seq uint64, msg *coherence.Msg) {
		m.pendBuf = append(m.pendBuf, msg)
	})
	if m.cfg.PerChannel {
		// Per-channel queues in relabeled channel order; cross-channel
		// send order deliberately discarded.
		for newSrc := 0; newSrc < m.nodes; newSrc++ {
			for newDst := 0; newDst < m.nodes; newDst++ {
				n := 0
				for _, msg := range m.pendBuf {
					if m.relNode(p, msg.Src) == newSrc && m.relNode(p, msg.Dst) == newDst {
						n++
					}
				}
				e.b(byte(n))
				for _, msg := range m.pendBuf {
					if m.relNode(p, msg.Src) == newSrc && m.relNode(p, msg.Dst) == newDst {
						m.encodeMsg(e, p, msg)
					}
				}
			}
		}
	} else {
		e.b(byte(len(m.pendBuf)))
		for _, msg := range m.pendBuf {
			m.encodeMsg(e, p, msg)
		}
	}
}

// stateKey returns the canonical 128-bit key of the current state: the
// lexicographic minimum over admissible relabelings, FNV-hashed twice
// with independent mixing so collisions are negligible while staying
// deterministic across runs (explored-state counts are compared in CI).
func (m *Model) stateKey(perms []perm) [2]uint64 {
	var best []byte
	e := encoder{buf: m.encBuf[:0]}
	for i := range perms {
		start := len(e.buf)
		m.encodeWith(&e, &perms[i])
		cand := e.buf[start:]
		if best == nil || bytes.Compare(cand, best) < 0 {
			best = cand
		} else {
			e.buf = e.buf[:start]
		}
	}
	m.encBuf = e.buf[:0]
	h1 := uint64(14695981039346656037)
	h2 := uint64(14695981039346656037)
	for _, c := range best {
		h1 = (h1 ^ uint64(c)) * 1099511628211
		h2 = (h2 * 1099511628211) ^ (uint64(c) + 0x9e37)
	}
	return [2]uint64{h1, h2}
}
