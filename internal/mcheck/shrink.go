package mcheck

// Witness shrinking: ddmin over the choice-label sequence. A candidate
// subsequence is replayed leniently — labels that are not enabled at
// their turn are skipped — and passes when the same invariant class
// fires. Because a lenient replay records exactly the labels it
// applied, every passing candidate collapses to a strictly replayable
// trace for free, so the final witness needs no repair pass: each of
// its labels is enabled in turn and the model is deterministic given
// the choices.

// replayLenient applies as much of the trace as is enabled, in order,
// and returns the labels actually applied plus the violation (nil when
// none fired). Terminal invariants are checked when the trace ends
// with no choices enabled.
func replayLenient(cfg Config, trace []string) ([]string, *InvariantError) {
	m, err := NewModel(cfg)
	if err != nil {
		return nil, nil
	}
	m.settle()
	m.checkState()
	var applied []string
	for _, lab := range trace {
		if m.viol != nil {
			break
		}
		ch, ok := m.findChoice(lab)
		if !ok {
			continue
		}
		m.apply(ch)
		applied = append(applied, lab)
	}
	if m.viol == nil && len(m.enabled(nil)) == 0 {
		m.checkTerminal()
	}
	return applied, m.viol
}

// findChoice resolves a label against the currently enabled choices.
func (m *Model) findChoice(label string) (choice, bool) {
	for _, ch := range m.enabled(nil) {
		if ch.label() == label {
			return ch, true
		}
	}
	return choice{}, false
}

// shrinkTrace minimizes a violating trace with ddmin: split into n
// chunks, try dropping each, refine granularity when nothing drops.
func shrinkTrace(cfg Config, kind string, trace []string) []string {
	test := func(cand []string) ([]string, bool) {
		applied, viol := replayLenient(cfg, cand)
		if viol != nil && viol.Kind == kind {
			return applied, true
		}
		return nil, false
	}
	cur, ok := test(trace)
	if !ok {
		// The full trace must reproduce (the search just ran it); if
		// replay disagrees something is nondeterministic — return the
		// original rather than a bogus shrink.
		return trace
	}
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for i := 0; i < len(cur); i += chunk {
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]string, 0, len(cur)-(end-i))
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[end:]...)
			if applied, ok := test(cand); ok {
				cur = applied
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}
