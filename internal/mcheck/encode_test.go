package mcheck

import "testing"

// Relabeling tests: the canonical encoding must identify states that
// differ only by a permutation of core ids (and the induced bank/line
// relabeling). The strongest observable consequence is that two
// searches over core-permuted workloads explore identical numbers of
// canonical states.

func relabelCoreLabel(lab string) string {
	// Swap cores 0 and 1 in a 2-core, 1-bank label alphabet
	// (node 2 is the bank).
	swap := func(b byte) byte {
		switch b {
		case '0':
			return '1'
		case '1':
			return '0'
		}
		return b
	}
	out := []byte(lab)
	switch out[0] {
	case 'i', 'x', 'b':
		out[1] = swap(out[1])
	case 'd':
		out[1] = swap(out[1])
		out[3] = swap(out[3])
	}
	return string(out)
}

// TestStateKeyCorePermutation drives two models whose programs (and
// choice traces) differ only by swapping cores 0 and 1, and requires
// the canonical key to match after every step.
func TestStateKeyCorePermutation(t *testing.T) {
	progsA := [][]Op{
		{{OpRMW, 0}, {OpLoad, 0}, {OpStore, 0}},
		{{OpLoad, 0}, {OpStore, 0}, {OpFar, 0}},
	}
	progsB := [][]Op{progsA[1], progsA[0]}
	cfgA := Config{Cores: 2, Lines: 1, Banks: 1, Progs: progsA}
	cfgB := Config{Cores: 2, Lines: 1, Banks: 1, Progs: progsB}
	ma, err := NewModel(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewModel(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ma.settle()
	mb.settle()
	perms := buildPerms(&ma.cfg)

	trace := []string{"i0", "i1", "d0-2", "d2-0", "i0", "d1-2", "x0.0", "d0-2"}
	if ka, kb := ma.stateKey(perms), mb.stateKey(perms); ka != kb {
		t.Fatalf("initial keys differ: %x vs %x", ka, kb)
	}
	for _, lab := range trace {
		cha, oka := ma.findChoice(lab)
		chb, okb := mb.findChoice(relabelCoreLabel(lab))
		if oka != okb {
			t.Fatalf("label %q enabled=%v but relabeled twin enabled=%v", lab, oka, okb)
		}
		if !oka {
			continue
		}
		ma.apply(cha)
		mb.apply(chb)
		if ka, kb := ma.stateKey(perms), mb.stateKey(perms); ka != kb {
			t.Fatalf("keys diverge after %q: %x vs %x", lab, ka, kb)
		}
	}
}

// TestSearchCountCorePermutation requires core-permuted workloads to
// explore exactly the same canonical state space.
func TestSearchCountCorePermutation(t *testing.T) {
	progs := [][]Op{
		{{OpRMW, 0}, {OpStore, 0}},
		{{OpLoad, 0}, {OpFar, 0}},
	}
	swapped := [][]Op{progs[1], progs[0]}
	ra, err := Check(Config{Cores: 2, Lines: 1, Banks: 1, Progs: progs})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Check(Config{Cores: 2, Lines: 1, Banks: 1, Progs: swapped})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Violation != nil || rb.Violation != nil {
		t.Fatalf("unexpected violation: %v / %v", ra.Violation, rb.Violation)
	}
	if ra.Stats.Visited != rb.Stats.Visited {
		t.Fatalf("permuted workloads explored %d vs %d states", ra.Stats.Visited, rb.Stats.Visited)
	}
}

// TestSearchCountLinePermutation does the same for a line relabeling
// (single bank, so any line permutation is bank-consistent).
func TestSearchCountLinePermutation(t *testing.T) {
	progs := [][]Op{
		{{OpRMW, 0}, {OpStore, 1}},
		{{OpLoad, 1}, {OpStore, 0}},
	}
	swapped := [][]Op{
		{{OpRMW, 1}, {OpStore, 0}},
		{{OpLoad, 0}, {OpStore, 1}},
	}
	ra, err := Check(Config{Cores: 2, Lines: 2, Banks: 1, Progs: progs})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Check(Config{Cores: 2, Lines: 2, Banks: 1, Progs: swapped})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Violation != nil || rb.Violation != nil {
		t.Fatalf("unexpected violation: %v / %v", ra.Violation, rb.Violation)
	}
	if ra.Stats.Visited != rb.Stats.Visited {
		t.Fatalf("line-permuted workloads explored %d vs %d states", ra.Stats.Visited, rb.Stats.Visited)
	}
}

// TestSearchDeterminism runs the same configuration twice and requires
// bit-identical statistics — the property CI leans on when it compares
// explored-state counts across runs.
func TestSearchDeterminism(t *testing.T) {
	cfg := Config{Cores: 2, Lines: 2, Banks: 2, Ops: 3}
	ra, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stats != rb.Stats {
		t.Fatalf("stats differ across runs: %+v vs %+v", ra.Stats, rb.Stats)
	}
}

// TestBankConsistentPerms checks the permutation builder's admissibility
// filter: with 2 lines on 2 banks, a line swap forces a bank swap, so
// all 2x2 core/line pairs remain; with 2 lines on 1 bank both line
// orders are admissible too.
func TestBankConsistentPerms(t *testing.T) {
	two := Config{Cores: 2, Lines: 2, Banks: 2}
	if got := len(buildPerms(&two)); got != 4 {
		t.Fatalf("c2l2b2: got %d admissible perms, want 4", got)
	}
	one := Config{Cores: 2, Lines: 2, Banks: 1}
	if got := len(buildPerms(&one)); got != 4 {
		t.Fatalf("c2l2b1: got %d admissible perms, want 4", got)
	}
	three := Config{Cores: 3, Lines: 1, Banks: 1}
	if got := len(buildPerms(&three)); got != 6 {
		t.Fatalf("c3l1b1: got %d admissible perms, want 6", got)
	}
}
