package mcheck

// Depth-first exhaustive search over the choice tree with canonical
// state memoization. Each DFS node snapshots the full component stack,
// tries every enabled choice in deterministic order, and restores the
// snapshot between siblings; the visited set prunes states already
// explored under any admissible relabeling, which is what makes the
// search terminate (reissue loops revisit canonical states).

type searcher struct {
	m       *Model
	perms   []perm
	visited map[[2]uint64]struct{}
	stats   Stats
	viol    *InvariantError
}

// Check exhaustively explores the configuration and returns the search
// statistics plus the first invariant violation found (shrunk to a
// minimal choice trace), or a nil violation when the explored space is
// clean. A truncated search (MaxStates or StopAfter) is reported in
// Stats.Truncated and proves nothing about the unexplored remainder.
func Check(cfg Config) (*Result, error) {
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		m:       m,
		perms:   buildPerms(&m.cfg),
		visited: make(map[[2]uint64]struct{}),
	}
	m.settle()
	m.checkState()
	if m.viol == nil {
		s.dfs(0)
	} else {
		s.capture()
	}
	res := &Result{Stats: s.stats}
	if s.viol != nil {
		s.viol.Trace = shrinkTrace(m.cfg, s.viol.Kind, s.viol.Trace)
		s.viol.Spec = FormatSpec(m.cfg, s.viol.Trace)
		res.Violation = s.viol
	}
	return res, nil
}

func (s *searcher) truncated() bool {
	if s.m.cfg.MaxStates > 0 && s.stats.Visited >= s.m.cfg.MaxStates {
		return true
	}
	if s.m.cfg.StopAfter != nil && s.stats.Visited&0x3ff == 0 && s.m.cfg.StopAfter() {
		return true
	}
	return false
}

func (s *searcher) capture() {
	v := s.m.viol
	v.Trace = append([]string(nil), s.m.trace...)
	s.viol = v
}

// dfs explores the current (settled, already invariant-checked) state.
// It returns false to unwind the whole search (violation found or
// search truncated).
func (s *searcher) dfs(depth int) bool {
	key := s.m.stateKey(s.perms)
	if _, seen := s.visited[key]; seen {
		return true
	}
	s.visited[key] = struct{}{}
	s.stats.Visited++
	if depth > s.stats.MaxDepth {
		s.stats.MaxDepth = depth
	}
	if s.truncated() {
		s.stats.Truncated = true
		return false
	}
	choices := s.m.enabled(nil)
	if len(choices) == 0 {
		s.m.checkTerminal()
		if s.m.viol != nil {
			s.capture()
			s.m.viol = nil
			return false
		}
		return true
	}
	snap := s.m.snapshot()
	for _, ch := range choices {
		s.m.trace = append(s.m.trace, ch.label())
		ok := s.m.apply(ch)
		s.stats.Transitions++
		if !ok {
			s.capture()
			s.m.viol = nil
			return false
		}
		cont := s.dfs(depth + 1)
		s.m.trace = s.m.trace[:len(s.m.trace)-1]
		s.m.restore(snap)
		if !cont {
			return false
		}
	}
	return true
}
