package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func testReport() Report {
	r := New("abc1234", 4)
	r.Entries = []Entry{
		{Name: "Fig9", WallNS: 2_000_000, Cycles: 5000, CyclesPerSec: 2.5e9, Allocs: 10, Bytes: 640},
		{Name: "Fig1", WallNS: 1_000_000, Cycles: 3000, CyclesPerSec: 3e9, Allocs: 7, Bytes: 512},
	}
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := testReport()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	want.Sort() // Write sorts entries; the round trip returns them sorted
	if got.Rev != want.Rev || got.Jobs != want.Jobs || len(got.Entries) != len(want.Entries) {
		t.Fatalf("round trip mangled header: %+v", got)
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got.Entries[i], want.Entries[i])
		}
	}
	if got.Entries[0].Name != "Fig1" {
		t.Fatalf("entries not sorted on disk: first is %s", got.Entries[0].Name)
	}
}

func TestCompareGate(t *testing.T) {
	base := testReport()

	// Identical runs pass with no messages.
	if msgs, ok := Compare(base, base, 0.25); !ok || len(msgs) != 0 {
		t.Fatalf("self-comparison failed: ok=%v msgs=%v", ok, msgs)
	}

	// 20% slower is within a 25% gate.
	cur := testReport()
	for i := range cur.Entries {
		cur.Entries[i].WallNS = cur.Entries[i].WallNS * 120 / 100
	}
	if msgs, ok := Compare(base, cur, 0.25); !ok {
		t.Fatalf("20%% slowdown tripped a 25%% gate: %v", msgs)
	}

	// 50% slower on one entry fails, and names the offender.
	cur = testReport()
	cur.Entries[0].WallNS = cur.Entries[0].WallNS * 150 / 100
	msgs, ok := Compare(base, cur, 0.25)
	if ok {
		t.Fatal("50% slowdown passed a 25% gate")
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "Fig9") && strings.Contains(m, "REGRESSION") {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression message does not name the offender: %v", msgs)
	}

	// New and missing entries are informational, never a failure.
	cur = testReport()
	cur.Entries = append(cur.Entries[:1], Entry{Name: "FigNew", WallNS: 1})
	msgs, ok = Compare(base, cur, 0.25)
	if !ok {
		t.Fatalf("entry-set drift failed the gate: %v", msgs)
	}
	var sawNew, sawMissing bool
	for _, m := range msgs {
		if strings.Contains(m, "FigNew") {
			sawNew = true
		}
		if strings.Contains(m, "missing from current") {
			sawMissing = true
		}
	}
	if !sawNew || !sawMissing {
		t.Fatalf("expected informational messages for drift, got %v", msgs)
	}

	// Zero-wall baseline entries are skipped rather than dividing by zero.
	zero := testReport()
	zero.Entries[0].WallNS = 0
	if _, ok := Compare(zero, testReport(), 0.25); !ok {
		t.Fatal("zero-wall baseline entry failed the gate")
	}
}
