// Package bench defines the benchmark-regression gate's JSON format:
// cmd/rowbench -bench-json emits one Report per revision (wall time,
// simulated cycles per second and allocations per figure benchmark),
// the repo commits a baseline, and CI compares fresh numbers against
// it so a hot-path regression fails the build instead of landing
// silently. Wall-clock numbers move with the host, so comparisons are
// per-entry ratios against the baseline measured in the same
// environment (CI compares CI-to-CI scale runs).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Entry is one benchmark's measurement.
type Entry struct {
	Name string `json:"name"`
	// WallNS is the benchmark's wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Cycles is the total number of simulated cycles executed.
	Cycles uint64 `json:"cycles"`
	// CyclesPerSec is the simulator's throughput on this benchmark,
	// measured in simulated (advanced) cycles — comparable across
	// scheduler modes.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// CyclesVisited is the number of cycles the scheduler actually
	// simulated; under the event scheduler this is smaller than Cycles.
	CyclesVisited uint64 `json:"cycles_visited"`
	// SkipEff is 1 - CyclesVisited/Cycles: the fraction of simulated
	// time the event scheduler jumped over. Zero under the cycle
	// scheduler.
	SkipEff float64 `json:"skip_eff"`
	// Allocs is the number of heap allocations over the benchmark.
	Allocs uint64 `json:"allocs"`
	// Bytes is the number of heap bytes allocated over the benchmark.
	Bytes uint64 `json:"bytes"`
}

// Report is the full per-revision measurement set.
type Report struct {
	// Rev identifies the measured revision (git short hash or "ci").
	Rev        string  `json:"rev"`
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Jobs       int     `json:"jobs"`
	Entries    []Entry `json:"entries"`
}

// Sort orders entries by name so reports diff cleanly.
func (r *Report) Sort() {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
}

// New builds an empty report for the given revision tag.
func New(rev string, jobs int) Report {
	return Report{
		Rev:        rev,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       jobs,
	}
}

// Write stores the report as indented JSON (stable field and entry
// order, trailing newline) so committed baselines diff cleanly.
func Write(path string, r Report) error {
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Read loads a report written by Write.
func Read(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}

// Compare checks current against baseline and returns one message per
// regression: an entry whose wall time grew by more than maxRegress
// (0.25 = 25%). Entries present on only one side are reported as
// informational mismatches but never fail the gate (benchmark sets may
// grow); the returned bool is true when the gate passes.
func Compare(baseline, current Report, maxRegress float64) (msgs []string, ok bool) {
	base := make(map[string]Entry, len(baseline.Entries))
	for _, e := range baseline.Entries {
		base[e.Name] = e
	}
	current.Sort()
	ok = true
	for _, e := range current.Entries {
		b, found := base[e.Name]
		if !found {
			msgs = append(msgs, fmt.Sprintf("%s: no baseline entry (new benchmark)", e.Name))
			continue
		}
		if b.WallNS <= 0 {
			continue
		}
		ratio := float64(e.WallNS) / float64(b.WallNS)
		if ratio > 1+maxRegress {
			ok = false
			msgs = append(msgs, fmt.Sprintf("%s: REGRESSION %.2fx wall time (%.1fms -> %.1fms, limit +%.0f%%)",
				e.Name, ratio, float64(b.WallNS)/1e6, float64(e.WallNS)/1e6, maxRegress*100))
		}
	}
	for _, b := range baseline.Entries {
		found := false
		for _, e := range current.Entries {
			if e.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			msgs = append(msgs, fmt.Sprintf("%s: baseline entry missing from current run", b.Name))
		}
	}
	return msgs, ok
}
