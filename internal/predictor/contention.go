// Package predictor groups the three predictors the simulated core
// uses: the RoW contention predictor (the paper's Section IV-D), a
// gshare-style branch direction predictor standing in for TAGE-SC-L,
// and a StoreSet memory-dependence predictor.
package predictor

import (
	"fmt"

	"rowsim/internal/config"
)

// Contention is the PC-indexed table of N-bit saturating counters that
// estimates whether an atomic will access a contended cacheline. The
// paper's configuration is 64 entries of 4-bit counters (32 bytes),
// indexed by the 6 least-significant PC bits XORed with the following
// 6 bits (XOR-mapping).
type Contention struct {
	counters  []uint16
	max       uint16
	mask      uint64
	threshold uint16
	kind      config.PredictorKind

	predictions   uint64
	correct       uint64
	predContended uint64
}

// NewContention builds a predictor from the RoW configuration.
func NewContention(cfg *config.Config) *Contention {
	entries := cfg.RoW.PredictorEntries
	bits := cfg.RoW.PredictorBits
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("predictor: entries %d must be a positive power of two", entries))
	}
	return &Contention{
		counters:  make([]uint16, entries),
		max:       uint16(1<<uint(bits)) - 1,
		mask:      uint64(entries - 1),
		threshold: uint16(cfg.PredictorThreshold()),
		kind:      cfg.RoW.Predictor,
	}
}

// index applies the paper's XOR-mapping: low PC bits XOR the next
// group of bits, restricted to the table size. PCs are word-aligned,
// so the two low offset bits are dropped first.
func (p *Contention) index(pc uint64) uint64 {
	w := pc >> 2
	bits := uint(0)
	for 1<<bits < uint64(len(p.counters)) {
		bits++
	}
	return (w ^ (w >> bits)) & p.mask
}

// Predict returns true when the atomic at pc is predicted to face
// contention (and should therefore execute lazy).
func (p *Contention) Predict(pc uint64) bool {
	contended := p.counters[p.index(pc)] > p.threshold
	p.predictions++
	if contended {
		p.predContended++
	}
	return contended
}

// Train updates the counter for pc with the observed outcome and
// records accuracy against the prediction made for this instance.
func (p *Contention) Train(pc uint64, predicted, contended bool) {
	if predicted == contended {
		p.correct++
	}
	c := &p.counters[p.index(pc)]
	if contended {
		switch p.kind {
		case config.PredSaturate:
			*c = p.max
		case config.PredTwoUpOneDown:
			if *c+2 <= p.max {
				*c += 2
			} else {
				*c = p.max
			}
		default: // UpDown
			if *c < p.max {
				*c++
			}
		}
	} else if *c > 0 {
		*c--
	}
}

// Accuracy returns the fraction of trained atomics whose contention
// outcome matched the prediction (Fig. 12), or 0 before any training.
func (p *Contention) Accuracy() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.predictions)
}

// Predictions returns the number of predictions made.
func (p *Contention) Predictions() uint64 { return p.predictions }

// PredictedContended returns how many predictions said "contended".
func (p *Contention) PredictedContended() uint64 { return p.predContended }

// StorageBits returns the predictor's storage cost in bits, reported
// by the paper as part of the 64-byte overhead.
func (p *Contention) StorageBits() int {
	bits := 0
	for 1<<uint(bits) <= int(p.max) {
		bits++
	}
	return len(p.counters) * bits
}
