package predictor

import (
	"testing"

	"rowsim/internal/snapcheck"
)

// TestSnapshotCoversEveryField is the snapshot-completeness guard for
// the three predictors. Predictor tables feed timing decisions, so a
// missed field here would make a resumed run predict differently and
// diverge from the uninterrupted one.
func TestSnapshotCoversEveryField(t *testing.T) {
	snapcheck.Assert(t, Branch{}, []string{
		"gshare", "bimodal", "chooser", "history",
		"lookups", "mispredict",
	}, map[string]string{
		"mask": "derived from the table size at construction",
	})

	snapcheck.Assert(t, StoreSet{}, []string{
		"ssit", "lfst", "nextID", "violations",
	}, map[string]string{
		"mask": "derived from the table size at construction",
	})

	snapcheck.Assert(t, Contention{}, []string{
		"counters", "predictions", "correct", "predContended",
	}, map[string]string{
		"max":       "construction-time saturation constant",
		"mask":      "derived from the table size at construction",
		"threshold": "construction-time configuration",
		"kind":      "construction-time configuration",
	})
}
