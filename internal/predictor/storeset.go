package predictor

// StoreSet is a memory-dependence predictor after Chrysos & Emer
// ("Memory Dependence Prediction using Store Sets", ISCA 1998): the
// SSIT maps instruction PCs to store-set IDs and the LFST remembers
// the last fetched store of each set. A load whose PC belongs to a
// store set waits for that store instead of speculating past it.
type StoreSet struct {
	ssit []int32  // PC -> set id, -1 = none
	lfst []uint64 // set id -> sequence number of last fetched store (0 = none)

	mask   uint64
	nextID int32

	violations uint64
}

// NewStoreSet builds the predictor with 2^logSize SSIT entries and an
// equally sized LFST.
func NewStoreSet(logSize uint) *StoreSet {
	n := 1 << logSize
	ss := &StoreSet{
		ssit: make([]int32, n),
		lfst: make([]uint64, n),
		mask: uint64(n - 1),
	}
	for i := range ss.ssit {
		ss.ssit[i] = -1
	}
	return ss
}

func (s *StoreSet) index(pc uint64) uint64 { return (pc >> 2) & s.mask }

// DispatchStore records a store at dispatch and returns the sequence
// number of the previous store in its set (0 when unconstrained);
// in-set stores are ordered, approximating the original design.
func (s *StoreSet) DispatchStore(pc, seq uint64) (waitFor uint64) {
	id := s.ssit[s.index(pc)]
	if id < 0 {
		return 0
	}
	waitFor = s.lfst[uint64(id)&s.mask]
	s.lfst[uint64(id)&s.mask] = seq
	return waitFor
}

// CompleteStore clears the LFST entry when the store leaves the
// pipeline, so later loads do not wait on a finished store.
func (s *StoreSet) CompleteStore(pc, seq uint64) {
	id := s.ssit[s.index(pc)]
	if id < 0 {
		return
	}
	if s.lfst[uint64(id)&s.mask] == seq {
		s.lfst[uint64(id)&s.mask] = 0
	}
}

// DispatchLoad returns the sequence number of the store this load must
// wait for (0 when the load may speculate freely).
func (s *StoreSet) DispatchLoad(pc uint64) (waitFor uint64) {
	id := s.ssit[s.index(pc)]
	if id < 0 {
		return 0
	}
	return s.lfst[uint64(id)&s.mask]
}

// Violation trains the tables after a memory-order violation between
// a load and an older store: both PCs are placed in the same set.
func (s *StoreSet) Violation(loadPC, storePC uint64) {
	s.violations++
	li, si := s.index(loadPC), s.index(storePC)
	lid, sid := s.ssit[li], s.ssit[si]
	switch {
	case lid < 0 && sid < 0:
		id := s.nextID
		s.nextID = (s.nextID + 1) & int32(s.mask)
		s.ssit[li], s.ssit[si] = id, id
	case lid < 0:
		s.ssit[li] = sid
	case sid < 0:
		s.ssit[si] = lid
	default:
		// Merge toward the smaller ID (the paper's convention).
		if lid < sid {
			s.ssit[si] = lid
		} else {
			s.ssit[li] = sid
		}
	}
}

// Violations returns the number of violations trained on.
func (s *StoreSet) Violations() uint64 { return s.violations }
